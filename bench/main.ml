(* Benchmark harness regenerating the paper's evaluation (one Bechamel
   test group per figure, plus the parameter sweeps that print the
   series of Figs. 5, 6 and 7 for both dataset families).

   Usage: dune exec bench/main.exe [-- FLAGS]
     --quick       tiny sweep sizes (CI smoke run)
     --paper       additionally run the NJ series at paper-scale sizes
     --no-bechamel skip the Bechamel micro-benchmarks
     --no-sweep    skip the sweeps
     --json FILE   additionally write every sweep point plus the
                   pipeline's metrics snapshot (windows per class,
                   partition skew, quantile distributions) as a JSON
                   report, led by a self-describing meta block
     --openmetrics FILE
                   additionally write the metrics snapshot in the
                   OpenMetrics (Prometheus) text format *)

open Bechamel
open Toolkit
module E = Tpdb_experiments.Experiments
module Nj = Tpdb.Nj
module Ta = Tpdb.Ta
module Relation = Tpdb.Relation
module Metrics = Tpdb.Metrics
module J = Tpdb_obs.Json

let seq_length seq = Seq.fold_left (fun n _ -> n + 1) 0 seq

(* --- Bechamel micro-benchmarks: one test per figure series, at a fixed
   size per dataset so that a single run fits the quota. --- *)

let bechamel_size = function E.Webkit -> 2_000 | E.Meteo -> 1_000

let figure_tests dataset =
  let size = bechamel_size dataset in
  let theta = E.theta dataset in
  let r, s = E.pair dataset ~size in
  let name fmt = Printf.sprintf fmt (E.dataset_name dataset) in
  [
    Test.make
      ~name:(name "fig5/%s/NJ")
      (Staged.stage (fun () -> seq_length (Nj.windows_wuo ~theta r s)));
    Test.make
      ~name:(name "fig5/%s/TA")
      (Staged.stage (fun () ->
           List.length (Ta.windows_wuo ~algorithm:`Hash ~theta r s)));
    Test.make
      ~name:(name "fig6/%s/NJ-WUON")
      (Staged.stage (fun () -> seq_length (Nj.windows_wuon ~theta r s)));
    Test.make
      ~name:(name "fig6/%s/TA")
      (Staged.stage (fun () ->
           List.length (Ta.windows_wuon ~algorithm:`Hash ~theta r s)));
    Test.make
      ~name:(name "fig7/%s/NJ")
      (Staged.stage (fun () -> Relation.cardinality (Nj.left_outer ~theta r s)));
    Test.make
      ~name:(name "fig7/%s/TA")
      (Staged.stage (fun () ->
           Relation.cardinality
             (Ta.left_outer ~algorithm:`Nested_loop ~theta r s)));
  ]

let run_bechamel () =
  let tests =
    Test.make_grouped ~name:"figures"
      (figure_tests E.Webkit @ figure_tests E.Meteo)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (estimate :: _) -> estimate
          | Some [] | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "\n== Bechamel micro-benchmarks (fixed sizes: webkit %d, meteo %d) ==\n"
    (bechamel_size E.Webkit) (bechamel_size E.Meteo);
  Printf.printf "%-28s %14s\n" "benchmark" "time/run [ms]";
  List.iter
    (fun (name, ns) -> Printf.printf "%-28s %14.2f\n" name (ns /. 1e6))
    rows;
  flush stdout

(* --- Sweeps: the figure series. --- *)

(* Every sweep goes through [emit], which prints the table as before and
   keeps the points for the [--json] report. *)
let sweeps : (string * E.point list) list ref = ref []

let emit header points =
  E.print_points ~header points;
  sweeps := (header, points) :: !sweeps

let run_sweeps scale =
  List.iter
    (fun dataset ->
      let d = E.dataset_name dataset in
      emit
        (Printf.sprintf "Fig 5 (%s): WUO - overlapping + unmatched windows" d)
        (E.fig5 ~scale dataset);
      emit
        (Printf.sprintf "Fig 6 (%s): negating windows" d)
        (E.fig6 ~scale dataset);
      emit
        (Printf.sprintf "Fig 7 (%s): TP left outer join" d)
        (E.fig7 ~scale dataset);
      emit
        (Printf.sprintf "Ablation (%s): overlap join algorithm (NJ WUO)" d)
        (E.ablation_join_algorithm ~scale dataset);
      emit
        (Printf.sprintf "Ablation (%s): sweep engine (flat vs legacy)" d)
        (E.ablation_sweep_engine ~scale dataset);
      emit
        (Printf.sprintf "Ablation (%s): pipelined vs materialized stages" d)
        (E.ablation_pipelining ~scale dataset);
      emit
        (Printf.sprintf
           "Parallel (%s): WUON pipeline, partitioned sweep (jobs series)" d)
        (E.parallel_sweep ~scale dataset);
      let size = List.nth (E.sizes dataset scale) 1 in
      Printf.printf "\n== Ablation (%s): tuple replication ==\n%s\n" d
        (E.replication_report dataset ~size))
    [ E.Webkit; E.Meteo ]

(* The prob-cache series: counters are snapshotted around the sweep so
   the reported hit rate covers only the lineage-heavy runs, not every
   join the other sweeps happen to execute. *)
let prob_cache_report = ref None

let run_prob_cache_sweep metrics scale =
  let hits () = Metrics.get metrics Metrics.Prob_cache_hits in
  let misses () = Metrics.get metrics Metrics.Prob_cache_misses in
  let h0 = hits () and m0 = misses () in
  let points = E.prob_cache_sweep ~scale () in
  emit
    "Prob cache (uniform, 8 keys): full outer / anti, cached vs uncached"
    points;
  let speedups = E.prob_cache_speedups points in
  List.iter
    (fun (kind, speedup) ->
      Printf.printf "prob-cache speedup (%s): %.2fx\n" kind speedup)
    speedups;
  let h = hits () - h0 and m = misses () - m0 in
  let rate = if h + m > 0 then float_of_int h /. float_of_int (h + m) else 0.0 in
  if h + m > 0 then Printf.printf "prob-cache hit rate: %.3f\n" rate;
  flush stdout;
  prob_cache_report := Some (h, m, rate, speedups)

(* Fixed sizes regardless of --quick: the committed baseline must carry
   the million-tuple points (see Experiments.flat_scale_sweep). *)
let run_flat_scale () =
  emit "Flat scale: WUON pipeline, 125K-1M tuples per input"
    (E.flat_scale_sweep ())

let run_extra_sweeps () =
  emit "Extra: selectivity sweep (distinct keys; size column = keys)"
    (E.selectivity_sweep ());
  emit "Extra: skew sweep (Zipf exponent in tenths; 256 keys)"
    (E.skew_sweep ())

let run_paper_scale () =
  List.iter
    (fun dataset ->
      emit
        (Printf.sprintf "Paper scale (%s): NJ left outer join"
           (E.dataset_name dataset))
        (E.nj_paper_scale dataset))
    [ E.Webkit; E.Meteo ]

(* --- the JSON report --- *)

(* Self-describing provenance for committed BENCH_*.json files. Nothing
   here is compared by check_bench.py (it pops "meta" before diffing) —
   it exists so a baseline records which commit, compiler, host and
   parallelism produced it. *)
let meta_json () =
  let git_commit =
    try
      let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
    with _ -> "unknown"
  in
  let host = try Unix.gethostname () with _ -> "unknown" in
  let timestamp =
    let tm = Unix.gmtime (Unix.gettimeofday ()) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  J.obj
    [
      ("git_commit", J.str git_commit);
      ("ocaml_version", J.str Sys.ocaml_version);
      ("host", J.str host);
      ("timestamp", J.str timestamp);
      ("jobs", J.int (Domain.recommended_domain_count ()));
    ]

let json_report metrics =
  let point (p : E.point) =
    J.obj
      [
        ("series", J.str p.E.series);
        ("size", J.int p.E.size);
        ("ms", J.float p.E.ms);
        ("output", J.int p.E.output);
      ]
  in
  let sweep (header, points) =
    J.obj
      [ ("name", J.str header); ("points", J.arr (List.map point points)) ]
  in
  let window name c = (name, J.int (Metrics.get metrics c)) in
  let ps = Metrics.dist_stats metrics Metrics.Partition_size in
  let mean = Metrics.mean ps in
  J.obj
    [
      ("meta", meta_json ());
      ("sweeps", J.arr (List.map sweep (List.rev !sweeps)));
      ( "windows",
        J.obj
          [
            window "overlapping" Metrics.Windows_overlapping;
            window "unmatched" Metrics.Windows_unmatched;
            window "negating" Metrics.Windows_negating;
          ] );
      ( "partition_skew",
        J.obj
          [
            ("sweeps", J.int ps.Metrics.count);
            ("max_size", J.int ps.Metrics.max);
            ("mean_size", J.float mean);
            ( "max_over_mean",
              J.float
                (if mean > 0.0 then float_of_int ps.Metrics.max /. mean
                 else 0.0) );
          ] );
      (* allocation of the recording domain across every sweep point:
         minor words plus the major/promoted split count_alloc now
         reports ([minor_alloc_words] keeps its name and semantics, so
         older baselines still compare) *)
      ( "alloc",
        J.obj
          [
            ( "minor_words",
              J.int (Metrics.get metrics Metrics.Minor_alloc_words) );
            ( "major_words",
              J.int (Metrics.get metrics Metrics.Major_alloc_words) );
            ( "promoted_words",
              J.int (Metrics.get metrics Metrics.Promoted_words) );
          ] );
      ( "prob_cache",
        match !prob_cache_report with
        | None -> J.obj []
        | Some (hits, misses, rate, speedups) ->
            J.obj
              [
                ("hits", J.int hits);
                ("misses", J.int misses);
                ( "resets",
                  J.int (Metrics.get metrics Metrics.Prob_cache_resets) );
                ("hit_rate", J.float rate);
                ( "speedup",
                  J.obj (List.map (fun (k, v) -> (k, J.float v)) speedups) );
              ] );
      (* the full snapshot, verbatim from the sink *)
      ("metrics", Metrics.to_json metrics);
    ]

let rec option_value flag = function
  | f :: v :: _ when f = flag -> Some v
  | _ :: rest -> option_value flag rest
  | [] -> None

let () =
  let flags = Array.to_list Sys.argv in
  let has f = List.mem f flags in
  let json_out = option_value "--json" flags in
  let openmetrics_out = option_value "--openmetrics" flags in
  let metrics = Metrics.create () in
  if Option.is_some json_out || Option.is_some openmetrics_out then
    Metrics.install metrics;
  let scale = if has "--quick" then E.Quick else E.Default in
  if not (has "--no-bechamel") then run_bechamel ();
  if not (has "--no-sweep") then begin
    run_sweeps scale;
    run_prob_cache_sweep metrics scale;
    run_flat_scale ();
    if scale <> E.Quick then run_extra_sweeps ()
  end;
  if has "--paper" then run_paper_scale ();
  Metrics.uninstall ();
  (match json_out with
  | Some path ->
      let oc = open_out path in
      output_string oc (json_report metrics);
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote JSON report to %s\n" path
  | None -> ());
  (match openmetrics_out with
  | Some path ->
      Metrics.save_openmetrics metrics path;
      Printf.printf "wrote OpenMetrics report to %s\n" path
  | None -> ());
  Printf.printf "\nbench: done\n"
