(* Benchmark harness regenerating the paper's evaluation (one Bechamel
   test group per figure, plus the parameter sweeps that print the
   series of Figs. 5, 6 and 7 for both dataset families).

   Usage: dune exec bench/main.exe [-- FLAGS]
     --quick       tiny sweep sizes (CI smoke run)
     --paper       additionally run the NJ series at paper-scale sizes
     --no-bechamel skip the Bechamel micro-benchmarks
     --no-sweep    skip the sweeps
     --no-spill    skip the out-of-core spill-scale series
     --spill-only  run only the spill-scale series (the CI
                   memory-ceiling job runs this under ulimit -v)
     --server      run only the concurrent-server bench: an in-process
                   tpdb_server on an ephemeral port, hammered by
                   --clients N (default 200, 40 with --quick) client
                   threads issuing --requests N (default 50, 10 with
                   --quick) queries each from a fixed mix; reports
                   p50/p99 latency, queries/sec and the plan-/result-
                   cache hit counters (the committed BENCH_10.json
                   baseline)
     --json FILE   additionally write every sweep point plus the
                   pipeline's metrics snapshot (windows per class,
                   partition skew, quantile distributions) as a JSON
                   report, led by a self-describing meta block
     --openmetrics FILE
                   additionally write the metrics snapshot in the
                   OpenMetrics (Prometheus) text format *)

open Bechamel
open Toolkit
module E = Tpdb_experiments.Experiments
module Nj = Tpdb.Nj
module Ta = Tpdb.Ta
module Relation = Tpdb.Relation
module Metrics = Tpdb.Metrics
module J = Tpdb_obs.Json

let seq_length seq = Seq.fold_left (fun n _ -> n + 1) 0 seq

(* --- Bechamel micro-benchmarks: one test per figure series, at a fixed
   size per dataset so that a single run fits the quota. --- *)

let bechamel_size = function E.Webkit -> 2_000 | E.Meteo -> 1_000

let figure_tests dataset =
  let size = bechamel_size dataset in
  let theta = E.theta dataset in
  let r, s = E.pair dataset ~size in
  let name fmt = Printf.sprintf fmt (E.dataset_name dataset) in
  [
    Test.make
      ~name:(name "fig5/%s/NJ")
      (Staged.stage (fun () -> seq_length (Nj.windows_wuo ~theta r s)));
    Test.make
      ~name:(name "fig5/%s/TA")
      (Staged.stage (fun () ->
           List.length (Ta.windows_wuo ~algorithm:`Hash ~theta r s)));
    Test.make
      ~name:(name "fig6/%s/NJ-WUON")
      (Staged.stage (fun () -> seq_length (Nj.windows_wuon ~theta r s)));
    Test.make
      ~name:(name "fig6/%s/TA")
      (Staged.stage (fun () ->
           List.length (Ta.windows_wuon ~algorithm:`Hash ~theta r s)));
    Test.make
      ~name:(name "fig7/%s/NJ")
      (Staged.stage (fun () -> Relation.cardinality (Nj.left_outer ~theta r s)));
    Test.make
      ~name:(name "fig7/%s/TA")
      (Staged.stage (fun () ->
           Relation.cardinality
             (Ta.left_outer ~algorithm:`Nested_loop ~theta r s)));
  ]

let run_bechamel () =
  let tests =
    Test.make_grouped ~name:"figures"
      (figure_tests E.Webkit @ figure_tests E.Meteo)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (estimate :: _) -> estimate
          | Some [] | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "\n== Bechamel micro-benchmarks (fixed sizes: webkit %d, meteo %d) ==\n"
    (bechamel_size E.Webkit) (bechamel_size E.Meteo);
  Printf.printf "%-28s %14s\n" "benchmark" "time/run [ms]";
  List.iter
    (fun (name, ns) -> Printf.printf "%-28s %14.2f\n" name (ns /. 1e6))
    rows;
  flush stdout

(* --- Sweeps: the figure series. --- *)

(* Every sweep goes through [emit], which prints the table as before and
   keeps the points for the [--json] report. *)
let sweeps : (string * E.point list) list ref = ref []

let emit header points =
  E.print_points ~header points;
  sweeps := (header, points) :: !sweeps

let run_sweeps scale =
  List.iter
    (fun dataset ->
      let d = E.dataset_name dataset in
      emit
        (Printf.sprintf "Fig 5 (%s): WUO - overlapping + unmatched windows" d)
        (E.fig5 ~scale dataset);
      emit
        (Printf.sprintf "Fig 6 (%s): negating windows" d)
        (E.fig6 ~scale dataset);
      emit
        (Printf.sprintf "Fig 7 (%s): TP left outer join" d)
        (E.fig7 ~scale dataset);
      emit
        (Printf.sprintf "Ablation (%s): overlap join algorithm (NJ WUO)" d)
        (E.ablation_join_algorithm ~scale dataset);
      emit
        (Printf.sprintf "Ablation (%s): sweep engine (flat vs legacy)" d)
        (E.ablation_sweep_engine ~scale dataset);
      emit
        (Printf.sprintf "Ablation (%s): pipelined vs materialized stages" d)
        (E.ablation_pipelining ~scale dataset);
      emit
        (Printf.sprintf
           "Parallel (%s): WUON pipeline, partitioned sweep (jobs series)" d)
        (E.parallel_sweep ~scale dataset);
      let size = List.nth (E.sizes dataset scale) 1 in
      Printf.printf "\n== Ablation (%s): tuple replication ==\n%s\n" d
        (E.replication_report dataset ~size))
    [ E.Webkit; E.Meteo ]

(* --- Spill scale: the out-of-core executor at 10^6–10^7 input tuples ---

   The headline number of the spilling executor is flat peak memory
   while the input grows 10x, so each point runs in a forked child and
   reports its own VmHWM (the kernel's per-process peak resident set,
   from /proc/self/status) over a pipe — a single process would carry
   its high-water mark from one point to the next. The child streams
   both inputs straight into [Nj.join_spilled] (they are never
   materialized), joins under a fixed budget, and reports wall time,
   output cardinality, peak RSS and its spill/pool counters; the parent
   folds the counters into the bench metrics sink so the committed JSON
   report (and the CI memory-ceiling job's --require-counter checks)
   sees them.

   Workload: r carries [size] unique keys 0..size-1, s is fixed at
   [spill_s_rows] tuples over the first [spill_s_rows/2] keys (each
   twice), every interval is [0,100) — so the equi inner join's output
   is [spill_s_rows] windows at every size and only the spilled working
   set grows. Lineage variables cycle through a small pool: distinct
   formulas are hash-consed globally, and 10^7 distinct interned
   variables would dominate the very peak RSS the series measures. *)

let spill_budget_mb = 64
let spill_s_rows = 100_000

let spill_sizes quick =
  if quick then [ 100_000; 1_000_000 ] else [ 1_000_000; 10_000_000 ]

let vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic -> (
      Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              String.to_seq line
              |> Seq.filter (fun c -> c >= '0' && c <= '9')
              |> String.of_seq |> int_of_string
            else scan ()
      in
      try scan () with Failure _ -> 0)

let spill_iv = Tpdb.Interval.make 0 100
let spill_var rel i = Tpdb.Formula.var (Tpdb.Var.make rel (i land 0xFFF))

let spill_left n =
  ( Tpdb.Schema.make ~name:"r" [ "K" ],
    Seq.init n (fun i ->
        Tpdb.Tuple.make
          ~fact:(Tpdb.Fact.of_values [ Tpdb.Value.I i ])
          ~lineage:(spill_var "r" i) ~iv:spill_iv ~p:0.9) )

let spill_right () =
  ( Tpdb.Schema.make ~name:"s" [ "K"; "J" ],
    Seq.init spill_s_rows (fun j ->
        Tpdb.Tuple.make
          ~fact:
            (Tpdb.Fact.of_values
               [ Tpdb.Value.I (j mod (spill_s_rows / 2)); Tpdb.Value.I j ])
          ~lineage:(spill_var "s" j) ~iv:spill_iv ~p:0.8) )

(* Runs one spilled join and prints the point's numbers as a single
   line; in the forked setup stdout is the parent's pipe. *)
let spill_child oc n =
  let m = Metrics.create () in
  Metrics.install m;
  let options =
    Nj.options
      ~mem_budget:(spill_budget_mb * 1024 * 1024)
      ~est_rows:(n, spill_s_rows) ()
  in
  let t0 = Unix.gettimeofday () in
  let result =
    Nj.join_spilled ~options
      ~env:(fun _ -> 0.5)
      ~kind:Nj.Inner ~theta:(Tpdb.Theta.eq 0 0) ~left:(spill_left n)
      ~right:(spill_right ()) ()
  in
  let ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  let get c = Metrics.get m c in
  Printf.fprintf oc "%f %d %d %d %d %d %d\n" ms
    (Relation.cardinality result)
    (vm_hwm_kb ())
    (get Metrics.Spill_bytes)
    (get Metrics.Spill_partitions)
    (get Metrics.Pool_hits) (get Metrics.Pool_misses);
  flush oc;
  Metrics.uninstall ()

let spill_point n =
  let finish line =
    Scanf.sscanf line "%f %d %d %d %d %d %d"
      (fun ms output rss_kb bytes partitions hits misses ->
        (* fold the child's spill counters into the parent's sink: the
           JSON report's metrics block is the parent's *)
        Metrics.add Metrics.Spill_bytes bytes;
        Metrics.add Metrics.Spill_partitions partitions;
        Metrics.add Metrics.Pool_hits hits;
        Metrics.add Metrics.Pool_misses misses;
        { E.series = "spill-" ^ string_of_int spill_budget_mb ^ "MB";
          size = n; ms; output; rss_kb })
  in
  if not Sys.unix then begin
    (* no fork: run in-process; a process-wide VmHWM would not be
       per-point, so report no RSS *)
    let tmp = Filename.temp_file "tpdb-spill-point" ".txt" in
    Fun.protect ~finally:(fun () -> Sys.remove tmp) @@ fun () ->
    let oc = open_out tmp in
    spill_child oc n;
    close_out oc;
    let ic = open_in tmp in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    { (finish line) with E.rss_kb = 0 }
  end
  else begin
    let rd, wr = Unix.pipe () in
    match Unix.fork () with
    | 0 -> (
        Unix.close rd;
        match spill_child (Unix.out_channel_of_descr wr) n with
        | () -> Stdlib.exit 0
        | exception e ->
            prerr_endline ("spill bench child: " ^ Printexc.to_string e);
            Stdlib.exit 1)
    | pid ->
        Unix.close wr;
        let ic = Unix.in_channel_of_descr rd in
        let line = try input_line ic with End_of_file -> "" in
        close_in ic;
        let _, status = Unix.waitpid [] pid in
        (match status with
        | Unix.WEXITED 0 -> ()
        | _ ->
            Printf.eprintf "spill bench child (size %d) died\n%!" n;
            Stdlib.exit 1);
        finish line
  end

let run_spill_scale quick =
  emit
    (Printf.sprintf
       "Spill scale: out-of-core inner equi-join, %d MB budget, peak RSS \
        per forked point"
       spill_budget_mb)
    (List.map spill_point (spill_sizes quick))

(* The prob-cache series: counters are snapshotted around the sweep so
   the reported hit rate covers only the lineage-heavy runs, not every
   join the other sweeps happen to execute. *)
let prob_cache_report = ref None

let run_prob_cache_sweep metrics scale =
  let hits () = Metrics.get metrics Metrics.Prob_cache_hits in
  let misses () = Metrics.get metrics Metrics.Prob_cache_misses in
  let h0 = hits () and m0 = misses () in
  let points = E.prob_cache_sweep ~scale () in
  emit
    "Prob cache (uniform, 8 keys): full outer / anti, cached vs uncached"
    points;
  let speedups = E.prob_cache_speedups points in
  List.iter
    (fun (kind, speedup) ->
      Printf.printf "prob-cache speedup (%s): %.2fx\n" kind speedup)
    speedups;
  let h = hits () - h0 and m = misses () - m0 in
  let rate = if h + m > 0 then float_of_int h /. float_of_int (h + m) else 0.0 in
  if h + m > 0 then Printf.printf "prob-cache hit rate: %.3f\n" rate;
  flush stdout;
  prob_cache_report := Some (h, m, rate, speedups)

(* Fixed sizes regardless of --quick: the committed baseline must carry
   the million-tuple points (see Experiments.flat_scale_sweep). *)
let run_flat_scale () =
  emit "Flat scale: WUON pipeline, 125K-1M tuples per input"
    (E.flat_scale_sweep ())

let run_extra_sweeps () =
  emit "Extra: selectivity sweep (distinct keys; size column = keys)"
    (E.selectivity_sweep ());
  emit "Extra: skew sweep (Zipf exponent in tenths; 256 keys)"
    (E.skew_sweep ())

let run_paper_scale () =
  List.iter
    (fun dataset ->
      emit
        (Printf.sprintf "Paper scale (%s): NJ left outer join"
           (E.dataset_name dataset))
        (E.nj_paper_scale dataset))
    [ E.Webkit; E.Meteo ]

(* --- the JSON report --- *)

(* Self-describing provenance for committed BENCH_*.json files. Nothing
   here is compared by check_bench.py (it pops "meta" before diffing) —
   it exists so a baseline records which commit, compiler, host and
   parallelism produced it. *)
let meta_json () =
  let git_commit =
    try
      let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
    with _ -> "unknown"
  in
  let host = try Unix.gethostname () with _ -> "unknown" in
  let timestamp =
    let tm = Unix.gmtime (Unix.gettimeofday ()) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  J.obj
    [
      ("git_commit", J.str git_commit);
      ("ocaml_version", J.str Sys.ocaml_version);
      ("host", J.str host);
      ("timestamp", J.str timestamp);
      ("jobs", J.int (Domain.recommended_domain_count ()));
    ]

(* Filled by the --server bench; lands as the report's "server" block. *)
let server_report : (string * string) list option ref = ref None

let json_report metrics =
  let point (p : E.point) =
    J.obj
      ([
         ("series", J.str p.E.series);
         ("size", J.int p.E.size);
         ("ms", J.float p.E.ms);
         ("output", J.int p.E.output);
       ]
      (* machine-dependent like ms, so check_bench ignores it; only
         measured points carry the field *)
      @ if p.E.rss_kb > 0 then [ ("rss_kb", J.int p.E.rss_kb) ] else [])
  in
  let sweep (header, points) =
    J.obj
      [ ("name", J.str header); ("points", J.arr (List.map point points)) ]
  in
  let window name c = (name, J.int (Metrics.get metrics c)) in
  let ps = Metrics.dist_stats metrics Metrics.Partition_size in
  let mean = Metrics.mean ps in
  J.obj
    ([
      ("meta", meta_json ());
      ("sweeps", J.arr (List.map sweep (List.rev !sweeps)));
      ( "windows",
        J.obj
          [
            window "overlapping" Metrics.Windows_overlapping;
            window "unmatched" Metrics.Windows_unmatched;
            window "negating" Metrics.Windows_negating;
          ] );
      ( "partition_skew",
        J.obj
          [
            ("sweeps", J.int ps.Metrics.count);
            ("max_size", J.int ps.Metrics.max);
            ("mean_size", J.float mean);
            ( "max_over_mean",
              J.float
                (if mean > 0.0 then float_of_int ps.Metrics.max /. mean
                 else 0.0) );
          ] );
      (* allocation of the recording domain across every sweep point:
         minor words plus the major/promoted split count_alloc now
         reports ([minor_alloc_words] keeps its name and semantics, so
         older baselines still compare) *)
      ( "alloc",
        J.obj
          [
            ( "minor_words",
              J.int (Metrics.get metrics Metrics.Minor_alloc_words) );
            ( "major_words",
              J.int (Metrics.get metrics Metrics.Major_alloc_words) );
            ( "promoted_words",
              J.int (Metrics.get metrics Metrics.Promoted_words) );
          ] );
      ( "prob_cache",
        match !prob_cache_report with
        | None -> J.obj []
        | Some (hits, misses, rate, speedups) ->
            J.obj
              [
                ("hits", J.int hits);
                ("misses", J.int misses);
                ( "resets",
                  J.int (Metrics.get metrics Metrics.Prob_cache_resets) );
                ("hit_rate", J.float rate);
                ( "speedup",
                  J.obj (List.map (fun (k, v) -> (k, J.float v)) speedups) );
              ] );
    ]
    @ (match !server_report with
      | None -> []
      | Some fields -> [ ("server", J.obj fields) ])
    (* the full snapshot, verbatim from the sink *)
    @ [ ("metrics", Metrics.to_json metrics) ])

(* --- the concurrent-server bench (--server) ---------------------------

   One in-process server on an ephemeral TCP port, seeded with the
   webkit pair, hammered by hundreds of client threads replaying a
   fixed query mix. Each request's latency is recorded client-side;
   the report carries p50/p99 and queries/sec plus the plan- and
   result-cache counters. Row counts per query are deterministic, so
   the sweep points' outputs compare exactly across runs; the latency
   and throughput numbers are the machine-dependent headline. *)

let server_query_mix =
  [
    ("inner", "SELECT * FROM r TPJOIN s ON r.File = s.File");
    ("left-outer", "SELECT * FROM r LEFT TPJOIN s ON r.File = s.File");
    ("full-outer", "SELECT * FROM r FULL TPJOIN s ON r.File = s.File");
    ("anti", "SELECT * FROM r ANTIJOIN s ON r.File = s.File");
  ]

let server_bench_failed = ref false

let run_server_bench ~quick ~clients ~requests metrics =
  let module Server = Tpdb.Server in
  let module Client = Tpdb.Server_client in
  let size = if quick then 500 else 2_000 in
  let r, s = E.pair E.Webkit ~size in
  let config =
    {
      (Server.default_config (`Tcp ("", 0))) with
      Server.workers = max 2 (Domain.recommended_domain_count () - 2);
      queue_limit = 4096;
      plan_cache_capacity = 64;
      result_cache_capacity = 128;
    }
  in
  let server = Server.start config in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let store = Server.store server in
  ignore (Tpdb.Server_store.register store r);
  ignore (Tpdb.Server_store.register store s);
  let port =
    match Server.port server with Some p -> p | None -> assert false
  in
  let addr = `Tcp ("", port) in
  (* Warm-up: one pass over the mix plans and executes each query once,
     so the measured runs exercise the repeated-query (cached) path the
     server exists for — and record the expected row counts. *)
  let expected =
    let c = Client.connect ~client:"bench-warmup" addr in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    List.map
      (fun (name, sql) -> (name, (Client.query c sql).Client.rows))
      server_query_mix
  in
  let nq = List.length server_query_mix in
  let latencies = Array.make (clients * requests) 0 in
  let fail_mutex = Mutex.create () in
  let overloads = ref 0 and errors = ref 0 and mismatches = ref 0 in
  let tally cell =
    Mutex.lock fail_mutex;
    incr cell;
    Mutex.unlock fail_mutex
  in
  let client_thread tid =
    let rec connect tries =
      match Client.connect ~client:(Printf.sprintf "bench-%d" tid) addr with
      | c -> c
      | exception
          Unix.Unix_error
            ((ECONNREFUSED | ECONNRESET | EAGAIN | ETIMEDOUT), _, _)
        when tries < 100 ->
          Thread.delay 0.01;
          connect (tries + 1)
    in
    let c = connect 0 in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    for i = 0 to requests - 1 do
      let k = (tid + i) mod nq in
      let name, sql = List.nth server_query_mix k in
      let t0 = Tpdb.Obs_clock.now_ns () in
      (match Client.query c sql with
      | resp ->
          if resp.Client.rows <> List.assoc name expected then
            tally mismatches
      | exception Client.Server_overloaded _ -> tally overloads
      | exception _ -> tally errors);
      latencies.((tid * requests) + i) <- Tpdb.Obs_clock.now_ns () - t0
    done
  in
  let t_start = Tpdb.Obs_clock.now_ns () in
  let threads = List.init clients (fun tid -> Thread.create client_thread tid) in
  List.iter Thread.join threads;
  let wall_ns = Tpdb.Obs_clock.now_ns () - t_start in
  let total = clients * requests in
  Array.sort compare latencies;
  let pct p =
    float_of_int latencies.(min (total - 1) (p * total / 100)) /. 1e6
  in
  let mean_ms =
    float_of_int (Array.fold_left ( + ) 0 latencies)
    /. float_of_int total /. 1e6
  in
  let wall_s = float_of_int wall_ns /. 1e9 in
  let qps = if wall_s > 0.0 then float_of_int total /. wall_s else 0.0 in
  (* per-query mean latency + deterministic output cardinality *)
  let points =
    List.mapi
      (fun k (name, _sql) ->
        let sum = ref 0 and n = ref 0 in
        for tid = 0 to clients - 1 do
          for i = 0 to requests - 1 do
            if (tid + i) mod nq = k then begin
              sum := !sum + latencies.((tid * requests) + i);
              incr n
            end
          done
        done;
        {
          E.series = name;
          size = clients;
          ms =
            (if !n > 0 then float_of_int !sum /. float_of_int !n /. 1e6
             else 0.0);
          output = List.assoc name expected;
          rss_kb = 0;
        })
      server_query_mix
  in
  emit
    (Printf.sprintf
       "Server: %d concurrent sessions, %d requests each (webkit %d)"
       clients requests size)
    points;
  let counter name c = (name, J.int (Metrics.get metrics c)) in
  server_report :=
    Some
      [
        ("clients", J.int clients);
        ("requests_per_client", J.int requests);
        ("queries", J.int total);
        ("wall_ms", J.float (wall_s *. 1e3));
        ("qps", J.float qps);
        ("mean_ms", J.float mean_ms);
        ("p50_ms", J.float (pct 50));
        ("p99_ms", J.float (pct 99));
        ("overloads", J.int !overloads);
        ("errors", J.int !errors);
        ("row_mismatches", J.int !mismatches);
        counter "server_queries" Metrics.Server_queries;
        counter "plan_cache_hits" Metrics.Plan_cache_hits;
        counter "plan_cache_misses" Metrics.Plan_cache_misses;
        counter "result_cache_hits" Metrics.Result_cache_hits;
        counter "result_cache_misses" Metrics.Result_cache_misses;
        counter "sessions_opened" Metrics.Sessions_opened;
      ];
  Printf.printf
    "server bench: %d clients x %d requests — %.0f q/s, p50 %.2f ms, p99 \
     %.2f ms (mean %.2f ms)\n"
    clients requests qps (pct 50) (pct 99) mean_ms;
  Printf.printf
    "server bench: plan cache %d hits / %d misses, result cache %d hits / \
     %d misses\n"
    (Metrics.get metrics Metrics.Plan_cache_hits)
    (Metrics.get metrics Metrics.Plan_cache_misses)
    (Metrics.get metrics Metrics.Result_cache_hits)
    (Metrics.get metrics Metrics.Result_cache_misses);
  if !errors > 0 || !mismatches > 0 then begin
    Printf.printf
      "server bench FAILED: %d errors, %d row mismatches, %d overloads\n"
      !errors !mismatches !overloads;
    server_bench_failed := true
  end;
  flush stdout

let rec option_value flag = function
  | f :: v :: _ when f = flag -> Some v
  | _ :: rest -> option_value flag rest
  | [] -> None

let () =
  let flags = Array.to_list Sys.argv in
  let has f = List.mem f flags in
  let json_out = option_value "--json" flags in
  let openmetrics_out = option_value "--openmetrics" flags in
  let metrics = Metrics.create () in
  if Option.is_some json_out || Option.is_some openmetrics_out then
    Metrics.install metrics;
  let scale = if has "--quick" then E.Quick else E.Default in
  if has "--server" then begin
    (* the concurrent-server bench: counters must land in [metrics]
       even without --json, and the in-process server must reuse the
       sink rather than install its own *)
    (match Metrics.active () with
    | Some _ -> ()
    | None -> Metrics.install metrics);
    let int_flag flag ~default =
      match option_value flag flags with
      | Some v -> int_of_string v
      | None -> default
    in
    let quick = has "--quick" in
    run_server_bench ~quick
      ~clients:(int_flag "--clients" ~default:(if quick then 40 else 200))
      ~requests:(int_flag "--requests" ~default:(if quick then 10 else 50))
      metrics
  end
  else if has "--spill-only" then
    (* the CI memory-ceiling job: just the out-of-core series, under
       ulimit -v — everything else here would blow a 2 GB ceiling by
       design, not by regression *)
    run_spill_scale (has "--quick")
  else begin
    (* the spill series forks; run it before any sweep that spawns pool
       domains (forking a multi-domain OCaml runtime is undefined) *)
    if not (has "--no-spill") then run_spill_scale (has "--quick");
    if not (has "--no-bechamel") then run_bechamel ();
    if not (has "--no-sweep") then begin
      run_sweeps scale;
      run_prob_cache_sweep metrics scale;
      run_flat_scale ();
      if scale <> E.Quick then run_extra_sweeps ()
    end;
    if has "--paper" then run_paper_scale ()
  end;
  Metrics.uninstall ();
  (match json_out with
  | Some path ->
      let oc = open_out path in
      output_string oc (json_report metrics);
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote JSON report to %s\n" path
  | None -> ());
  (match openmetrics_out with
  | Some path ->
      Metrics.save_openmetrics metrics path;
      Printf.printf "wrote OpenMetrics report to %s\n" path
  | None -> ());
  Printf.printf "\nbench: done\n";
  if !server_bench_failed then exit 1
