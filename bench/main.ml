(* Benchmark harness regenerating the paper's evaluation (one Bechamel
   test group per figure, plus the parameter sweeps that print the
   series of Figs. 5, 6 and 7 for both dataset families).

   Usage: dune exec bench/main.exe [-- FLAGS]
     --quick       tiny sweep sizes (CI smoke run)
     --paper       additionally run the NJ series at paper-scale sizes
     --no-bechamel skip the Bechamel micro-benchmarks
     --no-sweep    skip the sweeps
     --no-spill    skip the out-of-core spill-scale series
     --spill-only  run only the spill-scale series (the CI
                   memory-ceiling job runs this under ulimit -v)
     --json FILE   additionally write every sweep point plus the
                   pipeline's metrics snapshot (windows per class,
                   partition skew, quantile distributions) as a JSON
                   report, led by a self-describing meta block
     --openmetrics FILE
                   additionally write the metrics snapshot in the
                   OpenMetrics (Prometheus) text format *)

open Bechamel
open Toolkit
module E = Tpdb_experiments.Experiments
module Nj = Tpdb.Nj
module Ta = Tpdb.Ta
module Relation = Tpdb.Relation
module Metrics = Tpdb.Metrics
module J = Tpdb_obs.Json

let seq_length seq = Seq.fold_left (fun n _ -> n + 1) 0 seq

(* --- Bechamel micro-benchmarks: one test per figure series, at a fixed
   size per dataset so that a single run fits the quota. --- *)

let bechamel_size = function E.Webkit -> 2_000 | E.Meteo -> 1_000

let figure_tests dataset =
  let size = bechamel_size dataset in
  let theta = E.theta dataset in
  let r, s = E.pair dataset ~size in
  let name fmt = Printf.sprintf fmt (E.dataset_name dataset) in
  [
    Test.make
      ~name:(name "fig5/%s/NJ")
      (Staged.stage (fun () -> seq_length (Nj.windows_wuo ~theta r s)));
    Test.make
      ~name:(name "fig5/%s/TA")
      (Staged.stage (fun () ->
           List.length (Ta.windows_wuo ~algorithm:`Hash ~theta r s)));
    Test.make
      ~name:(name "fig6/%s/NJ-WUON")
      (Staged.stage (fun () -> seq_length (Nj.windows_wuon ~theta r s)));
    Test.make
      ~name:(name "fig6/%s/TA")
      (Staged.stage (fun () ->
           List.length (Ta.windows_wuon ~algorithm:`Hash ~theta r s)));
    Test.make
      ~name:(name "fig7/%s/NJ")
      (Staged.stage (fun () -> Relation.cardinality (Nj.left_outer ~theta r s)));
    Test.make
      ~name:(name "fig7/%s/TA")
      (Staged.stage (fun () ->
           Relation.cardinality
             (Ta.left_outer ~algorithm:`Nested_loop ~theta r s)));
  ]

let run_bechamel () =
  let tests =
    Test.make_grouped ~name:"figures"
      (figure_tests E.Webkit @ figure_tests E.Meteo)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (estimate :: _) -> estimate
          | Some [] | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "\n== Bechamel micro-benchmarks (fixed sizes: webkit %d, meteo %d) ==\n"
    (bechamel_size E.Webkit) (bechamel_size E.Meteo);
  Printf.printf "%-28s %14s\n" "benchmark" "time/run [ms]";
  List.iter
    (fun (name, ns) -> Printf.printf "%-28s %14.2f\n" name (ns /. 1e6))
    rows;
  flush stdout

(* --- Sweeps: the figure series. --- *)

(* Every sweep goes through [emit], which prints the table as before and
   keeps the points for the [--json] report. *)
let sweeps : (string * E.point list) list ref = ref []

let emit header points =
  E.print_points ~header points;
  sweeps := (header, points) :: !sweeps

let run_sweeps scale =
  List.iter
    (fun dataset ->
      let d = E.dataset_name dataset in
      emit
        (Printf.sprintf "Fig 5 (%s): WUO - overlapping + unmatched windows" d)
        (E.fig5 ~scale dataset);
      emit
        (Printf.sprintf "Fig 6 (%s): negating windows" d)
        (E.fig6 ~scale dataset);
      emit
        (Printf.sprintf "Fig 7 (%s): TP left outer join" d)
        (E.fig7 ~scale dataset);
      emit
        (Printf.sprintf "Ablation (%s): overlap join algorithm (NJ WUO)" d)
        (E.ablation_join_algorithm ~scale dataset);
      emit
        (Printf.sprintf "Ablation (%s): sweep engine (flat vs legacy)" d)
        (E.ablation_sweep_engine ~scale dataset);
      emit
        (Printf.sprintf "Ablation (%s): pipelined vs materialized stages" d)
        (E.ablation_pipelining ~scale dataset);
      emit
        (Printf.sprintf
           "Parallel (%s): WUON pipeline, partitioned sweep (jobs series)" d)
        (E.parallel_sweep ~scale dataset);
      let size = List.nth (E.sizes dataset scale) 1 in
      Printf.printf "\n== Ablation (%s): tuple replication ==\n%s\n" d
        (E.replication_report dataset ~size))
    [ E.Webkit; E.Meteo ]

(* --- Spill scale: the out-of-core executor at 10^6–10^7 input tuples ---

   The headline number of the spilling executor is flat peak memory
   while the input grows 10x, so each point runs in a forked child and
   reports its own VmHWM (the kernel's per-process peak resident set,
   from /proc/self/status) over a pipe — a single process would carry
   its high-water mark from one point to the next. The child streams
   both inputs straight into [Nj.join_spilled] (they are never
   materialized), joins under a fixed budget, and reports wall time,
   output cardinality, peak RSS and its spill/pool counters; the parent
   folds the counters into the bench metrics sink so the committed JSON
   report (and the CI memory-ceiling job's --require-counter checks)
   sees them.

   Workload: r carries [size] unique keys 0..size-1, s is fixed at
   [spill_s_rows] tuples over the first [spill_s_rows/2] keys (each
   twice), every interval is [0,100) — so the equi inner join's output
   is [spill_s_rows] windows at every size and only the spilled working
   set grows. Lineage variables cycle through a small pool: distinct
   formulas are hash-consed globally, and 10^7 distinct interned
   variables would dominate the very peak RSS the series measures. *)

let spill_budget_mb = 64
let spill_s_rows = 100_000

let spill_sizes quick =
  if quick then [ 100_000; 1_000_000 ] else [ 1_000_000; 10_000_000 ]

let vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic -> (
      Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              String.to_seq line
              |> Seq.filter (fun c -> c >= '0' && c <= '9')
              |> String.of_seq |> int_of_string
            else scan ()
      in
      try scan () with Failure _ -> 0)

let spill_iv = Tpdb.Interval.make 0 100
let spill_var rel i = Tpdb.Formula.var (Tpdb.Var.make rel (i land 0xFFF))

let spill_left n =
  ( Tpdb.Schema.make ~name:"r" [ "K" ],
    Seq.init n (fun i ->
        Tpdb.Tuple.make
          ~fact:(Tpdb.Fact.of_values [ Tpdb.Value.I i ])
          ~lineage:(spill_var "r" i) ~iv:spill_iv ~p:0.9) )

let spill_right () =
  ( Tpdb.Schema.make ~name:"s" [ "K"; "J" ],
    Seq.init spill_s_rows (fun j ->
        Tpdb.Tuple.make
          ~fact:
            (Tpdb.Fact.of_values
               [ Tpdb.Value.I (j mod (spill_s_rows / 2)); Tpdb.Value.I j ])
          ~lineage:(spill_var "s" j) ~iv:spill_iv ~p:0.8) )

(* Runs one spilled join and prints the point's numbers as a single
   line; in the forked setup stdout is the parent's pipe. *)
let spill_child oc n =
  let m = Metrics.create () in
  Metrics.install m;
  let options =
    Nj.options
      ~mem_budget:(spill_budget_mb * 1024 * 1024)
      ~est_rows:(n, spill_s_rows) ()
  in
  let t0 = Unix.gettimeofday () in
  let result =
    Nj.join_spilled ~options
      ~env:(fun _ -> 0.5)
      ~kind:Nj.Inner ~theta:(Tpdb.Theta.eq 0 0) ~left:(spill_left n)
      ~right:(spill_right ()) ()
  in
  let ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  let get c = Metrics.get m c in
  Printf.fprintf oc "%f %d %d %d %d %d %d\n" ms
    (Relation.cardinality result)
    (vm_hwm_kb ())
    (get Metrics.Spill_bytes)
    (get Metrics.Spill_partitions)
    (get Metrics.Pool_hits) (get Metrics.Pool_misses);
  flush oc;
  Metrics.uninstall ()

let spill_point n =
  let finish line =
    Scanf.sscanf line "%f %d %d %d %d %d %d"
      (fun ms output rss_kb bytes partitions hits misses ->
        (* fold the child's spill counters into the parent's sink: the
           JSON report's metrics block is the parent's *)
        Metrics.add Metrics.Spill_bytes bytes;
        Metrics.add Metrics.Spill_partitions partitions;
        Metrics.add Metrics.Pool_hits hits;
        Metrics.add Metrics.Pool_misses misses;
        { E.series = "spill-" ^ string_of_int spill_budget_mb ^ "MB";
          size = n; ms; output; rss_kb })
  in
  if not Sys.unix then begin
    (* no fork: run in-process; a process-wide VmHWM would not be
       per-point, so report no RSS *)
    let tmp = Filename.temp_file "tpdb-spill-point" ".txt" in
    Fun.protect ~finally:(fun () -> Sys.remove tmp) @@ fun () ->
    let oc = open_out tmp in
    spill_child oc n;
    close_out oc;
    let ic = open_in tmp in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    { (finish line) with E.rss_kb = 0 }
  end
  else begin
    let rd, wr = Unix.pipe () in
    match Unix.fork () with
    | 0 -> (
        Unix.close rd;
        match spill_child (Unix.out_channel_of_descr wr) n with
        | () -> Stdlib.exit 0
        | exception e ->
            prerr_endline ("spill bench child: " ^ Printexc.to_string e);
            Stdlib.exit 1)
    | pid ->
        Unix.close wr;
        let ic = Unix.in_channel_of_descr rd in
        let line = try input_line ic with End_of_file -> "" in
        close_in ic;
        let _, status = Unix.waitpid [] pid in
        (match status with
        | Unix.WEXITED 0 -> ()
        | _ ->
            Printf.eprintf "spill bench child (size %d) died\n%!" n;
            Stdlib.exit 1);
        finish line
  end

let run_spill_scale quick =
  emit
    (Printf.sprintf
       "Spill scale: out-of-core inner equi-join, %d MB budget, peak RSS \
        per forked point"
       spill_budget_mb)
    (List.map spill_point (spill_sizes quick))

(* The prob-cache series: counters are snapshotted around the sweep so
   the reported hit rate covers only the lineage-heavy runs, not every
   join the other sweeps happen to execute. *)
let prob_cache_report = ref None

let run_prob_cache_sweep metrics scale =
  let hits () = Metrics.get metrics Metrics.Prob_cache_hits in
  let misses () = Metrics.get metrics Metrics.Prob_cache_misses in
  let h0 = hits () and m0 = misses () in
  let points = E.prob_cache_sweep ~scale () in
  emit
    "Prob cache (uniform, 8 keys): full outer / anti, cached vs uncached"
    points;
  let speedups = E.prob_cache_speedups points in
  List.iter
    (fun (kind, speedup) ->
      Printf.printf "prob-cache speedup (%s): %.2fx\n" kind speedup)
    speedups;
  let h = hits () - h0 and m = misses () - m0 in
  let rate = if h + m > 0 then float_of_int h /. float_of_int (h + m) else 0.0 in
  if h + m > 0 then Printf.printf "prob-cache hit rate: %.3f\n" rate;
  flush stdout;
  prob_cache_report := Some (h, m, rate, speedups)

(* Fixed sizes regardless of --quick: the committed baseline must carry
   the million-tuple points (see Experiments.flat_scale_sweep). *)
let run_flat_scale () =
  emit "Flat scale: WUON pipeline, 125K-1M tuples per input"
    (E.flat_scale_sweep ())

let run_extra_sweeps () =
  emit "Extra: selectivity sweep (distinct keys; size column = keys)"
    (E.selectivity_sweep ());
  emit "Extra: skew sweep (Zipf exponent in tenths; 256 keys)"
    (E.skew_sweep ())

let run_paper_scale () =
  List.iter
    (fun dataset ->
      emit
        (Printf.sprintf "Paper scale (%s): NJ left outer join"
           (E.dataset_name dataset))
        (E.nj_paper_scale dataset))
    [ E.Webkit; E.Meteo ]

(* --- the JSON report --- *)

(* Self-describing provenance for committed BENCH_*.json files. Nothing
   here is compared by check_bench.py (it pops "meta" before diffing) —
   it exists so a baseline records which commit, compiler, host and
   parallelism produced it. *)
let meta_json () =
  let git_commit =
    try
      let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
    with _ -> "unknown"
  in
  let host = try Unix.gethostname () with _ -> "unknown" in
  let timestamp =
    let tm = Unix.gmtime (Unix.gettimeofday ()) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  J.obj
    [
      ("git_commit", J.str git_commit);
      ("ocaml_version", J.str Sys.ocaml_version);
      ("host", J.str host);
      ("timestamp", J.str timestamp);
      ("jobs", J.int (Domain.recommended_domain_count ()));
    ]

let json_report metrics =
  let point (p : E.point) =
    J.obj
      ([
         ("series", J.str p.E.series);
         ("size", J.int p.E.size);
         ("ms", J.float p.E.ms);
         ("output", J.int p.E.output);
       ]
      (* machine-dependent like ms, so check_bench ignores it; only
         measured points carry the field *)
      @ if p.E.rss_kb > 0 then [ ("rss_kb", J.int p.E.rss_kb) ] else [])
  in
  let sweep (header, points) =
    J.obj
      [ ("name", J.str header); ("points", J.arr (List.map point points)) ]
  in
  let window name c = (name, J.int (Metrics.get metrics c)) in
  let ps = Metrics.dist_stats metrics Metrics.Partition_size in
  let mean = Metrics.mean ps in
  J.obj
    [
      ("meta", meta_json ());
      ("sweeps", J.arr (List.map sweep (List.rev !sweeps)));
      ( "windows",
        J.obj
          [
            window "overlapping" Metrics.Windows_overlapping;
            window "unmatched" Metrics.Windows_unmatched;
            window "negating" Metrics.Windows_negating;
          ] );
      ( "partition_skew",
        J.obj
          [
            ("sweeps", J.int ps.Metrics.count);
            ("max_size", J.int ps.Metrics.max);
            ("mean_size", J.float mean);
            ( "max_over_mean",
              J.float
                (if mean > 0.0 then float_of_int ps.Metrics.max /. mean
                 else 0.0) );
          ] );
      (* allocation of the recording domain across every sweep point:
         minor words plus the major/promoted split count_alloc now
         reports ([minor_alloc_words] keeps its name and semantics, so
         older baselines still compare) *)
      ( "alloc",
        J.obj
          [
            ( "minor_words",
              J.int (Metrics.get metrics Metrics.Minor_alloc_words) );
            ( "major_words",
              J.int (Metrics.get metrics Metrics.Major_alloc_words) );
            ( "promoted_words",
              J.int (Metrics.get metrics Metrics.Promoted_words) );
          ] );
      ( "prob_cache",
        match !prob_cache_report with
        | None -> J.obj []
        | Some (hits, misses, rate, speedups) ->
            J.obj
              [
                ("hits", J.int hits);
                ("misses", J.int misses);
                ( "resets",
                  J.int (Metrics.get metrics Metrics.Prob_cache_resets) );
                ("hit_rate", J.float rate);
                ( "speedup",
                  J.obj (List.map (fun (k, v) -> (k, J.float v)) speedups) );
              ] );
      (* the full snapshot, verbatim from the sink *)
      ("metrics", Metrics.to_json metrics);
    ]

let rec option_value flag = function
  | f :: v :: _ when f = flag -> Some v
  | _ :: rest -> option_value flag rest
  | [] -> None

let () =
  let flags = Array.to_list Sys.argv in
  let has f = List.mem f flags in
  let json_out = option_value "--json" flags in
  let openmetrics_out = option_value "--openmetrics" flags in
  let metrics = Metrics.create () in
  if Option.is_some json_out || Option.is_some openmetrics_out then
    Metrics.install metrics;
  let scale = if has "--quick" then E.Quick else E.Default in
  if has "--spill-only" then
    (* the CI memory-ceiling job: just the out-of-core series, under
       ulimit -v — everything else here would blow a 2 GB ceiling by
       design, not by regression *)
    run_spill_scale (has "--quick")
  else begin
    (* the spill series forks; run it before any sweep that spawns pool
       domains (forking a multi-domain OCaml runtime is undefined) *)
    if not (has "--no-spill") then run_spill_scale (has "--quick");
    if not (has "--no-bechamel") then run_bechamel ();
    if not (has "--no-sweep") then begin
      run_sweeps scale;
      run_prob_cache_sweep metrics scale;
      run_flat_scale ();
      if scale <> E.Quick then run_extra_sweeps ()
    end;
    if has "--paper" then run_paper_scale ()
  end;
  Metrics.uninstall ();
  (match json_out with
  | Some path ->
      let oc = open_out path in
      output_string oc (json_report metrics);
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote JSON report to %s\n" path
  | None -> ());
  (match openmetrics_out with
  | Some path ->
      Metrics.save_openmetrics metrics path;
      Printf.printf "wrote OpenMetrics report to %s\n" path
  | None -> ());
  Printf.printf "\nbench: done\n"
