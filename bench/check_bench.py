#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a freshly generated bench JSON report (bench/main.exe --json)
against the committed baseline (BENCH_6.json at the repo root). Timings
are machine-dependent and ignored; everything the pipeline counts
deterministically must match the baseline exactly:

  - every sweep point's (series, size, output cardinality)
  - window counts per class (overlapping / unmatched / negating)
  - the deterministic metrics counters (tuples in/out, sweep segments,
    lineage nodes, prob evals, prob-cache hits/misses/resets, ...)
  - partition counts and sizes of the domain-parallel sweeps

On top of the exact checks, three machine-independent performance
invariants of the CURRENT report:

  - the prob-cache hit rate on the lineage-heavy series must stay
    above a floor (the cache memoizes whole-formula probabilities; a
    hit-rate collapse means hash-consing or generation invalidation
    regressed even if outputs are still right);
  - the flat sweep core must stay >= --sweep-ratio-floor (default 5x)
    faster than the legacy Seq-of-records chain at the "Flat scale"
    sweep's ratio size — both sides are measured in the same process
    on the same machine, so the ratio is a property of the code;
  - minor-heap allocation (the minor_alloc_words counter, summed over
    every sweep point) may not grow more than --alloc-tolerance
    (default 15%) over the baseline. It is near-deterministic but not
    exactly so (domain scheduling moves worker allocations off the
    recording domain), hence a tolerance instead of an exact match.

Usage: check_bench.py BASELINE CURRENT [--hit-rate-floor F]
                      [--sweep-ratio-floor F] [--alloc-tolerance F]
Exits non-zero on the first class of failure, printing every diff.
"""

import argparse
import json
import sys

# Monotonic-time distributions (and the derived mean of partition_size)
# vary run to run; everything else in the report is deterministic.
DETERMINISTIC_COUNTERS = [
    "tuples_in",
    "tuples_out",
    "windows_overlapping",
    "windows_unmatched",
    "windows_negating",
    "sweep_segments",
    "lineage_nodes",
    "prob_evals",
    "partition_sweeps",
    "sanitizer_checks",
    "prob_cache_hits",
    "prob_cache_misses",
    "prob_cache_resets",
]


def flat_sweep_ratio(doc):
    """legacy ms / flat-kernel ms at the smallest common size of the
    "Flat scale" sweep; None if the sweep or either series is absent."""
    for sweep in doc["sweeps"]:
        if not sweep["name"].startswith("Flat scale"):
            continue
        by_series = {}
        for point in sweep["points"]:
            by_series.setdefault(point["series"], {})[point["size"]] = point["ms"]
        common = sorted(
            set(by_series.get("legacy", {})) & set(by_series.get("flat-kernel", {}))
        )
        if common:
            size = common[0]
            return by_series["legacy"][size] / by_series["flat-kernel"][size]
    return None


def sweep_points(doc):
    return {
        (sweep["name"], point["series"], point["size"]): point["output"]
        for sweep in doc["sweeps"]
        for point in sweep["points"]
    }


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--hit-rate-floor", type=float, default=0.25)
    parser.add_argument("--sweep-ratio-floor", type=float, default=5.0)
    parser.add_argument("--alloc-tolerance", type=float, default=0.15)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    # The meta block (git commit, OCaml version, host, timestamp, jobs)
    # is provenance, not behavior: never part of the comparison.
    baseline.pop("meta", None)
    current.pop("meta", None)

    failures = []

    base_points = sweep_points(baseline)
    cur_points = sweep_points(current)
    for key in sorted(set(base_points) | set(cur_points)):
        b, c = base_points.get(key), cur_points.get(key)
        if b != c:
            failures.append(f"sweep point {key}: baseline output {b}, current {c}")

    for cls, b in baseline["windows"].items():
        c = current["windows"].get(cls)
        if b != c:
            failures.append(f"windows.{cls}: baseline {b}, current {c}")

    base_counters = baseline["metrics"]["counters"]
    cur_counters = current["metrics"]["counters"]
    for name in DETERMINISTIC_COUNTERS:
        b, c = base_counters.get(name), cur_counters.get(name)
        if b != c:
            failures.append(f"counter {name}: baseline {b}, current {c}")

    for field in ("sweeps", "max_size"):
        b = baseline["partition_skew"][field]
        c = current["partition_skew"][field]
        if b != c:
            failures.append(f"partition_skew.{field}: baseline {b}, current {c}")

    pc_base, pc_cur = baseline["prob_cache"], current["prob_cache"]
    for name in ("hits", "misses", "resets"):
        if pc_base.get(name) != pc_cur.get(name):
            failures.append(
                f"prob_cache.{name}: baseline {pc_base.get(name)}, "
                f"current {pc_cur.get(name)}"
            )

    hit_rate = pc_cur.get("hit_rate", 0.0)
    if hit_rate < args.hit_rate_floor:
        failures.append(
            f"prob_cache.hit_rate {hit_rate:.3f} below floor {args.hit_rate_floor}"
        )

    sweep_ratio = flat_sweep_ratio(current)
    if sweep_ratio is None:
        failures.append('no "Flat scale" sweep with legacy + flat-kernel points')
    elif sweep_ratio < args.sweep_ratio_floor:
        failures.append(
            f"flat sweep-throughput ratio {sweep_ratio:.2f}x below floor "
            f"{args.sweep_ratio_floor}x (legacy ms / flat-kernel ms)"
        )

    alloc_base = base_counters.get("minor_alloc_words")
    alloc_cur = cur_counters.get("minor_alloc_words")
    if alloc_base and alloc_cur is not None:
        growth = alloc_cur / alloc_base - 1.0
        if growth > args.alloc_tolerance:
            failures.append(
                f"minor_alloc_words grew {100 * growth:.1f}% "
                f"(baseline {alloc_base}, current {alloc_cur}, "
                f"tolerance {100 * args.alloc_tolerance:.0f}%)"
            )

    if failures:
        print(f"bench regression check FAILED ({len(failures)} diffs):")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)

    print(
        "bench regression check passed: "
        f"{len(cur_points)} sweep points, hit rate {hit_rate:.3f}, "
        f"flat sweep ratio {sweep_ratio:.2f}x, "
        f"speedup {json.dumps(pc_cur.get('speedup', {}))}"
    )


if __name__ == "__main__":
    main()
