#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a freshly generated bench JSON report (bench/main.exe --json)
against the committed baseline (BENCH_9.json at the repo root). Timings
are machine-dependent and ignored; everything the pipeline counts
deterministically must match the baseline exactly:

  - every sweep point's (series, size, output cardinality)
  - window counts per class (overlapping / unmatched / negating)
  - the deterministic metrics counters (tuples in/out, sweep segments,
    lineage nodes, prob evals, prob-cache hits/misses/resets, ...)
  - partition counts and sizes of the domain-parallel sweeps

On top of the exact checks, three machine-independent performance
invariants of the CURRENT report:

  - the prob-cache hit rate on the lineage-heavy series must stay
    above a floor (the cache memoizes whole-formula probabilities; a
    hit-rate collapse means hash-consing or generation invalidation
    regressed even if outputs are still right);
  - the flat sweep core must stay >= --sweep-ratio-floor (default 5x)
    faster than the legacy Seq-of-records chain at the "Flat scale"
    sweep's ratio size — both sides are measured in the same process
    on the same machine, so the ratio is a property of the code;
  - minor-heap allocation (the minor_alloc_words counter, summed over
    every sweep point) may not grow more than --alloc-tolerance
    (default 15%) over the baseline. It is near-deterministic but not
    exactly so (domain scheduling moves worker allocations off the
    recording domain), hence a tolerance instead of an exact match.

Usage: check_bench.py BASELINE CURRENT [--hit-rate-floor F]
                      [--sweep-ratio-floor F] [--alloc-tolerance F]
                      [--require-counter NAME]... [--pool-hit-rate-floor F]
                      [--qps-floor F] [--p99-ceiling-ms F]
Exits non-zero on the first class of failure, printing every diff.

Server reports (bench/main.exe --server --json) carry a "server" block
with client-side latency and throughput plus the plan-/result-cache
counters. Two extra gates apply to the current report's server block:

  - --qps-floor F asserts server.qps >= F — a deliberately loose
    floor that catches the server serializing everything (e.g. cache
    lookups accidentally moved behind the admission queue) without
    being sensitive to CI machine speed;
  - --p99-ceiling-ms F asserts server.p99_ms <= F, same spirit.

Both also fail on any server-side errors or row mismatches recorded in
the block, and on a missing block when either flag is set.

Single-file mode: with only one report (check_bench.py CURRENT) every
baseline comparison is skipped and only the current-report invariants
run — used by the out-of-core CI job, whose --spill-only report has no
baseline, no prob-cache series and no flat-scale sweep. The two report
floors that depend on sweeps absent from such a report (prob-cache hit
rate, flat sweep ratio) are skipped when their data is missing instead
of failing; --require-counter and --pool-hit-rate-floor are the teeth:

  - --require-counter NAME (repeatable) asserts the counter is present
    and non-zero in the current report. The CI memory-ceiling job
    requires spill_bytes and spill_partitions, so a silent in-RAM
    fallback (which would pass the output checks while ignoring the
    budget) fails the gate.
  - --pool-hit-rate-floor F asserts pool_hits / (pool_hits +
    pool_misses) >= F: a hit-rate collapse means the buffer pool's
    eviction stopped earning hits on the sequential partition sweeps.
"""

import argparse
import json
import sys

# Monotonic-time distributions (and the derived mean of partition_size)
# vary run to run; everything else in the report is deterministic.
DETERMINISTIC_COUNTERS = [
    "tuples_in",
    "tuples_out",
    "windows_overlapping",
    "windows_unmatched",
    "windows_negating",
    "sweep_segments",
    "lineage_nodes",
    "prob_evals",
    "partition_sweeps",
    "sanitizer_checks",
    "prob_cache_hits",
    "prob_cache_misses",
    "prob_cache_resets",
]


def flat_sweep_ratio(doc):
    """legacy ms / flat-kernel ms at the smallest common size of the
    "Flat scale" sweep; None if the sweep or either series is absent."""
    for sweep in doc["sweeps"]:
        if not sweep["name"].startswith("Flat scale"):
            continue
        by_series = {}
        for point in sweep["points"]:
            by_series.setdefault(point["series"], {})[point["size"]] = point["ms"]
        common = sorted(
            set(by_series.get("legacy", {})) & set(by_series.get("flat-kernel", {}))
        )
        if common:
            size = common[0]
            return by_series["legacy"][size] / by_series["flat-kernel"][size]
    return None


def sweep_points(doc):
    return {
        (sweep["name"], point["series"], point["size"]): point["output"]
        for sweep in doc["sweeps"]
        for point in sweep["points"]
    }


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline", help="baseline report (or the sole report)")
    parser.add_argument("current", nargs="?", default=None)
    parser.add_argument("--hit-rate-floor", type=float, default=0.25)
    parser.add_argument("--sweep-ratio-floor", type=float, default=5.0)
    parser.add_argument("--alloc-tolerance", type=float, default=0.15)
    parser.add_argument(
        "--require-counter",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless this metrics counter is present and non-zero "
        "in the current report (repeatable)",
    )
    parser.add_argument(
        "--pool-hit-rate-floor",
        type=float,
        default=None,
        metavar="F",
        help="fail unless pool_hits / (pool_hits + pool_misses) >= F",
    )
    parser.add_argument(
        "--qps-floor",
        type=float,
        default=None,
        metavar="F",
        help="fail unless the server block reports qps >= F",
    )
    parser.add_argument(
        "--p99-ceiling-ms",
        type=float,
        default=None,
        metavar="F",
        help="fail unless the server block reports p99_ms <= F",
    )
    args = parser.parse_args()

    single_file = args.current is None
    with open(args.baseline) as f:
        first = json.load(f)
    if single_file:
        baseline, current = None, first
    else:
        baseline = first
        with open(args.current) as f:
            current = json.load(f)

    # The meta block (git commit, OCaml version, host, timestamp, jobs)
    # is provenance, not behavior: never part of the comparison.
    if baseline is not None:
        baseline.pop("meta", None)
    current.pop("meta", None)

    failures = []

    cur_points = sweep_points(current)
    cur_counters = current["metrics"]["counters"]

    if baseline is not None:
        base_points = sweep_points(baseline)
        for key in sorted(set(base_points) | set(cur_points)):
            b, c = base_points.get(key), cur_points.get(key)
            if b != c:
                failures.append(
                    f"sweep point {key}: baseline output {b}, current {c}"
                )

        for cls, b in baseline["windows"].items():
            c = current["windows"].get(cls)
            if b != c:
                failures.append(f"windows.{cls}: baseline {b}, current {c}")

        base_counters = baseline["metrics"]["counters"]
        for name in DETERMINISTIC_COUNTERS:
            b, c = base_counters.get(name), cur_counters.get(name)
            if b != c:
                failures.append(f"counter {name}: baseline {b}, current {c}")

        for field in ("sweeps", "max_size"):
            b = baseline["partition_skew"][field]
            c = current["partition_skew"][field]
            if b != c:
                failures.append(
                    f"partition_skew.{field}: baseline {b}, current {c}"
                )

        pc_base = baseline["prob_cache"]
        pc_cur = current["prob_cache"]
        for name in ("hits", "misses", "resets"):
            if pc_base.get(name) != pc_cur.get(name):
                failures.append(
                    f"prob_cache.{name}: baseline {pc_base.get(name)}, "
                    f"current {pc_cur.get(name)}"
                )

        alloc_base = base_counters.get("minor_alloc_words")
        alloc_cur = cur_counters.get("minor_alloc_words")
        if alloc_base and alloc_cur is not None:
            growth = alloc_cur / alloc_base - 1.0
            if growth > args.alloc_tolerance:
                failures.append(
                    f"minor_alloc_words grew {100 * growth:.1f}% "
                    f"(baseline {alloc_base}, current {alloc_cur}, "
                    f"tolerance {100 * args.alloc_tolerance:.0f}%)"
                )

    pc_cur = current["prob_cache"]
    hit_rate = pc_cur.get("hit_rate", 0.0)
    if "hit_rate" in pc_cur or not single_file:
        if hit_rate < args.hit_rate_floor:
            failures.append(
                f"prob_cache.hit_rate {hit_rate:.3f} below floor "
                f"{args.hit_rate_floor}"
            )

    sweep_ratio = flat_sweep_ratio(current)
    if sweep_ratio is None:
        if not single_file:
            failures.append(
                'no "Flat scale" sweep with legacy + flat-kernel points'
            )
    elif sweep_ratio < args.sweep_ratio_floor:
        failures.append(
            f"flat sweep-throughput ratio {sweep_ratio:.2f}x below floor "
            f"{args.sweep_ratio_floor}x (legacy ms / flat-kernel ms)"
        )

    for name in args.require_counter:
        value = cur_counters.get(name)
        if value is None:
            failures.append(f"required counter {name} missing from report")
        elif value <= 0:
            failures.append(f"required counter {name} is {value}, expected > 0")

    pool_hits = cur_counters.get("pool_hits", 0)
    pool_misses = cur_counters.get("pool_misses", 0)
    pool_rate = (
        pool_hits / (pool_hits + pool_misses) if pool_hits + pool_misses else 0.0
    )
    if args.pool_hit_rate_floor is not None:
        if pool_hits + pool_misses == 0:
            failures.append(
                "pool hit-rate floor set but the report recorded no "
                "buffer-pool reads"
            )
        elif pool_rate < args.pool_hit_rate_floor:
            failures.append(
                f"buffer-pool hit rate {pool_rate:.3f} below floor "
                f"{args.pool_hit_rate_floor}"
            )

    server = current.get("server")
    if args.qps_floor is not None or args.p99_ceiling_ms is not None:
        if server is None:
            failures.append(
                "server gates set but the report has no server block"
            )
        else:
            if server.get("errors", 0) or server.get("row_mismatches", 0):
                failures.append(
                    f"server bench recorded {server.get('errors', 0)} errors "
                    f"and {server.get('row_mismatches', 0)} row mismatches"
                )
            if args.qps_floor is not None and server["qps"] < args.qps_floor:
                failures.append(
                    f"server qps {server['qps']:.0f} below floor "
                    f"{args.qps_floor:.0f}"
                )
            if (
                args.p99_ceiling_ms is not None
                and server["p99_ms"] > args.p99_ceiling_ms
            ):
                failures.append(
                    f"server p99 {server['p99_ms']:.2f} ms above ceiling "
                    f"{args.p99_ceiling_ms:.2f} ms"
                )

    if failures:
        print(f"bench regression check FAILED ({len(failures)} diffs):")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)

    summary = [f"{len(cur_points)} sweep points"]
    if "hit_rate" in pc_cur:
        summary.append(f"hit rate {hit_rate:.3f}")
    if sweep_ratio is not None:
        summary.append(f"flat sweep ratio {sweep_ratio:.2f}x")
    if args.require_counter:
        summary.append(
            "counters "
            + ", ".join(f"{n}={cur_counters.get(n)}" for n in args.require_counter)
        )
    if args.pool_hit_rate_floor is not None:
        summary.append(f"pool hit rate {pool_rate:.3f}")
    if "speedup" in pc_cur:
        summary.append(f"speedup {json.dumps(pc_cur['speedup'])}")
    if server is not None:
        summary.append(
            f"server {server['qps']:.0f} q/s p99 {server['p99_ms']:.2f} ms "
            f"(plan cache {server.get('plan_cache_hits', 0)} hits, "
            f"result cache {server.get('result_cache_hits', 0)} hits)"
        )
    print("bench regression check passed: " + ", ".join(summary))


if __name__ == "__main__":
    main()
