#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a freshly generated bench JSON report (bench/main.exe --json)
against the committed baseline (BENCH_4.json at the repo root). Timings
are machine-dependent and ignored; everything the pipeline counts
deterministically must match the baseline exactly:

  - every sweep point's (series, size, output cardinality)
  - window counts per class (overlapping / unmatched / negating)
  - the deterministic metrics counters (tuples in/out, sweep segments,
    lineage nodes, prob evals, prob-cache hits/misses/resets, ...)
  - partition counts and sizes of the domain-parallel sweeps

On top of the exact checks, the prob-cache hit rate on the
lineage-heavy series must stay above a floor (the cache memoizes
whole-formula probabilities; a hit-rate collapse means hash-consing or
generation invalidation regressed even if outputs are still right).

Usage: check_bench.py BASELINE CURRENT [--hit-rate-floor F]
Exits non-zero on the first class of failure, printing every diff.
"""

import argparse
import json
import sys

# Monotonic-time distributions (and the derived mean of partition_size)
# vary run to run; everything else in the report is deterministic.
DETERMINISTIC_COUNTERS = [
    "tuples_in",
    "tuples_out",
    "windows_overlapping",
    "windows_unmatched",
    "windows_negating",
    "sweep_segments",
    "lineage_nodes",
    "prob_evals",
    "partition_sweeps",
    "sanitizer_checks",
    "prob_cache_hits",
    "prob_cache_misses",
    "prob_cache_resets",
]


def sweep_points(doc):
    return {
        (sweep["name"], point["series"], point["size"]): point["output"]
        for sweep in doc["sweeps"]
        for point in sweep["points"]
    }


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--hit-rate-floor", type=float, default=0.25)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = []

    base_points = sweep_points(baseline)
    cur_points = sweep_points(current)
    for key in sorted(set(base_points) | set(cur_points)):
        b, c = base_points.get(key), cur_points.get(key)
        if b != c:
            failures.append(f"sweep point {key}: baseline output {b}, current {c}")

    for cls, b in baseline["windows"].items():
        c = current["windows"].get(cls)
        if b != c:
            failures.append(f"windows.{cls}: baseline {b}, current {c}")

    base_counters = baseline["metrics"]["counters"]
    cur_counters = current["metrics"]["counters"]
    for name in DETERMINISTIC_COUNTERS:
        b, c = base_counters.get(name), cur_counters.get(name)
        if b != c:
            failures.append(f"counter {name}: baseline {b}, current {c}")

    for field in ("sweeps", "max_size"):
        b = baseline["partition_skew"][field]
        c = current["partition_skew"][field]
        if b != c:
            failures.append(f"partition_skew.{field}: baseline {b}, current {c}")

    pc_base, pc_cur = baseline["prob_cache"], current["prob_cache"]
    for name in ("hits", "misses", "resets"):
        if pc_base.get(name) != pc_cur.get(name):
            failures.append(
                f"prob_cache.{name}: baseline {pc_base.get(name)}, "
                f"current {pc_cur.get(name)}"
            )

    hit_rate = pc_cur.get("hit_rate", 0.0)
    if hit_rate < args.hit_rate_floor:
        failures.append(
            f"prob_cache.hit_rate {hit_rate:.3f} below floor {args.hit_rate_floor}"
        )

    if failures:
        print(f"bench regression check FAILED ({len(failures)} diffs):")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)

    print(
        "bench regression check passed: "
        f"{len(cur_points)} sweep points, hit rate {hit_rate:.3f}, "
        f"speedup {json.dumps(pc_cur.get('speedup', {}))}"
    )


if __name__ == "__main__":
    main()
