examples/quickstart.ml: Catalog Formula Interval Nj Parser Planner Printf Prob Relation Theta Tpdb
