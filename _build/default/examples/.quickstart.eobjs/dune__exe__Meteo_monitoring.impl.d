examples/meteo_monitoring.ml: Array Datasets Fact List Nj Printf Relation Set_ops String Sys Tpdb Tpdb_experiments Tuple Unix Value
