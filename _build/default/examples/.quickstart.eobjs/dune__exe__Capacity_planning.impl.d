examples/capacity_planning.ml: Catalog Interval Parser Planner Printf Relation Tpdb
