examples/meteo_monitoring.mli:
