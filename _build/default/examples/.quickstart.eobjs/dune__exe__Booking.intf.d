examples/booking.mli:
