examples/webkit_analysis.mli:
