examples/booking.ml: Interval List Nj Printf Relation Render Seq Spec Theta Tpdb Window
