examples/webkit_analysis.ml: Array Fact Float List Nj Printf Relation Sys Ta Tpdb Tpdb_experiments Tuple Unix Value
