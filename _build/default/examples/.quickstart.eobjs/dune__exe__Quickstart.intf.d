examples/quickstart.mli:
