(* Capacity planning with TP-SQL: the full dialect on the paper's booking
   scenario - outer/anti joins, DISTINCT projection, timeslices and
   sequenced expected-value aggregation.

     dune exec examples/capacity_planning.exe *)

open Tpdb

let catalog = Catalog.create ()

let () =
  Catalog.register catalog
    (Relation.of_rows ~name:"a" ~columns:[ "Name"; "Loc" ]
       [
         ([ "Ann"; "ZAK" ], Interval.make 2 8, 0.7);
         ([ "Jim"; "WEN" ], Interval.make 7 10, 0.8);
         ([ "Lea"; "ZAK" ], Interval.make 5 9, 0.9);
       ]);
  Catalog.register catalog
    (Relation.of_rows ~name:"b" ~columns:[ "Hotel"; "Loc" ]
       [
         ([ "hotel3"; "SOR" ], Interval.make 1 4, 0.9);
         ([ "hotel2"; "ZAK" ], Interval.make 5 8, 0.6);
         ([ "hotel1"; "ZAK" ], Interval.make 4 6, 0.7);
       ])

let show sql =
  Printf.printf "\n> %s\n" sql;
  let plan = Planner.plan catalog (Parser.parse sql) in
  print_endline (Planner.explain plan);
  Relation.print (Planner.run plan)

let () =
  (* Where is demand at all, per time point? DISTINCT folds the two ZAK
     clients into one tuple per maximal segment, disjoining lineages. *)
  show "SELECT DISTINCT Loc FROM a";

  (* Expected demand per location: E[#clients] per segment. *)
  show "SELECT COUNT(*) FROM a GROUP BY Loc";

  (* Expected supply per location, mid-week only. *)
  show "SELECT COUNT(*) FROM b GROUP BY Loc DURING [4,7)";

  (* Who finds no room on day 5? *)
  show "SELECT Name FROM a ANTIJOIN b ON a.Loc = b.Loc AT 5";

  (* The planning view: demand joined to supply over the booking window. *)
  show
    "SELECT Name, Hotel FROM a LEFT TPJOIN b ON a.Loc = b.Loc \
     WHERE Name <> 'Jim' DURING [4,8)"
