module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula
module Relation = Tpdb_relation.Relation
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Value = Tpdb_relation.Value
module Schema = Tpdb_relation.Schema
module Codec = Tpdb_storage.Codec
module Heap_file = Tpdb_storage.Heap_file
module Buffer_pool = Tpdb_storage.Buffer_pool
module Db = Tpdb_storage.Db

let iv = Interval.make

let with_temp_dir f =
  let dir = Filename.temp_file "tpdb_store" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun file -> Sys.remove (Filename.concat dir file)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* --- Codec --- *)

let test_codec_scalars () =
  let buf = Buffer.create 64 in
  Codec.write_uint16 buf 0;
  Codec.write_uint16 buf 65535;
  Codec.write_int64 buf (-42);
  Codec.write_int64 buf max_int;
  Codec.write_float buf 0.084;
  Codec.write_string buf "hello, wörld";
  let r = Codec.reader (Buffer.to_bytes buf) in
  Alcotest.(check int) "u16 zero" 0 (Codec.read_uint16 r);
  Alcotest.(check int) "u16 max" 65535 (Codec.read_uint16 r);
  Alcotest.(check int) "negative int" (-42) (Codec.read_int64 r);
  Alcotest.(check int) "max_int" max_int (Codec.read_int64 r);
  Alcotest.(check (float 0.0)) "float bits" 0.084 (Codec.read_float r);
  Alcotest.(check string) "string" "hello, wörld" (Codec.read_string r)

let test_codec_values () =
  let values =
    [ Value.Null; Value.S "zurich"; Value.I (-7); Value.F 2.5; Value.S "" ]
  in
  let buf = Buffer.create 64 in
  List.iter (Codec.write_value buf) values;
  let r = Codec.reader (Buffer.to_bytes buf) in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Value.to_string expected) true
        (Value.equal expected (Codec.read_value r)))
    values

let test_codec_tuple_roundtrip () =
  let tp =
    Tuple.make
      ~fact:(Fact.of_values [ Value.S "Ann"; Value.Null; Value.I 7 ])
      ~lineage:(Formula.of_string "a1 & !(b2 | b3)")
      ~iv:(iv 5 6) ~p:0.084
  in
  let buf = Buffer.create 64 in
  Codec.write_tuple buf tp;
  let back = Codec.read_tuple (Codec.reader (Buffer.to_bytes buf)) in
  Alcotest.(check bool) "roundtrip" true (Tuple.equal tp back);
  Alcotest.(check int) "tuple_size = encoded length" (Buffer.length buf)
    (Codec.tuple_size tp)

let test_codec_corruption () =
  let r = Codec.reader (Bytes.of_string "\002") in
  (match Codec.read_value r with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated int accepted");
  let r = Codec.reader (Bytes.of_string "\042") in
  match Codec.read_value r with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "unknown tag accepted"

(* --- Heap file --- *)

let big_relation n =
  Relation.of_rows ~name:"big" ~columns:[ "K"; "Payload" ] ~tag:"big"
    (List.init n (fun i ->
         ( [ Printf.sprintf "k%d" (i mod 17); Printf.sprintf "payload-%06d" i ],
           iv i (i + 3),
           0.25 +. (0.5 *. float_of_int (i mod 3) /. 3.0) )))

let test_heap_file_roundtrip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "big.tpr" in
      let r = big_relation 2_000 in
      Heap_file.write path r;
      Alcotest.(check bool) "multi-page" true (Heap_file.page_count path > 5);
      let back = Heap_file.read path in
      Alcotest.(check bool) "roundtrip" true (Relation.equal_as_sets r back);
      Alcotest.(check (list string))
        "schema" [ "K"; "Payload" ]
        (Schema.columns (Heap_file.schema_of path)))

let test_heap_file_oversize () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wide.tpr" in
      (* One tuple much larger than a page, surrounded by normal ones. *)
      let huge = String.make (3 * Heap_file.page_size) 'x' in
      let r =
        Relation.of_rows ~name:"wide" ~columns:[ "Blob" ] ~tag:"w"
          [
            ([ "small-1" ], iv 0 2, 0.5);
            ([ huge ], iv 1 5, 0.7);
            ([ "small-2" ], iv 4 9, 0.9);
          ]
      in
      Heap_file.write path r;
      let back = Heap_file.read path in
      Alcotest.(check bool) "oversize roundtrip" true (Relation.equal_as_sets r back))

let test_heap_file_empty () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "empty.tpr" in
      let r = Relation.of_rows ~name:"empty" ~columns:[ "K" ] [] in
      Heap_file.write path r;
      Alcotest.(check int) "no data pages" 0 (Heap_file.page_count path);
      Alcotest.(check int) "no tuples" 0 (Relation.cardinality (Heap_file.read path)))

let test_heap_file_corrupt () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "bad.tpr" in
      let oc = open_out_bin path in
      output_string oc "NOPE-this-is-not-a-heap-file";
      close_out oc;
      match Heap_file.read path with
      | exception Heap_file.Corrupt _ -> ()
      | _ -> Alcotest.fail "bad magic accepted")

let test_heap_file_version_check () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "v.tpr" in
      Heap_file.write path (big_relation 10);
      (* Flip the version field (bytes 4-5 after the magic). *)
      let bytes = In_channel.with_open_bin path In_channel.input_all in
      let mutated = Bytes.of_string bytes in
      Bytes.set mutated 4 '\099';
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc mutated);
      match Heap_file.read path with
      | exception Heap_file.Corrupt _ -> ()
      | _ -> Alcotest.fail "future format version accepted")

(* --- Buffer pool --- *)

let test_buffer_pool () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "pooled.tpr" in
      Heap_file.write path (big_relation 500);
      (* Pool larger than the file: the second scan is all hits. *)
      let pool = Buffer_pool.create ~capacity:64 in
      let first = Heap_file.read ~pool path in
      let hits_cold, misses_cold = Buffer_pool.stats pool in
      Alcotest.(check bool) "cold read misses" true (misses_cold > 0);
      Alcotest.(check int) "no hits yet" 0 hits_cold;
      let again = Heap_file.read ~pool path in
      let hits, misses_warm = Buffer_pool.stats pool in
      Alcotest.(check int) "warm scan is all hits" misses_cold hits;
      Alcotest.(check int) "no new misses" misses_cold misses_warm;
      Alcotest.(check bool) "reads agree" true (Relation.equal_as_sets first again);
      (* Pool smaller than the file: sequential flooding means zero hits,
         but the cache never exceeds its capacity. *)
      let tiny = Buffer_pool.create ~capacity:2 in
      ignore (Heap_file.read ~pool:tiny path);
      ignore (Heap_file.read ~pool:tiny path);
      let tiny_hits, _ = Buffer_pool.stats tiny in
      Alcotest.(check int) "sequential flooding: no hits" 0 tiny_hits;
      Alcotest.(check bool) "capacity bounds cache" true
        (Buffer_pool.cached_pages tiny <= 2))

let test_buffer_pool_invalidate () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "mut.tpr" in
      let pool = Buffer_pool.create ~capacity:16 in
      Heap_file.write path (big_relation 50);
      let v1 = Heap_file.read ~pool path in
      Heap_file.write path (big_relation 60);
      Buffer_pool.invalidate pool ~path;
      let v2 = Heap_file.read ~pool path in
      Alcotest.(check int) "first version" 50 (Relation.cardinality v1);
      Alcotest.(check int) "fresh pages after invalidate" 60
        (Relation.cardinality v2))

(* --- Db --- *)

let test_db () =
  with_temp_dir (fun dir ->
      let db = Db.open_ (Filename.concat dir "warehouse") in
      Alcotest.(check (list string)) "empty" [] (Db.list db);
      Db.save db (Fixtures.relation_a ());
      Db.save db (Fixtures.relation_b ());
      Alcotest.(check (list string)) "listed" [ "a"; "b" ] (Db.list db);
      Alcotest.(check bool) "exists" true (Db.exists db "a");
      let a = Db.load db "a" in
      Alcotest.(check bool) "load = original" true
        (Relation.equal_as_sets (Fixtures.relation_a ()) a);
      (* Overwrite goes through pool invalidation. *)
      Db.save db (Relation.of_rows ~name:"a" ~columns:[ "Name"; "Loc" ] []);
      Alcotest.(check int) "overwritten" 0 (Relation.cardinality (Db.load db "a"));
      Db.drop db "a";
      Alcotest.(check bool) "dropped" false (Db.exists db "a");
      Db.drop db "a";
      (match Db.load db "a" with
      | exception Not_found -> ()
      | _ -> Alcotest.fail "loaded dropped relation");
      (* cleanup nested dir for with_temp_dir *)
      Array.iter
        (fun f -> Sys.remove (Filename.concat (Db.dir db) f))
        (Sys.readdir (Db.dir db));
      Sys.rmdir (Db.dir db))

(* --- properties --- *)

module Test = QCheck2.Test

let qtest = QCheck_alcotest.to_alcotest ~speed_level:`Quick

let prop_heap_file_roundtrip =
  Test.make ~name:"heap file round-trips random relations" ~count:60
    ~print:Tp_gen.print_relation
    (Tp_gen.relation_gen ~name:"r" ())
    (fun r ->
      with_temp_dir (fun dir ->
          let path = Filename.concat dir "r.tpr" in
          Heap_file.write path r;
          Relation.equal_as_sets r (Heap_file.read path)))

let prop_join_results_survive_storage =
  Test.make ~name:"derived relations survive storage" ~count:40
    ~print:Tp_gen.print_triple
    (Tp_gen.scenario_gen ())
    (fun (theta, r, s) ->
      let result = Tpdb_joins.Nj.left_outer ~theta r s in
      with_temp_dir (fun dir ->
          let path = Filename.concat dir "q.tpr" in
          Heap_file.write path result;
          Relation.equal_as_sets result (Heap_file.read path)))

let suite =
  [
    Alcotest.test_case "codec scalars" `Quick test_codec_scalars;
    Alcotest.test_case "codec values" `Quick test_codec_values;
    Alcotest.test_case "codec tuple round-trip" `Quick test_codec_tuple_roundtrip;
    Alcotest.test_case "codec corruption" `Quick test_codec_corruption;
    Alcotest.test_case "heap file round-trip" `Quick test_heap_file_roundtrip;
    Alcotest.test_case "heap file oversize chain" `Quick test_heap_file_oversize;
    Alcotest.test_case "heap file empty" `Quick test_heap_file_empty;
    Alcotest.test_case "heap file corruption" `Quick test_heap_file_corrupt;
    Alcotest.test_case "heap file version check" `Quick test_heap_file_version_check;
    Alcotest.test_case "buffer pool" `Quick test_buffer_pool;
    Alcotest.test_case "buffer pool invalidation" `Quick test_buffer_pool_invalidate;
    Alcotest.test_case "db directory" `Quick test_db;
    qtest prop_heap_file_roundtrip;
    qtest prop_join_results_survive_storage;
  ]
