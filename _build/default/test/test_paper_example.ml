(* Golden tests for the paper's running example: Fig. 1b (the TP left
   outer join), Fig. 2 (all windows of a w.r.t. b) and Table II (the
   window sets each operator consumes). *)

open Fixtures
module Window = Tpdb_windows.Window
module Overlap = Tpdb_windows.Overlap
module Lawau = Tpdb_windows.Lawau
module Lawan = Tpdb_windows.Lawan
module Nj = Tpdb_joins.Nj
module Reference = Tpdb_joins.Reference

(* Fig. 1b, with the raw four output columns (Name, a.Loc, Hotel, b.Loc):
   the paper projects b.Loc away for display. *)
let expected_left_outer () =
  relation ~name:"q" ~columns:[ "Name"; "a.Loc"; "Hotel"; "b.Loc" ]
    [
      ([ "Ann"; "ZAK"; "-"; "-" ], "a1", (2, 4), 0.70);
      ([ "Ann"; "ZAK"; "hotel1"; "ZAK" ], "a1 & b3", (4, 6), 0.49);
      ([ "Ann"; "ZAK"; "hotel2"; "ZAK" ], "a1 & b2", (5, 8), 0.42);
      ([ "Ann"; "ZAK"; "-"; "-" ], "a1 & !b3", (4, 5), 0.21);
      ([ "Ann"; "ZAK"; "-"; "-" ], "a1 & !(b3 | b2)", (5, 6), 0.084);
      ([ "Ann"; "ZAK"; "-"; "-" ], "a1 & !b2", (6, 8), 0.28);
      ([ "Jim"; "WEN"; "-"; "-" ], "a2", (7, 10), 0.80);
    ]

let test_fig1b_nj () =
  let result = Nj.left_outer ~theta:theta_loc (relation_a ()) (relation_b ()) in
  check_relation "NJ left outer join reproduces Fig. 1b"
    (expected_left_outer ()) result

let test_fig1b_reference () =
  let result =
    Reference.left_outer ~theta:theta_loc (relation_a ()) (relation_b ())
  in
  check_relation "timepoint oracle reproduces Fig. 1b"
    (expected_left_outer ()) result

let test_fig1b_probabilities () =
  let result = Nj.left_outer ~theta:theta_loc (relation_a ()) (relation_b ()) in
  let find lineage_str =
    let target =
      Fixtures.Formula.normalize (Fixtures.Formula.of_string lineage_str)
    in
    match
      List.find_opt
        (fun tp ->
          Fixtures.Formula.equal
            (Fixtures.Formula.normalize (Fixtures.Tuple.lineage tp))
            target)
        (Fixtures.Relation.tuples result)
    with
    | Some tp -> Fixtures.Tuple.p tp
    | None -> Alcotest.failf "no output tuple with lineage %s" lineage_str
  in
  let check_p expected lineage =
    Alcotest.check (Alcotest.float 1e-9) lineage expected (find lineage)
  in
  check_p 0.70 "a1";
  check_p 0.49 "a1 & b3";
  check_p 0.42 "a1 & b2";
  check_p 0.21 "a1 & !b3";
  check_p 0.084 "a1 & !(b3 | b2)";
  check_p 0.28 "a1 & !b2";
  check_p 0.80 "a2"

(* Fig. 2: the window sets of a w.r.t. b under θ. *)
let all_windows () =
  Nj.windows_wuon ~theta:theta_loc (relation_a ()) (relation_b ())
  |> List.of_seq

let count kind ws = List.length (List.filter (fun w -> Window.kind w = kind) ws)

let window_strings kind ws =
  List.filter (fun w -> Window.kind w = kind) ws
  |> List.map Window.to_string
  |> List.sort String.compare

let test_fig2_window_counts () =
  let ws = all_windows () in
  Alcotest.(check int) "unmatched (w1, w2)" 2 (count Window.Unmatched ws);
  Alcotest.(check int) "overlapping (w3, w4)" 2 (count Window.Overlapping ws);
  Alcotest.(check int) "negating (w5, w6, w7)" 3 (count Window.Negating ws)

let test_fig2_windows_exact () =
  let ws = all_windows () in
  Alcotest.(check (list string))
    "unmatched windows"
    [
      "unmatched('Ann, ZAK', null, [2,4), a1, null)";
      "unmatched('Jim, WEN', null, [7,10), a2, null)";
    ]
    (window_strings Window.Unmatched ws);
  Alcotest.(check (list string))
    "overlapping windows"
    [
      "overlapping('Ann, ZAK', 'hotel1, ZAK', [4,6), a1, b3)";
      "overlapping('Ann, ZAK', 'hotel2, ZAK', [5,8), a1, b2)";
    ]
    (window_strings Window.Overlapping ws);
  Alcotest.(check (list string))
    "negating windows"
    [
      "negating('Ann, ZAK', null, [4,5), a1, b3)";
      "negating('Ann, ZAK', null, [5,6), a1, b3 \xe2\x88\xa8 b2)";
      "negating('Ann, ZAK', null, [6,8), a1, b2)";
    ]
    (window_strings Window.Negating ws)

(* Table II: each operator consumes exactly its window sets. The anti join
   keeps only the r-side unmatched and negating windows. *)
let test_table2_anti () =
  let expected =
    relation ~name:"a_anti_b" ~columns:[ "Name"; "Loc" ]
      [
        ([ "Ann"; "ZAK" ], "a1", (2, 4), 0.70);
        ([ "Ann"; "ZAK" ], "a1 & !b3", (4, 5), 0.21);
        ([ "Ann"; "ZAK" ], "a1 & !(b3 | b2)", (5, 6), 0.084);
        ([ "Ann"; "ZAK" ], "a1 & !b2", (6, 8), 0.28);
        ([ "Jim"; "WEN" ], "a2", (7, 10), 0.80);
      ]
  in
  check_relation "TP anti join on the paper example" expected
    (Nj.anti ~theta:theta_loc (relation_a ()) (relation_b ()))

let test_table2_right_outer () =
  (* b ⟖ has unmatched/negating windows of b w.r.t. a: mirror of the
     example. Validated against the independent oracle. *)
  let nj = Nj.right_outer ~theta:theta_loc (relation_a ()) (relation_b ()) in
  let oracle =
    Reference.right_outer ~theta:theta_loc (relation_a ()) (relation_b ())
  in
  check_relation "right outer matches oracle" oracle nj

let test_table2_full_outer () =
  let nj = Nj.full_outer ~theta:theta_loc (relation_a ()) (relation_b ()) in
  let oracle =
    Reference.full_outer ~theta:theta_loc (relation_a ()) (relation_b ())
  in
  check_relation "full outer matches oracle" oracle nj

let test_inner () =
  let nj = Nj.inner ~theta:theta_loc (relation_a ()) (relation_b ()) in
  let oracle =
    Reference.inner ~theta:theta_loc (relation_a ()) (relation_b ())
  in
  check_relation "inner join matches oracle" oracle nj

let suite =
  [
    Alcotest.test_case "Fig1b: NJ left outer join" `Quick test_fig1b_nj;
    Alcotest.test_case "Fig1b: oracle left outer join" `Quick test_fig1b_reference;
    Alcotest.test_case "Fig1b: output probabilities" `Quick test_fig1b_probabilities;
    Alcotest.test_case "Fig2: window counts" `Quick test_fig2_window_counts;
    Alcotest.test_case "Fig2: windows exact" `Quick test_fig2_windows_exact;
    Alcotest.test_case "TableII: anti join" `Quick test_table2_anti;
    Alcotest.test_case "TableII: right outer" `Quick test_table2_right_outer;
    Alcotest.test_case "TableII: full outer" `Quick test_table2_full_outer;
    Alcotest.test_case "inner join" `Quick test_inner;
  ]
