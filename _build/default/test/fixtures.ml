(* Shared test data: the paper's running example (Fig. 1) and helpers for
   building small TP relations tersely. *)

module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula
module Relation = Tpdb_relation.Relation
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Theta = Tpdb_windows.Theta

let iv a b = Interval.make a b

(* wantsToVisit: who wants to be where, and when (paper Fig. 1a). *)
let relation_a () =
  Relation.of_rows ~name:"a" ~columns:[ "Name"; "Loc" ]
    [
      ([ "Ann"; "ZAK" ], iv 2 8, 0.7);
      ([ "Jim"; "WEN" ], iv 7 10, 0.8);
    ]

(* hotelAvailability: which hotel is free where, and when. *)
let relation_b () =
  Relation.of_rows ~name:"b" ~columns:[ "Hotel"; "Loc" ]
    [
      ([ "hotel3"; "SOR" ], iv 1 4, 0.9);
      ([ "hotel2"; "ZAK" ], iv 5 8, 0.6);
      ([ "hotel1"; "ZAK" ], iv 4 6, 0.7);
    ]

(* θ : a.Loc = b.Loc *)
let theta_loc = Theta.eq 1 1

(* Terse builder: facts from strings, lineage from the ASCII notation. *)
let tuple columns_values lineage_str (ts, te) p =
  Tuple.make
    ~fact:(Fact.of_strings columns_values)
    ~lineage:(Formula.of_string lineage_str)
    ~iv:(iv ts te) ~p

let relation ~name ~columns rows =
  Relation.of_tuples
    (Tpdb_relation.Schema.make ~name columns)
    (List.map (fun (values, lineage, span, p) -> tuple values lineage span p) rows)

(* Alcotest testable for relations under set semantics. *)
let relation_testable =
  Alcotest.testable
    (fun ppf r -> Relation.pp ppf r)
    (fun x y -> Relation.equal_as_sets x y)

let check_relation msg expected actual =
  Alcotest.check relation_testable msg expected actual
