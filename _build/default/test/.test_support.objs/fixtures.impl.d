test/fixtures.ml: Alcotest List Tpdb_interval Tpdb_lineage Tpdb_relation Tpdb_windows
