test/tp_gen.ml: Format Gen List Printf QCheck2 Tpdb_interval Tpdb_relation Tpdb_windows
