module Operator = Tpdb_engine.Operator
module Grouping = Tpdb_engine.Grouping
module Hash_partition = Tpdb_engine.Hash_partition
module Heap = Tpdb_engine.Heap

(* --- Operator --- *)

let test_operator_basics () =
  let op =
    Operator.of_list [ 1; 2; 3; 4 ]
    |> Operator.filter (fun x -> x mod 2 = 0)
    |> Operator.map (fun x -> x * 10)
  in
  Alcotest.(check (list int)) "map/filter pipeline" [ 20; 40 ]
    (Operator.to_list op)

let test_operator_rescan () =
  let op = Operator.of_list [ 3; 1; 2 ] |> Operator.sort Int.compare in
  Operator.open_ op;
  Alcotest.(check (option int)) "first" (Some 1) (Operator.next op);
  Alcotest.(check (option int)) "second" (Some 2) (Operator.next op);
  (* Re-open rescans from the start, as a nested loop would. *)
  Operator.open_ op;
  Alcotest.(check (option int)) "rescan first" (Some 1) (Operator.next op);
  Alcotest.(check (option int)) "rescan second" (Some 2) (Operator.next op);
  Alcotest.(check (option int)) "rescan third" (Some 3) (Operator.next op);
  Alcotest.(check (option int)) "exhausted" None (Operator.next op)

let test_operator_counted () =
  let op, count = Operator.counted (Operator.of_list [ 1; 2; 3 ]) in
  Alcotest.(check int) "before" 0 (count ());
  ignore (Operator.to_list op);
  Alcotest.(check int) "after" 3 (count ())

let test_operator_pipelining () =
  (* The pipeline must not force its input beyond what is consumed. *)
  let forced = ref 0 in
  let source () =
    Seq.map
      (fun x ->
        incr forced;
        x)
      (List.to_seq [ 1; 2; 3; 4; 5 ])
  in
  let op = Operator.of_seq source |> Operator.map (fun x -> x + 1) in
  Operator.open_ op;
  ignore (Operator.next op);
  ignore (Operator.next op);
  Alcotest.(check int) "only consumed prefix forced" 2 !forced

(* --- Grouping --- *)

let test_runs () =
  let runs =
    Grouping.runs ~same:(fun a b -> fst a = fst b)
      (List.to_seq [ (1, "a"); (1, "b"); (2, "c"); (1, "d") ])
    |> List.of_seq
  in
  Alcotest.(check int) "three runs" 3 (List.length runs);
  Alcotest.(check (list string)) "first run" [ "a"; "b" ]
    (List.map snd (List.nth runs 0));
  Alcotest.(check (list string)) "third run" [ "d" ]
    (List.map snd (List.nth runs 2))

let test_map_runs () =
  let doubled =
    Grouping.map_runs ~same:( = ) (fun run -> run @ run)
      (List.to_seq [ 1; 1; 2 ])
    |> List.of_seq
  in
  Alcotest.(check (list int)) "per-run rewrite" [ 1; 1; 1; 1; 2; 2 ] doubled

(* --- Hash partition --- *)

let test_hash_partition () =
  let part =
    Hash_partition.build ~key:String.length ~hash:Hashtbl.hash ~equal:Int.equal
      [ "aa"; "b"; "cc"; "ddd" ]
  in
  Alcotest.(check (list string)) "bucket order stable" [ "aa"; "cc" ]
    (Hash_partition.probe part 2);
  Alcotest.(check (list string)) "missing key" [] (Hash_partition.probe part 9);
  Alcotest.(check int) "distinct keys" 3 (Hash_partition.size part);
  Hash_partition.map_buckets List.rev part;
  Alcotest.(check (list string)) "map_buckets" [ "cc"; "aa" ]
    (Hash_partition.probe part 2)

(* --- Heap --- *)

let test_heap_basics () =
  let h = Heap.create ~cmp:Int.compare () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "size" 5 (Heap.size h);
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop duplicate" (Some 1) (Heap.pop h);
  Heap.clear h;
  Alcotest.(check (option int)) "cleared" None (Heap.pop h)

(* --- Interval tree --- *)

module Interval = Tpdb_interval.Interval
module Interval_tree = Tpdb_engine.Interval_tree

let test_interval_tree_basics () =
  let iv = Interval.make in
  let tree =
    Interval_tree.build snd
      [ ("a", iv 0 4); ("b", iv 2 6); ("c", iv 8 10); ("d", iv 3 9) ]
  in
  Alcotest.(check int) "size" 4 (Interval_tree.size tree);
  let names q = List.map fst (Interval_tree.overlapping tree q) in
  Alcotest.(check (list string)) "overlap query" [ "a"; "b"; "d" ] (names (iv 1 4));
  Alcotest.(check (list string)) "right edge excluded" [ "b"; "d"; "c" ]
    (names (iv 4 9));
  Alcotest.(check (list string)) "stabbing" [ "b"; "d" ]
    (List.map fst (Interval_tree.stabbing tree 5));
  Alcotest.(check (list string)) "no hit" [] (names (iv 20 30));
  Alcotest.(check (list string)) "empty tree" []
    (List.map fst (Interval_tree.overlapping (Interval_tree.build snd []) (iv 0 5)))

open QCheck2

let prop_interval_tree_matches_naive =
  Test.make ~name:"interval tree = naive overlap scan" ~count:300
    Gen.(
      pair
        (list_size (int_range 0 40)
           (pair (int_range 0 30) (int_range 1 8)))
        (pair (int_range 0 30) (int_range 1 8)))
    (fun (raw_items, (qs, qd)) ->
      let items =
        List.mapi
          (fun i (ts, d) -> (i, Tpdb_interval.Interval.make ts (ts + d)))
          raw_items
      in
      let query = Tpdb_interval.Interval.make qs (qs + qd) in
      let tree = Interval_tree.build snd items in
      let naive =
        List.filter
          (fun (_, span) -> Tpdb_interval.Interval.overlaps span query)
          (List.stable_sort
             (fun (_, a) (_, b) -> Tpdb_interval.Interval.compare a b)
             items)
      in
      Interval_tree.overlapping tree query = naive)

let prop_heap_sorts =
  Test.make ~name:"heap pops in sorted order" ~count:200
    Gen.(list_size (int_range 0 50) (int_range (-100) 100))
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare () in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort Int.compare xs)

let prop_runs_concat =
  Test.make ~name:"concatenating runs yields the input" ~count:200
    Gen.(list_size (int_range 0 30) (int_range 0 3))
    (fun xs ->
      List.concat (List.of_seq (Grouping.runs ~same:Int.equal (List.to_seq xs)))
      = xs)

let prop_runs_maximal =
  Test.make ~name:"adjacent runs have different keys" ~count:200
    Gen.(list_size (int_range 0 30) (int_range 0 3))
    (fun xs ->
      let runs = List.of_seq (Grouping.runs ~same:Int.equal (List.to_seq xs)) in
      let rec ok = function
        | a :: (b :: _ as rest) -> (
            match (List.rev a, b) with
            | last :: _, first :: _ -> last <> first && ok rest
            | _ -> false)
        | _ -> true
      in
      List.for_all (fun run -> run <> []) runs && ok runs)

let qcheck = QCheck_alcotest.to_alcotest ~speed_level:`Quick

let suite =
  [
    Alcotest.test_case "operator map/filter" `Quick test_operator_basics;
    Alcotest.test_case "operator sort + rescan" `Quick test_operator_rescan;
    Alcotest.test_case "operator instrumentation" `Quick test_operator_counted;
    Alcotest.test_case "operator pipelining" `Quick test_operator_pipelining;
    Alcotest.test_case "grouping runs" `Quick test_runs;
    Alcotest.test_case "grouping map_runs" `Quick test_map_runs;
    Alcotest.test_case "hash partition" `Quick test_hash_partition;
    Alcotest.test_case "heap basics" `Quick test_heap_basics;
    Alcotest.test_case "interval tree" `Quick test_interval_tree_basics;
    qcheck prop_interval_tree_matches_naive;
    qcheck prop_heap_sorts;
    qcheck prop_runs_concat;
    qcheck prop_runs_maximal;
  ]
