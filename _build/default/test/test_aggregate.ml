module Interval = Tpdb_interval.Interval
module Relation = Tpdb_relation.Relation
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Value = Tpdb_relation.Value
module Schema = Tpdb_relation.Schema
module Aggregate = Tpdb_setops.Aggregate

let iv = Interval.make

(* Sensors reporting a reading with a confidence. *)
let sensors () =
  Relation.of_rows ~name:"m" ~columns:[ "Station"; "Reading" ] ~tag:"m"
    [
      ([ "zrh"; "10" ], iv 0 6, 0.5);
      ([ "zrh"; "20" ], iv 4 9, 0.8);
      ([ "gva"; "30" ], iv 2 5, 1.0);
    ]

let value_of tp =
  match Fact.get (Tuple.fact tp) 1 with
  | Value.F f -> f
  | other -> Alcotest.failf "non-float aggregate value %s" (Value.to_string other)

let find_segment result span station =
  match
    List.find_opt
      (fun tp ->
        Interval.equal (Tuple.iv tp) span
        && Value.equal (Fact.get (Tuple.fact tp) 0) (Value.S station))
      (Relation.tuples result)
  with
  | Some tp -> tp
  | None -> Alcotest.failf "no segment %s for %s" (Interval.to_string span) station

let test_expected_count () =
  let result = Aggregate.sequenced ~group_by:[ 0 ] Aggregate.Count (sensors ()) in
  Alcotest.(check (list string)) "schema" [ "Station"; "exp_count" ]
    (Schema.columns (Relation.schema result));
  Alcotest.(check (float 1e-9)) "zrh alone" 0.5
    (value_of (find_segment result (iv 0 4) "zrh"));
  Alcotest.(check (float 1e-9)) "zrh both" 1.3
    (value_of (find_segment result (iv 4 6) "zrh"));
  Alcotest.(check (float 1e-9)) "zrh second only" 0.8
    (value_of (find_segment result (iv 6 9) "zrh"));
  Alcotest.(check (float 1e-9)) "gva certain" 1.0
    (value_of (find_segment result (iv 2 5) "gva"))

let test_expected_sum_avg () =
  let sum = Aggregate.sequenced ~group_by:[ 0 ] (Aggregate.Sum 1) (sensors ()) in
  (* E[sum] over [4,6) for zrh: 0.5·10 + 0.8·20 = 21 *)
  Alcotest.(check (float 1e-9)) "expected sum" 21.0
    (value_of (find_segment sum (iv 4 6) "zrh"));
  let avg = Aggregate.sequenced ~group_by:[ 0 ] (Aggregate.Avg 1) (sensors ()) in
  (* ratio of expectations: 21 / 1.3 *)
  Alcotest.(check (float 1e-9)) "expected avg" (21.0 /. 1.3)
    (value_of (find_segment avg (iv 4 6) "zrh"))

let test_global_aggregate () =
  (* Empty group_by: one global group. *)
  let result = Aggregate.sequenced ~group_by:[] Aggregate.Count (sensors ()) in
  Alcotest.(check (list string)) "only the value column" [ "exp_count" ]
    (Schema.columns (Relation.schema result));
  (* [4,5): all three tuples valid -> 0.5 + 0.8 + 1.0 *)
  let seg =
    List.find
      (fun tp -> Interval.equal (Tuple.iv tp) (iv 4 5))
      (Relation.tuples result)
  in
  Alcotest.(check (float 1e-9)) "global count" 2.3
    (match Fact.get (Tuple.fact seg) 0 with
    | Value.F f -> f
    | _ -> Alcotest.fail "not a float")

let test_errors () =
  (match Aggregate.sequenced ~group_by:[ 9 ] Aggregate.Count (sensors ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range group column accepted");
  match Aggregate.sequenced ~group_by:[ 1 ] (Aggregate.Sum 0) (sensors ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-numeric sum column accepted"

(* --- properties --- *)

module Test = QCheck2.Test

let qtest = QCheck_alcotest.to_alcotest ~speed_level:`Quick

let prop_count_matches_pointwise =
  Test.make ~name:"sequenced count = pointwise expectation" ~count:100
    ~print:Tp_gen.print_relation
    (Tp_gen.relation_gen ~name:"r" ())
    (fun r ->
      let env = Relation.prob_env [ r ] in
      let result = Aggregate.sequenced ~env ~group_by:[ 0 ] Aggregate.Count r in
      List.for_all
        (fun t ->
          List.for_all
            (fun tp ->
              let key = Fact.key [ 0 ] (Tuple.fact tp) in
              match
                Aggregate.expected_at ~env ~group_by:[ 0 ] Aggregate.Count r key t
              with
              | None -> not (Tuple.valid_at tp t)
              | Some expected ->
                  (not (Tuple.valid_at tp t))
                  || Float.abs (value_of tp -. expected) < 1e-9)
            (Relation.tuples result))
        (List.init 40 Fun.id))

let prop_output_segments_disjoint =
  Test.make ~name:"per-group output segments are disjoint and cover witnesses"
    ~count:100 ~print:Tp_gen.print_relation
    (Tp_gen.relation_gen ~name:"r" ())
    (fun r ->
      let result = Aggregate.sequenced ~group_by:[ 0 ] Aggregate.Count r in
      let covered rel key t =
        List.exists
          (fun tp ->
            Tuple.valid_at tp t
            && Fact.equal (Fact.key [ 0 ] (Tuple.fact tp)) key)
          (Relation.tuples rel)
      in
      List.for_all
        (fun t ->
          List.for_all
            (fun tp ->
              let key = Fact.key [ 0 ] (Tuple.fact tp) in
              covered result key t = covered r key t)
            (Relation.tuples r))
        (List.init 40 Fun.id))

let suite =
  [
    Alcotest.test_case "expected count per segment" `Quick test_expected_count;
    Alcotest.test_case "expected sum / avg" `Quick test_expected_sum_avg;
    Alcotest.test_case "global aggregate" `Quick test_global_aggregate;
    Alcotest.test_case "errors" `Quick test_errors;
    qtest prop_count_matches_pointwise;
    qtest prop_output_segments_disjoint;
  ]
