The paper's running example, end to end (Figs. 1 and 2):

  $ ../../examples/booking.exe
  Base relations (paper Fig. 1a):
  a (2 tuples)
  Name | Loc | lineage | T | p
  Ann | ZAK | a1 | [2,8) | 0.7
  Jim | WEN | a2 | [7,10) | 0.8
  b (3 tuples)
  Hotel | Loc | lineage | T | p
  hotel3 | SOR | b1 | [1,4) | 0.9
  hotel2 | ZAK | b2 | [5,8) | 0.6
  hotel1 | ZAK | b3 | [4,6) | 0.7
  
  --- All windows of a w.r.t. b (paper Fig. 2) ---
    unmatched('Ann, ZAK', null, [2,4), a1, null)
    overlapping('Ann, ZAK', 'hotel1, ZAK', [4,6), a1, b3)
    negating('Ann, ZAK', null, [4,5), a1, b3)
    overlapping('Ann, ZAK', 'hotel2, ZAK', [5,8), a1, b2)
    negating('Ann, ZAK', null, [5,6), a1, b3 ∨ b2)
    negating('Ann, ZAK', null, [6,8), a1, b2)
    unmatched('Jim, WEN', null, [7,10), a2, null)
  
  --- The same picture, drawn (cf. paper Fig. 2) ---
  a
                            |23456789|
    a1 [2,8)                |######  | Ann, ZAK
    a2 [7,10)               |     ###| Jim, WEN
  
  b
                            |1234567|
    b3 [4,6)                |   ##  | hotel1, ZAK
    b2 [5,8)                |    ###| hotel2, ZAK
    b1 [1,4)                |###    | hotel3, SOR
  
  windows
                            |123456789|
    U [2,4) a1              | ##      | Fs=- λs=-
    O [4,6) a1              |   ##    | Fs='hotel1, ZAK' λs=b3
    N [4,5) a1              |   #     | Fs=- λs=b3
    O [5,8) a1              |    ###  | Fs='hotel2, ZAK' λs=b2
    N [5,6) a1              |    #    | Fs=- λs=b3 | b2
    N [6,8) a1              |     ##  | Fs=- λs=b2
    U [7,10) a2             |      ###| Fs=- λs=-
  
  --- Q = a LEFT TPJOIN b ON a.Loc = b.Loc (paper Fig. 1b) ---
  a_b (7 tuples)
  Name | a.Loc | Hotel | b.Loc | lineage | T | p
  Ann | ZAK | - | - | a1 | [2,4) | 0.7
  Ann | ZAK | hotel1 | ZAK | a1 ∧ b3 | [4,6) | 0.49
  Ann | ZAK | - | - | a1 ∧ ¬b3 | [4,5) | 0.21
  Ann | ZAK | hotel2 | ZAK | a1 ∧ b2 | [5,8) | 0.42
  Ann | ZAK | - | - | a1 ∧ ¬(b3 ∨ b2) | [5,6) | 0.084
  Ann | ZAK | - | - | a1 ∧ ¬b2 | [6,8) | 0.28
  Jim | WEN | - | - | a2 | [7,10) | 0.8
  Reading: over [5,6) there is probability 0.084 that Ann wants to
  visit Zakynthos but finds no accommodation - she is interested (a1
  true) while neither hotel1 nor hotel2 has rooms (b3, b2 false).
  
  --- TP anti join: when does a client certainly find no hotel? ---
  a_anti_b (5 tuples)
  Name | Loc | lineage | T | p
  Ann | ZAK | a1 | [2,4) | 0.7
  Ann | ZAK | a1 ∧ ¬b3 | [4,5) | 0.21
  Ann | ZAK | a1 ∧ ¬(b3 ∨ b2) | [5,6) | 0.084
  Ann | ZAK | a1 ∧ ¬b2 | [6,8) | 0.28
  Jim | WEN | a2 | [7,10) | 0.8
  
  --- TP full outer join: hotels with no interested client included ---
  a_b (10 tuples)
  Name | a.Loc | Hotel | b.Loc | lineage | T | p
  Ann | ZAK | - | - | a1 | [2,4) | 0.7
  Ann | ZAK | hotel1 | ZAK | a1 ∧ b3 | [4,6) | 0.49
  Ann | ZAK | - | - | a1 ∧ ¬b3 | [4,5) | 0.21
  Ann | ZAK | hotel2 | ZAK | a1 ∧ b2 | [5,8) | 0.42
  Ann | ZAK | - | - | a1 ∧ ¬(b3 ∨ b2) | [5,6) | 0.084
  Ann | ZAK | - | - | a1 ∧ ¬b2 | [6,8) | 0.28
  Jim | WEN | - | - | a2 | [7,10) | 0.8
  - | - | hotel1 | ZAK | b3 ∧ ¬a1 | [4,6) | 0.21
  - | - | hotel2 | ZAK | b2 ∧ ¬a1 | [5,8) | 0.18
  - | - | hotel3 | SOR | b1 | [1,4) | 0.9
  
  --- Table I check ---
  all 7 windows satisfy their Table I definitions: true
