  $ ../../bin/tpdb_cli.exe generate --dataset webkit --size 50 --seed 3 --prefix wk
  $ ../../bin/tpdb_cli.exe query --explain -t wk_r.csv -t wk_s.csv "SELECT File FROM wk_r ANTIJOIN wk_s ON wk_r.File = wk_s.File"
  $ ../../bin/tpdb_cli.exe query -t wk_r.csv "SELECT Nope FROM wk_r"
  $ ../../bin/tpdb_cli.exe store --db warehouse wk_r.csv wk_s.csv
  $ ls warehouse
  $ ../../bin/tpdb_cli.exe query --db warehouse --explain "SELECT DISTINCT File FROM wk_r DURING [0,500)"
  $ ../../bin/tpdb_cli.exe render -t wk_r.csv -t wk_s.csv wk_r wk_s --on File=File --width 40 | head -4
