  $ ../../examples/booking.exe
