  $ ../../examples/capacity_planning.exe
