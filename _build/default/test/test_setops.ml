module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula
module Relation = Tpdb_relation.Relation
module Tuple = Tpdb_relation.Tuple
module Set_ops = Tpdb_setops.Set_ops

let iv = Interval.make
let krel name rows = Relation.of_rows ~name ~columns:[ "K"; "Sub" ] ~tag:name rows

let r1 () =
  krel "r"
    [
      ([ "x"; "0" ], iv 0 6, 0.5);
      ([ "y"; "0" ], iv 2 8, 0.7);
    ]

let r2 () =
  krel "s"
    [
      ([ "x"; "0" ], iv 3 9, 0.6);
      ([ "z"; "0" ], iv 1 4, 0.9);
    ]

let test_union_semantics () =
  let result = Set_ops.union (r1 ()) (r2 ()) in
  (* Fact x: [0,3) only r (λ=r1), [3,6) both (r1 ∨ s1), [6,9) only s. *)
  let find span =
    match
      List.find_opt
        (fun tp ->
          Interval.equal (Tuple.iv tp) span
          && Tpdb_relation.Fact.equal (Tuple.fact tp)
               (Tpdb_relation.Fact.of_strings [ "x"; "0" ]))
        (Relation.tuples result)
    with
    | Some tp -> Formula.to_string_ascii (Formula.normalize (Tuple.lineage tp))
    | None -> Alcotest.failf "no x tuple over %s" (Interval.to_string span)
  in
  Alcotest.(check string) "only r part" "r1" (find (iv 0 3));
  Alcotest.(check string) "shared part" "r1 | s1" (find (iv 3 6));
  Alcotest.(check string) "only s part" "s1" (find (iv 6 9))

let test_intersection_semantics () =
  let result = Set_ops.intersection (r1 ()) (r2 ()) in
  Alcotest.(check int) "only the shared x interval" 1 (Relation.cardinality result);
  let tp = List.hd (Relation.tuples result) in
  Alcotest.(check string) "interval" "[3,6)" (Interval.to_string (Tuple.iv tp));
  Alcotest.(check string) "lineage" "r1 & s1"
    (Formula.to_string_ascii (Formula.normalize (Tuple.lineage tp)));
  Alcotest.(check (float 1e-9)) "probability" 0.3 (Tuple.p tp)

let test_difference_semantics () =
  let result = Set_ops.difference (r1 ()) (r2 ()) in
  let by_interval span =
    List.find
      (fun tp ->
        Interval.equal (Tuple.iv tp) span
        && Tpdb_relation.Fact.equal (Tuple.fact tp)
             (Tpdb_relation.Fact.of_strings [ "x"; "0" ]))
      (Relation.tuples result)
  in
  Alcotest.(check string) "unmatched keeps lineage" "r1"
    (Formula.to_string_ascii (Tuple.lineage (by_interval (iv 0 3))));
  Alcotest.(check string) "negated where both valid" "r1 & !s1"
    (Formula.to_string_ascii (Tuple.lineage (by_interval (iv 3 6))));
  Alcotest.(check (float 1e-9)) "negated probability" 0.2
    (Tuple.p (by_interval (iv 3 6)))

let test_schema_mismatch () =
  let bad = Relation.of_rows ~name:"b" ~columns:[ "Other" ] [] in
  match Set_ops.union (r1 ()) bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "union across schemas accepted"

(* --- algebraic properties and oracle agreement --- *)

module Test = QCheck2.Test

let qtest = QCheck_alcotest.to_alcotest ~speed_level:`Quick

let prop_union_matches_oracle =
  Test.make ~name:"union = pointwise oracle" ~count:100 ~print:Tp_gen.print_pair
    (Tp_gen.pair_gen ())
    (fun (r, s) ->
      Relation.equal_as_sets (Set_ops.Oracle.union r s) (Set_ops.union r s))

let prop_intersection_matches_oracle =
  Test.make ~name:"intersection = pointwise oracle" ~count:100
    ~print:Tp_gen.print_pair
    (Tp_gen.pair_gen ())
    (fun (r, s) ->
      Relation.equal_as_sets
        (Set_ops.Oracle.intersection r s)
        (Set_ops.intersection r s))

let prop_difference_matches_oracle =
  Test.make ~name:"difference = pointwise oracle" ~count:100
    ~print:Tp_gen.print_pair
    (Tp_gen.pair_gen ())
    (fun (r, s) ->
      Relation.equal_as_sets
        (Set_ops.Oracle.difference r s)
        (Set_ops.difference r s))

let prop_self_difference_impossible =
  Test.make ~name:"r - r has probability 0 everywhere" ~count:100
    ~print:Tp_gen.print_relation
    (Tp_gen.relation_gen ~name:"r" ())
    (fun r ->
      List.for_all
        (fun tp -> Float.abs (Tuple.p tp) < 1e-9)
        (Relation.tuples (Set_ops.difference r r)))

let prop_self_union_is_coalesce =
  Test.make ~name:"r ∪ r = r (coalesced, up to lineage idempotence)" ~count:100
    ~print:Tp_gen.print_relation
    (Tp_gen.relation_gen ~name:"r" ())
    (fun r ->
      Relation.equal_as_sets (Relation.coalesce r) (Set_ops.union r r))

let prop_intersection_commutes_probabilities =
  Test.make ~name:"intersection probability is symmetric" ~count:100
    ~print:Tp_gen.print_pair
    (Tp_gen.pair_gen ())
    (fun (r, s) ->
      let total rel =
        List.fold_left (fun acc tp -> acc +. Tuple.p tp) 0.0 (Relation.tuples rel)
      in
      Float.abs (total (Set_ops.intersection r s) -. total (Set_ops.intersection s r))
      < 1e-6)

let suite =
  [
    Alcotest.test_case "union lineage per segment" `Quick test_union_semantics;
    Alcotest.test_case "intersection" `Quick test_intersection_semantics;
    Alcotest.test_case "difference" `Quick test_difference_semantics;
    Alcotest.test_case "schema mismatch" `Quick test_schema_mismatch;
    qtest prop_union_matches_oracle;
    qtest prop_intersection_matches_oracle;
    qtest prop_difference_matches_oracle;
    qtest prop_self_difference_impossible;
    qtest prop_self_union_is_coalesce;
    qtest prop_intersection_commutes_probabilities;
  ]
