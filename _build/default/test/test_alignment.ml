module Interval = Tpdb_interval.Interval
module Relation = Tpdb_relation.Relation
module Tuple = Tpdb_relation.Tuple
module Theta = Tpdb_windows.Theta
module Window = Tpdb_windows.Window
module Align = Tpdb_alignment.Align
module Ta = Tpdb_alignment.Ta
module Nj = Tpdb_joins.Nj
module Reference = Tpdb_joins.Reference

let iv = Interval.make
let theta_k = Theta.eq 0 0
let krel name rows = Relation.of_rows ~name ~columns:[ "K" ] ~tag:name rows

(* --- Align --- *)

let test_split_tuple () =
  let tuple =
    Tuple.make
      ~fact:(Tpdb_relation.Fact.of_strings [ "x" ])
      ~lineage:(Tpdb_lineage.Formula.of_string "r1")
      ~iv:(iv 0 10) ~p:0.5
  in
  let match_at span =
    Tuple.make
      ~fact:(Tpdb_relation.Fact.of_strings [ "x" ])
      ~lineage:(Tpdb_lineage.Formula.of_string "s1")
      ~iv:span ~p:0.5
  in
  let segments = Align.split_tuple ~matches:[ match_at (iv 2 6); match_at (iv 4 8) ] tuple in
  Alcotest.(check (list string))
    "cut at every event point"
    [ "[0,2)"; "[2,4)"; "[4,6)"; "[6,8)"; "[8,10)" ]
    (List.map Interval.to_string segments);
  Alcotest.(check (list string))
    "no matches: whole interval" [ "[0,10)" ]
    (List.map Interval.to_string (Align.split_tuple ~matches:[] tuple))

let test_replicate_counts () =
  let r = krel "r" [ ([ "x" ], iv 0 10, 0.5); ([ "y" ], iv 0 4, 0.5) ] in
  let s = krel "s" [ ([ "x" ], iv 2 6, 0.5) ] in
  (* x splits into [0,2),[2,6),[6,10); y has no match: 1 replica. *)
  Alcotest.(check int) "replica count" 4
    (Align.replica_count ~theta:theta_k r s)

(* --- TA = NJ on the paper example --- *)

let test_ta_paper_example () =
  let r, s = (Fixtures.relation_a (), Fixtures.relation_b ()) in
  let theta = Fixtures.theta_loc in
  Fixtures.check_relation "TA left outer = Fig 1b"
    (Nj.left_outer ~theta r s)
    (Ta.left_outer ~theta r s);
  Fixtures.check_relation "TA anti = NJ anti"
    (Nj.anti ~theta r s)
    (Ta.anti ~theta r s);
  Fixtures.check_relation "TA right outer = NJ right outer"
    (Nj.right_outer ~theta r s)
    (Ta.right_outer ~theta r s);
  Fixtures.check_relation "TA full outer = NJ full outer"
    (Nj.full_outer ~theta r s)
    (Ta.full_outer ~theta r s)

let window_sets_equal a b =
  let canon ws = List.sort_uniq Window.compare_group_start ws in
  let a = canon a and b = canon b in
  List.length a = List.length b && List.for_all2 Window.equal a b

let test_ta_windows_paper_example () =
  let r, s = (Fixtures.relation_a (), Fixtures.relation_b ()) in
  let theta = Fixtures.theta_loc in
  Alcotest.(check bool) "TA wuo = NJ wuo" true
    (window_sets_equal
       (Ta.windows_wuo ~theta r s)
       (List.of_seq (Nj.windows_wuo ~theta r s)));
  Alcotest.(check bool) "TA wuon = NJ wuon" true
    (window_sets_equal
       (Ta.windows_wuon ~theta r s)
       (List.of_seq (Nj.windows_wuon ~theta r s)))

let test_ta_dedup () =
  (* A never-matched r tuple is computed by both TA passes; the union must
     report it once. *)
  let r = krel "r" [ ([ "x" ], iv 0 5, 0.5) ] in
  let s = krel "s" [] in
  Alcotest.(check int) "single unmatched window" 1
    (List.length (Ta.windows_wuo ~theta:theta_k r s))

(* --- properties --- *)

module Test = QCheck2.Test

let qtest = QCheck_alcotest.to_alcotest ~speed_level:`Quick

let prop_ta_windows_equal_nj =
  Test.make ~name:"TA windows = NJ windows" ~count:120
    ~print:Tp_gen.print_triple
    (Tp_gen.scenario_gen ())
    (fun (theta, r, s) ->
      window_sets_equal
        (Ta.windows_wuon ~theta r s)
        (List.of_seq (Nj.windows_wuon ~theta r s)))

let prop_ta_operators_match_oracle =
  Test.make ~name:"TA operators = timepoint oracle" ~count:80
    ~print:Tp_gen.print_triple
    (Tp_gen.scenario_gen ())
    (fun (theta, r, s) ->
      Relation.equal_as_sets (Reference.left_outer ~theta r s) (Ta.left_outer ~theta r s)
      && Relation.equal_as_sets (Reference.anti ~theta r s) (Ta.anti ~theta r s)
      && Relation.equal_as_sets (Reference.right_outer ~theta r s)
           (Ta.right_outer ~theta r s)
      && Relation.equal_as_sets (Reference.full_outer ~theta r s)
           (Ta.full_outer ~theta r s))

let prop_ta_algorithms_agree =
  Test.make ~name:"TA hash and nested-loop plans agree" ~count:80
    ~print:Tp_gen.print_triple
    (Tp_gen.scenario_gen ())
    (fun (theta, r, s) ->
      Relation.equal_as_sets
        (Ta.left_outer ~algorithm:`Hash ~theta r s)
        (Ta.left_outer ~algorithm:`Nested_loop ~theta r s))

let prop_replicas_partition =
  Test.make ~name:"aligned replicas partition each tuple" ~count:120
    ~print:Tp_gen.print_triple
    (Tp_gen.scenario_gen ())
    (fun (theta, r, s) ->
      List.for_all
        (fun (tuple, _, segments) ->
          let rec covers cursor = function
            | [] -> cursor = Interval.te (Tuple.iv tuple)
            | seg :: rest ->
                Interval.ts seg = cursor && covers (Interval.te seg) rest
          in
          covers (Interval.ts (Tuple.iv tuple)) segments)
        (Align.replicate ~theta r s))

let suite =
  [
    Alcotest.test_case "split_tuple segmentation" `Quick test_split_tuple;
    Alcotest.test_case "replica counting" `Quick test_replicate_counts;
    Alcotest.test_case "TA operators on the paper example" `Quick test_ta_paper_example;
    Alcotest.test_case "TA window sets on the paper example" `Quick test_ta_windows_paper_example;
    Alcotest.test_case "TA de-duplicating union" `Quick test_ta_dedup;
    qtest prop_ta_windows_equal_nj;
    qtest prop_ta_operators_match_oracle;
    qtest prop_ta_algorithms_agree;
    qtest prop_replicas_partition;
  ]
