test/test_relation.ml: Alcotest Filename Fun List QCheck2 QCheck_alcotest Sys Test Tp_gen Tpdb_interval Tpdb_lineage Tpdb_relation
