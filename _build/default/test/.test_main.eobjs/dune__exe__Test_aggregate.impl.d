test/test_aggregate.ml: Alcotest Float Fun List QCheck2 QCheck_alcotest Tp_gen Tpdb_interval Tpdb_relation Tpdb_setops
