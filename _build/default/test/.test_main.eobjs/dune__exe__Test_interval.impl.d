test/test_interval.ml: Alcotest Fun Gen List QCheck2 QCheck_alcotest Test Tp_gen Tpdb_interval
