test/test_engine.ml: Alcotest Gen Hashtbl Int List QCheck2 QCheck_alcotest Seq String Test Tpdb_engine Tpdb_interval
