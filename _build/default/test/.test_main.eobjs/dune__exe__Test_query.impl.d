test/test_query.ml: Alcotest Fixtures List Option String Tpdb_joins Tpdb_query Tpdb_relation Tpdb_setops Tpdb_windows
