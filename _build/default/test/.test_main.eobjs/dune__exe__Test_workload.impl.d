test/test_workload.ml: Alcotest Array Fun Int List Printf String Tpdb_experiments Tpdb_interval Tpdb_relation Tpdb_workload
