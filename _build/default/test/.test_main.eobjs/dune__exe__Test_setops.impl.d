test/test_setops.ml: Alcotest Float List QCheck2 QCheck_alcotest Tp_gen Tpdb_interval Tpdb_lineage Tpdb_relation Tpdb_setops
