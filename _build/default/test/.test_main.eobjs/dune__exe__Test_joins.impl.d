test/test_joins.ml: Alcotest Fixtures Float Format List QCheck2 QCheck_alcotest Tp_gen Tpdb_interval Tpdb_joins Tpdb_lineage Tpdb_relation Tpdb_windows
