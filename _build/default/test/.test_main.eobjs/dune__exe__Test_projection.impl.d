test/test_projection.ml: Alcotest Fun List QCheck2 QCheck_alcotest Tp_gen Tpdb_engine Tpdb_interval Tpdb_lineage Tpdb_relation Tpdb_setops
