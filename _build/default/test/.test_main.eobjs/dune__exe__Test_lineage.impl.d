test/test_lineage.ml: Alcotest Float Gen List Option QCheck2 QCheck_alcotest Test Tpdb_lineage
