test/test_physical.ml: Alcotest Fixtures List Seq String Tpdb_interval Tpdb_joins Tpdb_query Tpdb_relation Tpdb_setops Tpdb_windows
