test/test_windows.ml: Alcotest Fixtures List QCheck2 QCheck_alcotest Seq String Test Tp_gen Tpdb_interval Tpdb_lineage Tpdb_relation Tpdb_windows
