test/test_alignment.ml: Alcotest Fixtures List QCheck2 QCheck_alcotest Tp_gen Tpdb_alignment Tpdb_interval Tpdb_joins Tpdb_lineage Tpdb_relation Tpdb_windows
