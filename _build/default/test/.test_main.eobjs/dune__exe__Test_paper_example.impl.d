test/test_paper_example.ml: Alcotest Fixtures List String Tpdb_joins Tpdb_windows
