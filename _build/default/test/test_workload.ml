module Interval = Tpdb_interval.Interval
module Relation = Tpdb_relation.Relation
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Value = Tpdb_relation.Value
module Schema = Tpdb_relation.Schema
module Rng = Tpdb_workload.Rng
module Datasets = Tpdb_workload.Datasets
module E = Tpdb_experiments.Experiments

(* --- Rng --- *)

let test_rng_determinism () =
  let stream seed = List.init 10 (fun _ -> Rng.int (Rng.create seed) 1000) in
  Alcotest.(check (list int)) "same seed same stream" (stream 7) (stream 7);
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (List.init 10 (fun _ -> Rng.int a 1000)
    <> List.init 10 (fun _ -> Rng.int b 1000))

let test_rng_bounds () =
  let rng = Rng.create 42 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "int out of bounds: %d" x;
    let y = Rng.in_range rng 5 9 in
    if y < 5 || y >= 9 then Alcotest.failf "in_range out of bounds: %d" y;
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of bounds: %f" f
  done;
  (match Rng.int rng 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero bound accepted")

let test_rng_sample () =
  let rng = Rng.create 11 in
  let population = Array.init 100 Fun.id in
  let sample = Rng.sample rng 30 population in
  Alcotest.(check int) "sample size" 30 (Array.length sample);
  let sorted = List.sort_uniq Int.compare (Array.to_list sample) in
  Alcotest.(check int) "without replacement" 30 (List.length sorted);
  List.iter
    (fun x ->
      if x < 0 || x >= 100 then Alcotest.failf "sampled alien element %d" x)
    sorted;
  match Rng.sample rng 101 population with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversample accepted"

let test_rng_shuffle () =
  let rng = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  Alcotest.(check (list int)) "permutation" (List.init 50 Fun.id)
    (List.sort Int.compare (Array.to_list arr))

(* --- Datasets --- *)

let check_well_formed name r expected_size columns =
  Alcotest.(check int) (name ^ " cardinality") expected_size (Relation.cardinality r);
  Alcotest.(check (list string)) (name ^ " columns") columns
    (Schema.columns (Relation.schema r));
  Alcotest.(check bool) (name ^ " duplicate-free") true (Relation.is_duplicate_free r);
  List.iter
    (fun tp ->
      let p = Tuple.p tp in
      if p < 0.0 || p > 1.0 then Alcotest.failf "bad probability %f" p)
    (Relation.tuples r)

let test_webkit_generator () =
  let r, s = Datasets.Webkit.pair ~seed:1 2_000 in
  check_well_formed "webkit r" r 2_000 [ "File"; "Rev" ];
  check_well_formed "webkit s" s 2_000 [ "File"; "Rev" ];
  (* Selective: many distinct join values. *)
  let distinct_files rel =
    Relation.tuples rel
    |> List.map (fun tp -> Value.to_string (Fact.get (Tuple.fact tp) 0))
    |> List.sort_uniq String.compare |> List.length
  in
  Alcotest.(check bool) "many distinct files" true (distinct_files r > 100)

let test_meteo_generator () =
  let r, _ = Datasets.Meteo.pair ~seed:2 2_000 in
  check_well_formed "meteo r" r 2_000 [ "Station"; "Metric" ];
  let distinct_metrics =
    Relation.tuples r
    |> List.map (fun tp -> Value.to_string (Fact.get (Tuple.fact tp) 1))
    |> List.sort_uniq String.compare |> List.length
  in
  (* Unselective: distinct values ≪ size (the paper's Meteo property). *)
  Alcotest.(check bool) "few distinct metrics" true (distinct_metrics <= 8)

let test_generator_determinism () =
  let a = Datasets.Webkit.relation ~name:"r" ~seed:9 500 in
  let b = Datasets.Webkit.relation ~name:"r" ~seed:9 500 in
  Alcotest.(check bool) "same seed same data" true (Relation.equal_as_sets a b);
  let c = Datasets.Webkit.relation ~name:"r" ~seed:10 500 in
  Alcotest.(check bool) "different seed different data" false
    (Relation.equal_as_sets a c)

let test_uniform_generator () =
  let r =
    Datasets.Uniform.relation ~name:"u" ~seed:3 ~keys:10 ~horizon:500
      ~mean_duration:20 800
  in
  check_well_formed "uniform" r 800 [ "Key" ];
  (* Skewed keys concentrate on low ranks. *)
  let skewed =
    Datasets.Uniform.relation ~skew:1.5 ~name:"z" ~seed:4 ~keys:50
      ~horizon:500 ~mean_duration:10 2_000
  in
  let count_key k rel =
    List.length
      (List.filter
         (fun tp ->
           Value.equal (Fact.get (Tuple.fact tp) 0)
             (Value.S (Printf.sprintf "k%d" k)))
         (Relation.tuples rel))
  in
  Alcotest.(check bool) "zipf concentrates mass" true
    (count_key 0 skewed > 5 * max 1 (count_key 30 skewed));
  Alcotest.(check bool) "skewed still duplicate-free" true
    (Relation.is_duplicate_free skewed)

let test_subset () =
  let r = Datasets.Webkit.relation ~name:"r" ~seed:4 1_000 in
  let sub = Datasets.subset ~seed:5 ~k:250 r in
  Alcotest.(check int) "subset size" 250 (Relation.cardinality sub);
  let in_original tp = List.exists (Tuple.equal tp) (Relation.tuples r) in
  Alcotest.(check bool) "subset of original" true
    (List.for_all in_original (Relation.tuples sub));
  Alcotest.(check bool) "subset duplicate-free" true (Relation.is_duplicate_free sub);
  match Datasets.subset ~seed:5 ~k:5_000 r with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized subset accepted"

(* --- Experiments plumbing --- *)

let test_experiment_sizes () =
  Alcotest.(check (list int)) "webkit default quarters"
    [ 4_000; 8_000; 12_000; 16_000 ]
    (E.sizes E.Webkit E.Default);
  Alcotest.(check (list int)) "webkit paper = published sizes"
    [ 50_000; 100_000; 150_000; 200_000 ]
    (E.sizes E.Webkit E.Paper)

let test_experiment_pair_cached () =
  let r1, _ = E.pair ~scale:E.Quick E.Webkit ~size:250 in
  let r2, _ = E.pair ~scale:E.Quick E.Webkit ~size:250 in
  Alcotest.(check bool) "deterministic subsets" true (Relation.equal_as_sets r1 r2);
  Alcotest.(check int) "requested size" 250 (Relation.cardinality r1)

let test_quick_experiment_runs () =
  let points = E.fig5 ~scale:E.Quick E.Webkit in
  Alcotest.(check int) "four sizes x two systems" 8 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "positive runtime" true (p.E.ms >= 0.0);
      Alcotest.(check bool) "output recorded" true (p.E.output > 0))
    points;
  (* NJ and TA must report identical output cardinalities. *)
  let by_size size series =
    List.find (fun p -> p.E.size = size && p.E.series = series) points
  in
  List.iter
    (fun size ->
      Alcotest.(check int) "same windows" (by_size size "NJ").E.output
        (by_size size "TA").E.output)
    [ 250; 500 ]

let test_extra_sweeps_run () =
  List.iter
    (fun points ->
      Alcotest.(check int) "five x two points" 10 (List.length points);
      (* NJ and TA agree on outputs at every point. *)
      List.iter
        (fun p -> Alcotest.(check bool) "output > 0" true (p.E.output > 0))
        points)
    [ E.selectivity_sweep ~size:200 (); E.skew_sweep ~size:200 () ]

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng sample" `Quick test_rng_sample;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle;
    Alcotest.test_case "webkit generator" `Quick test_webkit_generator;
    Alcotest.test_case "meteo generator" `Quick test_meteo_generator;
    Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
    Alcotest.test_case "uniform generator" `Quick test_uniform_generator;
    Alcotest.test_case "subset sampling" `Quick test_subset;
    Alcotest.test_case "experiment sizes" `Quick test_experiment_sizes;
    Alcotest.test_case "experiment pair caching" `Quick test_experiment_pair_cached;
    Alcotest.test_case "quick fig5 runs" `Quick test_quick_experiment_runs;
    Alcotest.test_case "selectivity/skew sweeps run" `Quick test_extra_sweeps_run;
  ]
