(** Tokenizer for the mini TP-SQL dialect. *)

type token =
  | Kw of string  (** upper-cased keyword: SELECT, FROM, TPJOIN, ... *)
  | Ident of string
  | Qualified of string * string  (** [a.Loc] *)
  | Str of string  (** ['...'] *)
  | Num of string
  | Iv of int * int  (** interval literal [[2,8)] *)
  | Op of string  (** [=], [<>], [<], [<=], [>], [>=] *)
  | Comma
  | Lparen
  | Rparen
  | Star

exception Lex_error of string * int
(** Message and byte offset. *)

val tokenize : string -> token list

val token_string : token -> string
