module Relation = Tpdb_relation.Relation
module Prob = Tpdb_lineage.Prob

type t = (string, Relation.t) Hashtbl.t

let create () = Hashtbl.create 16

let register t r = Hashtbl.replace t (Relation.name r) r

let find t name = Hashtbl.find_opt t name

let find_exn t name =
  match find t name with Some r -> r | None -> raise Not_found

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t []
  |> List.sort String.compare

let env t =
  let relations = Hashtbl.fold (fun _ r acc -> r :: acc) t [] in
  Relation.prob_env relations
