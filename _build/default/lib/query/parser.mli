(** Recursive-descent parser for the mini TP-SQL dialect (grammar in
    {!Ast}). *)

exception Parse_error of string

val parse : string -> Ast.t
(** Raises {!Parse_error} (or {!Lexer.Lex_error}) on malformed input. *)
