lib/query/ast.mli: Format Tpdb_relation
