lib/query/planner.mli: Ast Catalog Seq Tpdb_relation
