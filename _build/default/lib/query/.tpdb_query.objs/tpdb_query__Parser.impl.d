lib/query/parser.ml: Ast Lexer List Printf String Tpdb_relation
