lib/query/catalog.ml: Hashtbl List String Tpdb_lineage Tpdb_relation
