lib/query/physical.mli: Seq Tpdb_interval Tpdb_joins Tpdb_lineage Tpdb_relation Tpdb_setops Tpdb_windows
