lib/query/planner.ml: Ast Catalog Float Fun List Parser Physical Printf String Tpdb_interval Tpdb_joins Tpdb_lineage Tpdb_relation Tpdb_setops Tpdb_windows
