lib/query/lexer.mli:
