lib/query/catalog.mli: Tpdb_lineage Tpdb_relation
