lib/query/physical.ml: Buffer List Option Printf Seq String Tpdb_interval Tpdb_joins Tpdb_lineage Tpdb_relation Tpdb_setops Tpdb_windows Unix
