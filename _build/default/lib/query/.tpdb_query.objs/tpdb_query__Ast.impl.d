lib/query/ast.ml: Format List Printf String Tpdb_relation
