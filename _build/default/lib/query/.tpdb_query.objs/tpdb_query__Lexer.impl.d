lib/query/lexer.ml: List Printf Scanf String
