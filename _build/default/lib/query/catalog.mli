(** Named relations available to queries, with the probability environment
    of all their base variables. *)

module Relation = Tpdb_relation.Relation
module Prob = Tpdb_lineage.Prob

type t

val create : unit -> t

val register : t -> Relation.t -> unit
(** Keyed by {!Relation.name}; re-registering a name replaces it. *)

val find : t -> string -> Relation.t option
val find_exn : t -> string -> Relation.t
(** Raises [Not_found]. *)

val names : t -> string list
(** Sorted. *)

val env : t -> Prob.env
(** Marginals of every base variable of every registered relation. *)
