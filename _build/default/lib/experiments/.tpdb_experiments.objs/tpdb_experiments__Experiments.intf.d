lib/experiments/experiments.mli: Tpdb_relation Tpdb_windows
