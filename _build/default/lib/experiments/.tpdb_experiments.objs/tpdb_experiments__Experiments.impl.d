lib/experiments/experiments.ml: Hashtbl List Printf Seq Tpdb_alignment Tpdb_joins Tpdb_relation Tpdb_windows Tpdb_workload Unix
