module Interval = Tpdb_interval.Interval
module Timeline = Tpdb_interval.Timeline
module Relation = Tpdb_relation.Relation
module Tuple = Tpdb_relation.Tuple
module Theta = Tpdb_windows.Theta
module Overlap = Tpdb_windows.Overlap

let split_tuple ~matches tuple =
  let within = Tuple.iv tuple in
  let clipped =
    List.filter_map
      (fun m -> Interval.intersect within (Tuple.iv m))
      matches
  in
  Timeline.segments ~within clipped

let replicate ?algorithm ~theta r s =
  let probe = Overlap.prober ?algorithm ~theta s in
  List.map
    (fun r_tuple ->
      let matches = probe r_tuple in
      (r_tuple, matches, split_tuple ~matches r_tuple))
    (Relation.tuples r)

let replica_count ?algorithm ~theta r s =
  List.fold_left
    (fun acc (_, _, segments) -> acc + List.length segments)
    0
    (replicate ?algorithm ~theta r s)
