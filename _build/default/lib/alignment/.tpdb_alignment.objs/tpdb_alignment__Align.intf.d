lib/alignment/align.mli: Tpdb_interval Tpdb_relation Tpdb_windows
