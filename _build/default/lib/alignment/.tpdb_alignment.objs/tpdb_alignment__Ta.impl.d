lib/alignment/ta.ml: Align List Tpdb_interval Tpdb_joins Tpdb_lineage Tpdb_relation Tpdb_windows
