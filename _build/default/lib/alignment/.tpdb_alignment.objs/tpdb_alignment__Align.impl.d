lib/alignment/align.ml: List Tpdb_interval Tpdb_relation Tpdb_windows
