lib/alignment/ta.mli: Tpdb_lineage Tpdb_relation Tpdb_windows
