(** Temporal alignment: the tuple-replication primitive of the TA
    baseline (Dignös et al., TODS 2016, adapted to TP joins with negation
    as in the paper's §IV).

    Aligning [r] with respect to [s] splits every [r] tuple at the start
    and end points of its θ-matching [s] tuples, producing one replica per
    sub-interval. Downstream operators then join or aggregate replicas by
    exact interval equality. The replication is what NJ's windows
    avoid. *)

module Interval = Tpdb_interval.Interval
module Relation = Tpdb_relation.Relation
module Tuple = Tpdb_relation.Tuple
module Theta = Tpdb_windows.Theta
module Overlap = Tpdb_windows.Overlap

val split_tuple : matches:Tuple.t list -> Tuple.t -> Interval.t list
(** The aligned segmentation of one tuple's interval: cut at every
    matching tuple's start/end point that falls inside it. Gapless
    partition, in temporal order. *)

val replicate :
  ?algorithm:Overlap.algorithm ->
  theta:Theta.t ->
  Relation.t ->
  Relation.t ->
  (Tuple.t * Tuple.t list * Interval.t list) list
(** For every [r] tuple: its θ-matching [s] tuples (one execution of the
    conventional join) and its aligned segmentation. The total number of
    produced segments is the replication factor TA pays. *)

val replica_count :
  ?algorithm:Overlap.algorithm -> theta:Theta.t -> Relation.t -> Relation.t -> int
(** Total replicas produced by [replicate] — reported by the ablation
    bench. *)
