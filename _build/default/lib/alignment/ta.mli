(** TA — the Temporal Alignment baseline for TP joins with negation
    (paper §IV), the only prior approach adaptable to these operators.

    TA computes the same results as {!Tpdb_joins.Nj} but with the cost
    structure the paper measures:

    - the conventional join is executed {e twice}: once for the
      overlapping pairs (pass 1) and once more to align every [r] tuple
      against its matching [s] tuples (pass 2);
    - pass 2 {e replicates} tuples: each [r] tuple is split at every
      matching start/end point, and each replica re-scans the match list
      to aggregate its λs — the redundant interval comparisons NJ's single
      sweep avoids;
    - the sub-results are combined by a de-duplicating union (unmatched
      windows are computed by both passes);
    - the default join algorithm is the nested loop PostgreSQL's optimizer
      chooses for TA's [θo ∧ θ] predicates (pass [`Hash] to give TA the
      same join NJ uses, as in the paper's Fig. 5 where both share the
      conventional-join cost).

    All results are materialized lists — TA is not pipelined. *)

module Relation = Tpdb_relation.Relation
module Prob = Tpdb_lineage.Prob
module Theta = Tpdb_windows.Theta
module Window = Tpdb_windows.Window
module Overlap = Tpdb_windows.Overlap

val windows_wuo :
  ?algorithm:Overlap.algorithm ->
  theta:Theta.t ->
  Relation.t ->
  Relation.t ->
  Window.t list
(** Overlapping + unmatched windows (Fig. 5's TA series): pass 1 ∪ the
    unmatched part of pass 2, de-duplicated. *)

val windows_wuon :
  ?algorithm:Overlap.algorithm ->
  theta:Theta.t ->
  Relation.t ->
  Relation.t ->
  Window.t list
(** All window sets of [r] w.r.t. [s] (Fig. 6's TA series adds the
    negating part of pass 2). *)

val anti :
  ?algorithm:Overlap.algorithm ->
  ?env:Prob.env ->
  theta:Theta.t ->
  Relation.t ->
  Relation.t ->
  Relation.t

val left_outer :
  ?algorithm:Overlap.algorithm ->
  ?env:Prob.env ->
  theta:Theta.t ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** Fig. 7's TA series. *)

val right_outer :
  ?algorithm:Overlap.algorithm ->
  ?env:Prob.env ->
  theta:Theta.t ->
  Relation.t ->
  Relation.t ->
  Relation.t

val full_outer :
  ?algorithm:Overlap.algorithm ->
  ?env:Prob.env ->
  theta:Theta.t ->
  Relation.t ->
  Relation.t ->
  Relation.t
