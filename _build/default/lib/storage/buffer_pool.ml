type key = string * int

type entry = { bytes : Bytes.t; mutable stamp : int }

type t = {
  capacity : int;
  table : (key, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  { capacity; table = Hashtbl.create (2 * capacity); clock = 0; hits = 0; misses = 0 }

let tick pool =
  pool.clock <- pool.clock + 1;
  pool.clock

let evict_lru pool =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best <= entry.stamp -> acc
        | _ -> Some (key, entry.stamp))
      pool.table None
  in
  match victim with
  | Some (key, _) -> Hashtbl.remove pool.table key
  | None -> ()

let load path index size =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let file_len = in_channel_length ic in
      let offset = index * size in
      if offset >= file_len then
        invalid_arg
          (Printf.sprintf "Buffer_pool: page %d beyond end of %s" index path);
      seek_in ic offset;
      let available = min size (file_len - offset) in
      let bytes = Bytes.make size '\000' in
      really_input ic bytes 0 available;
      bytes)

let read_page pool ~path ~index ~size =
  let key = (path, index) in
  match Hashtbl.find_opt pool.table key with
  | Some entry ->
      pool.hits <- pool.hits + 1;
      entry.stamp <- tick pool;
      entry.bytes
  | None ->
      pool.misses <- pool.misses + 1;
      let bytes = load path index size in
      if Hashtbl.length pool.table >= pool.capacity then evict_lru pool;
      Hashtbl.replace pool.table key { bytes; stamp = tick pool };
      bytes

let stats pool = (pool.hits, pool.misses)

let cached_pages pool = Hashtbl.length pool.table

let invalidate pool ~path =
  let keys =
    Hashtbl.fold
      (fun ((p, _) as key) _ acc -> if String.equal p path then key :: acc else acc)
      pool.table []
  in
  List.iter (Hashtbl.remove pool.table) keys
