(** Paged heap files for TP relations.

    Layout: a header page (magic, format version, schema, tuple and page
    counts) followed by fixed-size data pages. Each data page holds a
    record count and a run of self-delimiting tuple records; a tuple never
    spans pages unless it is larger than a page, in which case it gets a
    private oversized page (length-prefixed). Relations are immutable, so
    files are written once (atomically, via a temp file and rename) and
    only read afterwards. *)

val page_size : int
(** 4096 bytes. *)

exception Corrupt of string

val write : string -> Tpdb_relation.Relation.t -> unit
(** [write path relation] — atomic: the file appears complete or not at
    all. *)

val read : ?pool:Buffer_pool.t -> string -> Tpdb_relation.Relation.t
(** Reads the whole relation; with [pool], pages come through the buffer
    pool (and stay cached for subsequent reads). Raises {!Corrupt} on bad
    magic, version, or page contents; [Sys_error] on I/O failure. *)

val schema_of : ?pool:Buffer_pool.t -> string -> Tpdb_relation.Schema.t
(** Header-only read. *)

val page_count : ?pool:Buffer_pool.t -> string -> int
(** Data pages (excluding the header). *)
