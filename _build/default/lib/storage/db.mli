(** A database directory: one heap file per relation, plus a shared buffer
    pool for reads.

    Relation [name] lives in [<dir>/<name>.tpr]. Saving is atomic per
    relation; the pool is invalidated on rewrite so readers never see
    stale pages. *)

type t

val open_ : ?pool_pages:int -> string -> t
(** Creates the directory if missing (default pool: 256 pages = 1 MiB). *)

val dir : t -> string

val save : t -> Tpdb_relation.Relation.t -> unit
(** Keyed by {!Tpdb_relation.Relation.name}. *)

val load : t -> string -> Tpdb_relation.Relation.t
(** Raises [Not_found] for unknown relations, {!Heap_file.Corrupt} on bad
    files. *)

val exists : t -> string -> bool
val list : t -> string list
(** Sorted relation names. *)

val drop : t -> string -> unit
(** Idempotent. *)

val pool : t -> Buffer_pool.t
