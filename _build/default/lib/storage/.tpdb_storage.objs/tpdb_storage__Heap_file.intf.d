lib/storage/heap_file.mli: Buffer_pool Tpdb_relation
