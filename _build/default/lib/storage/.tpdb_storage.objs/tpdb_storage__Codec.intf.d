lib/storage/codec.mli: Buffer Bytes Tpdb_relation
