lib/storage/codec.ml: Buffer Bytes Char Int64 List Printf String Tpdb_interval Tpdb_lineage Tpdb_relation
