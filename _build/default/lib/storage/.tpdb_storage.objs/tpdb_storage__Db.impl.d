lib/storage/db.ml: Array Buffer_pool Filename Heap_file List Printf String Sys Tpdb_relation
