lib/storage/db.mli: Buffer_pool Tpdb_relation
