lib/storage/heap_file.ml: Buffer Buffer_pool Bytes Codec Fun List Printf String Sys Tpdb_relation
