lib/storage/buffer_pool.ml: Bytes Fun Hashtbl List Printf String
