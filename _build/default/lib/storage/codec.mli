(** Binary (de)serialization of TP values and tuples.

    Little-endian, length-prefixed, tagged. A tuple record is
    self-delimiting: arity, values, lineage (ASCII formula), interval
    bounds and the probability's IEEE bits. *)

exception Corrupt of string
(** Raised by every reader on malformed input. *)

type reader = { bytes : Bytes.t; mutable pos : int }

val reader : Bytes.t -> reader
val reader_at : Bytes.t -> int -> reader

val write_uint16 : Buffer.t -> int -> unit
val read_uint16 : reader -> int
val write_int64 : Buffer.t -> int -> unit
val read_int64 : reader -> int
val write_float : Buffer.t -> float -> unit
val read_float : reader -> float
val write_string : Buffer.t -> string -> unit
val read_string : reader -> string

val write_value : Buffer.t -> Tpdb_relation.Value.t -> unit
val read_value : reader -> Tpdb_relation.Value.t

val write_tuple : Buffer.t -> Tpdb_relation.Tuple.t -> unit
val read_tuple : reader -> Tpdb_relation.Tuple.t

val tuple_size : Tpdb_relation.Tuple.t -> int
(** Encoded byte size (by encoding into a scratch buffer). *)
