module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

let page_size = 4096
let magic = "TPHF"
let version = 1

(* Data-page layout: u16 record count, then that many self-delimiting
   tuple records. A record larger than one page's capacity is stored as an
   oversize chain: count = 0xFFFF, u64 byte length, then the bytes,
   continuing on as many raw pages as needed. *)
let oversize_sentinel = 0xFFFF

let payload_capacity = page_size - 2

let pad_to_page buf =
  let remainder = Buffer.length buf mod page_size in
  if remainder > 0 then Buffer.add_string buf (String.make (page_size - remainder) '\000')

let header_bytes relation ~data_pages =
  let buf = Buffer.create page_size in
  Buffer.add_string buf magic;
  Codec.write_uint16 buf version;
  let schema = Relation.schema relation in
  Codec.write_string buf (Schema.name schema);
  let columns = Schema.columns schema in
  Codec.write_uint16 buf (List.length columns);
  List.iter (Codec.write_string buf) columns;
  Codec.write_int64 buf (Relation.cardinality relation);
  Codec.write_int64 buf data_pages;
  if Buffer.length buf > page_size then corrupt "schema too large for header page";
  pad_to_page buf;
  Buffer.contents buf

let encode_data_pages relation =
  let pages = Buffer.create (16 * page_size) in
  (* Records of the page being assembled. *)
  let pending = Buffer.create page_size in
  let pending_count = ref 0 in
  let flush_pending () =
    if !pending_count > 0 then begin
      let page = Buffer.create page_size in
      Codec.write_uint16 page !pending_count;
      Buffer.add_buffer page pending;
      pad_to_page page;
      Buffer.add_buffer pages page;
      Buffer.clear pending;
      pending_count := 0
    end
  in
  let add_oversize record =
    flush_pending ();
    let chain = Buffer.create (String.length record + 16) in
    Codec.write_uint16 chain oversize_sentinel;
    Codec.write_int64 chain (String.length record);
    Buffer.add_string chain record;
    pad_to_page chain;
    Buffer.add_buffer pages chain
  in
  List.iter
    (fun tp ->
      let buf = Buffer.create 128 in
      Codec.write_tuple buf tp;
      let record = Buffer.contents buf in
      if String.length record > payload_capacity then add_oversize record
      else begin
        if Buffer.length pending + String.length record > payload_capacity then
          flush_pending ();
        Buffer.add_string pending record;
        incr pending_count
      end)
    (Relation.tuples relation);
  flush_pending ();
  let bytes = Buffer.contents pages in
  (bytes, String.length bytes / page_size)

let write path relation =
  let data, data_pages = encode_data_pages relation in
  let header = header_bytes relation ~data_pages in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc header;
     output_string oc data;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let get_page ?pool ~path index =
  match pool with
  | Some pool -> Buffer_pool.read_page pool ~path ~index ~size:page_size
  | None ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let file_len = in_channel_length ic in
          let offset = index * page_size in
          if offset >= file_len then corrupt "page %d beyond end of %s" index path;
          seek_in ic offset;
          let available = min page_size (file_len - offset) in
          let bytes = Bytes.make page_size '\000' in
          really_input ic bytes 0 available;
          bytes)

let read_header ?pool path =
  let bytes = get_page ?pool ~path 0 in
  let r = Codec.reader bytes in
  let m = Bytes.sub_string bytes 0 4 in
  if not (String.equal m magic) then corrupt "%s: bad magic %S" path m;
  r.Codec.pos <- 4;
  let v = Codec.read_uint16 r in
  if v <> version then corrupt "%s: unsupported format version %d" path v;
  let name = Codec.read_string r in
  let n_columns = Codec.read_uint16 r in
  let columns = List.init n_columns (fun _ -> Codec.read_string r) in
  let tuple_count = Codec.read_int64 r in
  let data_pages = Codec.read_int64 r in
  (Schema.make ~name columns, tuple_count, data_pages)

let schema_of ?pool path =
  let schema, _, _ = read_header ?pool path in
  schema

let page_count ?pool path =
  let _, _, data_pages = read_header ?pool path in
  data_pages

let read ?pool path =
  let schema, tuple_count, data_pages = read_header ?pool path in
  let tuples = ref [] in
  let decoded = ref 0 in
  let page_index = ref 1 in
  (try
     while !page_index <= data_pages do
       let bytes = get_page ?pool ~path !page_index in
       let r = Codec.reader bytes in
       let count = Codec.read_uint16 r in
       if count = oversize_sentinel then begin
         let length = Codec.read_int64 r in
         let record = Buffer.create length in
         let first_chunk = min length (page_size - r.Codec.pos) in
         Buffer.add_subbytes record bytes r.Codec.pos first_chunk;
         let remaining = ref (length - first_chunk) in
         while !remaining > 0 do
           incr page_index;
           if !page_index > data_pages then corrupt "%s: truncated oversize chain" path;
           let continuation = get_page ?pool ~path !page_index in
           let chunk = min !remaining page_size in
           Buffer.add_subbytes record continuation 0 chunk;
           remaining := !remaining - chunk
         done;
         let tuple =
           Codec.read_tuple (Codec.reader (Buffer.to_bytes record))
         in
         tuples := tuple :: !tuples;
         incr decoded
       end
       else
         for _ = 1 to count do
           tuples := Codec.read_tuple r :: !tuples;
           incr decoded
         done;
       incr page_index
     done
   with Codec.Corrupt msg -> corrupt "%s: %s" path msg);
  if !decoded <> tuple_count then
    corrupt "%s: header claims %d tuples, found %d" path tuple_count !decoded;
  Relation.of_tuples schema (List.rev !tuples)
