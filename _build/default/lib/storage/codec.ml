module Value = Tpdb_relation.Value
module Fact = Tpdb_relation.Fact
module Tuple = Tpdb_relation.Tuple
module Formula = Tpdb_lineage.Formula
module Interval = Tpdb_interval.Interval

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

type reader = { bytes : Bytes.t; mutable pos : int }

let reader bytes = { bytes; pos = 0 }
let reader_at bytes pos = { bytes; pos }

let need r n =
  if r.pos + n > Bytes.length r.bytes then
    corrupt "truncated record at offset %d (need %d bytes)" r.pos n

let write_uint16 buf v =
  if v < 0 || v > 0xFFFF then invalid_arg "Codec.write_uint16";
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let read_uint16 r =
  need r 2;
  let v =
    Char.code (Bytes.get r.bytes r.pos)
    lor (Char.code (Bytes.get r.bytes (r.pos + 1)) lsl 8)
  in
  r.pos <- r.pos + 2;
  v

let write_int64 buf v =
  let v = Int64.of_int v in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let read_int64 r =
  need r 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (Bytes.get r.bytes (r.pos + i))))
  done;
  r.pos <- r.pos + 8;
  Int64.to_int !v

let write_float buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let read_float r =
  need r 8;
  let bits = ref 0L in
  for i = 7 downto 0 do
    bits :=
      Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code (Bytes.get r.bytes (r.pos + i))))
  done;
  r.pos <- r.pos + 8;
  Int64.float_of_bits !bits

let write_string buf s =
  write_int64 buf (String.length s);
  Buffer.add_string buf s

let read_string r =
  let len = read_int64 r in
  if len < 0 then corrupt "negative string length";
  need r len;
  let s = Bytes.sub_string r.bytes r.pos len in
  r.pos <- r.pos + len;
  s

let write_value buf = function
  | Value.Null -> Buffer.add_char buf '\000'
  | Value.S s ->
      Buffer.add_char buf '\001';
      write_string buf s
  | Value.I i ->
      Buffer.add_char buf '\002';
      write_int64 buf i
  | Value.F f ->
      Buffer.add_char buf '\003';
      write_float buf f

let read_value r =
  need r 1;
  let tag = Bytes.get r.bytes r.pos in
  r.pos <- r.pos + 1;
  match tag with
  | '\000' -> Value.Null
  | '\001' -> Value.S (read_string r)
  | '\002' -> Value.I (read_int64 r)
  | '\003' -> Value.F (read_float r)
  | c -> corrupt "unknown value tag %C" c

let write_tuple buf tp =
  let fact = Tuple.fact tp in
  write_uint16 buf (Fact.arity fact);
  for i = 0 to Fact.arity fact - 1 do
    write_value buf (Fact.get fact i)
  done;
  write_string buf (Formula.to_string_ascii (Tuple.lineage tp));
  write_int64 buf (Interval.ts (Tuple.iv tp));
  write_int64 buf (Interval.te (Tuple.iv tp));
  write_float buf (Tuple.p tp)

let read_tuple r =
  let arity = read_uint16 r in
  let values = List.init arity (fun _ -> read_value r) in
  let lineage_text = read_string r in
  let lineage =
    try Formula.of_string lineage_text
    with Invalid_argument msg -> corrupt "bad lineage: %s" msg
  in
  let ts = read_int64 r in
  let te = read_int64 r in
  let p = read_float r in
  if ts >= te then corrupt "empty interval [%d,%d)" ts te;
  if not (p >= 0.0 && p <= 1.0) then corrupt "probability %g out of range" p;
  Tuple.make ~fact:(Fact.of_values values) ~lineage ~iv:(Interval.make ts te) ~p

let tuple_size tp =
  let buf = Buffer.create 64 in
  write_tuple buf tp;
  Buffer.length buf
