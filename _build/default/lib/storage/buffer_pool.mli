(** A fixed-capacity LRU page cache over files.

    The read path of {!Heap_file} goes through a pool when one is given,
    so repeated scans of hot relations avoid I/O — the buffer-manager role
    of the DBMS substrate. Thread-unsafe by design (the executor is
    single-threaded, like a PostgreSQL backend). *)

type t

val create : capacity:int -> t
(** [capacity] in pages (> 0). *)

val read_page : t -> path:string -> index:int -> size:int -> Bytes.t
(** Page [index] (0-based) of [path], [size] bytes ([Heap_file.page_size]
    for all callers; short final pages come back zero-padded). Cached;
    eviction is least-recently-used. The returned bytes must not be
    mutated. *)

val stats : t -> int * int
(** (hits, misses) since creation. *)

val cached_pages : t -> int

val invalidate : t -> path:string -> unit
(** Drops all cached pages of one file (after a rewrite). *)
