module Relation = Tpdb_relation.Relation

type t = { dir : string; pool : Buffer_pool.t }

let extension = ".tpr"

let open_ ?(pool_pages = 256) dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Db.open_: %s is not a directory" dir);
  { dir; pool = Buffer_pool.create ~capacity:pool_pages }

let dir db = db.dir

let path_of db name = Filename.concat db.dir (name ^ extension)

let save db relation =
  let path = path_of db (Relation.name relation) in
  Heap_file.write path relation;
  Buffer_pool.invalidate db.pool ~path

let exists db name = Sys.file_exists (path_of db name)

let load db name =
  let path = path_of db name in
  if not (Sys.file_exists path) then raise Not_found;
  Heap_file.read ~pool:db.pool path

let list db =
  Sys.readdir db.dir |> Array.to_list
  |> List.filter_map (fun file ->
         if Filename.check_suffix file extension then
           Some (Filename.chop_suffix file extension)
         else None)
  |> List.sort String.compare

let drop db name =
  let path = path_of db name in
  Buffer_pool.invalidate db.pool ~path;
  if Sys.file_exists path then Sys.remove path

let pool db = db.pool
