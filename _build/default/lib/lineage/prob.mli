(** Probability computation for lineage formulas.

    Base-tuple variables are independent Bernoulli random variables; an
    environment maps each variable to its marginal probability. The output
    probability of a TP tuple is the probability that its lineage is
    true. *)

type env = Var.t -> float

val env_of_alist : (Var.t * float) list -> env
(** Lookup raising [Not_found] for unbound variables. *)

val exact : env -> Formula.t -> float
(** Exact probability via BDD-based weighted model counting. Worst-case
    exponential (the problem is #P-hard) but linear in BDD size. *)

val read_once : env -> Formula.t -> float option
(** Fast path: when no variable occurs twice in the formula (a read-once
    formula), the probability factorizes over the connectives:
    [P(∧) = ∏ P], [P(∨) = 1 − ∏ (1 − P)], [P(¬f) = 1 − P(f)].
    Returns [None] for formulas with repeated variables. Every window
    lineage produced from duplicate-free base relations is read-once. *)

val compute : env -> Formula.t -> float
(** {!read_once} when it applies, otherwise {!exact}. This is what the
    join operators call. *)

val conditional : env -> given:Formula.t -> Formula.t -> float
(** [conditional env ~given f] is P(f | given) = P(f ∧ given) / P(given),
    computed exactly on one shared BDD. Conditioning on observed evidence
    is the standard query refinement in probabilistic databases. Raises
    [Invalid_argument] when the evidence has probability 0. *)

val monte_carlo : ?seed:int -> samples:int -> env -> Formula.t -> float
(** Monte-Carlo estimate: draws independent assignments from the
    marginals and reports the fraction satisfying the formula. The
    standard error is at most [0.5 / sqrt samples]; used as a scalable
    cross-check of {!exact} and for lineages whose BDDs blow up.
    Deterministic for a fixed [seed] (default 1). Raises
    [Invalid_argument] if [samples <= 0]. *)

val enumerate : env -> Formula.t -> float
(** Reference implementation: sums over all 2^n assignments. Used by the
    test suite to validate {!exact}; raises [Invalid_argument] for more
    than 20 variables. *)
