type t =
  | True
  | False
  | Var of Var.t
  | Not of t
  | And of t list
  | Or of t list

let true_ = True
let false_ = False

let var v = Var v

let neg = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

(* Flattening constructor shared by [conj] and [disj]: [unit] is the
   identity element, [zero] the annihilator, [wrap] rebuilds the
   connective and [unwrap] recognizes it for flattening. *)
let connective ~unit ~zero ~wrap ~unwrap juncts =
  let rec gather acc = function
    | [] -> Some (List.rev acc)
    | f :: rest ->
        if f = zero then None
        else if f = unit then gather acc rest
        else
          (match unwrap f with
          | Some inner -> gather (List.rev_append inner acc) rest
          | None -> gather (f :: acc) rest)
  in
  match gather [] juncts with
  | None -> zero
  | Some [] -> unit
  | Some [ f ] -> f
  | Some fs -> wrap fs

let conj fs =
  connective ~unit:True ~zero:False
    ~wrap:(fun fs -> And fs)
    ~unwrap:(function And fs -> Some fs | _ -> None)
    fs

let disj fs =
  connective ~unit:False ~zero:True
    ~wrap:(fun fs -> Or fs)
    ~unwrap:(function Or fs -> Some fs | _ -> None)
    fs

let ( &&& ) a b = conj [ a; b ]
let ( ||| ) a b = disj [ a; b ]

let and_not a b = a &&& neg b

let rec compare a b =
  match (a, b) with
  | True, True | False, False -> 0
  | True, _ -> -1
  | _, True -> 1
  | False, _ -> -1
  | _, False -> 1
  | Var x, Var y -> Var.compare x y
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Not x, Not y -> compare x y
  | Not _, _ -> -1
  | _, Not _ -> 1
  | And xs, And ys -> compare_lists xs ys
  | And _, _ -> -1
  | _, And _ -> 1
  | Or xs, Or ys -> compare_lists xs ys

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c <> 0 then c else compare_lists xs' ys'

let equal a b = compare a b = 0

let rec normalize f =
  match f with
  | True | False | Var _ -> f
  | Not g -> neg (normalize g)
  | And fs -> conj (sorted_juncts fs)
  | Or fs -> disj (sorted_juncts fs)

and sorted_juncts fs =
  let normalized = List.map normalize fs in
  let sorted = List.sort_uniq compare normalized in
  sorted

let vars f =
  let module S = Set.Make (Var) in
  let rec collect acc = function
    | True | False -> acc
    | Var v -> S.add v acc
    | Not g -> collect acc g
    | And fs | Or fs -> List.fold_left collect acc fs
  in
  S.elements (collect S.empty f)

let rec size = function
  | True | False | Var _ -> 1
  | Not f -> 1 + size f
  | And fs | Or fs -> List.fold_left (fun acc f -> acc + size f) 1 fs

let rec eval env = function
  | True -> true
  | False -> false
  | Var v -> env v
  | Not f -> not (eval env f)
  | And fs -> List.for_all (eval env) fs
  | Or fs -> List.exists (eval env) fs

let rec substitute lookup = function
  | True -> True
  | False -> False
  | Var v as f -> (match lookup v with Some g -> g | None -> f)
  | Not f -> neg (substitute lookup f)
  | And fs -> conj (List.map (substitute lookup) fs)
  | Or fs -> disj (List.map (substitute lookup) fs)

(* Printing. Precedence levels: Or = 0, And = 1, Not/atom = 2. A child is
   parenthesized when its level is below the context's. *)
let render ~not_ ~and_ ~or_ f =
  let buf = Buffer.create 64 in
  let rec go level f =
    match f with
    | True -> Buffer.add_string buf "T"
    | False -> Buffer.add_string buf "F"
    | Var v -> Buffer.add_string buf (Var.to_string v)
    | Not g ->
        Buffer.add_string buf not_;
        go 2 g
    | And fs -> infix level 1 and_ fs
    | Or fs -> infix level 0 or_ fs
  and infix level own sep fs =
    let needs_parens = level > own in
    if needs_parens then Buffer.add_char buf '(';
    List.iteri
      (fun i f ->
        if i > 0 then Buffer.add_string buf sep;
        go (own + 1) f)
      fs;
    if needs_parens then Buffer.add_char buf ')'
  in
  go 0 f;
  Buffer.contents buf

let to_string f = render ~not_:"\xc2\xac" ~and_:" \xe2\x88\xa7 " ~or_:" \xe2\x88\xa8 " f

let to_string_ascii f = render ~not_:"!" ~and_:" & " ~or_:" | " f

let pp ppf f = Format.pp_print_string ppf (to_string f)

(* Recursive-descent parser for the ASCII notation. *)
let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = invalid_arg (Printf.sprintf "Formula.of_string: %s at %d in %S" msg !pos s) in
  let rec skip_ws () =
    if !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') then (incr pos; skip_ws ())
  in
  let peek () =
    skip_ws ();
    if !pos < n then Some s.[!pos] else None
  in
  let advance () = incr pos in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  let ident () =
    let start = !pos in
    while !pos < n && is_ident s.[!pos] do incr pos done;
    if !pos = start then fail "expected identifier";
    String.sub s start (!pos - start)
  in
  let rec parse_or () =
    let left = parse_and () in
    match peek () with
    | Some '|' ->
        advance ();
        left ||| parse_or ()
    | _ -> left
  and parse_and () =
    let left = parse_atom () in
    match peek () with
    | Some '&' ->
        advance ();
        left &&& parse_and ()
    | _ -> left
  and parse_atom () =
    match peek () with
    | Some '!' ->
        advance ();
        neg (parse_atom ())
    | Some '(' ->
        advance ();
        let f = parse_or () in
        (match peek () with
        | Some ')' -> advance (); f
        | _ -> fail "expected ')'")
    | Some c when is_ident c -> (
        let id = ident () in
        match id with
        | "T" -> True
        | "F" -> False
        | _ -> (
            match Var.of_string id with
            | v -> Var v
            | exception Invalid_argument _ -> fail ("bad variable " ^ id)))
    | _ -> fail "expected formula"
  in
  let f = parse_or () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  f
