(** Reduced ordered binary decision diagrams, hash-consed.

    Used for exact probability computation of lineage formulas (weighted
    model counting over independent base-tuple variables) and for deciding
    logical equivalence of lineages. A {!manager} owns the unique-node
    table, the apply cache and the variable order; diagrams from different
    managers must not be mixed. *)

type manager
type t

val manager : ?order:Var.t list -> unit -> manager
(** A fresh manager. [order] pre-declares the variable order (first =
    topmost); variables first seen later are appended in encounter
    order. *)

val zero : manager -> t
val one : manager -> t

val var : manager -> Var.t -> t

val neg : manager -> t -> t
val conj : manager -> t -> t -> t
val disj : manager -> t -> t -> t

val of_formula : manager -> Formula.t -> t

val equal : t -> t -> bool
(** Constant-time: hash-consing makes equivalent diagrams physically
    equal (within one manager). *)

val is_tautology : t -> bool
val is_contradiction : t -> bool

val equivalent : Formula.t -> Formula.t -> bool
(** Logical equivalence of two formulas, via a private manager. *)

val probability : manager -> (Var.t -> float) -> t -> float
(** Weighted model count: every variable is an independent Bernoulli with
    the given marginal. Linear in the number of BDD nodes. *)

val node_count : t -> int
(** Number of distinct internal nodes reachable from the root. *)

val sat_count : manager -> t -> float
(** Number of satisfying assignments over the manager's declared
    variables (as a float: can exceed [max_int]). *)
