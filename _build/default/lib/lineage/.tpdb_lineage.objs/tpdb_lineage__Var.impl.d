lib/lineage/var.ml: Format Hashtbl Int Printf String
