lib/lineage/bdd.mli: Formula Var
