lib/lineage/prob.mli: Formula Var
