lib/lineage/var.mli: Format
