lib/lineage/prob.ml: Array Bdd Formula Hashtbl Int64 List Var
