lib/lineage/bdd.ml: Array Float Formula Hashtbl List Var
