lib/lineage/formula.ml: Buffer Format List Printf Set String Var
