lib/lineage/formula.mli: Format Var
