(** Lineage formulas: propositional formulas over base-tuple variables.

    Constructors are smart: [conj] and [disj] flatten nested connectives
    and apply identity/annihilator laws, so formulas built through this
    interface never contain [And []], [Or [x]] or a [True] inside a
    conjunction. Deeper (NP-hard) simplification is deliberately out of
    scope — probabilities are computed exactly via {!Bdd}. *)

type t = private
  | True
  | False
  | Var of Var.t
  | Not of t
  | And of t list  (** >= 2 juncts, none of them [And]/[True]/[False] *)
  | Or of t list  (** >= 2 juncts, none of them [Or]/[True]/[False] *)

val true_ : t
val false_ : t
val var : Var.t -> t
val neg : t -> t
(** [neg] applies double-negation elimination and constant folding only. *)

val conj : t list -> t
val disj : t list -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t

val and_not : t -> t -> t
(** [and_not a b] is [a ∧ ¬b] — the paper's [andNot] lineage-concatenation
    function used for negating windows. *)

val equal : t -> t -> bool
(** Structural equality. For equality up to commutativity compare
    {!normalize}d formulas. *)

val compare : t -> t -> int

val normalize : t -> t
(** Sorts and de-duplicates the juncts of every connective, recursively.
    Two window lineages built from the same set of tuple variables in
    different orders normalize to the same formula. *)

val vars : t -> Var.t list
(** Distinct variables, sorted. *)

val size : t -> int
(** Number of connective and variable nodes. *)

val eval : (Var.t -> bool) -> t -> bool

val substitute : (Var.t -> t option) -> t -> t
(** Replaces variables for which the function returns [Some _]. *)

val to_string : t -> string
(** Paper notation: [a1 ∧ ¬(b3 ∨ b2)]. *)

val to_string_ascii : t -> string
(** ASCII notation accepted by {!of_string}: [a1 & !(b3 | b2)]. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Parses the ASCII notation: variables as in {!Var.of_string}, [!] for
    negation, [&]/[|] for connectives (with the usual precedences:
    [!] > [&] > [|]), [T]/[F] for constants, parentheses. Raises
    [Invalid_argument] on syntax errors. *)
