(** Base-tuple variables.

    Every tuple of a TP base relation carries a distinct Boolean variable;
    lineages of derived tuples are formulas over these variables. Following
    the paper's notation, a variable is a relation tag plus an index and
    prints as ["a1"], ["b3"], ... *)

type t = { rel : string; idx : int }

val make : string -> int -> t
(** [make rel idx]. [rel] must be non-empty and must not end in a digit
    (so that printing stays injective); [idx >= 0]. Raises
    [Invalid_argument] otherwise. *)

val rel : t -> string
val idx : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Inverse of {!to_string}: trailing digits are the index. Raises
    [Invalid_argument] if there is no trailing digit or no tag. *)
