type t = { rel : string; idx : int }

let is_digit c = c >= '0' && c <= '9'

let make rel idx =
  if String.length rel = 0 then invalid_arg "Var.make: empty relation tag";
  if is_digit rel.[String.length rel - 1] then
    invalid_arg "Var.make: relation tag must not end in a digit";
  if idx < 0 then invalid_arg "Var.make: negative index";
  { rel; idx }

let rel v = v.rel
let idx v = v.idx

let equal a b = a.idx = b.idx && String.equal a.rel b.rel

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c else Int.compare a.idx b.idx

let hash v = Hashtbl.hash (v.rel, v.idx)

let to_string v = v.rel ^ string_of_int v.idx

let pp ppf v = Format.pp_print_string ppf (to_string v)

let of_string s =
  let n = String.length s in
  let rec split i = if i > 0 && is_digit s.[i - 1] then split (i - 1) else i in
  let cut = split n in
  if cut = n || cut = 0 then
    invalid_arg (Printf.sprintf "Var.of_string: %S" s)
  else make (String.sub s 0 cut) (int_of_string (String.sub s cut (n - cut)))
