module Fact = Tpdb_relation.Fact
module Value = Tpdb_relation.Value
module Schema = Tpdb_relation.Schema

type op = [ `Eq | `Lt | `Le | `Gt | `Ge | `Ne ]

type atom =
  | Cols of op * int * int
  | Left_const of op * int * Value.t
  | Right_const of op * int * Value.t

type t = atom list

let always = []

let of_atoms atoms = atoms

let eq i j = [ Cols (`Eq, i, j) ]

let conj a b = a @ b

let atoms t = t

let apply_op op a b =
  if Value.is_null a || Value.is_null b then false
  else
    let c = Value.compare a b in
    match op with
    | `Eq -> c = 0
    | `Ne -> c <> 0
    | `Lt -> c < 0
    | `Le -> c <= 0
    | `Gt -> c > 0
    | `Ge -> c >= 0

let matches_atom fr fs = function
  | Cols (op, i, j) -> apply_op op (Fact.get fr i) (Fact.get fs j)
  | Left_const (op, i, v) -> apply_op op (Fact.get fr i) v
  | Right_const (op, j, v) -> apply_op op (Fact.get fs j) v

let matches t fr fs = List.for_all (matches_atom fr fs) t

let equi_keys t =
  let keys =
    List.filter_map (function Cols (`Eq, i, j) -> Some (i, j) | _ -> None) t
  in
  match keys with
  | [] -> None
  | _ -> Some (List.map fst keys, List.map snd keys)

let residual t =
  List.filter (function Cols (`Eq, _, _) -> false | _ -> true) t

let swap_op : op -> op = function
  | `Eq -> `Eq
  | `Ne -> `Ne
  | `Lt -> `Gt
  | `Le -> `Ge
  | `Gt -> `Lt
  | `Ge -> `Le

let swap t =
  List.map
    (function
      | Cols (op, i, j) -> Cols (swap_op op, j, i)
      | Left_const (op, i, v) -> Right_const (op, i, v)
      | Right_const (op, j, v) -> Left_const (op, j, v))
    t

let op_string : op -> string = function
  | `Eq -> "="
  | `Ne -> "<>"
  | `Lt -> "<"
  | `Le -> "<="
  | `Gt -> ">"
  | `Ge -> ">="

let column schema side i =
  match schema with
  | Some s -> (
      match List.nth_opt (Schema.columns s) i with
      | Some c -> Printf.sprintf "%s.%s" (Schema.name s) c
      | None -> Printf.sprintf "%s#%d" side i)
  | None -> Printf.sprintf "%s#%d" side i

let to_string ?left ?right t =
  match t with
  | [] -> "true"
  | _ ->
      String.concat " and "
        (List.map
           (function
             | Cols (op, i, j) ->
                 Printf.sprintf "%s %s %s" (column left "l" i) (op_string op)
                   (column right "r" j)
             | Left_const (op, i, v) ->
                 Printf.sprintf "%s %s %s" (column left "l" i) (op_string op)
                   (Value.to_string v)
             | Right_const (op, j, v) ->
                 Printf.sprintf "%s %s %s" (column right "r" j) (op_string op)
                   (Value.to_string v))
           t)

let pp ppf t = Format.pp_print_string ppf (to_string t)
