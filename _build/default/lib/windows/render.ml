module Interval = Tpdb_interval.Interval
module Timeline = Tpdb_interval.Timeline
module Relation = Tpdb_relation.Relation
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Formula = Tpdb_lineage.Formula

(* Each time point maps to one column; spans wider than [max_width] are
   compressed by an integer factor. *)
type scale = { origin : int; per_char : int; columns : int }

let scale_of ~max_width span =
  let duration = Interval.duration span in
  let per_char = max 1 ((duration + max_width - 1) / max_width) in
  {
    origin = Interval.ts span;
    per_char;
    columns = (duration + per_char - 1) / per_char;
  }

let bar scale iv =
  let cell column =
    let cell_start = scale.origin + (column * scale.per_char) in
    let cell_iv = Interval.make cell_start (cell_start + scale.per_char) in
    if Interval.overlaps cell_iv iv then '#' else ' '
  in
  String.init scale.columns cell

let ruler scale =
  let mark column =
    let t = scale.origin + (column * scale.per_char) in
    Char.chr (Char.code '0' + abs (t mod 10))
  in
  String.init scale.columns mark

let label_width = 26

let row ~label ~annotation scale iv =
  let label =
    if String.length label > label_width then String.sub label 0 label_width
    else label ^ String.make (label_width - String.length label) ' '
  in
  Printf.sprintf "%s|%s| %s" label (bar scale iv) annotation

let header ~title scale =
  [
    title;
    Printf.sprintf "%s|%s|" (String.make label_width ' ') (ruler scale);
  ]

let relation ?(max_width = 60) r =
  match Relation.active_domain r with
  | None -> Relation.name r ^ ": (empty)\n"
  | Some span ->
      let scale = scale_of ~max_width span in
      let rows =
        List.map
          (fun tp ->
            row
              ~label:
                (Printf.sprintf "  %s %s"
                   (Formula.to_string_ascii (Tuple.lineage tp))
                   (Interval.to_string (Tuple.iv tp)))
              ~annotation:(Fact.to_string (Tuple.fact tp))
              scale (Tuple.iv tp))
          (Relation.sorted_by_fact_start r)
      in
      String.concat "\n"
        (header ~title:(Relation.name r) scale @ rows)
      ^ "\n"

let kind_letter = function
  | Window.Overlapping -> 'O'
  | Window.Unmatched -> 'U'
  | Window.Negating -> 'N'

let windows ?(max_width = 60) ~span ws =
  let scale = scale_of ~max_width span in
  let rows =
    List.map
      (fun w ->
        let ls =
          match Window.ls w with
          | Some l -> Formula.to_string_ascii l
          | None -> "-"
        in
        row
          ~label:
            (Printf.sprintf "  %c %s %s" (kind_letter (Window.kind w))
               (Interval.to_string (Window.iv w))
               (Formula.to_string_ascii (Window.lr w)))
          ~annotation:
            (Printf.sprintf "Fs=%s \xce\xbbs=%s"
               (match Window.fs w with
               | Some f -> "'" ^ Fact.to_string f ^ "'"
               | None -> "-")
               ls)
          scale (Window.iv w))
      ws
  in
  String.concat "\n" (header ~title:"windows" scale @ rows) ^ "\n"

let join_picture ?(max_width = 60) ~theta r s =
  let span =
    match
      Timeline.span
        (List.map Tuple.iv (Relation.tuples r)
        @ List.map Tuple.iv (Relation.tuples s))
    with
    | Some span -> span
    | None -> Interval.make 0 1
  in
  let pipeline =
    List.of_seq (Lawan.extend (Lawau.extend (Overlap.left ~theta r s)))
  in
  String.concat "\n"
    [
      relation ~max_width r;
      relation ~max_width s;
      windows ~max_width ~span pipeline;
    ]
