(** Join conditions θ over the non-temporal attributes of two facts.

    θ is a conjunction of atoms comparing a column of the left fact with a
    column of the right fact (or with a constant). Equality atoms are
    recognized so the executor can hash-partition on them; everything else
    is evaluated as a residual predicate — exactly the split PostgreSQL's
    planner performs between hash clauses and join filters. *)

type op = [ `Eq | `Lt | `Le | `Gt | `Ge | `Ne ]

type atom =
  | Cols of op * int * int  (** left column ⋈ right column *)
  | Left_const of op * int * Tpdb_relation.Value.t
  | Right_const of op * int * Tpdb_relation.Value.t

type t

val always : t
(** The empty conjunction: every pair matches (pure temporal join). *)

val of_atoms : atom list -> t

val eq : int -> int -> t
(** [eq i j] : left column [i] = right column [j]. *)

val conj : t -> t -> t

val atoms : t -> atom list

val matches : t -> Tpdb_relation.Fact.t -> Tpdb_relation.Fact.t -> bool
(** Comparisons involving [Null] never match (SQL semantics). *)

val equi_keys : t -> (int list * int list) option
(** Columns of the column-equality atoms, left and right, positionally
    paired; [None] when there is no equality atom to hash on. *)

val residual : t -> t
(** Everything but the column-equality atoms. [matches t fr fs] iff the
    {!equi_keys} columns are pairwise equal (and non-null) and
    [matches (residual t) fr fs]. *)

val swap : t -> t
(** θ with the two sides exchanged:
    [matches (swap t) fs fr = matches t fr fs]. *)

val to_string :
  ?left:Tpdb_relation.Schema.t -> ?right:Tpdb_relation.Schema.t -> t -> string

val pp : Format.formatter -> t -> unit
