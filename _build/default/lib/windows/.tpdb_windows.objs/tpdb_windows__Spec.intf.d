lib/windows/spec.mli: Theta Tpdb_interval Tpdb_lineage Tpdb_relation Window
