lib/windows/render.ml: Char Lawan Lawau List Overlap Printf String Tpdb_interval Tpdb_lineage Tpdb_relation Window
