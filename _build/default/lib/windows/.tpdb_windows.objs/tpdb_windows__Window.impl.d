lib/windows/window.ml: Format Int Option Printf Tpdb_interval Tpdb_lineage Tpdb_relation
