lib/windows/theta.ml: Format List Printf String Tpdb_relation
