lib/windows/lawau.mli: Seq Window
