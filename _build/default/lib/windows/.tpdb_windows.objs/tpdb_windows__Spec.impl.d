lib/windows/spec.ml: List Option Seq Theta Tpdb_interval Tpdb_lineage Tpdb_relation Window
