lib/windows/overlap.ml: Array Fun List Option Seq Theta Tpdb_engine Tpdb_interval Tpdb_relation Window
