lib/windows/render.mli: Theta Tpdb_interval Tpdb_relation Window
