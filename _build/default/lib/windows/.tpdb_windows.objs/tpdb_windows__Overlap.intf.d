lib/windows/overlap.mli: Seq Theta Tpdb_relation Window
