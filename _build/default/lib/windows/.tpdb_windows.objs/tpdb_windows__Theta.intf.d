lib/windows/theta.mli: Format Tpdb_relation
