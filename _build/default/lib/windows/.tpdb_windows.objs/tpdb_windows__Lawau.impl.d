lib/windows/lawau.ml: List Option Tpdb_engine Tpdb_interval Window
