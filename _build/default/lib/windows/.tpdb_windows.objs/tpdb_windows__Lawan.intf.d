lib/windows/lawan.mli: Seq Window
