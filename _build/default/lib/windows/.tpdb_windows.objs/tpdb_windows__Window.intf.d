lib/windows/window.mli: Format Tpdb_interval Tpdb_lineage Tpdb_relation
