lib/windows/lawan.ml: List Tpdb_engine Tpdb_interval Tpdb_lineage Window
