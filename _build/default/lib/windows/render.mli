(** ASCII timeline rendering, in the spirit of the paper's Fig. 2.

    One row per tuple or window: a ruler gives the time scale, [#] marks
    covered time points, and each row is annotated with its interval,
    lineages and (for windows) kind — [U]nmatched, [O]verlapping,
    [N]egating. Spans wider than [max_width] points are scaled down. *)

module Interval = Tpdb_interval.Interval
module Relation = Tpdb_relation.Relation

val relation : ?max_width:int -> Relation.t -> string
(** All tuples of a relation over its active domain. *)

val windows : ?max_width:int -> span:Interval.t -> Window.t list -> string
(** Window rows over a given span (normally the hull of both inputs). *)

val join_picture :
  ?max_width:int -> theta:Theta.t -> Relation.t -> Relation.t -> string
(** The full picture: both inputs' tuples, then every generalized window
    of [r] w.r.t. [s] produced by the Overlap → LAWAU → LAWAN pipeline —
    the machine-generated analogue of the paper's Fig. 2. *)
