lib/relation/relation.mli: Format Schema Seq Tpdb_interval Tpdb_lineage Tuple
