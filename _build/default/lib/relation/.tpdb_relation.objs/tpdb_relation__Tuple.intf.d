lib/relation/tuple.mli: Fact Format Tpdb_interval Tpdb_lineage
