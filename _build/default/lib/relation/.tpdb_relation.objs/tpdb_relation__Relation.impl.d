lib/relation/relation.ml: Array Fact Format Hashtbl List Option Printf Schema Seq Stdlib String Tpdb_interval Tpdb_lineage Tuple Value
