lib/relation/fact.mli: Format Value
