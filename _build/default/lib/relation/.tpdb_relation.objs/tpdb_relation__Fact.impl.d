lib/relation/fact.ml: Array Format List Printf String Value
