lib/relation/tuple.ml: Fact Float Format Printf Tpdb_interval Tpdb_lineage
