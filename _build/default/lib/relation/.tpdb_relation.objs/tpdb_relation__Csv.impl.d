lib/relation/csv.ml: Fact Fun List Printf Relation Schema String Tpdb_interval Tpdb_lineage Tuple Value
