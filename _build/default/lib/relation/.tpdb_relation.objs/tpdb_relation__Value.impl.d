lib/relation/value.ml: Float Format Hashtbl Int Printf String
