module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula

type t = {
  fact : Fact.t;
  lineage : Formula.t;
  iv : Interval.t;
  p : float;
}

let make ~fact ~lineage ~iv ~p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Tuple.make: probability %g out of [0,1]" p);
  { fact; lineage; iv; p }

let fact t = t.fact
let lineage t = t.lineage
let iv t = t.iv
let p t = t.p

let valid_at t time = Interval.contains t.iv time

let compare_fact_start a b =
  let c = Fact.compare a.fact b.fact in
  if c <> 0 then c
  else
    let c = Interval.compare a.iv b.iv in
    if c <> 0 then c else Formula.compare a.lineage b.lineage

let compare_start a b = Interval.compare a.iv b.iv

let equal a b =
  Fact.equal a.fact b.fact
  && Interval.equal a.iv b.iv
  && Formula.equal (Formula.normalize a.lineage) (Formula.normalize b.lineage)
  && Float.abs (a.p -. b.p) < 1e-9

let to_string t =
  Printf.sprintf "('%s', %s, %s, %g)" (Fact.to_string t.fact)
    (Formula.to_string t.lineage)
    (Interval.to_string t.iv)
    t.p

let pp ppf t = Format.pp_print_string ppf (to_string t)
