(** Facts: the non-temporal attribute tuples of the TP data model. *)

type t = Value.t array

val of_strings : string list -> t
(** Values via {!Value.of_string_guess}. *)

val of_values : Value.t list -> t

val arity : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val get : t -> int -> Value.t
(** Raises [Invalid_argument] when out of range. *)

val concat : t -> t -> t

val nulls : int -> t
(** A fact of [n] nulls: the padding half of an outer-join output. *)

val project : int list -> t -> t

val key : int list -> t -> t
(** [key cols f] extracts the join-key columns; used for hash
    partitioning. *)

val to_string : t -> string
(** Comma-separated values. *)

val pp : Format.formatter -> t -> unit
