module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula

let to_channel oc r =
  let cols = Schema.columns (Relation.schema r) in
  output_string oc (String.concat "," (cols @ [ "lineage"; "ts"; "te"; "p" ]));
  output_char oc '\n';
  List.iter
    (fun tp ->
      let fact = Tuple.fact tp in
      let values =
        List.init (Fact.arity fact) (fun i -> Value.to_string (Fact.get fact i))
      in
      let row =
        values
        @ [
            Formula.to_string_ascii (Tuple.lineage tp);
            string_of_int (Interval.ts (Tuple.iv tp));
            string_of_int (Interval.te (Tuple.iv tp));
            Printf.sprintf "%.12g" (Tuple.p tp);
          ]
      in
      output_string oc (String.concat "," row);
      output_char oc '\n')
    (Relation.tuples r)

let save path r =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc r)

let of_lines ~name lines =
  match lines with
  | [] -> failwith "Csv.load: empty input"
  | header :: rows ->
      let fields = String.split_on_char ',' header in
      let ncols = List.length fields - 4 in
      if ncols < 0 then failwith "Csv.load: header too short";
      let columns = List.filteri (fun i _ -> i < ncols) fields in
      let schema = Schema.make ~name columns in
      let parse_row lineno line =
        let cells = String.split_on_char ',' line in
        if List.length cells <> ncols + 4 then
          failwith (Printf.sprintf "Csv.load: line %d: wrong field count" lineno);
        let values = List.filteri (fun i _ -> i < ncols) cells in
        match List.filteri (fun i _ -> i >= ncols) cells with
        | [ lineage; ts; te; p ] ->
            Tuple.make
              ~fact:(Fact.of_strings values)
              ~lineage:(Formula.of_string lineage)
              ~iv:(Interval.make (int_of_string ts) (int_of_string te))
              ~p:(float_of_string p)
        | _ -> assert false
      in
      let tuples =
        List.concat
          (List.mapi
             (fun i line -> if String.equal line "" then [] else [ parse_row (i + 2) line ])
             rows)
      in
      Relation.of_tuples schema tuples

let load ~name path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      of_lines ~name (read []))
