type t = { name : string; columns : string array }

let make ~name columns =
  let sorted = List.sort String.compare columns in
  let rec dup = function
    | a :: (b :: _ as rest) -> if String.equal a b then Some a else dup rest
    | _ -> None
  in
  (match dup sorted with
  | Some c -> invalid_arg (Printf.sprintf "Schema.make: duplicate column %S" c)
  | None -> ());
  { name; columns = Array.of_list columns }

let name s = s.name
let columns s = Array.to_list s.columns
let arity s = Array.length s.columns

let column_index s c =
  let rec loop i =
    if i >= Array.length s.columns then None
    else if String.equal s.columns.(i) c then Some i
    else loop (i + 1)
  in
  loop 0

let column_index_exn s c =
  match column_index s c with Some i -> i | None -> raise Not_found

let rename name s = { s with name }

let join a b =
  let clashes =
    List.filter (fun c -> column_index b c <> None) (columns a)
  in
  let qualify owner c =
    if List.exists (String.equal c) clashes then owner.name ^ "." ^ c else c
  in
  let cols =
    List.map (qualify a) (columns a) @ List.map (qualify b) (columns b)
  in
  (* Self-joins leave identical qualified names; disambiguate by
     occurrence index. *)
  let seen = Hashtbl.create 8 in
  let unique =
    List.map
      (fun c ->
        match Hashtbl.find_opt seen c with
        | None ->
            Hashtbl.add seen c 1;
            c
        | Some n ->
            Hashtbl.replace seen c (n + 1);
            Printf.sprintf "%s#%d" c (n + 1))
      cols
  in
  make ~name:(a.name ^ "_" ^ b.name) unique

let equal a b =
  String.equal a.name b.name
  && Array.length a.columns = Array.length b.columns
  && Array.for_all2 String.equal a.columns b.columns

let pp ppf s =
  Format.fprintf ppf "%s(%s)" s.name (String.concat ", " (columns s))
