(** Relation schemas: named, ordered fact columns.

    The temporal ([T]), lineage ([λ]) and probability ([p]) attributes are
    implicit — every TP relation has them — so a schema only describes the
    fact columns. *)

type t

val make : name:string -> string list -> t
(** Raises [Invalid_argument] on duplicate column names. *)

val name : t -> string
val columns : t -> string list
val arity : t -> int

val column_index : t -> string -> int option
val column_index_exn : t -> string -> int
(** Raises [Not_found]. *)

val rename : string -> t -> t

val join : t -> t -> t
(** Schema of a join output: columns of both inputs, left first; a column
    appearing on both sides is qualified with its relation name
    (["a.Loc"], ["b.Loc"]). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
