(** TP tuples: (fact, lineage, interval, probability). *)

type t = {
  fact : Fact.t;
  lineage : Tpdb_lineage.Formula.t;
  iv : Tpdb_interval.Interval.t;
  p : float;
}

val make :
  fact:Fact.t ->
  lineage:Tpdb_lineage.Formula.t ->
  iv:Tpdb_interval.Interval.t ->
  p:float ->
  t
(** Raises [Invalid_argument] unless [0. <= p <= 1.]. *)

val fact : t -> Fact.t
val lineage : t -> Tpdb_lineage.Formula.t
val iv : t -> Tpdb_interval.Interval.t
val p : t -> float

val valid_at : t -> Tpdb_interval.Interval.time -> bool

val compare_fact_start : t -> t -> int
(** Orders by (fact, interval, lineage): the grouping order used by the
    sweeping algorithms. *)

val compare_start : t -> t -> int
(** Orders by (interval start, interval end) only. *)

val equal : t -> t -> bool
(** Fact, interval and {e normalized} lineage equality, probability within
    1e-9. This is result-set equality as used by the tests. *)

val to_string : t -> string
(** Paper style: [('Ann, ZAK', a1, [2,8), 0.7)]. *)

val pp : Format.formatter -> t -> unit
