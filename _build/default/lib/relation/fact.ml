type t = Value.t array

let of_strings strings = Array.of_list (List.map Value.of_string_guess strings)

let of_values values = Array.of_list values

let arity = Array.length

let equal a b =
  Array.length a = Array.length b
  && (let rec loop i = i >= Array.length a || (Value.equal a.(i) b.(i) && loop (i + 1)) in
      loop 0)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let hash f = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 f

let get f i =
  if i < 0 || i >= Array.length f then
    invalid_arg (Printf.sprintf "Fact.get: index %d, arity %d" i (Array.length f))
  else f.(i)

let concat = Array.append

let nulls n = Array.make n Value.Null

let project cols f = Array.of_list (List.map (get f) cols)

let key = project

let to_string f =
  String.concat ", " (Array.to_list (Array.map Value.to_string f))

let pp ppf f = Format.pp_print_string ppf (to_string f)
