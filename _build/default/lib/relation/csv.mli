(** CSV persistence for TP relations.

    Format: a header line [col1,...,colN,lineage,ts,te,p], then one line
    per tuple. Lineages use the ASCII formula notation. Commas inside
    values are not supported (values are workload identifiers, not free
    text). *)

val save : string -> Relation.t -> unit

val load : name:string -> string -> Relation.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val to_channel : out_channel -> Relation.t -> unit
val of_lines : name:string -> string list -> Relation.t
