lib/interval/timeline.mli: Interval
