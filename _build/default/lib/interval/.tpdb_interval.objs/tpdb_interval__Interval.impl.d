lib/interval/interval.ml: Format Fun Int List Printf Scanf Seq
