lib/interval/timeline.ml: Int Interval List
