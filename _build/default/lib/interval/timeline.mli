(** Event-point computations over sets of intervals.

    LAWAN's negating windows are exactly the segments induced by the start
    and end points of the matching tuples; the reference oracle and the
    alignment baseline also segment at event points. This module holds the
    shared, order-n-log-n primitives. *)

type time = Interval.time

val endpoints : Interval.t list -> time list
(** Sorted, de-duplicated start and end points of all intervals. *)

val segments : within:Interval.t -> Interval.t list -> Interval.t list
(** [segments ~within is] partitions [within] at every endpoint of [is]
    falling strictly inside it. The result is a gapless, ordered partition
    of [within]; within each segment the set of intervals of [is] covering
    it is constant. [is] may be empty (result: [[within]]). *)

val coalesce : Interval.t list -> Interval.t list
(** Minimal sorted list of disjoint, non-adjacent intervals with the same
    union as the input (input in any order). *)

val gaps : within:Interval.t -> Interval.t list -> Interval.t list
(** Maximal sub-intervals of [within] covered by none of the given
    intervals, in temporal order. *)

val covered_duration : Interval.t list -> int
(** Total number of time points in the union of the intervals. *)

val span : Interval.t list -> Interval.t option
(** Hull of all intervals; [None] on the empty list. *)
