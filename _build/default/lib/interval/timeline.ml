type time = Interval.time

let endpoints is =
  List.concat_map (fun i -> [ Interval.ts i; Interval.te i ]) is
  |> List.sort_uniq Int.compare

let segments ~within is =
  let ts = Interval.ts within and te = Interval.te within in
  let cuts = endpoints is |> List.filter (fun t -> ts < t && t < te) in
  let rec build lo = function
    | [] -> [ Interval.make lo te ]
    | c :: rest -> Interval.make lo c :: build c rest
  in
  build ts cuts

let coalesce is =
  let sorted = List.sort Interval.compare is in
  let rec merge = function
    | [] -> []
    | [ i ] -> [ i ]
    | a :: b :: rest -> (
        match Interval.union_if_joinable a b with
        | Some u -> merge (u :: rest)
        | None -> a :: merge (b :: rest))
  in
  merge sorted

let gaps ~within is =
  let covered =
    coalesce is |> List.filter_map (fun i -> Interval.clamp ~within i)
  in
  let rec walk lo = function
    | [] ->
        (match Interval.make_opt lo (Interval.te within) with
        | Some g -> [ g ]
        | None -> [])
    | c :: rest -> (
        match Interval.make_opt lo (Interval.ts c) with
        | Some g -> g :: walk (Interval.te c) rest
        | None -> walk (Interval.te c) rest)
  in
  walk (Interval.ts within) covered

let covered_duration is =
  coalesce is |> List.fold_left (fun acc i -> acc + Interval.duration i) 0

let span = function
  | [] -> None
  | i :: rest -> Some (List.fold_left Interval.hull i rest)
