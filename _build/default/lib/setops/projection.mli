(** Duplicate-eliminating TP projection.

    Projecting fact columns can make distinct tuples coincide; under TP
    semantics the result must contain, at every time point, each projected
    fact {e once}, with the {e disjunction} of the lineages of all
    contributing tuples (a tuple is in the projection when any witness
    is). Output intervals are the maximal runs with a constant witness
    set — the same sweep that builds LAWAN's negating windows. *)

module Relation = Tpdb_relation.Relation
module Prob = Tpdb_lineage.Prob

val project :
  ?env:Prob.env -> columns:int list -> Relation.t -> Relation.t
(** [project ~columns r] keeps the given fact columns (in the given
    order). Raises [Invalid_argument] on column indexes out of range or a
    duplicate selection. *)

val project_names :
  ?env:Prob.env -> columns:string list -> Relation.t -> Relation.t
(** Same, by column name. Raises [Not_found] for unknown columns. *)

val oracle :
  ?env:Prob.env -> columns:int list -> Relation.t -> Relation.t
(** Pointwise reference implementation (for tests). *)
