module Formula = Tpdb_lineage.Formula
module Prob = Tpdb_lineage.Prob
module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Theta = Tpdb_windows.Theta
module Window = Tpdb_windows.Window
module Overlap = Tpdb_windows.Overlap
module Lawau = Tpdb_windows.Lawau
module Nj = Tpdb_joins.Nj

let check_schemas op r s =
  let cols rel = Schema.columns (Relation.schema rel) in
  if
    List.length (cols r) <> List.length (cols s)
    || not (List.for_all2 String.equal (cols r) (cols s))
  then
    invalid_arg
      (Printf.sprintf "Set_ops.%s: operand schemas differ (%s vs %s)" op
         (String.concat "," (cols r))
         (String.concat "," (cols s)))

let fact_equality r =
  let arity = Schema.arity (Relation.schema r) in
  Theta.of_atoms (List.init arity (fun i -> Theta.Cols (`Eq, i, i)))

let env_default env r s =
  match env with Some e -> e | None -> Relation.prob_env [ r; s ]

let result_schema op r s =
  Schema.rename
    (Relation.name r ^ "_" ^ op ^ "_" ^ Relation.name s)
    (Relation.schema r)

let difference ?env r s =
  check_schemas "difference" r s;
  let anti = Nj.anti ?env ~theta:(fact_equality r) r s in
  Relation.of_tuples (result_schema "minus" r s) (Relation.tuples anti)

let intersection ?env r s =
  check_schemas "intersection" r s;
  let env = env_default env r s in
  let tuples =
    Overlap.left ~theta:(fact_equality r) r s
    |> Seq.filter_map (fun w ->
           match (Window.kind w, Window.ls w) with
           | Window.Overlapping, Some ls ->
               let lineage = Formula.( &&& ) (Window.lr w) ls in
               Some
                 (Tuple.make ~fact:(Window.fr w) ~lineage ~iv:(Window.iv w)
                    ~p:(Prob.compute env lineage))
           | (Window.Overlapping | Window.Unmatched | Window.Negating), _ ->
               None)
    |> List.of_seq
  in
  Relation.of_tuples (result_schema "isect" r s) tuples

(* Union: overlapping windows contribute λr ∨ λs once; unmatched windows of
   either side contribute that side's lineage. Negating windows are not
   part of the union semantics and are never computed. *)
let union ?env r s =
  check_schemas "union" r s;
  let env = env_default env r s in
  let theta = fact_equality r in
  let stream, tracker = Overlap.left_tracking ~theta r s in
  let left = List.of_seq (Lawau.extend stream) in
  let tuple_of ~fact ~lineage ~iv =
    Tuple.make ~fact ~lineage ~iv ~p:(Prob.compute env lineage)
  in
  let left_tuples =
    List.map
      (fun w ->
        match (Window.kind w, Window.ls w) with
        | Window.Overlapping, Some ls ->
            tuple_of ~fact:(Window.fr w)
              ~lineage:(Formula.( ||| ) (Window.lr w) ls)
              ~iv:(Window.iv w)
        | (Window.Unmatched | Window.Overlapping | Window.Negating), _ ->
            tuple_of ~fact:(Window.fr w) ~lineage:(Window.lr w)
              ~iv:(Window.iv w))
      left
  in
  (* Gaps of matched s tuples: mirror the overlapping windows and sweep. *)
  let s_gaps =
    List.filter (fun w -> Window.kind w = Window.Overlapping) left
    |> List.map Window.mirror
    |> List.sort Window.compare_group_start
    |> List.to_seq |> Lawau.extend
    |> Seq.filter_map (fun w ->
           match Window.kind w with
           | Window.Unmatched ->
               Some
                 (tuple_of ~fact:(Window.fr w) ~lineage:(Window.lr w)
                    ~iv:(Window.iv w))
           | Window.Overlapping | Window.Negating -> None)
    |> List.of_seq
  in
  let s_spanning =
    Overlap.unmatched_right tracker
    |> Seq.map (fun w ->
           tuple_of ~fact:(Window.fr w) ~lineage:(Window.lr w)
             ~iv:(Window.iv w))
    |> List.of_seq
  in
  Relation.of_tuples (result_schema "union" r s)
    (left_tuples @ s_gaps @ s_spanning)

module Oracle = struct
  module Interval = Tpdb_interval.Interval
  module Timeline = Tpdb_interval.Timeline

  (* rows_at semantics per operation, glued over maximal runs like
     Tpdb_joins.Reference. *)
  let materialize ~env ~schema rows_at domain =
    let module Key = struct
      type t = Fact.t * Formula.t

      let compare (fa, la) (fb, lb) =
        let c = Fact.compare fa fb in
        if c <> 0 then c else Formula.compare la lb
    end in
    let module M = Map.Make (Key) in
    let add acc t =
      List.fold_left
        (fun acc (fact, lineage) ->
          let key = (fact, Formula.normalize lineage) in
          M.add key (t :: Option.value (M.find_opt key acc) ~default:[]) acc)
        acc (rows_at t)
    in
    let by_row =
      match domain with
      | None -> M.empty
      | Some span -> Seq.fold_left add M.empty (Interval.points span)
    in
    let tuples =
      M.fold
        (fun (fact, lineage) points acc ->
          let p = Prob.compute env lineage in
          Timeline.coalesce (List.map (fun t -> Interval.make t (t + 1)) points)
          |> List.fold_left
               (fun acc iv -> Tuple.make ~fact ~lineage ~iv ~p :: acc)
               acc)
        by_row []
    in
    Relation.of_tuples schema tuples

  let snapshot rel t =
    List.filter (fun tp -> Tuple.valid_at tp t) (Relation.tuples rel)

  let domain rels =
    Timeline.span
      (List.concat_map (fun rel -> List.map Tuple.iv (Relation.tuples rel)) rels)

  let lookup fact tuples =
    List.filter_map
      (fun tp ->
        if Fact.equal (Tuple.fact tp) fact then Some (Tuple.lineage tp)
        else None)
      tuples

  let union ?env r s =
    check_schemas "union" r s;
    let env = env_default env r s in
    let rows_at t =
      let rv = snapshot r t and sv = snapshot s t in
      let facts =
        List.sort_uniq Fact.compare (List.map Tuple.fact (rv @ sv))
      in
      List.map
        (fun fact ->
          let lineage = Formula.disj (lookup fact rv @ lookup fact sv) in
          (fact, lineage))
        facts
    in
    materialize ~env ~schema:(result_schema "union" r s) rows_at (domain [ r; s ])

  let intersection ?env r s =
    check_schemas "intersection" r s;
    let env = env_default env r s in
    let rows_at t =
      let rv = snapshot r t and sv = snapshot s t in
      List.filter_map
        (fun tp ->
          let fact = Tuple.fact tp in
          match lookup fact sv with
          | [] -> None
          | ls -> Some (fact, Formula.conj (Tuple.lineage tp :: ls)))
        rv
    in
    materialize ~env ~schema:(result_schema "isect" r s) rows_at (domain [ r; s ])

  let difference ?env r s =
    check_schemas "difference" r s;
    let env = env_default env r s in
    let rows_at t =
      let rv = snapshot r t and sv = snapshot s t in
      List.map
        (fun tp ->
          let fact = Tuple.fact tp in
          match lookup fact sv with
          | [] -> (fact, Tuple.lineage tp)
          | ls -> (fact, Formula.and_not (Tuple.lineage tp) (Formula.disj ls)))
        rv
    in
    materialize ~env ~schema:(result_schema "minus" r s) rows_at (domain [ r ])
end
