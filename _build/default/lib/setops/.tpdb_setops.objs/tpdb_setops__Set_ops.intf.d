lib/setops/set_ops.mli: Tpdb_lineage Tpdb_relation
