lib/setops/aggregate.ml: List Printf Tpdb_engine Tpdb_interval Tpdb_lineage Tpdb_relation
