lib/setops/aggregate.mli: Tpdb_interval Tpdb_lineage Tpdb_relation
