lib/setops/set_ops.ml: List Map Option Printf Seq String Tpdb_interval Tpdb_joins Tpdb_lineage Tpdb_relation Tpdb_windows
