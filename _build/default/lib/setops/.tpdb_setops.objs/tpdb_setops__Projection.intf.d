lib/setops/projection.mli: Tpdb_lineage Tpdb_relation
