lib/setops/projection.ml: List Map Option Printf Seq Tpdb_engine Tpdb_interval Tpdb_lineage Tpdb_relation
