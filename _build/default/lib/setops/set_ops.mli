(** Temporal-probabilistic set operations (the authors' prior work,
    "Supporting set operations in temporal-probabilistic databases",
    ICDE 2018 — reference [1] of the paper), rebuilt on generalized
    lineage-aware temporal windows.

    Set operations are TP joins with θ = equality on {e all} fact columns
    and per-operation lineage concatenation: at every time point and for
    every fact [F],

    - [union]: [λr ∨ λs] where both operands contain [F], the single
      operand's lineage elsewhere;
    - [intersection]: [λr ∧ λs] where both contain [F];
    - [difference]: [λr ∧ ¬λs] where both contain [F], [λr] where only
      [r] does (exactly the anti join of Table II under fact equality).

    Operands must have schemas with equal column lists; the result uses
    the left schema. *)

module Relation = Tpdb_relation.Relation
module Prob = Tpdb_lineage.Prob

val union : ?env:Prob.env -> Relation.t -> Relation.t -> Relation.t
val intersection : ?env:Prob.env -> Relation.t -> Relation.t -> Relation.t
val difference : ?env:Prob.env -> Relation.t -> Relation.t -> Relation.t

(** Pointwise oracle implementations (quadratic; for tests). *)
module Oracle : sig
  val union : ?env:Prob.env -> Relation.t -> Relation.t -> Relation.t
  val intersection : ?env:Prob.env -> Relation.t -> Relation.t -> Relation.t
  val difference : ?env:Prob.env -> Relation.t -> Relation.t -> Relation.t
end
