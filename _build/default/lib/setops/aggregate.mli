(** Sequenced aggregation over TP relations, in expectation.

    Sequenced (per-time-point) aggregation is the remaining operator of
    the temporal-alignment framework (Dignös et al., TODS 2016) that the
    paper's window machinery also covers: group tuples by key, sweep the
    maximal segments with a constant witness set — the same sweep as
    LAWAN — and report, per segment, the {e expected value} of the
    aggregate under the tuple probabilities:

    - [Count]: E[#valid tuples] = Σᵢ P(λᵢ) (exact by linearity of
      expectation, no independence needed);
    - [Sum col]: E[Σ values] = Σᵢ P(λᵢ)·vᵢ over numeric column [col];
    - [Avg col]: the ratio of expectations E[Σ]/E[#] (not E[Σ/#], which
      has no closed form under independent tuple existence — documented
      choice, standard in probabilistic DBMSs).

    The result is a deterministic temporal relation: facts are the group
    key plus one numeric column holding the expectation; lineage is [⊤]
    and probability 1. Time points where no group tuple is valid produce
    no output. *)

module Relation = Tpdb_relation.Relation
module Prob = Tpdb_lineage.Prob

type spec =
  | Count
  | Sum of int  (** fact column holding numeric values *)
  | Avg of int

val output_schema :
  group_by:int list -> spec -> Tpdb_relation.Schema.t -> Tpdb_relation.Schema.t
(** Group columns plus the value column; raises [Invalid_argument] on an
    out-of-range group column. *)

val sequenced :
  ?env:Prob.env -> group_by:int list -> spec -> Relation.t -> Relation.t
(** Raises [Invalid_argument] on out-of-range columns or when [Sum]/[Avg]
    meets a non-numeric value. Output column name: ["exp_count"],
    ["exp_sum"] or ["exp_avg"]. *)

val expected_at :
  ?env:Prob.env ->
  group_by:int list ->
  spec ->
  Relation.t ->
  Tpdb_relation.Fact.t ->
  Tpdb_interval.Interval.time ->
  float option
(** Pointwise oracle: the expectation for one group key at one time
    point; [None] when no tuple of the group is valid. *)
