(** NJ — the paper's operators for TP joins with negation, assembled from
    generalized lineage-aware temporal windows (paper Table II):

    - anti join [r ▷ s]: WU(r;s,θ) ∪ WN(r;s,θ)
    - left outer [r ⟕ s]: WO ∪ WU(r;s,θ) ∪ WN(r;s,θ)
    - right outer [r ⟖ s]: WO ∪ WU(s;r,θ) ∪ WN(s;r,θ)
    - full outer [r ⟗ s]: all five sets, with WO computed once
    - inner join [r ⋈ s]: WO only (for completeness)

    The pipeline is {!Tpdb_windows.Overlap.left} → {!Tpdb_windows.Lawau} →
    {!Tpdb_windows.Lawan} → output formation ({!Concat}); the full outer
    join additionally mirrors the overlapping windows to sweep the [s]
    side without executing the join a second time.

    Inputs are assumed duplicate-free ({!Tpdb_relation.Relation.is_duplicate_free}),
    as the paper assumes of TP relations. [env] supplies the marginal
    probability of every base variable; it defaults to the variables of
    the two inputs and must be passed explicitly when joining derived
    relations. *)

module Relation = Tpdb_relation.Relation
module Prob = Tpdb_lineage.Prob
module Theta = Tpdb_windows.Theta
module Window = Tpdb_windows.Window
module Overlap = Tpdb_windows.Overlap

type options = {
  algorithm : Overlap.algorithm;  (** join algorithm for the WUO stage *)
  schedule : [ `Heap | `Scan ];  (** LAWAN end-point scheduling *)
}

val default_options : options
(** [{ algorithm = `Hash; schedule = `Heap }]. *)

val windows_wuo :
  ?options:options -> theta:Theta.t -> Relation.t -> Relation.t -> Window.t Seq.t
(** Overlapping + unmatched windows of [r] w.r.t. [s] (the paper's WUO):
    {!Overlap.left} extended by LAWAU. Benched as Fig. 5. *)

val windows_wuon :
  ?options:options -> theta:Theta.t -> Relation.t -> Relation.t -> Window.t Seq.t
(** WUO extended with negating windows by LAWAN. Benched as Fig. 6. *)

val inner :
  ?options:options -> ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t

val anti :
  ?options:options -> ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t

val left_outer :
  ?options:options -> ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t

val right_outer :
  ?options:options -> ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t

val full_outer :
  ?options:options -> ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t

type join_kind = Inner | Anti | Left | Right | Full

val run :
  ?options:options ->
  ?env:Prob.env ->
  kind:join_kind ->
  theta:Theta.t ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** Dispatch by operator kind; used by the query planner. *)
