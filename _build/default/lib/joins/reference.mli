(** Timepoint-at-a-time reference implementation of TP joins with
    negation.

    Independent of the window machinery: for every time point it computes
    the snapshot join under the TP semantics of §I (match rows with
    [λr ∧ λs], negation rows with [λr ∧ ¬(∨ λs)], unmatched rows with
    [λr]), then glues maximal runs of identical (fact, normalized lineage)
    into output tuples. Quadratic in the size of the active domain — a
    test oracle, not an operator. *)

module Relation = Tpdb_relation.Relation
module Prob = Tpdb_lineage.Prob
module Theta = Tpdb_windows.Theta

val inner :
  ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t

val anti :
  ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t

val left_outer :
  ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t

val right_outer :
  ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t

val full_outer :
  ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t
