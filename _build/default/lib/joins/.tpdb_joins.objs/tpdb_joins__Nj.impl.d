lib/joins/nj.ml: Concat List Seq Tpdb_lineage Tpdb_relation Tpdb_windows
