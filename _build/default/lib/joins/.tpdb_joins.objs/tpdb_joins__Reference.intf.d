lib/joins/reference.mli: Tpdb_lineage Tpdb_relation Tpdb_windows
