lib/joins/concat.mli: Tpdb_lineage Tpdb_relation Tpdb_windows
