lib/joins/concat.ml: Tpdb_lineage Tpdb_relation Tpdb_windows
