lib/joins/reference.ml: List Map Option Seq Tpdb_interval Tpdb_lineage Tpdb_relation Tpdb_windows
