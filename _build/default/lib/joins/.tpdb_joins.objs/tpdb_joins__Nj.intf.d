lib/joins/nj.mli: Seq Tpdb_lineage Tpdb_relation Tpdb_windows
