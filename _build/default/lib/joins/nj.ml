module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Prob = Tpdb_lineage.Prob
module Theta = Tpdb_windows.Theta
module Window = Tpdb_windows.Window
module Overlap = Tpdb_windows.Overlap
module Lawau = Tpdb_windows.Lawau
module Lawan = Tpdb_windows.Lawan

type options = {
  algorithm : Overlap.algorithm;
  schedule : [ `Heap | `Scan ];
}

let default_options = { algorithm = `Hash; schedule = `Heap }

let windows_wuo ?(options = default_options) ~theta r s =
  Lawau.extend (Overlap.left ~algorithm:options.algorithm ~theta r s)

let windows_wuon ?(options = default_options) ~theta r s =
  Lawan.extend ~schedule:options.schedule (windows_wuo ~options ~theta r s)

let env_default env r s =
  match env with Some e -> e | None -> Relation.prob_env [ r; s ]

let inner ?(options = default_options) ?env ~theta r s =
  let env = env_default env r s in
  let pad = Schema.arity (Relation.schema s) in
  let tuples =
    Overlap.left ~algorithm:options.algorithm ~theta r s
    |> Seq.filter (fun w -> Window.kind w = Window.Overlapping)
    |> Seq.map (Concat.tuple_of_window ~env ~side:Concat.Left ~pad)
    |> List.of_seq
  in
  Relation.of_tuples (Schema.join (Relation.schema r) (Relation.schema s)) tuples

let anti ?options ?env ~theta r s =
  let env = env_default env r s in
  let tuples =
    windows_wuon ?options ~theta r s
    |> Seq.filter (fun w -> Window.kind w <> Window.Overlapping)
    |> Seq.map (Concat.tuple_of_window_no_fs ~env)
    |> List.of_seq
  in
  let schema =
    Schema.rename
      (Relation.name r ^ "_anti_" ^ Relation.name s)
      (Relation.schema r)
  in
  Relation.of_tuples schema tuples

let left_outer ?options ?env ~theta r s =
  let env = env_default env r s in
  let pad = Schema.arity (Relation.schema s) in
  let tuples =
    windows_wuon ?options ~theta r s
    |> Seq.map (Concat.tuple_of_window ~env ~side:Concat.Left ~pad)
    |> List.of_seq
  in
  Relation.of_tuples (Schema.join (Relation.schema r) (Relation.schema s)) tuples

(* The right-hand sweep of right/full outer joins: windows grouped by the s
   tuple. Overlapping windows arrive mirrored, so [Left]-side formation
   applies after a second mirror; unmatched and negating windows pad on the
   left. *)
let right_side_tuples ?(options = default_options) ~env ~pad_left windows =
  windows
  |> Seq.filter (fun w -> Window.kind w = Window.Overlapping)
  |> Seq.map Window.mirror
  |> List.of_seq
  |> List.sort Window.compare_group_start
  |> List.to_seq |> Lawau.extend
  |> Lawan.extend ~schedule:options.schedule
  |> Seq.filter_map (fun w ->
         match Window.kind w with
         | Window.Overlapping -> None
         | Window.Unmatched | Window.Negating ->
             Some (Concat.tuple_of_window ~env ~side:Concat.Right ~pad:pad_left w))

let right_outer ?(options = default_options) ?env ~theta r s =
  let env = env_default env r s in
  let pad_r = Schema.arity (Relation.schema r) in
  let pad_s = Schema.arity (Relation.schema s) in
  (* One pass of the conventional join, tracking never-matched s tuples. *)
  let stream, tracker = Overlap.left_tracking ~algorithm:options.algorithm ~theta r s in
  let wo = List.of_seq (Seq.filter (fun w -> Window.kind w = Window.Overlapping) stream) in
  let pairs =
    List.to_seq wo
    |> Seq.map (Concat.tuple_of_window ~env ~side:Concat.Left ~pad:pad_s)
  in
  let gap_windows = right_side_tuples ~options ~env ~pad_left:pad_r (List.to_seq wo) in
  let spanning =
    Overlap.unmatched_right tracker
    |> Seq.map (Concat.tuple_of_window ~env ~side:Concat.Right ~pad:pad_r)
  in
  let tuples = List.of_seq (Seq.append pairs (Seq.append gap_windows spanning)) in
  Relation.of_tuples (Schema.join (Relation.schema r) (Relation.schema s)) tuples

let full_outer ?(options = default_options) ?env ~theta r s =
  let env = env_default env r s in
  let pad_r = Schema.arity (Relation.schema r) in
  let pad_s = Schema.arity (Relation.schema s) in
  let stream, tracker = Overlap.left_tracking ~algorithm:options.algorithm ~theta r s in
  (* Materialize the conventional join once; both sweeps share it. *)
  let wuo = List.of_seq stream in
  let left_side =
    List.to_seq wuo |> Lawau.extend
    |> Lawan.extend ~schedule:options.schedule
    |> Seq.map (Concat.tuple_of_window ~env ~side:Concat.Left ~pad:pad_s)
  in
  let right_gaps = right_side_tuples ~options ~env ~pad_left:pad_r (List.to_seq wuo) in
  let spanning =
    Overlap.unmatched_right tracker
    |> Seq.map (Concat.tuple_of_window ~env ~side:Concat.Right ~pad:pad_r)
  in
  let tuples = List.of_seq (Seq.append left_side (Seq.append right_gaps spanning)) in
  Relation.of_tuples (Schema.join (Relation.schema r) (Relation.schema s)) tuples

type join_kind = Inner | Anti | Left | Right | Full

let run ?options ?env ~kind ~theta r s =
  let op =
    match kind with
    | Inner -> inner
    | Anti -> anti
    | Left -> left_outer
    | Right -> right_outer
    | Full -> full_outer
  in
  op ?options ?env ~theta r s
