type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

(* SplitMix64 finalizer (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_seed t)

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let in_range t lo hi =
  if lo >= hi then invalid_arg "Rng.in_range: empty range";
  lo + int t (hi - lo)

let float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let uniform_float t lo hi = lo +. ((hi -. lo) *. float t)

let bool t p = float t < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let zipf =
  (* cache of cumulative weights per (s, n) — generators draw many ranks
     from the same distribution *)
  let cache : (float * int, float array) Hashtbl.t = Hashtbl.create 8 in
  fun t ~s ~n ->
    if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
    if s < 0.0 then invalid_arg "Rng.zipf: negative exponent";
    let cumulative =
      match Hashtbl.find_opt cache (s, n) with
      | Some c -> c
      | None ->
          let weights =
            Array.init n (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) s)
          in
          let c = Array.make n 0.0 in
          let total = ref 0.0 in
          Array.iteri
            (fun i w ->
              total := !total +. w;
              c.(i) <- !total)
            weights;
          Array.iteri (fun i x -> c.(i) <- x /. !total) c;
          Hashtbl.replace cache (s, n) c;
          c
    in
    let u = float t in
    let rec bisect lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cumulative.(mid) < u then bisect (mid + 1) hi else bisect lo mid
    in
    bisect 0 (n - 1)

let sample t k arr =
  let n = Array.length arr in
  if k > n then invalid_arg "Rng.sample: k larger than population";
  (* Partial Fisher–Yates: only the first k positions are fixed up. *)
  let copy = Array.copy arr in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k
