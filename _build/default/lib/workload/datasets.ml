module Interval = Tpdb_interval.Interval
module Relation = Tpdb_relation.Relation

type chain_params = {
  mean_duration : int;
  gap_probability : float;
  p_low : float;
  p_high : float;
  horizon : int;
}

let webkit_chain =
  { mean_duration = 60; gap_probability = 0.1; p_low = 0.5; p_high = 1.0; horizon = 2000 }

let meteo_chain =
  { mean_duration = 40; gap_probability = 0.25; p_low = 0.6; p_high = 1.0; horizon = 1500 }

(* A chain of [count] mostly-consecutive prediction intervals for one
   entity, duplicate-free by construction. *)
let chain rng params ~count =
  let duration () = 1 + Rng.int rng (2 * params.mean_duration) in
  let start = Rng.int rng (max 1 (params.horizon - (count * params.mean_duration))) in
  let rec build t k acc =
    if k = 0 then List.rev acc
    else
      let t = if Rng.bool rng params.gap_probability then t + duration () else t in
      let te = t + duration () in
      let p = Rng.uniform_float rng params.p_low params.p_high in
      build te (k - 1) ((Interval.make t te, p) :: acc)
  in
  build start count []

(* Distributes [size] tuples over entities of ~[per_entity] chain steps,
   then materializes the rows. [fact_of entity rev] names the columns. *)
let rows_of_entities rng ~size ~per_entity ~chain_params ~fact_of =
  let rec collect entity made acc =
    if made >= size then List.rev acc
    else
      let count = min (size - made) (1 + Rng.int rng (2 * per_entity)) in
      let links = chain rng chain_params ~count in
      let rows =
        List.mapi (fun rev (iv, p) -> (fact_of entity rev, iv, p)) links
      in
      collect (entity + 1) (made + count) (List.rev_append rows acc)
  in
  collect 0 0 []

module Webkit = struct
  type params = { tuples_per_file : int; chain : chain_params }

  let default = { tuples_per_file = 8; chain = webkit_chain }

  let relation ?(params = default) ~name ~seed size =
    let rng = Rng.create seed in
    let fact_of file rev =
      [ Printf.sprintf "file%d" file; Printf.sprintf "r%d" rev ]
    in
    let rows =
      rows_of_entities rng ~size ~per_entity:params.tuples_per_file
        ~chain_params:params.chain ~fact_of
    in
    Relation.of_rows ~name ~columns:[ "File"; "Rev" ] ~tag:name rows

  let pair ?(params = default) ~seed size =
    ( relation ~params ~name:"r" ~seed size,
      relation ~params ~name:"s" ~seed:(seed + 1) size )
end

module Meteo = struct
  type params = { stations : int; metrics : int; chain : chain_params }

  let default = { stations = 400; metrics = 6; chain = meteo_chain }

  let metric_names =
    [| "temp"; "humidity"; "pressure"; "wind"; "precip"; "sunshine"; "snow"; "ozone" |]

  let relation ?(params = default) ~name ~seed size =
    let rng = Rng.create seed in
    let metric_of entity =
      metric_names.(entity mod min params.metrics (Array.length metric_names))
    in
    let station_of entity = (entity / params.metrics) mod params.stations in
    let fact_of entity _rev =
      [ Printf.sprintf "st%d" (station_of entity); metric_of entity ]
    in
    (* Station×metric entities contribute longer chains than Webkit files:
       stations keep reporting, so per-entity tuple counts are higher and
       the distinct-value count stays far below the input size. *)
    let per_entity = max 4 (size / (params.stations * params.metrics)) in
    let rows =
      rows_of_entities rng ~size ~per_entity ~chain_params:params.chain
        ~fact_of
    in
    Relation.of_rows ~name ~columns:[ "Station"; "Metric" ] ~tag:name rows

  let pair ?(params = default) ~seed size =
    ( relation ~params ~name:"r" ~seed size,
      relation ~params ~name:"s" ~seed:(seed + 1) size )
end

module Uniform = struct
  let relation ?(skew = 0.0) ~name ~seed ~keys ~horizon ~mean_duration size =
    let rng = Rng.create seed in
    (* Per-key cursors keep each fact's intervals disjoint. *)
    let cursors = Array.make keys 0 in
    let pick_key () =
      if skew = 0.0 then Rng.int rng keys else Rng.zipf rng ~s:skew ~n:keys
    in
    let rows =
      List.init size (fun _ ->
          let key = pick_key () in
          let start = max cursors.(key) (Rng.int rng horizon) in
          let te = start + 1 + Rng.int rng (2 * mean_duration) in
          cursors.(key) <- te;
          ( [ Printf.sprintf "k%d" key ],
            Interval.make start te,
            Rng.uniform_float rng 0.5 1.0 ))
    in
    Relation.of_rows ~name ~columns:[ "Key" ] ~tag:name rows
end

let subset ~seed ~k r =
  let rng = Rng.create seed in
  let tuples = Relation.to_array r in
  if k > Array.length tuples then invalid_arg "Datasets.subset: k too large";
  let sampled = Rng.sample rng k tuples in
  Relation.of_tuples (Relation.schema r) (Array.to_list sampled)
