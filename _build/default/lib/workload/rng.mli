(** Deterministic pseudo-random numbers (SplitMix64).

    All generators take explicit state so that every dataset, subset and
    shuffle in the benchmarks is reproducible from a seed, independent of
    the standard library's global RNG. *)

type t

val create : int -> t
(** Seeded generator. Equal seeds yield equal streams. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val int64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [lo, hi) ([lo < hi]). *)

val float : t -> float
(** Uniform in [0, 1). *)

val uniform_float : t -> float -> float -> float
(** Uniform in [lo, hi). *)

val bool : t -> float -> bool
(** True with the given probability. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val zipf : t -> s:float -> n:int -> int
(** A rank in [0, n) drawn from a (truncated) Zipf distribution with
    exponent [s] ([s = 0.] is uniform); rank 0 is the most likely. Uses
    inverse-CDF sampling over precomputed weights for small [n]; raises
    [Invalid_argument] if [n <= 0] or [s < 0]. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] draws [k] elements uniformly without replacement
    (the paper's uniform subset creation). Raises [Invalid_argument] if
    [k > Array.length arr]. *)
