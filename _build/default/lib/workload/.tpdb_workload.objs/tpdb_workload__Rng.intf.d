lib/workload/rng.mli:
