lib/workload/rng.ml: Array Float Hashtbl Int64
