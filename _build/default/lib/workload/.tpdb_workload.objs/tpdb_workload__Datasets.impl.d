lib/workload/datasets.ml: Array List Printf Rng Tpdb_interval Tpdb_relation
