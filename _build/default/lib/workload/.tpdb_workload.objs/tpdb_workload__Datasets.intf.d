lib/workload/datasets.mli: Tpdb_relation
