(** Synthetic stand-ins for the paper's evaluation datasets.

    The real Webkit and Meteo Swiss datasets are not redistributable; these
    generators reproduce the three properties the experiments depend on
    (see DESIGN.md §4): input cardinality, join-key selectivity and
    interval overlap structure.

    - {b Webkit}: predictions that a file remains unchanged over an
      interval. Facts are (File, Rev); each file contributes a chain of
      mostly-consecutive revision intervals; the number of distinct files
      grows with the dataset, so the equality condition on File is {e
      selective}.
    - {b Meteo}: predictions that a metric at a station stays within 0.1
      of its value. Facts are (Station, Metric); there are only a handful
      of distinct metrics, so the equality condition on Metric is {e
      unselective} — the property the paper blames for Meteo's higher
      runtimes.

    Join pairs [(r, s)] are drawn over a shared key universe with
    different seeds, mirroring the paper's self-combination of each
    dataset ("tuples referring to the same file", "measurements on the
    same metric but in different stations"). Scaling sweeps use
    {!subset}, the paper's uniform subset creation. *)

module Relation = Tpdb_relation.Relation

(** Join conditions for the datasets (this library does not depend on the
    windows layer): Webkit joins on column 0 = column 0 (File), Meteo on
    column 1 = column 1 (Metric). *)

type chain_params = {
  mean_duration : int;  (** mean interval length of one prediction *)
  gap_probability : float;  (** chance of a hole between two predictions *)
  p_low : float;  (** prediction-probability range *)
  p_high : float;
  horizon : int;  (** timeline [0, horizon) the chains start within *)
}

val webkit_chain : chain_params
val meteo_chain : chain_params

module Webkit : sig
  type params = {
    tuples_per_file : int;  (** mean revisions per file; default 8 *)
    chain : chain_params;
  }

  val default : params

  val relation :
    ?params:params -> name:string -> seed:int -> int -> Relation.t
  (** [relation ~name ~seed size]. *)

  val pair : ?params:params -> seed:int -> int -> Relation.t * Relation.t
  (** [size] tuples on each side, shared file universe. Join on
      File = File (columns 0 = 0). *)
end

module Meteo : sig
  type params = {
    stations : int;  (** default 400 *)
    metrics : int;  (** distinct metric names; default 6 *)
    chain : chain_params;
  }

  val default : params

  val relation :
    ?params:params -> name:string -> seed:int -> int -> Relation.t
  (** [relation ~name ~seed size]. *)

  val pair : ?params:params -> seed:int -> int -> Relation.t * Relation.t
  (** Join on Metric = Metric (columns 1 = 1). *)
end

module Uniform : sig
  (** A generic generator for ablation studies: [keys] distinct join
      values, intervals uniform in [0, horizon). *)

  val relation :
    ?skew:float ->
    name:string ->
    seed:int ->
    keys:int ->
    horizon:int ->
    mean_duration:int ->
    int ->
    Relation.t
  (** [relation ~name ~seed ~keys ~horizon ~mean_duration size]: single
      fact column [Key]; join on 0 = 0. [skew] is the Zipf exponent over
      the key ranks (default 0 = uniform). *)
end

val subset : seed:int -> k:int -> Relation.t -> Relation.t
(** Uniform sample of [k] tuples (without replacement), preserving
    lineage variables and probabilities. Raises [Invalid_argument] if [k]
    exceeds the cardinality. *)
