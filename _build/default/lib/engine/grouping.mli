(** Streaming grouping of sorted sequences.

    LAWAU and LAWAN both consume a window stream sorted by group (the
    spanning tuple of [r]) and process one group at a time. [runs] detects
    maximal runs of adjacent equal-key elements without looking ahead more
    than one element, so the pipeline stays streaming at group
    granularity. *)

val runs : same:('a -> 'a -> bool) -> 'a Seq.t -> 'a list Seq.t
(** Maximal runs of consecutive elements pairwise related by [same]
    (compared to the run's first element). Elements keep their order;
    concatenating the output yields the input. *)

val map_runs :
  same:('a -> 'a -> bool) -> ('a list -> 'b list) -> 'a Seq.t -> 'b Seq.t
(** [map_runs ~same f] rewrites every run through [f] and re-flattens. *)
