(** Array-based binary min-heap.

    LAWAN keeps the ending points of the valid [s] tuples of the current
    group in a priority queue to determine the ending point of each
    sweeping window (paper §III-C). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
val push : 'a t -> 'a -> unit
val peek : 'a t -> 'a option
val pop : 'a t -> 'a option
val is_empty : 'a t -> bool
val size : 'a t -> int
val clear : 'a t -> unit
