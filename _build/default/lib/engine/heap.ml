type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable items : 'a array;
  mutable size : int;
}

let create ~cmp () = { cmp; items = [||]; size = 0 }

let swap h i j =
  let tmp = h.items.(i) in
  h.items.(i) <- h.items.(j);
  h.items.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.items.(i) h.items.(parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && h.cmp h.items.(left) h.items.(!smallest) < 0 then
    smallest := left;
  if right < h.size && h.cmp h.items.(right) h.items.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  if h.size = Array.length h.items then begin
    let capacity = max 8 (2 * h.size) in
    let grown = Array.make capacity x in
    Array.blit h.items 0 grown 0 h.size;
    h.items <- grown
  end;
  h.items.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.items.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.items.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.items.(0) <- h.items.(h.size);
      sift_down h 0
    end;
    Some top
  end

let is_empty h = h.size = 0
let size h = h.size
let clear h = h.size <- 0
