module Interval = Tpdb_interval.Interval

(* Implicit binary tree over [items] sorted by start: the root of the
   subtree for [lo, hi) is the middle index, so the array itself is the
   tree. [max_end.(i)] is the maximum end point in i's subtree, which
   prunes whole subtrees during queries. *)
type 'a t = {
  items : 'a array;
  spans : Interval.t array;
  max_end : int array;
  key : 'a -> Interval.t;
}

let size t = Array.length t.items

let build key items =
  let items =
    Array.of_list
      (List.stable_sort
         (fun a b -> Interval.compare (key a) (key b))
         items)
  in
  let spans = Array.map key items in
  let n = Array.length items in
  let max_end = Array.make n min_int in
  let rec annotate lo hi =
    if lo >= hi then min_int
    else begin
      let mid = (lo + hi) / 2 in
      let here = Interval.te spans.(mid) in
      let left = annotate lo mid in
      let right = annotate (mid + 1) hi in
      let m = max here (max left right) in
      max_end.(mid) <- m;
      m
    end
  in
  ignore (annotate 0 n);
  { items; spans; max_end; key }

let overlapping t query =
  let n = Array.length t.items in
  let acc = ref [] in
  (* Visit right-to-left so the accumulated list ends up start-ordered. *)
  let rec visit lo hi =
    if lo < hi then begin
      let mid = (lo + hi) / 2 in
      (* Prune: nothing in this subtree ends after the query starts. *)
      if t.max_end.(mid) > Interval.ts query then begin
        (* Right subtree only matters when its starts can precede the
           query's end. *)
        if mid + 1 < hi && Interval.ts t.spans.(mid + 1) < Interval.te query
        then visit (mid + 1) hi;
        if Interval.overlaps t.spans.(mid) query then
          acc := t.items.(mid) :: !acc;
        visit lo mid
      end
    end
  in
  visit 0 n;
  !acc

let stabbing t time = overlapping t (Interval.make time (time + 1))

let fold f init t = Array.fold_left f init t.items
