type 'a t = {
  mutable state : 'a Seq.t;
  reset : unit -> 'a Seq.t;
  on_close : unit -> unit;
}

let open_ op = op.state <- op.reset ()

let next op =
  match op.state () with
  | Seq.Nil -> None
  | Seq.Cons (x, rest) ->
      op.state <- rest;
      Some x

let close op = op.on_close ()

let of_seq thunk = { state = Seq.empty; reset = thunk; on_close = ignore }

let of_list xs = of_seq (fun () -> List.to_seq xs)

let to_seq op =
  open_ op;
  let rec loop () =
    match next op with
    | Some x -> Seq.Cons (x, loop)
    | None ->
        close op;
        Seq.Nil
  in
  loop

let to_list op = List.of_seq (to_seq op)

let lift f child =
  {
    state = Seq.empty;
    reset =
      (fun () ->
        open_ child;
        f (fun () ->
            let rec drain () =
              match child.state () with
              | Seq.Nil -> Seq.Nil
              | Seq.Cons (x, rest) ->
                  child.state <- rest;
                  Seq.Cons (x, drain)
            in
            drain));
    on_close = (fun () -> close child);
  }

let map f child = lift (fun pull -> Seq.map f (pull ())) child

let filter keep child = lift (fun pull -> Seq.filter keep (pull ())) child

let concat_map f child =
  lift (fun pull -> Seq.concat_map (fun x -> List.to_seq (f x)) (pull ())) child

let sort cmp child =
  lift
    (fun pull ->
      let materialized = List.of_seq (pull ()) in
      List.to_seq (List.stable_sort cmp materialized))
    child

let counted child =
  let count = ref 0 in
  let op =
    lift
      (fun pull ->
        Seq.map
          (fun x ->
            incr count;
            x)
          (pull ()))
      child
  in
  (op, fun () -> !count)
