(** The generic interval sweep underlying LAWAN and the TP projection
    operator.

    Given items carrying an interval and a payload, the sweep visits the
    start and end points in temporal order and emits one segment per
    maximal run of time points whose set of covering items is constant and
    non-empty. Payloads are listed in arrival (start) order — the order
    the paper's examples use for lineage disjunctions like [b3 ∨ b2].

    [`Heap] schedules upcoming ending points with a priority queue (the
    paper's choice); [`Scan] finds the minimum by rescanning the active
    list (ablation baseline). Both produce identical output. *)

module Interval = Tpdb_interval.Interval

val constant_segments :
  ?schedule:[ `Heap | `Scan ] ->
  (Interval.t * 'a) list ->
  (Interval.t * 'a list) list
(** Input must be sorted by interval start. Output segments are disjoint,
    in temporal order, and their union is exactly the union of the input
    intervals. *)
