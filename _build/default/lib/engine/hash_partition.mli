(** Hash partitioning on join keys.

    The build side of the overlap join: [s] tuples are bucketed by their
    equi-join key so that each [r] tuple probes only θ-compatible
    candidates. With no equi-key the single-bucket degenerate case gives
    the nested-loop behaviour the paper attributes to TA's plans. *)

type ('k, 'a) t

val build :
  key:('a -> 'k) ->
  hash:('k -> int) ->
  equal:('k -> 'k -> bool) ->
  'a list ->
  ('k, 'a) t
(** Bucket order within a key follows input order. *)

val probe : ('k, 'a) t -> 'k -> 'a list
(** Empty list for absent keys. *)

val buckets : ('k, 'a) t -> ('k * 'a list) list
val size : ('k, 'a) t -> int
(** Number of distinct keys. *)

val map_buckets : ('a list -> 'a list) -> ('k, 'a) t -> unit
(** In-place rewrite of every bucket (e.g. sorting by interval start). *)
