lib/engine/grouping.mli: Seq
