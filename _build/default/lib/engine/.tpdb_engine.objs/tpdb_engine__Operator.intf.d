lib/engine/operator.mli: Seq
