lib/engine/sweep.ml: Array Heap Int List Tpdb_interval
