lib/engine/operator.ml: List Seq
