lib/engine/interval_tree.mli: Tpdb_interval
