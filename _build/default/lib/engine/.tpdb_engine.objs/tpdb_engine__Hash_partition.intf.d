lib/engine/hash_partition.mli:
