lib/engine/sweep.mli: Tpdb_interval
