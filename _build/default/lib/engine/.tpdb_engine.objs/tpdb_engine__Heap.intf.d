lib/engine/heap.mli:
