lib/engine/interval_tree.ml: Array List Tpdb_interval
