lib/engine/hash_partition.ml: Hashtbl List
