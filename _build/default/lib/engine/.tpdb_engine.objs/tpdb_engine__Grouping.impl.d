lib/engine/grouping.ml: List Seq
