type ('k, 'a) t = {
  probe_fn : 'k -> 'a list;
  buckets_fn : unit -> ('k * 'a list) list;
  size_fn : unit -> int;
  map_fn : ('a list -> 'a list) -> unit;
}

let build (type k) ~key ~(hash : k -> int) ~(equal : k -> k -> bool) items =
  let module H = Hashtbl.Make (struct
    type t = k

    let hash = hash
    let equal = equal
  end) in
  let table : 'a list ref H.t = H.create (max 16 (List.length items)) in
  List.iter
    (fun item ->
      let k = key item in
      match H.find_opt table k with
      | Some bucket -> bucket := item :: !bucket
      | None -> H.add table k (ref [ item ]))
    items;
  H.iter (fun _ bucket -> bucket := List.rev !bucket) table;
  {
    probe_fn =
      (fun k -> match H.find_opt table k with Some b -> !b | None -> []);
    buckets_fn =
      (fun () -> H.fold (fun k b acc -> (k, !b) :: acc) table []);
    size_fn = (fun () -> H.length table);
    map_fn = (fun f -> H.iter (fun _ b -> b := f !b) table);
  }

let probe t k = t.probe_fn k
let buckets t = t.buckets_fn ()
let size t = t.size_fn ()
let map_buckets f t = t.map_fn f
