let runs ~same seq =
  let rec start seq () =
    match seq () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, rest) -> collect x [ x ] rest ()
  and collect anchor acc seq () =
    match seq () with
    | Seq.Nil -> Seq.Cons (List.rev acc, Seq.empty)
    | Seq.Cons (x, rest) ->
        if same anchor x then collect anchor (x :: acc) rest ()
        else Seq.Cons (List.rev acc, start (fun () -> Seq.Cons (x, rest)))
  in
  start seq

let map_runs ~same f seq =
  Seq.concat_map (fun run -> List.to_seq (f run)) (runs ~same seq)
