(** Static interval tree: overlap and stabbing queries in
    O(log n + answers).

    Built once per join from the build side (the paper's evaluation runs
    index-free, but a DBMS substrate ships one; the [`Index] overlap-join
    algorithm and its ablation use this). Implemented as an implicit
    balanced tree over the items sorted by interval start, augmented with
    the maximum end point per subtree. *)

module Interval = Tpdb_interval.Interval

type 'a t

val build : ('a -> Interval.t) -> 'a list -> 'a t

val size : 'a t -> int

val overlapping : 'a t -> Interval.t -> 'a list
(** All items whose interval overlaps the query (shares a time point),
    in ascending start order. *)

val stabbing : 'a t -> Interval.time -> 'a list
(** All items valid at the time point, in ascending start order. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Over all items, in ascending start order. *)
