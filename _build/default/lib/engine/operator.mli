(** Volcano-style (open/next/close) operators.

    This is the executor abstraction the paper's PostgreSQL integration
    relies on: every stage pulls tuples from its child one at a time, so a
    plan runs in pipelined fashion without materializing intermediate
    results (except inside explicitly blocking operators such as
    {!sort}). The window algorithms are written against [Seq.t]; this
    module provides the operator view plus instrumentation used by the
    ablation benchmarks. *)

type 'a t

val open_ : 'a t -> unit
(** Resets the operator to the start of its stream. Must be called before
    {!next}; may be called again to rescan (used by nested-loop joins). *)

val next : 'a t -> 'a option
val close : 'a t -> unit

val of_seq : (unit -> 'a Seq.t) -> 'a t
(** The thunk is forced on every {!open_}, so rescans re-run the
    pipeline. *)

val of_list : 'a list -> 'a t
val to_seq : 'a t -> 'a Seq.t
(** Opens the operator and streams it to exhaustion. Single-shot. *)

val to_list : 'a t -> 'a list

val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t
val concat_map : ('a -> 'b list) -> 'a t -> 'b t

val sort : ('a -> 'a -> int) -> 'a t -> 'a t
(** Blocking: drains the child on [open_], then streams the sorted run.
    The analogue of PostgreSQL's Sort node feeding merge joins and the
    grouping required by LAWAU/LAWAN. *)

val counted : 'a t -> 'a t * (unit -> int)
(** Instrumentation: the returned function reports how many tuples have
    flowed through so far. *)
