(* Webkit-style analysis: two archives of file-stability predictions
   (e.g. two mirrors of the same repository) are joined on the file name
   to ask, per time point:

   - which prediction pairs agree an interval is stable in both archives
     (inner part of the outer join), and
   - with what probability a file predicted stable in archive r has no
     valid prediction in archive s at all (anti join / negation part).

     dune exec examples/webkit_analysis.exe [SIZE] *)

open Tpdb
module E = Tpdb_experiments.Experiments

let () =
  let size = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4_000 in
  let r, s = E.pair E.Webkit ~size in
  let theta = E.theta E.Webkit in
  Printf.printf "webkit-like archives: |r| = %d, |s| = %d tuples\n"
    (Relation.cardinality r) (Relation.cardinality s);

  let t0 = Unix.gettimeofday () in
  let joined = Nj.join ~kind:Nj.Left ~theta r s in
  let nj_ms = 1000. *. (Unix.gettimeofday () -. t0) in

  let tuples = Relation.tuples joined in
  let matched, unmatched_or_negated =
    List.partition
      (fun tp -> not (Value.is_null (Fact.get (Tuple.fact tp) 2)))
      tuples
  in
  Printf.printf
    "NJ left outer join: %d result tuples in %.1f ms\n\
    \  %d agreeing prediction pairs\n\
    \  %d intervals where archive s has no (true) matching prediction\n"
    (List.length tuples) nj_ms (List.length matched)
    (List.length unmatched_or_negated);

  (* The headline question: the 5 file intervals most likely to be stable
     in r while completely unconfirmed by s. *)
  let anti = Nj.join ~kind:Nj.Anti ~theta r s in
  let top =
    Relation.tuples anti
    |> List.sort (fun a b -> Float.compare (Tuple.p b) (Tuple.p a))
    |> List.filteri (fun i _ -> i < 5)
  in
  print_endline "top-5 unconfirmed stability predictions (by probability):";
  List.iter (fun tp -> print_endline ("  " ^ Tuple.to_string tp)) top;

  (* Same join through the TA baseline: identical answer, very different
     cost (the replication + double-join redundancy of §IV). *)
  let t0 = Unix.gettimeofday () in
  let ta = Ta.left_outer ~algorithm:`Nested_loop ~theta r s in
  let ta_ms = 1000. *. (Unix.gettimeofday () -. t0) in
  Printf.printf
    "TA (nested loop, as PostgreSQL plans it): %d tuples in %.1f ms -> NJ is %.0fx faster\n"
    (Relation.cardinality ta) ta_ms (ta_ms /. nj_ms);
  assert (Relation.equal_as_sets joined ta)
