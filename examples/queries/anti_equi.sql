SELECT File FROM wk_r ANTIJOIN wk_s ON wk_r.File = wk_s.File
