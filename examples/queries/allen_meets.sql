SELECT File FROM wk_r ANTIJOIN wk_s ON wk_r.File = wk_s.File AND wk_r.T MEETS wk_s.T
