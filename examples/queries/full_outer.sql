SELECT * FROM wk_r FULL TPJOIN wk_s ON wk_r.File = wk_s.File
