SELECT * FROM wk_r TPJOIN wk_s ON wk_r.File = wk_s.File AND wk_r.Rev = wk_s.Rev
