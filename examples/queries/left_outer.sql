SELECT * FROM wk_r LEFT TPJOIN wk_s ON wk_r.File = wk_s.File
