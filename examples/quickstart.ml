(* Quickstart: build two TP relations, run TP joins with negation, and
   inspect lineages and probabilities.

     dune exec examples/quickstart.exe *)

open Tpdb

let () =
  (* A TP base relation: rows are (fact values, interval, probability).
     Tuple i receives the lineage variable <name>i, as in the paper. *)
  let projects =
    Relation.of_rows ~name:"projects" ~columns:[ "Dev"; "Skill" ]
      [
        ([ "ada"; "ocaml" ], Interval.make 1 10, 0.9);
        ([ "ben"; "sql" ], Interval.make 3 7, 0.6);
      ]
  in
  let oncall =
    Relation.of_rows ~name:"oncall" ~columns:[ "Person"; "Skill" ]
      [
        ([ "carl"; "ocaml" ], Interval.make 4 6, 0.8);
        ([ "dana"; "ocaml" ], Interval.make 5 8, 0.5);
      ]
  in
  print_endline "Input relations:";
  Relation.print projects;
  Relation.print oncall;

  (* θ: projects.Skill = oncall.Skill (column 1 on both sides). *)
  let theta = Theta.eq 1 1 in

  (* TP left outer join: at every time point, who could take over — and
     with what probability nobody can. Every Table II operator goes
     through the one entry point, selected by [kind]. *)
  let q = Nj.join ~kind:Nj.Left ~theta projects oncall in
  print_endline "\nprojects LEFT TPJOIN oncall ON Skill = Skill:";
  Relation.print q;

  (* TP anti join: the probability that no θ-matching on-call person
     exists, per time point. *)
  let lonely = Nj.join ~kind:Nj.Anti ~theta projects oncall in
  print_endline "\nprojects ANTIJOIN oncall ON Skill = Skill:";
  Relation.print lonely;

  (* Lineages are first-class: evaluate and re-weigh them directly. *)
  let env = Relation.prob_env [ projects; oncall ] in
  let formula = Formula.of_string "projects1 & !(oncall1 | oncall2)" in
  Printf.printf "\nP(%s) = %.4f\n"
    (Formula.to_string formula)
    (Prob.compute env formula);

  (* The same query through the TP-SQL front end. *)
  let catalog = Catalog.create () in
  Catalog.register catalog projects;
  Catalog.register catalog oncall;
  let plan =
    Planner.plan catalog
      (Parser.parse
         "SELECT * FROM projects LEFT TPJOIN oncall ON projects.Skill = oncall.Skill")
  in
  print_endline "\nTP-SQL plan:";
  print_endline (Planner.explain plan);
  print_endline "";
  Relation.print (Planner.run plan)
