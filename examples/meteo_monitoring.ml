(* Meteo-style monitoring: stations publish predictions that a metric
   stays stable over an interval. Joining on the metric (very few
   distinct values - the unselective case of the paper's evaluation)
   asks, per time point, with which probability a station's stable-metric
   prediction is corroborated by *no* station of a second network - and
   demonstrates the TP set operations on two overlapping networks.

     dune exec examples/meteo_monitoring.exe [SIZE] *)

open Tpdb
module E = Tpdb_experiments.Experiments

let () =
  let size = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2_000 in
  let r, s = E.pair E.Meteo ~size in
  let theta = E.theta E.Meteo in
  Printf.printf "meteo-like networks: |r| = %d, |s| = %d tuples\n"
    (Relation.cardinality r) (Relation.cardinality s);

  (* Distinct metric values: the reason this workload is expensive. *)
  let distinct_metrics rel =
    Relation.tuples rel
    |> List.map (fun tp -> Value.to_string (Fact.get (Tuple.fact tp) 1))
    |> List.sort_uniq String.compare
  in
  let metrics = distinct_metrics r in
  Printf.printf "distinct join values (metrics): %d (%s)\n"
    (List.length metrics)
    (String.concat ", " metrics);

  let t0 = Unix.gettimeofday () in
  let uncorroborated = Nj.join ~kind:Nj.Anti ~theta r s in
  let ms = 1000. *. (Unix.gettimeofday () -. t0) in
  Printf.printf
    "TP anti join (uncorroborated predictions): %d tuples in %.1f ms\n"
    (Relation.cardinality uncorroborated) ms;

  (* Network consolidation with TP set operations (prior-work extension):
     both operands must share a schema, so compare the two networks'
     station-metric predictions directly. *)
  let half = size / 2 in
  let net1 = Datasets.subset ~seed:11 ~k:half r in
  let net2 = Datasets.subset ~seed:12 ~k:half r in
  let env = Relation.prob_env [ r ] in
  let both = Set_ops.intersection ~env net1 net2 in
  let merged = Set_ops.union ~env net1 net2 in
  let only1 = Set_ops.difference ~env net1 net2 in
  Printf.printf
    "set operations over two %d-tuple subnetworks:\n\
    \  union %d tuples, intersection %d tuples, difference %d tuples\n"
    half
    (Relation.cardinality merged)
    (Relation.cardinality both)
    (Relation.cardinality only1);

  (* Spot-check the set-op semantics against the pointwise oracle on a
     small sample. *)
  let sample1 = Datasets.subset ~seed:21 ~k:(min 150 half) net1 in
  let sample2 = Datasets.subset ~seed:22 ~k:(min 150 half) net2 in
  assert (
    Relation.equal_as_sets
      (Set_ops.union ~env sample1 sample2)
      (Set_ops.Oracle.union ~env sample1 sample2));
  print_endline "oracle agreement on sampled union: ok"
