(* The paper's running example (Figs. 1 and 2): a booking website that
   archives predictions about where clients want to travel and which
   hotels will have rooms.

     dune exec examples/booking.exe *)

open Tpdb

let wants_to_visit =
  Relation.of_rows ~name:"a" ~columns:[ "Name"; "Loc" ]
    [
      ([ "Ann"; "ZAK" ], Interval.make 2 8, 0.7);
      ([ "Jim"; "WEN" ], Interval.make 7 10, 0.8);
    ]

let hotel_availability =
  Relation.of_rows ~name:"b" ~columns:[ "Hotel"; "Loc" ]
    [
      ([ "hotel3"; "SOR" ], Interval.make 1 4, 0.9);
      ([ "hotel2"; "ZAK" ], Interval.make 5 8, 0.6);
      ([ "hotel1"; "ZAK" ], Interval.make 4 6, 0.7);
    ]

(* θ : a.Loc = b.Loc *)
let theta = Theta.eq 1 1

let section title =
  Printf.printf "\n--- %s ---\n" title

let () =
  Printf.printf "Base relations (paper Fig. 1a):\n";
  Relation.print wants_to_visit;
  Relation.print hotel_availability;

  section "All windows of a w.r.t. b (paper Fig. 2)";
  Nj.windows_wuon ~theta wants_to_visit hotel_availability
  |> Seq.iter (fun w -> print_endline ("  " ^ Window.to_string w));

  section "The same picture, drawn (cf. paper Fig. 2)";
  print_string (Render.join_picture ~theta wants_to_visit hotel_availability);

  section "Q = a LEFT TPJOIN b ON a.Loc = b.Loc (paper Fig. 1b)";
  Relation.print
    (Nj.join ~kind:Nj.Left ~theta wants_to_visit hotel_availability);
  print_endline
    "Reading: over [5,6) there is probability 0.084 that Ann wants to\n\
     visit Zakynthos but finds no accommodation - she is interested (a1\n\
     true) while neither hotel1 nor hotel2 has rooms (b3, b2 false).";

  section "TP anti join: when does a client certainly find no hotel?";
  Relation.print
    (Nj.join ~kind:Nj.Anti ~theta wants_to_visit hotel_availability);

  section "TP full outer join: hotels with no interested client included";
  Relation.print
    (Nj.join ~kind:Nj.Full ~theta wants_to_visit hotel_availability);

  (* Every window the pipeline produced satisfies its Table I definition;
     demonstrate the executable spec on this instance. *)
  section "Table I check";
  let windows =
    List.of_seq (Nj.windows_wuon ~theta wants_to_visit hotel_availability)
  in
  let ok =
    List.for_all
      (fun w ->
        match Window.kind w with
        | Window.Overlapping ->
            Spec.is_overlapping_window ~theta wants_to_visit
              hotel_availability w
        | Window.Unmatched ->
            Spec.is_unmatched_window ~theta wants_to_visit hotel_availability w
        | Window.Negating ->
            Spec.is_negating_window ~theta wants_to_visit hotel_availability w)
      windows
  in
  Printf.printf
    "all %d windows satisfy their Table I definitions: %b\n"
    (List.length windows) ok
