(** The generic interval sweep underlying LAWAN and the TP projection
    operator.

    Input is a {!Source.t} — endpoints unboxed into start-sorted int
    arrays with payloads in a parallel array, the same flat layout as
    {!Flat}. The sweep visits the start and end points in temporal order
    and emits one segment per maximal run of time points whose set of
    covering items is constant and non-empty. Payloads are listed in
    arrival (start) order — the order the paper's examples use for
    lineage disjunctions like [b3 ∨ b2]. Upcoming ending points are
    scheduled with a priority queue, as in the paper.

    Start-sortedness is the constructor's precondition. {!Source.of_list}
    always asserts it (the list is being copied anyway) and raises
    [Invalid_argument] on unsorted input; the zero-copy
    {!Source.of_arrays} asserts it only under [TPDB_SANITIZE=1], keeping
    the hot path branch-free by default. *)

module Interval = Tpdb_interval.Interval

module Source : sig
  type 'a t

  val of_list : (Interval.t * 'a) list -> 'a t
  (** Must be sorted by interval start; raises [Invalid_argument]
      otherwise. *)

  val of_arrays : ts:int array -> te:int array -> payload:'a array -> len:int -> 'a t
  (** Wraps the first [len] elements of three parallel arrays without
      copying; [ts] must be ascending (asserted under
      [TPDB_SANITIZE=1]). *)

  val length : 'a t -> int
end

val constant_segments : 'a Source.t -> (Interval.t * 'a list) list
(** Output segments are disjoint, in temporal order, and their union is
    exactly the union of the input intervals. *)
