let bucket_of ~partitions hash = (hash land max_int) mod partitions

let shard2 ~partitions ~left_key ~right_key left right =
  let partitions = max 1 partitions in
  let lbuckets = Array.make partitions []
  and rbuckets = Array.make partitions [] in
  let push buckets key item =
    let b = bucket_of ~partitions (key item) in
    buckets.(b) <- item :: buckets.(b)
  in
  List.iter (push lbuckets left_key) left;
  List.iter (push rbuckets right_key) right;
  Array.init partitions (fun i ->
      (List.rev lbuckets.(i), List.rev rbuckets.(i)))

let map ~pool f arr = Array.of_list (Pool.map pool f (Array.to_list arr))

(* Pairwise [List.merge], folded left to right. [List.merge] takes from
   the left list on ties, so earlier partitions win — and since a group
   lives in exactly one partition, a group's elements (which compare
   equal, hence "tie") are never interleaved with another list's. *)
let merge_grouped ?check ~compare_group streams =
  let merged = Array.fold_left (List.merge compare_group) [] streams in
  (match check with
  | None -> ()
  | Some check ->
      let rec pairwise = function
        | a :: (b :: _ as rest) ->
            check a b;
            pairwise rest
        | [ _ ] | [] -> ()
      in
      pairwise merged);
  merged

let equi_join ?check ~pool ~partitions ~left_key ~right_key ~sweep
    ~compare_group left right =
  shard2 ~partitions ~left_key ~right_key left right
  |> map ~pool (fun (l, r) -> sweep l r)
  |> merge_grouped ?check ~compare_group
