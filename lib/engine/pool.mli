(** A fixed pool of worker domains.

    Domains are expensive to spawn (they own GC state), so the pool is
    created once and reused for every parallel operator invocation. The
    worker count is capped at [Domain.recommended_domain_count ()]; the
    calling domain always participates in draining the job queue, so a
    pool with zero workers degrades to plain sequential execution and a
    [map] over fewer items than workers leaves the surplus idle.

    {!map} is the only execution primitive: deterministic in result
    order (input order is preserved regardless of completion order),
    with exceptions re-raised in the caller — the first failing item by
    input position wins. *)

type t

val create : ?num_domains:int -> unit -> t
(** [create ?num_domains ()] spawns the worker domains immediately.
    [num_domains] defaults to [Domain.recommended_domain_count () - 1]
    (the caller is the remaining domain) and is clamped to
    [0 .. Domain.recommended_domain_count ()]. *)

val num_domains : t -> int
(** Worker domains, excluding the calling domain. *)

val pending : t -> int
(** Jobs queued but not yet picked up by any domain — an instantaneous
    load signal (the server's STATS command reports it). Already-running
    jobs are not counted. *)

val default : unit -> t
(** The shared global pool, spawned on first use and reused by every
    subsequent parallel operator; shut down automatically at exit. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f items] applies [f] to every item, running the
    applications on the worker domains and the calling domain. Results
    are in input order. If one or more applications raise, the exception
    of the earliest failing item is re-raised after the batch has
    drained. [f] must be safe to run concurrently with itself (no shared
    mutable state). *)

val shutdown : t -> unit
(** Stops the workers and joins them. Pending jobs of an in-flight
    {!map} are still executed by the caller's drain loop; calling
    {!map} on a pool after [shutdown] runs everything on the calling
    domain. Idempotent. *)
