type t = {
  mutex : Mutex.t;
  has_work : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let num_domains t = List.length t.workers

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mutex;
  n

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if t.stopped then begin
      Mutex.unlock t.mutex;
      None
    end
    else
      match Queue.take_opt t.jobs with
      | Some job ->
          Mutex.unlock t.mutex;
          Some job
      | None ->
          Condition.wait t.has_work t.mutex;
          next ()
  in
  match next () with
  | None -> ()
  | Some job ->
      job ();
      worker_loop t

let create ?num_domains () =
  let cap = Domain.recommended_domain_count () in
  let n =
    match num_domains with
    | Some n -> min (max n 0) cap
    | None -> max 0 (cap - 1)
  in
  let t =
    {
      mutex = Mutex.create ();
      has_work = Condition.create ();
      jobs = Queue.create ();
      stopped = false;
      workers = [];
    }
  in
  t.workers <- List.init n (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

(* The global pool: one worker per remaining recommended domain, but at
   least one so that the cross-domain machinery is exercised even on a
   single-core host. Joined at exit — the runtime requires all domains
   to have terminated when the main domain returns. *)
let global = ref None
let global_mutex = Mutex.create ()

let default () =
  Mutex.lock global_mutex;
  let t =
    match !global with
    | Some t -> t
    | None ->
        let n = max 1 (Domain.recommended_domain_count () - 1) in
        let t = create ~num_domains:n () in
        global := Some t;
        at_exit (fun () -> shutdown t);
        t
  in
  Mutex.unlock global_mutex;
  t

type 'b slot = Empty | Value of 'b | Raised of exn * Printexc.raw_backtrace

let map t f items =
  match items with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let inputs = Array.of_list items in
      let n = Array.length inputs in
      let results = Array.make n Empty in
      let remaining = Atomic.make n in
      let batch_mutex = Mutex.create () in
      let batch_done = Condition.create () in
      let run i =
        let outcome =
          match f inputs.(i) with
          | v -> Value v
          | exception e -> Raised (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- outcome;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          (* Last item: wake the caller if it is already waiting. Taking
             the mutex orders this broadcast after the caller's check of
             [remaining], so the wakeup cannot be lost. *)
          Mutex.lock batch_mutex;
          Condition.broadcast batch_done;
          Mutex.unlock batch_mutex
        end
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.add (fun () -> run i) t.jobs
      done;
      Condition.broadcast t.has_work;
      Mutex.unlock t.mutex;
      (* The caller participates: drain the queue (possibly including
         jobs of concurrently running batches), then wait for the last
         straggler running on a worker. *)
      let rec drain () =
        Mutex.lock t.mutex;
        let job = Queue.take_opt t.jobs in
        Mutex.unlock t.mutex;
        match job with
        | Some job ->
            job ();
            drain ()
        | None -> ()
      in
      drain ();
      Mutex.lock batch_mutex;
      while Atomic.get remaining > 0 do
        Condition.wait batch_done batch_mutex
      done;
      Mutex.unlock batch_mutex;
      List.init n (fun i ->
          match results.(i) with
          | Value v -> v
          | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
          | Empty -> assert false)
