module Interval = Tpdb_interval.Interval

let sanitize_enabled =
  lazy
    (match Sys.getenv_opt "TPDB_SANITIZE" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false)

module Source = struct
  (* Endpoints unboxed into int arrays, payloads in a parallel array:
     the flat layout every sweep below iterates by index. *)
  type 'a t = {
    ts : int array;
    te : int array;
    payload : 'a array;
    len : int;
  }

  let check_sorted ts len =
    for i = 1 to len - 1 do
      if ts.(i - 1) > ts.(i) then
        invalid_arg
          (Printf.sprintf
             "Sweep.Source: input not sorted by start (ts %d after %d)"
             ts.(i) ts.(i - 1))
    done

  let of_arrays ~ts ~te ~payload ~len =
    if
      len < 0
      || len > Array.length ts
      || len > Array.length te
      || len > Array.length payload
    then invalid_arg "Sweep.Source.of_arrays: inconsistent lengths";
    if Lazy.force sanitize_enabled then check_sorted ts len;
    { ts; te; payload; len }

  let of_list items =
    let n = List.length items in
    if n = 0 then
      { ts = [||]; te = [||]; payload = [||]; len = 0 }
    else begin
      let arr = Array.of_list items in
      let ts = Array.make n 0 and te = Array.make n 0 in
      let payload = Array.map snd arr in
      Array.iteri
        (fun i (iv, _) ->
          ts.(i) <- Interval.ts iv;
          te.(i) <- Interval.te iv)
        arr;
      check_sorted ts n;
      { ts; te; payload; len = n }
    end

  let length t = t.len
end

let constant_segments (src : 'a Source.t) =
  let n = src.Source.len in
  if n = 0 then []
  else begin
    let ts = src.Source.ts and te = src.Source.te in
    let heap = Heap.create ~cmp:Int.compare () in
    (* reverse arrival order of (ending point, payload index) *)
    let active = ref [] in
    let segments = ref [] in
    let i = ref 0 in
    let pos = ref 0 in
    let admit t =
      while !i < n && ts.(!i) = t do
        active := (te.(!i), !i) :: !active;
        Heap.push heap te.(!i);
        incr i
      done
    in
    let retire t =
      active := List.filter (fun (e, _) -> e > t) !active;
      let rec pops () =
        match Heap.peek heap with
        | Some e when e <= t ->
            ignore (Heap.pop heap);
            pops ()
        | Some _ | None -> ()
      in
      pops ()
    in
    let min_end () =
      match Heap.peek heap with Some e -> e | None -> max_int
    in
    while !i < n || !active <> [] do
      if !active = [] then begin
        let t = ts.(!i) in
        pos := t;
        admit t
      end
      else begin
        let next_start = if !i < n then ts.(!i) else max_int in
        let t = min (min_end ()) next_start in
        if t > !pos then begin
          Tpdb_obs.Metrics.incr Tpdb_obs.Metrics.Sweep_segments;
          segments :=
            ( Interval.make !pos t,
              List.rev_map (fun (_, j) -> src.Source.payload.(j)) !active )
            :: !segments
        end;
        retire t;
        admit t;
        pos := t
      end
    done;
    List.rev !segments
  end
