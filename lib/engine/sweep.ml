module Interval = Tpdb_interval.Interval

let constant_segments ?(schedule = `Heap) items =
  match items with
  | [] -> []
  | _ ->
      let arr = Array.of_list items in
      let n = Array.length arr in
      let start_of k = Interval.ts (fst arr.(k)) in
      let heap = Heap.create ~cmp:Int.compare () in
      (* reverse arrival order of (ending point, payload) *)
      let active = ref [] in
      let segments = ref [] in
      let i = ref 0 in
      let pos = ref 0 in
      let admit t =
        while !i < n && start_of !i = t do
          let iv, payload = arr.(!i) in
          active := (Interval.te iv, payload) :: !active;
          (match schedule with `Heap -> Heap.push heap (Interval.te iv) | `Scan -> ());
          incr i
        done
      in
      let retire t =
        active := List.filter (fun (te, _) -> te > t) !active;
        match schedule with
        | `Scan -> ()
        | `Heap ->
            let rec pops () =
              match Heap.peek heap with
              | Some te when te <= t ->
                  ignore (Heap.pop heap);
                  pops ()
              | Some _ | None -> ()
            in
            pops ()
      in
      let min_end () =
        match schedule with
        | `Heap -> (
            match Heap.peek heap with Some te -> te | None -> max_int)
        | `Scan ->
            List.fold_left (fun acc (te, _) -> min acc te) max_int !active
      in
      while !i < n || !active <> [] do
        if !active = [] then begin
          let t = start_of !i in
          pos := t;
          admit t
        end
        else begin
          let next_start = if !i < n then start_of !i else max_int in
          let t = min (min_end ()) next_start in
          if t > !pos then begin
            Tpdb_obs.Metrics.incr Tpdb_obs.Metrics.Sweep_segments;
            segments :=
              (Interval.make !pos t, List.rev_map snd !active) :: !segments
          end;
          retire t;
          admit t;
          pos := t
        end
      done;
      List.rev !segments
