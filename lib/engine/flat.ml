module Interval = Tpdb_interval.Interval

(* Growable int buffer: the building block of the flat sweep core's
   reusable scratch space. Never shrinks, so a steady-state sweep does
   not allocate per probe. *)
module Buf = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(capacity = 64) () =
    { data = Array.make (max 1 capacity) 0; len = 0 }

  let clear b = b.len <- 0
  let length b = b.len

  let ensure b n =
    if n > Array.length b.data then begin
      let cap = ref (max 64 (Array.length b.data)) in
      while n > !cap do
        cap := !cap * 2
      done;
      let data = Array.make !cap 0 in
      Array.blit b.data 0 data 0 b.len;
      b.data <- data
    end

  let push b v =
    ensure b (b.len + 1);
    b.data.(b.len) <- v;
    b.len <- b.len + 1

  let get b i = b.data.(i)
  let set b i v = b.data.(i) <- v

  (* In-place sort of the live prefix under an index comparator:
     insertion sort below a small cutoff, median-of-3 quicksort above.
     Used to order probe matches without allocating a fresh array. *)
  let sort b cmp =
    let a = b.data in
    let swap i j =
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    in
    let insertion lo hi =
      for i = lo + 1 to hi do
        let v = a.(i) in
        let j = ref (i - 1) in
        while !j >= lo && cmp a.(!j) v > 0 do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- v
      done
    in
    let rec qsort lo hi =
      if hi - lo < 16 then insertion lo hi
      else begin
        let mid = lo + ((hi - lo) / 2) in
        if cmp a.(mid) a.(lo) < 0 then swap mid lo;
        if cmp a.(hi) a.(lo) < 0 then swap hi lo;
        if cmp a.(hi) a.(mid) < 0 then swap hi mid;
        let pivot = a.(mid) in
        swap mid (hi - 1);
        let i = ref lo and j = ref (hi - 1) in
        (try
           while true do
             incr i;
             while cmp a.(!i) pivot < 0 do
               incr i
             done;
             decr j;
             while cmp pivot a.(!j) < 0 do
               decr j
             done;
             if !i >= !j then raise Exit;
             swap !i !j
           done
         with Exit -> ());
        swap !i (hi - 1);
        qsort lo (!i - 1);
        qsort (!i + 1) hi
      end
    in
    if b.len > 1 then qsort 0 (b.len - 1)
end

(* The flat struct-of-arrays interval index: start and end points of a
   start-sorted run of intervals, unboxed into two int arrays that the
   sweep kernels walk with plain index arithmetic. The payload (tuples,
   lineages, …) stays with the caller in parallel arrays. *)
type t = { ts : int array; te : int array; len : int }

let length t = t.len
let ts t i = t.ts.(i)
let te t i = t.te.(i)
let starts t = t.ts
let ends t = t.te

let of_sorted iv arr =
  let n = Array.length arr in
  let ts = Array.make (max 1 n) 0 and te = Array.make (max 1 n) 0 in
  for i = 0 to n - 1 do
    let v = iv arr.(i) in
    ts.(i) <- Interval.ts v;
    te.(i) <- Interval.te v
  done;
  for i = 1 to n - 1 do
    if ts.(i - 1) > ts.(i) then
      invalid_arg "Flat.of_sorted: intervals not sorted by start"
  done;
  { ts; te; len = n }

(* First index with ts >= x (lower bound on the start array). *)
let lower_bound t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.ts.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index with ts > x. *)
let upper_bound t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.ts.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

type temporal = [ `Overlap | `Allen of Interval.allen ]

(* The window-producing probe kernel: candidate index range by start
   point for a probe interval [rts, rte). The range is the tightest
   contiguous start-array slice containing every s interval that (a)
   stands in the requested temporal relation to the probe AND (b) shares
   a time point with it — condition (b) because only co-valid pairs form
   overlapping windows. Disjoint Allen relations therefore probe an
   empty range. The remaining per-element condition is a predicate on
   the end point alone: {!end_matches}. *)
let window_range t rel ~rts ~rte =
  match rel with
  | `Overlap -> (0, lower_bound t rte)
  | `Allen Interval.Equals
  | `Allen Interval.Starts
  | `Allen Interval.Started_by ->
      (lower_bound t rts, upper_bound t rts)
  | `Allen Interval.During
  | `Allen Interval.Finishes
  | `Allen Interval.Overlapped_by ->
      (0, lower_bound t rts)
  | `Allen Interval.Contains
  | `Allen Interval.Finished_by
  | `Allen Interval.Overlaps ->
      (upper_bound t rts, lower_bound t rte)
  | `Allen (Interval.Before | Interval.Meets | Interval.Met_by | Interval.After)
    ->
      (0, 0)

(* The end-point predicate completing {!window_range}: with s.ts inside
   the range, [allen probe s = rel ∧ overlaps probe s] iff the s end
   point satisfies this. *)
let end_matches rel ~rts ~rte tev =
  match rel with
  | `Overlap -> tev > rts
  | `Allen Interval.Equals -> tev = rte
  | `Allen Interval.Starts -> tev > rte
  | `Allen Interval.Started_by -> tev < rte
  | `Allen Interval.During -> tev > rte
  | `Allen Interval.Contains -> tev < rte
  | `Allen Interval.Overlaps -> tev > rte
  | `Allen Interval.Overlapped_by -> tev > rts && tev < rte
  | `Allen Interval.Finishes -> tev = rte
  | `Allen Interval.Finished_by -> tev = rte
  | `Allen (Interval.Before | Interval.Meets | Interval.Met_by | Interval.After)
    ->
      false
