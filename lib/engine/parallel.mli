(** Domain-parallel partitioned execution of equi joins.

    The sweeping window algorithms compute each equi-key group
    independently, so an equi-θ join parallelizes by sharding {e both}
    inputs on the join key into [P] partitions, running the full sweep
    per partition on separate domains ({!Pool}), and merging the
    per-partition output streams back into one.

    The merge is deterministic and order-preserving: every stream is a
    concatenation of {e groups} (runs of elements that compare equal
    under [compare_group]), groups are emitted in ascending group order,
    ties prefer the lower partition id, and the elements of a group keep
    their within-partition order. Because equal keys hash to the same
    partition, a group never spans two partitions — so when the
    sequential operator emits groups in ascending [compare_group] order,
    the merged parallel stream is {e identical} to the sequential one,
    element for element. *)

val bucket_of : partitions:int -> int -> int
(** The bucketing function of {!shard2}: [hash] to a partition index in
    [\[0, partitions)], ignoring the sign bit. Exposed so the
    out-of-core spill partitioner shards exactly like the in-RAM
    executor — the determinism argument of the merged output depends on
    both paths agreeing on it. *)

val shard2 :
  partitions:int ->
  left_key:('r -> int) ->
  right_key:('s -> int) ->
  'r list ->
  's list ->
  ('r list * 's list) array
(** Buckets both inputs by key hash modulo [partitions] (clamped to at
    least 1), preserving input order inside every bucket. Items with
    equal hashes land in the same bucket, on both sides. *)

val map : pool:Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** {!Pool.map} over an array, preserving order. *)

val merge_grouped :
  ?check:('w -> 'w -> unit) ->
  compare_group:('w -> 'w -> int) ->
  'w list array ->
  'w list
(** K-way merge of per-partition streams under the contract above. Each
    input list must have its groups in nondecreasing [compare_group]
    order; elements of one group must not occur in two lists. [?check]
    is called on every adjacent pair of the merged result — a sanitizer
    hook that can assert the nondecreasing-group postcondition. *)

val equi_join :
  ?check:('w -> 'w -> unit) ->
  pool:Pool.t ->
  partitions:int ->
  left_key:('r -> int) ->
  right_key:('s -> int) ->
  sweep:('r list -> 's list -> 'w list) ->
  compare_group:('w -> 'w -> int) ->
  'r list ->
  's list ->
  'w list
(** [shard2], then [sweep] per partition on the pool, then
    [merge_grouped]: the whole partitioned-join pipeline in one call. *)
