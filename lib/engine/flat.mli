(** The flat struct-of-arrays sweep core.

    A {!t} lays a start-sorted run of intervals out as two unboxed int
    arrays (start points, end points); probes walk them with index
    arithmetic — one binary search for the candidate start range, one
    end-point comparison per candidate — instead of chasing a `Seq` of
    boxed records. Payloads (tuples, lineages, original positions) live
    in parallel arrays owned by the caller, indexed by the same
    positions.

    {!window_range}/{!end_matches} form the extended-Allen probe kernel
    (after Piatov et al., arXiv:2008.12665): for each of the 13 Allen
    relations, plus the classic [`Overlap], the window-producing matches
    of a probe interval are exactly a contiguous start-array range
    filtered by a predicate on the end point alone:

    {v
    relation r REL s     start range (by s.ts)    end predicate (s.te)
    ─────────────────    ─────────────────────    ────────────────────
    overlap              [0, lb rte)              te > rts
    equals               [lb rts, ub rts)         te = rte
    starts               [lb rts, ub rts)         te > rte
    started_by           [lb rts, ub rts)         te < rte
    during               [0, lb rts)              te > rte
    contains             (ub rts, lb rte)         te < rte
    overlaps             (ub rts, lb rte)         te > rte
    overlapped_by        [0, lb rts)              rts < te < rte
    finishes             [0, lb rts)              te = rte
    finished_by          (ub rts, lb rte)         te = rte
    before/meets/
    met_by/after         empty                    —
    v}

    where [lb x]/[ub x] are the lower/upper bounds of [x] in the start
    array. The disjoint relations probe an empty range because a pair
    standing in them shares no time point and thus forms no overlapping
    window (it can still shape unmatched windows — by matching nothing).

    {!Buf} is the reusable scratch buffer the probe loop collects
    matches into; it never shrinks, so steady-state probing does not
    allocate. *)

module Interval = Tpdb_interval.Interval

(** Growable int buffer. *)
module Buf : sig
  type t

  val create : ?capacity:int -> unit -> t
  val clear : t -> unit
  val length : t -> int
  val push : t -> int -> unit
  val get : t -> int -> int
  val set : t -> int -> int -> unit

  val sort : t -> (int -> int -> int) -> unit
  (** In-place sort of the live prefix under an element comparator. *)
end

type t
(** Endpoint arrays of a start-sorted interval run. *)

val of_sorted : ('a -> Interval.t) -> 'a array -> t
(** [of_sorted iv arr] extracts the endpoint arrays of [arr], which must
    already be sorted by interval start (raises [Invalid_argument]
    otherwise). *)

val length : t -> int

(** The backing start array itself — indices [0, length) are live; the
    tail of the array is padding. For sweep kernels whose inner loop
    cannot afford a call per element. *)
val starts : t -> int array

(** The backing end array; same contract as {!starts}. *)
val ends : t -> int array
val ts : t -> int -> int
val te : t -> int -> int

val lower_bound : t -> int -> int
(** First index whose start point is [>= x]; {!length} if none. *)

val upper_bound : t -> int -> int
(** First index whose start point is [> x]; {!length} if none. *)

type temporal = [ `Overlap | `Allen of Interval.allen ]

val window_range : t -> temporal -> rts:int -> rte:int -> int * int
(** Candidate index range [(lo, hi)] for a probe interval [[rts, rte)]:
    every index outside it fails the temporal relation or shares no time
    point with the probe. *)

val end_matches : temporal -> rts:int -> rte:int -> int -> bool
(** [end_matches rel ~rts ~rte te] completes the kernel: an index [i] of
    the range with end point [te] is a window-producing match iff this
    holds. *)
