module Interval = Tpdb_interval.Interval
module Timeline = Tpdb_interval.Timeline
module Formula = Tpdb_lineage.Formula
module Prob = Tpdb_lineage.Prob
module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Theta = Tpdb_windows.Theta

module Row_key = struct
  type t = Fact.t * Formula.t

  let compare (fa, la) (fb, lb) =
    let c = Fact.compare fa fb in
    if c <> 0 then c else Formula.compare la lb
end

module Row_map = Map.Make (Row_key)

(* [rows_at] computes the snapshot rows of the operator at one time point;
   the driver below glues equal rows over maximal runs of time points. *)
let materialize ~env ~schema rows_at domain =
  let add_point acc t =
    List.fold_left
      (fun acc (fact, lineage) ->
        let key = (fact, Formula.normalize lineage) in
        let points = Option.value (Row_map.find_opt key acc) ~default:[] in
        Row_map.add key (t :: points) acc)
      acc (rows_at t)
  in
  let by_row =
    match domain with
    | None -> Row_map.empty
    | Some span -> Seq.fold_left add_point Row_map.empty (Interval.points span)
  in
  let tuples =
    Row_map.fold
      (fun (fact, lineage) points acc ->
        let intervals =
          Timeline.coalesce
            (List.map (fun t -> Interval.make t (t + 1)) points)
        in
        let p = Prob.compute env lineage in
        List.fold_left
          (fun acc iv -> Tuple.make ~fact ~lineage ~iv ~p :: acc)
          acc intervals)
      by_row []
  in
  Relation.of_tuples schema (List.rev tuples)

let snapshot r t =
  List.filter (fun tp -> Tuple.valid_at tp t) (Relation.tuples r)

(* Snapshot matching: fact atoms over the facts, and — when θ carries an
   [`Allen] temporal component — the relation over the tuples' full
   intervals. [`Overlap] always holds between two tuples valid at the
   same time point. *)
let matches_of theta r_tuple s_valid =
  List.filter
    (fun s_tuple ->
      Theta.temporal_matches theta (Tuple.iv r_tuple) (Tuple.iv s_tuple)
      && Theta.matches theta (Tuple.fact r_tuple) (Tuple.fact s_tuple))
    s_valid

let negation_lineage r_tuple matches =
  Formula.and_not (Tuple.lineage r_tuple)
    (Formula.disj (List.map Tuple.lineage matches))

let domain_of relations =
  Timeline.span
    (List.concat_map (fun r -> List.map Tuple.iv (Relation.tuples r)) relations)

let left_rows ~theta ~pad r s t =
  let s_valid = snapshot s t in
  List.concat_map
    (fun r_tuple ->
      let fr = Tuple.fact r_tuple in
      match matches_of theta r_tuple s_valid with
      | [] -> [ (Fact.concat fr (Fact.nulls pad), Tuple.lineage r_tuple) ]
      | matches ->
          let pairs =
            List.map
              (fun s_tuple ->
                ( Fact.concat fr (Tuple.fact s_tuple),
                  Formula.( &&& ) (Tuple.lineage r_tuple) (Tuple.lineage s_tuple) ))
              matches
          in
          (Fact.concat fr (Fact.nulls pad), negation_lineage r_tuple matches)
          :: pairs)
    (snapshot r t)

(* The non-matching half of the right side: pair rows are already produced
   by [left_rows], so only null-padded s rows are added here. *)
let right_gap_rows ~theta ~pad r s t =
  let r_valid = snapshot r t in
  let swapped = Theta.swap theta in
  List.filter_map
    (fun s_tuple ->
      let fs = Tuple.fact s_tuple in
      match matches_of swapped s_tuple r_valid with
      | [] -> Some (Fact.concat (Fact.nulls pad) fs, Tuple.lineage s_tuple)
      | matches ->
          Some
            ( Fact.concat (Fact.nulls pad) fs,
              negation_lineage s_tuple matches ))
    (snapshot s t)

let env_default env r s =
  match env with Some e -> e | None -> Relation.prob_env [ r; s ]

let join_schema r s = Schema.join (Relation.schema r) (Relation.schema s)

let inner ?env ~theta r s =
  let env = env_default env r s in
  let rows_at t =
    let s_valid = snapshot s t in
    List.concat_map
      (fun r_tuple ->
        List.map
          (fun s_tuple ->
            ( Fact.concat (Tuple.fact r_tuple) (Tuple.fact s_tuple),
              Formula.( &&& ) (Tuple.lineage r_tuple) (Tuple.lineage s_tuple) ))
          (matches_of theta r_tuple s_valid))
      (snapshot r t)
  in
  materialize ~env ~schema:(join_schema r s) rows_at (domain_of [ r; s ])

let anti ?env ~theta r s =
  let env = env_default env r s in
  let rows_at t =
    let s_valid = snapshot s t in
    List.map
      (fun r_tuple ->
        match matches_of theta r_tuple s_valid with
        | [] -> (Tuple.fact r_tuple, Tuple.lineage r_tuple)
        | matches -> (Tuple.fact r_tuple, negation_lineage r_tuple matches))
      (snapshot r t)
  in
  let schema =
    Schema.rename (Relation.name r ^ "_anti_" ^ Relation.name s) (Relation.schema r)
  in
  materialize ~env ~schema rows_at (domain_of [ r ])

let left_outer ?env ~theta r s =
  let env = env_default env r s in
  let pad = Schema.arity (Relation.schema s) in
  materialize ~env ~schema:(join_schema r s)
    (left_rows ~theta ~pad r s)
    (domain_of [ r; s ])

let right_outer ?env ~theta r s =
  let env = env_default env r s in
  let pad_r = Schema.arity (Relation.schema r) in
  let rows_at t =
    let s_valid = snapshot s t in
    let pairs =
      List.concat_map
        (fun r_tuple ->
          List.map
            (fun s_tuple ->
              ( Fact.concat (Tuple.fact r_tuple) (Tuple.fact s_tuple),
                Formula.( &&& ) (Tuple.lineage r_tuple) (Tuple.lineage s_tuple) ))
            (matches_of theta r_tuple s_valid))
        (snapshot r t)
    in
    pairs @ right_gap_rows ~theta ~pad:pad_r r s t
  in
  materialize ~env ~schema:(join_schema r s) rows_at (domain_of [ r; s ])

let full_outer ?env ~theta r s =
  let env = env_default env r s in
  let pad_s = Schema.arity (Relation.schema s) in
  let pad_r = Schema.arity (Relation.schema r) in
  let rows_at t = left_rows ~theta ~pad:pad_s r s t @ right_gap_rows ~theta ~pad:pad_r r s t in
  materialize ~env ~schema:(join_schema r s) rows_at (domain_of [ r; s ])
