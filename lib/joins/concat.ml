module Formula = Tpdb_lineage.Formula
module Prob = Tpdb_lineage.Prob
module Fact = Tpdb_relation.Fact
module Tuple = Tpdb_relation.Tuple
module Window = Tpdb_windows.Window
module Metrics = Tpdb_obs.Metrics

(* [Formula.size] walks the formula, so guard on the sink before paying
   for it — the flat check the rest of the instrumentation also uses. *)
let count_lineage lineage =
  if Metrics.enabled () then
    Metrics.add Metrics.Lineage_nodes (Formula.size lineage)

let output_lineage w =
  match (Window.kind w, Window.ls w) with
  | Window.Overlapping, Some ls -> Formula.( &&& ) (Window.lr w) ls
  | Window.Unmatched, None -> Window.lr w
  | Window.Negating, Some ls -> Formula.and_not (Window.lr w) ls
  | (Window.Overlapping | Window.Unmatched | Window.Negating), _ ->
      invalid_arg "Concat.output_lineage: malformed window"

type side = Left | Right

let output_fact ~side ~pad w =
  match (Window.kind w, side) with
  | Window.Overlapping, Left -> (
      match Window.fs w with
      | Some fs -> Fact.concat (Window.fr w) fs
      | None -> invalid_arg "Concat: overlapping window without fs")
  | Window.Overlapping, Right ->
      invalid_arg "Concat: overlapping window on the right pass"
  | (Window.Unmatched | Window.Negating), Left ->
      Fact.concat (Window.fr w) (Fact.nulls pad)
  | (Window.Unmatched | Window.Negating), Right ->
      Fact.concat (Fact.nulls pad) (Window.fr w)

let tuple_of_window ~prob ~side ~pad w =
  let lineage = output_lineage w in
  count_lineage lineage;
  Tuple.make
    ~fact:(output_fact ~side ~pad w)
    ~lineage ~iv:(Window.iv w) ~p:(prob lineage)

let tuple_of_window_no_fs ~prob w =
  match Window.kind w with
  | Window.Overlapping ->
      invalid_arg "Concat.tuple_of_window_no_fs: overlapping window"
  | Window.Unmatched | Window.Negating ->
      let lineage = output_lineage w in
      count_lineage lineage;
      Tuple.make ~fact:(Window.fr w) ~lineage ~iv:(Window.iv w)
        ~p:(prob lineage)
