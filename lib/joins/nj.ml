module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Prob = Tpdb_lineage.Prob
module Theta = Tpdb_windows.Theta
module Window = Tpdb_windows.Window
module Overlap = Tpdb_windows.Overlap
module Lawau = Tpdb_windows.Lawau
module Lawan = Tpdb_windows.Lawan
module Flat_join = Tpdb_windows.Flat_join
module Invariant = Tpdb_windows.Invariant
module Pool = Tpdb_engine.Pool
module Parallel = Tpdb_engine.Parallel
module Spill = Tpdb_storage.Spill
module Metrics = Tpdb_obs.Metrics
module Trace = Tpdb_obs.Trace

type options = {
  algorithm : Overlap.algorithm;
  parallelism : int;
  sanitize : bool;
  prob_cache : bool;
  static_safe : bool;
  mem_budget : int;
  est_rows : (int * int) option;
}

(* Like the sanitizer's TPDB_SANITIZE and the CLI's TPDB_SLOW_MS: the
   environment supplies a default (megabytes), an explicit builder
   argument wins. *)
let env_mem_budget () =
  match Sys.getenv_opt "TPDB_MEM_BUDGET" with
  | None -> 0
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some mb when mb > 0 -> mb * 1024 * 1024
      | _ -> 0)

let options ?(algorithm = `Flat) ?(parallelism = 1) ?sanitize
    ?(prob_cache = true) ?(static_safe = false) ?mem_budget ?est_rows () =
  if parallelism < 1 then
    invalid_arg "Nj.options: parallelism must be at least 1";
  let sanitize =
    match sanitize with Some b -> b | None -> Invariant.env_enabled ()
  in
  let mem_budget =
    match mem_budget with Some b -> b | None -> env_mem_budget ()
  in
  if mem_budget < 0 then invalid_arg "Nj.options: mem_budget must be >= 0";
  { algorithm; parallelism; sanitize; prob_cache; static_safe; mem_budget;
    est_rows }

let default_options = options ()
let algorithm o = o.algorithm
let parallelism o = o.parallelism
let sanitize o = o.sanitize
let prob_cache o = o.prob_cache
let static_safe o = o.static_safe
let mem_budget o = o.mem_budget
let est_rows o = o.est_rows

let effective_parallelism o theta =
  if o.parallelism <= 1 then 1
  else match Theta.equi_keys theta with None -> 1 | Some _ -> o.parallelism

(* --- domain-parallel partitioned sweeps ------------------------------

   The windows of one equi-key group depend only on the tuples of that
   key, so both inputs are sharded on the key's hash, the sweep runs per
   partition on the shared domain pool, and the streams merge back in
   group order (Window.compare_group — the same order the sequential
   sweep emits, because it sorts r by Tuple.compare_fact_start, which
   compares exactly the group fields). Equal facts hash alike, so a
   group never spans partitions and the merged stream is identical to
   the sequential one. Only the sweep is parallel; output formation
   (lineage concatenation, probabilities) stays on the calling domain. *)

let sharded ~partitions ~theta r s =
  match Theta.equi_keys theta with
  | None -> None
  | Some (left_cols, right_cols) ->
      let key cols tp = Fact.hash (Fact.key cols (Tuple.fact tp)) in
      Some
        (Parallel.shard2 ~partitions ~left_key:(key left_cols)
           ~right_key:(key right_cols) (Relation.tuples r) (Relation.tuples s))

(* Runs [sweep : Relation.t -> Relation.t -> 'a] once per partition on
   the pool; [None] when θ has no equi-key to shard on. *)
let partitioned ~partitions ~theta ~sweep r s =
  match sharded ~partitions ~theta r s with
  | None -> None
  | Some parts ->
      let rschema = Relation.schema r and sschema = Relation.schema s in
      let indexed = Array.mapi (fun i part -> (i, part)) parts in
      Some
        (Parallel.map ~pool:(Pool.default ())
           (fun (i, (rp, sp)) ->
             if Metrics.enabled () then begin
               Metrics.observe Metrics.Partition_size
                 (List.length rp + List.length sp);
               Metrics.incr Metrics.Partition_sweeps
             end;
             let run () =
               Metrics.time Metrics.Domain_busy_ns (fun () ->
                   sweep
                     (Relation.of_tuples rschema rp)
                     (Relation.of_tuples sschema sp))
             in
             if Trace.enabled () then
               Trace.with_span ~cat:"partition"
                 (Printf.sprintf "partition-%d" i)
                 run
             else run ())
           indexed)

let merge ~options parts =
  let run () =
    Parallel.merge_grouped
      ?check:(if options.sanitize then Some Invariant.merge_check else None)
      ~compare_group:Window.compare_group parts
  in
  if Trace.enabled () then Trace.with_span ~cat:"merge" "merge-grouped" run
  else run ()

let merge3 ~options parts =
  ( merge ~options (Array.map (fun (l, _, _) -> l) parts),
    merge ~options (Array.map (fun (_, g, _) -> g) parts),
    merge ~options (Array.map (fun (_, _, u) -> u) parts) )

(* --- out-of-core spilling at the partition boundary -------------------

   When a memory budget is set and the estimated working set exceeds it,
   both inputs are hash-partitioned on the equi-key to columnar heap
   files (Spill / Heap_file.Writer), then each partition pair is read
   back through a budget-sized buffer pool and swept one pair at a
   time, strictly sequentially — peak memory is one partition pair plus
   the accumulated window output, the Grace bound. The partitioner
   composes the same fact-key hash and Parallel.bucket_of as the in-RAM
   parallel path and the per-partition streams go through the same
   group-order merge, so spilled output is tuple-for-tuple identical to
   the in-RAM result (the oracle's spilling config proves it). *)

let key_hash cols tp = Fact.hash (Fact.key cols (Tuple.fact tp))

(* [Some (keys, partitions)] when the join should spill: a budget is
   set, θ has an equi-key to partition on, and the working-set estimate
   (planner Stats cardinalities when available, live counting
   otherwise; sampled encoded tuple widths either way) exceeds the
   budget. *)
let spill_plan ~options ~theta r s =
  if options.mem_budget <= 0 then None
  else
    match Theta.equi_keys theta with
    | None -> None
    | Some keys ->
        let lrows, srows =
          match options.est_rows with
          | Some (l, sr) -> (Some l, Some sr)
          | None -> (None, None)
        in
        let est =
          Spill.estimate_bytes ?rows:lrows r + Spill.estimate_bytes ?rows:srows s
        in
        if est <= options.mem_budget then None
        else Some (keys, Spill.partitions_for ~budget:options.mem_budget ~est)

let spill_span name f =
  if Trace.enabled () then Trace.with_span ~cat:"spill" name f else f ()

(* Partition both input streams to disk, sweep the partition pairs one
   at a time through the pool, return the per-partition results in
   partition order. [sweep] is whatever the caller runs per pair (a
   window-stage pass or a tracking sweep). *)
let spilled ~partitions ~keys:(left_cols, right_cols) ~budget ~sweep left right
    =
  let bucket cols tp = Parallel.bucket_of ~partitions (key_hash cols tp) in
  let spill =
    spill_span "spill-partition" (fun () ->
        Spill.partition_pair ~partitions ~pool_pages:(Spill.pool_pages ~budget)
          ~left_key:(bucket left_cols) ~right_key:(bucket right_cols) left
          right)
  in
  Fun.protect
    ~finally:(fun () -> Spill.finish spill)
    (fun () ->
      Array.init partitions (fun i ->
          spill_span
            (Printf.sprintf "spill-sweep-%d" i)
            (fun () ->
              let rp = Spill.read_left spill i in
              let sp = Spill.read_right spill i in
              if Metrics.enabled () then begin
                Metrics.observe Metrics.Partition_size
                  (Relation.cardinality rp + Relation.cardinality sp);
                Metrics.incr Metrics.Partition_sweeps
              end;
              Metrics.time Metrics.Domain_busy_ns (fun () -> sweep rp sp))))

let spilled_of_relations ~partitions ~keys ~budget ~sweep r s =
  spilled ~partitions ~keys ~budget ~sweep
    (Relation.schema r, Relation.to_seq r)
    (Relation.schema s, Relation.to_seq s)

(* --- the window pipeline --------------------------------------------- *)

(* With a trace sink installed the stage's stream is forced inside the
   span so the span measures the stage's actual work; without one the
   stream passes through untouched — lazy pipelines stay lazy and the
   only cost is one atomic load. *)
let traced name stream =
  if Trace.enabled () then
    Trace.with_span ~cat:"sweep" name (fun () ->
        List.to_seq (List.of_seq stream))
  else stream

(* The default [`Flat] executor computes each stage's windows in one
   fused pass over the flat endpoint arrays (Flat_join); the legacy
   algorithms chain the three Seq stages. The flat pass still opens the
   same nested spans as the legacy chain ("lawan" > "lawau" > "overlap",
   with the fused work attributed to the innermost), so EXPLAIN ANALYZE
   and the Chrome traces stay comparable across executors. *)
let overlap_stage ~options ~theta r s =
  traced "overlap"
    (match options.algorithm with
    | `Flat ->
        Flat_join.left ~stage:`Wo ~sanitize:options.sanitize ~theta r s
    | (`Hash | `Merge | `Index | `Nested_loop) as algorithm ->
        Overlap.left ~algorithm ~sanitize:options.sanitize ~theta r s)

let wuo_stage ~options ~theta r s =
  match options.algorithm with
  | `Flat ->
      traced "lawau"
        (traced "overlap"
           (Flat_join.left ~stage:`Wuo ~sanitize:options.sanitize ~theta r s))
  | `Hash | `Merge | `Index | `Nested_loop ->
      traced "lawau"
        (Lawau.extend ~sanitize:options.sanitize
           (overlap_stage ~options ~theta r s))

let wuon_stage ~options ~theta r s =
  match options.algorithm with
  | `Flat ->
      traced "lawan"
        (traced "lawau"
           (traced "overlap"
              (Flat_join.left ~stage:`Wuon ~sanitize:options.sanitize ~theta r
                 s)))
  | `Hash | `Merge | `Index | `Nested_loop ->
      traced "lawan"
        (Lawan.extend ~sanitize:options.sanitize
           (wuo_stage ~options ~theta r s))

(* A left-side window stream: spilled to disk when the working set
   exceeds the memory budget (which overrides parallelism — the
   spilled sweep is strictly sequential to keep its memory bound),
   domain-parallel when options and θ allow, sequential otherwise. All
   three paths produce the identical stream.

   [keep] is the formation filter of the operator consuming the stream
   (overlapping-only for inner, non-overlapping for anti). The spilled
   sweep applies it inside each per-partition pass: without it every
   partition's full window list survives until formation filters the
   merged stream, making peak memory O(input) for operators whose
   output is much smaller than their input — exactly the regime that
   spills. Filtering before the merge is sound because the merge is a
   stable group-order merge of per-partition sorted lists: dropping
   elements of each sorted list keeps it sorted and keeps the survivors'
   relative order, so merging the filtered lists equals filtering the
   merged list. *)
let windows_with ?keep ~options ~theta stage r s =
  let p = effective_parallelism options theta in
  let sequential () = stage ~options ~theta r s in
  let sweep rp sp = List.of_seq (stage ~options ~theta rp sp) in
  match spill_plan ~options ~theta r s with
  | Some (keys, partitions) ->
      let sweep =
        match keep with
        | None -> sweep
        | Some keep ->
            fun rp sp ->
              List.of_seq (Seq.filter keep (stage ~options ~theta rp sp))
      in
      List.to_seq
        (merge ~options
           (spilled_of_relations ~partitions ~keys ~budget:options.mem_budget
              ~sweep r s))
  | None -> (
      if p <= 1 then sequential ()
      else
        match partitioned ~partitions:p ~theta ~sweep r s with
        | Some parts -> List.to_seq (merge ~options parts)
        | None -> sequential ())

let windows_wuo ?(options = default_options) ~theta r s =
  windows_with ~options ~theta wuo_stage r s

let windows_wuon ?(options = default_options) ~theta r s =
  windows_with ~options ~theta wuon_stage r s

let env_default env r s =
  match env with Some e -> e | None -> Relation.prob_env [ r; s ]

(* The probability function output formation runs through: memoized on
   the calling domain's long-lived cache (keyed on hash-consed formula
   ids, reset when [env] changes) unless the option turns it off. On a
   statically safe plan ([static_safe], set from the planner's read-once
   classification) misses go through [Prob.factorize] — no per-formula
   read-once check, no BDD fallback; the sanitizer's output check
   cross-validates against [Prob.compute], so a misclassified plan fails
   loudly under TPDB_SANITIZE=1. *)
let prob_fn ~options ~env =
  let base = if options.static_safe then Prob.factorize else Prob.compute in
  if options.prob_cache then begin
    let cache = Prob.Cache.domain () in
    fun lineage -> Prob.Cache.compute_with cache env ~miss:base lineage
  end
  else fun lineage -> base env lineage

(* The right-hand sweep of right/full outer joins: the overlapping
   windows arrive mirrored and re-sorted so they are grouped by the s
   tuple; LAWAU/LAWAN then find the s side's unmatched and negating
   windows (the overlapping copies are dropped — the left pass emits
   them already). *)
let right_side_windows ~sanitize windows =
  windows
  |> Seq.filter (fun w -> Window.kind w = Window.Overlapping)
  |> Seq.map Window.mirror
  |> List.of_seq
  |> List.sort Window.compare_group_start
  |> List.to_seq
  |> Lawau.extend ~sanitize
  |> Lawan.extend ~sanitize
  |> Seq.filter (fun w -> Window.kind w <> Window.Overlapping)

(* One partition (or the whole input, when sequential) of a right/full
   outer join: one tracking pass of the conventional join, the left-side
   stream (overlapping-only for the right outer join, LAWAU+LAWAN
   extended for the full outer join), the right side's gap windows, and
   the spanning windows of the never-matched s tuples. *)
let tracked_sweep ~options ~extend_left ~theta r s =
  let sanitize = options.sanitize in
  match options.algorithm with
  | `Flat ->
      (* One flat pass produces the fully extended left stream (or the
         conventional-join stream when the left side needs no
         extension); the raw overlapping windows for the mirrored
         right-side sweep are a filter away. *)
      let stage = if extend_left then `Wuon else `Wo in
      let stream, tracker =
        Flat_join.left_tracking ~stage ~sanitize ~theta r s
      in
      let all =
        if Trace.enabled () then
          if extend_left then
            Trace.with_span ~cat:"sweep" "lawan" (fun () ->
                Trace.with_span ~cat:"sweep" "lawau" (fun () ->
                    Trace.with_span ~cat:"sweep" "overlap" (fun () ->
                        List.of_seq stream)))
          else
            Trace.with_span ~cat:"sweep" "overlap" (fun () ->
                List.of_seq stream)
        else List.of_seq stream
      in
      let left =
        if extend_left then all
        else List.filter (fun w -> Window.kind w = Window.Overlapping) all
      in
      let gaps =
        let run () =
          List.of_seq (right_side_windows ~sanitize (List.to_seq all))
        in
        if Trace.enabled () then
          Trace.with_span ~cat:"sweep" "right-sweep" run
        else run ()
      in
      let spanning = List.of_seq (Flat_join.unmatched_right tracker) in
      (left, gaps, spanning)
  | (`Hash | `Merge | `Index | `Nested_loop) as algorithm ->
      let stream, tracker =
        Overlap.left_tracking ~algorithm ~sanitize ~theta r s
      in
      let raw =
        if Trace.enabled () then
          Trace.with_span ~cat:"sweep" "overlap" (fun () ->
              List.of_seq stream)
        else List.of_seq stream
      in
      let left =
        if extend_left then
          if Trace.enabled () then
            let wuo =
              Trace.with_span ~cat:"sweep" "lawau" (fun () ->
                  List.of_seq (Lawau.extend ~sanitize (List.to_seq raw)))
            in
            Trace.with_span ~cat:"sweep" "lawan" (fun () ->
                List.of_seq (Lawan.extend ~sanitize (List.to_seq wuo)))
          else
            List.of_seq
              (Lawan.extend ~sanitize
                 (Lawau.extend ~sanitize (List.to_seq raw)))
        else List.filter (fun w -> Window.kind w = Window.Overlapping) raw
      in
      let gaps =
        let run () =
          List.of_seq (right_side_windows ~sanitize (List.to_seq raw))
        in
        if Trace.enabled () then
          Trace.with_span ~cat:"sweep" "right-sweep" run
        else run ()
      in
      let spanning = List.of_seq (Overlap.unmatched_right tracker) in
      (left, gaps, spanning)

let tracked_join ~options ~extend_left ~theta r s =
  let p = effective_parallelism options theta in
  let sweep rp sp = tracked_sweep ~options ~extend_left ~theta rp sp in
  match spill_plan ~options ~theta r s with
  | Some (keys, partitions) ->
      merge3 ~options
        (spilled_of_relations ~partitions ~keys ~budget:options.mem_budget
           ~sweep r s)
  | None -> (
      if p <= 1 then sweep r s
      else
        match partitioned ~partitions:p ~theta ~sweep r s with
        | Some parts -> merge3 ~options parts
        | None -> sweep r s)

(* --- output formation per operator -----------------------------------

   Formation is split from window production: the [form_*] functions
   turn a window stream (or tracking triple) into the result relation
   given only the input schemas, so the materialized path ([exec_*],
   which runs [windows_with]/[tracked_join] on relations) and the
   streamed out-of-core path ([join_spilled], which never materializes
   its inputs) share them verbatim. *)

let form_inner ~prob ~rschema ~sschema windows =
  let pad = Schema.arity sschema in
  let tuples =
    windows
    |> Seq.filter (fun w -> Window.kind w = Window.Overlapping)
    |> Seq.map (Concat.tuple_of_window ~prob ~side:Concat.Left ~pad)
    |> List.of_seq
  in
  Relation.of_tuples (Schema.join rschema sschema) tuples

let form_anti ~prob ~rschema ~sschema windows =
  let tuples =
    windows
    |> Seq.filter (fun w -> Window.kind w <> Window.Overlapping)
    |> Seq.map (Concat.tuple_of_window_no_fs ~prob)
    |> List.of_seq
  in
  let schema =
    Schema.rename (Schema.name rschema ^ "_anti_" ^ Schema.name sschema) rschema
  in
  Relation.of_tuples schema tuples

let form_left_outer ~prob ~rschema ~sschema windows =
  let pad = Schema.arity sschema in
  let tuples =
    windows
    |> Seq.map (Concat.tuple_of_window ~prob ~side:Concat.Left ~pad)
    |> List.of_seq
  in
  Relation.of_tuples (Schema.join rschema sschema) tuples

let form_right_outer ~prob ~rschema ~sschema (wo, gaps, spanning) =
  let pad_r = Schema.arity rschema in
  let pad_s = Schema.arity sschema in
  let pairs =
    List.to_seq wo
    |> Seq.map (Concat.tuple_of_window ~prob ~side:Concat.Left ~pad:pad_s)
  in
  let right_side =
    Seq.append (List.to_seq gaps) (List.to_seq spanning)
    |> Seq.map (Concat.tuple_of_window ~prob ~side:Concat.Right ~pad:pad_r)
  in
  let tuples = List.of_seq (Seq.append pairs right_side) in
  Relation.of_tuples (Schema.join rschema sschema) tuples

let form_full_outer ~prob ~rschema ~sschema (left, gaps, spanning) =
  let pad_r = Schema.arity rschema in
  let pad_s = Schema.arity sschema in
  let left_side =
    List.to_seq left
    |> Seq.map (Concat.tuple_of_window ~prob ~side:Concat.Left ~pad:pad_s)
  in
  let right_side =
    Seq.append (List.to_seq gaps) (List.to_seq spanning)
    |> Seq.map (Concat.tuple_of_window ~prob ~side:Concat.Right ~pad:pad_r)
  in
  let tuples = List.of_seq (Seq.append left_side right_side) in
  Relation.of_tuples (Schema.join rschema sschema) tuples

let keep_overlapping w = Window.kind w = Window.Overlapping
let keep_non_overlapping w = Window.kind w <> Window.Overlapping

let exec_inner ~options ~prob ~theta r s =
  form_inner ~prob ~rschema:(Relation.schema r) ~sschema:(Relation.schema s)
    (windows_with ~keep:keep_overlapping ~options ~theta overlap_stage r s)

let exec_anti ~options ~prob ~theta r s =
  form_anti ~prob ~rschema:(Relation.schema r) ~sschema:(Relation.schema s)
    (windows_with ~keep:keep_non_overlapping ~options ~theta wuon_stage r s)

let exec_left_outer ~options ~prob ~theta r s =
  form_left_outer ~prob ~rschema:(Relation.schema r)
    ~sschema:(Relation.schema s)
    (windows_with ~options ~theta wuon_stage r s)

let exec_right_outer ~options ~prob ~theta r s =
  form_right_outer ~prob ~rschema:(Relation.schema r)
    ~sschema:(Relation.schema s)
    (tracked_join ~options ~extend_left:false ~theta r s)

let exec_full_outer ~options ~prob ~theta r s =
  form_full_outer ~prob ~rschema:(Relation.schema r)
    ~sschema:(Relation.schema s)
    (tracked_join ~options ~extend_left:true ~theta r s)

(* --- the unified entry point ----------------------------------------- *)

type join_kind = Inner | Anti | Left | Right | Full

let all_kinds = [ Inner; Anti; Left; Right; Full ]

let kind_name = function
  | Inner -> "inner"
  | Anti -> "anti"
  | Left -> "left-outer"
  | Right -> "right-outer"
  | Full -> "full-outer"

let join ?(options = default_options) ?env ~kind ~theta r s =
  let env = env_default env r s in
  let prob = prob_fn ~options ~env in
  if Metrics.enabled () then
    Metrics.add Metrics.Tuples_in
      (Relation.cardinality r + Relation.cardinality s);
  let exec =
    match kind with
    | Inner -> exec_inner
    | Anti -> exec_anti
    | Left -> exec_left_outer
    | Right -> exec_right_outer
    | Full -> exec_full_outer
  in
  let run () = exec ~options ~prob ~theta r s in
  let result =
    if Trace.enabled () then
      Trace.with_span ~cat:"join" ("nj-" ^ kind_name kind) run
    else run ()
  in
  if Metrics.enabled () then
    Metrics.add Metrics.Tuples_out (Relation.cardinality result);
  if options.sanitize then
    Invariant.check_output
      ~recompute:(fun lineage -> Prob.compute env lineage)
      (Relation.tuples result);
  result

(* Out-of-core join over tuple streams: the inputs are never
   materialized — they stream straight into the spill partitioner — so
   peak memory is one partition pair plus the output, regardless of
   input cardinality. This is the entry the spill-scale bench drives at
   10^6–10^7 tuples. Requires an equi-θ and a positive mem_budget;
   [env] is explicit because the default environment would need the
   materialized inputs. *)
let join_spilled ?(options = default_options) ?partitions ~env ~kind ~theta
    ~left:(rschema, rseq) ~right:(sschema, sseq) () =
  let budget = options.mem_budget in
  if budget <= 0 then
    invalid_arg "Nj.join_spilled: options must carry a positive mem_budget";
  let keys =
    match Theta.equi_keys theta with
    | Some keys -> keys
    | None -> invalid_arg "Nj.join_spilled: theta has no equi keys"
  in
  let partitions =
    match partitions with
    | Some p ->
        if p < 1 then invalid_arg "Nj.join_spilled: partitions must be >= 1"
        else min p 256
    | None -> (
        (* without materialized inputs the width cannot be sampled:
           assume ~48 encoded bytes per tuple under the planner's (or
           caller's) row estimate, falling back to a fixed fan-out *)
        match options.est_rows with
        | Some (l, r) ->
            Spill.partitions_for ~budget ~est:((l + r) * 48 * 8)
        | None -> 64)
  in
  let prob = prob_fn ~options ~env in
  let run () =
    match kind with
    | (Inner | Anti | Left) as kind ->
        let stage =
          match kind with Inner -> overlap_stage | _ -> wuon_stage
        in
        (* formation's filter, applied inside the per-partition sweep so
           windows formation would discard never accumulate across the
           merge (see [windows_with]) *)
        let keep =
          match kind with
          | Inner -> keep_overlapping
          | Anti -> keep_non_overlapping
          | _ -> fun _ -> true
        in
        let sweep rp sp =
          List.of_seq (Seq.filter keep (stage ~options ~theta rp sp))
        in
        let windows =
          List.to_seq
            (merge ~options
               (spilled ~partitions ~keys ~budget ~sweep (rschema, rseq)
                  (sschema, sseq)))
        in
        (match kind with
        | Inner -> form_inner ~prob ~rschema ~sschema windows
        | Anti -> form_anti ~prob ~rschema ~sschema windows
        | _ -> form_left_outer ~prob ~rschema ~sschema windows)
    | (Right | Full) as kind ->
        let extend_left = (match kind with Full -> true | _ -> false) in
        let sweep rp sp = tracked_sweep ~options ~extend_left ~theta rp sp in
        let triple =
          merge3 ~options
            (spilled ~partitions ~keys ~budget ~sweep (rschema, rseq)
               (sschema, sseq))
        in
        if extend_left then form_full_outer ~prob ~rschema ~sschema triple
        else form_right_outer ~prob ~rschema ~sschema triple
  in
  let result =
    if Trace.enabled () then
      Trace.with_span ~cat:"join" ("nj-" ^ kind_name kind ^ "-spilled") run
    else run ()
  in
  if Metrics.enabled () then
    Metrics.add Metrics.Tuples_out (Relation.cardinality result);
  if options.sanitize then
    Invariant.check_output
      ~recompute:(fun lineage -> Prob.compute env lineage)
      (Relation.tuples result);
  result

let inner ?options ?env ~theta r s = join ?options ?env ~kind:Inner ~theta r s
let anti ?options ?env ~theta r s = join ?options ?env ~kind:Anti ~theta r s
let left_outer ?options ?env ~theta r s = join ?options ?env ~kind:Left ~theta r s

let right_outer ?options ?env ~theta r s =
  join ?options ?env ~kind:Right ~theta r s

let full_outer ?options ?env ~theta r s = join ?options ?env ~kind:Full ~theta r s
let run = join
