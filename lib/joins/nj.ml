module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Prob = Tpdb_lineage.Prob
module Theta = Tpdb_windows.Theta
module Window = Tpdb_windows.Window
module Overlap = Tpdb_windows.Overlap
module Lawau = Tpdb_windows.Lawau
module Lawan = Tpdb_windows.Lawan
module Flat_join = Tpdb_windows.Flat_join
module Invariant = Tpdb_windows.Invariant
module Pool = Tpdb_engine.Pool
module Parallel = Tpdb_engine.Parallel
module Metrics = Tpdb_obs.Metrics
module Trace = Tpdb_obs.Trace

type options = {
  algorithm : Overlap.algorithm;
  parallelism : int;
  sanitize : bool;
  prob_cache : bool;
  static_safe : bool;
}

let options ?(algorithm = `Flat) ?(parallelism = 1) ?sanitize
    ?(prob_cache = true) ?(static_safe = false) () =
  if parallelism < 1 then
    invalid_arg "Nj.options: parallelism must be at least 1";
  let sanitize =
    match sanitize with Some b -> b | None -> Invariant.env_enabled ()
  in
  { algorithm; parallelism; sanitize; prob_cache; static_safe }

let default_options = options ()
let algorithm o = o.algorithm
let parallelism o = o.parallelism
let sanitize o = o.sanitize
let prob_cache o = o.prob_cache
let static_safe o = o.static_safe

let effective_parallelism o theta =
  if o.parallelism <= 1 then 1
  else match Theta.equi_keys theta with None -> 1 | Some _ -> o.parallelism

(* --- domain-parallel partitioned sweeps ------------------------------

   The windows of one equi-key group depend only on the tuples of that
   key, so both inputs are sharded on the key's hash, the sweep runs per
   partition on the shared domain pool, and the streams merge back in
   group order (Window.compare_group — the same order the sequential
   sweep emits, because it sorts r by Tuple.compare_fact_start, which
   compares exactly the group fields). Equal facts hash alike, so a
   group never spans partitions and the merged stream is identical to
   the sequential one. Only the sweep is parallel; output formation
   (lineage concatenation, probabilities) stays on the calling domain. *)

let sharded ~partitions ~theta r s =
  match Theta.equi_keys theta with
  | None -> None
  | Some (left_cols, right_cols) ->
      let key cols tp = Fact.hash (Fact.key cols (Tuple.fact tp)) in
      Some
        (Parallel.shard2 ~partitions ~left_key:(key left_cols)
           ~right_key:(key right_cols) (Relation.tuples r) (Relation.tuples s))

(* Runs [sweep : Relation.t -> Relation.t -> 'a] once per partition on
   the pool; [None] when θ has no equi-key to shard on. *)
let partitioned ~partitions ~theta ~sweep r s =
  match sharded ~partitions ~theta r s with
  | None -> None
  | Some parts ->
      let rschema = Relation.schema r and sschema = Relation.schema s in
      let indexed = Array.mapi (fun i part -> (i, part)) parts in
      Some
        (Parallel.map ~pool:(Pool.default ())
           (fun (i, (rp, sp)) ->
             if Metrics.enabled () then begin
               Metrics.observe Metrics.Partition_size
                 (List.length rp + List.length sp);
               Metrics.incr Metrics.Partition_sweeps
             end;
             let run () =
               Metrics.time Metrics.Domain_busy_ns (fun () ->
                   sweep
                     (Relation.of_tuples rschema rp)
                     (Relation.of_tuples sschema sp))
             in
             if Trace.enabled () then
               Trace.with_span ~cat:"partition"
                 (Printf.sprintf "partition-%d" i)
                 run
             else run ())
           indexed)

let merge ~options parts =
  let run () =
    Parallel.merge_grouped
      ?check:(if options.sanitize then Some Invariant.merge_check else None)
      ~compare_group:Window.compare_group parts
  in
  if Trace.enabled () then Trace.with_span ~cat:"merge" "merge-grouped" run
  else run ()

(* --- the window pipeline --------------------------------------------- *)

(* With a trace sink installed the stage's stream is forced inside the
   span so the span measures the stage's actual work; without one the
   stream passes through untouched — lazy pipelines stay lazy and the
   only cost is one atomic load. *)
let traced name stream =
  if Trace.enabled () then
    Trace.with_span ~cat:"sweep" name (fun () ->
        List.to_seq (List.of_seq stream))
  else stream

(* The default [`Flat] executor computes each stage's windows in one
   fused pass over the flat endpoint arrays (Flat_join); the legacy
   algorithms chain the three Seq stages. The flat pass still opens the
   same nested spans as the legacy chain ("lawan" > "lawau" > "overlap",
   with the fused work attributed to the innermost), so EXPLAIN ANALYZE
   and the Chrome traces stay comparable across executors. *)
let overlap_stage ~options ~theta r s =
  traced "overlap"
    (match options.algorithm with
    | `Flat ->
        Flat_join.left ~stage:`Wo ~sanitize:options.sanitize ~theta r s
    | (`Hash | `Merge | `Index | `Nested_loop) as algorithm ->
        Overlap.left ~algorithm ~sanitize:options.sanitize ~theta r s)

let wuo_stage ~options ~theta r s =
  match options.algorithm with
  | `Flat ->
      traced "lawau"
        (traced "overlap"
           (Flat_join.left ~stage:`Wuo ~sanitize:options.sanitize ~theta r s))
  | `Hash | `Merge | `Index | `Nested_loop ->
      traced "lawau"
        (Lawau.extend ~sanitize:options.sanitize
           (overlap_stage ~options ~theta r s))

let wuon_stage ~options ~theta r s =
  match options.algorithm with
  | `Flat ->
      traced "lawan"
        (traced "lawau"
           (traced "overlap"
              (Flat_join.left ~stage:`Wuon ~sanitize:options.sanitize ~theta r
                 s)))
  | `Hash | `Merge | `Index | `Nested_loop ->
      traced "lawan"
        (Lawan.extend ~sanitize:options.sanitize
           (wuo_stage ~options ~theta r s))

(* A left-side window stream, parallel when options and θ allow. *)
let windows_with ~options ~theta stage r s =
  let p = effective_parallelism options theta in
  let sequential () = stage ~options ~theta r s in
  if p <= 1 then sequential ()
  else
    match
      partitioned ~partitions:p ~theta
        ~sweep:(fun rp sp -> List.of_seq (stage ~options ~theta rp sp))
        r s
    with
    | Some parts -> List.to_seq (merge ~options parts)
    | None -> sequential ()

let windows_wuo ?(options = default_options) ~theta r s =
  windows_with ~options ~theta wuo_stage r s

let windows_wuon ?(options = default_options) ~theta r s =
  windows_with ~options ~theta wuon_stage r s

let env_default env r s =
  match env with Some e -> e | None -> Relation.prob_env [ r; s ]

(* The probability function output formation runs through: memoized on
   the calling domain's long-lived cache (keyed on hash-consed formula
   ids, reset when [env] changes) unless the option turns it off. On a
   statically safe plan ([static_safe], set from the planner's read-once
   classification) misses go through [Prob.factorize] — no per-formula
   read-once check, no BDD fallback; the sanitizer's output check
   cross-validates against [Prob.compute], so a misclassified plan fails
   loudly under TPDB_SANITIZE=1. *)
let prob_fn ~options ~env =
  let base = if options.static_safe then Prob.factorize else Prob.compute in
  if options.prob_cache then begin
    let cache = Prob.Cache.domain () in
    fun lineage -> Prob.Cache.compute_with cache env ~miss:base lineage
  end
  else fun lineage -> base env lineage

(* The right-hand sweep of right/full outer joins: the overlapping
   windows arrive mirrored and re-sorted so they are grouped by the s
   tuple; LAWAU/LAWAN then find the s side's unmatched and negating
   windows (the overlapping copies are dropped — the left pass emits
   them already). *)
let right_side_windows ~sanitize windows =
  windows
  |> Seq.filter (fun w -> Window.kind w = Window.Overlapping)
  |> Seq.map Window.mirror
  |> List.of_seq
  |> List.sort Window.compare_group_start
  |> List.to_seq
  |> Lawau.extend ~sanitize
  |> Lawan.extend ~sanitize
  |> Seq.filter (fun w -> Window.kind w <> Window.Overlapping)

(* One partition (or the whole input, when sequential) of a right/full
   outer join: one tracking pass of the conventional join, the left-side
   stream (overlapping-only for the right outer join, LAWAU+LAWAN
   extended for the full outer join), the right side's gap windows, and
   the spanning windows of the never-matched s tuples. *)
let tracked_sweep ~options ~extend_left ~theta r s =
  let sanitize = options.sanitize in
  match options.algorithm with
  | `Flat ->
      (* One flat pass produces the fully extended left stream (or the
         conventional-join stream when the left side needs no
         extension); the raw overlapping windows for the mirrored
         right-side sweep are a filter away. *)
      let stage = if extend_left then `Wuon else `Wo in
      let stream, tracker =
        Flat_join.left_tracking ~stage ~sanitize ~theta r s
      in
      let all =
        if Trace.enabled () then
          if extend_left then
            Trace.with_span ~cat:"sweep" "lawan" (fun () ->
                Trace.with_span ~cat:"sweep" "lawau" (fun () ->
                    Trace.with_span ~cat:"sweep" "overlap" (fun () ->
                        List.of_seq stream)))
          else
            Trace.with_span ~cat:"sweep" "overlap" (fun () ->
                List.of_seq stream)
        else List.of_seq stream
      in
      let left =
        if extend_left then all
        else List.filter (fun w -> Window.kind w = Window.Overlapping) all
      in
      let gaps =
        let run () =
          List.of_seq (right_side_windows ~sanitize (List.to_seq all))
        in
        if Trace.enabled () then
          Trace.with_span ~cat:"sweep" "right-sweep" run
        else run ()
      in
      let spanning = List.of_seq (Flat_join.unmatched_right tracker) in
      (left, gaps, spanning)
  | (`Hash | `Merge | `Index | `Nested_loop) as algorithm ->
      let stream, tracker =
        Overlap.left_tracking ~algorithm ~sanitize ~theta r s
      in
      let raw =
        if Trace.enabled () then
          Trace.with_span ~cat:"sweep" "overlap" (fun () ->
              List.of_seq stream)
        else List.of_seq stream
      in
      let left =
        if extend_left then
          if Trace.enabled () then
            let wuo =
              Trace.with_span ~cat:"sweep" "lawau" (fun () ->
                  List.of_seq (Lawau.extend ~sanitize (List.to_seq raw)))
            in
            Trace.with_span ~cat:"sweep" "lawan" (fun () ->
                List.of_seq (Lawan.extend ~sanitize (List.to_seq wuo)))
          else
            List.of_seq
              (Lawan.extend ~sanitize
                 (Lawau.extend ~sanitize (List.to_seq raw)))
        else List.filter (fun w -> Window.kind w = Window.Overlapping) raw
      in
      let gaps =
        let run () =
          List.of_seq (right_side_windows ~sanitize (List.to_seq raw))
        in
        if Trace.enabled () then
          Trace.with_span ~cat:"sweep" "right-sweep" run
        else run ()
      in
      let spanning = List.of_seq (Overlap.unmatched_right tracker) in
      (left, gaps, spanning)

let tracked_join ~options ~extend_left ~theta r s =
  let p = effective_parallelism options theta in
  let sweep rp sp = tracked_sweep ~options ~extend_left ~theta rp sp in
  let merged parts =
    ( merge ~options (Array.map (fun (l, _, _) -> l) parts),
      merge ~options (Array.map (fun (_, g, _) -> g) parts),
      merge ~options (Array.map (fun (_, _, u) -> u) parts) )
  in
  if p <= 1 then sweep r s
  else
    match partitioned ~partitions:p ~theta ~sweep r s with
    | Some parts -> merged parts
    | None -> sweep r s

(* --- output formation per operator ----------------------------------- *)

let exec_inner ~options ~prob ~theta r s =
  let pad = Schema.arity (Relation.schema s) in
  let tuples =
    windows_with ~options ~theta overlap_stage r s
    |> Seq.filter (fun w -> Window.kind w = Window.Overlapping)
    |> Seq.map (Concat.tuple_of_window ~prob ~side:Concat.Left ~pad)
    |> List.of_seq
  in
  Relation.of_tuples (Schema.join (Relation.schema r) (Relation.schema s)) tuples

let exec_anti ~options ~prob ~theta r s =
  let tuples =
    windows_with ~options ~theta wuon_stage r s
    |> Seq.filter (fun w -> Window.kind w <> Window.Overlapping)
    |> Seq.map (Concat.tuple_of_window_no_fs ~prob)
    |> List.of_seq
  in
  let schema =
    Schema.rename
      (Relation.name r ^ "_anti_" ^ Relation.name s)
      (Relation.schema r)
  in
  Relation.of_tuples schema tuples

let exec_left_outer ~options ~prob ~theta r s =
  let pad = Schema.arity (Relation.schema s) in
  let tuples =
    windows_with ~options ~theta wuon_stage r s
    |> Seq.map (Concat.tuple_of_window ~prob ~side:Concat.Left ~pad)
    |> List.of_seq
  in
  Relation.of_tuples (Schema.join (Relation.schema r) (Relation.schema s)) tuples

let exec_right_outer ~options ~prob ~theta r s =
  let pad_r = Schema.arity (Relation.schema r) in
  let pad_s = Schema.arity (Relation.schema s) in
  let wo, gaps, spanning =
    tracked_join ~options ~extend_left:false ~theta r s
  in
  let pairs =
    List.to_seq wo
    |> Seq.map (Concat.tuple_of_window ~prob ~side:Concat.Left ~pad:pad_s)
  in
  let right_side =
    Seq.append (List.to_seq gaps) (List.to_seq spanning)
    |> Seq.map (Concat.tuple_of_window ~prob ~side:Concat.Right ~pad:pad_r)
  in
  let tuples = List.of_seq (Seq.append pairs right_side) in
  Relation.of_tuples (Schema.join (Relation.schema r) (Relation.schema s)) tuples

let exec_full_outer ~options ~prob ~theta r s =
  let pad_r = Schema.arity (Relation.schema r) in
  let pad_s = Schema.arity (Relation.schema s) in
  let left, gaps, spanning =
    tracked_join ~options ~extend_left:true ~theta r s
  in
  let left_side =
    List.to_seq left
    |> Seq.map (Concat.tuple_of_window ~prob ~side:Concat.Left ~pad:pad_s)
  in
  let right_side =
    Seq.append (List.to_seq gaps) (List.to_seq spanning)
    |> Seq.map (Concat.tuple_of_window ~prob ~side:Concat.Right ~pad:pad_r)
  in
  let tuples = List.of_seq (Seq.append left_side right_side) in
  Relation.of_tuples (Schema.join (Relation.schema r) (Relation.schema s)) tuples

(* --- the unified entry point ----------------------------------------- *)

type join_kind = Inner | Anti | Left | Right | Full

let all_kinds = [ Inner; Anti; Left; Right; Full ]

let kind_name = function
  | Inner -> "inner"
  | Anti -> "anti"
  | Left -> "left-outer"
  | Right -> "right-outer"
  | Full -> "full-outer"

let join ?(options = default_options) ?env ~kind ~theta r s =
  let env = env_default env r s in
  let prob = prob_fn ~options ~env in
  if Metrics.enabled () then
    Metrics.add Metrics.Tuples_in
      (Relation.cardinality r + Relation.cardinality s);
  let exec =
    match kind with
    | Inner -> exec_inner
    | Anti -> exec_anti
    | Left -> exec_left_outer
    | Right -> exec_right_outer
    | Full -> exec_full_outer
  in
  let run () = exec ~options ~prob ~theta r s in
  let result =
    if Trace.enabled () then
      Trace.with_span ~cat:"join" ("nj-" ^ kind_name kind) run
    else run ()
  in
  if Metrics.enabled () then
    Metrics.add Metrics.Tuples_out (Relation.cardinality result);
  if options.sanitize then
    Invariant.check_output
      ~recompute:(fun lineage -> Prob.compute env lineage)
      (Relation.tuples result);
  result

let inner ?options ?env ~theta r s = join ?options ?env ~kind:Inner ~theta r s
let anti ?options ?env ~theta r s = join ?options ?env ~kind:Anti ~theta r s
let left_outer ?options ?env ~theta r s = join ?options ?env ~kind:Left ~theta r s

let right_outer ?options ?env ~theta r s =
  join ?options ?env ~kind:Right ~theta r s

let full_outer ?options ?env ~theta r s = join ?options ?env ~kind:Full ~theta r s
let run = join
