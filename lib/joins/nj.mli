(** NJ — the paper's operators for TP joins with negation, assembled from
    generalized lineage-aware temporal windows (paper Table II):

    - anti join [r ▷ s]: WU(r;s,θ) ∪ WN(r;s,θ)
    - left outer [r ⟕ s]: WO ∪ WU(r;s,θ) ∪ WN(r;s,θ)
    - right outer [r ⟖ s]: WO ∪ WU(s;r,θ) ∪ WN(s;r,θ)
    - full outer [r ⟗ s]: all five sets, with WO computed once
    - inner join [r ⋈ s]: WO only (for completeness)

    All five are served by the single entry point {!join}, selected by
    {!join_kind}; the named operators remain as one-line wrappers. The
    default pipeline is the flat struct-of-arrays sweep
    ({!Tpdb_windows.Flat_join}) → output formation ({!Concat}); the
    legacy {!Tpdb_windows.Overlap.left} → {!Tpdb_windows.Lawau} →
    {!Tpdb_windows.Lawan} chain is selectable per {!options} as the
    ablation baseline. The full outer join additionally mirrors the
    overlapping windows to sweep the [s] side without executing the join
    a second time.

    {2 Parallel execution}

    With [parallelism = P > 1] and a θ containing at least one equality
    atom, both inputs are sharded on the equi-join key into [P]
    partitions and the window sweep of every partition runs on a
    separate domain of the shared {!Tpdb_engine.Pool}; the per-partition
    streams are then merged back deterministically (by group, lower
    partition id first — see {!Tpdb_engine.Parallel}), so the result is
    identical to the sequential one, tuple for tuple, including order,
    lineage and probability. A θ without an equality atom silently falls
    back to the sequential sweep ({!effective_parallelism} reports the
    decision). Output formation — lineage concatenation and probability
    computation — always runs on the calling domain.

    Inputs are assumed duplicate-free ({!Tpdb_relation.Relation.is_duplicate_free}),
    as the paper assumes of TP relations. [env] supplies the marginal
    probability of every base variable; it defaults to the variables of
    the two inputs and must be passed explicitly when joining derived
    relations. *)

module Relation = Tpdb_relation.Relation
module Prob = Tpdb_lineage.Prob
module Theta = Tpdb_windows.Theta
module Window = Tpdb_windows.Window
module Overlap = Tpdb_windows.Overlap

type options
(** Execution options. Abstract: build with {!options} so that future
    fields (like [parallelism], added after the first release) never
    break call sites. *)

val options :
  ?algorithm:Overlap.algorithm ->
  ?parallelism:int ->
  ?sanitize:bool ->
  ?prob_cache:bool ->
  ?static_safe:bool ->
  ?mem_budget:int ->
  ?est_rows:int * int ->
  unit ->
  options
(** Builder, with today's defaults spelled out:
    - [algorithm] (default [`Flat]): sweep executor. [`Flat] runs the
      struct-of-arrays pipeline ({!Tpdb_windows.Flat_join}) that computes
      all requested window classes in one pass over flat endpoint arrays;
      the other variants select the legacy [Overlap] → [Lawau] → [Lawan]
      Seq chain with the corresponding WO probe algorithm, kept as
      ablation baselines and oracle configurations;
    - [parallelism] (default [1] = sequential): partition count of the
      domain-parallel sweep; raises [Invalid_argument] when < 1;
    - [sanitize] (default {!Tpdb_windows.Invariant.env_enabled}, i.e.
      the [TPDB_SANITIZE] environment variable): run the TPSan window
      invariant checks on every stage's stream, on the parallel merge,
      and on the final output; a violated paper lemma raises
      {!Tpdb_windows.Invariant.Violation};
    - [prob_cache] (default [true]): compute output probabilities
      through the calling domain's {!Prob.Cache} — memoized on
      hash-consed formula ids, so lineages repeated across windows (and
      across joins sharing one [env] closure) are evaluated once.
      Probabilities are bit-identical either way; turn it off to
      measure the uncached path or to bound memory;
    - [mem_budget] (default: the [TPDB_MEM_BUDGET] environment variable
      in megabytes, else [0] = unlimited): working-set budget in bytes
      for the out-of-core executor. When an equi-θ join's estimated
      working set exceeds it, both inputs are hash-partitioned to
      columnar heap files ({!Tpdb_storage.Spill}) and swept one
      partition pair at a time through a budget-sized buffer pool —
      output stays tuple-for-tuple identical to the in-RAM path. A
      non-equi θ ignores the budget (like [parallelism]). Raises
      [Invalid_argument] when negative;
    - [est_rows] (default [None] = live counting): planner-supplied
      (left, right) input cardinalities — e.g. from catalog [Stats] —
      used for the spill decision's working-set estimate instead of
      counting the materialized inputs. *)

val default_options : options
(** [options ()]. *)

val algorithm : options -> Overlap.algorithm
val parallelism : options -> int
val sanitize : options -> bool
val prob_cache : options -> bool

val mem_budget : options -> int
(** Out-of-core working-set budget in bytes; [0] = never spill. *)

val est_rows : options -> (int * int) option
(** Planner row estimates for the spill decision, when supplied. *)

val static_safe : options -> bool
(** Whether the planner proved every output lineage of this join
    read-once (default [false]). When set, probabilities are computed by
    {!Prob.factorize} — no per-formula read-once check and no BDD
    fallback. Only set it from a proof such as the static safe-plan
    classification in {!Tpdb_query.Analyze}; the sanitizer's output
    check cross-validates each probability against {!Prob.compute}. *)

val effective_parallelism : options -> Theta.t -> int
(** The partition count {!join} will actually use: [parallelism options]
    when θ has an equality atom to shard on ({!Theta.equi_keys}), [1]
    otherwise (non-equi θ falls back to the sequential sweep). *)

type join_kind = Inner | Anti | Left | Right | Full

val all_kinds : join_kind list
(** Every operator of Table II, in declaration order: [Inner; Anti;
    Left; Right; Full]. The differential oracle and the fuzzer sweep
    this list. *)

val kind_name : join_kind -> string
(** Lowercase name used in trace span labels and stats output:
    ["inner"], ["anti"], ["left-outer"], ["right-outer"],
    ["full-outer"]. *)

val join :
  ?options:options ->
  ?env:Prob.env ->
  kind:join_kind ->
  theta:Theta.t ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** The unified TP join: every operator of the paper's Table II, selected
    by [kind]. Used by the query planner and the CLI. *)

val join_spilled :
  ?options:options ->
  ?partitions:int ->
  env:Prob.env ->
  kind:join_kind ->
  theta:Theta.t ->
  left:Tpdb_relation.Schema.t * Tpdb_relation.Tuple.t Seq.t ->
  right:Tpdb_relation.Schema.t * Tpdb_relation.Tuple.t Seq.t ->
  unit ->
  Relation.t
(** Out-of-core join over tuple {e streams}: the inputs go straight into
    the spill partitioner without ever being materialized, so peak
    memory is one partition pair plus the output regardless of input
    cardinality — the entry point of the 10^6–10^7-tuple spill-scale
    bench. Requires [options] with a positive [mem_budget] and an
    equi-θ; raises [Invalid_argument] otherwise. [partitions] defaults
    to an estimate from [est_rows] (or a fixed fan-out of 64) since an
    unmaterialized stream cannot be sampled; [env] is mandatory for the
    same reason. Each input sequence is traversed exactly once. Output
    is identical to {!join} on the materialized inputs. *)

val windows_wuo :
  ?options:options -> theta:Theta.t -> Relation.t -> Relation.t -> Window.t Seq.t
(** Overlapping + unmatched windows of [r] w.r.t. [s] (the paper's WUO):
    {!Overlap.left} extended by LAWAU. Benched as Fig. 5. Sequential
    streams are recomputed on every traversal; parallel streams are
    materialized once at the first traversal. *)

val windows_wuon :
  ?options:options -> theta:Theta.t -> Relation.t -> Relation.t -> Window.t Seq.t
(** WUO extended with negating windows by LAWAN. Benched as Fig. 6. *)

(** The five named operators: one-line wrappers around {!join}. *)

val inner :
  ?options:options -> ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t

val anti :
  ?options:options -> ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t

val left_outer :
  ?options:options -> ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t

val right_outer :
  ?options:options -> ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t

val full_outer :
  ?options:options -> ?env:Prob.env -> theta:Theta.t -> Relation.t -> Relation.t -> Relation.t

val run :
  ?options:options ->
  ?env:Prob.env ->
  kind:join_kind ->
  theta:Theta.t ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** Alias of {!join}, kept for callers of the pre-unification API. *)
