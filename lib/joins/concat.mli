(** Output-tuple formation: windows → TP tuples (paper §II, Example 2).

    Each window class has a fixed lineage-concatenation function:
    overlapping windows use [and], negating windows use [andNot], and
    unmatched windows pass [λr] through. Facts are concatenated, with the
    missing side null-padded for unmatched and negating windows. *)

module Formula = Tpdb_lineage.Formula
module Prob = Tpdb_lineage.Prob
module Tuple = Tpdb_relation.Tuple
module Window = Tpdb_windows.Window

val output_lineage : Window.t -> Formula.t
(** [λr ∧ λs] / [λr] / [λr ∧ ¬λs] by window kind. *)

type side = Left | Right
(** Which input relation the window stream is grouped by. [Right] streams
    (used for the right half of right/full outer joins) have the roles of
    the window swapped, so the null padding goes in front. *)

val tuple_of_window :
  prob:(Formula.t -> float) -> side:side -> pad:int -> Window.t -> Tuple.t
(** [prob] computes the output probability of the window's lineage —
    [Prob.compute env], or a {!Prob.Cache.compute} partial application
    when the caller memoizes (how {!Nj} wires [~prob_cache]). [pad] is
    the arity of the null-padded side. Overlapping windows on the
    [Right] side are rejected with [Invalid_argument] (they are emitted
    by the left pass already). *)

val tuple_of_window_no_fs : prob:(Formula.t -> float) -> Window.t -> Tuple.t
(** Output formation for the anti join: no [s] columns at all. Raises
    [Invalid_argument] on overlapping windows. *)
