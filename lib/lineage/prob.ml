type env = Var.t -> float

exception Unbound_variable of Var.t

exception Vanishing_evidence of { p_given : float; epsilon : float }

let evidence_epsilon = 1e-12

let () =
  Printexc.register_printer (function
    | Unbound_variable v ->
        Some
          (Printf.sprintf
             "Prob.Unbound_variable: lineage variable %s has no marginal \
              probability in the environment"
             (Var.to_string v))
    | Vanishing_evidence { p_given; epsilon } ->
        Some
          (Printf.sprintf
             "Prob.Vanishing_evidence: evidence probability %g is below \
              epsilon %g — conditioning would divide by (near) zero"
             p_given epsilon)
    | _ -> None)

let env_of_alist alist =
  let table = Hashtbl.create (List.length alist) in
  List.iter (fun (v, p) -> Hashtbl.replace table v p) alist;
  fun v ->
    match Hashtbl.find_opt table v with
    | Some p -> p
    | None -> raise (Unbound_variable v)

let exact env f =
  let m = Bdd.manager ~order:(Formula.vars f) () in
  Bdd.probability m env (Bdd.of_formula m f)

exception Repeated_variable

let read_once env f =
  Tpdb_obs.Metrics.incr Tpdb_obs.Metrics.Prob_readonce_checks;
  (* One shared seen-set suffices: a formula is read-once iff no variable
     occurs twice anywhere, and sub-formula independence then follows. *)
  let seen = Hashtbl.create 16 in
  let rec go f =
    match Formula.view f with
    | True -> 1.0
    | False -> 0.0
    | Var v ->
        if Hashtbl.mem seen v then raise Repeated_variable;
        Hashtbl.add seen v ();
        env v
    | Not g -> 1.0 -. go g
    | And gs -> List.fold_left (fun acc g -> acc *. go g) 1.0 gs
    | Or gs ->
        1.0 -. List.fold_left (fun acc g -> acc *. (1.0 -. go g)) 1.0 gs
  in
  match go f with p -> Some p | exception Repeated_variable -> None

let conditional env ~given f =
  let order =
    List.sort_uniq Var.compare (Formula.vars f @ Formula.vars given)
  in
  let m = Bdd.manager ~order () in
  let given_bdd = Bdd.of_formula m given in
  let p_given = Bdd.probability m env given_bdd in
  (* Dividing by a denormal-small [p_given] silently amplifies WMC
     rounding error into garbage quotients; refuse anything below
     [evidence_epsilon] (which also covers the exact-zero case). *)
  if p_given < evidence_epsilon then
    raise (Vanishing_evidence { p_given; epsilon = evidence_epsilon });
  let joint = Bdd.conj m (Bdd.of_formula m f) given_bdd in
  Bdd.probability m env joint /. p_given

let compute env f =
  Tpdb_obs.Metrics.incr Tpdb_obs.Metrics.Prob_evals;
  match read_once env f with
  | Some p -> p
  | None ->
      Tpdb_obs.Metrics.incr Tpdb_obs.Metrics.Prob_bdd_fallbacks;
      exact env f

(* The static safe-plan fast path: factorized evaluation with no
   repeated-variable check and no BDD fallback. Sound exactly when the
   caller has proven the formula read-once — the planner's safe-plan
   classification tags TP join nodes whose every output lineage is
   (joins over duplicate-free base inputs appearing on one side only).
   Under the sanitizer, [Nj] cross-checks the output probabilities
   against [compute], so a misclassification surfaces as an
   {!Tpdb_windows.Invariant.Violation} rather than silent garbage. *)
let factorize env f =
  Tpdb_obs.Metrics.incr Tpdb_obs.Metrics.Prob_evals;
  Tpdb_obs.Metrics.incr Tpdb_obs.Metrics.Analysis_static_prob_evals;
  let rec go f =
    match Formula.view f with
    | True -> 1.0
    | False -> 0.0
    | Var v -> env v
    | Not g -> 1.0 -. go g
    | And gs -> List.fold_left (fun acc g -> acc *. go g) 1.0 gs
    | Or gs ->
        1.0 -. List.fold_left (fun acc g -> acc *. (1.0 -. go g)) 1.0 gs
  in
  go f

(* Memoized probability computation over hash-consed formulas.

   A cache is a table of probabilities keyed by formula id — hash-consing
   makes the id a sound proxy for the formula, so a lookup is one integer
   hash away. Entries are valid for exactly one environment; the cache
   detects a new one by physical identity of the closure and starts a
   fresh generation. Misses delegate to [compute] (read-once fast path,
   then a private-manager BDD), so a cached probability is bit-for-bit
   the float the uncached path returns: memoization only skips repeated
   evaluations of physically equal lineages, it never changes the
   computation that produces a value.

   An earlier design shared one growing BDD manager (plus per-node
   probability memos) across all formulas of a generation; it lost more
   to unique-table growth and kept-alive diagrams than cross-formula node
   sharing recovered, because sweep lineages are flat conjunctions whose
   hash-consed sub-terms rarely coincide. Whole-formula memoization is
   the part that pays for itself. *)
module Cache = struct
  module M = Tpdb_obs.Metrics

  type stats = { hits : int; misses : int; resets : int; entries : int }

  type t = {
    mutable env : env option;  (* generation tag, compared physically *)
    results : (int, float) Hashtbl.t;  (* formula id -> probability *)
    mutable hits : int;
    mutable misses : int;
    mutable resets : int;
  }

  let create () =
    { env = None; results = Hashtbl.create 1024; hits = 0; misses = 0; resets = 0 }

  (* One long-lived cache per domain: the parallel executor's workers each
     get their own, so the hot path takes no locks. *)
  let key = Domain.DLS.new_key create
  let domain () = Domain.DLS.get key

  let reset_generation t env =
    t.env <- Some env;
    Hashtbl.reset t.results;
    t.resets <- t.resets + 1;
    M.incr M.Prob_cache_resets

  let compute_with t env ~miss f =
    M.time M.Prob_cache_lookup_ns @@ fun () ->
    (match t.env with
    | Some e when e == env -> ()
    | Some _ | None -> reset_generation t env);
    match Hashtbl.find_opt t.results (Formula.id f) with
    | Some p ->
        t.hits <- t.hits + 1;
        M.incr M.Prob_cache_hits;
        p
    | None ->
        t.misses <- t.misses + 1;
        M.incr M.Prob_cache_misses;
        let p = miss env f in
        Hashtbl.add t.results (Formula.id f) p;
        p

  let compute t env f = compute_with t env ~miss:compute f

  let stats t =
    {
      hits = t.hits;
      misses = t.misses;
      resets = t.resets;
      entries = Hashtbl.length t.results;
    }
end

(* Local SplitMix64 (same construction as Tpdb_workload.Rng, duplicated
   here because workload depends on this library). *)
let monte_carlo ?(seed = 1) ~samples env f =
  if samples <= 0 then invalid_arg "Prob.monte_carlo: samples must be positive";
  let state = ref (Int64.of_int seed) in
  let next () =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0
  in
  let vars = Array.of_list (Formula.vars f) in
  let marginals = Array.map env vars in
  let assignment = Hashtbl.create (Array.length vars) in
  let successes = ref 0 in
  for _ = 1 to samples do
    Array.iteri
      (fun i v -> Hashtbl.replace assignment v (next () < marginals.(i)))
      vars;
    if Formula.eval (Hashtbl.find assignment) f then incr successes
  done;
  float_of_int !successes /. float_of_int samples

let enumerate env f =
  let vars = Array.of_list (Formula.vars f) in
  let n = Array.length vars in
  if n > 20 then invalid_arg "Prob.enumerate: too many variables";
  let total = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let assignment v =
      let rec index i = if Var.equal vars.(i) v then i else index (i + 1) in
      mask land (1 lsl index 0) <> 0
    in
    if Formula.eval assignment f then begin
      let weight = ref 1.0 in
      for i = 0 to n - 1 do
        let p = env vars.(i) in
        weight := !weight *. (if mask land (1 lsl i) <> 0 then p else 1.0 -. p)
      done;
      total := !total +. !weight
    end
  done;
  !total
