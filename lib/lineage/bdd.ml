type t = Leaf of bool | Node of { id : int; level : int; lo : t; hi : t }

type manager = {
  unique : (int * int * int, t) Hashtbl.t;  (* (level, lo id, hi id) -> node *)
  and_cache : (int * int, t) Hashtbl.t;
  or_cache : (int * int, t) Hashtbl.t;
  neg_cache : (int, t) Hashtbl.t;
  levels : (Var.t, int) Hashtbl.t;  (* variable -> level, 0 = topmost *)
  mutable level_vars : Var.t list;  (* reverse order of declaration *)
  mutable next_id : int;
}

let node_id = function Leaf false -> 0 | Leaf true -> 1 | Node n -> n.id

let level_of_var m v =
  match Hashtbl.find_opt m.levels v with
  | Some l -> l
  | None ->
      let l = Hashtbl.length m.levels in
      Hashtbl.add m.levels v l;
      m.level_vars <- v :: m.level_vars;
      l

let manager ?(order = []) () =
  let m =
    {
      unique = Hashtbl.create 1024;
      and_cache = Hashtbl.create 1024;
      or_cache = Hashtbl.create 1024;
      neg_cache = Hashtbl.create 256;
      levels = Hashtbl.create 64;
      level_vars = [];
      next_id = 2;
    }
  in
  List.iter (fun v -> ignore (level_of_var m v)) order;
  m

let zero _ = Leaf false
let one _ = Leaf true

let mk m level lo hi =
  if node_id lo = node_id hi then lo
  else
    let key = (level, node_id lo, node_id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
        let n = Node { id = m.next_id; level; lo; hi } in
        m.next_id <- m.next_id + 1;
        Hashtbl.add m.unique key n;
        n

let var m v =
  let level = level_of_var m v in
  mk m level (Leaf false) (Leaf true)

let rec neg m f =
  match f with
  | Leaf b -> Leaf (not b)
  | Node n -> (
      match Hashtbl.find_opt m.neg_cache n.id with
      | Some r -> r
      | None ->
          let r = mk m n.level (neg m n.lo) (neg m n.hi) in
          Hashtbl.add m.neg_cache n.id r;
          r)

(* Shannon-expansion apply for a binary monotone-on-leaves op. *)
let rec apply m cache leaf_op a b =
  match (a, b) with
  | Leaf x, Leaf y -> Leaf (leaf_op x y)
  | _ -> (
      let key = (node_id a, node_id b) in
      match Hashtbl.find_opt cache key with
      | Some r -> r
      | None ->
          let r =
            match (a, b) with
            | Leaf _, Leaf _ -> assert false
            | Node na, Node nb when na.level = nb.level ->
                mk m na.level
                  (apply m cache leaf_op na.lo nb.lo)
                  (apply m cache leaf_op na.hi nb.hi)
            | Node na, Node nb when na.level < nb.level ->
                mk m na.level
                  (apply m cache leaf_op na.lo b)
                  (apply m cache leaf_op na.hi b)
            | Node na, Leaf _ ->
                mk m na.level
                  (apply m cache leaf_op na.lo b)
                  (apply m cache leaf_op na.hi b)
            | _, Node nb ->
                mk m nb.level
                  (apply m cache leaf_op a nb.lo)
                  (apply m cache leaf_op a nb.hi)
          in
          Hashtbl.add cache key r;
          r)

let conj m a b =
  match (a, b) with
  | Leaf false, _ | _, Leaf false -> Leaf false
  | Leaf true, f | f, Leaf true -> f
  | _ -> apply m m.and_cache ( && ) a b

let disj m a b =
  match (a, b) with
  | Leaf true, _ | _, Leaf true -> Leaf true
  | Leaf false, f | f, Leaf false -> f
  | _ -> apply m m.or_cache ( || ) a b

let rec of_formula m (f : Formula.t) =
  match Formula.view f with
  | Formula.True -> Leaf true
  | Formula.False -> Leaf false
  | Formula.Var v -> var m v
  | Formula.Not g -> neg m (of_formula m g)
  | Formula.And gs ->
      List.fold_left (fun acc g -> conj m acc (of_formula m g)) (Leaf true) gs
  | Formula.Or gs ->
      List.fold_left (fun acc g -> disj m acc (of_formula m g)) (Leaf false) gs

let equal a b = node_id a = node_id b

let is_tautology f = match f with Leaf true -> true | _ -> false
let is_contradiction f = match f with Leaf false -> true | _ -> false

let equivalent f g =
  (* A shared variable order makes equivalence a physical-equality check. *)
  let order = List.sort_uniq Var.compare (Formula.vars f @ Formula.vars g) in
  let m = manager ~order () in
  equal (of_formula m f) (of_formula m g)

let probability m env root =
  let order = Array.of_list (List.rev m.level_vars) in
  let memo = Hashtbl.create 256 in
  let rec go f =
    match f with
    | Leaf true -> 1.0
    | Leaf false -> 0.0
    | Node n -> (
        match Hashtbl.find_opt memo n.id with
        | Some p -> p
        | None ->
            let pv = env order.(n.level) in
            let p = ((1.0 -. pv) *. go n.lo) +. (pv *. go n.hi) in
            Hashtbl.add memo n.id p;
            p)
  in
  go root

let node_count root =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Leaf _ -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.id) then begin
          Hashtbl.add seen n.id ();
          go n.lo;
          go n.hi
        end
  in
  go root;
  Hashtbl.length seen

let sat_count m root =
  let total_vars = Hashtbl.length m.levels in
  let memo = Hashtbl.create 256 in
  (* counts models over variables at levels >= [level] *)
  let rec go level f =
    match f with
    | Leaf true -> Float.pow 2.0 (float_of_int (total_vars - level))
    | Leaf false -> 0.0
    | Node n -> (
        let skipped = Float.pow 2.0 (float_of_int (n.level - level)) in
        let below =
          match Hashtbl.find_opt memo n.id with
          | Some c -> c
          | None ->
              let c = go (n.level + 1) n.lo +. go (n.level + 1) n.hi in
              Hashtbl.add memo n.id c;
              c
        in
        skipped *. below)
  in
  go 0 root
