(** Probability computation for lineage formulas.

    Base-tuple variables are independent Bernoulli random variables; an
    environment maps each variable to its marginal probability. The output
    probability of a TP tuple is the probability that its lineage is
    true. *)

type env = Var.t -> float

exception Unbound_variable of Var.t
(** A lineage variable has no marginal probability in the environment —
    typically a derived relation joined without passing an explicit
    [env] covering its base variables. Raised lazily, at the first
    probability computation touching the variable. *)

exception Vanishing_evidence of { p_given : float; epsilon : float }
(** Raised by {!conditional} when the evidence probability falls below
    {!evidence_epsilon}: dividing by a (near-)zero weighted model count
    turns rounding noise into arbitrary quotients. *)

val evidence_epsilon : float
(** [1e-12] — the smallest evidence probability {!conditional} accepts. *)

val env_of_alist : (Var.t * float) list -> env
(** Lookup raising {!Unbound_variable} for unbound variables. *)

val exact : env -> Formula.t -> float
(** Exact probability via BDD-based weighted model counting. Worst-case
    exponential (the problem is #P-hard) but linear in BDD size. *)

val read_once : env -> Formula.t -> float option
(** Fast path: when no variable occurs twice in the formula (a read-once
    formula), the probability factorizes over the connectives:
    [P(∧) = ∏ P], [P(∨) = 1 − ∏ (1 − P)], [P(¬f) = 1 − P(f)].
    Returns [None] for formulas with repeated variables. Every window
    lineage produced from duplicate-free base relations is read-once. *)

val compute : env -> Formula.t -> float
(** {!read_once} when it applies, otherwise {!exact}. This is what the
    join operators call when the probability cache is off. Records the
    [prob_readonce_checks] and (on BDD fallback) [prob_bdd_fallbacks]
    counters in {!Tpdb_obs.Metrics}. *)

val factorize : env -> Formula.t -> float
(** The static safe-plan fast path: factorized evaluation over the
    connectives with {e no} repeated-variable check and {e no} BDD
    fallback — sound exactly for read-once formulas, where it returns
    bit-for-bit what {!read_once} returns. Callers must hold a proof of
    read-once-ness; the planner's static safe-plan classification
    ({!Tpdb_query.Analyze}) provides one for TP joins over
    duplicate-free base inputs with disjoint base relations per side.
    Under [TPDB_SANITIZE=1] the join operators cross-check these
    probabilities against {!compute}. Records
    [analysis_static_prob_evals]. *)

(** Memoized probability computation over hash-consed formulas.

    A cache keys probabilities on {!Formula.id} — hash-consing makes the
    id a sound proxy for the formula — so lineages repeated across sweep
    windows (e.g. the λr an outer join replays across gap windows, or an
    anti join re-deriving an outer join's WU/WN lineages under a shared
    env) are evaluated once. Misses delegate to {!compute}, so a cached
    probability is bit-for-bit the float the uncached path returns.

    Invalidation is by environment {e generation}: the first [compute]
    with a physically different [env] closure drops every memoized
    value. Pass the same closure (e.g. one [Relation.prob_env] result)
    across calls to share the cache between operators. Caches are
    single-domain; use {!Cache.domain} for the calling domain's
    long-lived instance (how [Nj] gets a per-worker cache with no locks
    on the hot path). *)
module Cache : sig
  type t

  type stats = { hits : int; misses : int; resets : int; entries : int }

  val create : unit -> t

  val domain : unit -> t
  (** The calling domain's cache (created on first use, lives as long as
      the domain). *)

  val compute : t -> env -> Formula.t -> float
  (** Memoized {!compute}. Also records [prob_cache_hits]/[misses]/
      [resets] counters and the [prob_cache_lookup_ns] distribution in
      {!Tpdb_obs.Metrics}. *)

  val compute_with :
    t -> env -> miss:(env -> Formula.t -> float) -> Formula.t -> float
  (** {!compute} with a caller-chosen miss path — how statically safe
      plans memoize {!Tpdb_lineage.Prob.factorize} results through the
      same per-domain cache. The caller must pass a [miss] that computes
      the same value {!compute} would (the cache does not key on it). *)

  val stats : t -> stats
  (** Lifetime totals for this cache instance; [entries] is the current
      generation's result count. *)
end

val conditional : env -> given:Formula.t -> Formula.t -> float
(** [conditional env ~given f] is P(f | given) = P(f ∧ given) / P(given),
    computed exactly on one shared BDD. Conditioning on observed evidence
    is the standard query refinement in probabilistic databases. Raises
    {!Vanishing_evidence} when the evidence probability is below
    {!evidence_epsilon} (in particular when it is exactly 0). *)

val monte_carlo : ?seed:int -> samples:int -> env -> Formula.t -> float
(** Monte-Carlo estimate: draws independent assignments from the
    marginals and reports the fraction satisfying the formula. The
    standard error is at most [0.5 / sqrt samples]; used as a scalable
    cross-check of {!exact} and for lineages whose BDDs blow up.
    Deterministic for a fixed [seed] (default 1). Raises
    [Invalid_argument] if [samples <= 0]. *)

val enumerate : env -> Formula.t -> float
(** Reference implementation: sums over all 2^n assignments. Used by the
    test suite to validate {!exact}; raises [Invalid_argument] for more
    than 20 variables. *)
