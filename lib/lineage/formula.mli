(** Lineage formulas: propositional formulas over base-tuple variables,
    hash-consed.

    Constructors are smart: [conj] and [disj] flatten nested connectives
    and apply identity/annihilator laws, so formulas built through this
    interface never contain [And []], [Or [x]] or a [True] inside a
    conjunction. Deeper (NP-hard) simplification is deliberately out of
    scope — probabilities are computed exactly via {!Bdd}.

    Every formula is interned in a per-domain unique table: structurally
    equal formulas built on the same domain are physically shared, so
    {!equal} is usually a pointer comparison, {!hash} is O(1), and
    {!vars}/{!size} are memoized per node. {!id} is unique process-wide
    and never reused, which is what lets {!Prob.Cache} key compiled BDDs
    and probabilities on it. Interned nodes are never reclaimed. *)

type t

type view =
  | True
  | False
  | Var of Var.t
  | Not of t
  | And of t list  (** >= 2 juncts, none of them [And]/[True]/[False] *)
  | Or of t list  (** >= 2 juncts, none of them [Or]/[True]/[False] *)

val view : t -> view
(** The root node, for pattern matching. *)

val id : t -> int
(** Unique id, assigned at interning time; process-wide, never reused.
    Allocation-ordered, so not stable across runs — use {!compare} for
    any ordering that must be deterministic. *)

val hash : t -> int
(** O(1): precomputed structural hash. Equal formulas hash equal, even
    when interned on different domains. *)

val interned : unit -> int
(** Number of distinct formulas interned on the calling domain
    (diagnostics; constants excluded). *)

val true_ : t
val false_ : t
val var : Var.t -> t
val neg : t -> t
(** [neg] applies double-negation elimination and constant folding only. *)

val conj : t list -> t
val disj : t list -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t

val and_not : t -> t -> t
(** [and_not a b] is [a ∧ ¬b] — the paper's [andNot] lineage-concatenation
    function used for negating windows. *)

val equal : t -> t -> bool
(** Structural equality — O(1) pointer comparison for formulas interned
    on the same domain, hash-guarded structural recursion otherwise. For
    equality up to commutativity compare {!normalize}d formulas. *)

val compare : t -> t -> int
(** Structural order, identical on every domain and across runs. *)

val normalize : t -> t
(** Sorts and de-duplicates the juncts of every connective, recursively.
    Two window lineages built from the same set of tuple variables in
    different orders normalize to the same formula. *)

val vars : t -> Var.t list
(** Distinct variables, sorted. Memoized per node. *)

val size : t -> int
(** Number of connective and variable nodes. Memoized per node. *)

val eval : (Var.t -> bool) -> t -> bool

val substitute : (Var.t -> t option) -> t -> t
(** Replaces variables for which the function returns [Some _]. *)

val to_string : t -> string
(** Paper notation: [a1 ∧ ¬(b3 ∨ b2)]. *)

val to_string_ascii : t -> string
(** ASCII notation accepted by {!of_string}: [a1 & !(b3 | b2)]. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Parses the ASCII notation: variables as in {!Var.of_string}, [!] for
    negation, [&]/[|] for connectives (with the usual precedences:
    [!] > [&] > [|]), [T]/[F] for constants, parentheses. Raises
    [Invalid_argument] on syntax errors. *)
