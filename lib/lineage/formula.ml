(* Hash-consed lineage formulas.

   Every formula is interned in a unique table keyed by the ids of its
   children, so structurally equal formulas built on the same domain are
   physically shared: equality of shared nodes is a pointer comparison,
   [hash] reads a precomputed field, and [vars]/[size] memoize per node.
   The sweeping window operators rebuild each window's lineage out of
   largely the same sub-formulas as its neighbor's, so the sharing (and
   the probability cache keyed on node ids, see {!Prob.Cache}) is what
   turns the per-window lineage work from O(window size) into O(delta).

   Concurrency: the unique table is domain-local ([Domain.DLS]) so the
   partitioned parallel executor interns without taking locks. Node ids
   are drawn from one global atomic counter, so an id names at most one
   formula process-wide — two domains may intern the same structure as
   two nodes (sharing is best effort across domains, guaranteed within
   one), which is why [equal]/[compare] fall back to structural
   recursion and [hkey] is computed from the structure, not the id. *)

type t = {
  id : int;  (** unique process-wide; never reused *)
  hkey : int;  (** structural hash: equal structures hash equal on any domain *)
  node : view;
  mutable memo_size : int;  (** -1 until first [size] *)
  mutable memo_vars : Var.t list option;  (** [None] until first [vars] *)
}

and view =
  | True
  | False
  | Var of Var.t
  | Not of t
  | And of t list
  | Or of t list

let view f = f.node
let id f = f.id
let hash f = f.hkey

let combine seed h = ((seed * 31) + h) land max_int

let hash_view = function
  | True -> 0x21a3d
  | False -> 0x47b91
  | Var v -> combine 0x11 (Var.hash v)
  | Not f -> combine 0x7f f.hkey
  | And fs -> List.fold_left (fun h f -> combine h f.hkey) 0x3b5 fs
  | Or fs -> List.fold_left (fun h f -> combine h f.hkey) 0x9c7 fs

(* Ids 0 and 1 belong to the constant singletons, which are shared by
   every domain (the constructors below never re-intern them). *)
let true_ =
  { id = 0; hkey = hash_view True; node = True; memo_size = 1; memo_vars = Some [] }

let false_ =
  { id = 1; hkey = hash_view False; node = False; memo_size = 1; memo_vars = Some [] }

let next_id = Atomic.make 2

module Key = struct
  type t = KVar of Var.t | KNot of int | KAnd of int list | KOr of int list

  let equal a b =
    match (a, b) with
    | KVar u, KVar v -> Var.equal u v
    | KNot i, KNot j -> Int.equal i j
    | KAnd xs, KAnd ys | KOr xs, KOr ys -> List.equal Int.equal xs ys
    | (KVar _ | KNot _ | KAnd _ | KOr _), _ -> false

  let hash = function
    | KVar v -> combine 0x11 (Var.hash v)
    | KNot i -> combine 0x7f i
    | KAnd is -> List.fold_left combine 0x3b5 is
    | KOr is -> List.fold_left combine 0x9c7 is
end

module Tbl = Hashtbl.Make (Key)

let table : t Tbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Tbl.create 1024)

let key_of = function
  | True | False -> assert false (* constants are never interned *)
  | Var v -> Key.KVar v
  | Not f -> Key.KNot f.id
  | And fs -> Key.KAnd (List.map (fun f -> f.id) fs)
  | Or fs -> Key.KOr (List.map (fun f -> f.id) fs)

let mk node =
  let tbl = Domain.DLS.get table in
  let key = key_of node in
  match Tbl.find_opt tbl key with
  | Some f -> f
  | None ->
      let f =
        {
          id = Atomic.fetch_and_add next_id 1;
          hkey = hash_view node;
          node;
          memo_size = -1;
          memo_vars = None;
        }
      in
      Tbl.add tbl key f;
      f

let interned () = Tbl.length (Domain.DLS.get table)

let var v = mk (Var v)

let neg f =
  match f.node with
  | True -> false_
  | False -> true_
  | Not g -> g
  | Var _ | And _ | Or _ -> mk (Not f)

(* Equality: physical first (the common case for same-domain formulas),
   then the structural hash as a cheap rejector, full recursion only for
   hash-equal distinct nodes (cross-domain duplicates, or collisions). *)
let rec equal a b =
  a == b
  || a.hkey = b.hkey
     &&
     match (a.node, b.node) with
     | Var x, Var y -> Var.equal x y
     | Not x, Not y -> equal x y
     | And xs, And ys | Or xs, Or ys -> equal_lists xs ys
     | (True | False | Var _ | Not _ | And _ | Or _), _ -> false

and equal_lists xs ys =
  match (xs, ys) with
  | [], [] -> true
  | x :: xs', y :: ys' -> equal x y && equal_lists xs' ys'
  | _, _ -> false

(* Flattening constructor shared by [conj] and [disj]: [unit] is the
   identity element, [zero] the annihilator, [wrap] rebuilds the
   connective and [unwrap] recognizes it for flattening. The constants
   are singletons, so the identity/annihilator tests are pointer
   comparisons (the former polymorphic [=] walked the formula). *)
let connective ~unit ~zero ~wrap ~unwrap juncts =
  let rec gather acc = function
    | [] -> Some (List.rev acc)
    | f :: rest ->
        if f == zero then None
        else if f == unit then gather acc rest
        else (
          match unwrap f with
          | Some inner -> gather (List.rev_append inner acc) rest
          | None -> gather (f :: acc) rest)
  in
  match gather [] juncts with
  | None -> zero
  | Some [] -> unit
  | Some [ f ] -> f
  | Some fs -> wrap fs

let conj fs =
  connective ~unit:true_ ~zero:false_
    ~wrap:(fun fs -> mk (And fs))
    ~unwrap:(fun f -> match f.node with And fs -> Some fs | _ -> None)
    fs

let disj fs =
  connective ~unit:false_ ~zero:true_
    ~wrap:(fun fs -> mk (Or fs))
    ~unwrap:(fun f -> match f.node with Or fs -> Some fs | _ -> None)
    fs

let ( &&& ) a b = conj [ a; b ]
let ( ||| ) a b = disj [ a; b ]

let and_not a b = a &&& neg b

(* The order is structural (constants < vars < negations < conjunctions
   < disjunctions, then recursively), identical on every domain and
   stable across processes — window grouping and [normalize] depend on
   that, so the node id (allocation-ordered) is deliberately not used. *)
let rec compare a b =
  if a == b then 0
  else
    match (a.node, b.node) with
    | True, True | False, False -> 0
    | True, _ -> -1
    | _, True -> 1
    | False, _ -> -1
    | _, False -> 1
    | Var x, Var y -> Var.compare x y
    | Var _, _ -> -1
    | _, Var _ -> 1
    | Not x, Not y -> compare x y
    | Not _, _ -> -1
    | _, Not _ -> 1
    | And xs, And ys -> compare_lists xs ys
    | And _, _ -> -1
    | _, And _ -> 1
    | Or xs, Or ys -> compare_lists xs ys

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c <> 0 then c else compare_lists xs' ys'

let rec normalize f =
  match f.node with
  | True | False | Var _ -> f
  | Not g -> neg (normalize g)
  | And fs -> conj (sorted_juncts fs)
  | Or fs -> disj (sorted_juncts fs)

and sorted_juncts fs =
  let normalized = List.map normalize fs in
  let sorted = List.sort_uniq compare normalized in
  sorted

module VSet = Set.Make (Var)

let rec vars_set f =
  match f.memo_vars with
  | Some vs -> VSet.of_list vs
  | None ->
      let set =
        match f.node with
        | True | False -> VSet.empty
        | Var v -> VSet.singleton v
        | Not g -> vars_set g
        | And fs | Or fs ->
            List.fold_left (fun acc g -> VSet.union acc (vars_set g)) VSet.empty fs
      in
      f.memo_vars <- Some (VSet.elements set);
      set

let vars f =
  match f.memo_vars with
  | Some vs -> vs
  | None -> VSet.elements (vars_set f)

let rec size f =
  if f.memo_size >= 0 then f.memo_size
  else
    let n =
      match f.node with
      | True | False | Var _ -> 1
      | Not g -> 1 + size g
      | And fs | Or fs -> List.fold_left (fun acc g -> acc + size g) 1 fs
    in
    f.memo_size <- n;
    n

let rec eval env f =
  match f.node with
  | True -> true
  | False -> false
  | Var v -> env v
  | Not g -> not (eval env g)
  | And fs -> List.for_all (eval env) fs
  | Or fs -> List.exists (eval env) fs

let rec substitute lookup f =
  match f.node with
  | True | False -> f
  | Var v -> ( match lookup v with Some g -> g | None -> f)
  | Not g -> neg (substitute lookup g)
  | And fs -> conj (List.map (substitute lookup) fs)
  | Or fs -> disj (List.map (substitute lookup) fs)

(* Printing. Precedence levels: Or = 0, And = 1, Not/atom = 2. A child is
   parenthesized when its level is below the context's. *)
let render ~not_ ~and_ ~or_ f =
  let buf = Buffer.create 64 in
  let rec go level f =
    match f.node with
    | True -> Buffer.add_string buf "T"
    | False -> Buffer.add_string buf "F"
    | Var v -> Buffer.add_string buf (Var.to_string v)
    | Not g ->
        Buffer.add_string buf not_;
        go 2 g
    | And fs -> infix level 1 and_ fs
    | Or fs -> infix level 0 or_ fs
  and infix level own sep fs =
    let needs_parens = level > own in
    if needs_parens then Buffer.add_char buf '(';
    List.iteri
      (fun i f ->
        if i > 0 then Buffer.add_string buf sep;
        go (own + 1) f)
      fs;
    if needs_parens then Buffer.add_char buf ')'
  in
  go 0 f;
  Buffer.contents buf

let to_string f = render ~not_:"\xc2\xac" ~and_:" \xe2\x88\xa7 " ~or_:" \xe2\x88\xa8 " f

let to_string_ascii f = render ~not_:"!" ~and_:" & " ~or_:" | " f

let pp ppf f = Format.pp_print_string ppf (to_string f)

(* Recursive-descent parser for the ASCII notation. *)
let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = invalid_arg (Printf.sprintf "Formula.of_string: %s at %d in %S" msg !pos s) in
  let rec skip_ws () =
    if !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') then (incr pos; skip_ws ())
  in
  let peek () =
    skip_ws ();
    if !pos < n then Some s.[!pos] else None
  in
  let advance () = incr pos in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  let ident () =
    let start = !pos in
    while !pos < n && is_ident s.[!pos] do incr pos done;
    if !pos = start then fail "expected identifier";
    String.sub s start (!pos - start)
  in
  let rec parse_or () =
    let left = parse_and () in
    match peek () with
    | Some '|' ->
        advance ();
        left ||| parse_or ()
    | _ -> left
  and parse_and () =
    let left = parse_atom () in
    match peek () with
    | Some '&' ->
        advance ();
        left &&& parse_and ()
    | _ -> left
  and parse_atom () =
    match peek () with
    | Some '!' ->
        advance ();
        neg (parse_atom ())
    | Some '(' ->
        advance ();
        let f = parse_or () in
        (match peek () with
        | Some ')' -> advance (); f
        | _ -> fail "expected ')'")
    | Some c when is_ident c -> (
        let id = ident () in
        match id with
        | "T" -> true_
        | "F" -> false_
        | _ -> (
            match Var.of_string id with
            | v -> var v
            | exception Invalid_argument _ -> fail ("bad variable " ^ id)))
    | _ -> fail "expected formula"
  in
  let f = parse_or () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  f
