(** Span-based tracing with a Chrome trace-event exporter.

    A {!t} is an in-memory buffer of completed spans. Instrumented code
    brackets work with {!with_span}; with no sink installed the bracket
    is a single flat check and the thunk runs untouched. With a sink
    (the CLI's [--trace out.json]) every span records its start
    timestamp, duration, and the id of the domain it ran on, and
    {!to_json}/{!save} export the buffer in the Chrome trace-event
    format — complete ["ph": "X"] events — loadable in
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}.

    Spans are recorded at close from any domain (the buffer is
    mutex-protected), so the per-partition sweeps of the parallel
    executor appear on their own tracks ([tid] = domain id).

    With [create ~gc:true], every span additionally captures the
    recording domain's GC deltas — minor/major/promoted words (read
    from [Gc.minor_words]/[Gc.counters], which stay exact without an
    intervening collection) and major collections — exported as the
    event's [args] (so
    Perfetto shows allocation per stage) and fed into the
    [alloc_minor_words]/[alloc_major_words] labeled histogram families
    of the installed {!Metrics} sink, keyed by span name. *)

type t

val create : ?gc:bool -> unit -> t
(** [gc] (default [false]) turns on per-span GC accounting. It costs a
    handful of GC-counter probes per span, so leave it off for traces
    of sweep-internal micro-spans. *)

(** {2 The global sink} *)

val install : t -> unit
val uninstall : unit -> unit

val with_sink : t -> (unit -> 'a) -> 'a
(** Installs [t], runs the thunk, restores the previous sink. *)

val active : unit -> t option
val enabled : unit -> bool

(** {2 Recording (no-ops without a sink)} *)

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()]; with a sink installed it records one
    complete span covering the call, closed even when [f] raises.
    [cat] (default ["tpdb"]) is the Chrome-trace category; [args]
    become the event's [args] object. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration instant event (["ph": "i"]). *)

(** {2 Reading} *)

val span_count : t -> int

val span_names : t -> string list
(** Names in completion order (earliest first). *)

val totals : t -> (string * string * int) list
(** [(cat, name, total duration in ns)] of every complete span name,
    durations summed over all occurrences, in first-completion order.
    The per-stage wall times {!Qlog} records. *)

val to_json : t -> string
(** The Chrome trace-event document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. Timestamps are
    microseconds from the trace's creation. *)

val save : t -> string -> unit
(** Writes {!to_json} to a file. *)
