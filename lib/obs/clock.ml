(* The process-local epoch pins the first read near zero so that int
   nanoseconds never overflow (2^62 ns ≈ 146 years). *)
let epoch = Unix.gettimeofday ()
let last = Atomic.make 0

let now_ns () =
  let t = int_of_float ((Unix.gettimeofday () -. epoch) *. 1e9) in
  let rec bump () =
    let prev = Atomic.get last in
    if t <= prev then prev
    else if Atomic.compare_and_set last prev t then t
    else bump ()
  in
  bump ()
