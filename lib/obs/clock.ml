(* The process-local epoch pins the first read near zero so that int
   nanoseconds never overflow (2^62 ns ≈ 146 years). *)
let epoch = Unix.gettimeofday ()
let last = Atomic.make 0

let now_ns () =
  let t = int_of_float ((Unix.gettimeofday () -. epoch) *. 1e9) in
  let rec bump () =
    let prev = Atomic.get last in
    if t <= prev then prev
    else if Atomic.compare_and_set last prev t then t
    else bump ()
  in
  bump ()

let pp_ms ms =
  if ms >= 1000.0 then Printf.sprintf "%.2f s" (ms /. 1000.0)
  else if ms >= 1.0 then Printf.sprintf "%.1f ms" ms
  else Printf.sprintf "%.0f \xc2\xb5s" (ms *. 1000.0)

let pp_ns ns = pp_ms (float_of_int ns /. 1e6)
