external monotonic_ns : unit -> int = "tpdb_clock_monotonic_ns" [@@noalloc]

let source : [ `Monotonic | `Wall ] =
  if monotonic_ns () >= 0 then `Monotonic else `Wall

(* Wall time captured once at module init: the absolute instant that
   [now_ns] calls t = 0. Only used to anchor traces/qlog records to
   calendar time; never fed back into durations. *)
let wall_epoch = Unix.gettimeofday ()

(* The process-local epoch pins the first read near zero so that int
   nanoseconds never overflow (2^62 ns ≈ 146 years). *)
let raw_ns =
  match source with
  | `Monotonic ->
      let epoch = monotonic_ns () in
      fun () -> monotonic_ns () - epoch
  | `Wall -> fun () -> int_of_float ((Unix.gettimeofday () -. wall_epoch) *. 1e9)

(* CLOCK_MONOTONIC never steps backwards, but the atomic max also
   orders reads consistently across domains on the wall fallback and
   guards against coarse or buggy platform clocks. *)
let last = Atomic.make 0

let now_ns () =
  let t = raw_ns () in
  let rec bump () =
    let prev = Atomic.get last in
    if t <= prev then prev
    else if Atomic.compare_and_set last prev t then t
    else bump ()
  in
  bump ()

let pp_ms ms =
  if ms >= 1000.0 then Printf.sprintf "%.2f s" (ms /. 1000.0)
  else if ms >= 1.0 then Printf.sprintf "%.1f ms" ms
  else Printf.sprintf "%.0f \xc2\xb5s" (ms *. 1000.0)

let pp_ns ns = pp_ms (float_of_int ns /. 1e6)
