(** Minimal JSON rendering for the metrics and trace exporters — enough
    to emit objects/arrays of strings, ints and floats without pulling a
    JSON library into the kernel's dependency cone. *)

val escape : string -> string
(** The JSON string-literal encoding of a string, quotes included. *)

val obj : (string * string) list -> string
(** [obj fields] renders [{"k": v, ...}]; values arrive pre-rendered. *)

val arr : string list -> string
(** [arr items] renders [[v, ...]]; items arrive pre-rendered. *)

val str : string -> string
(** A string value: alias of {!escape}. *)

val int : int -> string
val float : float -> string
(** Finite shortest-round-trip rendering; NaN/infinities render as
    [null] (JSON has no lexeme for them). *)
