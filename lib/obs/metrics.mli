(** Cheap runtime metrics for the sweeping-window pipeline.

    A {!t} is a fixed set of atomic counters and value distributions —
    each distribution a lock-free log-bucketed histogram ({!Hist}) with
    exact count/sum/min/max and p50/p90/p99 quantiles at ≤ ~6% relative
    error — that the instrumented code updates through the process-global
    {e sink}. With no sink installed every recording entry point is a
    single flat check ([Atomic.get] + pattern match) and touches nothing
    else, so instrumentation stays in the hot paths permanently at
    near-zero cost; installing a sink (the CLI's [--stats-json],
    [bench/main.exe --json], or [EXPLAIN ANALYZE]) turns the counters on
    for the extent of a run.

    Counter and histogram updates are atomic and therefore correct under
    the domain-parallel partitioned executor; a counter's value is exact
    once the run being measured has completed.

    Besides the fixed distributions there is a dynamic, labeled family
    ({!observe_labeled}): per-span allocation histograms
    ([alloc_minor_words]/[alloc_major_words] keyed by span name) that
    {!Tpdb_obs.Trace} feeds when GC accounting is on.

    Naming: the snapshot/JSON key of a counter or distribution is its
    constructor name lower-cased ([Windows_overlapping] →
    ["windows_overlapping"]). docs/INTERNALS.md carries the full
    operator → span → counter reference table. *)

type counter =
  | Tuples_in  (** input tuples entering a TP join (both sides) *)
  | Tuples_out  (** result tuples leaving a TP join *)
  | Windows_overlapping  (** WO windows created by the overlap stage *)
  | Windows_unmatched
      (** WU windows: spanning (matchless tuple, unmatched right side)
          plus the maximal gap windows LAWAU sweeps out *)
  | Windows_negating  (** WN windows created by LAWAN *)
  | Sweep_segments
      (** maximal constant-coverage segments emitted by the generic
          interval sweep (LAWAN, TP projection, sequenced aggregation) *)
  | Lineage_nodes
      (** formula nodes (connectives + variables) of output lineages *)
  | Prob_evals  (** probability computations ({!Tpdb_lineage.Prob}) *)
  | Partition_sweeps  (** per-partition sweeps run by the domain pool *)
  | Sanitizer_checks  (** TPSan group/output checks executed *)
  | Prob_cache_hits
      (** probability computations answered from a {!Tpdb_lineage.Prob.Cache}
          result table (keyed on hash-consed formula id) *)
  | Prob_cache_misses  (** cache lookups that had to compute *)
  | Prob_cache_resets
      (** cache generation bumps: a cache saw a new environment and
          dropped its memoized results *)
  | Oracle_evals
      (** snapshot-semantics evaluations run by {!Tpdb_oracle.Oracle} *)
  | Oracle_comparisons
      (** (kind, configuration) diffs of [Nj.join] output against the
          oracle's ground truth *)
  | Oracle_mismatches
      (** individual tuple-level mismatches found by those diffs — 0 on
          a healthy pipeline *)
  | Minor_alloc_words
      (** words allocated on the recording domain's minor heap inside
          {!count_alloc} extents ([Gc.minor_words] deltas) —
          the bench harness wraps every sweep point, so the bench
          regression gate can bound allocation growth of the sweep
          pipeline. New counters must be appended at the end: snapshots
          and the [counter_index] layout are positional. *)
  | Analysis_deep_passes
      (** deep static-analysis runs ({!Tpdb_query.Analyze}'s
          [check_deep]) *)
  | Analysis_pruned_subplans
      (** provably-empty subplans replaced by empty scans at plan time *)
  | Analysis_folded_atoms
      (** duplicate/subsumed θ atoms folded away by [Theta.simplify] *)
  | Analysis_safe_joins
      (** TP join nodes statically classified read-once-safe and tagged
          so probability computation skips the runtime read-once check *)
  | Analysis_static_prob_evals
      (** probability evaluations through the unchecked factorized fast
          path ({!Tpdb_lineage.Prob.factorize}) on statically safe plans *)
  | Prob_readonce_checks
      (** runtime read-once checks performed ({!Tpdb_lineage.Prob.read_once}
          entries) — 0 on a statically safe plan *)
  | Prob_bdd_fallbacks
      (** probability computations that fell back to exact BDD weighted
          model counting (repeated-variable lineage) *)
  | Major_alloc_words
      (** words allocated directly on the major heap inside
          {!count_alloc} extents ([Gc.counters] major-word deltas;
          includes promoted words, per the [Gc] accounting) *)
  | Promoted_words
      (** minor-heap words that survived a minor collection inside
          {!count_alloc} extents — the share of [Major_alloc_words] that
          is promotion rather than direct major allocation *)
  | Spill_bytes
      (** bytes written to spill partition files by the out-of-core
          executor — 0 unless a join actually spilled, so the CI
          memory-ceiling gate can assert spilling happened *)
  | Spill_partitions
      (** spill partitions created (per side pair, not per file) *)
  | Pool_hits  (** buffer-pool page reads answered from the cache *)
  | Pool_misses  (** buffer-pool page reads that went to disk *)
  | Server_queries
      (** queries executed by {!Tpdb_server_lib.Server} (QUERY and
          EXECUTE commands that reached the engine, cached or not) *)
  | Server_rejections
      (** queries refused with [Server_overloaded] by admission control
          (queue full) — bounded-memory backpressure, not failures *)
  | Plan_cache_hits
      (** QUERY/EXECUTE answered by a cached still-valid physical plan
          (keyed on the normalized-AST fingerprint) *)
  | Plan_cache_misses
      (** plan-cache lookups that had to plan (first sight of the
          fingerprint, or base-relation versions moved) *)
  | Result_cache_hits
      (** queries answered entirely from the lineage-aware result cache
          (plan fingerprint × input digests unchanged) *)
  | Result_cache_misses  (** result-cache lookups that had to execute *)
  | Sessions_opened  (** client sessions accepted by the server *)
  | Sessions_closed  (** client sessions ended (disconnect or error) *)

type dist =
  | Partition_size  (** tuples (both sides) per parallel partition *)
  | Domain_busy_ns  (** wall time of each partition sweep, on its domain *)
  | Sanitizer_ns  (** wall time spent inside TPSan checks *)
  | Prob_cache_lookup_ns
      (** wall time of each [Prob.Cache.compute] call, hit or miss *)
  | Oracle_eval_ns
      (** wall time of each snapshot-semantics oracle evaluation *)
  | Analysis_ns
      (** wall time of each deep static-analysis pass over a plan *)
  | Spill_partition_bytes
      (** encoded on-disk bytes of each spill partition (both sides of
          one partition index together) *)
  | Pool_hit_rate
      (** buffer-pool hit rate over one spilled join, in permille
          (hits × 1000 / (hits + misses)) — one observation per spilled
          join *)
  | Server_query_ns
      (** wall time from dequeue to response for each server query
          (execution only; queueing time is {!Server_queue_ns}) *)
  | Server_queue_ns
      (** wall time each admitted query spent waiting in the admission
          queue before a worker picked it up *)

type t
(** A metrics registry. Create one per measured run; reuse reads
    accumulate. *)

type dist_stats = { count : int; sum : int; min : int; max : int }
(** Exact moments of a distribution; [min] is 0 when empty. Quantiles
    come from {!dist_snapshot}/{!quantile}. *)

type snapshot = {
  counters : (string * int) list;  (** every counter, declaration order *)
  dists : (string * Hist.snapshot) list;  (** every distribution *)
  labeled : (string * string * Hist.snapshot) list;
      (** (metric, label, histogram) of the dynamic labeled family,
          sorted by metric then label — e.g.
          [("alloc_minor_words", "nj-left-outer", …)] *)
}

val create : unit -> t

(** {2 The global sink} *)

val install : t -> unit
(** Make [t] the process-global sink. Replaces any previous sink. *)

val uninstall : unit -> unit

val with_sink : t -> (unit -> 'a) -> 'a
(** Installs [t], runs the thunk, restores the previously installed sink
    (even on exceptions). *)

val active : unit -> t option
val enabled : unit -> bool

(** {2 Recording (no-ops without a sink)} *)

val incr : counter -> unit
val add : counter -> int -> unit
val observe : dist -> int -> unit

val observe_labeled : metric:string -> label:string -> int -> unit
(** Record into the dynamic labeled histogram family — [metric] names
    the family (e.g. ["alloc_minor_words"]), [label] the member (e.g. a
    span name). Creation of a new member takes a mutex; recording into
    an existing one is the histogram's wait-free path plus the lookup.
    Intended for span-close-granularity events, not sweep hot loops. *)

val time : dist -> (unit -> 'a) -> 'a
(** Runs the thunk; with a sink installed, additionally observes its
    wall-clock duration in nanoseconds into [dist]. *)

val count_alloc : counter -> (unit -> 'a) -> 'a
(** Runs the thunk; with a sink installed, additionally adds the GC
    allocation deltas of the current domain: minor words (from
    [Gc.minor_words], exact without an intervening collection) into
    [counter], major-heap words into {!Major_alloc_words} and promoted
    words into {!Promoted_words} (both from [Gc.counters]). Allocations
    made by other domains — e.g. the partitioned sweep's workers — are
    not counted. *)

(** {2 Reading} *)

val get : t -> counter -> int

val dist_stats : t -> dist -> dist_stats

val dist_snapshot : t -> dist -> Hist.snapshot
(** The full histogram snapshot behind a distribution. *)

val quantile : t -> dist -> float -> int
(** [quantile t d q] = [Hist.quantile (dist_snapshot t d) q]. *)

val mean : dist_stats -> float
(** [sum/count], 0 when empty. *)

val counter_name : counter -> string
val dist_name : dist -> string
val snapshot : t -> snapshot
val reset : t -> unit

val to_json : t -> string
(** The machine-readable stats document behind [tpdb_cli query
    --stats-json] (embedded verbatim by the bench harness):
    [{"counters": {..}, "distributions": {"partition_size": {"count": n,
    "sum": n, "min": n, "max": n, "mean": x, "p50": n, "p90": n,
    "p99": n}, ..}, "span_distributions": {"alloc_minor_words":
    {"<span>": {..}}, ..}}]. *)

val save : t -> string -> unit
(** Writes {!to_json} (newline-terminated) to a file. *)

val to_openmetrics : t -> string
(** The OpenMetrics 1.0 text exposition of the registry, ready for a
    Prometheus scrape endpoint: every counter as a [counter] family
    ([tpdb_<name>_total]), every distribution as a [summary] family
    (quantiles 0.5/0.9/0.99 plus [_count]/[_sum]) with a [_max] gauge,
    and every labeled histogram as a summary family with a
    [span="<label>"] label. Terminated by [# EOF]. *)

val save_openmetrics : t -> string -> unit
(** Writes {!to_openmetrics} to a file ([--stats-openmetrics]). *)
