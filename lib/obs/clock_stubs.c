/* Monotonic time for the observability clock.
 *
 * OCaml's Unix library exposes gettimeofday but no clock_gettime, and a
 * wall clock stepped by NTP makes span durations negative. This stub
 * returns CLOCK_MONOTONIC in integer nanoseconds (fits an OCaml int on
 * 64-bit: 2^62 ns ~ 146 years of uptime), or -1 when the platform has
 * no monotonic clock so the OCaml side can fall back to clamped wall
 * time. No OCaml allocation happens here, hence [@@noalloc] callers. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value tpdb_clock_monotonic_ns(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
#endif
  return Val_long(-1);
}
