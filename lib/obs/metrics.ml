type counter =
  | Tuples_in
  | Tuples_out
  | Windows_overlapping
  | Windows_unmatched
  | Windows_negating
  | Sweep_segments
  | Lineage_nodes
  | Prob_evals
  | Partition_sweeps
  | Sanitizer_checks
  | Prob_cache_hits
  | Prob_cache_misses
  | Prob_cache_resets
  | Oracle_evals
  | Oracle_comparisons
  | Oracle_mismatches
  | Minor_alloc_words
  | Analysis_deep_passes
  | Analysis_pruned_subplans
  | Analysis_folded_atoms
  | Analysis_safe_joins
  | Analysis_static_prob_evals
  | Prob_readonce_checks
  | Prob_bdd_fallbacks

type dist =
  | Partition_size
  | Domain_busy_ns
  | Sanitizer_ns
  | Prob_cache_lookup_ns
  | Oracle_eval_ns
  | Analysis_ns

let counters =
  [
    Tuples_in;
    Tuples_out;
    Windows_overlapping;
    Windows_unmatched;
    Windows_negating;
    Sweep_segments;
    Lineage_nodes;
    Prob_evals;
    Partition_sweeps;
    Sanitizer_checks;
    Prob_cache_hits;
    Prob_cache_misses;
    Prob_cache_resets;
    Oracle_evals;
    Oracle_comparisons;
    Oracle_mismatches;
    Minor_alloc_words;
    Analysis_deep_passes;
    Analysis_pruned_subplans;
    Analysis_folded_atoms;
    Analysis_safe_joins;
    Analysis_static_prob_evals;
    Prob_readonce_checks;
    Prob_bdd_fallbacks;
  ]

let dists =
  [ Partition_size; Domain_busy_ns; Sanitizer_ns; Prob_cache_lookup_ns;
    Oracle_eval_ns; Analysis_ns ]

let counter_index = function
  | Tuples_in -> 0
  | Tuples_out -> 1
  | Windows_overlapping -> 2
  | Windows_unmatched -> 3
  | Windows_negating -> 4
  | Sweep_segments -> 5
  | Lineage_nodes -> 6
  | Prob_evals -> 7
  | Partition_sweeps -> 8
  | Sanitizer_checks -> 9
  | Prob_cache_hits -> 10
  | Prob_cache_misses -> 11
  | Prob_cache_resets -> 12
  | Oracle_evals -> 13
  | Oracle_comparisons -> 14
  | Oracle_mismatches -> 15
  | Minor_alloc_words -> 16
  | Analysis_deep_passes -> 17
  | Analysis_pruned_subplans -> 18
  | Analysis_folded_atoms -> 19
  | Analysis_safe_joins -> 20
  | Analysis_static_prob_evals -> 21
  | Prob_readonce_checks -> 22
  | Prob_bdd_fallbacks -> 23

let dist_index = function
  | Partition_size -> 0
  | Domain_busy_ns -> 1
  | Sanitizer_ns -> 2
  | Prob_cache_lookup_ns -> 3
  | Oracle_eval_ns -> 4
  | Analysis_ns -> 5

let counter_name = function
  | Tuples_in -> "tuples_in"
  | Tuples_out -> "tuples_out"
  | Windows_overlapping -> "windows_overlapping"
  | Windows_unmatched -> "windows_unmatched"
  | Windows_negating -> "windows_negating"
  | Sweep_segments -> "sweep_segments"
  | Lineage_nodes -> "lineage_nodes"
  | Prob_evals -> "prob_evals"
  | Partition_sweeps -> "partition_sweeps"
  | Sanitizer_checks -> "sanitizer_checks"
  | Prob_cache_hits -> "prob_cache_hits"
  | Prob_cache_misses -> "prob_cache_misses"
  | Prob_cache_resets -> "prob_cache_resets"
  | Oracle_evals -> "oracle_evals"
  | Oracle_comparisons -> "oracle_comparisons"
  | Oracle_mismatches -> "oracle_mismatches"
  | Minor_alloc_words -> "minor_alloc_words"
  | Analysis_deep_passes -> "analysis_deep_passes"
  | Analysis_pruned_subplans -> "analysis_pruned_subplans"
  | Analysis_folded_atoms -> "analysis_folded_atoms"
  | Analysis_safe_joins -> "analysis_safe_joins"
  | Analysis_static_prob_evals -> "analysis_static_prob_evals"
  | Prob_readonce_checks -> "prob_readonce_checks"
  | Prob_bdd_fallbacks -> "prob_bdd_fallbacks"

let dist_name = function
  | Partition_size -> "partition_size"
  | Domain_busy_ns -> "domain_busy_ns"
  | Sanitizer_ns -> "sanitizer_ns"
  | Prob_cache_lookup_ns -> "prob_cache_lookup_ns"
  | Oracle_eval_ns -> "oracle_eval_ns"
  | Analysis_ns -> "analysis_ns"

type t = {
  c : int Atomic.t array;  (** indexed by [counter_index] *)
  d_count : int Atomic.t array;  (** indexed by [dist_index] *)
  d_sum : int Atomic.t array;
  d_max : int Atomic.t array;
}

type dist_stats = { count : int; sum : int; max : int }

type snapshot = {
  counters : (string * int) list;
  dists : (string * dist_stats) list;
}

let atomics n = Array.init n (fun _ -> Atomic.make 0)

let create () =
  let nd = List.length dists in
  {
    c = atomics (List.length counters);
    d_count = atomics nd;
    d_sum = atomics nd;
    d_max = atomics nd;
  }

(* --- the global sink --- *)

let sink : t option Atomic.t = Atomic.make None
let install t = Atomic.set sink (Some t)
let uninstall () = Atomic.set sink None
let active () = Atomic.get sink
let enabled () = Option.is_some (Atomic.get sink)

let with_sink t f =
  let previous = Atomic.get sink in
  Atomic.set sink (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set sink previous) f

(* --- recording --- *)

let add_to t counter n = ignore (Atomic.fetch_and_add t.c.(counter_index counter) n)

let rec atomic_max cell v =
  let prev = Atomic.get cell in
  if v <= prev then ()
  else if Atomic.compare_and_set cell prev v then ()
  else atomic_max cell v

let observe_in t dist v =
  let i = dist_index dist in
  ignore (Atomic.fetch_and_add t.d_count.(i) 1);
  ignore (Atomic.fetch_and_add t.d_sum.(i) v);
  atomic_max t.d_max.(i) v

let add counter n =
  match Atomic.get sink with None -> () | Some t -> add_to t counter n

let incr counter = add counter 1

let observe dist v =
  match Atomic.get sink with None -> () | Some t -> observe_in t dist v

let time dist f =
  match Atomic.get sink with
  | None -> f ()
  | Some t ->
      let t0 = Clock.now_ns () in
      Fun.protect
        ~finally:(fun () -> observe_in t dist (Clock.now_ns () - t0))
        f

let count_alloc counter f =
  match Atomic.get sink with
  | None -> f ()
  | Some t ->
      let w0 = Gc.minor_words () in
      Fun.protect
        ~finally:(fun () ->
          add_to t counter (int_of_float (Gc.minor_words () -. w0)))
        f

(* --- reading --- *)

let get t counter = Atomic.get t.c.(counter_index counter)

let dist_stats t dist =
  let i = dist_index dist in
  {
    count = Atomic.get t.d_count.(i);
    sum = Atomic.get t.d_sum.(i);
    max = Atomic.get t.d_max.(i);
  }

let mean { count; sum; _ } =
  if count = 0 then 0.0 else float_of_int sum /. float_of_int count

let snapshot t =
  {
    counters = List.map (fun c -> (counter_name c, get t c)) counters;
    dists = List.map (fun d -> (dist_name d, dist_stats t d)) dists;
  }

let reset t =
  Array.iter (fun a -> Atomic.set a 0) t.c;
  List.iter
    (fun a -> Array.iter (fun cell -> Atomic.set cell 0) a)
    [ t.d_count; t.d_sum; t.d_max ]

let to_json t =
  let s = snapshot t in
  Json.obj
    [
      ( "counters",
        Json.obj (List.map (fun (k, v) -> (k, Json.int v)) s.counters) );
      ( "distributions",
        Json.obj
          (List.map
             (fun (k, st) ->
               ( k,
                 Json.obj
                   [
                     ("count", Json.int st.count);
                     ("sum", Json.int st.sum);
                     ("max", Json.int st.max);
                     ("mean", Json.float (mean st));
                   ] ))
             s.dists) );
    ]

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')
