type counter =
  | Tuples_in
  | Tuples_out
  | Windows_overlapping
  | Windows_unmatched
  | Windows_negating
  | Sweep_segments
  | Lineage_nodes
  | Prob_evals
  | Partition_sweeps
  | Sanitizer_checks
  | Prob_cache_hits
  | Prob_cache_misses
  | Prob_cache_resets
  | Oracle_evals
  | Oracle_comparisons
  | Oracle_mismatches
  | Minor_alloc_words
  | Analysis_deep_passes
  | Analysis_pruned_subplans
  | Analysis_folded_atoms
  | Analysis_safe_joins
  | Analysis_static_prob_evals
  | Prob_readonce_checks
  | Prob_bdd_fallbacks
  | Major_alloc_words
  | Promoted_words
  | Spill_bytes
  | Spill_partitions
  | Pool_hits
  | Pool_misses
  | Server_queries
  | Server_rejections
  | Plan_cache_hits
  | Plan_cache_misses
  | Result_cache_hits
  | Result_cache_misses
  | Sessions_opened
  | Sessions_closed

type dist =
  | Partition_size
  | Domain_busy_ns
  | Sanitizer_ns
  | Prob_cache_lookup_ns
  | Oracle_eval_ns
  | Analysis_ns
  | Spill_partition_bytes
  | Pool_hit_rate
  | Server_query_ns
  | Server_queue_ns

let counters =
  [
    Tuples_in;
    Tuples_out;
    Windows_overlapping;
    Windows_unmatched;
    Windows_negating;
    Sweep_segments;
    Lineage_nodes;
    Prob_evals;
    Partition_sweeps;
    Sanitizer_checks;
    Prob_cache_hits;
    Prob_cache_misses;
    Prob_cache_resets;
    Oracle_evals;
    Oracle_comparisons;
    Oracle_mismatches;
    Minor_alloc_words;
    Analysis_deep_passes;
    Analysis_pruned_subplans;
    Analysis_folded_atoms;
    Analysis_safe_joins;
    Analysis_static_prob_evals;
    Prob_readonce_checks;
    Prob_bdd_fallbacks;
    Major_alloc_words;
    Promoted_words;
    Spill_bytes;
    Spill_partitions;
    Pool_hits;
    Pool_misses;
    Server_queries;
    Server_rejections;
    Plan_cache_hits;
    Plan_cache_misses;
    Result_cache_hits;
    Result_cache_misses;
    Sessions_opened;
    Sessions_closed;
  ]

let dists =
  [ Partition_size; Domain_busy_ns; Sanitizer_ns; Prob_cache_lookup_ns;
    Oracle_eval_ns; Analysis_ns; Spill_partition_bytes; Pool_hit_rate;
    Server_query_ns; Server_queue_ns ]

let counter_index = function
  | Tuples_in -> 0
  | Tuples_out -> 1
  | Windows_overlapping -> 2
  | Windows_unmatched -> 3
  | Windows_negating -> 4
  | Sweep_segments -> 5
  | Lineage_nodes -> 6
  | Prob_evals -> 7
  | Partition_sweeps -> 8
  | Sanitizer_checks -> 9
  | Prob_cache_hits -> 10
  | Prob_cache_misses -> 11
  | Prob_cache_resets -> 12
  | Oracle_evals -> 13
  | Oracle_comparisons -> 14
  | Oracle_mismatches -> 15
  | Minor_alloc_words -> 16
  | Analysis_deep_passes -> 17
  | Analysis_pruned_subplans -> 18
  | Analysis_folded_atoms -> 19
  | Analysis_safe_joins -> 20
  | Analysis_static_prob_evals -> 21
  | Prob_readonce_checks -> 22
  | Prob_bdd_fallbacks -> 23
  | Major_alloc_words -> 24
  | Promoted_words -> 25
  | Spill_bytes -> 26
  | Spill_partitions -> 27
  | Pool_hits -> 28
  | Pool_misses -> 29
  | Server_queries -> 30
  | Server_rejections -> 31
  | Plan_cache_hits -> 32
  | Plan_cache_misses -> 33
  | Result_cache_hits -> 34
  | Result_cache_misses -> 35
  | Sessions_opened -> 36
  | Sessions_closed -> 37

let dist_index = function
  | Partition_size -> 0
  | Domain_busy_ns -> 1
  | Sanitizer_ns -> 2
  | Prob_cache_lookup_ns -> 3
  | Oracle_eval_ns -> 4
  | Analysis_ns -> 5
  | Spill_partition_bytes -> 6
  | Pool_hit_rate -> 7
  | Server_query_ns -> 8
  | Server_queue_ns -> 9

let counter_name = function
  | Tuples_in -> "tuples_in"
  | Tuples_out -> "tuples_out"
  | Windows_overlapping -> "windows_overlapping"
  | Windows_unmatched -> "windows_unmatched"
  | Windows_negating -> "windows_negating"
  | Sweep_segments -> "sweep_segments"
  | Lineage_nodes -> "lineage_nodes"
  | Prob_evals -> "prob_evals"
  | Partition_sweeps -> "partition_sweeps"
  | Sanitizer_checks -> "sanitizer_checks"
  | Prob_cache_hits -> "prob_cache_hits"
  | Prob_cache_misses -> "prob_cache_misses"
  | Prob_cache_resets -> "prob_cache_resets"
  | Oracle_evals -> "oracle_evals"
  | Oracle_comparisons -> "oracle_comparisons"
  | Oracle_mismatches -> "oracle_mismatches"
  | Minor_alloc_words -> "minor_alloc_words"
  | Analysis_deep_passes -> "analysis_deep_passes"
  | Analysis_pruned_subplans -> "analysis_pruned_subplans"
  | Analysis_folded_atoms -> "analysis_folded_atoms"
  | Analysis_safe_joins -> "analysis_safe_joins"
  | Analysis_static_prob_evals -> "analysis_static_prob_evals"
  | Prob_readonce_checks -> "prob_readonce_checks"
  | Prob_bdd_fallbacks -> "prob_bdd_fallbacks"
  | Major_alloc_words -> "major_alloc_words"
  | Promoted_words -> "promoted_words"
  | Spill_bytes -> "spill_bytes"
  | Spill_partitions -> "spill_partitions"
  | Pool_hits -> "pool_hits"
  | Pool_misses -> "pool_misses"
  | Server_queries -> "server_queries"
  | Server_rejections -> "server_rejections"
  | Plan_cache_hits -> "plan_cache_hits"
  | Plan_cache_misses -> "plan_cache_misses"
  | Result_cache_hits -> "result_cache_hits"
  | Result_cache_misses -> "result_cache_misses"
  | Sessions_opened -> "sessions_opened"
  | Sessions_closed -> "sessions_closed"

let dist_name = function
  | Partition_size -> "partition_size"
  | Domain_busy_ns -> "domain_busy_ns"
  | Sanitizer_ns -> "sanitizer_ns"
  | Prob_cache_lookup_ns -> "prob_cache_lookup_ns"
  | Oracle_eval_ns -> "oracle_eval_ns"
  | Analysis_ns -> "analysis_ns"
  | Spill_partition_bytes -> "spill_partition_bytes"
  | Pool_hit_rate -> "pool_hit_rate"
  | Server_query_ns -> "server_query_ns"
  | Server_queue_ns -> "server_queue_ns"

type t = {
  c : int Atomic.t array;  (** indexed by [counter_index] *)
  d : Hist.t array;  (** indexed by [dist_index] *)
  labeled_mutex : Mutex.t;
  labeled : (string * string, Hist.t) Hashtbl.t;
      (** (metric, label) → histogram; created on first observation *)
}

type dist_stats = { count : int; sum : int; min : int; max : int }

type snapshot = {
  counters : (string * int) list;
  dists : (string * Hist.snapshot) list;
  labeled : (string * string * Hist.snapshot) list;
}

let atomics n = Array.init n (fun _ -> Atomic.make 0)

let create () =
  {
    c = atomics (List.length counters);
    d = Array.init (List.length dists) (fun _ -> Hist.create ());
    labeled_mutex = Mutex.create ();
    labeled = Hashtbl.create 16;
  }

(* --- the global sink --- *)

let sink : t option Atomic.t = Atomic.make None
let install t = Atomic.set sink (Some t)
let uninstall () = Atomic.set sink None
let active () = Atomic.get sink
let enabled () = Option.is_some (Atomic.get sink)

let with_sink t f =
  let previous = Atomic.get sink in
  Atomic.set sink (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set sink previous) f

(* --- recording --- *)

let add_to t counter n = ignore (Atomic.fetch_and_add t.c.(counter_index counter) n)
let observe_in t dist v = Hist.record t.d.(dist_index dist) v

let add counter n =
  match Atomic.get sink with None -> () | Some t -> add_to t counter n

let incr counter = add counter 1

let observe dist v =
  match Atomic.get sink with None -> () | Some t -> observe_in t dist v

(* Hashtbl reads are not safe under concurrent insertion on multicore
   OCaml, so lookup and creation both hold the mutex. Labeled
   observations only happen on span close with GC accounting enabled,
   never in the sweep hot path. *)
let labeled_hist t ~metric ~label =
  Mutex.lock t.labeled_mutex;
  let h =
    match Hashtbl.find_opt t.labeled (metric, label) with
    | Some h -> h
    | None ->
        let h = Hist.create () in
        Hashtbl.add t.labeled (metric, label) h;
        h
  in
  Mutex.unlock t.labeled_mutex;
  h

let observe_labeled ~metric ~label v =
  match Atomic.get sink with
  | None -> ()
  | Some t -> Hist.record (labeled_hist t ~metric ~label) v

let time dist f =
  match Atomic.get sink with
  | None -> f ()
  | Some t ->
      let t0 = Clock.now_ns () in
      Fun.protect
        ~finally:(fun () -> observe_in t dist (Clock.now_ns () - t0))
        f

let count_alloc counter f =
  match Atomic.get sink with
  | None -> f ()
  | Some t ->
      (* [Gc.quick_stat]'s allocation fields refresh only at collection
         points, so a region that triggers no GC would count as zero;
         [Gc.minor_words] reads the domain's allocation pointer exactly
         and [Gc.counters] keeps major/promoted words current. Minor is
         read last on entry and first on exit so the probes' own
         bookkeeping allocations stay out of the delta. *)
      let _, promoted0, major0 = Gc.counters () in
      let minor0 = Gc.minor_words () in
      Fun.protect
        ~finally:(fun () ->
          let minor1 = Gc.minor_words () in
          let _, promoted1, major1 = Gc.counters () in
          let delta f1 f0 = int_of_float (f1 -. f0) in
          add_to t counter (delta minor1 minor0);
          add_to t Major_alloc_words (delta major1 major0);
          add_to t Promoted_words (delta promoted1 promoted0))
        f

(* --- reading --- *)

let get t counter = Atomic.get t.c.(counter_index counter)
let dist_snapshot t dist = Hist.snapshot t.d.(dist_index dist)

let dist_stats t dist =
  let s = dist_snapshot t dist in
  { count = s.Hist.count; sum = s.Hist.sum; min = s.Hist.min; max = s.Hist.max }

let mean { count; sum; _ } =
  if count = 0 then 0.0 else float_of_int sum /. float_of_int count

let quantile t dist q = Hist.quantile (dist_snapshot t dist) q

let labeled_snapshot t =
  Mutex.lock t.labeled_mutex;
  let entries =
    Hashtbl.fold
      (fun (metric, label) h acc -> (metric, label, Hist.snapshot h) :: acc)
      t.labeled []
  in
  Mutex.unlock t.labeled_mutex;
  List.sort
    (fun (m1, l1, _) (m2, l2, _) ->
      match String.compare m1 m2 with 0 -> String.compare l1 l2 | c -> c)
    entries

let snapshot t =
  {
    counters = List.map (fun c -> (counter_name c, get t c)) counters;
    dists = List.map (fun d -> (dist_name d, dist_snapshot t d)) dists;
    labeled = labeled_snapshot t;
  }

let reset t =
  Array.iter (fun a -> Atomic.set a 0) t.c;
  Array.iter Hist.reset t.d;
  Mutex.lock t.labeled_mutex;
  Hashtbl.reset t.labeled;
  Mutex.unlock t.labeled_mutex

let hist_json (s : Hist.snapshot) =
  Json.obj
    [
      ("count", Json.int s.Hist.count);
      ("sum", Json.int s.Hist.sum);
      ("min", Json.int s.Hist.min);
      ("max", Json.int s.Hist.max);
      ("mean", Json.float (Hist.mean s));
      ("p50", Json.int (Hist.quantile s 0.5));
      ("p90", Json.int (Hist.quantile s 0.9));
      ("p99", Json.int (Hist.quantile s 0.99));
    ]

let to_json t =
  let s = snapshot t in
  let by_metric =
    (* group the labeled histograms by metric name, labels inside *)
    List.fold_left
      (fun acc (metric, label, snap) ->
        let existing = Option.value ~default:[] (List.assoc_opt metric acc) in
        (metric, existing @ [ (label, snap) ])
        :: List.remove_assoc metric acc)
      [] s.labeled
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Json.obj
    [
      ( "counters",
        Json.obj (List.map (fun (k, v) -> (k, Json.int v)) s.counters) );
      ( "distributions",
        Json.obj (List.map (fun (k, snap) -> (k, hist_json snap)) s.dists) );
      ( "span_distributions",
        Json.obj
          (List.map
             (fun (metric, labels) ->
               ( metric,
                 Json.obj
                   (List.map (fun (label, snap) -> (label, hist_json snap)) labels)
               ))
             by_metric) );
    ]

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')

(* --- OpenMetrics text export --- *)

let om_escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let om_name s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    s

let om_summary b ~name ?label (s : Hist.snapshot) =
  let labels extra =
    match (label, extra) with
    | None, [] -> ""
    | _ ->
        let pairs =
          (match label with
          | None -> []
          | Some (k, v) -> [ (k, om_escape_label v) ])
          @ extra
        in
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k v) pairs)
        ^ "}"
  in
  List.iter
    (fun (q, qs) ->
      Printf.bprintf b "%s%s %d\n" name
        (labels [ ("quantile", qs) ])
        (Hist.quantile s q))
    [ (0.5, "0.5"); (0.9, "0.9"); (0.99, "0.99") ];
  Printf.bprintf b "%s_count%s %d\n" name (labels []) s.Hist.count;
  Printf.bprintf b "%s_sum%s %d\n" name (labels []) s.Hist.sum

let to_openmetrics t =
  let s = snapshot t in
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let name = "tpdb_" ^ om_name name in
      Printf.bprintf b "# TYPE %s counter\n" name;
      Printf.bprintf b "%s_total %d\n" name v)
    s.counters;
  List.iter
    (fun (name, snap) ->
      let name = "tpdb_" ^ om_name name in
      Printf.bprintf b "# TYPE %s summary\n" name;
      om_summary b ~name snap;
      Printf.bprintf b "# TYPE %s_max gauge\n" name;
      Printf.bprintf b "%s_max %d\n" name snap.Hist.max)
    s.dists;
  (* one family per labeled metric; labels distinguish the spans *)
  let metrics =
    List.sort_uniq String.compare (List.map (fun (m, _, _) -> m) s.labeled)
  in
  List.iter
    (fun metric ->
      let name = "tpdb_" ^ om_name metric in
      Printf.bprintf b "# TYPE %s summary\n" name;
      List.iter
        (fun (m, label, snap) ->
          if String.equal m metric then
            om_summary b ~name ~label:("span", label) snap)
        s.labeled)
    metrics;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let save_openmetrics t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_openmetrics t))
