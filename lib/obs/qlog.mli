(** Structured query log: one JSONL record per executed query.

    Each {!record} captures what the ROADMAP's prepared-plan cache and
    the future [tpdb_server] need per query: the normalized-plan
    {!record.fingerprint} (a stable hash of the optimized plan shape —
    two runs of the same query text share it, distinct plans differ),
    per-stage wall times summed from the trace spans, the window-class
    counts, row cardinalities, prob-cache traffic, sanitizer time, and
    the run's GC deltas. Records append to a JSONL file ({!append}),
    load back ({!load}), and aggregate into a fingerprint-grouped
    summary with quantile columns ({!summarize} — the [tpdb_cli qlog]
    subcommand).

    A query slower than the [--slow-ms] / [TPDB_SLOW_MS] threshold is
    marked {!record.slow} and the CLI dumps its full Chrome trace next
    to the log ({!record.trace_file} points at it). *)

type gc = {
  minor_words : int;
  major_words : int;
  promoted_words : int;
  major_collections : int;
  top_heap_words : int;  (** peak major heap over the process so far *)
}

type record = {
  ts : string;  (** UTC, ISO-8601 ([2026-08-08T12:00:00Z]) *)
  query : string;  (** the query text as given *)
  fingerprint : string;  (** normalized optimized-plan fingerprint *)
  total_ms : float;  (** end-to-end wall time: plan + run + probability *)
  rows_in : int;
  rows_out : int;
  wo : int;  (** overlapping windows *)
  wu : int;  (** unmatched windows *)
  wn : int;  (** negating windows *)
  prob_cache_hits : int;
  prob_cache_misses : int;
  spill_bytes : int;  (** bytes the out-of-core executor wrote; 0 = in RAM *)
  spill_partitions : int;  (** spill partition count across the query's joins *)
  sanitizer_ms : float;
  stages : (string * float) list;  (** span name → summed wall ms *)
  gc : gc;
  slow : bool;  (** total_ms exceeded the slow-query threshold *)
  trace_file : string option;  (** auto-dumped Chrome trace, if slow *)
}

val to_json : record -> string
(** One line, no embedded newlines — a JSONL row. *)

val append : string -> record -> unit
(** Appends [to_json record] plus a newline to the file, creating it if
    needed. One [open(O_APPEND)]/write/close per record: concurrent
    writers from different processes interleave at line granularity. *)

val load : string -> record list
(** Parses a JSONL file written by {!append}, in file order. Malformed
    or foreign lines are skipped; unknown fields are ignored, missing
    fields default to zero/empty (so the format can grow). *)

val summarize : ?top:int -> ?by:[ `Total | `Mean ] -> record list -> string
(** A human-readable table grouped by fingerprint: runs, total/mean
    wall ms, p50/p90/p99/max (log-bucketed, ≤ ~6% relative error), slow
    count, and a sample query per group; sorted by [by] (default
    [`Total]) descending, truncated to [top] (default 10) groups. *)
