type phase = Complete | Instant

type event = {
  name : string;
  cat : string;
  phase : phase;
  ts_ns : int;  (** start, relative to the trace epoch *)
  dur_ns : int;
  tid : int;
  args : (string * string) list;
}

type t = {
  mutex : Mutex.t;
  mutable events : event list;  (** reverse completion order *)
  epoch_ns : int;
}

let create () =
  { mutex = Mutex.create (); events = []; epoch_ns = Clock.now_ns () }

(* --- the global sink --- *)

let sink : t option Atomic.t = Atomic.make None
let install t = Atomic.set sink (Some t)
let uninstall () = Atomic.set sink None
let active () = Atomic.get sink
let enabled () = Option.is_some (Atomic.get sink)

let with_sink t f =
  let previous = Atomic.get sink in
  Atomic.set sink (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set sink previous) f

(* --- recording --- *)

let record t event =
  Mutex.lock t.mutex;
  t.events <- event :: t.events;
  Mutex.unlock t.mutex

let with_span ?(cat = "tpdb") ?(args = []) name f =
  match Atomic.get sink with
  | None -> f ()
  | Some t ->
      let t0 = Clock.now_ns () in
      Fun.protect
        ~finally:(fun () ->
          record t
            {
              name;
              cat;
              phase = Complete;
              ts_ns = t0 - t.epoch_ns;
              dur_ns = Clock.now_ns () - t0;
              tid = (Domain.self () :> int);
              args;
            })
        f

let instant ?(cat = "tpdb") ?(args = []) name =
  match Atomic.get sink with
  | None -> ()
  | Some t ->
      record t
        {
          name;
          cat;
          phase = Instant;
          ts_ns = Clock.now_ns () - t.epoch_ns;
          dur_ns = 0;
          tid = (Domain.self () :> int);
          args;
        }

(* --- reading --- *)

let spans t =
  Mutex.lock t.mutex;
  let events = t.events in
  Mutex.unlock t.mutex;
  List.rev events

let span_count t = List.length (spans t)
let span_names t = List.map (fun e -> e.name) (spans t)

let us ns = float_of_int ns /. 1e3

let event_json e =
  let base =
    [
      ("name", Json.str e.name);
      ("cat", Json.str e.cat);
      ("ph", Json.str (match e.phase with Complete -> "X" | Instant -> "i"));
      ("ts", Json.float (us e.ts_ns));
      ("pid", Json.int 0);
      ("tid", Json.int e.tid);
    ]
  in
  let dur =
    match e.phase with
    | Complete -> [ ("dur", Json.float (us e.dur_ns)) ]
    | Instant -> [ ("s", Json.str "t") ]
  in
  let args =
    match e.args with
    | [] -> []
    | args ->
        [ ("args", Json.obj (List.map (fun (k, v) -> (k, Json.str v)) args)) ]
  in
  Json.obj (base @ dur @ args)

let to_json t =
  Json.obj
    [
      ("traceEvents", Json.arr (List.map event_json (spans t)));
      ("displayTimeUnit", Json.str "ms");
    ]

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')
