type phase = Complete | Instant

type event = {
  name : string;
  cat : string;
  phase : phase;
  ts_ns : int;  (** start, relative to the trace epoch *)
  dur_ns : int;
  tid : int;
  args : (string * string) list;
}

type t = {
  mutex : Mutex.t;
  mutable events : event list;  (** reverse completion order *)
  epoch_ns : int;
  gc : bool;  (** capture per-span GC allocation deltas *)
}

let create ?(gc = false) () =
  { mutex = Mutex.create (); events = []; epoch_ns = Clock.now_ns (); gc }

(* --- the global sink --- *)

let sink : t option Atomic.t = Atomic.make None
let install t = Atomic.set sink (Some t)
let uninstall () = Atomic.set sink None
let active () = Atomic.get sink
let enabled () = Option.is_some (Atomic.get sink)

let with_sink t f =
  let previous = Atomic.get sink in
  Atomic.set sink (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set sink previous) f

(* --- recording --- *)

let record t event =
  Mutex.lock t.mutex;
  t.events <- event :: t.events;
  Mutex.unlock t.mutex

(* GC deltas are per-domain, matching the span itself: a span's work
   runs on the domain that opened it. [Gc.quick_stat]'s allocation
   fields are only refreshed by collections, so a short span that
   triggers no GC would read all-zero deltas from it; the minor delta
   therefore comes from [Gc.minor_words] (which reads the domain's
   allocation pointer exactly) and the major/promoted deltas from
   [Gc.counters]. [Gc.quick_stat] still supplies the collection count.
   The baseline reads minor last and the close reads it first, so the
   bookkeeping allocations of the other probes stay out of the delta. *)
type gc_baseline = {
  minor0 : float;
  promoted0 : float;
  major0 : float;
  collections0 : int;
}

let gc_baseline () =
  let collections0 = (Gc.quick_stat ()).Gc.major_collections in
  let _, promoted0, major0 = Gc.counters () in
  { minor0 = Gc.minor_words (); promoted0; major0; collections0 }

let gc_args b =
  let minor = int_of_float (Gc.minor_words () -. b.minor0) in
  let _, promoted1, major1 = Gc.counters () in
  let major = int_of_float (major1 -. b.major0) in
  ( minor,
    major,
    [
      ("minor_words", string_of_int minor);
      ("major_words", string_of_int major);
      ( "promoted_words",
        string_of_int (int_of_float (promoted1 -. b.promoted0)) );
      ( "major_collections",
        string_of_int
          ((Gc.quick_stat ()).Gc.major_collections - b.collections0) );
    ] )

let with_span ?(cat = "tpdb") ?(args = []) name f =
  match Atomic.get sink with
  | None -> f ()
  | Some t ->
      let gc0 = if t.gc then Some (gc_baseline ()) else None in
      let t0 = Clock.now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let dur_ns = Clock.now_ns () - t0 in
          let args =
            match gc0 with
            | None -> args
            | Some b0 ->
                let minor, major, gc = gc_args b0 in
                Metrics.observe_labeled ~metric:"alloc_minor_words"
                  ~label:name minor;
                Metrics.observe_labeled ~metric:"alloc_major_words"
                  ~label:name major;
                args @ gc
          in
          record t
            {
              name;
              cat;
              phase = Complete;
              ts_ns = t0 - t.epoch_ns;
              dur_ns;
              tid = (Domain.self () :> int);
              args;
            })
        f

let instant ?(cat = "tpdb") ?(args = []) name =
  match Atomic.get sink with
  | None -> ()
  | Some t ->
      record t
        {
          name;
          cat;
          phase = Instant;
          ts_ns = Clock.now_ns () - t.epoch_ns;
          dur_ns = 0;
          tid = (Domain.self () :> int);
          args;
        }

(* --- reading --- *)

let spans t =
  Mutex.lock t.mutex;
  let events = t.events in
  Mutex.unlock t.mutex;
  List.rev events

let span_count t = List.length (spans t)
let span_names t = List.map (fun e -> e.name) (spans t)

let totals t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      match e.phase with
      | Instant -> ()
      | Complete ->
          let key = (e.cat, e.name) in
          (match Hashtbl.find_opt tbl key with
          | Some sum -> Hashtbl.replace tbl key (sum + e.dur_ns)
          | None ->
              order := key :: !order;
              Hashtbl.add tbl key e.dur_ns))
    (spans t);
  List.rev_map
    (fun ((cat, name) as key) -> (cat, name, Hashtbl.find tbl key))
    !order

let us ns = float_of_int ns /. 1e3

let event_json e =
  let base =
    [
      ("name", Json.str e.name);
      ("cat", Json.str e.cat);
      ("ph", Json.str (match e.phase with Complete -> "X" | Instant -> "i"));
      ("ts", Json.float (us e.ts_ns));
      ("pid", Json.int 0);
      ("tid", Json.int e.tid);
    ]
  in
  let dur =
    match e.phase with
    | Complete -> [ ("dur", Json.float (us e.dur_ns)) ]
    | Instant -> [ ("s", Json.str "t") ]
  in
  let args =
    match e.args with
    | [] -> []
    | args ->
        [ ("args", Json.obj (List.map (fun (k, v) -> (k, Json.str v)) args)) ]
  in
  Json.obj (base @ dur @ args)

let to_json t =
  Json.obj
    [
      ("traceEvents", Json.arr (List.map event_json (spans t)));
      ("displayTimeUnit", Json.str "ms");
    ]

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')
