type gc = {
  minor_words : int;
  major_words : int;
  promoted_words : int;
  major_collections : int;
  top_heap_words : int;
}

type record = {
  ts : string;
  query : string;
  fingerprint : string;
  total_ms : float;
  rows_in : int;
  rows_out : int;
  wo : int;
  wu : int;
  wn : int;
  prob_cache_hits : int;
  prob_cache_misses : int;
  spill_bytes : int;
  spill_partitions : int;
  sanitizer_ms : float;
  stages : (string * float) list;
  gc : gc;
  slow : bool;
  trace_file : string option;
}

(* --- writing --- *)

let to_json r =
  Json.obj
    ([
       ("ts", Json.str r.ts);
       ("query", Json.str r.query);
       ("fingerprint", Json.str r.fingerprint);
       ("total_ms", Json.float r.total_ms);
       ("rows_in", Json.int r.rows_in);
       ("rows_out", Json.int r.rows_out);
       ( "windows",
         Json.obj
           [
             ("wo", Json.int r.wo); ("wu", Json.int r.wu); ("wn", Json.int r.wn);
           ] );
       ("prob_cache_hits", Json.int r.prob_cache_hits);
       ("prob_cache_misses", Json.int r.prob_cache_misses);
       ("spill_bytes", Json.int r.spill_bytes);
       ("spill_partitions", Json.int r.spill_partitions);
       ("sanitizer_ms", Json.float r.sanitizer_ms);
       ( "stages",
         Json.obj (List.map (fun (k, ms) -> (k, Json.float ms)) r.stages) );
       ( "gc",
         Json.obj
           [
             ("minor_words", Json.int r.gc.minor_words);
             ("major_words", Json.int r.gc.major_words);
             ("promoted_words", Json.int r.gc.promoted_words);
             ("major_collections", Json.int r.gc.major_collections);
             ("top_heap_words", Json.int r.gc.top_heap_words);
           ] );
       ("slow", if r.slow then "true" else "false");
     ]
    @ match r.trace_file with
      | None -> []
      | Some f -> [ ("trace_file", Json.str f) ])

let append path r =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json r);
      output_char oc '\n')

(* --- a minimal JSON reader for [load] ---------------------------------

   Just enough to read back what [to_json] writes (plus foreign fields,
   which are ignored), without adding a parser dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with Some d when d = c -> advance () | _ -> raise Bad_json
  in
  let literal word value =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      value
    end
    else raise Bad_json
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise Bad_json
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then raise Bad_json;
              let code =
                try int_of_string ("0x" ^ String.sub s !pos 4)
                with _ -> raise Bad_json
              in
              pos := !pos + 4;
              (* the writer only \u-escapes control characters *)
              Buffer.add_char buf (Char.chr (code land 0xff))
          | Some c ->
              advance ();
              Buffer.add_char buf
                (match c with
                | 'n' -> '\n'
                | 't' -> '\t'
                | 'r' -> '\r'
                | 'b' -> '\b'
                | 'f' -> '\012'
                | c -> c)
          | None -> raise Bad_json);
          go ()
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let numeric = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numeric c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> raise Bad_json
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> raise Bad_json
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> raise Bad_json
          in
          items []
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
    | None -> raise Bad_json
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then raise Bad_json;
  v

let field k = function Obj fields -> List.assoc_opt k fields | _ -> None
let str_of ?(default = "") j k =
  match field k j with Some (Str s) -> s | _ -> default
let num_of ?(default = 0.0) j k =
  match field k j with Some (Num x) -> x | _ -> default
let int_of ?default j k = int_of_float (num_of ?default:(Option.map float_of_int default) j k)
let bool_of j k = match field k j with Some (Bool b) -> b | _ -> false

let record_of_json j =
  let windows = Option.value (field "windows" j) ~default:(Obj []) in
  let gcj = Option.value (field "gc" j) ~default:(Obj []) in
  {
    ts = str_of j "ts";
    query = str_of j "query";
    fingerprint = str_of j "fingerprint";
    total_ms = num_of j "total_ms";
    rows_in = int_of j "rows_in";
    rows_out = int_of j "rows_out";
    wo = int_of windows "wo";
    wu = int_of windows "wu";
    wn = int_of windows "wn";
    prob_cache_hits = int_of j "prob_cache_hits";
    prob_cache_misses = int_of j "prob_cache_misses";
    (* absent in logs written before the out-of-core executor: 0 *)
    spill_bytes = int_of j "spill_bytes";
    spill_partitions = int_of j "spill_partitions";
    sanitizer_ms = num_of j "sanitizer_ms";
    stages =
      (match field "stages" j with
      | Some (Obj fields) ->
          List.filter_map
            (fun (k, v) -> match v with Num x -> Some (k, x) | _ -> None)
            fields
      | _ -> []);
    gc =
      {
        minor_words = int_of gcj "minor_words";
        major_words = int_of gcj "major_words";
        promoted_words = int_of gcj "promoted_words";
        major_collections = int_of gcj "major_collections";
        top_heap_words = int_of gcj "top_heap_words";
      };
    slow = bool_of j "slow";
    trace_file =
      (match field "trace_file" j with Some (Str f) -> Some f | _ -> None);
  }

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line when String.trim line = "" -> go acc
        | line -> (
            match record_of_json (parse_json line) with
            | r -> go (r :: acc)
            | exception _ -> go acc)
      in
      go [])

(* --- summarize --- *)

type group = {
  fp : string;
  mutable runs : int;
  mutable total_us : int;
  mutable slow_runs : int;
  mutable sample : string;  (** query text of the first run seen *)
  hist : Hist.t;  (** per-run total time in µs *)
}

let truncate_query q =
  let q =
    String.map (function '\n' | '\r' | '\t' -> ' ' | c -> c) q
  in
  if String.length q <= 42 then q else String.sub q 0 39 ^ "..."

let summarize ?(top = 10) ?(by = `Total) records =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      let g =
        match Hashtbl.find_opt tbl r.fingerprint with
        | Some g -> g
        | None ->
            let g =
              {
                fp = r.fingerprint;
                runs = 0;
                total_us = 0;
                slow_runs = 0;
                sample = r.query;
                hist = Hist.create ();
              }
            in
            Hashtbl.add tbl r.fingerprint g;
            order := g :: !order;
            g
      in
      let us = int_of_float (r.total_ms *. 1000.0) in
      g.runs <- g.runs + 1;
      g.total_us <- g.total_us + us;
      if r.slow then g.slow_runs <- g.slow_runs + 1;
      Hist.record g.hist us)
    records;
  let key g =
    match by with
    | `Total -> float_of_int g.total_us
    | `Mean -> float_of_int g.total_us /. float_of_int g.runs
  in
  let groups =
    List.stable_sort (fun a b -> Float.compare (key b) (key a)) (List.rev !order)
  in
  let shown = if List.length groups > top then top else List.length groups in
  let b = Buffer.create 1024 in
  Printf.bprintf b "%d queries, %d distinct plans%s\n" (List.length records)
    (List.length groups)
    (if shown < List.length groups then
       Printf.sprintf " (top %d by %s time)" shown
         (match by with `Total -> "total" | `Mean -> "mean")
     else "");
  Printf.bprintf b "%-16s %5s %5s %10s %9s %9s %9s %9s %9s  %s\n" "fingerprint"
    "runs" "slow" "total_ms" "mean_ms" "p50_ms" "p90_ms" "p99_ms" "max_ms"
    "query";
  let ms us = float_of_int us /. 1000.0 in
  List.iteri
    (fun i g ->
      if i < top then begin
        let s = Hist.snapshot g.hist in
        Printf.bprintf b "%-16s %5d %5d %10.1f %9.1f %9.1f %9.1f %9.1f %9.1f  %s\n"
          g.fp g.runs g.slow_runs (ms g.total_us)
          (ms g.total_us /. float_of_int g.runs)
          (ms (Hist.quantile s 0.5))
          (ms (Hist.quantile s 0.9))
          (ms (Hist.quantile s 0.99))
          (ms s.Hist.max) (truncate_query g.sample)
      end)
    groups;
  Buffer.contents b
