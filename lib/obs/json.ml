let escape s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let str = escape

let obj fields =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> escape k ^ ": " ^ v) fields)
  ^ "}"

let arr items = "[" ^ String.concat ", " items ^ "]"
let int = string_of_int

let float f =
  if Float.is_finite f then
    (* %.17g round-trips; strip to the shortest representation dune's
       printer produces for readability. *)
    let s = Printf.sprintf "%.6f" f in
    s
  else "null"
