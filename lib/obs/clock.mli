(** The observability clock: a monotonic source, wall time only as an
    anchor.

    Chrome-trace timestamps, busy-time histograms and qlog durations
    need a clock that never runs backwards — an NTP step or manual
    wall-clock adjustment must not produce negative span durations. So
    [now_ns] reads the OS monotonic clock ([clock_gettime
    CLOCK_MONOTONIC] via a C stub) relative to a process-local epoch.
    On platforms without a monotonic clock it falls back to
    [Unix.gettimeofday] clamped to the largest value any domain has
    seen (a lock-free atomic max); the clamp also runs over the
    monotonic source as a cross-domain ordering guarantee, so every
    pair of reads is ordered consistently with program order. *)

val source : [ `Monotonic | `Wall ]
(** Which source backs [now_ns]: [`Monotonic] when the OS clock is
    available (every supported platform in practice), [`Wall] for the
    clamped-gettimeofday fallback. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary process-local epoch, monotonically
    non-decreasing across all domains, immune to wall-clock steps when
    [source = `Monotonic]. *)

val wall_epoch : float
(** The [Unix.gettimeofday] instant corresponding to [now_ns] = 0:
    use it to anchor relative timestamps to calendar time in traces
    and logs. Never use it to compute durations. *)

val pp_ms : float -> string
(** A duration in milliseconds, human-scaled: ["870 µs"], ["12.3 ms"],
    ["1.25 s"] — the unit picked so the number stays in [1, 1000). *)

val pp_ns : int -> string
(** {!pp_ms} over nanoseconds. *)
