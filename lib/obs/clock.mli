(** The observability clock: wall time forced monotonic.

    Chrome-trace timestamps and busy-time histograms need a clock that
    never runs backwards across domains. The stdlib has no monotonic
    clock, so this one reads [Unix.gettimeofday] and clamps it to the
    largest value any domain has seen (a lock-free atomic max), which
    makes every pair of reads ordered consistently with program order —
    good enough for spans whose durations are far above the clock's
    resolution. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary process-local epoch, monotonically
    non-decreasing across all domains. *)

val pp_ms : float -> string
(** A duration in milliseconds, human-scaled: ["870 µs"], ["12.3 ms"],
    ["1.25 s"] — the unit picked so the number stays in [1, 1000). *)

val pp_ns : int -> string
(** {!pp_ms} over nanoseconds. *)
