(** Lock-free log-bucketed histograms (HDR-style).

    A {!t} counts non-negative integer observations in base-2 buckets
    subdivided into {!sub_count} linear sub-buckets per octave, so any
    recorded value lands in a bucket whose width is at most 1/8 of its
    magnitude: reporting a bucket's midpoint is within ~6.25% relative
    error of the true value. Values below {!sub_count} get exact
    single-value buckets.

    Recording is wait-free — one [fetch_and_add] per bucket plus
    CAS-maxed/minned extrema — so multiple domains can record into the
    same histogram concurrently without losing counts. Reads take a
    {!snapshot} (a plain immutable value); snapshots merge exactly:
    merging two snapshots equals snapshotting the merged streams.

    This is the representation behind every {!Metrics} distribution:
    count/sum/min/max are tracked exactly, quantiles (p50/p90/p99) come
    from the buckets with the bounded relative error above. *)

type t

val sub_bits : int
(** 3: each power-of-two octave splits into [2^sub_bits] sub-buckets. *)

val sub_count : int
(** [2^sub_bits] = 8. *)

val bucket_count : int
(** Total number of buckets covering [0, max_int]. *)

val bucket_of : int -> int
(** The bucket index a value lands in; negative values clamp to 0. *)

val bucket_bounds : int -> int * int
(** [(lo, hi)] inclusive value range of a bucket. Buckets tile
    [0, max_int]: [bucket_bounds (bucket_of v)] always contains [v]. *)

val create : unit -> t

val record : t -> int -> unit
(** Wait-free; safe from any domain. Negative values clamp to 0. *)

val reset : t -> unit

(** {2 Snapshots} *)

type snapshot = {
  count : int;
  sum : int;
  min : int;  (** 0 when empty *)
  max : int;
  buckets : (int * int) list;
      (** (bucket index, count), ascending index, zero counts omitted *)
}

val empty : snapshot

val snapshot : t -> snapshot
(** Consistent under concurrent recording in the sense that no count is
    lost once the recording calls have returned. *)

val merge : snapshot -> snapshot -> snapshot
(** Exact: [merge (snapshot a) (snapshot b)] equals the snapshot of a
    histogram that recorded both streams. *)

val mean : snapshot -> float
(** [sum/count], 0 when empty. *)

val quantile : snapshot -> float -> int
(** [quantile s q] for q in [0,1]: the midpoint of the bucket holding
    the rank-⌈q·count⌉ observation, clamped into [min, max] — always in
    the same bucket as the exact order statistic. 0 when empty. *)
