let sub_bits = 3
let sub_count = 1 lsl sub_bits

(* floor log2, defined for v >= 1 *)
let msb v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_of v =
  if v < sub_count then if v < 0 then 0 else v
  else
    let shift = msb v - sub_bits in
    ((shift + 1) * sub_count) + ((v lsr shift) land (sub_count - 1))

let bucket_count = bucket_of max_int + 1

let bucket_bounds i =
  if i < sub_count then (i, i)
  else
    let shift = (i / sub_count) - 1 in
    let lo = (sub_count + (i mod sub_count)) lsl shift in
    (lo, lo + (1 lsl shift) - 1)

type t = {
  count : int Atomic.t;
  sum : int Atomic.t;
  min : int Atomic.t;  (** [max_int] when empty *)
  max : int Atomic.t;
  buckets : int Atomic.t array;
}

let create () =
  {
    count = Atomic.make 0;
    sum = Atomic.make 0;
    min = Atomic.make max_int;
    max = Atomic.make 0;
    buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
  }

let rec atomic_clamp ~keep cell v =
  let prev = Atomic.get cell in
  if keep prev v then ()
  else if Atomic.compare_and_set cell prev v then ()
  else atomic_clamp ~keep cell v

let record t v =
  let v = if v < 0 then 0 else v in
  ignore (Atomic.fetch_and_add t.count 1);
  ignore (Atomic.fetch_and_add t.sum v);
  atomic_clamp ~keep:(fun prev v -> prev <= v) t.min v;
  atomic_clamp ~keep:(fun prev v -> prev >= v) t.max v;
  ignore (Atomic.fetch_and_add t.buckets.(bucket_of v) 1)

let reset t =
  Atomic.set t.count 0;
  Atomic.set t.sum 0;
  Atomic.set t.min max_int;
  Atomic.set t.max 0;
  Array.iter (fun b -> Atomic.set b 0) t.buckets

type snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
}

let empty = { count = 0; sum = 0; min = 0; max = 0; buckets = [] }

let snapshot (t : t) =
  let count = Atomic.get t.count in
  if count = 0 then empty
  else
    let buckets = ref [] in
    for i = bucket_count - 1 downto 0 do
      let c = Atomic.get t.buckets.(i) in
      if c > 0 then buckets := (i, c) :: !buckets
    done;
    {
      count;
      sum = Atomic.get t.sum;
      min = (let m = Atomic.get t.min in if m = max_int then 0 else m);
      max = Atomic.get t.max;
      buckets = !buckets;
    }

let rec merge_buckets a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (i, c) :: ta, (j, d) :: tb ->
      if i = j then (i, c + d) :: merge_buckets ta tb
      else if i < j then (i, c) :: merge_buckets ta b
      else (j, d) :: merge_buckets a tb

let merge a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else
    {
      count = a.count + b.count;
      sum = a.sum + b.sum;
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
      buckets = merge_buckets a.buckets b.buckets;
    }

let mean s = if s.count = 0 then 0.0 else float_of_int s.sum /. float_of_int s.count

let quantile s q =
  if s.count = 0 then 0
  else
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = int_of_float (Float.ceil (q *. float_of_int s.count)) in
    let rank = if rank < 1 then 1 else rank in
    let rec go cumulative = function
      | [] -> s.max
      | (i, c) :: rest ->
          if cumulative + c >= rank then
            let lo, hi = bucket_bounds i in
            (* the midpoint stays inside the exact order statistic's
               bucket even after clamping: min <= stat <= max and both
               clamps move toward the bucket holding the statistic *)
            Stdlib.min s.max (Stdlib.max s.min (lo + ((hi - lo) / 2)))
          else go (cumulative + c) rest
    in
    go 0 s.buckets
