(** Attribute values of facts.

    Outer-join results contain null-padded facts, so [Null] is a first-
    class value. Numeric values compare numerically across [I]/[F]. *)

type t =
  | Null
  | S of string
  | I of int
  | F of float

exception Type_error of { context : string; left : t; right : t }
(** Raised instead of a bare assertion when two values turn out not to be
    comparable; [context] names the operation. Rendered by the CLI's
    diagnostic reporter. *)

val equal : t -> t -> bool
(** SQL-style for joins is handled at the predicate level; here [Null]
    equals [Null] (needed for set semantics of results). *)

val compare : t -> t -> int
(** Total order: [Null] first, then numerics (by value), then strings. *)

val hash : t -> int
(** Compatible with {!equal}: in particular [I 2] and [F 2.] hash alike. *)

val is_null : t -> bool

val to_string : t -> string
(** [Null] prints as ["-"], as in the paper's result tables. *)

val pp : Format.formatter -> t -> unit

val of_string_guess : string -> t
(** ["-"] and [""] parse as [Null]; otherwise try int, then float, then
    string. Inverse of {!to_string} up to numeric formatting. *)
