(* Hash tables keyed on (fact, lineage) pairs. The operators group output
   tuples under this key in several places (coalescing, set operations,
   the reference oracle); hash-consed formulas carry mutable memo fields,
   so the polymorphic [Hashtbl.hash] is off the table — it would hash the
   same formula differently before and after memoization. *)

module Formula = Tpdb_lineage.Formula

module Key = struct
  type t = Fact.t * Formula.t

  let equal (f1, l1) (f2, l2) = Fact.equal f1 f2 && Formula.equal l1 l2
  let hash (f, l) = ((Fact.hash f * 31) + Formula.hash l) land max_int
end

module Tbl = Hashtbl.Make (Key)

type key = Key.t
type 'a t = 'a Tbl.t

let create = Tbl.create
let find_opt = Tbl.find_opt
let find = Tbl.find
let add = Tbl.add
let replace = Tbl.replace
let mem = Tbl.mem
let fold = Tbl.fold
let length = Tbl.length
