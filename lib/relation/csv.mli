(** CSV persistence for TP relations.

    Format: a header line [col1,...,colN,lineage,ts,te,p], then one line
    per tuple. Lineages use the ASCII formula notation. Commas inside
    values are not supported (values are workload identifiers, not free
    text). *)

exception Error of { path : string; line : int option; message : string }
(** Malformed input: bad header, wrong field count, unparsable cell, or
    an unreadable file. [line] is 1-based ([None] when the problem is
    not tied to one line). Rendered "path:line: message" by
    [Printexc.to_string] and by the CLI's diagnostic reporter. *)

val save : string -> Relation.t -> unit

val load : name:string -> string -> Relation.t
(** Raises {!Error} with file/line context on malformed input. *)

val to_channel : out_channel -> Relation.t -> unit

val to_string : Relation.t -> string
(** The full CSV document (header + rows) as a string — what {!save}
    writes. Used to embed reproducible inputs in fuzzer and qcheck
    counterexample reports. *)

val of_lines : name:string -> ?path:string -> string list -> Relation.t
(** [path] (default ["<csv>"]) is only used in {!Error} diagnostics. *)
