(** Hash tables keyed on (fact, lineage) pairs.

    The grouping key used when merging operator output: {!Fact.hash}
    combined with the hash-consed {!Tpdb_lineage.Formula.hash}, with
    structural equality on both components. The polymorphic
    [Hashtbl.hash] must not be used on formulas — their mutable memo
    fields would make the hash drift. *)

type key = Fact.t * Tpdb_lineage.Formula.t
type 'a t

val create : int -> 'a t
val find_opt : 'a t -> key -> 'a option
val find : 'a t -> key -> 'a
val add : 'a t -> key -> 'a -> unit
val replace : 'a t -> key -> 'a -> unit
val mem : 'a t -> key -> bool
val fold : (key -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
val length : 'a t -> int
