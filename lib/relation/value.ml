type t =
  | Null
  | S of string
  | I of int
  | F of float

exception Type_error of { context : string; left : t; right : t }

let as_float = function
  | I i -> Some (float_of_int i)
  | F f -> Some f
  | Null | S _ -> None

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | S x, S y -> String.equal x y
  | I x, I y -> x = y
  | F x, F y -> Float.equal x y
  | (I _ | F _), (I _ | F _) -> (
      match (as_float a, as_float b) with
      | Some x, Some y -> Float.equal x y
      | _ -> false)
  | (Null | S _ | I _ | F _), _ -> false

let compare a b =
  let rank = function Null -> 0 | I _ | F _ -> 1 | S _ -> 2 in
  match (a, b) with
  | Null, Null -> 0
  | S x, S y -> String.compare x y
  | (I _ | F _), (I _ | F _) -> (
      match (as_float a, as_float b) with
      | Some x, Some y -> Float.compare x y
      | _ -> raise (Type_error { context = "Value.compare"; left = a; right = b }))
  | _ -> Int.compare (rank a) (rank b)

let hash = function
  | Null -> 17
  | S s -> Hashtbl.hash s
  | I i -> Hashtbl.hash (float_of_int i)
  | F f -> Hashtbl.hash f

let is_null = function Null -> true | S _ | I _ | F _ -> false

let to_string = function
  | Null -> "-"
  | S s -> s
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%g" f

let pp ppf v = Format.pp_print_string ppf (to_string v)

let () =
  Printexc.register_printer (function
    | Type_error { context; left; right } ->
        Some
          (Printf.sprintf "%s: values '%s' and '%s' are not comparable" context
             (to_string left) (to_string right))
    | _ -> None)

let of_string_guess s =
  match s with
  | "" | "-" -> Null
  | _ -> (
      match int_of_string_opt s with
      | Some i -> I i
      | None -> (
          match float_of_string_opt s with
          | Some f -> F f
          | None -> S s))
