module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula

exception Error of { path : string; line : int option; message : string }

let () =
  Printexc.register_printer (function
    | Error { path; line; message } ->
        Some
          (match line with
          | Some n -> Printf.sprintf "%s:%d: %s" path n message
          | None -> Printf.sprintf "%s: %s" path message)
    | _ -> None)

let error ~path ?line fmt =
  Printf.ksprintf (fun message -> raise (Error { path; line; message })) fmt

let lines r =
  let cols = Schema.columns (Relation.schema r) in
  String.concat "," (cols @ [ "lineage"; "ts"; "te"; "p" ])
  :: List.map
       (fun tp ->
         let fact = Tuple.fact tp in
         let values =
           List.init (Fact.arity fact) (fun i ->
               Value.to_string (Fact.get fact i))
         in
         String.concat ","
           (values
           @ [
               Formula.to_string_ascii (Tuple.lineage tp);
               string_of_int (Interval.ts (Tuple.iv tp));
               string_of_int (Interval.te (Tuple.iv tp));
               Printf.sprintf "%.12g" (Tuple.p tp);
             ]))
       (Relation.tuples r)

let to_string r = String.concat "" (List.map (fun l -> l ^ "\n") (lines r))

let to_channel oc r =
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    (lines r)

let save path r =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc r)

let of_lines ~name ?(path = "<csv>") lines =
  match lines with
  | [] -> error ~path "empty input: expected a header line"
  | header :: rows ->
      let fields = String.split_on_char ',' header in
      let ncols = List.length fields - 4 in
      if ncols < 0 then
        error ~path ~line:1
          "header too short: expected [col1,...,colN,lineage,ts,te,p], got \
           %d field(s)"
          (List.length fields);
      let columns = List.filteri (fun i _ -> i < ncols) fields in
      let schema =
        try Schema.make ~name columns
        with Invalid_argument msg -> error ~path ~line:1 "bad header: %s" msg
      in
      let parse_row lineno line =
        let fail fmt = error ~path ~line:lineno fmt in
        let cells = String.split_on_char ',' line in
        if List.length cells <> ncols + 4 then
          fail "wrong field count: expected %d, got %d" (ncols + 4)
            (List.length cells);
        let values = List.filteri (fun i _ -> i < ncols) cells in
        match List.filteri (fun i _ -> i >= ncols) cells with
        | [ lineage; ts; te; p ] ->
            let int_field what s =
              match int_of_string_opt (String.trim s) with
              | Some n -> n
              | None -> fail "%s is not an integer: '%s'" what s
            in
            let lineage =
              try Formula.of_string lineage
              with _ -> fail "unparsable lineage: '%s'" lineage
            in
            let iv =
              let ts = int_field "ts" ts and te = int_field "te" te in
              try Interval.make ts te with
              | Invalid_argument msg -> fail "bad interval: %s" msg
              | Interval.Empty_interval (a, b) ->
                  fail "empty interval [%d,%d): ts must be below te" a b
            in
            let p =
              (* [float_of_string_opt] happily parses nan, inf and any
                 sign/magnitude; only finite values in [0,1] are valid
                 marginals — anything else would poison downstream
                 weighted model counting. *)
              match float_of_string_opt (String.trim p) with
              | None -> fail "probability is not a number: '%s'" p
              | Some v when Float.is_nan v -> fail "probability is NaN: '%s'" p
              | Some v when not (Float.is_finite v) ->
                  fail "probability is infinite: '%s'" p
              | Some v when v < 0.0 || v > 1.0 ->
                  fail "probability %g out of [0,1]" v
              | Some v -> v
            in
            Tuple.make ~fact:(Fact.of_strings values) ~lineage ~iv ~p
        | _ -> fail "wrong field count: expected %d, got %d" (ncols + 4)
                 (List.length cells)
      in
      let tuples =
        List.concat
          (List.mapi
             (fun i line -> if String.equal line "" then [] else [ parse_row (i + 2) line ])
             rows)
      in
      Relation.of_tuples schema tuples

let load ~name path =
  let ic = try open_in path with Sys_error msg -> error ~path "%s" msg in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      of_lines ~name ~path (read []))
