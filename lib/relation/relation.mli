(** TP relations: a schema plus a bag of TP tuples.

    Base relations are built with {!of_rows}, which assigns each tuple a
    fresh lineage variable (["a1"], ["a2"], ...) as in the paper's Fig. 1.
    Derived relations (join outputs) are built with {!of_tuples}. *)

type t

val of_tuples : Schema.t -> Tuple.t list -> t
(** Raises [Invalid_argument] if a tuple's fact arity differs from the
    schema's. *)

val of_rows :
  name:string ->
  columns:string list ->
  ?tag:string ->
  (string list * Tpdb_interval.Interval.t * float) list ->
  t
(** Base-relation constructor. [tag] defaults to [name] and names the
    lineage variables; tuple [i] (1-based) gets lineage [Var tag_i] and
    the given probability. *)

val schema : t -> Schema.t
val name : t -> string
val cardinality : t -> int
val tuples : t -> Tuple.t list
val to_seq : t -> Tuple.t Seq.t
val to_array : t -> Tuple.t array
(** The returned array is fresh; mutating it does not affect the
    relation. *)

val prob_env : t list -> Tpdb_lineage.Prob.env
(** Marginals of every base variable appearing as a whole-tuple lineage in
    the given relations. Unknown variables raise
    {!Tpdb_lineage.Prob.Unbound_variable}. *)

val is_duplicate_free : t -> bool
(** No two tuples with the same fact have overlapping intervals — the
    well-formedness condition the paper assumes of TP base relations. *)

val active_domain : t -> Tpdb_interval.Interval.t option
(** Hull of all tuple intervals. *)

val sorted_by_fact_start : t -> Tuple.t list

val coalesce : t -> t
(** Merges adjacent or overlapping tuples with equal fact and equal
    normalized lineage. Results of window-based and timepoint-based join
    computation coalesce to the same relation; used heavily in tests. *)

val equal_as_sets : t -> t -> bool
(** Set equality of tuples under {!Tuple.equal}, ignoring order and exact
    duplicates. Schemas must have equal column lists. *)

val timeslice : Tpdb_interval.Interval.t -> t -> t
(** Restricts the relation to a window of time: tuples overlapping the
    window survive with their intervals clamped to it; lineages and
    probabilities are unchanged (validity is temporal, truth is
    probabilistic). *)

val snapshot_at : Tpdb_interval.Interval.time -> t -> t
(** [timeslice [t, t+1)]: the TP snapshot at one time point. *)

val filter : (Tuple.t -> bool) -> t -> t
val map_tuples : (Tuple.t -> Tuple.t) -> t -> t
val union_all : t -> t -> t
(** Bag union; schemas must have equal column lists. *)

val pp : Format.formatter -> t -> unit
(** Table rendering in the style of the paper's Fig. 1. *)

val print : t -> unit
