module Interval = Tpdb_interval.Interval
module Timeline = Tpdb_interval.Timeline
module Formula = Tpdb_lineage.Formula
module Var = Tpdb_lineage.Var
module Prob = Tpdb_lineage.Prob

type t = { schema : Schema.t; tuples : Tuple.t array }

let of_tuples schema tuples =
  let arity = Schema.arity schema in
  List.iter
    (fun tp ->
      if Fact.arity (Tuple.fact tp) <> arity then
        invalid_arg
          (Printf.sprintf "Relation.of_tuples: arity %d tuple in schema %s"
             (Fact.arity (Tuple.fact tp))
             (Schema.name schema)))
    tuples;
  { schema; tuples = Array.of_list tuples }

let of_rows ~name ~columns ?tag rows =
  let tag = Option.value tag ~default:name in
  let schema = Schema.make ~name columns in
  let tuples =
    List.mapi
      (fun i (values, iv, p) ->
        let fact = Fact.of_strings values in
        let lineage = Formula.var (Var.make tag (i + 1)) in
        Tuple.make ~fact ~lineage ~iv ~p)
      rows
  in
  of_tuples schema tuples

let schema r = r.schema
let name r = Schema.name r.schema
let cardinality r = Array.length r.tuples
let tuples r = Array.to_list r.tuples
let to_seq r = Array.to_seq r.tuples
let to_array r = Array.copy r.tuples

let prob_env relations =
  let table = Hashtbl.create 256 in
  List.iter
    (fun r ->
      Array.iter
        (fun tp ->
          match Formula.view (Tuple.lineage tp) with
          | Formula.Var v -> Hashtbl.replace table v (Tuple.p tp)
          | _ -> ())
        r.tuples)
    relations;
  fun v ->
    match Hashtbl.find_opt table v with
    | Some p -> p
    | None -> raise (Tpdb_lineage.Prob.Unbound_variable v)

let is_duplicate_free r =
  let by_fact = Hashtbl.create (Array.length r.tuples) in
  Array.iter
    (fun tp ->
      let key = Fact.hash (Tuple.fact tp) in
      let existing = Option.value (Hashtbl.find_opt by_fact key) ~default:[] in
      Hashtbl.replace by_fact key (tp :: existing))
    r.tuples;
  Hashtbl.fold
    (fun _ group ok ->
      ok
      && List.for_all
           (fun tp ->
             List.for_all
               (fun other ->
                 tp == other
                 || (not (Fact.equal (Tuple.fact tp) (Tuple.fact other)))
                 || not (Interval.overlaps (Tuple.iv tp) (Tuple.iv other)))
               group)
           group)
    by_fact true

let active_domain r =
  Timeline.span (Array.to_list (Array.map Tuple.iv r.tuples))

let sorted_by_fact_start r =
  List.sort Tuple.compare_fact_start (tuples r)

let coalesce r =
  (* Group by (fact, normalized lineage), then merge joinable intervals. *)
  let groups = Group_key.create (Array.length r.tuples) in
  let order = ref [] in
  Array.iter
    (fun tp ->
      let key =
        ( Tuple.fact tp,
          Formula.normalize (Tuple.lineage tp) )
      in
      (match Group_key.find_opt groups key with
      | Some existing -> Group_key.replace groups key (tp :: existing)
      | None ->
          order := key :: !order;
          Group_key.add groups key [ tp ]))
    r.tuples;
  let merged =
    List.concat_map
      (fun key ->
        let group = List.rev (Group_key.find groups key) in
        let fact, lineage = key in
        let p = Tuple.p (List.hd group) in
        Timeline.coalesce (List.map Tuple.iv group)
        |> List.map (fun iv -> Tuple.make ~fact ~lineage ~iv ~p))
      (List.rev !order)
  in
  { r with tuples = Array.of_list merged }

let same_columns a b =
  List.length (Schema.columns a.schema) = List.length (Schema.columns b.schema)
  && List.for_all2 String.equal (Schema.columns a.schema) (Schema.columns b.schema)

let equal_as_sets a b =
  same_columns a b
  &&
  let canon r =
    List.sort_uniq
      (fun x y ->
        let c = Tuple.compare_fact_start x y in
        if c <> 0 then c
        else if Tuple.equal x y then 0
        else Float.compare (Tuple.p x) (Tuple.p y))
      (List.map
         (fun tp ->
           Tuple.make ~fact:(Tuple.fact tp)
             ~lineage:(Formula.normalize (Tuple.lineage tp))
             ~iv:(Tuple.iv tp) ~p:(Tuple.p tp))
         (tuples r))
  in
  let ta = canon a and tb = canon b in
  List.length ta = List.length tb && List.for_all2 Tuple.equal ta tb

let timeslice window r =
  let clamp tp =
    Interval.clamp ~within:window (Tuple.iv tp)
    |> Option.map (fun iv ->
           Tuple.make ~fact:(Tuple.fact tp) ~lineage:(Tuple.lineage tp) ~iv
             ~p:(Tuple.p tp))
  in
  { r with tuples = Array.of_seq (Seq.filter_map clamp (Array.to_seq r.tuples)) }

let snapshot_at t r = timeslice (Interval.make t (t + 1)) r

let filter keep r =
  { r with tuples = Array.of_seq (Seq.filter keep (Array.to_seq r.tuples)) }

let map_tuples f r = { r with tuples = Array.map f r.tuples }

let union_all a b =
  if not (same_columns a b) then
    invalid_arg "Relation.union_all: incompatible schemas";
  { a with tuples = Array.append a.tuples b.tuples }

let pp ppf r =
  let cols = Schema.columns r.schema in
  Format.fprintf ppf "%s (%d tuples)@." (Schema.name r.schema)
    (Array.length r.tuples);
  Format.fprintf ppf "%s | lineage | T | p@."
    (String.concat " | " cols);
  Array.iter
    (fun tp ->
      let fact = Tuple.fact tp in
      let cells =
        List.init (Fact.arity fact) (fun i ->
            Value.to_string (Fact.get fact i))
      in
      Format.fprintf ppf "%s | %s | %s | %.4g@."
        (String.concat " | " cells)
        (Formula.to_string (Tuple.lineage tp))
        (Interval.to_string (Tuple.iv tp))
        (Tuple.p tp))
    r.tuples

let print r = Format.printf "%a@?" pp r
