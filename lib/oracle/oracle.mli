(** The differential snapshot-semantics oracle.

    The paper defines every TP join point-wise: at each time point [t]
    the output contains a row iff the §I snapshot semantics says so,
    with the Table I lineage. The optimized LAWAU/LAWAN pipelines never
    evaluate that definition directly — they sweep intervals — and
    TPSan re-derives the same lemmas with the same interval bookkeeping,
    so a misconception shared between the sweep and the sanitizer passes
    both silently. This module is the independent check: a deliberately
    naive, obviously-correct evaluator that

    - materializes both inputs point by point over the active timeline,
    - computes each snapshot's output rows from first principles (match
      rows with [λr ∧ λs], negation rows with [λr ∧ ¬(∨ λs)], unmatched
      rows with [λr] — §I / Table I),
    - re-coalesces maximal intervals from the per-point rows, and
    - computes every probability by exact weighted model counting on the
      BDD ({!Tpdb_lineage.Prob.exact}), bypassing the read-once fast
      path and the probability cache the pipeline uses.

    {!diff} then compares an optimized result against that ground truth:
    facts and intervals exactly, lineages up to {e logical equivalence}
    (BDD equality, not syntax), probabilities within {!prob_tolerance}.
    {!check} sweeps the comparison across every execution-configuration
    axis the repo ships (parallelism, probability cache, sanitizer, and
    sweep executor — the flat struct-of-arrays core plus every legacy
    join algorithm).

    Deliberately quadratic in active-domain size — an oracle, not an
    operator. It shares only {!Tpdb_interval.Interval} arithmetic and
    the lineage constructors with the pipeline under test; none of the
    window machinery ({!Tpdb_windows.Overlap}/[Lawau]/[Lawan]), the
    sweep bookkeeping, or {!Tpdb_joins.Concat}.

    With a {!Tpdb_obs.Metrics} sink installed, oracle work shows up as
    the [oracle_evals] / [oracle_comparisons] / [oracle_mismatches]
    counters and the [oracle_eval_ns] distribution; with a trace sink,
    each evaluation is an ["oracle"]-category span. *)

module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula
module Prob = Tpdb_lineage.Prob
module Relation = Tpdb_relation.Relation
module Tuple = Tpdb_relation.Tuple
module Theta = Tpdb_windows.Theta
module Nj = Tpdb_joins.Nj

(** {2 Ground truth} *)

val eval :
  ?env:Prob.env ->
  kind:Nj.join_kind ->
  theta:Theta.t ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** The snapshot-semantics ground truth for [kind]: same schema
    conventions as {!Nj.join} (joined schema, null padding for the outer
    parts, renamed [r] schema for the anti join), maximal intervals,
    exact-WMC probabilities. [env] defaults to
    [Relation.prob_env [r; s]]. *)

(** {2 Configurations} *)

type config = {
  jobs : int;
  prob_cache : bool;
  sanitize : bool;
  algorithm : Tpdb_windows.Overlap.algorithm;
  mem_budget : int;
}
(** One point of the execution-configuration space of {!Nj.options}.
    [mem_budget] (bytes, [0] = in-RAM) selects the out-of-core spilling
    executor. *)

val config :
  ?jobs:int ->
  ?prob_cache:bool ->
  ?sanitize:bool ->
  ?algorithm:Tpdb_windows.Overlap.algorithm ->
  ?mem_budget:int ->
  unit ->
  config
(** Defaults mirror {!Nj.options}: [jobs 1], [prob_cache true],
    [sanitize false], [algorithm `Hash], [schedule `Heap]. *)

val config_name : config -> string
(** Compact label, e.g. ["jobs2+nocache+sanitize"]; ["default"] for the
    all-defaults configuration. *)

val options_of : config -> Nj.options

val default_configs : config list
(** The shipped sweep: jobs 1/2/4 × prob-cache on/off (the six axes the
    acceptance criteria name), plus one variant each for the sanitizer,
    the [`Merge] and [`Index] overlap algorithms, and the [`Scan] LAWAN
    schedule — and two tiny-budget ([mem_budget 1]) spilling variants
    that force every equi-θ scenario through the out-of-core executor,
    proving spilled output identical to the oracle's ground truth. *)

(** {2 Diffing} *)

val prob_tolerance : float
(** [1e-12]: the oracle computes probabilities by exact BDD WMC while
    the pipeline may use the read-once factorization — equal up to a few
    ulps, never more. *)

type mismatch =
  | Missing of Tuple.t
      (** required by the snapshot semantics, absent from the output *)
  | Unexpected of Tuple.t  (** present in the output, not in the truth *)
  | Lineage of { expected : Tuple.t; actual : Tuple.t }
      (** same fact and interval, lineages not logically equivalent *)
  | Probability of { expected : Tuple.t; actual : Tuple.t; delta : float }
      (** lineages equivalent, probabilities differ by more than
          {!prob_tolerance} *)
  | Schema of { expected : string list; actual : string list }
      (** output column lists differ *)

type divergence = {
  kind : Nj.join_kind;
  config : config;
  mismatches : mismatch list;  (** non-empty *)
}

val diff : expected:Relation.t -> actual:Relation.t -> mismatch list
(** Tuple-level comparison of an optimized output against ground truth.
    Tuples are matched on (fact, interval) exactly — both sides emit
    maximal intervals, so a split or widened interval is a real
    divergence — then lineage (BDD equivalence), then probability
    (within {!prob_tolerance}). Empty iff the relations agree. *)

val check :
  ?configs:config list ->
  ?kinds:Nj.join_kind list ->
  ?env:Prob.env ->
  theta:Theta.t ->
  Relation.t ->
  Relation.t ->
  divergence list
(** Evaluates the oracle once per [kind] (default {!Nj.all_kinds}) and
    diffs [Nj.join] under every [config] (default {!default_configs})
    against it. Empty iff every configuration of every kind agrees with
    the snapshot semantics. *)

(** {2 Reporting} *)

val mismatch_to_string : mismatch -> string

val report : theta:Theta.t -> divergence -> string
(** Multi-line human-readable account of one divergence: kind, config,
    θ, and every mismatch. *)

val repro : theta:Theta.t -> Relation.t -> Relation.t -> string
(** A self-contained reproduction block: θ plus both inputs as CSV
    documents (the {!Tpdb_relation.Csv} format, loadable with
    [tpdb_cli]). Printed by the qcheck suite on shrunk counterexamples
    and written as artifacts by [tpdb_cli fuzz --oracle]. *)
