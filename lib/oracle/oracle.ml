module Interval = Tpdb_interval.Interval
module Timeline = Tpdb_interval.Timeline
module Formula = Tpdb_lineage.Formula
module Bdd = Tpdb_lineage.Bdd
module Prob = Tpdb_lineage.Prob
module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Csv = Tpdb_relation.Csv
module Theta = Tpdb_windows.Theta
module Nj = Tpdb_joins.Nj
module Metrics = Tpdb_obs.Metrics
module Trace = Tpdb_obs.Trace

let prob_tolerance = 1e-12

(* --- ground truth: §I snapshot semantics, evaluated point by point ---

   Everything below is written from the paper's definitions, not from
   the sweep: validity is interval membership, matching is θ over the
   snapshot, lineages are the three Table I concatenations, and maximal
   intervals are re-derived by gluing runs of identical rows. *)

let valid_at rel t =
  List.filter (fun tp -> Tuple.valid_at tp t) (Relation.tuples rel)

(* A pair matches at a snapshot iff the facts satisfy θ's atoms and the
   full tuple intervals stand in θ's temporal relation ([`Overlap] always
   holds here: both tuples are valid at the snapshot's time point). *)
let matches theta r_tuple s_tuples =
  List.filter
    (fun s_tuple ->
      Theta.temporal_matches theta (Tuple.iv r_tuple) (Tuple.iv s_tuple)
      && Theta.matches theta (Tuple.fact r_tuple) (Tuple.fact s_tuple))
    s_tuples

(* λ ∧ ¬(∨ λ_matches); plain λ when nothing matches (Table I). *)
let negation lineage = function
  | [] -> lineage
  | ms -> Formula.and_not lineage (Formula.disj (List.map Tuple.lineage ms))

(* The output rows of one snapshot: (fact, lineage) pairs. *)
let snapshot_rows ~kind ~theta r s t =
  let r_valid = valid_at r t and s_valid = valid_at s t in
  let pad_r = Schema.arity (Relation.schema r)
  and pad_s = Schema.arity (Relation.schema s) in
  let pair r_tuple s_tuple =
    ( Fact.concat (Tuple.fact r_tuple) (Tuple.fact s_tuple),
      Formula.( &&& ) (Tuple.lineage r_tuple) (Tuple.lineage s_tuple) )
  in
  let inner_rows () =
    List.concat_map
      (fun rt -> List.map (pair rt) (matches theta rt s_valid))
      r_valid
  in
  (* One null-padded row per valid left tuple, always: λr when nothing
     matches, λr ∧ ¬(∨ λs) when something does. *)
  let left_null_rows () =
    List.map
      (fun rt ->
        ( Fact.concat (Tuple.fact rt) (Fact.nulls pad_s),
          negation (Tuple.lineage rt) (matches theta rt s_valid) ))
      r_valid
  in
  let right_null_rows () =
    let swapped = Theta.swap theta in
    List.map
      (fun st ->
        ( Fact.concat (Fact.nulls pad_r) (Tuple.fact st),
          negation (Tuple.lineage st) (matches swapped st r_valid) ))
      s_valid
  in
  let anti_rows () =
    List.map
      (fun rt ->
        (Tuple.fact rt, negation (Tuple.lineage rt) (matches theta rt s_valid)))
      r_valid
  in
  match kind with
  | Nj.Inner -> inner_rows ()
  | Nj.Anti -> anti_rows ()
  | Nj.Left -> inner_rows () @ left_null_rows ()
  | Nj.Right -> inner_rows () @ right_null_rows ()
  | Nj.Full -> inner_rows () @ left_null_rows () @ right_null_rows ()

(* Same schema conventions as Nj.join. *)
let output_schema ~kind r s =
  match kind with
  | Nj.Anti ->
      Schema.rename
        (Relation.name r ^ "_anti_" ^ Relation.name s)
        (Relation.schema r)
  | Nj.Inner | Nj.Left | Nj.Right | Nj.Full ->
      Schema.join (Relation.schema r) (Relation.schema s)

module Row_key = struct
  type t = Fact.t * Formula.t

  let compare (fa, la) (fb, lb) =
    let c = Fact.compare fa fb in
    if c <> 0 then c else Formula.compare la lb
end

module Row_map = Map.Make (Row_key)

let eval ?env ~kind ~theta r s =
  let env = match env with Some e -> e | None -> Relation.prob_env [ r; s ] in
  Metrics.incr Metrics.Oracle_evals;
  let run () =
    Metrics.time Metrics.Oracle_eval_ns @@ fun () ->
    let domain =
      Timeline.span (List.map Tuple.iv (Relation.tuples r @ Relation.tuples s))
    in
    let points =
      match domain with
      | None -> Seq.empty
      | Some span -> Interval.points span
    in
    (* Rows keyed by (fact, normalized lineage), each holding the time
       points at which the snapshot semantics emits the row. *)
    let by_row =
      Seq.fold_left
        (fun acc t ->
          List.fold_left
            (fun acc (fact, lineage) ->
              let key = (fact, Formula.normalize lineage) in
              let sofar = Option.value (Row_map.find_opt key acc) ~default:[] in
              Row_map.add key (t :: sofar) acc)
            acc
            (snapshot_rows ~kind ~theta r s t))
        Row_map.empty points
    in
    let tuples =
      Row_map.fold
        (fun (fact, lineage) points acc ->
          (* Glue maximal runs of time points back into intervals; the
             probability is the exact weighted model count — no
             read-once shortcut, no cache. *)
          let intervals =
            Timeline.coalesce (List.map (fun t -> Interval.make t (t + 1)) points)
          in
          let p = Prob.exact env lineage in
          List.fold_left
            (fun acc iv -> Tuple.make ~fact ~lineage ~iv ~p :: acc)
            acc intervals)
        by_row []
    in
    Relation.of_tuples (output_schema ~kind r s) (List.rev tuples)
  in
  if Trace.enabled () then
    Trace.with_span ~cat:"oracle" ("oracle-" ^ Nj.kind_name kind) run
  else run ()

(* --- configurations -------------------------------------------------- *)

type config = {
  jobs : int;
  prob_cache : bool;
  sanitize : bool;
  algorithm : Tpdb_windows.Overlap.algorithm;
  mem_budget : int;
}

let config ?(jobs = 1) ?(prob_cache = true) ?(sanitize = false)
    ?(algorithm = `Flat) ?(mem_budget = 0) () =
  { jobs; prob_cache; sanitize; algorithm; mem_budget }

let config_name c =
  let parts =
    (if c.jobs <> 1 then [ "jobs" ^ string_of_int c.jobs ] else [])
    @ (if not c.prob_cache then [ "nocache" ] else [])
    @ (if c.sanitize then [ "sanitize" ] else [])
    @ (if c.mem_budget > 0 then [ "spill" ] else [])
    @
    match c.algorithm with
    | `Flat -> []
    | `Hash -> [ "hash" ]
    | `Merge -> [ "merge" ]
    | `Index -> [ "index" ]
    | `Nested_loop -> [ "nested-loop" ]
  in
  match parts with [] -> "default" | _ -> String.concat "+" parts

let options_of c =
  Nj.options ~algorithm:c.algorithm ~parallelism:c.jobs ~sanitize:c.sanitize
    ~prob_cache:c.prob_cache ~mem_budget:c.mem_budget ()

let default_configs =
  List.concat_map
    (fun jobs -> [ config ~jobs (); config ~jobs ~prob_cache:false () ])
    [ 1; 2; 4 ]
  @ [
      config ~sanitize:true ();
      config ~jobs:2 ~sanitize:true ();
      config ~algorithm:`Hash ();
      config ~algorithm:`Merge ();
      config ~algorithm:`Index ();
      (* a 1-byte budget forces the out-of-core spill path on any
         non-empty equi-[theta] input: every scenario doubles as a
         spilled-vs-in-RAM differential *)
      config ~mem_budget:1 ();
      config ~mem_budget:1 ~sanitize:true ();
    ]

(* --- diffing ---------------------------------------------------------- *)

type mismatch =
  | Missing of Tuple.t
  | Unexpected of Tuple.t
  | Lineage of { expected : Tuple.t; actual : Tuple.t }
  | Probability of { expected : Tuple.t; actual : Tuple.t; delta : float }
  | Schema of { expected : string list; actual : string list }

type divergence = {
  kind : Nj.join_kind;
  config : config;
  mismatches : mismatch list;
}

(* (fact, interval) as a hashable key: facts print unambiguously and the
   interval pins the temporal extent, so two tuples share a key iff they
   agree on everything but lineage and probability. *)
let tuple_key tp =
  Printf.sprintf "%s@%s"
    (Fact.to_string (Tuple.fact tp))
    (Interval.to_string (Tuple.iv tp))

let diff ~expected ~actual =
  let schema_mismatches =
    let ec = Schema.columns (Relation.schema expected)
    and ac = Schema.columns (Relation.schema actual) in
    if ec <> ac then [ Schema { expected = ec; actual = ac } ] else []
  in
  let pending : (string, Tuple.t list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun tp ->
      let k = tuple_key tp in
      Hashtbl.replace pending k
        (tp :: Option.value (Hashtbl.find_opt pending k) ~default:[]))
    (Relation.tuples expected);
  let mismatches = ref [] in
  let emit m = mismatches := m :: !mismatches in
  List.iter
    (fun a ->
      let k = tuple_key a in
      match Option.value (Hashtbl.find_opt pending k) ~default:[] with
      | [] -> emit (Unexpected a)
      | candidates -> (
          (* Prefer a ground-truth tuple with an equivalent lineage; a
             leftover candidate then means a lineage divergence. *)
          let equivalent e =
            Bdd.equivalent (Tuple.lineage e) (Tuple.lineage a)
          in
          let rec take seen = function
            | [] -> None
            | e :: rest when equivalent e -> Some (e, List.rev_append seen rest)
            | e :: rest -> take (e :: seen) rest
          in
          match take [] candidates with
          | Some (e, rest) ->
              Hashtbl.replace pending k rest;
              let delta = Float.abs (Tuple.p e -. Tuple.p a) in
              if delta > prob_tolerance then
                emit (Probability { expected = e; actual = a; delta })
          | None ->
              let e, rest = (List.hd candidates, List.tl candidates) in
              Hashtbl.replace pending k rest;
              emit (Lineage { expected = e; actual = a })))
    (Relation.tuples actual);
  Hashtbl.iter
    (fun _ leftovers -> List.iter (fun e -> emit (Missing e)) leftovers)
    pending;
  schema_mismatches @ List.rev !mismatches

let check ?(configs = default_configs) ?(kinds = Nj.all_kinds) ?env ~theta r s
    =
  let env = match env with Some e -> e | None -> Relation.prob_env [ r; s ] in
  List.concat_map
    (fun kind ->
      let expected = eval ~env ~kind ~theta r s in
      List.filter_map
        (fun config ->
          let actual =
            Nj.join ~options:(options_of config) ~env ~kind ~theta r s
          in
          Metrics.incr Metrics.Oracle_comparisons;
          match diff ~expected ~actual with
          | [] -> None
          | mismatches ->
              Metrics.add Metrics.Oracle_mismatches (List.length mismatches);
              Some { kind; config; mismatches })
        configs)
    kinds

(* --- reporting -------------------------------------------------------- *)

let mismatch_to_string = function
  | Missing tp ->
      "missing (required by the snapshot semantics): " ^ Tuple.to_string tp
  | Unexpected tp ->
      "unexpected (not in the snapshot semantics): " ^ Tuple.to_string tp
  | Lineage { expected; actual } ->
      Printf.sprintf "lineage not equivalent at %s %s: expected %s, got %s"
        (Fact.to_string (Tuple.fact expected))
        (Interval.to_string (Tuple.iv expected))
        (Formula.to_string_ascii (Tuple.lineage expected))
        (Formula.to_string_ascii (Tuple.lineage actual))
  | Probability { expected; actual; delta } ->
      Printf.sprintf
        "probability off by %.3g at %s %s: expected %.17g, got %.17g" delta
        (Fact.to_string (Tuple.fact expected))
        (Interval.to_string (Tuple.iv expected))
        (Tuple.p expected) (Tuple.p actual)
  | Schema { expected; actual } ->
      Printf.sprintf "schema mismatch: expected [%s], got [%s]"
        (String.concat "; " expected)
        (String.concat "; " actual)

let report ~theta d =
  String.concat "\n"
    (Printf.sprintf "divergence: %s join, config %s, theta %s (%d mismatches)"
       (Nj.kind_name d.kind) (config_name d.config) (Theta.to_string theta)
       (List.length d.mismatches)
    :: List.map (fun m -> "  " ^ mismatch_to_string m) d.mismatches)

let repro ~theta r s =
  String.concat "\n"
    [
      "theta: " ^ Theta.to_string theta;
      "--- r.csv";
      Csv.to_string r ^ "--- s.csv";
      Csv.to_string s ^ "---";
    ]
