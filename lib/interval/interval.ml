type time = int

type t = { ts : time; te : time }

exception Empty_interval of time * time

let make ts te = if ts < te then { ts; te } else raise (Empty_interval (ts, te))

let make_opt ts te = if ts < te then Some { ts; te } else None

let ts i = i.ts
let te i = i.te

let duration i = i.te - i.ts

let equal a b = a.ts = b.ts && a.te = b.te

let compare a b =
  let c = Int.compare a.ts b.ts in
  if c <> 0 then c else Int.compare a.te b.te

let compare_start a b = Int.compare a.ts b.ts
let compare_end a b = Int.compare a.te b.te

let contains i t = i.ts <= t && t < i.te

let covers outer inner = outer.ts <= inner.ts && inner.te <= outer.te

let overlaps a b = a.ts < b.te && b.ts < a.te

let intersect a b = make_opt (max a.ts b.ts) (min a.te b.te)

let hull a b = { ts = min a.ts b.ts; te = max a.te b.te }

let adjacent a b = a.te = b.ts || b.te = a.ts

let union_if_joinable a b =
  if overlaps a b || adjacent a b then Some (hull a b) else None

let minus a b =
  if not (overlaps a b) then [ a ]
  else
    let left = make_opt a.ts (min a.te b.ts)
    and right = make_opt (max a.ts b.te) a.te in
    List.filter_map Fun.id [ left; right ]

let before a b = a.te <= b.ts

let shift d i = { ts = i.ts + d; te = i.te + d }

let clamp ~within i = intersect within i

type allen =
  | Before
  | Meets
  | Overlaps
  | Starts
  | During
  | Finishes
  | Equals
  | Finished_by
  | Contains
  | Started_by
  | Overlapped_by
  | Met_by
  | After

let allen a b =
  if a.te < b.ts then Before
  else if a.te = b.ts then Meets
  else if b.te < a.ts then After
  else if b.te = a.ts then Met_by
  else if a.ts = b.ts && a.te = b.te then Equals
  else if a.ts = b.ts then if a.te < b.te then Starts else Started_by
  else if a.te = b.te then if a.ts > b.ts then Finishes else Finished_by
  else if b.ts < a.ts && a.te < b.te then During
  else if a.ts < b.ts && b.te < a.te then Contains
  else if a.ts < b.ts then Overlaps
  else Overlapped_by

let all_allen =
  [
    Before;
    Meets;
    Overlaps;
    Starts;
    During;
    Finishes;
    Equals;
    Finished_by;
    Contains;
    Started_by;
    Overlapped_by;
    Met_by;
    After;
  ]

let allen_inverse = function
  | Before -> After
  | After -> Before
  | Meets -> Met_by
  | Met_by -> Meets
  | Overlaps -> Overlapped_by
  | Overlapped_by -> Overlaps
  | Starts -> Started_by
  | Started_by -> Starts
  | During -> Contains
  | Contains -> During
  | Finishes -> Finished_by
  | Finished_by -> Finishes
  | Equals -> Equals

let allen_name = function
  | Before -> "before"
  | Meets -> "meets"
  | Overlaps -> "overlaps"
  | Starts -> "starts"
  | During -> "during"
  | Finishes -> "finishes"
  | Equals -> "equals"
  | Finished_by -> "finished_by"
  | Contains -> "contains"
  | Started_by -> "started_by"
  | Overlapped_by -> "overlapped_by"
  | Met_by -> "met_by"
  | After -> "after"

let allen_of_name s =
  match String.lowercase_ascii s with
  | "before" -> Some Before
  | "meets" -> Some Meets
  | "overlaps" -> Some Overlaps
  | "starts" -> Some Starts
  | "during" -> Some During
  | "finishes" -> Some Finishes
  | "equals" -> Some Equals
  | "finished_by" -> Some Finished_by
  | "contains" -> Some Contains
  | "started_by" -> Some Started_by
  | "overlapped_by" -> Some Overlapped_by
  | "met_by" -> Some Met_by
  | "after" -> Some After
  | _ -> None

(* Disjoint relations: allen a b = rel implies a and b share no time
   point, so such a pair never θ-matches at any snapshot. *)
let allen_disjoint = function
  | Before | Meets | Met_by | After -> true
  | Overlaps | Starts | During | Finishes | Equals | Finished_by | Contains
  | Started_by | Overlapped_by ->
      false

let points i =
  let rec loop t () = if t >= i.te then Seq.Nil else Seq.Cons (t, loop (t + 1)) in
  loop i.ts

let to_string i = Printf.sprintf "[%d,%d)" i.ts i.te

let pp ppf i = Format.fprintf ppf "[%d,%d)" i.ts i.te

let of_string s =
  match Scanf.sscanf_opt s "[%d,%d)" (fun ts te -> (ts, te)) with
  | Some (ts, te) -> make ts te
  | None -> invalid_arg (Printf.sprintf "Interval.of_string: %S" s)
