(** Half-open intervals [ts, te) over a discrete timeline.

    Time points are integers; an interval is valid iff [ts < te]. All
    temporal attributes in this repository (tuples, windows, outputs) use
    this representation, mirroring the paper's [Ts, Te) notation. *)

type time = int

type t = private { ts : time; te : time }

exception Empty_interval of time * time
(** Raised by {!make} when [ts >= te]. *)

val make : time -> time -> t
(** [make ts te] is [[ts, te)]. Raises {!Empty_interval} if [ts >= te]. *)

val make_opt : time -> time -> t option
(** [make_opt ts te] is [Some [ts, te)] when [ts < te], else [None]. *)

val ts : t -> time
val te : t -> time

val duration : t -> int
(** Number of time points covered: [te - ts]. Always positive. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic on (start, end). *)

val compare_start : t -> t -> int
val compare_end : t -> t -> int

val contains : t -> time -> bool
(** [contains i t] iff [ts <= t < te]. *)

val covers : t -> t -> bool
(** [covers outer inner] iff every point of [inner] is in [outer]. *)

val overlaps : t -> t -> bool
(** Shared time point exists (θo of the paper). *)

val intersect : t -> t -> t option
(** Largest interval contained in both, if non-empty. *)

val hull : t -> t -> t
(** Smallest interval containing both. *)

val adjacent : t -> t -> bool
(** [adjacent a b] iff one meets the other exactly ([a.te = b.ts] or
    [b.te = a.ts]). *)

val union_if_joinable : t -> t -> t option
(** Union when the two intervals overlap or are adjacent. *)

val minus : t -> t -> t list
(** [minus a b] is the (0, 1 or 2) maximal sub-intervals of [a] not
    covered by [b], in temporal order. *)

val before : t -> t -> bool
(** [before a b] iff [a] ends at or before [b] starts. *)

val shift : int -> t -> t

val clamp : within:t -> t -> t option
(** [clamp ~within i] is [intersect within i]. *)

(** Allen's thirteen interval relations; used by tests and by the
    alignment baseline. *)
type allen =
  | Before
  | Meets
  | Overlaps
  | Starts
  | During
  | Finishes
  | Equals
  | Finished_by
  | Contains
  | Started_by
  | Overlapped_by
  | Met_by
  | After

val allen : t -> t -> allen

val all_allen : allen list
(** All thirteen relations, in declaration order. *)

val allen_inverse : allen -> allen
(** [allen (allen_inverse rel) b a = rel] iff [allen rel a b = rel]:
    the converse relation ([Before] ↔ [After], [Equals] to itself …). *)

val allen_name : allen -> string
(** Lowercase name as used in query syntax and EXPLAIN output:
    ["before"], ["finished_by"], … *)

val allen_of_name : string -> allen option
(** Inverse of {!allen_name}, case-insensitive. *)

val allen_disjoint : allen -> bool
(** Whether the relation implies the two intervals share no time point
    ([Before], [Meets], [Met_by], [After]). A θ with such a temporal
    predicate can never produce overlapping windows. *)

val points : t -> time Seq.t
(** All time points of the interval, ascending. *)

val to_string : t -> string
(** ["[ts,te)"], as in the paper's figures. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Parses the {!to_string} format. Raises [Invalid_argument] on bad
    syntax and {!Empty_interval} on an empty interval. *)
