module Metrics = Tpdb_obs.Metrics

type entry = {
  text : string;
  rows : int;
  inputs : string list;  (* base-relation names, for proactive drops *)
}

type t = {
  mutex : Mutex.t;
  capacity : int;
  table : (string, entry) Hashtbl.t;
  order : string Queue.t;
}

(* plan fingerprint × every input's (name, version, content digest).
   A reload bumps the version, so the key of any query reading that
   relation changes — invalidation by unreachability; [drop_name]
   additionally reclaims the dead entries eagerly. *)
let key ~plan_fingerprint inputs =
  let b = Buffer.create 64 in
  Buffer.add_string b plan_fingerprint;
  List.iter
    (fun (name, version, digest) ->
      Buffer.add_char b '|';
      Buffer.add_string b name;
      Buffer.add_char b '@';
      Buffer.add_string b (string_of_int version);
      Buffer.add_char b ':';
      Buffer.add_string b digest)
    inputs;
  Buffer.contents b

let create ~capacity =
  if capacity < 1 then invalid_arg "Result_cache.create: capacity < 1";
  {
    mutex = Mutex.create ();
    capacity;
    table = Hashtbl.create 64;
    order = Queue.create ();
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let length t = locked t (fun () -> Hashtbl.length t.table)

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some entry ->
          Metrics.incr Metrics.Result_cache_hits;
          Some entry
      | None ->
          Metrics.incr Metrics.Result_cache_misses;
          None)

let store t ~key entry =
  locked t (fun () ->
      if not (Hashtbl.mem t.table key) then Queue.add key t.order;
      Hashtbl.replace t.table key entry;
      while Hashtbl.length t.table > t.capacity do
        match Queue.take_opt t.order with
        | None -> Hashtbl.reset t.table (* unreachable: table ⊆ order *)
        | Some oldest ->
            if not (String.equal oldest key) then Hashtbl.remove t.table oldest
            else Queue.add oldest t.order
      done)

let drop_name t name =
  locked t (fun () ->
      let dead =
        Hashtbl.fold
          (fun k e acc ->
            if List.exists (String.equal name) e.inputs then k :: acc else acc)
          t.table []
      in
      List.iter (Hashtbl.remove t.table) dead;
      List.length dead)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      Queue.clear t.order)
