(** Wire protocol of [tpdb_server]: length-prefixed binary frames over a
    Unix or TCP stream.

    Framing: every message is one frame — a 4-byte big-endian payload
    length (at most {!max_frame}), then the payload. The payload is one
    opcode byte followed by the message's fields in declaration order;
    ints are 8-byte big-endian, strings are a u32 byte length plus the
    bytes, bools one byte. There is no pipelining: a client sends one
    request and reads exactly one response.

    A session opens with {!request.Hello} (protocol {!version} + a free-
    form client name) answered by {!response.Welcome}; a version
    mismatch is answered with a [Protocol_violation] error. Results
    travel as the rendered relation text ({!response.Result.text}) —
    exactly the bytes [tpdb_cli query] would print for the same query,
    which is what makes server output byte-comparable to the one-shot
    CLI. *)

exception Frame_error of string
(** Malformed frame or message: bad length, unknown opcode, truncated
    body, trailing bytes. *)

val version : int
(** Protocol version, checked in HELLO. *)

val max_frame : int
(** Maximum payload bytes per frame (64 MiB). *)

type request =
  | Hello of { version : int; client : string }
  | Ping
  | Query of string  (** parse, plan and run one TP-SQL query *)
  | Prepare of string  (** parse + plan, return a statement id *)
  | Execute of int  (** run a prepared statement by id *)
  | Load of { name : string; csv : string }
      (** (re)register a relation from a CSV document (same format as
          {!Tpdb_relation.Csv}) and persist it when the server has a
          database directory *)
  | Stats  (** server + metrics snapshot as JSON *)
  | Openmetrics  (** OpenMetrics text exposition of the metrics sink *)
  | Sleep of int
      (** debug (servers started with [debug_sleep]): occupy one worker
          for N ms — deterministic admission-control testing *)
  | Close

type error_code =
  | Overloaded  (** admission queue full — retry later *)
  | Parse_failed
  | Plan_failed
  | Csv_failed
  | Unknown_prepared
  | Protocol_violation
  | Internal

type response =
  | Welcome of { version : int; server : string }
  | Pong
  | Result of {
      text : string;  (** rendered relation, CLI-identical bytes *)
      rows : int;
      plan_cached : bool;  (** answered via a cached physical plan *)
      result_cached : bool;  (** answered from the result cache *)
    }
  | Prepared of { id : int; fingerprint : string }
      (** [fingerprint] is the normalized-AST fingerprint
          ({!Tpdb_query.Ast.fingerprint}) *)
  | Loaded of { name : string; version : int; rows : int }
  | Stats_reply of string
  | Openmetrics_reply of string
  | Error of { code : error_code; message : string }
  | Bye

val error_code_name : error_code -> string

val write_request : out_channel -> request -> unit
(** Writes one frame and flushes. *)

val write_response : out_channel -> response -> unit
(** Writes one frame and flushes. *)

val read_request : in_channel -> request
(** Blocks for one full frame. Raises {!Frame_error} on malformed
    input, [End_of_file] on a closed peer. *)

val read_response : in_channel -> response
