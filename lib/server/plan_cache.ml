module Metrics = Tpdb_obs.Metrics
module Ast = Tpdb_query.Ast
module Planner = Tpdb_query.Planner

type entry = {
  sql : string;
  ast : Ast.t;  (* normalized *)
  plan : Planner.t;
  plan_fingerprint : string;
  versions : (string * int) list;  (* base-relation versions at plan time *)
}

type t = {
  mutex : Mutex.t;
  capacity : int;
  table : (string, entry) Hashtbl.t;
  order : string Queue.t;  (* insertion order; evicted oldest-first *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity < 1";
  {
    mutex = Mutex.create ();
    capacity;
    table = Hashtbl.create 64;
    order = Queue.create ();
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let length t = locked t (fun () -> Hashtbl.length t.table)

(* A hit requires every base relation the plan reads to still be at the
   version it was planned against: the plan embeds the relations (Scan
   nodes) and the probability environment, so any reload invalidates
   it. Stale entries are dropped on sight and counted as misses. *)
let find t ~current_version fingerprint =
  locked t (fun () ->
      match Hashtbl.find_opt t.table fingerprint with
      | Some entry
        when List.for_all
               (fun (name, v) -> current_version name = v)
               entry.versions ->
          Metrics.incr Metrics.Plan_cache_hits;
          Some entry
      | Some _ ->
          Hashtbl.remove t.table fingerprint;
          Metrics.incr Metrics.Plan_cache_misses;
          None
      | None ->
          Metrics.incr Metrics.Plan_cache_misses;
          None)

let store t ~fingerprint entry =
  locked t (fun () ->
      if not (Hashtbl.mem t.table fingerprint) then Queue.add fingerprint t.order;
      Hashtbl.replace t.table fingerprint entry;
      (* Evict insertion-oldest live keys; queued keys already removed
         (staleness) or re-added just pop through. *)
      while Hashtbl.length t.table > t.capacity do
        match Queue.take_opt t.order with
        | None -> Hashtbl.reset t.table (* unreachable: table ⊆ order *)
        | Some oldest ->
            if not (String.equal oldest fingerprint) then
              Hashtbl.remove t.table oldest
            else Queue.add oldest t.order
      done)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      Queue.clear t.order)
