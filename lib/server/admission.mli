(** Admission control: a bounded job queue in front of a fixed set of
    worker {e domains}.

    Two jobs it exists to do. First, backpressure: the queue refuses
    work beyond [queue_limit] with the typed {!Overloaded} rejection
    (counted as [Server_rejections]) instead of growing without bound
    under a client flood. Second, execution isolation: OCaml systhreads
    share their domain's {!Tpdb_lineage.Formula} hash-cons table
    (domain-local state), so two session threads must never run engine
    code concurrently on the same domain — every query/LOAD therefore
    executes as a job on one of these worker domains, each of which
    runs one job at a time, while session threads only do socket IO and
    parsing. Worker domains may freely call into the shared
    {!Tpdb_engine.Pool} ([Pool.map] supports concurrent batches).

    [Server_queue_ns] records each admitted job's queue wait. *)

exception Overloaded of { queued : int; limit : int }

type t

val create : workers:int -> queue_limit:int -> t
(** Spawns [workers] domains immediately. [queue_limit] bounds jobs
    waiting (not yet picked up). Raises [Invalid_argument] unless both
    are ≥ 1. *)

val workers : t -> int
val pending : t -> int

val submit : t -> (unit -> unit) -> unit
(** Enqueue fire-and-forget work. Raises {!Overloaded} when the queue
    is full or the controller is shut down. *)

val run : t -> (unit -> 'a) -> 'a
(** Enqueue and block the calling (session) thread until the job
    completes on a worker domain; the job's result or exception is
    relayed. Raises {!Overloaded} like {!submit}. *)

val shutdown : t -> unit
(** Refuse new jobs, finish the queued ones, join the workers. *)
