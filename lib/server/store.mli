(** The server's versioned relation store: one master catalog behind a
    mutex, copy-on-write snapshots out, optional persistence over
    {!Tpdb_storage.Db}.

    Writers ({!register}, {!load_csv}) replace a name under the mutex
    and bump its catalog version; readers take an O(names) {!snapshot}
    ({!Tpdb_query.Catalog.copy} — relations are immutable, so the copy
    shares them) and then never touch the master again. A running query
    therefore keeps the exact set of relations it started with while
    concurrent LOADs move the master forward: readers never block
    writers and vice versa beyond the O(names) critical section.

    Every registration also records a content digest (FNV-1a 64 of the
    canonical CSV rendering, lineage formulas included). The
    [(name, version, digest)] triples from {!digests} are the result
    cache's input key: a reload bumps the version (and in practice the
    digest), so cached results for any query reading that relation stop
    being reachable. *)

type loaded = { name : string; version : int; rows : int }

type t

val create : ?db:Tpdb_storage.Db.t -> ?stats_dir:string -> unit -> t
(** With [db], every relation already persisted is loaded and every
    future registration is saved back ({!Tpdb_storage.Db.save}, atomic
    per relation). Call on the domain that owns start-up: CSV/heap-file
    lineage parsing interns formulas on the calling domain. *)

val register : t -> Tpdb_relation.Relation.t -> loaded

val load_csv : t -> name:string -> csv:string -> loaded
(** Parses a full CSV document ({!Tpdb_relation.Csv} format, trailing
    newline tolerated) and registers it. Raises {!Tpdb_relation.Csv.Error}
    on malformed input (nothing is registered then). Runs formula
    interning — on the server this is called from worker domains only. *)

val snapshot : t -> Tpdb_query.Catalog.t
(** The current catalog as a private copy: subsequent registrations on
    the store never show through. *)

val digests : t -> string list -> (string * int * string) list option
(** [(name, version, digest)] for each requested name, in request
    order; [None] if any name is unregistered. *)

val view : t -> string list -> Tpdb_query.Catalog.t * (string * int * string) list option
(** {!snapshot} and {!digests} in one critical section, so the returned
    catalog and digest triples describe the same instant — the anchor
    of one query's cache lookups and execution. *)

val generation : t -> int
val names : t -> string list
