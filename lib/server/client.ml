module P = Protocol

exception Server_overloaded of string
exception Server_error of P.error_code * string

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

type result = {
  text : string;
  rows : int;
  plan_cached : bool;
  result_cached : bool;
}

let protocol_error fmt =
  Printf.ksprintf (fun m -> raise (P.Frame_error m)) fmt

let fail_error code message =
  match code with
  | P.Overloaded -> raise (Server_overloaded message)
  | _ -> raise (Server_error (code, message))

let roundtrip t req =
  P.write_request t.oc req;
  match P.read_response t.ic with
  | P.Error { code; message } -> fail_error code message
  | resp -> resp

let connect ?(client = "tpdb_client") addr =
  let domain, sockaddr =
    match addr with
    | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp (host, port) ->
        let inet =
          if String.equal host "" then Unix.inet_addr_loopback
          else Unix.inet_addr_of_string host
        in
        (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  in
  (match
     roundtrip t (P.Hello { version = P.version; client })
   with
  | P.Welcome { version; _ } when version = P.version -> ()
  | P.Welcome { version; _ } ->
      protocol_error "server speaks protocol %d, client %d" version P.version
  | _ -> protocol_error "expected WELCOME"
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  t

let close t =
  (try P.write_request t.oc P.Close with Sys_error _ -> ());
  (try ignore (P.read_response t.ic) with
  | End_of_file | Sys_error _ | P.Frame_error _ -> ());
  try close_in t.ic with Sys_error _ -> ()

let ping t =
  match roundtrip t P.Ping with
  | P.Pong -> ()
  | _ -> protocol_error "expected PONG"

let result_of = function
  | P.Result { text; rows; plan_cached; result_cached } ->
      { text; rows; plan_cached; result_cached }
  | _ -> protocol_error "expected RESULT"

let query t sql = result_of (roundtrip t (P.Query sql))

let prepare t sql =
  match roundtrip t (P.Prepare sql) with
  | P.Prepared { id; fingerprint } -> (id, fingerprint)
  | _ -> protocol_error "expected PREPARED"

let execute t id = result_of (roundtrip t (P.Execute id))

let load t ~name ~csv =
  match roundtrip t (P.Load { name; csv }) with
  | P.Loaded { version; rows; _ } -> (version, rows)
  | _ -> protocol_error "expected LOADED"

let stats t =
  match roundtrip t P.Stats with
  | P.Stats_reply json -> json
  | _ -> protocol_error "expected STATS"

let openmetrics t =
  match roundtrip t P.Openmetrics with
  | P.Openmetrics_reply text -> text
  | _ -> protocol_error "expected OPENMETRICS"

let sleep t ms =
  match roundtrip t (P.Sleep ms) with
  | P.Pong -> ()
  | _ -> protocol_error "expected PONG"
