(** Blocking client for {!Protocol} — the library behind
    [tpdb_cli connect] and the concurrent bench driver.

    One {!t} is one session: connect, HELLO/WELCOME handshake, then
    strictly request/response. A [t] is not thread-safe; give each
    client thread its own connection (that is the point of the server's
    session model). *)

exception Server_overloaded of string
(** The server's admission queue refused the request — the typed
    backpressure signal. Retry later; the session stays usable. *)

exception Server_error of Protocol.error_code * string
(** Any other server-reported error (parse, plan, CSV, protocol…). The
    session stays usable after query-level errors. *)

type t

type result = {
  text : string;  (** rendered relation — CLI-identical bytes *)
  rows : int;
  plan_cached : bool;
  result_cached : bool;
}

val connect : ?client:string -> [ `Unix of string | `Tcp of string * int ] -> t
(** Raises [Unix.Unix_error] if the endpoint refuses,
    {!Protocol.Frame_error} on a version mismatch. *)

val close : t -> unit
val ping : t -> unit

val query : t -> string -> result
val prepare : t -> string -> int * string
(** [(statement id, normalized-AST fingerprint)]. *)

val execute : t -> int -> result
val load : t -> name:string -> csv:string -> int * int
(** [(new catalog version, rows)]. *)

val stats : t -> string
(** Server + metrics snapshot, JSON. *)

val openmetrics : t -> string
(** OpenMetrics text exposition from the server's metrics sink. *)

val sleep : t -> int -> unit
(** Debug servers only: occupy one worker for N ms. *)
