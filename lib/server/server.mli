(** The long-lived TP database server.

    One process serves many concurrent client sessions over Unix or TCP
    sockets speaking {!Protocol}. Architecture:

    - {b Sessions} are systhreads (cheap, blocking socket IO): they
      read frames, parse SQL and look caches up, but never run engine
      code — the lineage hash-cons table is domain-local, and session
      threads share one domain.
    - {b Execution} happens on the {!Admission} worker domains: every
      planning/execution/LOAD job runs on a worker, one at a time per
      worker, and may itself fan out over the shared
      {!Tpdb_engine.Pool}. The bounded admission queue rejects overflow
      with the typed [Overloaded] error (backpressure, not failure).
    - {b Snapshots}: each query anchors on one {!Store.view} — a
      copy-on-write catalog snapshot plus the matching version/digest
      triples — so readers never block LOADs and never observe a
      half-applied one.
    - {b Caches}: {!Plan_cache} (normalized-AST fingerprint → plan,
      revalidated by relation version) and {!Result_cache} (plan
      fingerprint × input versions/digests → rendered text). A result
      hit is answered on the session thread without touching a worker.

    Metrics ride the process-global {!Tpdb_obs.Metrics} sink — the
    server installs one at {!start} unless the host (bench driver,
    tests) already did — and are exported by the STATS (JSON) and
    OPENMETRICS protocol commands. With [qlog] set, every executed
    (non-cache-hit) query appends a {!Tpdb_obs.Qlog} record. *)

type listen = [ `Unix of string | `Tcp of string * int ]
(** [`Tcp (host, port)]: empty host = loopback; port 0 = ephemeral
    (query the actual one with {!port}). *)

type config = {
  listen : listen;
  workers : int;  (** execution worker domains *)
  queue_limit : int;  (** admission queue bound (≥ 1) *)
  plan_cache_capacity : int;
  result_cache_capacity : int;
  parallelism : int;  (** per-query partitioned-sweep jobs *)
  sanitize : bool option;  (** [None] = the TPDB_SANITIZE default *)
  mem_budget : int option;  (** out-of-core budget, bytes *)
  db_dir : string option;
      (** persistent catalog: relations are loaded at start and every
          LOAD is saved back ({!Tpdb_storage.Db}) *)
  stats_dir : string option;  (** persisted planner statistics *)
  qlog : string option;  (** JSONL query log path *)
  debug_sleep : bool;  (** allow the SLEEP request (admission tests) *)
}

val default_config : listen -> config
(** 2 workers, queue limit 64, 128 plans / 256 results, parallelism 1,
    no persistence, no qlog, SLEEP disabled. *)

type t

val start : config -> t
(** Binds, loads the persistent catalog if any, spawns the worker
    domains and the accept thread, returns immediately. *)

val stop : t -> unit
(** Stops accepting, unblocks and joins every session, drains the
    admission queue, joins the workers. Idempotent. *)

val address : t -> Unix.sockaddr
(** The bound address ([`Tcp] with port 0 resolves to the real port). *)

val port : t -> int option
(** The TCP port, [None] for Unix sockets. *)

val store : t -> Store.t
(** The server's relation store (tests seed it directly). *)
