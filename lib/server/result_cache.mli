(** The lineage-aware result cache: rendered query results keyed on
    (plan fingerprint × input identity).

    {!key} combines the optimized plan's fingerprint with every input
    relation's (name, catalog version, content digest) triple from
    {!Store.digests}. The digest covers the tuples' values, intervals,
    probabilities and ASCII lineage formulas, so a base relation whose
    version {e or} lineage content changes makes every dependent key
    unreachable — that is the invalidation rule; {!drop_name} eagerly
    reclaims the dead entries on LOAD. The cached value is the rendered
    result text (the exact bytes the CLI would print), which is also
    what travels on the wire — a hit never touches the engine, the
    planner or any formula.

    Bounded capacity, insertion-order eviction, mutex-guarded. Hits and
    misses go to [Result_cache_hits]/[Result_cache_misses]. *)

type entry = {
  text : string;
  rows : int;
  inputs : string list;  (** base-relation names this result read *)
}

type t

val key : plan_fingerprint:string -> (string * int * string) list -> string
(** [key ~plan_fingerprint digests] with [digests] from {!Store.digests}
    (order-sensitive: pass them in {!Tpdb_query.Ast.relations} order). *)

val create : capacity:int -> t
val find : t -> string -> entry option
val store : t -> key:string -> entry -> unit

val drop_name : t -> string -> int
(** Remove every entry whose inputs include this name; returns how many
    were dropped. Called on LOAD. *)

val length : t -> int
val clear : t -> unit
