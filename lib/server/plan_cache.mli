(** The prepared-plan cache: normalized-AST fingerprint → optimized
    physical plan.

    The key is {!Tpdb_query.Ast.fingerprint} of the normalized query —
    conjunct order does not split entries, join order does (it is
    semantically meaningful for outer/anti joins). The value embeds the
    {!Tpdb_query.Planner.t} built against some catalog snapshot plus
    the versions of every base relation it read; {!find} revalidates
    those versions against the caller's snapshot, because a plan hard-
    references its input relations (Scan nodes) and the probability
    environment computed from them. Stale entries are evicted on sight.

    Bounded capacity, insertion-order eviction. Every operation is
    mutex-guarded — callers are concurrent session threads and worker
    domains. Hits/misses go to the [Plan_cache_hits]/[Plan_cache_misses]
    counters. *)

type entry = {
  sql : string;  (** original text, for STATS/debugging *)
  ast : Tpdb_query.Ast.t;  (** normalized *)
  plan : Tpdb_query.Planner.t;
  plan_fingerprint : string;  (** {!Tpdb_query.Planner.fingerprint} *)
  versions : (string * int) list;
}

type t

val create : capacity:int -> t
val find : t -> current_version:(string -> int) -> string -> entry option
val store : t -> fingerprint:string -> entry -> unit
val length : t -> int
val clear : t -> unit
