module Metrics = Tpdb_obs.Metrics
module Clock = Tpdb_obs.Clock

exception Overloaded of { queued : int; limit : int }

type job = { run : unit -> unit; enqueued_ns : int }

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : job Queue.t;
  queue_limit : int;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

(* Workers drain the queue even after [shutdown] flips [stopped], so a
   caller already blocked in [run] is always answered; only new
   submissions are refused. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    match Queue.take_opt t.jobs with
    | Some job ->
        Mutex.unlock t.mutex;
        Some job
    | None ->
        if t.stopped then begin
          Mutex.unlock t.mutex;
          None
        end
        else begin
          Condition.wait t.nonempty t.mutex;
          next ()
        end
  in
  match next () with
  | None -> ()
  | Some job ->
      Metrics.observe Metrics.Server_queue_ns (Clock.now_ns () - job.enqueued_ns);
      job.run ();
      worker_loop t

let create ~workers ~queue_limit =
  if workers < 1 then invalid_arg "Admission.create: workers < 1";
  if queue_limit < 1 then invalid_arg "Admission.create: queue_limit < 1";
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      queue_limit;
      stopped = false;
      workers = [];
    }
  in
  t.workers <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let workers t = List.length t.workers

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mutex;
  n

let submit t run =
  Mutex.lock t.mutex;
  let queued = Queue.length t.jobs in
  if t.stopped || queued >= t.queue_limit then begin
    Mutex.unlock t.mutex;
    Metrics.incr Metrics.Server_rejections;
    raise (Overloaded { queued; limit = t.queue_limit })
  end;
  Queue.add { run; enqueued_ns = Clock.now_ns () } t.jobs;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

type 'a outcome = Pending | Value of 'a | Raised of exn * Printexc.raw_backtrace

let run t f =
  let mutex = Mutex.create () in
  let done_ = Condition.create () in
  let slot = ref Pending in
  submit t (fun () ->
      let outcome =
        match f () with
        | v -> Value v
        | exception e -> Raised (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock mutex;
      slot := outcome;
      Condition.signal done_;
      Mutex.unlock mutex);
  let is_pending () = match !slot with Pending -> true | _ -> false in
  Mutex.lock mutex;
  while is_pending () do
    Condition.wait done_ mutex
  done;
  Mutex.unlock mutex;
  match !slot with
  | Pending -> assert false
  | Value v -> v
  | Raised (e, bt) -> Printexc.raise_with_backtrace e bt

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers
