module P = Protocol
module Metrics = Tpdb_obs.Metrics
module Clock = Tpdb_obs.Clock
module Qlog = Tpdb_obs.Qlog
module Json = Tpdb_obs.Json
module Relation = Tpdb_relation.Relation
module Csv = Tpdb_relation.Csv
module Catalog = Tpdb_query.Catalog
module Ast = Tpdb_query.Ast
module Parser = Tpdb_query.Parser
module Lexer = Tpdb_query.Lexer
module Planner = Tpdb_query.Planner
module Pool = Tpdb_engine.Pool
module Db = Tpdb_storage.Db

type listen = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : listen;
  workers : int;
  queue_limit : int;
  plan_cache_capacity : int;
  result_cache_capacity : int;
  parallelism : int;
  sanitize : bool option;
  mem_budget : int option;
  db_dir : string option;
  stats_dir : string option;
  qlog : string option;
  debug_sleep : bool;
}

let default_config listen =
  {
    listen;
    workers = 2;
    queue_limit = 64;
    plan_cache_capacity = 128;
    result_cache_capacity = 256;
    parallelism = 1;
    sanitize = None;
    mem_budget = None;
    db_dir = None;
    stats_dir = None;
    qlog = None;
    debug_sleep = false;
  }

type t = {
  config : config;
  store : Store.t;
  admission : Admission.t;
  plans : Plan_cache.t;
  results : Result_cache.t;
  metrics : Metrics.t;
  listener : Unix.file_descr;
  bound : Unix.sockaddr;
  mutable accept_thread : Thread.t option;
  stopping : bool Atomic.t;
  session_mutex : Mutex.t;
  mutable session_fds : Unix.file_descr list;
  mutable session_threads : Thread.t list;
  active_sessions : int Atomic.t;
}

let address t = t.bound

let port t =
  match t.bound with Unix.ADDR_INET (_, port) -> Some port | _ -> None

(* --- per-session state --- *)

type session = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  prepared : (int, string * Ast.t * string) Hashtbl.t;
      (* id → (sql, normalized ast, ast fingerprint) *)
  mutable next_id : int;
}

let iso_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let qlog_record ~sql ~fingerprint ~total_ms ~rows_out =
  {
    Qlog.ts = iso_now ();
    query = sql;
    fingerprint;
    total_ms;
    rows_in = 0;
    rows_out;
    wo = 0;
    wu = 0;
    wn = 0;
    prob_cache_hits = 0;
    prob_cache_misses = 0;
    spill_bytes = 0;
    spill_partitions = 0;
    sanitizer_ms = 0.0;
    stages = [];
    gc =
      {
        Qlog.minor_words = 0;
        major_words = 0;
        promoted_words = 0;
        major_collections = 0;
        top_heap_words = 0;
      };
    slow = false;
    trace_file = None;
  }

(* Render exactly what [tpdb_cli query --result-only] prints: the
   byte-identity contract of the wire format (and the result cache's
   value). [Relation.print] is [Format.printf "%a@?" pp], so asprintf
   over the same pp produces the same bytes. *)
let render relation = Format.asprintf "%a" Relation.pp relation

(* --- query execution ---

   Session threads (systhreads, all on the server's domain) do socket
   IO, parsing and cache lookups only. Anything that can intern lineage
   formulas — planning against a catalog (probability environments),
   executing a plan, parsing CSV — runs as an admission job on a worker
   domain, one job per domain at a time, because the hash-cons unique
   table is domain-local state that concurrent systhreads would
   corrupt. *)

let plan_of t session_catalog (ast : Ast.t) =
  Planner.plan ~parallelism:t.config.parallelism
    ?sanitize:t.config.sanitize ?mem_budget:t.config.mem_budget
    session_catalog ast

(* Plan-cache lookup + fill for one normalized query against one
   consistent view. Returns the entry and whether it was a hit. Must
   run where planning is allowed (worker domain) unless the entry is
   already cached — [find] itself is pure lookup. *)
let planned t ~catalog ~inputs ~sql ~ast ~afp =
  match
    Plan_cache.find t.plans ~current_version:(Catalog.version catalog) afp
  with
  | Some entry -> (entry, true)
  | None ->
      let plan = plan_of t catalog ast in
      let entry =
        {
          Plan_cache.sql;
          ast;
          plan;
          plan_fingerprint = Planner.fingerprint plan;
          versions = List.map (fun (name, v, _) -> (name, v)) inputs;
        }
      in
      Plan_cache.store t.plans ~fingerprint:afp entry;
      (entry, false)

let execute_query t ~sql ~ast =
  let ast = Ast.normalize ast in
  let afp = Ast.fingerprint ast in
  let rels = Ast.relations ast in
  let catalog, inputs = Store.view t.store rels in
  match inputs with
  | None ->
      (* Unknown relation(s): no cache can apply; let the planner
         produce its usual error on a worker domain. *)
      Admission.run t.admission (fun () ->
          let plan = plan_of t catalog ast in
          let relation = Planner.run plan in
          let text = render relation in
          Metrics.incr Metrics.Server_queries;
          P.Result
            {
              text;
              rows = Relation.cardinality relation;
              plan_cached = false;
              result_cached = false;
            })
  | Some inputs -> (
      (* Fast path: a still-valid cached plan gives us the plan
         fingerprint without planning, and with it the result key — a
         hit is answered on the session thread, no worker involved. *)
      let cached_plan =
        Plan_cache.find t.plans ~current_version:(Catalog.version catalog) afp
      in
      let result_hit =
        match cached_plan with
        | None -> None
        | Some entry ->
            let key =
              Result_cache.key ~plan_fingerprint:entry.plan_fingerprint inputs
            in
            Result_cache.find t.results key
      in
      match result_hit with
      | Some entry ->
          Metrics.incr Metrics.Server_queries;
          P.Result
            {
              text = entry.text;
              rows = entry.rows;
              plan_cached = true;
              result_cached = true;
            }
      | None ->
          Admission.run t.admission (fun () ->
              let t0 = Clock.now_ns () in
              let entry, plan_cached =
                match cached_plan with
                | Some entry -> (entry, true)
                | None -> planned t ~catalog ~inputs ~sql ~ast ~afp
              in
              let key =
                Result_cache.key ~plan_fingerprint:entry.plan_fingerprint
                  inputs
              in
              (* Another worker may have finished the same query while
                 we queued; the recheck costs one lookup. *)
              match Result_cache.find t.results key with
              | Some cached ->
                  Metrics.incr Metrics.Server_queries;
                  P.Result
                    {
                      text = cached.text;
                      rows = cached.rows;
                      plan_cached;
                      result_cached = true;
                    }
              | None ->
                  let relation = Planner.run entry.plan in
                  let text = render relation in
                  let rows = Relation.cardinality relation in
                  Result_cache.store t.results ~key
                    { Result_cache.text; rows; inputs = rels };
                  let elapsed_ns = Clock.now_ns () - t0 in
                  Metrics.incr Metrics.Server_queries;
                  Metrics.observe Metrics.Server_query_ns elapsed_ns;
                  Option.iter
                    (fun path ->
                      Qlog.append path
                        (qlog_record ~sql
                           ~fingerprint:entry.plan_fingerprint
                           ~total_ms:(float_of_int elapsed_ns /. 1e6)
                           ~rows_out:rows))
                    t.config.qlog;
                  P.Result
                    { text; rows; plan_cached; result_cached = false }))

let prepare t session sql =
  let ast = Ast.normalize (Parser.parse sql) in
  let afp = Ast.fingerprint ast in
  let id = session.next_id in
  session.next_id <- id + 1;
  Hashtbl.replace session.prepared id (sql, ast, afp);
  let rels = Ast.relations ast in
  let catalog, inputs = Store.view t.store rels in
  (* Plan eagerly so EXECUTE (and re-PREPARE) hit the plan cache; an
     unknown relation only surfaces at EXECUTE, like the plan error it
     is. *)
  (match inputs with
  | None -> ()
  | Some inputs ->
      Admission.run t.admission (fun () ->
          ignore (planned t ~catalog ~inputs ~sql ~ast ~afp)));
  P.Prepared { id; fingerprint = afp }

let stats_json t =
  Json.obj
    [
      ( "server",
        Json.obj
          [
            ("protocol_version", Json.int P.version);
            ("generation", Json.int (Store.generation t.store));
            ( "relations",
              Json.arr (List.map Json.str (Store.names t.store)) );
            ("active_sessions", Json.int (Atomic.get t.active_sessions));
            ("workers", Json.int (Admission.workers t.admission));
            ("queue_limit", Json.int t.config.queue_limit);
            ("queued", Json.int (Admission.pending t.admission));
            ("pool_pending", Json.int (Pool.pending (Pool.default ())));
            ("plan_cache_entries", Json.int (Plan_cache.length t.plans));
            ( "result_cache_entries",
              Json.int (Result_cache.length t.results) );
            ("parallelism", Json.int t.config.parallelism);
          ] );
      ("metrics", Metrics.to_json t.metrics);
    ]

let handle t session req =
  match req with
  | P.Hello { version; client = _ } ->
      if version <> P.version then
        P.Error
          {
            code = P.Protocol_violation;
            message =
              Printf.sprintf "protocol version mismatch: server %d, client %d"
                P.version version;
          }
      else P.Welcome { version = P.version; server = "tpdb_server" }
  | P.Ping -> P.Pong
  | P.Query sql ->
      let ast = Parser.parse sql in
      execute_query t ~sql ~ast
  | P.Prepare sql -> prepare t session sql
  | P.Execute id -> (
      match Hashtbl.find_opt session.prepared id with
      | None ->
          P.Error
            {
              code = P.Unknown_prepared;
              message = Printf.sprintf "no prepared statement %d" id;
            }
      | Some (sql, ast, _afp) -> execute_query t ~sql ~ast)
  | P.Load { name; csv } ->
      let loaded =
        Admission.run t.admission (fun () -> Store.load_csv t.store ~name ~csv)
      in
      ignore (Result_cache.drop_name t.results name);
      P.Loaded
        {
          name = loaded.Store.name;
          version = loaded.Store.version;
          rows = loaded.Store.rows;
        }
  | P.Stats -> P.Stats_reply (stats_json t)
  | P.Openmetrics -> P.Openmetrics_reply (Metrics.to_openmetrics t.metrics)
  | P.Sleep ms ->
      if not t.config.debug_sleep then
        P.Error
          {
            code = P.Protocol_violation;
            message = "SLEEP requires --debug-sleep";
          }
      else
        Admission.run t.admission (fun () ->
            Unix.sleepf (float_of_int ms /. 1000.0);
            P.Pong)
  | P.Close -> P.Bye

let respond t session req =
  match handle t session req with
  | resp -> resp
  | exception Admission.Overloaded { queued; limit } ->
      P.Error
        {
          code = P.Overloaded;
          message =
            Printf.sprintf "admission queue full (%d queued, limit %d)" queued
              limit;
        }
  | exception Parser.Parse_error m ->
      P.Error { code = P.Parse_failed; message = m }
  | exception Lexer.Lex_error (m, pos) ->
      P.Error
        {
          code = P.Parse_failed;
          message = Printf.sprintf "%s (at offset %d)" m pos;
        }
  | exception Planner.Plan_error m ->
      P.Error { code = P.Plan_failed; message = m }
  | exception Csv.Error { path; line; message } ->
      P.Error
        {
          code = P.Csv_failed;
          message =
            (match line with
            | Some l -> Printf.sprintf "%s:%d: %s" path l message
            | None -> Printf.sprintf "%s: %s" path message);
        }
  | exception e ->
      P.Error { code = P.Internal; message = Printexc.to_string e }

let session_loop t session =
  Metrics.incr Metrics.Sessions_opened;
  Atomic.incr t.active_sessions;
  let finally () =
    Metrics.incr Metrics.Sessions_closed;
    Atomic.decr t.active_sessions;
    Mutex.lock t.session_mutex;
    t.session_fds <- List.filter (fun fd -> fd != session.fd) t.session_fds;
    Mutex.unlock t.session_mutex;
    (* close_in closes the shared fd; the out_channel may hold buffered
       bytes already flushed per frame, so only the fd needs closing. *)
    try close_in session.ic with Sys_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      let rec loop () =
        match P.read_request session.ic with
        | exception (End_of_file | Sys_error _ | P.Frame_error _) -> ()
        | req -> (
            let resp = respond t session req in
            match P.write_response session.oc resp with
            | exception Sys_error _ -> ()
            | () -> ( match req with P.Close -> () | _ -> loop ()))
      in
      loop ())

(* --- listener --- *)

let bind_listener = function
  | `Unix path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      (fd, Unix.ADDR_UNIX path)
  | `Tcp (host, port) ->
      let addr =
        if String.equal host "" then Unix.inet_addr_loopback
        else Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 128;
      (fd, Unix.getsockname fd)

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listener with
    | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
        if Atomic.get t.stopping then () else loop ()
    | fd, _peer ->
        if Atomic.get t.stopping then Unix.close fd
        else begin
          let session =
            {
              fd;
              ic = Unix.in_channel_of_descr fd;
              oc = Unix.out_channel_of_descr fd;
              prepared = Hashtbl.create 8;
              next_id = 1;
            }
          in
          let thread = Thread.create (fun () -> session_loop t session) () in
          Mutex.lock t.session_mutex;
          t.session_fds <- fd :: t.session_fds;
          t.session_threads <- thread :: t.session_threads;
          Mutex.unlock t.session_mutex;
          loop ()
        end
  in
  loop ()

let start config =
  if config.parallelism < 1 then invalid_arg "Server.start: parallelism < 1";
  (* Reuse an already-installed sink (the bench driver installs its own
     before starting an in-process server) rather than clobbering it. *)
  let metrics =
    match Metrics.active () with
    | Some m -> m
    | None ->
        let m = Metrics.create () in
        Metrics.install m;
        m
  in
  let db = Option.map Db.open_ config.db_dir in
  let store = Store.create ?db ?stats_dir:config.stats_dir () in
  let admission =
    Admission.create ~workers:config.workers ~queue_limit:config.queue_limit
  in
  let listener, bound = bind_listener config.listen in
  let t =
    {
      config;
      store;
      admission;
      plans = Plan_cache.create ~capacity:config.plan_cache_capacity;
      results = Result_cache.create ~capacity:config.result_cache_capacity;
      metrics;
      listener;
      bound;
      accept_thread = None;
      stopping = Atomic.make false;
      session_mutex = Mutex.create ();
      session_fds = [];
      session_threads = [];
      active_sessions = Atomic.make 0;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let store t = t.store

(* close(2) does not interrupt a thread blocked in accept(2); a
   throwaway self-connection does. The accept loop sees [stopping],
   closes the woken connection and returns. *)
let wake_accept t =
  let domain, addr =
    match t.bound with
    | Unix.ADDR_UNIX path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Unix.ADDR_INET (inet, port) ->
        let inet =
          if inet = Unix.inet_addr_any then Unix.inet_addr_loopback else inet
        in
        (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.connect fd addr with Unix.Unix_error _ -> ());
      ( try Unix.close fd with Unix.Unix_error _ -> ())

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    wake_accept t;
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (* Shutdown (not close) unblocks session threads parked in read
       while leaving each fd's closing to its own session thread — no
       double-close, no closing a reused descriptor. *)
    Mutex.lock t.session_mutex;
    let fds = t.session_fds and threads = t.session_threads in
    t.session_fds <- [];
    t.session_threads <- [];
    Mutex.unlock t.session_mutex;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      fds;
    List.iter Thread.join threads;
    Admission.shutdown t.admission;
    match t.config.listen with
    | `Unix path -> ( try Sys.remove path with Sys_error _ -> ())
    | `Tcp _ -> ()
  end
