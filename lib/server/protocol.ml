exception Frame_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Frame_error m)) fmt
let version = 1

(* A frame bigger than this is a protocol violation, not a big query:
   reject before allocating. LOAD payloads (whole CSV documents) are the
   largest legitimate frames. *)
let max_frame = 64 * 1024 * 1024

type request =
  | Hello of { version : int; client : string }
  | Ping
  | Query of string
  | Prepare of string
  | Execute of int
  | Load of { name : string; csv : string }
  | Stats
  | Openmetrics
  | Sleep of int  (** debug only: hold a worker for [ms] milliseconds *)
  | Close

type error_code =
  | Overloaded
  | Parse_failed
  | Plan_failed
  | Csv_failed
  | Unknown_prepared
  | Protocol_violation
  | Internal

type response =
  | Welcome of { version : int; server : string }
  | Pong
  | Result of {
      text : string;
      rows : int;
      plan_cached : bool;
      result_cached : bool;
    }
  | Prepared of { id : int; fingerprint : string }
  | Loaded of { name : string; version : int; rows : int }
  | Stats_reply of string
  | Openmetrics_reply of string
  | Error of { code : error_code; message : string }
  | Bye

let error_code_to_int = function
  | Overloaded -> 1
  | Parse_failed -> 2
  | Plan_failed -> 3
  | Csv_failed -> 4
  | Unknown_prepared -> 5
  | Protocol_violation -> 6
  | Internal -> 7

let error_code_of_int = function
  | 1 -> Overloaded
  | 2 -> Parse_failed
  | 3 -> Plan_failed
  | 4 -> Csv_failed
  | 5 -> Unknown_prepared
  | 6 -> Protocol_violation
  | 7 -> Internal
  | n -> fail "unknown error code %d" n

let error_code_name = function
  | Overloaded -> "overloaded"
  | Parse_failed -> "parse"
  | Plan_failed -> "plan"
  | Csv_failed -> "csv"
  | Unknown_prepared -> "unknown-prepared"
  | Protocol_violation -> "protocol"
  | Internal -> "internal"

(* --- body encoding: u8 opcode, then fields in declaration order.
   Ints are 8-byte big-endian (queries and LOADs dwarf any varint
   saving); strings are u32 length + bytes. --- *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let w_bool b v = w_u8 b (if v then 1 else 0)
let w_int b v = Buffer.add_int64_be b (Int64.of_int v)

let w_str b s =
  Buffer.add_int32_be b (Int32.of_int (String.length s));
  Buffer.add_string b s

type cursor = { buf : bytes; mutable pos : int }

let need c n =
  if c.pos + n > Bytes.length c.buf then
    fail "truncated frame: need %d bytes at offset %d of %d" n c.pos
      (Bytes.length c.buf)

let r_u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let r_bool c = r_u8 c <> 0

let r_int c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_be c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let r_str c =
  need c 4;
  let n = Int32.to_int (Bytes.get_int32_be c.buf c.pos) in
  c.pos <- c.pos + 4;
  if n < 0 || n > max_frame then fail "bad string length %d" n;
  need c n;
  let s = Bytes.sub_string c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let finished c =
  if c.pos <> Bytes.length c.buf then
    fail "trailing garbage: %d unread byte(s)" (Bytes.length c.buf - c.pos)

(* --- framing: u32 big-endian payload length, then the payload --- *)

let write_frame oc payload =
  let n = Buffer.length payload in
  if n > max_frame then fail "frame too large: %d bytes" n;
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int n);
  output_bytes oc hdr;
  Buffer.output_buffer oc payload;
  flush oc

let read_frame ic =
  let hdr = Bytes.create 4 in
  really_input ic hdr 0 4;
  let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if n < 0 || n > max_frame then fail "bad frame length %d" n;
  let payload = Bytes.create n in
  really_input ic payload 0 n;
  { buf = payload; pos = 0 }

(* --- requests (opcodes 0x01-0x0a) --- *)

let write_request oc req =
  let b = Buffer.create 64 in
  (match req with
  | Hello { version; client } ->
      w_u8 b 0x01;
      w_int b version;
      w_str b client
  | Ping -> w_u8 b 0x02
  | Query sql ->
      w_u8 b 0x03;
      w_str b sql
  | Prepare sql ->
      w_u8 b 0x04;
      w_str b sql
  | Execute id ->
      w_u8 b 0x05;
      w_int b id
  | Load { name; csv } ->
      w_u8 b 0x06;
      w_str b name;
      w_str b csv
  | Stats -> w_u8 b 0x07
  | Openmetrics -> w_u8 b 0x08
  | Sleep ms ->
      w_u8 b 0x09;
      w_int b ms
  | Close -> w_u8 b 0x0a);
  write_frame oc b

let read_request ic =
  let c = read_frame ic in
  let req =
    match r_u8 c with
    | 0x01 ->
        let version = r_int c in
        let client = r_str c in
        Hello { version; client }
    | 0x02 -> Ping
    | 0x03 -> Query (r_str c)
    | 0x04 -> Prepare (r_str c)
    | 0x05 -> Execute (r_int c)
    | 0x06 ->
        let name = r_str c in
        let csv = r_str c in
        Load { name; csv }
    | 0x07 -> Stats
    | 0x08 -> Openmetrics
    | 0x09 -> Sleep (r_int c)
    | 0x0a -> Close
    | op -> fail "unknown request opcode 0x%02x" op
  in
  finished c;
  req

(* --- responses (opcodes 0x81-0x88) --- *)

let write_response oc resp =
  let b = Buffer.create 256 in
  (match resp with
  | Welcome { version; server } ->
      w_u8 b 0x81;
      w_int b version;
      w_str b server
  | Pong -> w_u8 b 0x82
  | Result { text; rows; plan_cached; result_cached } ->
      w_u8 b 0x83;
      w_str b text;
      w_int b rows;
      w_bool b plan_cached;
      w_bool b result_cached
  | Prepared { id; fingerprint } ->
      w_u8 b 0x84;
      w_int b id;
      w_str b fingerprint
  | Loaded { name; version; rows } ->
      w_u8 b 0x85;
      w_str b name;
      w_int b version;
      w_int b rows
  | Stats_reply json ->
      w_u8 b 0x86;
      w_str b json
  | Openmetrics_reply text ->
      w_u8 b 0x87;
      w_str b text
  | Error { code; message } ->
      w_u8 b 0x88;
      w_int b (error_code_to_int code);
      w_str b message
  | Bye -> w_u8 b 0x89);
  write_frame oc b

let read_response ic =
  let c = read_frame ic in
  let resp =
    match r_u8 c with
    | 0x81 ->
        let version = r_int c in
        let server = r_str c in
        Welcome { version; server }
    | 0x82 -> Pong
    | 0x83 ->
        let text = r_str c in
        let rows = r_int c in
        let plan_cached = r_bool c in
        let result_cached = r_bool c in
        Result { text; rows; plan_cached; result_cached }
    | 0x84 ->
        let id = r_int c in
        let fingerprint = r_str c in
        Prepared { id; fingerprint }
    | 0x85 ->
        let name = r_str c in
        let version = r_int c in
        let rows = r_int c in
        Loaded { name; version; rows }
    | 0x86 -> Stats_reply (r_str c)
    | 0x87 -> Openmetrics_reply (r_str c)
    | 0x88 ->
        let code = error_code_of_int (r_int c) in
        let message = r_str c in
        Error { code; message }
    | 0x89 -> Bye
    | op -> fail "unknown response opcode 0x%02x" op
  in
  finished c;
  resp
