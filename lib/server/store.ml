module Relation = Tpdb_relation.Relation
module Csv = Tpdb_relation.Csv
module Catalog = Tpdb_query.Catalog
module Db = Tpdb_storage.Db

type loaded = { name : string; version : int; rows : int }

type t = {
  mutex : Mutex.t;
  catalog : Catalog.t;  (* the master; sessions read O(names) copies *)
  digests : (string, int * string) Hashtbl.t;  (* name → version, digest *)
  db : Db.t option;
}

(* FNV-1a 64 over the relation's canonical CSV rendering (values,
   intervals, probabilities and the ASCII lineage formulas — so a
   change of hash-cons lineage structure changes the digest even at
   equal cardinality). Computed once per registration; the rendering is
   deterministic and domain-independent, unlike [Formula.id]. *)
let digest_of relation =
  let h = ref 0xcbf29ce484222325L in
  let mix s =
    String.iter
      (fun ch ->
        h :=
          Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) 0x100000001b3L)
      s
  in
  mix (Relation.name relation);
  mix "\x00";
  mix (Csv.to_string relation);
  Printf.sprintf "%016Lx" !h

let register_locked t relation =
  Catalog.register t.catalog relation;
  let name = Relation.name relation in
  let version = Catalog.version t.catalog name in
  Hashtbl.replace t.digests name (version, digest_of relation);
  Option.iter (fun db -> Db.save db relation) t.db;
  { name; version; rows = Relation.cardinality relation }

let create ?db ?stats_dir () =
  let t =
    { mutex = Mutex.create (); catalog = Catalog.create ();
      digests = Hashtbl.create 16; db }
  in
  Option.iter (Catalog.set_stats_dir t.catalog) stats_dir;
  (* Preload every persisted relation. Single-threaded at this point
     (start-up), but register_locked would re-save each relation; go
     through the catalog directly and digest separately. *)
  Option.iter
    (fun db ->
      List.iter
        (fun name ->
          let r = Db.load db name in
          Catalog.register t.catalog r;
          Hashtbl.replace t.digests name
            (Catalog.version t.catalog name, digest_of r))
        (Db.list db))
    db;
  t

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let register t relation = locked t (fun () -> register_locked t relation)

let load_csv t ~name ~csv =
  (* Tolerate a trailing newline: CSV documents end lines with '\n',
     so a split yields one final empty string that is not a row. *)
  let lines =
    match List.rev (String.split_on_char '\n' csv) with
    | "" :: rest -> List.rev rest
    | _ -> String.split_on_char '\n' csv
  in
  let relation = Csv.of_lines ~name ~path:(Printf.sprintf "<load %s>" name) lines in
  register t relation

let snapshot t = locked t (fun () -> Catalog.copy t.catalog)
let generation t = locked t (fun () -> Catalog.generation t.catalog)
let names t = locked t (fun () -> Catalog.names t.catalog)

let digests_locked t names =
  let rec collect acc = function
    | [] -> Some (List.rev acc)
    | name :: rest -> (
        match Hashtbl.find_opt t.digests name with
        | Some (version, digest) -> collect ((name, version, digest) :: acc) rest
        | None -> None)
  in
  collect [] names

let digests t names = locked t (fun () -> digests_locked t names)

(* Snapshot and digests must describe the same instant: a LOAD slipping
   between the two reads would pair a plan validated against the old
   versions with a cache key built from the new ones. *)
let view t names =
  locked t (fun () -> (Catalog.copy t.catalog, digests_locked t names))
