(** LAWAN — the lineage-aware sweeping algorithm for negating windows
    (paper §III-C).

    Extends the stream [WUO] produced by LAWAU (overlapping + unmatched
    windows) with the negating windows. Within each group — the windows of
    one [r] tuple, ordered by start — the sweep visits the start and end
    points of the overlapping windows in order; between two consecutive
    event points with at least one valid matching [s] tuple it emits a
    negating window whose [λs] is the disjunction of the lineages of the
    tuples valid over that segment (in order of their appearance, matching
    the paper's [b3 ∨ b2] in Fig. 1b). The sweep runs on the flat
    endpoint arrays of {!Tpdb_engine.Sweep.Source}, with ending points
    scheduled by a priority queue as in the paper.

    Unmatched and overlapping windows are copied through; copies and
    negating windows alternate in start order.

    This is the group-at-a-time legacy path; the default executor fuses
    the same derivation into {!Flat_join}. *)

val extend : ?sanitize:bool -> Window.t Seq.t -> Window.t Seq.t
(** Input grouped by {!Window.same_group}, start-sorted within groups
    (LAWAU's output order). With [~sanitize:true] the output is wrapped
    in {!Invariant.wrap} at stage {!Invariant.Wuon} (default [false]). *)

val extend_group : Window.t list -> Window.t list
(** One group at a time; exposed for tests and for the ablation bench. *)
