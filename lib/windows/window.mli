(** Generalized lineage-aware temporal windows (paper §II, Table I).

    A window binds an interval [iv] to the facts and lineages of the
    matching valid tuples of both input relations:

    - {b overlapping}: a θ-matching pair (r, s) over the intersection of
      their intervals; both facts and both lineages are set;
    - {b unmatched}: a maximal sub-interval of an [r] tuple where no
      θ-matching [s] tuple is valid; [fs] and [ls] are null;
    - {b negating}: a maximal sub-interval where the set of valid
      θ-matching [s] tuples is non-empty and constant; [fs] is null and
      [ls] is the disjunction of their lineages.

    Windows additionally carry [rspan], the original interval of the
    spanning [r] tuple (and [sspan] for overlapping windows): LAWAU needs
    it to find coverage gaps, and mirroring an overlapping window for the
    right-hand side of a full outer join needs the [s] span. *)

module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula
module Fact = Tpdb_relation.Fact

type kind = Overlapping | Unmatched | Negating

type t = private {
  kind : kind;
  fr : Fact.t;
  fs : Fact.t option;
  iv : Interval.t;
  lr : Formula.t;
  ls : Formula.t option;
  rspan : Interval.t;
  sspan : Interval.t option;
}

val overlapping :
  fr:Fact.t ->
  fs:Fact.t ->
  iv:Interval.t ->
  lr:Formula.t ->
  ls:Formula.t ->
  rspan:Interval.t ->
  sspan:Interval.t ->
  t
(** Raises [Invalid_argument] unless [rspan] and [sspan] both cover
    [iv]. *)

val unmatched :
  fr:Fact.t -> iv:Interval.t -> lr:Formula.t -> rspan:Interval.t -> t

val negating :
  fr:Fact.t ->
  iv:Interval.t ->
  lr:Formula.t ->
  ls:Formula.t ->
  rspan:Interval.t ->
  t

val kind : t -> kind
val fr : t -> Fact.t
val fs : t -> Fact.t option
val iv : t -> Interval.t
val lr : t -> Formula.t
val ls : t -> Formula.t option
val rspan : t -> Interval.t

val mirror : t -> t
(** Swaps the two sides of an {e overlapping} window, so that the result
    is grouped and spanned by the original [s] tuple. Raises
    [Invalid_argument] on unmatched/negating windows. *)

val same_group : t -> t -> bool
(** Two windows belong to the same LAWAU/LAWAN group iff they stem from
    the same spanning [r] tuple: equal [fr], [lr] and [rspan]. *)

val compare_group : t -> t -> int
(** Total order on groups alone: by [fr], [rspan], [lr] — the same keys
    (and comparators) as {!Tpdb_relation.Tuple.compare_fact_start} on the
    spanning tuple, so it reproduces the group order of the sequential
    sweep. [compare_group a b = 0] iff [same_group a b]. The partitioned
    executor ({!Tpdb_engine.Parallel}) merges per-partition streams under
    this order. *)

val compare_group_start : t -> t -> int
(** The stream order of the window pipeline: by group, then by interval
    start (then end, then kind, then the [s] side, for determinism). *)

val equal : t -> t -> bool
(** Structural, with [ls] compared after {!Formula.normalize} (the
    disjunction order in a negating window is not semantic). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
