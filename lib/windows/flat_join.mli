(** The flat struct-of-arrays window pipeline (the default executor).

    Computes, per group (one [r] tuple), the overlapping windows plus —
    depending on [stage] — the unmatched gaps (LAWAU) and the negating
    constant-coverage segments (LAWAN), all derived from the same
    start-sorted endpoint arrays ({!Tpdb_engine.Flat}) with index
    arithmetic. [Window.t] records are materialized only at the group
    boundary. The probe kernel supports the full temporal component of θ:
    the classic [`Overlap] and all 13 [`Allen] relations
    ({!Tpdb_engine.Flat.window_range}).

    Output is window-for-window identical (content and order) to the
    legacy [Overlap.left] → [Lawau.extend] → [Lawan.extend] chain at the
    corresponding stage; the legacy chain remains available through
    {!Tpdb_joins.Nj.options} as the ablation baseline the bench suite
    measures the flat core against.

    Scratch buffers are per-domain ([Domain.DLS]), so the parallel
    executor's partition sweeps each get their own flat buffers. *)

module Relation = Tpdb_relation.Relation

type stage = [ `Wo | `Wuo | `Wuon ]
(** How far to extend each group: overlapping/spanning-unmatched only
    ([`Wo], the conventional outer join), plus gap windows ([`Wuo]), plus
    negating windows ([`Wuon]). *)

val left :
  ?stage:stage ->
  ?sanitize:bool ->
  theta:Theta.t ->
  Relation.t ->
  Relation.t ->
  Window.t Seq.t
(** The stream is recomputed on every traversal. [stage] defaults to
    [`Wuon]; with [~sanitize:true] the stream is wrapped in
    {!Invariant.wrap} at the matching stage. *)

val count : ?stage:stage -> theta:Theta.t -> Relation.t -> Relation.t -> int
(** [count ~stage ~theta r s] is [Seq.length (left ~stage ~theta r s)]
    computed entirely on the flat endpoint buffers: no [Window.t]
    records, no lineage, no probe-order sort — the windows of each group
    are only {e counted} from one ascending event sweep over the match
    endpoints. This is the sweep core's raw throughput (the quantity the
    bench regression gate holds ≥5x over the legacy chain) and the fast
    path for count-only consumers. *)

type right_tracker
(** Same contract as {!Overlap.right_tracker}: remembers which [s]
    tuples matched at least once. *)

val left_tracking :
  ?stage:stage ->
  ?sanitize:bool ->
  theta:Theta.t ->
  Relation.t ->
  Relation.t ->
  Window.t Seq.t * right_tracker

val unmatched_right : right_tracker -> Window.t Seq.t
(** Spanning unmatched windows of the never-matched [s] tuples; raises
    [Invalid_argument] before the main stream has been drained. *)
