(** Overlapping windows: the conventional outer join r ⟕(θo ∧ θ) s
    (paper §III-A).

    Produces, grouped by [r] tuple and ordered by window start inside each
    group, one {e overlapping} window per θ-matching pair of tuples with
    intersecting intervals — plus one spanning {e unmatched} window for
    every [r] tuple that matches nothing at all (the outer part of the
    join). Every window carries the original interval of its [r] tuple, as
    the paper requires for the later LAWAU sweep.

    With an equality atom in θ the build side is hash-partitioned on the
    join key and each [r] tuple probes only its bucket; [`Merge]
    additionally keeps every bucket sorted by interval start and cuts each
    probe off at the first start point past the probing tuple's end (in
    the spirit of the sorted/partitioned interval joins the paper cites);
    [`Index] builds an interval tree per bucket and answers each probe in
    O(log n + matches); [`Nested_loop] forces the quadratic plan (used by
    the ablation bench and by the TA baseline's cost model). All four
    produce identical window streams. *)

type algorithm = [ `Flat | `Hash | `Merge | `Index | `Nested_loop ]
(** [`Flat] selects the struct-of-arrays pipeline ({!Flat_join}) — the
    default; {!Tpdb_joins.Nj} dispatches it before this module is
    reached. Passed directly to this module (the TA baseline does), it
    behaves like [`Hash]. The other four are the legacy Seq-of-records
    paths, kept as ablation baselines and oracle configurations. *)

val left :
  ?algorithm:algorithm ->
  ?sanitize:bool ->
  theta:Theta.t ->
  Tpdb_relation.Relation.t ->
  Tpdb_relation.Relation.t ->
  Window.t Seq.t
(** The stream is re-computed on every traversal. With [~sanitize:true]
    the stream is wrapped in {!Invariant.wrap} at stage
    {!Invariant.Overlap} (default [false]). *)

val prober :
  ?algorithm:algorithm ->
  theta:Theta.t ->
  Tpdb_relation.Relation.t ->
  Tpdb_relation.Tuple.t ->
  Tpdb_relation.Tuple.t list
(** [prober ~theta s] prepares the build side once (hash partition on the
    equi-key, or the bare tuple list for nested loop) and returns the
    probe: every [s] tuple that θ-matches and temporally overlaps the
    argument. This is the conventional-join building block; the TA
    baseline calls it once per pass, NJ exactly once. *)

type right_tracker
(** Remembers which [s] tuples matched at least once, so a full outer join
    can emit spanning unmatched windows for the never-matched ones without
    a second join pass. *)

val left_tracking :
  ?algorithm:algorithm ->
  ?sanitize:bool ->
  theta:Theta.t ->
  Tpdb_relation.Relation.t ->
  Tpdb_relation.Relation.t ->
  Window.t Seq.t * right_tracker

val unmatched_right : right_tracker -> Window.t Seq.t
(** Spanning unmatched windows (grouped per [s] tuple) of the [s] tuples
    that matched no [r] tuple. Only meaningful after the main stream has
    been drained; raises [Invalid_argument] before that. *)
