(** Executable form of the paper's Table I window definitions.

    Everything here evaluates the definitions {e pointwise} over the
    discrete timeline — quadratic and meant for tests, where it serves as
    the ground-truth oracle against which {!Overlap}, {!Lawau} and
    {!Lawan} are verified. *)

module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula
module Relation = Tpdb_relation.Relation
module Fact = Tpdb_relation.Fact

val lambda_s_theta :
  theta:Theta.t ->
  s:Relation.t ->
  riv:Interval.t ->
  Fact.t ->
  Interval.time ->
  Formula.t option
(** [λ^{s,θ}_t] of Table I: the disjunction of the lineages of the [s]
    tuples valid at [t] whose facts θ-match the given [r] fact — and, when
    θ carries an [`Allen] temporal component, whose full interval stands
    in that relation to [riv] (the [r] tuple's interval) — in the
    relation's tuple order; [None] when no tuple matches. *)

val windows : theta:Theta.t -> Relation.t -> Relation.t -> Window.t list
(** All generalized windows of [r] with respect to [s] — the union
    [WO ∪ WU ∪ WN], built directly from the definitions (as enumerated in
    the paper's Fig. 2), sorted by {!Window.compare_group_start}. *)

val overlapping_windows :
  theta:Theta.t -> Relation.t -> Relation.t -> Window.t list

val unmatched_windows :
  theta:Theta.t -> Relation.t -> Relation.t -> Window.t list

val negating_windows :
  theta:Theta.t -> Relation.t -> Relation.t -> Window.t list

val is_overlapping_window :
  theta:Theta.t -> Relation.t -> Relation.t -> Window.t -> bool
(** Checks the window against the Table I definition of [WO(r; s, θ)]
    (including interval maximality). *)

val is_unmatched_window :
  theta:Theta.t -> Relation.t -> Relation.t -> Window.t -> bool

val is_negating_window :
  theta:Theta.t -> Relation.t -> Relation.t -> Window.t -> bool
