(** TPSan — the runtime window-invariant sanitizer.

    The paper's correctness argument rests on structural lemmas about the
    three window classes (Table I; proved in the extended version,
    arXiv:1902.04379): per spanning tuple, WO windows are the θ-matching
    interval intersections, WU windows are exactly the maximal uncovered
    sub-intervals of [r.T], WN windows are the maximal sub-intervals with
    a constant non-empty set of valid θ-matches, and together the classes
    cover [r.T]. This module asserts those lemmas on live window streams —
    an opt-in checking mode (the repo's ASan equivalent) that every
    executor change can run the whole test suite under.

    Checks are wrapped around a stream with {!wrap} and run lazily as the
    stream is consumed; a violated lemma raises {!Violation} naming the
    group, the interval and the lemma. The checks re-derive the expected
    window sets from first principles (cursor sweep for WU, elementary
    segments for WN), independently of the LAWAU/LAWAN implementations
    they guard. *)

type stage =
  | Overlap
      (** After {!Overlap.left}: WO windows only, or one spanning WU
          window for a matchless tuple. Checks per WO window that
          [iv = rspan ∩ sspan] and, when [theta] is given, that the two
          facts θ-match. *)
  | Wuo
      (** After LAWAU: additionally checks that the WU windows of each
          group are exactly the maximal sub-intervals of [rspan] not
          covered by any WO window (disjointness, coverage and maximality
          in one equation). *)
  | Wuon
      (** After LAWAN: additionally checks that the WN windows of each
          group are exactly the maximal constant non-empty θ-match
          segments, with λs the disjunction of the active lineages. *)

exception
  Violation of {
    lemma : string;  (** the violated lemma, in words *)
    group : string;  (** the group: spanning fact, rspan, λr *)
    interval : string;  (** the offending interval, or ["-"] *)
    detail : string;
  }

val env_enabled : unit -> bool
(** Whether [TPDB_SANITIZE] is set to [1]/[true]/[yes]/[on] in the
    environment — the default for {!Tpdb_joins.Nj.options} and the
    planner. Read once and cached. *)

val wrap : stage:stage -> ?theta:Theta.t -> Window.t Seq.t -> Window.t Seq.t
(** The stream with checking side effects: per-group lemma checks plus
    ascending-group-order/contiguity across groups. Re-traversal restarts
    the checker, so recomputed sequential streams stay checkable. *)

val check_group_order : Window.t list -> unit
(** Asserts ascending group order with contiguous groups — the contract
    of the parallel merge ({!Tpdb_engine.Parallel.merge_grouped}). *)

val merge_check : Window.t -> Window.t -> unit
(** Pairwise form of {!check_group_order}, pluggable into
    {!Tpdb_engine.Parallel.merge_grouped}'s [?check] hook. *)

val check_output :
  recompute:(Tpdb_lineage.Formula.t -> float) ->
  Tpdb_relation.Tuple.t list ->
  unit
(** Output-formation checks: every probability lies in [[0,1]] and equals
    [recompute lineage] (the environment's exact probability) within
    1e-9. *)
