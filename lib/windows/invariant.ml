module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula
module Fact = Tpdb_relation.Fact
module Tuple = Tpdb_relation.Tuple
module Grouping = Tpdb_engine.Grouping

type stage = Overlap | Wuo | Wuon

exception
  Violation of {
    lemma : string;
    group : string;
    interval : string;
    detail : string;
  }

let () =
  Printexc.register_printer (function
    | Violation { lemma; group; interval; detail } ->
        Some
          (Printf.sprintf
             "TPSan violation: lemma %S broken in group %s at interval %s: %s"
             lemma group interval detail)
    | _ -> None)

let violation ~lemma ~group ?(interval = "-") fmt =
  Printf.ksprintf
    (fun detail -> raise (Violation { lemma; group; interval; detail }))
    fmt

let env_enabled =
  let enabled =
    lazy
      (match Sys.getenv_opt "TPDB_SANITIZE" with
      | Some ("1" | "true" | "yes" | "on") -> true
      | Some _ | None -> false)
  in
  fun () -> Lazy.force enabled

let group_string w =
  Printf.sprintf "(fr='%s', rspan=%s, \xce\xbbr=%s)"
    (Fact.to_string (Window.fr w))
    (Interval.to_string (Window.rspan w))
    (Formula.to_string (Window.lr w))

let ivs_string ivs = String.concat " " (List.map Interval.to_string ivs)

(* The uncovered gaps of [rspan] w.r.t. the overlapping intervals — the
   same cursor arithmetic as LAWAU, recomputed here from the raw
   intervals so the checker does not trust the implementation under
   test. *)
let uncovered ~rspan o_ivs =
  let sorted = List.sort Interval.compare o_ivs in
  let rec sweep cursor acc = function
    | [] -> (
        match Interval.make_opt cursor (Interval.te rspan) with
        | Some g -> List.rev (g :: acc)
        | None -> List.rev acc)
    | iv :: rest ->
        let acc =
          match Interval.make_opt cursor (Interval.ts iv) with
          | Some g -> g :: acc
          | None -> acc
        in
        sweep (max cursor (Interval.te iv)) acc rest
  in
  sweep (Interval.ts rspan) [] sorted

(* Expected negating windows, from first principles: cut the group's
   overlapping intervals at every start/end point; every elementary
   segment with a non-empty set of covering intervals is one maximal
   constant segment (adjacent segments always differ in at least the
   window that created the cut), carrying the disjunction of the covering
   lineages. *)
let expected_negating os =
  let points =
    List.sort_uniq Int.compare
      (List.concat_map (fun (iv, _) -> [ Interval.ts iv; Interval.te iv ]) os)
  in
  let rec segments = function
    | a :: (b :: _ as rest) ->
        let seg = Interval.make a b in
        let cover = List.filter (fun (iv, _) -> Interval.overlaps iv seg) os in
        let here =
          match cover with
          | [] -> []
          | _ -> [ (seg, Formula.disj (List.map snd cover)) ]
        in
        here @ segments rest
    | [ _ ] | [] -> []
  in
  segments points

let kind_name = function
  | Window.Overlapping -> "overlapping"
  | Window.Unmatched -> "unmatched"
  | Window.Negating -> "negating"

let check_group ~stage ?theta group =
  match group with
  | [] -> ()
  | first :: _ ->
      let g = group_string first in
      let rspan = Window.rspan first in
      (* Stream order: within a group, non-decreasing interval start. *)
      let rec order = function
        | a :: (b :: _ as rest) ->
            if Interval.compare_start (Window.iv a) (Window.iv b) > 0 then
              violation ~lemma:"windows of a group stream in start order"
                ~group:g
                ~interval:(Interval.to_string (Window.iv b))
                "window %s arrives after %s"
                (Interval.to_string (Window.iv b))
                (Interval.to_string (Window.iv a));
            order rest
        | [ _ ] | [] -> ()
      in
      order group;
      let of_kind k = List.filter (fun w -> Window.kind w = k) group in
      let os = of_kind Window.Overlapping in
      let us = of_kind Window.Unmatched in
      let ns = of_kind Window.Negating in
      (* Stage discipline: which classes may exist yet. *)
      (match stage with
      | Overlap | Wuo ->
          (match ns with
          | [] -> ()
          | w :: _ ->
              violation ~lemma:"WN windows are produced by LAWAN only"
                ~group:g
                ~interval:(Interval.to_string (Window.iv w))
                "negating window before the LAWAN stage")
      | Wuon -> ());
      (match stage with
      | Overlap -> (
          (* Before LAWAU, an unmatched window exists only as the single
             spanning window of a matchless tuple (Overlap's fast
             path). *)
          match (us, os) with
          | [], _ -> ()
          | [ w ], [] when Interval.equal (Window.iv w) rspan -> ()
          | w :: _, _ ->
              violation
                ~lemma:
                  "before LAWAU an unmatched window spans a matchless tuple"
                ~group:g
                ~interval:(Interval.to_string (Window.iv w))
                "%d unmatched window(s) beside %d overlapping window(s)"
                (List.length us) (List.length os))
      | Wuo | Wuon ->
          (* Table I, WU (LAWAU lemma): the unmatched windows are exactly
             the maximal sub-intervals of r.T not covered by any
             overlapping window — one equation that implies pairwise
             disjointness, disjointness from WO, maximality, and exact
             coverage of r.T by WO ∪ WU. *)
          let want = uncovered ~rspan (List.map Window.iv os) in
          let got = List.map Window.iv us in
          if
            not
              (List.length want = List.length got
              && List.for_all2 Interval.equal want got)
          then
            violation
              ~lemma:
                "WU windows are exactly the maximal uncovered sub-intervals \
                 of r.T (Table I / LAWAU)"
              ~group:g "got {%s}, expected {%s}" (ivs_string got)
              (ivs_string want));
      (* Table I, WO: each window is the intersection of the two tuples'
         intervals, and the pair satisfies θ. *)
      List.iter
        (fun w ->
          let iv = Window.iv w in
          (match w.Window.sspan with
          | None ->
              violation ~lemma:"WO windows carry the matching s tuple"
                ~group:g ~interval:(Interval.to_string iv) "missing sspan"
          | Some sspan -> (
              match Interval.intersect rspan sspan with
              | Some expected when Interval.equal expected iv -> ()
              | _ ->
                  violation
                    ~lemma:"a WO window is r.T \xe2\x88\xa9 s.T (Table I)"
                    ~group:g ~interval:(Interval.to_string iv)
                    "rspan=%s sspan=%s do not intersect to %s"
                    (Interval.to_string rspan) (Interval.to_string sspan)
                    (Interval.to_string iv)));
          match (theta, Window.fs w) with
          | Some theta, Some fs ->
              if not (Theta.matches theta (Window.fr w) fs) then
                violation
                  ~lemma:"WO pairs satisfy \xce\xb8 (Table I)"
                  ~group:g ~interval:(Interval.to_string iv)
                  "facts ('%s', '%s') do not \xce\xb8-match"
                  (Fact.to_string (Window.fr w))
                  (Fact.to_string fs);
              (match w.Window.sspan with
              | Some sspan
                when not (Theta.temporal_matches theta rspan sspan) ->
                  violation
                    ~lemma:
                      "WO pairs satisfy \xce\xb8's temporal component \
                       (Table I)"
                    ~group:g ~interval:(Interval.to_string iv)
                    "intervals (%s, %s) do not satisfy the temporal \
                     predicate"
                    (Interval.to_string rspan) (Interval.to_string sspan)
              | Some _ | None -> ())
          | _ -> ())
        os;
      (* Lineage shape per class (Table II's concatenation inputs). *)
      List.iter
        (fun w ->
          let shape_ok =
            match (Window.kind w, Window.ls w) with
            | Window.Overlapping, Some _ -> true
            | Window.Unmatched, None -> true
            | Window.Negating, Some _ -> true
            | _ -> false
          in
          if not shape_ok then
            violation
              ~lemma:
                "lineage shape per class: WO has \xce\xbbs, WU has none, WN \
                 has a disjunction"
              ~group:g
              ~interval:(Interval.to_string (Window.iv w))
              "%s window with %s \xce\xbbs" (kind_name (Window.kind w))
              (match Window.ls w with Some _ -> "a" | None -> "no");
          if not (Formula.equal (Window.lr w) (Window.lr first)) then
            violation ~lemma:"all windows of a group share \xce\xbbr" ~group:g
              ~interval:(Interval.to_string (Window.iv w))
              "\xce\xbbr=%s differs from the group's %s"
              (Formula.to_string (Window.lr w))
              (Formula.to_string (Window.lr first)))
        group;
      (* Table I, WN (LAWAN lemma): maximal constant non-empty θ-match
         segments with the disjunction of the active lineages. *)
      if stage = Wuon then begin
        let want =
          expected_negating
            (List.filter_map
               (fun w ->
                 match Window.ls w with
                 | Some ls -> Some (Window.iv w, ls)
                 | None -> None)
               os)
        in
        let got = List.map (fun w -> (Window.iv w, Option.get (Window.ls w))) ns in
        if List.length want <> List.length got then
          violation
            ~lemma:
              "WN windows are exactly the maximal constant non-empty \
               \xce\xb8-match segments (Table I / LAWAN)"
            ~group:g "got {%s}, expected {%s}"
            (ivs_string (List.map fst got))
            (ivs_string (List.map fst want))
        else
          List.iter2
            (fun (wiv, wls) (giv, gls) ->
              if not (Interval.equal wiv giv) then
                violation
                  ~lemma:
                    "WN windows are exactly the maximal constant non-empty \
                     \xce\xb8-match segments (Table I / LAWAN)"
                  ~group:g ~interval:(Interval.to_string giv)
                  "expected segment %s" (Interval.to_string wiv);
              if
                not
                  (Formula.equal (Formula.normalize wls)
                     (Formula.normalize gls))
              then
                violation
                  ~lemma:
                    "a WN window's \xce\xbbs is the disjunction of the valid \
                     \xce\xb8-matches' lineages (Table I)"
                  ~group:g ~interval:(Interval.to_string giv)
                  "got \xce\xbbs=%s, expected %s" (Formula.to_string gls)
                  (Formula.to_string wls))
            want got
      end

let check_predecessor last w =
  (match !last with
  | Some prev when Window.compare_group prev w >= 0 ->
      violation
        ~lemma:"groups stream contiguously in ascending group order"
        ~group:(group_string w)
        ~interval:(Interval.to_string (Window.iv w))
        "group %s arrived earlier in the stream" (group_string prev)
  | Some _ | None -> ());
  last := Some w

(* Checking state is created per traversal, not per wrap: sequential
   streams are recomputed on every traversal and must restart the
   group-order checker each time. *)
let wrap ~stage ?theta stream () =
  let last = ref None in
  Grouping.map_runs ~same:Window.same_group
    (fun group ->
      Tpdb_obs.Metrics.incr Tpdb_obs.Metrics.Sanitizer_checks;
      Tpdb_obs.Metrics.time Tpdb_obs.Metrics.Sanitizer_ns (fun () ->
          (match group with w :: _ -> check_predecessor last w | [] -> ());
          check_group ~stage ?theta group);
      group)
    stream ()

let merge_check a b =
  if Window.compare_group a b > 0 then
    violation ~lemma:"the parallel merge preserves ascending group order"
      ~group:(group_string b)
      ~interval:(Interval.to_string (Window.iv b))
      "window of group %s follows the later group %s" (group_string b)
      (group_string a)

let check_group_order windows =
  let rec loop = function
    | a :: (b :: _ as rest) ->
        merge_check a b;
        loop rest
    | [ _ ] | [] -> ()
  in
  loop windows

let check_output ~recompute tuples =
  Tpdb_obs.Metrics.add Tpdb_obs.Metrics.Sanitizer_checks (List.length tuples);
  Tpdb_obs.Metrics.time Tpdb_obs.Metrics.Sanitizer_ns @@ fun () ->
  List.iter
    (fun tp ->
      let p = Tuple.p tp in
      if not (p >= 0.0 && p <= 1.0) then
        violation ~lemma:"output probabilities lie in [0,1]"
          ~group:(Tuple.to_string tp)
          ~interval:(Interval.to_string (Tuple.iv tp))
          "p = %g" p;
      let q = recompute (Tuple.lineage tp) in
      if Float.abs (p -. q) > 1e-9 then
        violation
          ~lemma:"an output probability is the probability of its lineage"
          ~group:(Tuple.to_string tp)
          ~interval:(Interval.to_string (Tuple.iv tp))
          "p = %.12g but P(\xce\xbb) = %.12g" p q)
    tuples
