(* The flat struct-of-arrays window pipeline: WO + WU + WN of each group
   derived in one pass over endpoint arrays (Tpdb_engine.Flat), with
   Window.t records materialized only at the group boundary the merge
   layer consumes. Output is window-for-window identical to the legacy
   Overlap.left → Lawau.extend → Lawan.extend chain (a qcheck property
   asserts it); the difference is the inner loop: index arithmetic over
   unboxed int arrays instead of a Seq-of-records closure chain. *)

module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula
module Relation = Tpdb_relation.Relation
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Value = Tpdb_relation.Value
module Flat = Tpdb_engine.Flat
module Buf = Tpdb_engine.Flat.Buf
module Hash_partition = Tpdb_engine.Hash_partition
module Metrics = Tpdb_obs.Metrics

type stage = [ `Wo | `Wuo | `Wuon ]

(* --- per-domain reusable scratch buffers ----------------------------- *)

type scratch = {
  m_ts : Buf.t;  (* match intersection starts, collection order *)
  m_te : Buf.t;  (* match intersection ends *)
  m_j : Buf.t;  (* bucket position of the matched s tuple *)
  ord : Buf.t;  (* sort permutation over the matches *)
  w_ts : Buf.t;  (* matches in window order (iv, then tuple) *)
  w_te : Buf.t;
  w_j : Buf.t;
}

(* Each domain of the pool gets its own buffers, so parallel partition
   sweeps never contend and never allocate per probe. *)
let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        m_ts = Buf.create ();
        m_te = Buf.create ();
        m_j = Buf.create ();
        ord = Buf.create ();
        w_ts = Buf.create ();
        w_te = Buf.create ();
        w_j = Buf.create ();
      })

let scratch () = Domain.DLS.get scratch_key

(* --- the build side --------------------------------------------------- *)

type bucket = {
  b_tuples : Tuple.t array;  (* sorted by (interval, original position) *)
  b_orig : int array;  (* original s position, for right-side tracking *)
  b_flat : Flat.t;  (* their endpoints, start-sorted *)
}

type ctx = {
  lookup : Tuple.t -> bucket option;
  temporal : Flat.temporal;
  matches_residual : Fact.t -> Fact.t -> bool;
  residual_trivial : bool;  (* no fact atoms beyond the equi key *)
}

let bucket_of_entries entries =
  let arr = Array.of_list entries in
  Array.sort
    (fun (i, a) (j, b) ->
      let c = Interval.compare (Tuple.iv a) (Tuple.iv b) in
      if c <> 0 then c else Int.compare i j)
    arr;
  {
    b_tuples = Array.map snd arr;
    b_orig = Array.map fst arr;
    b_flat = Flat.of_sorted (fun (_, tp) -> Tuple.iv tp) arr;
  }

module Value_table = Hashtbl.Make (struct
  type t = Value.t

  let hash = Value.hash
  let equal = Value.equal
end)

(* Single-column equi keys probe a [Value.t]-keyed table directly: no
   per-probe key-fact allocation, no multi-column hash loop. Null-keyed
   s tuples are left out of the table — a null never equals anything, so
   they could not match; they still surface as unmatched right-side
   windows through the tracker. *)
let residual_trivial residual = Theta.atoms residual = []

let build_single_key ~temporal ~residual ~lcol ~rcol s =
  let by_key = Value_table.create 1024 in
  List.iteri
    (fun i tp ->
      let v = Fact.get (Tuple.fact tp) rcol in
      if not (Value.is_null v) then
        match Value_table.find_opt by_key v with
        | Some entries -> entries := (i, tp) :: !entries
        | None -> Value_table.add by_key v (ref [ (i, tp) ]))
    (Relation.tuples s);
  let buckets = Value_table.create (Value_table.length by_key) in
  Value_table.iter
    (fun v entries ->
      Value_table.add buckets v (bucket_of_entries (List.rev !entries)))
    by_key;
  {
    lookup =
      (fun r_tuple ->
        let v = Fact.get (Tuple.fact r_tuple) lcol in
        if Value.is_null v then None else Value_table.find_opt buckets v);
    temporal;
    matches_residual = Theta.matches residual;
    residual_trivial = residual_trivial residual;
  }

let build ~theta s =
  let temporal = (Theta.temporal theta :> Flat.temporal) in
  match Theta.equi_keys theta with
  | Some ([ lcol ], [ rcol ]) ->
      build_single_key ~temporal ~residual:(Theta.residual theta) ~lcol ~rcol s
  | equi -> (
      let s_indexed = List.mapi (fun i tp -> (i, tp)) (Relation.tuples s) in
      match equi with
      | Some ([ _ ], [ _ ]) -> assert false (* handled above *)
      | Some (left_cols, right_cols) ->
      let partition =
        Hash_partition.build
          ~key:(fun (_, tp) -> Fact.key right_cols (Tuple.fact tp))
          ~hash:Fact.hash ~equal:Fact.equal s_indexed
      in
      let buckets =
        Hash_partition.build
          ~key:(fun (key, _) -> key)
          ~hash:Fact.hash ~equal:Fact.equal
          (List.map
             (fun (key, entries) -> (key, bucket_of_entries entries))
             (Hash_partition.buckets partition))
      in
      let residual = Theta.residual theta in
      {
        lookup =
          (fun r_tuple ->
            let key = Fact.key left_cols (Tuple.fact r_tuple) in
            if Array.exists Value.is_null key then None
            else
              match Hash_partition.probe buckets key with
              | [] -> None
              | (_, bucket) :: _ -> Some bucket);
        temporal;
        matches_residual = Theta.matches residual;
        residual_trivial = residual_trivial residual;
      }
      | None ->
          let bucket = bucket_of_entries s_indexed in
          {
            lookup =
              (fun _ ->
                if Array.length bucket.b_tuples = 0 then None else Some bucket);
            temporal;
            matches_residual = Theta.matches theta;
            residual_trivial = residual_trivial theta;
          })

(* --- the probe-side group pipeline ------------------------------------ *)

let unmatched_group ~fr ~lr ~rspan =
  Metrics.incr Metrics.Windows_unmatched;
  [ Window.unmatched ~fr ~iv:rspan ~lr ~rspan ]

(* One r tuple: collect its matches into the scratch arrays, order them,
   and emit the group's windows for the requested stage. *)
let group ctx scr ~stage ~mark r_tuple =
  let fr = Tuple.fact r_tuple
  and lr = Tuple.lineage r_tuple
  and rspan = Tuple.iv r_tuple in
  let rts = Interval.ts rspan and rte = Interval.te rspan in
  match ctx.lookup r_tuple with
  | None -> unmatched_group ~fr ~lr ~rspan
  | Some b ->
      Buf.clear scr.m_ts;
      Buf.clear scr.m_te;
      Buf.clear scr.m_j;
      let lo, hi = Flat.window_range b.b_flat ctx.temporal ~rts ~rte in
      for j = lo to hi - 1 do
        let tev = Flat.te b.b_flat j in
        if
          Flat.end_matches ctx.temporal ~rts ~rte tev
          && ctx.matches_residual fr (Tuple.fact b.b_tuples.(j))
        then begin
          mark b.b_orig.(j);
          Buf.push scr.m_ts (max rts (Flat.ts b.b_flat j));
          Buf.push scr.m_te (min rte tev);
          Buf.push scr.m_j j
        end
      done;
      let k = Buf.length scr.m_ts in
      if k = 0 then unmatched_group ~fr ~lr ~rspan
      else begin
        (* Window order within the group: intersection interval, then
           the s tuple — the order the legacy probe sorts into. *)
        Buf.clear scr.ord;
        for x = 0 to k - 1 do
          Buf.push scr.ord x
        done;
        Buf.sort scr.ord (fun x y ->
            let c = Int.compare (Buf.get scr.m_ts x) (Buf.get scr.m_ts y) in
            if c <> 0 then c
            else
              let c = Int.compare (Buf.get scr.m_te x) (Buf.get scr.m_te y) in
              if c <> 0 then c
              else
                Tuple.compare_fact_start
                  b.b_tuples.(Buf.get scr.m_j x)
                  b.b_tuples.(Buf.get scr.m_j y));
        Buf.clear scr.w_ts;
        Buf.clear scr.w_te;
        Buf.clear scr.w_j;
        for x = 0 to k - 1 do
          let o = Buf.get scr.ord x in
          Buf.push scr.w_ts (Buf.get scr.m_ts o);
          Buf.push scr.w_te (Buf.get scr.m_te o);
          Buf.push scr.w_j (Buf.get scr.m_j o)
        done;
        let wts x = Buf.get scr.w_ts x
        and wte x = Buf.get scr.w_te x
        and wtuple x = b.b_tuples.(Buf.get scr.w_j x) in
        let wo =
          Array.init k (fun x ->
              Metrics.incr Metrics.Windows_overlapping;
              let s_tuple = wtuple x in
              Window.overlapping ~fr ~fs:(Tuple.fact s_tuple)
                ~iv:(Interval.make (wts x) (wte x))
                ~lr
                ~ls:(Tuple.lineage s_tuple)
                ~rspan ~sspan:(Tuple.iv s_tuple))
        in
        match stage with
        | `Wo -> Array.to_list wo
        | (`Wuo | `Wuon) as stage ->
            (* LAWAU: cursor sweep for the uncovered gaps, interleaved
               before the window that bounds them. *)
            let acc = ref [] in
            let cursor = ref rts in
            let gap upto =
              match Interval.make_opt !cursor upto with
              | Some iv ->
                  Metrics.incr Metrics.Windows_unmatched;
                  acc := Window.unmatched ~fr ~iv ~lr ~rspan :: !acc
              | None -> ()
            in
            for x = 0 to k - 1 do
              gap (wts x);
              acc := wo.(x) :: !acc;
              cursor := max !cursor (wte x)
            done;
            gap rte;
            let wuo = List.rev !acc in
            if stage = `Wuo then wuo
            else begin
              (* LAWAN: maximal constant-coverage segments of the match
                 intervals, λs in arrival order. *)
              let negs = ref [] in
              let x = ref 0 in
              let pos = ref 0 in
              let active = ref [] in
              let admit t =
                while !x < k && wts !x = t do
                  active := (wte !x, !x) :: !active;
                  incr x
                done
              in
              while !x < k || !active <> [] do
                if !active = [] then begin
                  pos := wts !x;
                  admit !pos
                end
                else begin
                  let next_start = if !x < k then wts !x else max_int in
                  let min_end =
                    List.fold_left (fun m (e, _) -> min m e) max_int !active
                  in
                  let t = min min_end next_start in
                  if t > !pos then begin
                    Metrics.incr Metrics.Sweep_segments;
                    Metrics.incr Metrics.Windows_negating;
                    let ls =
                      Formula.disj
                        (List.rev_map
                           (fun (_, y) -> Tuple.lineage (wtuple y))
                           !active)
                    in
                    negs :=
                      Window.negating ~fr ~iv:(Interval.make !pos t) ~lr ~ls
                        ~rspan
                      :: !negs
                  end;
                  active := List.filter (fun (e, _) -> e > t) !active;
                  admit t;
                  pos := t
                end
              done;
              List.merge
                (fun a b ->
                  Interval.compare_start (Window.iv a) (Window.iv b))
                wuo (List.rev !negs)
            end
      end

(* Counting kernel: derive every window boundary of the group on the
   int buffers alone — no [Window.t], no lineage, no match permutation.
   Counts are invariant to probe order and to the within-group window
   order, so the r side is not sorted and matches only need their starts
   and ends sorted independently: gaps (LAWAU) are the uncovered
   intervals of the union coverage, negating segments (LAWAN) the spans
   between consecutive event points with non-empty coverage, and one
   ascending event sweep over the two sorted endpoint buffers yields
   both. *)
let count_group ctx scr ~stage r_tuple =
  let fr = Tuple.fact r_tuple in
  let rspan = Tuple.iv r_tuple in
  let rts = Interval.ts rspan and rte = Interval.te rspan in
  match ctx.lookup r_tuple with
  | None -> 1 (* spanning unmatched *)
  | Some b ->
      Buf.clear scr.m_ts;
      Buf.clear scr.m_te;
      let lo, hi = Flat.window_range b.b_flat ctx.temporal ~rts ~rte in
      (* The one loop the whole bench leans on: for the common case —
         [`Overlap] with a pure equi θ — dispatch and the residual
         closure are hoisted out and the endpoint arrays are walked
         raw ([lo, hi) is in bounds by construction). *)
      (if ctx.residual_trivial && ctx.temporal = `Overlap then begin
         let ts_a = Flat.starts b.b_flat and te_a = Flat.ends b.b_flat in
         for j = lo to hi - 1 do
           let tev = Array.unsafe_get te_a j in
           if tev > rts then begin
             Buf.push scr.m_ts (max rts (Array.unsafe_get ts_a j));
             Buf.push scr.m_te (min rte tev)
           end
         done
       end
       else
         for j = lo to hi - 1 do
           let tev = Flat.te b.b_flat j in
           if
             Flat.end_matches ctx.temporal ~rts ~rte tev
             && ctx.matches_residual fr (Tuple.fact b.b_tuples.(j))
           then begin
             Buf.push scr.m_ts (max rts (Flat.ts b.b_flat j));
             Buf.push scr.m_te (min rte tev)
           end
         done);
      let k = Buf.length scr.m_ts in
      if k = 0 then 1
      else if stage = `Wo then k
      else begin
        Buf.sort scr.m_ts Int.compare;
        Buf.sort scr.m_te Int.compare;
        let gaps = ref 0 and segments = ref 0 in
        let i = ref 0 (* next start *) and j = ref 0 (* next end *) in
        let active = ref 0 and pos = ref rts in
        while !j < k do
          let t =
            if !i < k && Buf.get scr.m_ts !i <= Buf.get scr.m_te !j then
              Buf.get scr.m_ts !i
            else Buf.get scr.m_te !j
          in
          if t > !pos then
            if !active > 0 then incr segments else incr gaps;
          while !i < k && Buf.get scr.m_ts !i = t do
            incr active;
            incr i
          done;
          while !j < k && Buf.get scr.m_te !j = t do
            decr active;
            incr j
          done;
          pos := t
        done;
        if rte > !pos then incr gaps;
        let segments = if stage = `Wuon then !segments else 0 in
        k + !gaps + segments
      end

(* --- entry points ------------------------------------------------------ *)

let invariant_stage : stage -> Invariant.stage = function
  | `Wo -> Invariant.Overlap
  | `Wuo -> Invariant.Wuo
  | `Wuon -> Invariant.Wuon

let left_with ~stage ~theta ~mark r s =
  let ctx = build ~theta s in
  let r_sorted = Relation.sorted_by_fact_start r in
  Seq.concat_map
    (fun r_tuple ->
      List.to_seq (group ctx (scratch ()) ~stage ~mark r_tuple))
    (List.to_seq r_sorted)

let checked ~stage ~sanitize ~theta stream =
  if sanitize then Invariant.wrap ~stage:(invariant_stage stage) ~theta stream
  else stream

let left ?(stage = `Wuon) ?(sanitize = false) ~theta r s =
  checked ~stage ~sanitize ~theta (left_with ~stage ~theta ~mark:ignore r s)

let count ?(stage = `Wuon) ~theta r s =
  let ctx = build ~theta s in
  let scr = scratch () in
  List.fold_left
    (fun n r_tuple -> n + count_group ctx scr ~stage r_tuple)
    0 (Relation.tuples r)

type right_tracker = {
  s_tuples : Tuple.t array;
  matched : bool array;
  mutable drained : bool;
}

let left_tracking ?(stage = `Wuon) ?(sanitize = false) ~theta r s =
  let s_tuples = Relation.to_array s in
  let tracker =
    {
      s_tuples;
      matched = Array.make (Array.length s_tuples) false;
      drained = false;
    }
  in
  let stream =
    let body =
      checked ~stage ~sanitize ~theta
        (left_with ~stage ~theta
           ~mark:(fun i -> tracker.matched.(i) <- true)
           r s)
    in
    Seq.append body
      (fun () ->
        tracker.drained <- true;
        Seq.Nil)
  in
  (stream, tracker)

let unmatched_right tracker =
  if not tracker.drained then
    invalid_arg "Flat_join.unmatched_right: main stream not yet drained";
  let unmatched =
    List.filter_map
      (fun i ->
        if tracker.matched.(i) then None
        else begin
          Metrics.incr Metrics.Windows_unmatched;
          let tp = tracker.s_tuples.(i) in
          Some
            (Window.unmatched ~fr:(Tuple.fact tp) ~iv:(Tuple.iv tp)
               ~lr:(Tuple.lineage tp) ~rspan:(Tuple.iv tp))
        end)
      (List.init (Array.length tracker.s_tuples) Fun.id)
  in
  List.to_seq (List.sort Window.compare_group_start unmatched)
