module Interval = Tpdb_interval.Interval
module Relation = Tpdb_relation.Relation
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Hash_partition = Tpdb_engine.Hash_partition
module Metrics = Tpdb_obs.Metrics

type algorithm = [ `Flat | `Hash | `Merge | `Index | `Nested_loop ]

type right_tracker = {
  s_tuples : Tuple.t array;
  matched : bool array;
  mutable drained : bool;
}

(* One r tuple against its sorted match list: the overlapping windows, or a
   single spanning unmatched window when nothing matches. *)
let windows_of_probe r_tuple matches =
  let fr = Tuple.fact r_tuple
  and lr = Tuple.lineage r_tuple
  and rspan = Tuple.iv r_tuple in
  match matches with
  | [] ->
      Metrics.incr Metrics.Windows_unmatched;
      [ Window.unmatched ~fr ~iv:rspan ~lr ~rspan ]
  | _ ->
      let with_iv =
        List.filter_map
          (fun s_tuple ->
            Interval.intersect rspan (Tuple.iv s_tuple)
            |> Option.map (fun iv -> (iv, s_tuple)))
          matches
      in
      let sorted =
        List.sort
          (fun (ia, sa) (ib, sb) ->
            let c = Interval.compare ia ib in
            if c <> 0 then c else Tuple.compare_fact_start sa sb)
          with_iv
      in
      List.map
        (fun (iv, s_tuple) ->
          Metrics.incr Metrics.Windows_overlapping;
          Window.overlapping ~fr ~fs:(Tuple.fact s_tuple) ~iv ~lr
            ~ls:(Tuple.lineage s_tuple) ~rspan ~sspan:(Tuple.iv s_tuple))
        sorted

let probe_fn ?(algorithm = `Hash) ~theta s_indexed =
  let build_partition right_cols =
    Hash_partition.build
      ~key:(fun (_, tp) -> Fact.key right_cols (Tuple.fact tp))
      ~hash:Fact.hash ~equal:Fact.equal s_indexed
  in
  (* A pair forms a window iff it shares a time point, satisfies θ's
     temporal component over the full tuple intervals, and fact-matches
     the residual atoms. [residual] keeps the temporal component of the
     θ it was derived from, so one value carries both checks. *)
  let pair_matches residual r_tuple s_tuple =
    Interval.overlaps (Tuple.iv r_tuple) (Tuple.iv s_tuple)
    && Theta.temporal_matches residual (Tuple.iv r_tuple) (Tuple.iv s_tuple)
    && Theta.matches residual (Tuple.fact r_tuple) (Tuple.fact s_tuple)
  in
  let overlap_filter residual r_tuple candidates =
    List.filter (fun (_, s_tuple) -> pair_matches residual r_tuple s_tuple) candidates
  in
  (* [`Merge]: candidates sorted by start; stop at the first candidate
     starting at or after the probe's end point. *)
  let sorted_scan residual r_tuple candidates =
    let rte = Interval.te (Tuple.iv r_tuple) in
    let rec scan acc = function
      | [] -> List.rev acc
      | ((_, s_tuple) as entry) :: rest ->
          if Interval.ts (Tuple.iv s_tuple) >= rte then List.rev acc
          else
            scan
              (if pair_matches residual r_tuple s_tuple then entry :: acc
               else acc)
              rest
    in
    scan [] candidates
  in
  let sort_by_start entries =
    List.sort
      (fun (_, a) (_, b) -> Interval.compare (Tuple.iv a) (Tuple.iv b))
      entries
  in
  match (algorithm, Theta.equi_keys theta) with
  (* [`Flat] is dispatched to Flat_join by Nj before reaching here; a
     direct caller (the TA baseline) gets the hash-partitioned probe. *)
  | (`Hash | `Flat), Some (left_cols, right_cols) ->
      let partition = build_partition right_cols in
      let residual = Theta.residual theta in
      fun r_tuple ->
        let key = Fact.key left_cols (Tuple.fact r_tuple) in
        if Array.exists Tpdb_relation.Value.is_null key then []
        else overlap_filter residual r_tuple (Hash_partition.probe partition key)
  | `Merge, Some (left_cols, right_cols) ->
      let partition = build_partition right_cols in
      Hash_partition.map_buckets sort_by_start partition;
      let residual = Theta.residual theta in
      fun r_tuple ->
        let key = Fact.key left_cols (Tuple.fact r_tuple) in
        if Array.exists Tpdb_relation.Value.is_null key then []
        else sorted_scan residual r_tuple (Hash_partition.probe partition key)
  | `Merge, None ->
      let sorted = sort_by_start s_indexed in
      fun r_tuple -> sorted_scan theta r_tuple sorted
  | `Index, Some (left_cols, right_cols) ->
      let partition = build_partition right_cols in
      (* One interval tree per bucket, built up front and probed through
         a second key-partition (the tree is the single bucket element). *)
      let trees =
        Hash_partition.build
          ~key:(fun (key, _) -> key)
          ~hash:Fact.hash ~equal:Fact.equal
          (List.map
             (fun (key, bucket) ->
               ( key,
                 Tpdb_engine.Interval_tree.build
                   (fun (_, tp) -> Tuple.iv tp)
                   bucket ))
             (Hash_partition.buckets partition))
      in
      let residual = Theta.residual theta in
      fun r_tuple ->
        let key = Fact.key left_cols (Tuple.fact r_tuple) in
        if Array.exists Tpdb_relation.Value.is_null key then []
        else
          (match Hash_partition.probe trees key with
          | [] -> []
          | (_, tree) :: _ ->
              Tpdb_engine.Interval_tree.overlapping tree (Tuple.iv r_tuple)
              |> List.filter (fun (_, s_tuple) ->
                     Theta.temporal_matches residual (Tuple.iv r_tuple)
                       (Tuple.iv s_tuple)
                     && Theta.matches residual (Tuple.fact r_tuple)
                          (Tuple.fact s_tuple)))
  | `Index, None ->
      let tree =
        Tpdb_engine.Interval_tree.build (fun (_, tp) -> Tuple.iv tp) s_indexed
      in
      fun r_tuple ->
        Tpdb_engine.Interval_tree.overlapping tree (Tuple.iv r_tuple)
        |> List.filter (fun (_, s_tuple) ->
               Theta.temporal_matches theta (Tuple.iv r_tuple)
                 (Tuple.iv s_tuple)
               && Theta.matches theta (Tuple.fact r_tuple)
                    (Tuple.fact s_tuple))
  | (`Nested_loop | `Hash | `Flat), _ ->
      fun r_tuple -> overlap_filter theta r_tuple s_indexed

let prober ?algorithm ~theta s =
  let s_indexed = List.mapi (fun i tp -> (i, tp)) (Relation.tuples s) in
  let probe = probe_fn ?algorithm ~theta s_indexed in
  fun r_tuple -> List.map snd (probe r_tuple)

let left_with ?algorithm ~theta ~mark r s =
  let s_indexed = List.mapi (fun i tp -> (i, tp)) (Relation.tuples s) in
  let probe = probe_fn ?algorithm ~theta s_indexed in
  let r_sorted = Relation.sorted_by_fact_start r in
  Seq.concat_map
    (fun r_tuple ->
      let matches = probe r_tuple in
      List.iter (fun (i, _) -> mark i) matches;
      List.to_seq (windows_of_probe r_tuple (List.map snd matches)))
    (List.to_seq r_sorted)

let checked ~sanitize ~theta stream =
  if sanitize then Invariant.wrap ~stage:Invariant.Overlap ~theta stream
  else stream

let left ?algorithm ?(sanitize = false) ~theta r s =
  checked ~sanitize ~theta (left_with ?algorithm ~theta ~mark:ignore r s)

let left_tracking ?algorithm ?(sanitize = false) ~theta r s =
  let s_tuples = Relation.to_array s in
  let tracker =
    {
      s_tuples;
      matched = Array.make (Array.length s_tuples) false;
      drained = false;
    }
  in
  let stream =
    let body =
      checked ~sanitize ~theta
        (left_with ?algorithm ~theta
           ~mark:(fun i -> tracker.matched.(i) <- true)
           r s)
    in
    Seq.append body
      (fun () ->
        tracker.drained <- true;
        Seq.Nil)
  in
  (stream, tracker)

let unmatched_right tracker =
  if not tracker.drained then
    invalid_arg "Overlap.unmatched_right: main stream not yet drained";
  let unmatched =
    List.filter_map
      (fun i ->
        if tracker.matched.(i) then None
        else begin
          Metrics.incr Metrics.Windows_unmatched;
          let tp = tracker.s_tuples.(i) in
          Some
            (Window.unmatched ~fr:(Tuple.fact tp) ~iv:(Tuple.iv tp)
               ~lr:(Tuple.lineage tp) ~rspan:(Tuple.iv tp))
        end)
      (List.init (Array.length tracker.s_tuples) Fun.id)
  in
  List.to_seq (List.sort Window.compare_group_start unmatched)
