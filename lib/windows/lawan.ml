module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula
module Grouping = Tpdb_engine.Grouping
module Sweep = Tpdb_engine.Sweep

(* The sweep over one group's overlapping windows: every maximal segment
   with a constant, non-empty set of valid matching s tuples becomes a
   negating window whose λs lists the lineages in arrival order, matching
   the paper's examples (b3 ∨ b2 in Fig. 1b). The group's windows are
   start-sorted, so the Sweep.Source start-order precondition holds by
   construction. *)
let negating_of_group group =
  let overlapping =
    List.filter_map
      (fun w ->
        match (Window.kind w, Window.ls w) with
        | Window.Overlapping, Some ls -> Some (Window.iv w, ls)
        | (Window.Overlapping | Window.Unmatched | Window.Negating), _ -> None)
      group
  in
  match group with
  | [] -> []
  | first :: _ ->
      let fr = Window.fr first
      and lr = Window.lr first
      and rspan = Window.rspan first in
      Sweep.constant_segments (Sweep.Source.of_list overlapping)
      |> List.map (fun (iv, lineages) ->
             Tpdb_obs.Metrics.incr Tpdb_obs.Metrics.Windows_negating;
             Window.negating ~fr ~iv ~lr ~ls:(Formula.disj lineages) ~rspan)

let extend_group group =
  let negs = negating_of_group group in
  List.merge
    (fun a b -> Interval.compare_start (Window.iv a) (Window.iv b))
    group negs

let extend ?(sanitize = false) stream =
  let extended =
    Grouping.map_runs ~same:Window.same_group extend_group stream
  in
  if sanitize then Invariant.wrap ~stage:Invariant.Wuon extended else extended
