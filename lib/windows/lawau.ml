module Interval = Tpdb_interval.Interval
module Grouping = Tpdb_engine.Grouping

let extend_group group =
  match group with
  | [] -> []
  | first :: _ ->
      let rspan = Window.rspan first in
      let fr = Window.fr first and lr = Window.lr first in
      let gap cursor upto =
        Interval.make_opt cursor upto
        |> Option.map (fun iv ->
               Tpdb_obs.Metrics.incr Tpdb_obs.Metrics.Windows_unmatched;
               Window.unmatched ~fr ~iv ~lr ~rspan)
      in
      let rec sweep cursor acc = function
        | [] ->
            let acc =
              match gap cursor (Interval.te rspan) with
              | Some w -> w :: acc
              | None -> acc
            in
            List.rev acc
        | w :: rest ->
            let iv = Window.iv w in
            let acc =
              match gap cursor (Interval.ts iv) with
              | Some g -> w :: g :: acc
              | None -> w :: acc
            in
            sweep (max cursor (Interval.te iv)) acc rest
      in
      sweep (Interval.ts rspan) [] group

let extend ?(sanitize = false) stream =
  let extended =
    Grouping.map_runs ~same:Window.same_group extend_group stream
  in
  if sanitize then Invariant.wrap ~stage:Invariant.Wuo extended else extended
