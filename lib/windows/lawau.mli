(** LAWAU — the lineage-aware sweeping algorithm for unmatched windows
    (paper §III-B).

    Extends the overlapping-window stream with the {e remaining} unmatched
    windows: the sub-intervals of each [r] tuple covered by no overlapping
    window (the conventional outer join already produced spanning
    unmatched windows for the [r] tuples that match nothing at all). The
    sweep walks every group — the windows of one [r] tuple, sorted by
    start — keeping a cursor on the first uncovered time point of the
    tuple's original interval and emitting a gap window whenever the next
    overlapping window starts beyond it (the five ending-point cases of
    the paper's Fig. 3 collapse onto cursor arithmetic over sorted
    windows).

    The transformation streams group by group: it is a pipelined operator
    in the paper's sense, with no tuple replication. *)

val extend : ?sanitize:bool -> Window.t Seq.t -> Window.t Seq.t
(** Input must be grouped by spanning tuple ({!Window.same_group}) and
    sorted by window start inside each group — the order {!Overlap.left}
    produces. Output keeps that order and is idempotent under re-
    application. With [~sanitize:true] the output is wrapped in
    {!Invariant.wrap} at stage {!Invariant.Wuo} (default [false]). *)

val extend_group : Window.t list -> Window.t list
(** One group at a time; exposed for tests and for the ablation bench. *)
