module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula
module Relation = Tpdb_relation.Relation
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact

(* Pair-level temporal component of θ, evaluated against the spanning
   tuple's full interval. [`Overlap] needs no extra check here: λ is only
   consulted for time points where both tuples are valid, which implies a
   shared point. *)
let temporal_ok theta riv siv =
  match Theta.temporal theta with
  | `Overlap -> true
  | `Allen rel -> Interval.allen riv siv = rel

let lambda_s_theta ~theta ~s ~riv rfact t =
  let lineages =
    List.filter_map
      (fun s_tuple ->
        if
          Tuple.valid_at s_tuple t
          && Theta.matches theta rfact (Tuple.fact s_tuple)
          && temporal_ok theta riv (Tuple.iv s_tuple)
        then Some (Tuple.lineage s_tuple)
        else None)
      (Relation.tuples s)
  in
  match lineages with [] -> None | _ -> Some (Formula.disj lineages)

let formula_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Formula.equal (Formula.normalize x) (Formula.normalize y)
  | None, Some _ | Some _, None -> false

(* Maximal runs of equal λ^{s,θ}_t inside one r tuple's interval. *)
let runs_of_tuple ~theta ~s r_tuple =
  let rspan = Tuple.iv r_tuple in
  let states =
    List.of_seq
      (Seq.map
         (fun t ->
           (t, lambda_s_theta ~theta ~s ~riv:rspan (Tuple.fact r_tuple) t))
         (Interval.points rspan))
  in
  let rec group = function
    | [] -> []
    | (t, state) :: rest ->
        let rec extend last = function
          | (t', state') :: rest' when formula_opt_equal state state' ->
              extend t' rest'
          | remaining -> (last, remaining)
        in
        let last, remaining = extend t rest in
        (Interval.make t (last + 1), state) :: group remaining
  in
  group states

let per_tuple_windows ~theta r s =
  List.concat_map
    (fun r_tuple ->
      let fr = Tuple.fact r_tuple
      and lr = Tuple.lineage r_tuple
      and rspan = Tuple.iv r_tuple in
      List.map
        (fun (iv, state) ->
          match state with
          | None -> Window.unmatched ~fr ~iv ~lr ~rspan
          | Some ls -> Window.negating ~fr ~iv ~lr ~ls ~rspan)
        (runs_of_tuple ~theta ~s r_tuple))
    (Relation.tuples r)

let overlapping_windows ~theta r s =
  List.concat_map
    (fun r_tuple ->
      List.filter_map
        (fun s_tuple ->
          if
            Theta.matches theta (Tuple.fact r_tuple) (Tuple.fact s_tuple)
            && temporal_ok theta (Tuple.iv r_tuple) (Tuple.iv s_tuple)
          then
            Interval.intersect (Tuple.iv r_tuple) (Tuple.iv s_tuple)
            |> Option.map (fun iv ->
                   Window.overlapping ~fr:(Tuple.fact r_tuple)
                     ~fs:(Tuple.fact s_tuple) ~iv ~lr:(Tuple.lineage r_tuple)
                     ~ls:(Tuple.lineage s_tuple) ~rspan:(Tuple.iv r_tuple)
                     ~sspan:(Tuple.iv s_tuple))
          else None)
        (Relation.tuples s))
    (Relation.tuples r)
  |> List.sort Window.compare_group_start

let unmatched_windows ~theta r s =
  per_tuple_windows ~theta r s
  |> List.filter (fun w -> Window.kind w = Window.Unmatched)
  |> List.sort Window.compare_group_start

let negating_windows ~theta r s =
  per_tuple_windows ~theta r s
  |> List.filter (fun w -> Window.kind w = Window.Negating)
  |> List.sort Window.compare_group_start

let windows ~theta r s =
  overlapping_windows ~theta r s @ per_tuple_windows ~theta r s
  |> List.sort Window.compare_group_start

let lineage_matches expected actual =
  Formula.equal (Formula.normalize expected) (Formula.normalize actual)

let spanning_tuples r w =
  List.filter
    (fun tp ->
      Fact.equal (Tuple.fact tp) (Window.fr w)
      && lineage_matches (Tuple.lineage tp) (Window.lr w))
    (Relation.tuples r)

let valid_spanning_at r w t = List.exists (fun tp -> Tuple.valid_at tp t) (spanning_tuples r w)

let is_overlapping_window ~theta r s w =
  Window.kind w = Window.Overlapping
  && List.exists
       (fun r_tuple ->
         Fact.equal (Tuple.fact r_tuple) (Window.fr w)
         && lineage_matches (Tuple.lineage r_tuple) (Window.lr w)
         && List.exists
              (fun s_tuple ->
                Some (Tuple.fact s_tuple) = Window.fs w
                && (match Window.ls w with
                   | Some ls -> lineage_matches (Tuple.lineage s_tuple) ls
                   | None -> false)
                && Theta.matches theta (Tuple.fact r_tuple) (Tuple.fact s_tuple)
                && temporal_ok theta (Tuple.iv r_tuple) (Tuple.iv s_tuple)
                && Interval.intersect (Tuple.iv r_tuple) (Tuple.iv s_tuple)
                   = Some (Window.iv w))
              (Relation.tuples s))
       (Relation.tuples r)

let boundary_fails ~theta r s w expected_state t' =
  (* Table I maximality: at each boundary point, either no spanning r tuple
     is valid or λ^{s,θ} differs from the window's λs. *)
  (not (valid_spanning_at r w t'))
  || not
       (formula_opt_equal expected_state
          (lambda_s_theta ~theta ~s ~riv:(Window.rspan w) (Window.fr w) t'))

let is_unmatched_window ~theta r s w =
  Window.kind w = Window.Unmatched
  && Window.fs w = None
  && Window.ls w = None
  && Seq.for_all
       (fun t ->
         valid_spanning_at r w t
         && lambda_s_theta ~theta ~s ~riv:(Window.rspan w) (Window.fr w) t
            = None)
       (Interval.points (Window.iv w))
  && boundary_fails ~theta r s w None (Interval.ts (Window.iv w) - 1)
  && boundary_fails ~theta r s w None (Interval.te (Window.iv w))

let is_negating_window ~theta r s w =
  Window.kind w = Window.Negating
  && Window.fs w = None
  &&
  match Window.ls w with
  | None -> false
  | Some ls ->
      Seq.for_all
        (fun t ->
          valid_spanning_at r w t
          &&
          match
            lambda_s_theta ~theta ~s ~riv:(Window.rspan w) (Window.fr w) t
          with
          | Some actual -> lineage_matches ls actual
          | None -> false)
        (Interval.points (Window.iv w))
      && boundary_fails ~theta r s w (Some ls) (Interval.ts (Window.iv w) - 1)
      && boundary_fails ~theta r s w (Some ls) (Interval.te (Window.iv w))
