module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula
module Fact = Tpdb_relation.Fact

type kind = Overlapping | Unmatched | Negating

type t = {
  kind : kind;
  fr : Fact.t;
  fs : Fact.t option;
  iv : Interval.t;
  lr : Formula.t;
  ls : Formula.t option;
  rspan : Interval.t;
  sspan : Interval.t option;
}

let check_span name span iv =
  if not (Interval.covers span iv) then
    invalid_arg
      (Printf.sprintf "Window: %s %s does not cover window interval %s" name
         (Interval.to_string span) (Interval.to_string iv))

let overlapping ~fr ~fs ~iv ~lr ~ls ~rspan ~sspan =
  check_span "rspan" rspan iv;
  check_span "sspan" sspan iv;
  {
    kind = Overlapping;
    fr;
    fs = Some fs;
    iv;
    lr;
    ls = Some ls;
    rspan;
    sspan = Some sspan;
  }

let unmatched ~fr ~iv ~lr ~rspan =
  check_span "rspan" rspan iv;
  { kind = Unmatched; fr; fs = None; iv; lr; ls = None; rspan; sspan = None }

let negating ~fr ~iv ~lr ~ls ~rspan =
  check_span "rspan" rspan iv;
  { kind = Negating; fr; fs = None; iv; lr; ls = Some ls; rspan; sspan = None }

let kind w = w.kind
let fr w = w.fr
let fs w = w.fs
let iv w = w.iv
let lr w = w.lr
let ls w = w.ls
let rspan w = w.rspan

let mirror w =
  match (w.kind, w.fs, w.ls, w.sspan) with
  | Overlapping, Some fs, Some ls, Some sspan ->
      {
        kind = Overlapping;
        fr = fs;
        fs = Some w.fr;
        iv = w.iv;
        lr = ls;
        ls = Some w.lr;
        rspan = sspan;
        sspan = Some w.rspan;
      }
  | _ -> invalid_arg "Window.mirror: not an overlapping window"

let same_group a b =
  Interval.equal a.rspan b.rspan
  && Fact.equal a.fr b.fr
  && Formula.equal a.lr b.lr

let kind_rank = function Unmatched -> 0 | Overlapping -> 1 | Negating -> 2

let compare_option cmp a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> cmp x y

let compare_group a b =
  let c = Fact.compare a.fr b.fr in
  if c <> 0 then c
  else
    let c = Interval.compare a.rspan b.rspan in
    if c <> 0 then c else Formula.compare a.lr b.lr

let compare_group_start a b =
  let c = compare_group a b in
  if c <> 0 then c
  else
    let c = Interval.compare a.iv b.iv in
        if c <> 0 then c
        else
          let c = Int.compare (kind_rank a.kind) (kind_rank b.kind) in
          if c <> 0 then c
          else
            let c = compare_option Fact.compare a.fs b.fs in
            if c <> 0 then c
            else
              compare_option Formula.compare
                (Option.map Formula.normalize a.ls)
                (Option.map Formula.normalize b.ls)

let equal a b =
  a.kind = b.kind
  && Fact.equal a.fr b.fr
  && compare_option Fact.compare a.fs b.fs = 0
  && Interval.equal a.iv b.iv
  && Formula.equal a.lr b.lr
  && compare_option Formula.compare
       (Option.map Formula.normalize a.ls)
       (Option.map Formula.normalize b.ls)
     = 0
  && Interval.equal a.rspan b.rspan

let kind_string = function
  | Overlapping -> "overlapping"
  | Unmatched -> "unmatched"
  | Negating -> "negating"

let to_string w =
  Printf.sprintf "%s('%s', %s, %s, %s, %s)" (kind_string w.kind)
    (Fact.to_string w.fr)
    (match w.fs with Some f -> "'" ^ Fact.to_string f ^ "'" | None -> "null")
    (Interval.to_string w.iv)
    (Formula.to_string w.lr)
    (match w.ls with Some l -> Formula.to_string l | None -> "null")

let pp ppf w = Format.pp_print_string ppf (to_string w)
