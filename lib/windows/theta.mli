(** Join conditions θ: a temporal predicate over the two tuples'
    intervals plus a conjunction of atoms over the non-temporal
    attributes of the two facts.

    The temporal component is [`Overlap] — the paper's θo, satisfied by
    any pair sharing a time point — or [`Allen rel], satisfied exactly
    when the pair stands in that one Allen relation. Every constructor
    below builds [`Overlap] thetas, so call sites predating the temporal
    component are unaffected; {!with_temporal} and {!allen} opt in.

    Atoms compare a column of the left fact with a column of the right
    fact (or with a constant). Equality atoms are recognized so the
    executor can hash-partition on them; everything else is evaluated as
    a residual predicate — exactly the split PostgreSQL's planner
    performs between hash clauses and join filters. *)

type op = [ `Eq | `Lt | `Le | `Gt | `Ge | `Ne ]

type atom =
  | Cols of op * int * int  (** left column ⋈ right column *)
  | Left_const of op * int * Tpdb_relation.Value.t
  | Right_const of op * int * Tpdb_relation.Value.t

type temporal = [ `Overlap | `Allen of Tpdb_interval.Interval.allen ]

type t

val always : t
(** The empty conjunction: every pair matches (pure temporal join). *)

val of_atoms : atom list -> t

val eq : int -> int -> t
(** [eq i j] : left column [i] = right column [j]. *)

val conj : t -> t -> t
(** Conjunction of atoms. Temporal components combine by keeping the
    non-[`Overlap] side; two different [`Allen] components raise
    [Invalid_argument] (a pair of intervals stands in exactly one Allen
    relation, so such a θ would be unsatisfiable). *)

val atoms : t -> atom list

val temporal : t -> temporal

val with_temporal : temporal -> t -> t

val allen : Tpdb_interval.Interval.allen -> t
(** [allen rel] = [with_temporal (`Allen rel) always]. *)

val temporal_matches : t -> Tpdb_interval.Interval.t -> Tpdb_interval.Interval.t -> bool
(** Whether the temporal component holds for a (left, right) pair of
    tuple intervals: interval overlap for [`Overlap], exact relation
    equality for [`Allen rel]. Note that window formation additionally
    requires a shared time point, so a disjoint Allen relation
    ({!Tpdb_interval.Interval.allen_disjoint}) admits no overlapping
    window. *)

val matches : t -> Tpdb_relation.Fact.t -> Tpdb_relation.Fact.t -> bool
(** Comparisons involving [Null] never match (SQL semantics). *)

val equi_keys : t -> (int list * int list) option
(** Columns of the column-equality atoms, left and right, positionally
    paired; [None] when there is no equality atom to hash on. *)

val atom_equal : atom -> atom -> bool
(** Structural equality, comparing embedded constants with
    {!Tpdb_relation.Value.compare} (the polymorphic [=] is banned on
    values — see the poly-compare lint). *)

val simplify : t -> t * atom list
(** Folds away redundant conjuncts — exact duplicates and constant
    bounds implied by a stronger bound on the same column ([x > 5]
    subsumes [x > 3]; [x = 5] subsumes [x >= 1]) — returning the
    simplified θ and the dropped atoms. Contradictory atoms are {e not}
    folded: the analyzer reports them as [unsatisfiable] errors instead
    of silently rewriting the query. Satisfied pairs are unchanged:
    [matches (fst (simplify t)) fr fs = matches t fr fs]. *)

val residual : t -> t
(** Everything but the column-equality atoms. [matches t fr fs] iff the
    {!equi_keys} columns are pairwise equal (and non-null) and
    [matches (residual t) fr fs]. *)

val swap : t -> t
(** θ with the two sides exchanged:
    [matches (swap t) fs fr = matches t fr fs], and the temporal
    component replaced by its converse
    ({!Tpdb_interval.Interval.allen_inverse}), so
    [temporal_matches (swap t) b a = temporal_matches t a b]. *)

val to_string :
  ?left:Tpdb_relation.Schema.t -> ?right:Tpdb_relation.Schema.t -> t -> string

val pp : Format.formatter -> t -> unit
