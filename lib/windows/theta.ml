module Fact = Tpdb_relation.Fact
module Value = Tpdb_relation.Value
module Schema = Tpdb_relation.Schema
module Interval = Tpdb_interval.Interval

type op = [ `Eq | `Lt | `Le | `Gt | `Ge | `Ne ]

type atom =
  | Cols of op * int * int
  | Left_const of op * int * Value.t
  | Right_const of op * int * Value.t

type temporal = [ `Overlap | `Allen of Interval.allen ]

type t = { temporal : temporal; atoms : atom list }

let always = { temporal = `Overlap; atoms = [] }

let of_atoms atoms = { temporal = `Overlap; atoms }

let eq i j = { temporal = `Overlap; atoms = [ Cols (`Eq, i, j) ] }

let conj a b =
  let temporal =
    match (a.temporal, b.temporal) with
    | `Overlap, t | t, `Overlap -> t
    | (`Allen ra as t), `Allen rb ->
        if ra = rb then t
        else
          invalid_arg
            (Printf.sprintf
               "Theta.conj: conflicting temporal predicates (%s vs %s)"
               (Interval.allen_name ra) (Interval.allen_name rb))
  in
  { temporal; atoms = a.atoms @ b.atoms }

let atoms t = t.atoms

let temporal t = t.temporal

let with_temporal temporal t = { t with temporal }

let allen rel = { temporal = `Allen rel; atoms = [] }

(* The temporal predicate over the two tuples' full intervals. [`Overlap]
   is the classic condition θo; [`Allen rel] holds iff the pair stands in
   exactly that relation. Windows additionally require a shared time
   point, so a disjoint Allen relation yields only unmatched windows. *)
let temporal_matches t a b =
  match t.temporal with
  | `Overlap -> Interval.overlaps a b
  | `Allen rel -> Interval.allen a b = rel

let apply_op op a b =
  if Value.is_null a || Value.is_null b then false
  else
    let c = Value.compare a b in
    match op with
    | `Eq -> c = 0
    | `Ne -> c <> 0
    | `Lt -> c < 0
    | `Le -> c <= 0
    | `Gt -> c > 0
    | `Ge -> c >= 0

let matches_atom fr fs = function
  | Cols (op, i, j) -> apply_op op (Fact.get fr i) (Fact.get fs j)
  | Left_const (op, i, v) -> apply_op op (Fact.get fr i) v
  | Right_const (op, j, v) -> apply_op op (Fact.get fs j) v

let matches t fr fs = List.for_all (matches_atom fr fs) t.atoms

let equi_keys t =
  let keys =
    List.filter_map
      (function Cols (`Eq, i, j) -> Some (i, j) | _ -> None)
      t.atoms
  in
  match keys with
  | [] -> None
  | _ -> Some (List.map fst keys, List.map snd keys)

let op_rank : op -> int = function
  | `Eq -> 0
  | `Ne -> 1
  | `Lt -> 2
  | `Le -> 3
  | `Gt -> 4
  | `Ge -> 5

(* Explicit structural equality: atoms embed [Value.t], whose floats and
   strings must go through [Value.compare], not the polymorphic [=]. *)
let atom_equal a b =
  match (a, b) with
  | Cols (o1, i1, j1), Cols (o2, i2, j2) ->
      op_rank o1 = op_rank o2 && i1 = i2 && j1 = j2
  | Left_const (o1, i1, v1), Left_const (o2, i2, v2)
  | Right_const (o1, i1, v1), Right_const (o2, i2, v2) ->
      op_rank o1 = op_rank o2 && i1 = i2 && Value.compare v1 v2 = 0
  | (Cols _ | Left_const _ | Right_const _), _ -> false

(* [implies a b]: every fact pair satisfying atom [a] also satisfies
   atom [b] — the subsumption order used by [simplify]. Only constant
   bounds on the same column are compared; everything else is
   incomparable. *)
let implies a b =
  if atom_equal a b then true
  else
    let bound = function
      | Left_const (op, i, v) -> Some (`L, op, i, v)
      | Right_const (op, i, v) -> Some (`R, op, i, v)
      | Cols _ -> None
    in
    match (bound a, bound b) with
    | Some (sa, oa, ia, va), Some (sb, ob, ib, vb)
      when sa = sb && ia = ib && not (Value.is_null va)
           && not (Value.is_null vb) -> (
        let c = Value.compare va vb in
        match (oa, ob) with
        (* x = v implies any bound v satisfies *)
        | `Eq, _ -> apply_op ob va vb
        (* strict bound implies its non-strict version and any weaker
           bound of the same direction *)
        | `Lt, `Lt | `Le, `Le -> c <= 0
        | `Lt, `Le -> c <= 0
        | `Le, `Lt -> c < 0
        | `Gt, `Gt | `Ge, `Ge -> c >= 0
        | `Gt, `Ge -> c >= 0
        | `Ge, `Gt -> c > 0
        | `Lt, `Ne -> c <= 0
        | `Gt, `Ne -> c >= 0
        | _ -> false)
    | _ -> false

(* Folds away redundant conjuncts: duplicates, and atoms implied by a
   stronger atom on the same column. Returns the simplified θ plus the
   dropped atoms (for the analyzer's [theta-folded] note). Contradictory
   atoms are deliberately left in place — the analyzer reports those as
   [unsatisfiable] errors rather than silently rewriting them. *)
let simplify t =
  let rec keep kept dropped = function
    | [] -> (List.rev kept, List.rev dropped)
    | a :: rest ->
        let subsumed =
          List.exists (fun b -> (not (atom_equal a b)) && implies b a) kept
          || List.exists (fun b -> implies b a) rest
          || List.exists (atom_equal a) kept
        in
        if subsumed then keep kept (a :: dropped) rest
        else keep (a :: kept) dropped rest
  in
  let kept, dropped = keep [] [] t.atoms in
  ({ t with atoms = kept }, dropped)

let residual t =
  {
    t with
    atoms =
      List.filter (function Cols (`Eq, _, _) -> false | _ -> true) t.atoms;
  }

let swap_op : op -> op = function
  | `Eq -> `Eq
  | `Ne -> `Ne
  | `Lt -> `Gt
  | `Le -> `Ge
  | `Gt -> `Lt
  | `Ge -> `Le

let swap t =
  {
    temporal =
      (match t.temporal with
      | `Overlap -> `Overlap
      | `Allen rel -> `Allen (Interval.allen_inverse rel));
    atoms =
      List.map
        (function
          | Cols (op, i, j) -> Cols (swap_op op, j, i)
          | Left_const (op, i, v) -> Right_const (op, i, v)
          | Right_const (op, j, v) -> Left_const (op, j, v))
        t.atoms;
  }

let op_string : op -> string = function
  | `Eq -> "="
  | `Ne -> "<>"
  | `Lt -> "<"
  | `Le -> "<="
  | `Gt -> ">"
  | `Ge -> ">="

let column schema side i =
  match schema with
  | Some s -> (
      match List.nth_opt (Schema.columns s) i with
      | Some c -> Printf.sprintf "%s.%s" (Schema.name s) c
      | None -> Printf.sprintf "%s#%d" side i)
  | None -> Printf.sprintf "%s#%d" side i

let side_name schema fallback =
  match schema with Some s -> Schema.name s | None -> fallback

let to_string ?left ?right t =
  let temporal_part =
    match t.temporal with
    | `Overlap -> []
    | `Allen rel ->
        [
          Printf.sprintf "%s.T %s %s.T" (side_name left "l")
            (Interval.allen_name rel) (side_name right "r");
        ]
  in
  let atom_parts =
    List.map
      (function
        | Cols (op, i, j) ->
            Printf.sprintf "%s %s %s" (column left "l" i) (op_string op)
              (column right "r" j)
        | Left_const (op, i, v) ->
            Printf.sprintf "%s %s %s" (column left "l" i) (op_string op)
              (Value.to_string v)
        | Right_const (op, j, v) ->
            Printf.sprintf "%s %s %s" (column right "r" j) (op_string op)
              (Value.to_string v))
      t.atoms
  in
  match temporal_part @ atom_parts with
  | [] -> "true"
  | parts -> String.concat " and " parts

let pp ppf t = Format.pp_print_string ppf (to_string t)
