module Fact = Tpdb_relation.Fact
module Value = Tpdb_relation.Value
module Schema = Tpdb_relation.Schema
module Interval = Tpdb_interval.Interval

type op = [ `Eq | `Lt | `Le | `Gt | `Ge | `Ne ]

type atom =
  | Cols of op * int * int
  | Left_const of op * int * Value.t
  | Right_const of op * int * Value.t

type temporal = [ `Overlap | `Allen of Interval.allen ]

type t = { temporal : temporal; atoms : atom list }

let always = { temporal = `Overlap; atoms = [] }

let of_atoms atoms = { temporal = `Overlap; atoms }

let eq i j = { temporal = `Overlap; atoms = [ Cols (`Eq, i, j) ] }

let conj a b =
  let temporal =
    match (a.temporal, b.temporal) with
    | `Overlap, t | t, `Overlap -> t
    | (`Allen ra as t), `Allen rb ->
        if ra = rb then t
        else
          invalid_arg
            (Printf.sprintf
               "Theta.conj: conflicting temporal predicates (%s vs %s)"
               (Interval.allen_name ra) (Interval.allen_name rb))
  in
  { temporal; atoms = a.atoms @ b.atoms }

let atoms t = t.atoms

let temporal t = t.temporal

let with_temporal temporal t = { t with temporal }

let allen rel = { temporal = `Allen rel; atoms = [] }

(* The temporal predicate over the two tuples' full intervals. [`Overlap]
   is the classic condition θo; [`Allen rel] holds iff the pair stands in
   exactly that relation. Windows additionally require a shared time
   point, so a disjoint Allen relation yields only unmatched windows. *)
let temporal_matches t a b =
  match t.temporal with
  | `Overlap -> Interval.overlaps a b
  | `Allen rel -> Interval.allen a b = rel

let apply_op op a b =
  if Value.is_null a || Value.is_null b then false
  else
    let c = Value.compare a b in
    match op with
    | `Eq -> c = 0
    | `Ne -> c <> 0
    | `Lt -> c < 0
    | `Le -> c <= 0
    | `Gt -> c > 0
    | `Ge -> c >= 0

let matches_atom fr fs = function
  | Cols (op, i, j) -> apply_op op (Fact.get fr i) (Fact.get fs j)
  | Left_const (op, i, v) -> apply_op op (Fact.get fr i) v
  | Right_const (op, j, v) -> apply_op op (Fact.get fs j) v

let matches t fr fs = List.for_all (matches_atom fr fs) t.atoms

let equi_keys t =
  let keys =
    List.filter_map
      (function Cols (`Eq, i, j) -> Some (i, j) | _ -> None)
      t.atoms
  in
  match keys with
  | [] -> None
  | _ -> Some (List.map fst keys, List.map snd keys)

let residual t =
  {
    t with
    atoms =
      List.filter (function Cols (`Eq, _, _) -> false | _ -> true) t.atoms;
  }

let swap_op : op -> op = function
  | `Eq -> `Eq
  | `Ne -> `Ne
  | `Lt -> `Gt
  | `Le -> `Ge
  | `Gt -> `Lt
  | `Ge -> `Le

let swap t =
  {
    temporal =
      (match t.temporal with
      | `Overlap -> `Overlap
      | `Allen rel -> `Allen (Interval.allen_inverse rel));
    atoms =
      List.map
        (function
          | Cols (op, i, j) -> Cols (swap_op op, j, i)
          | Left_const (op, i, v) -> Right_const (op, i, v)
          | Right_const (op, j, v) -> Left_const (op, j, v))
        t.atoms;
  }

let op_string : op -> string = function
  | `Eq -> "="
  | `Ne -> "<>"
  | `Lt -> "<"
  | `Le -> "<="
  | `Gt -> ">"
  | `Ge -> ">="

let column schema side i =
  match schema with
  | Some s -> (
      match List.nth_opt (Schema.columns s) i with
      | Some c -> Printf.sprintf "%s.%s" (Schema.name s) c
      | None -> Printf.sprintf "%s#%d" side i)
  | None -> Printf.sprintf "%s#%d" side i

let side_name schema fallback =
  match schema with Some s -> Schema.name s | None -> fallback

let to_string ?left ?right t =
  let temporal_part =
    match t.temporal with
    | `Overlap -> []
    | `Allen rel ->
        [
          Printf.sprintf "%s.T %s %s.T" (side_name left "l")
            (Interval.allen_name rel) (side_name right "r");
        ]
  in
  let atom_parts =
    List.map
      (function
        | Cols (op, i, j) ->
            Printf.sprintf "%s %s %s" (column left "l" i) (op_string op)
              (column right "r" j)
        | Left_const (op, i, v) ->
            Printf.sprintf "%s %s %s" (column left "l" i) (op_string op)
              (Value.to_string v)
        | Right_const (op, j, v) ->
            Printf.sprintf "%s %s %s" (column right "r" j) (op_string op)
              (Value.to_string v))
      t.atoms
  in
  match temporal_part @ atom_parts with
  | [] -> "true"
  | parts -> String.concat " and " parts

let pp ppf t = Format.pp_print_string ppf (to_string t)
