module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula
module Prob = Tpdb_lineage.Prob
module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Value = Tpdb_relation.Value
module Sweep = Tpdb_engine.Sweep
module Hash_partition = Tpdb_engine.Hash_partition

type spec =
  | Count
  | Sum of int
  | Avg of int

let spec_column = function
  | Count -> "exp_count"
  | Sum _ -> "exp_sum"
  | Avg _ -> "exp_avg"

let numeric_value tp col =
  match Fact.get (Tuple.fact tp) col with
  | Value.I i -> float_of_int i
  | Value.F f -> f
  | Value.Null | Value.S _ ->
      invalid_arg
        (Printf.sprintf "Aggregate: non-numeric value %s in column %d"
           (Value.to_string (Fact.get (Tuple.fact tp) col))
           col)

(* Per witness: (probability of existence, contributed value). *)
let contribution ~env spec tp =
  let p = Prob.compute env (Tuple.lineage tp) in
  match spec with
  | Count -> (p, 1.0)
  | Sum col | Avg col -> (p, numeric_value tp col)

let combine spec witnesses =
  let weighted f = List.fold_left (fun acc w -> acc +. f w) 0.0 witnesses in
  match spec with
  | Count -> weighted (fun (p, _) -> p)
  | Sum _ -> weighted (fun (p, v) -> p *. v)
  | Avg _ ->
      let count = weighted (fun (p, _) -> p) in
      if count = 0.0 then 0.0 else weighted (fun (p, v) -> p *. v) /. count

let env_default env r =
  match env with Some e -> e | None -> Relation.prob_env [ r ]

let output_schema ~group_by spec source =
  let names = Schema.columns source in
  let pick i =
    match List.nth_opt names i with
    | Some name -> name
    | None ->
        invalid_arg
          (Printf.sprintf "Aggregate.sequenced: column %d out of range" i)
  in
  Schema.make
    ~name:(Schema.name source ^ "_" ^ spec_column spec)
    (List.map pick group_by @ [ spec_column spec ])

let sequenced ?env ~group_by spec r =
  let env = env_default env r in
  let schema = output_schema ~group_by spec (Relation.schema r) in
  let partition =
    Hash_partition.build
      ~key:(fun tp -> Fact.key group_by (Tuple.fact tp))
      ~hash:Fact.hash ~equal:Fact.equal (Relation.tuples r)
  in
  let tuples =
    List.concat_map
      (fun (key, members) ->
        let sorted =
          List.sort
            (fun a b -> Interval.compare (Tuple.iv a) (Tuple.iv b))
            members
        in
        Sweep.constant_segments
          (Sweep.Source.of_list
             (List.map
                (fun tp -> (Tuple.iv tp, contribution ~env spec tp))
                sorted))
        |> List.map (fun (iv, witnesses) ->
               let value = combine spec witnesses in
               Tuple.make
                 ~fact:(Fact.concat key [| Value.F value |])
                 ~lineage:Formula.true_ ~iv ~p:1.0))
      (Hash_partition.buckets partition)
  in
  Relation.of_tuples schema tuples

let expected_at ?env ~group_by spec r key t =
  let env = env_default env r in
  let witnesses =
    List.filter
      (fun tp ->
        Tuple.valid_at tp t
        && Fact.equal (Fact.key group_by (Tuple.fact tp)) key)
      (Relation.tuples r)
  in
  match witnesses with
  | [] -> None
  | _ -> Some (combine spec (List.map (contribution ~env spec) witnesses))
