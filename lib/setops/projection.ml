module Interval = Tpdb_interval.Interval
module Timeline = Tpdb_interval.Timeline
module Formula = Tpdb_lineage.Formula
module Prob = Tpdb_lineage.Prob
module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Sweep = Tpdb_engine.Sweep

let projected_schema ~columns r =
  let source = Relation.schema r in
  let names = Schema.columns source in
  let pick i =
    match List.nth_opt names i with
    | Some name -> name
    | None ->
        invalid_arg
          (Printf.sprintf "Projection.project: column %d out of range" i)
  in
  try Schema.make ~name:(Schema.name source) (List.map pick columns)
  with Invalid_argument _ ->
    invalid_arg "Projection.project: duplicate column selected"

let env_default env r =
  match env with Some e -> e | None -> Relation.prob_env [ r ]

let project ?env ~columns r =
  let env = env_default env r in
  let schema = projected_schema ~columns r in
  (* Group by projected fact; within a group, sweep the maximal
     constant-witness segments and disjoin the witnesses' lineages. *)
  let partition =
    Tpdb_engine.Hash_partition.build
      ~key:(fun tp -> Fact.project columns (Tuple.fact tp))
      ~hash:Fact.hash ~equal:Fact.equal (Relation.tuples r)
  in
  let tuples =
    List.concat_map
      (fun (fact, members) ->
        let sorted =
          List.sort
            (fun a b -> Interval.compare (Tuple.iv a) (Tuple.iv b))
            members
        in
        Sweep.constant_segments
          (Sweep.Source.of_list
             (List.map (fun tp -> (Tuple.iv tp, Tuple.lineage tp)) sorted))
        |> List.map (fun (iv, lineages) ->
               let lineage = Formula.disj lineages in
               Tuple.make ~fact ~lineage ~iv ~p:(Prob.compute env lineage)))
      (Tpdb_engine.Hash_partition.buckets partition)
  in
  Relation.of_tuples schema tuples

let project_names ?env ~columns r =
  let schema = Relation.schema r in
  project ?env
    ~columns:(List.map (Schema.column_index_exn schema) columns)
    r

let oracle ?env ~columns r =
  let env = env_default env r in
  let schema = projected_schema ~columns r in
  let module Key = struct
    type t = Fact.t * Formula.t

    let compare (fa, la) (fb, lb) =
      let c = Fact.compare fa fb in
      if c <> 0 then c else Formula.compare la lb
  end in
  let module M = Map.Make (Key) in
  let domain =
    Timeline.span (List.map Tuple.iv (Relation.tuples r))
  in
  let rows_at t =
    let witnesses = List.filter (fun tp -> Tuple.valid_at tp t) (Relation.tuples r) in
    let facts =
      List.sort_uniq Fact.compare
        (List.map (fun tp -> Fact.project columns (Tuple.fact tp)) witnesses)
    in
    List.map
      (fun fact ->
        let lineages =
          List.filter_map
            (fun tp ->
              if Fact.equal (Fact.project columns (Tuple.fact tp)) fact then
                Some (Tuple.lineage tp)
              else None)
            witnesses
        in
        (fact, Formula.disj lineages))
      facts
  in
  let by_row =
    match domain with
    | None -> M.empty
    | Some span ->
        Seq.fold_left
          (fun acc t ->
            List.fold_left
              (fun acc (fact, lineage) ->
                let key = (fact, Formula.normalize lineage) in
                M.add key (t :: Option.value (M.find_opt key acc) ~default:[]) acc)
              acc (rows_at t))
          M.empty (Interval.points span)
  in
  let tuples =
    M.fold
      (fun (fact, lineage) points acc ->
        let p = Prob.compute env lineage in
        Timeline.coalesce (List.map (fun t -> Interval.make t (t + 1)) points)
        |> List.fold_left
             (fun acc iv -> Tuple.make ~fact ~lineage ~iv ~p :: acc)
             acc)
      by_row []
  in
  Relation.of_tuples schema tuples
