module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Metrics = Tpdb_obs.Metrics

let expansion_factor = 8
let sample_tuples = 64

let mean_tuple_bytes tuples =
  let n = ref 0 and bytes = ref 0 in
  (try
     List.iter
       (fun tp ->
         if !n >= sample_tuples then raise Exit;
         incr n;
         bytes := !bytes + Codec.tuple_size tp)
       tuples
   with Exit -> ());
  if !n = 0 then 0 else !bytes / !n

let estimate_bytes ?rows relation =
  let rows = Option.value rows ~default:(Relation.cardinality relation) in
  rows * mean_tuple_bytes (Relation.tuples relation) * expansion_factor

let partitions_for ~budget ~est =
  if budget <= 0 then invalid_arg "Spill.partitions_for: budget must be positive";
  let n = ((2 * est) + budget - 1) / budget in
  max 2 (min 256 n)

let pool_pages ~budget =
  max 16 (budget / (4 * Heap_file.page_size))

type t = {
  dir : string;
  partitions : int;
  left : string array;
  right : string array;
  pool : Buffer_pool.t;
  bytes : int;  (** encoded bytes written across all partition files *)
}

let partitions t = t.partitions
let bytes t = t.bytes
let pool t = t.pool
let dir t = t.dir

(* Race-free fresh directory, mkdtemp-style: [Sys.mkdir] fails if the
   path already exists, so creating the directory IS the claim on the
   name. The previous temp_file/remove/mkdir dance had a window between
   the remove and the mkdir in which a concurrent process could take
   the name — two spilling joins would then interleave partition files
   in one directory. *)
let temp_dir () =
  let base = Filename.get_temp_dir_name () in
  let rand = lazy (Random.State.make_self_init ()) in
  let rec claim attempts =
    if attempts >= 1000 then
      raise
        (Sys_error
           (Printf.sprintf "Spill.temp_dir: no fresh directory under %s" base));
    let candidate =
      Filename.concat base
        (Printf.sprintf "tpdb-spill-%d-%06x" (Unix.getpid ())
           (Random.State.bits (Lazy.force rand) land 0xffffff))
    in
    match Sys.mkdir candidate 0o700 with
    | () -> candidate
    | exception Sys_error _ when Sys.file_exists candidate ->
        claim (attempts + 1)
  in
  claim 0

let cleanup t =
  let remove path = try Sys.remove path with Sys_error _ -> () in
  Array.iter remove t.left;
  Array.iter remove t.right;
  try Sys.rmdir t.dir with Sys_error _ -> ()

(* Report the pool's hit rate for this spilled join (permille), then
   drop the partition files. *)
let finish t =
  let hits, misses = Buffer_pool.stats t.pool in
  if hits + misses > 0 then
    Metrics.observe Metrics.Pool_hit_rate (hits * 1000 / (hits + misses));
  cleanup t

let partition_pair ?dir ~partitions ~pool_pages:capacity ~left_key ~right_key
    (lschema, lseq) (rschema, rseq) =
  if partitions < 1 then invalid_arg "Spill.partition_pair: partitions < 1";
  let dir = match dir with Some d -> d | None -> temp_dir () in
  let file side i = Filename.concat dir (Printf.sprintf "%s-%03d.tps" side i) in
  let writers side schema =
    Array.init partitions (fun i -> Heap_file.Writer.create (file side i) schema)
  in
  let lw = writers "l" lschema and rw = writers "r" rschema in
  let abort_all () =
    Array.iter Heap_file.Writer.abort lw;
    Array.iter Heap_file.Writer.abort rw;
    (try Sys.rmdir dir with Sys_error _ -> ())
  in
  try
    Seq.iter (fun tp -> Heap_file.Writer.add lw.(left_key tp) tp) lseq;
    Seq.iter (fun tp -> Heap_file.Writer.add rw.(right_key tp) tp) rseq;
    let bytes = ref 0 in
    for i = 0 to partitions - 1 do
      let pair_bytes =
        Heap_file.Writer.bytes_written lw.(i) + Heap_file.Writer.bytes_written rw.(i)
      in
      Heap_file.Writer.close lw.(i);
      Heap_file.Writer.close rw.(i);
      bytes := !bytes + pair_bytes;
      Metrics.observe Metrics.Spill_partition_bytes pair_bytes
    done;
    Metrics.add Metrics.Spill_bytes !bytes;
    Metrics.add Metrics.Spill_partitions partitions;
    {
      dir;
      partitions;
      left = Array.init partitions (file "l");
      right = Array.init partitions (file "r");
      pool = Buffer_pool.create ~capacity;
      bytes = !bytes;
    }
  with e ->
    abort_all ();
    raise e

let read_left t i = Heap_file.read ~pool:t.pool t.left.(i)
let read_right t i = Heap_file.read ~pool:t.pool t.right.(i)
