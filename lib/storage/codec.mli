(** Binary (de)serialization of TP values and tuples.

    Little-endian, length-prefixed, tagged. A tuple record is
    self-delimiting: arity, values, lineage (ASCII formula), interval
    bounds and the probability's IEEE bits. *)

exception Corrupt of string
(** Raised by every reader on malformed input. *)

type reader = { bytes : Bytes.t; mutable pos : int }

val reader : Bytes.t -> reader
val reader_at : Bytes.t -> int -> reader

val write_uint16 : Buffer.t -> int -> unit
val read_uint16 : reader -> int
val write_int64 : Buffer.t -> int -> unit
val read_int64 : reader -> int
val write_float : Buffer.t -> float -> unit
val read_float : reader -> float
val write_string : Buffer.t -> string -> unit
val read_string : reader -> string

val write_value : Buffer.t -> Tpdb_relation.Value.t -> unit
val read_value : reader -> Tpdb_relation.Value.t

val write_tuple : Buffer.t -> Tpdb_relation.Tuple.t -> unit
val read_tuple : reader -> Tpdb_relation.Tuple.t

val tuple_size : Tpdb_relation.Tuple.t -> int
(** Encoded byte size (by encoding into a scratch buffer). *)

(** {2 Varints}

    Unsigned LEB128 — 7 value bits per byte, high bit continues. Zigzag
    folds signed values into the unsigned range so small deltas of
    either sign encode in one byte. *)

val write_varint : Buffer.t -> int -> unit
(** Raises [Invalid_argument] on negative input. *)

val read_varint : reader -> int
val write_zigzag : Buffer.t -> int -> unit
val read_zigzag : reader -> int

(** {2 Columnar tuple blocks}

    The spill-file payload format: a self-delimiting block of tuples
    encoded column-wise — varint tuple count; interval starts as
    zigzag-varint deltas; durations as varint [te - ts - 1]; raw
    little-endian IEEE f64 probabilities; lineages as a per-block
    dictionary of distinct relation tags followed by structural
    bytecode over {!Tpdb_lineage.Formula.view} with dictionary-coded
    variables; facts through the tagged value codec. [decode ∘ encode]
    is the identity on tuple arrays (lineages are rebuilt through the
    smart constructors, which is the identity on the invariant-respecting
    formulas {!Tpdb_lineage.Formula} produces). *)

module Column : sig
  val encode : Buffer.t -> Tpdb_relation.Tuple.t array -> unit
  val decode : reader -> Tpdb_relation.Tuple.t array
end
