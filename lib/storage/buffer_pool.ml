module Metrics = Tpdb_obs.Metrics

type key = string * int

type entry = { bytes : Bytes.t; mutable stamp : int; mutable pins : int }

exception
  Pinned_eviction of { path : string; index : int; capacity : int; pinned : int }

type t = {
  capacity : int;
  table : (key, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  { capacity; table = Hashtbl.create (2 * capacity); clock = 0; hits = 0; misses = 0 }

let tick pool =
  pool.clock <- pool.clock + 1;
  pool.clock

let pinned_pages pool =
  Hashtbl.fold (fun _ e acc -> if e.pins > 0 then acc + 1 else acc) pool.table 0

(* Evict the least-recently-used unpinned page to make room for
   [~for_]. A pinned page is never a victim: if every resident page is
   pinned the pool cannot honor the read without breaking a pin, which
   is a caller bug (pool sized below the number of concurrently pinned
   pages) — surfaced as the typed {!Pinned_eviction}, which
   [Analyze.diagnostic_of_exn] renders. *)
let evict_lru pool ~for_:(path, index) =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        if entry.pins > 0 then acc
        else
          match acc with
          | Some (_, best) when best <= entry.stamp -> acc
          | _ -> Some (key, entry.stamp))
      pool.table None
  in
  match victim with
  | Some (key, _) -> Hashtbl.remove pool.table key
  | None ->
      raise
        (Pinned_eviction
           { path; index; capacity = pool.capacity; pinned = pinned_pages pool })

let load path index size =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let file_len = in_channel_length ic in
      let offset = index * size in
      if offset >= file_len then
        invalid_arg
          (Printf.sprintf "Buffer_pool: page %d beyond end of %s" index path);
      seek_in ic offset;
      let available = min size (file_len - offset) in
      let bytes = Bytes.make size '\000' in
      really_input ic bytes 0 available;
      bytes)

let entry_for pool ~path ~index ~size =
  let key = (path, index) in
  match Hashtbl.find_opt pool.table key with
  | Some entry ->
      pool.hits <- pool.hits + 1;
      Metrics.incr Metrics.Pool_hits;
      entry.stamp <- tick pool;
      entry
  | None ->
      pool.misses <- pool.misses + 1;
      Metrics.incr Metrics.Pool_misses;
      let bytes = load path index size in
      if Hashtbl.length pool.table >= pool.capacity then
        evict_lru pool ~for_:key;
      let entry = { bytes; stamp = tick pool; pins = 0 } in
      Hashtbl.replace pool.table key entry;
      entry

let read_page pool ~path ~index ~size =
  (entry_for pool ~path ~index ~size).bytes

let pin pool ~path ~index ~size =
  let entry = entry_for pool ~path ~index ~size in
  entry.pins <- entry.pins + 1;
  entry.bytes

let unpin pool ~path ~index =
  match Hashtbl.find_opt pool.table (path, index) with
  | Some entry when entry.pins > 0 -> entry.pins <- entry.pins - 1
  | _ -> invalid_arg "Buffer_pool.unpin: page not pinned"

let with_pin pool ~path ~index ~size f =
  let bytes = pin pool ~path ~index ~size in
  Fun.protect ~finally:(fun () -> unpin pool ~path ~index) (fun () -> f bytes)

let stats pool = (pool.hits, pool.misses)

let cached_pages pool = Hashtbl.length pool.table

let invalidate pool ~path =
  let keys =
    Hashtbl.fold
      (fun ((p, _) as key) entry acc ->
        if String.equal p path && entry.pins = 0 then key :: acc else acc)
      pool.table []
  in
  List.iter (Hashtbl.remove pool.table) keys
