(** Grace-style spill partitioning for the out-of-core join executor.

    [partition_pair] streams both inputs of an equi-θ join into
    per-partition columnar heap files ({!Heap_file.Writer}, format
    version 2) under a private temp directory; the executor then reads
    the partitions back one at a time through a budget-sized
    {!Buffer_pool} ([read_left]/[read_right]), sweeps each pair, and
    calls {!finish} to record the pool hit rate and drop the files.

    This module knows nothing about θ or join keys: callers pass
    [left_key]/[right_key] functions that map a tuple directly to its
    partition index — the executor composes the same fact-key hash and
    {!Tpdb_engine.Parallel.bucket_of} as the in-RAM parallel path, which
    is what makes spilled output identical to in-RAM output.

    Metrics (with a {!Tpdb_obs.Metrics} sink installed): [Spill_bytes]
    and [Spill_partitions] counters, the [Spill_partition_bytes]
    distribution on write, and one [Pool_hit_rate] (permille)
    observation per join in {!finish}. *)

type t

val estimate_bytes : ?rows:int -> Tpdb_relation.Relation.t -> int
(** Estimated in-memory working-set bytes of a relation: row count
    ([?rows] — e.g. a planner {!Stats} cardinality — defaulting to live
    counting via [Relation.cardinality]) × mean encoded tuple size over
    a ≤ 64-tuple sample × a decoded-representation expansion factor. *)

val partitions_for : budget:int -> est:int -> int
(** Partition count such that one partition pair fits roughly half the
    budget, clamped to [\[2, 256\]]. Raises [Invalid_argument] when
    [budget <= 0]. *)

val pool_pages : budget:int -> int
(** Buffer-pool capacity (pages) for a spilled sweep: about a quarter of
    the budget, at least 16 pages. *)

val partition_pair :
  ?dir:string ->
  partitions:int ->
  pool_pages:int ->
  left_key:(Tpdb_relation.Tuple.t -> int) ->
  right_key:(Tpdb_relation.Tuple.t -> int) ->
  Tpdb_relation.Schema.t * Tpdb_relation.Tuple.t Seq.t ->
  Tpdb_relation.Schema.t * Tpdb_relation.Tuple.t Seq.t ->
  t
(** Streams both inputs to [partitions] columnar files per side.
    [?dir] defaults to a fresh private directory claimed atomically
    (mkdir-as-claim, mkdtemp-style), so concurrent spilling joins in
    the same or different processes never share a directory.
    [left_key]/[right_key]
    must return an index in [\[0, partitions)]. Memory use is one
    encoder block per open file. On exception the temp files are
    removed and the exception re-raised. *)

val partitions : t -> int

val dir : t -> string
(** The private directory holding this spill's partition files — unique
    per live spill (the claim is the directory's creation). *)

val bytes : t -> int
(** Total encoded bytes written (the amount added to [Spill_bytes]). *)

val pool : t -> Buffer_pool.t

val read_left : t -> int -> Tpdb_relation.Relation.t
val read_right : t -> int -> Tpdb_relation.Relation.t
(** Materialize one partition, pages through the spill's buffer pool. *)

val finish : t -> unit
(** Observes the pool hit rate ([Pool_hit_rate], permille) and deletes
    the partition files and directory. *)

val cleanup : t -> unit
(** Deletes the files without recording anything (error paths). *)
