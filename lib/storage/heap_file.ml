module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

let page_size = 4096
let magic = "TPHF"
let version = 1
let columnar_version = 2

(* Data-page layout: u16 record count, then that many self-delimiting
   tuple records. A record larger than one page's capacity is stored as an
   oversize chain: count = 0xFFFF, u64 byte length, then the bytes,
   continuing on as many raw pages as needed. *)
let oversize_sentinel = 0xFFFF

let payload_capacity = page_size - 2

let pad_to_page buf =
  let remainder = Buffer.length buf mod page_size in
  if remainder > 0 then Buffer.add_string buf (String.make (page_size - remainder) '\000')

let header_bytes ~version ~schema ~tuple_count ~data_pages =
  let buf = Buffer.create page_size in
  Buffer.add_string buf magic;
  Codec.write_uint16 buf version;
  Codec.write_string buf (Schema.name schema);
  let columns = Schema.columns schema in
  Codec.write_uint16 buf (List.length columns);
  List.iter (Codec.write_string buf) columns;
  Codec.write_int64 buf tuple_count;
  Codec.write_int64 buf data_pages;
  if Buffer.length buf > page_size then corrupt "schema too large for header page";
  pad_to_page buf;
  Buffer.contents buf

let encode_data_pages relation =
  let pages = Buffer.create (16 * page_size) in
  (* Records of the page being assembled. *)
  let pending = Buffer.create page_size in
  let pending_count = ref 0 in
  let flush_pending () =
    if !pending_count > 0 then begin
      let page = Buffer.create page_size in
      Codec.write_uint16 page !pending_count;
      Buffer.add_buffer page pending;
      pad_to_page page;
      Buffer.add_buffer pages page;
      Buffer.clear pending;
      pending_count := 0
    end
  in
  let add_oversize record =
    flush_pending ();
    let chain = Buffer.create (String.length record + 16) in
    Codec.write_uint16 chain oversize_sentinel;
    Codec.write_int64 chain (String.length record);
    Buffer.add_string chain record;
    pad_to_page chain;
    Buffer.add_buffer pages chain
  in
  List.iter
    (fun tp ->
      let buf = Buffer.create 128 in
      Codec.write_tuple buf tp;
      let record = Buffer.contents buf in
      if String.length record > payload_capacity then add_oversize record
      else begin
        if Buffer.length pending + String.length record > payload_capacity then
          flush_pending ();
        Buffer.add_string pending record;
        incr pending_count
      end)
    (Relation.tuples relation);
  flush_pending ();
  let bytes = Buffer.contents pages in
  (bytes, String.length bytes / page_size)

let write path relation =
  let data, data_pages = encode_data_pages relation in
  let header =
    header_bytes ~version ~schema:(Relation.schema relation)
      ~tuple_count:(Relation.cardinality relation) ~data_pages
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc header;
     output_string oc data;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* --- streaming columnar writer (format version 2) --- *)

(* Version-2 data region: a byte stream of length-prefixed columnar
   blocks (u64 length, then [Codec.Column] payload) laid over the pages
   with no per-block padding — adjacent blocks share their boundary
   pages, which is what makes the buffer pool earn hits on a sequential
   partition sweep. Only the final partial page is zero-padded. *)
module Writer = struct
  type t = {
    path : string;
    tmp : string;
    oc : out_channel;
    schema : Schema.t;
    mutable pending : Tuple.t list;  (* reversed *)
    mutable pending_count : int;
    tail : Buffer.t;  (* bytes of the page being assembled *)
    mutable data_pages : int;
    mutable tuple_count : int;
    mutable bytes_written : int;
    mutable closed : bool;
  }

  let block_tuples = 512

  let create path schema =
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (* header placeholder, rewritten on close once the counts are known *)
    output_string oc (String.make page_size '\000');
    {
      path;
      tmp;
      oc;
      schema;
      pending = [];
      pending_count = 0;
      tail = Buffer.create (2 * page_size);
      data_pages = 0;
      tuple_count = 0;
      bytes_written = 0;
      closed = false;
    }

  let flush_full_pages w =
    let len = Buffer.length w.tail in
    let full = len / page_size in
    if full > 0 then begin
      output_string w.oc (Buffer.sub w.tail 0 (full * page_size));
      let rest = Buffer.sub w.tail (full * page_size) (len - (full * page_size)) in
      Buffer.clear w.tail;
      Buffer.add_string w.tail rest;
      w.data_pages <- w.data_pages + full
    end

  let flush_block w =
    if w.pending_count > 0 then begin
      let tuples = Array.of_list (List.rev w.pending) in
      w.pending <- [];
      w.pending_count <- 0;
      let block = Buffer.create 4096 in
      Codec.Column.encode block tuples;
      Codec.write_int64 w.tail (Buffer.length block);
      Buffer.add_buffer w.tail block;
      w.bytes_written <- w.bytes_written + 8 + Buffer.length block;
      flush_full_pages w
    end

  let add w tp =
    if w.closed then invalid_arg "Heap_file.Writer.add: closed";
    w.pending <- tp :: w.pending;
    w.pending_count <- w.pending_count + 1;
    w.tuple_count <- w.tuple_count + 1;
    if w.pending_count >= block_tuples then flush_block w

  let tuple_count w = w.tuple_count
  let bytes_written w = w.bytes_written

  let close w =
    if not w.closed then begin
      w.closed <- true;
      (try
         flush_block w;
         if Buffer.length w.tail > 0 then begin
           pad_to_page w.tail;
           output_string w.oc (Buffer.contents w.tail);
           w.data_pages <- w.data_pages + (Buffer.length w.tail / page_size);
           Buffer.clear w.tail
         end;
         seek_out w.oc 0;
         output_string w.oc
           (header_bytes ~version:columnar_version ~schema:w.schema
              ~tuple_count:w.tuple_count ~data_pages:w.data_pages);
         close_out w.oc
       with e ->
         close_out_noerr w.oc;
         (try Sys.remove w.tmp with Sys_error _ -> ());
         raise e);
      Sys.rename w.tmp w.path
    end

  let abort w =
    if not w.closed then begin
      w.closed <- true;
      close_out_noerr w.oc;
      try Sys.remove w.tmp with Sys_error _ -> ()
    end
end

let write_columnar path relation =
  let w = Writer.create path (Relation.schema relation) in
  try
    List.iter (Writer.add w) (Relation.tuples relation);
    Writer.close w
  with e ->
    Writer.abort w;
    raise e

let get_page ?pool ~path index =
  match pool with
  | Some pool -> Buffer_pool.read_page pool ~path ~index ~size:page_size
  | None ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let file_len = in_channel_length ic in
          let offset = index * page_size in
          if offset >= file_len then corrupt "page %d beyond end of %s" index path;
          seek_in ic offset;
          let available = min page_size (file_len - offset) in
          let bytes = Bytes.make page_size '\000' in
          really_input ic bytes 0 available;
          bytes)

let read_header ?pool path =
  let bytes = get_page ?pool ~path 0 in
  let r = Codec.reader bytes in
  let m = Bytes.sub_string bytes 0 4 in
  if not (String.equal m magic) then corrupt "%s: bad magic %S" path m;
  r.Codec.pos <- 4;
  let v = Codec.read_uint16 r in
  if v <> version && v <> columnar_version then
    corrupt "%s: unsupported format version %d" path v;
  let name = Codec.read_string r in
  let n_columns = Codec.read_uint16 r in
  let columns = List.init n_columns (fun _ -> Codec.read_string r) in
  let tuple_count = Codec.read_int64 r in
  let data_pages = Codec.read_int64 r in
  (v, Schema.make ~name columns, tuple_count, data_pages)

let schema_of ?pool path =
  let _, schema, _, _ = read_header ?pool path in
  schema

let page_count ?pool path =
  let _, _, _, data_pages = read_header ?pool path in
  data_pages

let read_rows ?pool path schema tuple_count data_pages =
  let tuples = ref [] in
  let decoded = ref 0 in
  let page_index = ref 1 in
  (try
     while !page_index <= data_pages do
       let bytes = get_page ?pool ~path !page_index in
       let r = Codec.reader bytes in
       let count = Codec.read_uint16 r in
       if count = oversize_sentinel then begin
         let length = Codec.read_int64 r in
         let record = Buffer.create length in
         let first_chunk = min length (page_size - r.Codec.pos) in
         Buffer.add_subbytes record bytes r.Codec.pos first_chunk;
         let remaining = ref (length - first_chunk) in
         while !remaining > 0 do
           incr page_index;
           if !page_index > data_pages then corrupt "%s: truncated oversize chain" path;
           let continuation = get_page ?pool ~path !page_index in
           let chunk = min !remaining page_size in
           Buffer.add_subbytes record continuation 0 chunk;
           remaining := !remaining - chunk
         done;
         let tuple =
           Codec.read_tuple (Codec.reader (Buffer.to_bytes record))
         in
         tuples := tuple :: !tuples;
         incr decoded
       end
       else
         for _ = 1 to count do
           tuples := Codec.read_tuple r :: !tuples;
           incr decoded
         done;
       incr page_index
     done
   with Codec.Corrupt msg -> corrupt "%s: %s" path msg);
  if !decoded <> tuple_count then
    corrupt "%s: header claims %d tuples, found %d" path tuple_count !decoded;
  Relation.of_tuples schema (List.rev !tuples)

(* Version-2 read: walk the block stream with a byte cursor over the
   data region; blocks that lie wholly within one page decode in place
   from the pooled page (pinned for the duration of the decode), larger
   blocks are reassembled page by page. *)
let read_columnar ?pool path schema tuple_count data_pages =
  let total = data_pages * page_size in
  let pos = ref 0 in
  (* With a pool, every page request goes through it — the pool is the
     cache, and the boundary pages adjacent blocks share are where the
     sequential sweep earns its hits. Without one, a one-page memo
     stands in so the raw fallback doesn't reopen the file once per
     chunk. *)
  let page =
    match pool with
    | Some _ -> fun i -> get_page ?pool ~path (1 + i)
    | None ->
        let memo_index = ref (-1) in
        let memo_bytes = ref Bytes.empty in
        fun i ->
          if !memo_index <> i then begin
            memo_bytes := get_page ~path (1 + i);
            memo_index := i
          end;
          !memo_bytes
  in
  let read_bytes n =
    if n < 0 || !pos + n > total then corrupt "%s: truncated block stream" path;
    let out = Bytes.create n in
    let copied = ref 0 in
    while !copied < n do
      let p = (!pos + !copied) / page_size in
      let off = (!pos + !copied) mod page_size in
      let chunk = min (n - !copied) (page_size - off) in
      Bytes.blit (page p) off out !copied chunk;
      copied := !copied + chunk
    done;
    pos := !pos + n;
    out
  in
  let tuples = ref [] in
  let decoded = ref 0 in
  (try
     while !decoded < tuple_count do
       let len = Codec.read_int64 (Codec.reader (read_bytes 8)) in
       if len <= 0 || !pos + len > total then
         corrupt "%s: bad block length %d" path len;
       let block =
         let p = !pos / page_size in
         let off = !pos mod page_size in
         if off + len <= page_size then begin
           let decode_in bytes = Codec.Column.decode (Codec.reader_at bytes off) in
           let arr =
             match pool with
             | Some pool ->
                 Buffer_pool.with_pin pool ~path ~index:(1 + p) ~size:page_size
                   decode_in
             | None -> decode_in (page p)
           in
           pos := !pos + len;
           arr
         end
         else Codec.Column.decode (Codec.reader (read_bytes len))
       in
       if Array.length block = 0 then corrupt "%s: empty block" path;
       Array.iter (fun tp -> tuples := tp :: !tuples) block;
       decoded := !decoded + Array.length block
     done
   with Codec.Corrupt msg -> corrupt "%s: %s" path msg);
  if !decoded <> tuple_count then
    corrupt "%s: header claims %d tuples, found %d" path tuple_count !decoded;
  Relation.of_tuples schema (List.rev !tuples)

let read ?pool path =
  let v, schema, tuple_count, data_pages = read_header ?pool path in
  if v = columnar_version then read_columnar ?pool path schema tuple_count data_pages
  else read_rows ?pool path schema tuple_count data_pages
