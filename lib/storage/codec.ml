module Value = Tpdb_relation.Value
module Fact = Tpdb_relation.Fact
module Tuple = Tpdb_relation.Tuple
module Formula = Tpdb_lineage.Formula
module Var = Tpdb_lineage.Var
module Interval = Tpdb_interval.Interval

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

type reader = { bytes : Bytes.t; mutable pos : int }

let reader bytes = { bytes; pos = 0 }
let reader_at bytes pos = { bytes; pos }

let need r n =
  if r.pos + n > Bytes.length r.bytes then
    corrupt "truncated record at offset %d (need %d bytes)" r.pos n

let write_uint16 buf v =
  if v < 0 || v > 0xFFFF then invalid_arg "Codec.write_uint16";
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let read_uint16 r =
  need r 2;
  let v =
    Char.code (Bytes.get r.bytes r.pos)
    lor (Char.code (Bytes.get r.bytes (r.pos + 1)) lsl 8)
  in
  r.pos <- r.pos + 2;
  v

let write_int64 buf v =
  let v = Int64.of_int v in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let read_int64 r =
  need r 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (Bytes.get r.bytes (r.pos + i))))
  done;
  r.pos <- r.pos + 8;
  Int64.to_int !v

let write_float buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let read_float r =
  need r 8;
  let bits = ref 0L in
  for i = 7 downto 0 do
    bits :=
      Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code (Bytes.get r.bytes (r.pos + i))))
  done;
  r.pos <- r.pos + 8;
  Int64.float_of_bits !bits

let write_string buf s =
  write_int64 buf (String.length s);
  Buffer.add_string buf s

let read_string r =
  let len = read_int64 r in
  if len < 0 then corrupt "negative string length";
  need r len;
  let s = Bytes.sub_string r.bytes r.pos len in
  r.pos <- r.pos + len;
  s

let write_value buf = function
  | Value.Null -> Buffer.add_char buf '\000'
  | Value.S s ->
      Buffer.add_char buf '\001';
      write_string buf s
  | Value.I i ->
      Buffer.add_char buf '\002';
      write_int64 buf i
  | Value.F f ->
      Buffer.add_char buf '\003';
      write_float buf f

let read_value r =
  need r 1;
  let tag = Bytes.get r.bytes r.pos in
  r.pos <- r.pos + 1;
  match tag with
  | '\000' -> Value.Null
  | '\001' -> Value.S (read_string r)
  | '\002' -> Value.I (read_int64 r)
  | '\003' -> Value.F (read_float r)
  | c -> corrupt "unknown value tag %C" c

let write_tuple buf tp =
  let fact = Tuple.fact tp in
  write_uint16 buf (Fact.arity fact);
  for i = 0 to Fact.arity fact - 1 do
    write_value buf (Fact.get fact i)
  done;
  write_string buf (Formula.to_string_ascii (Tuple.lineage tp));
  write_int64 buf (Interval.ts (Tuple.iv tp));
  write_int64 buf (Interval.te (Tuple.iv tp));
  write_float buf (Tuple.p tp)

let read_tuple r =
  let arity = read_uint16 r in
  let values = List.init arity (fun _ -> read_value r) in
  let lineage_text = read_string r in
  let lineage =
    try Formula.of_string lineage_text
    with Invalid_argument msg -> corrupt "bad lineage: %s" msg
  in
  let ts = read_int64 r in
  let te = read_int64 r in
  let p = read_float r in
  if ts >= te then corrupt "empty interval [%d,%d)" ts te;
  if not (p >= 0.0 && p <= 1.0) then corrupt "probability %g out of range" p;
  Tuple.make ~fact:(Fact.of_values values) ~lineage ~iv:(Interval.make ts te) ~p

let tuple_size tp =
  let buf = Buffer.create 64 in
  write_tuple buf tp;
  Buffer.length buf

(* --- varints --- *)

let write_varint buf v =
  if v < 0 then invalid_arg "Codec.write_varint: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7F)));
      go (v lsr 7)
    end
  in
  go v

let read_varint r =
  let rec go shift acc =
    if shift > 56 then corrupt "varint too long at offset %d" r.pos;
    need r 1;
    let b = Char.code (Bytes.get r.bytes r.pos) in
    r.pos <- r.pos + 1;
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

(* Zigzag maps the signed 63-bit range onto the unsigned one so small
   deltas of either sign stay one varint byte. [lsl]/[lxor] wrap, so the
   pair is a bijection even at the int extremes — which means the
   zigzag image can occupy the top bit and read back "negative" as an
   OCaml int, so its varint writer must emit the raw bit pattern
   instead of rejecting it the way the public {!write_varint} does. *)
let write_varint_bits buf v =
  let rec go v =
    if 0 <= v && v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7F)));
      go (v lsr 7)
    end
  in
  go v

let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag v = (v lsr 1) lxor (- (v land 1))
let write_zigzag buf v = write_varint_bits buf (zigzag v)
let read_zigzag r = unzigzag (read_varint r)

(* --- columnar tuple blocks --- *)

module Column = struct
  let write_formula buf dict_index f =
    let rec go f =
      match Formula.view f with
      | Formula.False -> Buffer.add_char buf '\000'
      | Formula.True -> Buffer.add_char buf '\001'
      | Formula.Var v ->
          Buffer.add_char buf '\002';
          write_varint buf (dict_index (Var.rel v));
          write_varint buf (Var.idx v)
      | Formula.Not f ->
          Buffer.add_char buf '\003';
          go f
      | Formula.And fs ->
          Buffer.add_char buf '\004';
          write_varint buf (List.length fs);
          List.iter go fs
      | Formula.Or fs ->
          Buffer.add_char buf '\005';
          write_varint buf (List.length fs);
          List.iter go fs
    in
    go f

  let read_formula r dict =
    let tag_of i =
      if i < 0 || i >= Array.length dict then
        corrupt "lineage dictionary index %d out of range" i
      else dict.(i)
    in
    let rec go () =
      need r 1;
      let tag = Bytes.get r.bytes r.pos in
      r.pos <- r.pos + 1;
      match tag with
      | '\000' -> Formula.false_
      | '\001' -> Formula.true_
      | '\002' ->
          let rel = tag_of (read_varint r) in
          let idx = read_varint r in
          let v =
            try Var.make rel idx
            with Invalid_argument msg -> corrupt "bad lineage var: %s" msg
          in
          Formula.var v
      | ('\004' | '\005') as c ->
          let n = read_varint r in
          if n < 2 then corrupt "connective with %d juncts" n;
          let rec read_n n acc =
            if n = 0 then List.rev acc else read_n (n - 1) (go () :: acc)
          in
          let juncts = read_n n [] in
          if Char.equal c '\004' then Formula.conj juncts
          else Formula.disj juncts
      | '\003' -> Formula.neg (go ())
      | c -> corrupt "unknown lineage bytecode %C" c
    in
    go ()

  let encode buf tuples =
    let n = Array.length tuples in
    write_varint buf n;
    (* interval columns: delta-zigzag starts, varint (duration - 1) *)
    let prev = ref 0 in
    Array.iter
      (fun tp ->
        let ts = Interval.ts (Tuple.iv tp) in
        write_zigzag buf (ts - !prev);
        prev := ts)
      tuples;
    Array.iter
      (fun tp ->
        let iv = Tuple.iv tp in
        write_varint buf (Interval.te iv - Interval.ts iv - 1))
      tuples;
    (* probability column: raw IEEE f64, little-endian *)
    Array.iter (fun tp -> write_float buf (Tuple.p tp)) tuples;
    (* lineage: dictionary of distinct relation tags, then structural
       bytecode over the formula views with dictionary-coded variables *)
    let tags = Hashtbl.create 8 in
    let order = ref [] in
    Array.iter
      (fun tp ->
        List.iter
          (fun v ->
            let rel = Var.rel v in
            if not (Hashtbl.mem tags rel) then begin
              Hashtbl.add tags rel (Hashtbl.length tags);
              order := rel :: !order
            end)
          (Formula.vars (Tuple.lineage tp)))
      tuples;
    let order = List.rev !order in
    write_varint buf (List.length order);
    List.iter
      (fun tag ->
        write_varint buf (String.length tag);
        Buffer.add_string buf tag)
      order;
    let dict_index rel = Hashtbl.find tags rel in
    Array.iter
      (fun tp -> write_formula buf dict_index (Tuple.lineage tp))
      tuples;
    (* facts last, through the tagged value codec *)
    Array.iter
      (fun tp ->
        let fact = Tuple.fact tp in
        write_varint buf (Fact.arity fact);
        for i = 0 to Fact.arity fact - 1 do
          write_value buf (Fact.get fact i)
        done)
      tuples

  let decode r =
    let n = read_varint r in
    (* every tuple contributes at least one start-delta byte *)
    if n > Bytes.length r.bytes - r.pos then
      corrupt "block count %d exceeds payload" n;
    let ts = Array.make (max n 1) 0 in
    let prev = ref 0 in
    for i = 0 to n - 1 do
      let v = !prev + read_zigzag r in
      ts.(i) <- v;
      prev := v
    done;
    let te = Array.make (max n 1) 0 in
    for i = 0 to n - 1 do
      te.(i) <- ts.(i) + 1 + read_varint r
    done;
    let p = Array.make (max n 1) 0.0 in
    for i = 0 to n - 1 do
      let v = read_float r in
      if not (v >= 0.0 && v <= 1.0) then
        corrupt "probability %g out of range" v;
      p.(i) <- v
    done;
    let ntags = read_varint r in
    if ntags > Bytes.length r.bytes - r.pos then
      corrupt "lineage dictionary size %d exceeds payload" ntags;
    let dict = Array.make (max ntags 1) "" in
    for i = 0 to ntags - 1 do
      let len = read_varint r in
      need r len;
      dict.(i) <- Bytes.sub_string r.bytes r.pos len;
      r.pos <- r.pos + len
    done;
    let dict = Array.sub dict 0 ntags in
    let lineage = Array.make (max n 1) Formula.true_ in
    for i = 0 to n - 1 do
      lineage.(i) <- read_formula r dict
    done;
    let out = ref [] in
    for i = 0 to n - 1 do
      let arity = read_varint r in
      if arity > 0xFFFF then corrupt "fact arity %d out of range" arity;
      let values = List.init arity (fun _ -> read_value r) in
      let tp =
        try
          Tuple.make ~fact:(Fact.of_values values) ~lineage:lineage.(i)
            ~iv:(Interval.make ts.(i) te.(i)) ~p:p.(i)
        with Invalid_argument msg -> corrupt "bad tuple in block: %s" msg
      in
      out := tp :: !out
    done;
    Array.of_list (List.rev !out)
end
