(** Paged heap files for TP relations.

    Layout: a header page (magic, format version, schema, tuple and page
    counts) followed by fixed-size data pages. Two data formats share
    the header:

    - {b version 1} (row format, {!write}): each data page holds a
      record count and a run of self-delimiting tuple records; a tuple
      never spans pages unless it is larger than a page, in which case
      it gets a private oversized chain (length-prefixed).
    - {b version 2} (columnar format, {!Writer} / {!write_columnar}):
      the data region is a byte stream of length-prefixed
      {!Codec.Column} blocks packed back-to-back over the pages —
      adjacent blocks share boundary pages, so sequential scans through
      a {!Buffer_pool} get genuine cache hits. This is the spill-file
      format of the out-of-core executor.

    Relations are immutable, so files are written once (atomically, via
    a temp file and rename) and only read afterwards. {!read} dispatches
    on the header's version. *)

val page_size : int
(** 4096 bytes. *)

exception Corrupt of string

val write : string -> Tpdb_relation.Relation.t -> unit
(** [write path relation] — row format; atomic: the file appears
    complete or not at all. *)

(** Streaming writer for the columnar format: tuples are buffered into
    blocks of a few hundred, encoded with {!Codec.Column.encode} and
    flushed page by page, so writing needs memory proportional to one
    block, not the relation — the property the spill partitioner
    depends on. *)
module Writer : sig
  type t

  val create : string -> Tpdb_relation.Schema.t -> t
  (** Opens [path ^ ".tmp"]; the target file appears only on {!close}. *)

  val add : t -> Tpdb_relation.Tuple.t -> unit

  val tuple_count : t -> int
  (** Tuples added so far. *)

  val bytes_written : t -> int
  (** Encoded data bytes so far (length prefixes included, page padding
      and header excluded) — what the spill accounting reports. *)

  val close : t -> unit
  (** Flushes, writes the header, renames into place. Idempotent. *)

  val abort : t -> unit
  (** Drops the temp file without producing [path]. Idempotent; no-op
      after {!close}. *)
end

val write_columnar : string -> Tpdb_relation.Relation.t -> unit
(** {!Writer} over a materialized relation (columnar format, atomic). *)

val read : ?pool:Buffer_pool.t -> string -> Tpdb_relation.Relation.t
(** Reads the whole relation (either format); with [pool], pages come
    through the buffer pool (and stay cached for subsequent reads).
    Raises {!Corrupt} on bad magic, version, or page contents;
    [Sys_error] on I/O failure. *)

val schema_of : ?pool:Buffer_pool.t -> string -> Tpdb_relation.Schema.t
(** Header-only read. *)

val page_count : ?pool:Buffer_pool.t -> string -> int
(** Data pages (excluding the header). *)
