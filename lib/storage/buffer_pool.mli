(** A fixed-capacity LRU page cache over files.

    The read path of {!Heap_file} goes through a pool when one is given,
    so repeated scans of hot relations avoid I/O — the buffer-manager role
    of the DBMS substrate. Thread-unsafe by design (the executor is
    single-threaded, like a PostgreSQL backend).

    Pages can be {e pinned} while a caller holds a reference into them
    (the out-of-core executor pins the pages of the columnar block it is
    decoding); pinned pages are never eviction victims. When a read
    needs a frame and every resident page is pinned, the pool raises the
    typed {!Pinned_eviction} instead of silently breaking a pin —
    [Tpdb_query.Analyze.diagnostic_of_exn] renders it as a diagnostic. *)

type t

exception
  Pinned_eviction of { path : string; index : int; capacity : int; pinned : int }
(** Raised when loading ([path], [index]) needs to evict but every
    cached page is pinned. Means the pool's capacity is smaller than the
    number of pages the caller pins concurrently. *)

val create : capacity:int -> t
(** [capacity] in pages (> 0). *)

val read_page : t -> path:string -> index:int -> size:int -> Bytes.t
(** Page [index] (0-based) of [path], [size] bytes ([Heap_file.page_size]
    for all callers; short final pages come back zero-padded). Cached;
    eviction is least-recently-used among unpinned pages. The returned
    bytes must not be mutated and may be evicted (reused) by any later
    [read_page] — {!pin} to keep them resident. *)

val pin : t -> path:string -> index:int -> size:int -> Bytes.t
(** Like {!read_page} but increments the page's pin count: the page is
    not evictable until a matching {!unpin}. Pins nest. *)

val unpin : t -> path:string -> index:int -> unit
(** Releases one pin. Raises [Invalid_argument] if the page is not
    resident with a positive pin count. *)

val with_pin : t -> path:string -> index:int -> size:int -> (Bytes.t -> 'a) -> 'a
(** [pin]s, runs the function on the page bytes, [unpin]s (also on
    exceptions). *)

val pinned_pages : t -> int
(** Number of resident pages with a positive pin count. *)

val stats : t -> int * int
(** (hits, misses) since creation. With a {!Tpdb_obs.Metrics} sink
    installed, hits and misses also feed the [Pool_hits]/[Pool_misses]
    counters. *)

val cached_pages : t -> int

val invalidate : t -> path:string -> unit
(** Drops all cached unpinned pages of one file (after a rewrite). *)
