(** Planning and execution of TP-SQL queries.

    The planner mirrors the paper's PostgreSQL integration: it resolves
    column references, splits each join condition into hashable equality
    atoms and a residual predicate, picks the join algorithm (hash when an
    equality atom exists, nested loop otherwise) and wires the pipelined
    NJ operators. [explain] renders the chosen plan.

    After lowering, the planner runs the analyzer's rewrite pipeline
    ({!Analyze.optimize}): redundant θ conjuncts are folded, provably
    empty subplans are pruned to empty scans, and joins whose output
    lineages are statically read-once are tagged so probability
    computation skips the runtime read-once check. Chains of inner
    equi-joins are additionally ordered by the cost model
    ({!Cost.of_plan}) over per-relation statistics ({!Catalog.stats}).
    Every rewrite is reported as a Note-severity diagnostic ({!notes},
    surfaced by [tpdb_cli check --deep]). *)

module Relation = Tpdb_relation.Relation

exception Plan_error of string
(** Unknown relation/column, ambiguous reference, or an ON condition that
    does not relate the two inputs. *)

type t

val plan :
  ?parallelism:int ->
  ?sanitize:bool ->
  ?prob_cache:bool ->
  ?mem_budget:int ->
  Catalog.t ->
  Ast.t ->
  t
(** [parallelism] (default 1) is stored into every TP join node: the
    partition count of the domain-parallel window sweep (the CLI's
    [--jobs]). Joins whose θ has no equality atom ignore it and run
    sequentially. Raises {!Plan_error} when < 1. [sanitize] (default
    {!Tpdb_windows.Invariant.env_enabled}, i.e. the [TPDB_SANITIZE]
    environment variable — the CLI's [--sanitize]) turns on the TPSan
    window-invariant checks in every TP join node. [prob_cache] (default
    [true], the CLI's [--no-prob-cache] turns it off) selects the
    memoized probability path in every TP join node
    ({!Tpdb_joins.Nj.options}). [mem_budget] (default [0] = not set, so
    the executor's [TPDB_MEM_BUDGET] fallback still applies — the CLI's
    [--mem-budget]) is the out-of-core working-set budget in bytes
    stored into every TP join node; an equi-join whose estimated working
    set exceeds it is spilled to partitioned heap files and swept
    partition by partition ({!Tpdb_storage.Spill}). When both join
    inputs are base relations with persisted statistics, their catalog
    cardinalities are stored alongside so the spill decision needs no
    live counting. Raises {!Plan_error} when negative. *)

val explain : t -> string
(** The plan tree with the cost model's per-node [[est rows=… cost=…]]
    columns, and a [[lineage: read-once]] marker on statically safe
    joins. *)

val fingerprint : t -> string
(** {!Physical.fingerprint} of the optimized plan: stable across runs of
    the same query text, different for distinct plans. The query log's
    grouping key. *)

val check : t -> Analyze.diagnostic list
(** Static analysis of the planned tree ({!Analyze.check}): type checks
    on θ, unsatisfiable/tautological atoms, sequential-fallback and
    cartesian-shape warnings, projections that drop join keys. When the
    planner reordered the join chain, the [join-reordered] note leads
    the report so diagnostic paths through the reordered chain are
    explainable. *)

val check_deep : t -> Analyze.diagnostic list
(** The plan-time rewrite notes ({!notes}) followed by
    {!Analyze.check_deep} on the optimized plan: abstract
    temporal/probability bounds, safe-plan classification, and the base
    {!check} diagnostics. Behind [tpdb_cli check --deep]. *)

val notes : t -> Analyze.diagnostic list
(** Note-severity diagnostics for the rewrites the planner applied while
    building this plan: cost-based join reorders ([join-reordered]),
    folded θ conjuncts ([theta-fold]), pruned provably-empty subplans
    ([pruned-empty]). *)

val estimates : t -> Cost.t
(** The cost model over the optimized plan, computed on first use and
    memoized. Statistics come from the catalog the plan was built
    against ({!Catalog.stats}). *)

val run : t -> Relation.t

val stream : t -> Tpdb_relation.Tuple.t Seq.t
(** Pipelined execution: pulls result tuples one at a time through the
    physical operators (see {!Physical.execute}). *)

val run_analyze : t -> Relation.t * string
(** EXPLAIN ANALYZE: the result plus the plan tree annotated with
    per-node output cardinalities and exclusive wall times. *)

val run_string : Catalog.t -> string -> Relation.t
(** Parse, plan and execute in one step. *)
