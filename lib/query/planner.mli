(** Planning and execution of TP-SQL queries.

    The planner mirrors the paper's PostgreSQL integration: it resolves
    column references, splits each join condition into hashable equality
    atoms and a residual predicate, picks the join algorithm (hash when an
    equality atom exists, nested loop otherwise) and wires the pipelined
    NJ operators. [explain] renders the chosen plan. *)

module Relation = Tpdb_relation.Relation

exception Plan_error of string
(** Unknown relation/column, ambiguous reference, or an ON condition that
    does not relate the two inputs. *)

type t

val plan :
  ?parallelism:int ->
  ?sanitize:bool ->
  ?prob_cache:bool ->
  Catalog.t ->
  Ast.t ->
  t
(** [parallelism] (default 1) is stored into every TP join node: the
    partition count of the domain-parallel window sweep (the CLI's
    [--jobs]). Joins whose θ has no equality atom ignore it and run
    sequentially. Raises {!Plan_error} when < 1. [sanitize] (default
    {!Tpdb_windows.Invariant.env_enabled}, i.e. the [TPDB_SANITIZE]
    environment variable — the CLI's [--sanitize]) turns on the TPSan
    window-invariant checks in every TP join node. [prob_cache] (default
    [true], the CLI's [--no-prob-cache] turns it off) selects the
    memoized probability path in every TP join node
    ({!Tpdb_joins.Nj.options}). *)

val explain : t -> string

val check : t -> Analyze.diagnostic list
(** Static analysis of the planned tree ({!Analyze.check}): type checks
    on θ, unsatisfiable/tautological atoms, sequential-fallback and
    cartesian-shape warnings, projections that drop join keys. *)

val run : t -> Relation.t

val stream : t -> Tpdb_relation.Tuple.t Seq.t
(** Pipelined execution: pulls result tuples one at a time through the
    physical operators (see {!Physical.execute}). *)

val run_analyze : t -> Relation.t * string
(** EXPLAIN ANALYZE: the result plus the plan tree annotated with
    per-node output cardinalities and exclusive wall times. *)

val run_string : Catalog.t -> string -> Relation.t
(** Parse, plan and execute in one step. *)
