module Relation = Tpdb_relation.Relation
module Tuple = Tpdb_relation.Tuple
module Value = Tpdb_relation.Value
module Fact = Tpdb_relation.Fact
module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula
module Var = Tpdb_lineage.Var

let buckets = 16
let sample_size = 256

type t = {
  relation : string;
  cardinality : int;
  distinct : int array;
  tmin : int;
  tmax : int;
  mean_span : float;
  start_hist : int array;
  end_hist : int array;
  sample : (int * int) array;
  p_min : float;
  p_max : float;
  p_mean : float;
  duplicate_free : bool;
  lineage_safe : bool;
}

(* Distinct count by explicit sort on [Value.compare] — the polymorphic
   compare is banned on values (see the poly-compare lint), and values
   of mixed numeric constructors must compare numerically anyway. *)
let distinct_count values =
  let sorted = List.sort Value.compare values in
  let rec count n = function
    | [] -> n
    | [ _ ] -> n + 1
    | a :: (b :: _ as rest) ->
        count (if Value.compare a b = 0 then n else n + 1) rest
  in
  count 0 sorted

(* Every lineage a bare variable, no variable twice: the base-relation
   shape the safe-plan rule builds on. *)
let lineage_safe tuples =
  let seen = Hashtbl.create 64 in
  List.for_all
    (fun tp ->
      match Formula.view (Tuple.lineage tp) with
      | Var v ->
          if Hashtbl.mem seen v then false
          else begin
            Hashtbl.add seen v ();
            true
          end
      | True | False | Not _ | And _ | Or _ -> false)
    tuples

let bucket_of ~tmin ~tmax x =
  if tmax <= tmin then 0
  else
    let b = (x - tmin) * buckets / (tmax - tmin) in
    if b < 0 then 0 else if b >= buckets then buckets - 1 else b

let of_relation r =
  let tuples = Relation.sorted_by_fact_start r in
  let n = List.length tuples in
  let arity = Tpdb_relation.Schema.arity (Relation.schema r) in
  let distinct =
    Array.init arity (fun col ->
        distinct_count (List.map (fun tp -> Fact.get (Tuple.fact tp) col) tuples))
  in
  let tmin, tmax =
    match Relation.active_domain r with
    | Some hull -> (Interval.ts hull, Interval.te hull)
    | None -> (0, 0)
  in
  let start_hist = Array.make buckets 0 in
  let end_hist = Array.make buckets 0 in
  let span_sum = ref 0 in
  List.iter
    (fun tp ->
      let iv = Tuple.iv tp in
      span_sum := !span_sum + Interval.duration iv;
      let bs = bucket_of ~tmin ~tmax (Interval.ts iv) in
      let be = bucket_of ~tmin ~tmax (Interval.te iv - 1) in
      start_hist.(bs) <- start_hist.(bs) + 1;
      end_hist.(be) <- end_hist.(be) + 1)
    tuples;
  (* Systematic sample: every k-th tuple in (fact, start) order —
     deterministic, no RNG, and spread over the whole relation. *)
  let stride = if n <= sample_size then 1 else (n + sample_size - 1) / sample_size in
  let sample =
    List.filteri (fun i _ -> i mod stride = 0) tuples
    |> List.map (fun tp ->
           let iv = Tuple.iv tp in
           (Interval.ts iv, Interval.te iv))
    |> Array.of_list
  in
  let p_min, p_max, p_sum =
    List.fold_left
      (fun (mn, mx, sum) tp ->
        let p = Tuple.p tp in
        (Float.min mn p, Float.max mx p, sum +. p))
      (1.0, 0.0, 0.0) tuples
  in
  {
    relation = Relation.name r;
    cardinality = n;
    distinct;
    tmin;
    tmax;
    mean_span = (if n = 0 then 0.0 else float_of_int !span_sum /. float_of_int n);
    start_hist;
    end_hist;
    sample;
    p_min = (if n = 0 then 0.0 else p_min);
    p_max = (if n = 0 then 0.0 else p_max);
    p_mean = (if n = 0 then 0.0 else p_sum /. float_of_int n);
    duplicate_free = Relation.is_duplicate_free r;
    lineage_safe = lineage_safe tuples;
  }

(* The safe-plan rule routes probability computation around the runtime
   read-once check on the word of [duplicate_free]/[lineage_safe], so
   they must describe the data as loaded, never as it was when a stats
   file was written: recompute both from the live relation. *)
let refresh_safety t r =
  {
    t with
    duplicate_free = Relation.is_duplicate_free r;
    lineage_safe = lineage_safe (Relation.tuples r);
  }

(* Cheap staleness test of persisted stats against live data: the
   cardinality and temporal hull must agree. Agreement does not prove
   the file current — it gates only the advisory cost fields; the
   safety flags go through [refresh_safety] regardless. *)
let describes t r =
  let tmin, tmax =
    match Relation.active_domain r with
    | Some hull -> (Interval.ts hull, Interval.te hull)
    | None -> (0, 0)
  in
  t.cardinality = Relation.cardinality r && t.tmin = tmin && t.tmax = tmax

(* {2 Persistence}

   A line-oriented text format — trivially parseable without a JSON
   reader, diffable, and stable across runs (all fields are computed
   deterministically). *)

let version = 1

let ints_to_line a =
  String.concat " " (Array.to_list (Array.map string_of_int a))

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let p fmt = Printf.fprintf oc fmt in
      p "tpdb-stats %d\n" version;
      p "relation %s\n" t.relation;
      p "cardinality %d\n" t.cardinality;
      p "distinct %s\n" (ints_to_line t.distinct);
      p "tmin %d\n" t.tmin;
      p "tmax %d\n" t.tmax;
      p "mean_span %.17g\n" t.mean_span;
      p "start_hist %s\n" (ints_to_line t.start_hist);
      p "end_hist %s\n" (ints_to_line t.end_hist);
      p "p_min %.17g\n" t.p_min;
      p "p_max %.17g\n" t.p_max;
      p "p_mean %.17g\n" t.p_mean;
      p "duplicate_free %b\n" t.duplicate_free;
      p "lineage_safe %b\n" t.lineage_safe;
      p "sample %d\n" (Array.length t.sample);
      Array.iter (fun (ts, te) -> p "%d %d\n" ts te) t.sample)

exception Malformed of string

let load path =
  let parse lines =
    let lines = ref lines in
    let next () =
      match !lines with
      | [] -> raise (Malformed "unexpected end of file")
      | l :: rest ->
          lines := rest;
          l
    in
    let field name =
      let l = next () in
      match String.index_opt l ' ' with
      | Some i when String.sub l 0 i = name ->
          String.sub l (i + 1) (String.length l - i - 1)
      | Some _ | None -> raise (Malformed (Printf.sprintf "expected %s line" name))
    in
    let int name =
      let v = field name in
      match int_of_string_opt v with
      | Some i -> i
      | None -> raise (Malformed (Printf.sprintf "%s: not an integer" name))
    in
    let flt name =
      let v = field name in
      match float_of_string_opt v with
      | Some f -> f
      | None -> raise (Malformed (Printf.sprintf "%s: not a float" name))
    in
    let boolean name =
      let v = field name in
      match bool_of_string_opt v with
      | Some b -> b
      | None -> raise (Malformed (Printf.sprintf "%s: not a boolean" name))
    in
    let ints name =
      let v = field name in
      if v = "" then [||]
      else
        String.split_on_char ' ' v
        |> List.map (fun s ->
               match int_of_string_opt s with
               | Some i -> i
               | None -> raise (Malformed (Printf.sprintf "%s: not integers" name)))
        |> Array.of_list
    in
    let v = int "tpdb-stats" in
    if v <> version then
      raise (Malformed (Printf.sprintf "unsupported stats version %d" v));
    let relation = field "relation" in
    let cardinality = int "cardinality" in
    let distinct = ints "distinct" in
    let tmin = int "tmin" in
    let tmax = int "tmax" in
    let mean_span = flt "mean_span" in
    let start_hist = ints "start_hist" in
    let end_hist = ints "end_hist" in
    if Array.length start_hist <> buckets || Array.length end_hist <> buckets
    then raise (Malformed "histogram bucket count mismatch");
    let p_min = flt "p_min" in
    let p_max = flt "p_max" in
    let p_mean = flt "p_mean" in
    let duplicate_free = boolean "duplicate_free" in
    let lineage_safe = boolean "lineage_safe" in
    let n_sample = int "sample" in
    let sample =
      Array.init n_sample (fun _ ->
          let l = next () in
          match String.split_on_char ' ' l with
          | [ a; b ] -> (
              match (int_of_string_opt a, int_of_string_opt b) with
              | Some ts, Some te -> (ts, te)
              | _ -> raise (Malformed "sample: not an interval"))
          | _ -> raise (Malformed "sample: not an interval"))
    in
    {
      relation;
      cardinality;
      distinct;
      tmin;
      tmax;
      mean_span;
      start_hist;
      end_hist;
      sample;
      p_min;
      p_max;
      p_mean;
      duplicate_free;
      lineage_safe;
    }
  in
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec read acc =
          match input_line ic with
          | line -> read (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        parse (read []))
  with
  | t -> Ok t
  | exception Sys_error msg -> Error msg
  | exception Malformed msg -> Error (Printf.sprintf "%s: %s" path msg)

let file ~dir name = Filename.concat dir (name ^ ".stats")

let to_string t =
  let b = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "relation %s: %d tuple(s)\n" t.relation t.cardinality;
  p "  temporal hull [%d,%d), mean span %.2f\n" t.tmin t.tmax t.mean_span;
  p "  distinct per column: %s\n" (ints_to_line t.distinct);
  p "  probability min %.3f max %.3f mean %.3f\n" t.p_min t.p_max t.p_mean;
  p "  duplicate-free %b, lineage-safe %b, sample %d interval(s)"
    t.duplicate_free t.lineage_safe (Array.length t.sample);
  Buffer.contents b
