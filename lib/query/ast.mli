(** Abstract syntax of the mini TP-SQL dialect.

    The dialect covers exactly the operators this repository implements:

    {v
    query    ::= select (UNION | INTERSECT | EXCEPT) select | select
    select   ::= SELECT [DISTINCT] proj FROM rel join* [WHERE conj]
                 [GROUP BY column (, column)*] [AT number | DURING interval]
                 [ORDER BY (column | p | ts) [ASC | DESC]] [LIMIT number]
    proj     ::= STAR | COUNT(STAR) | SUM(column) | AVG(column)
               | column (, column)*
    join     ::= (INNER | LEFT | RIGHT | FULL) TPJOIN rel ON conj
               | ANTIJOIN rel ON conj
    conj     ::= element (AND element)*
    element  ::= atom | temporal
    atom     ::= operand (= | <> | < | <= | > | >=) operand
    temporal ::= ident.T ALLEN ident.T
    ALLEN    ::= BEFORE | MEETS | OVERLAPS | STARTS | STARTED_BY
               | FINISHES | FINISHED_BY | DURING | CONTAINS | EQUALS
               | AFTER | MET_BY | OVERLAPPED_BY
    operand  ::= ident | ident.ident | 'string' | number
    v}

    Temporal and probabilistic attributes are implicit, as in the paper:
    every result row carries its interval, lineage and probability. *)

type comparison = [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ]

type operand =
  | Column of string option * string  (** optional relation qualifier *)
  | Const of Tpdb_relation.Value.t

type atom = { op : comparison; lhs : operand; rhs : operand }

type temporal_atom = {
  t_lhs : string;  (** relation name of the left [.T] operand *)
  t_rel : Tpdb_interval.Interval.allen;
  t_rhs : string;  (** relation name of the right [.T] operand *)
}
(** [x.T BEFORE y.T]-style predicate over the tuples' full intervals.
    The planner folds it into the join's θ as its temporal component
    ({!Tpdb_windows.Theta.with_temporal}). *)

type join_kind = Inner | Left | Right | Full | Anti

type join = {
  kind : join_kind;
  rel : string;
  on : atom list;
  on_temporal : temporal_atom list;
}

type slice =
  | At of int  (** [AT t]: snapshot at one time point *)
  | During of int * int  (** [DURING [a,b)]: clamp results to a window *)

type order_key =
  | By_column of string
  | By_probability  (** [ORDER BY p] *)
  | By_start  (** [ORDER BY ts] *)

type direction = Asc | Desc

type aggregate =
  | Count  (** [COUNT(STAR)]: expected number of valid tuples *)
  | Sum of string  (** [SUM(col)] *)
  | Avg of string  (** [AVG(col)] *)

type select = {
  distinct : bool;  (** [SELECT DISTINCT]: duplicate-eliminating TP
                        projection (lineage disjunction) *)
  projection : string list option;  (** [None] = [*] *)
  aggregate : aggregate option;
      (** mutually exclusive with [projection]/[distinct] *)
  group_by : string list;
  from : string;
  joins : join list;  (** left-deep chain, in source order *)
  where : atom list;
  where_temporal : temporal_atom list;
      (** temporal predicates in WHERE; the planner attaches each to the
          join whose sides it names *)
  slice : slice option;
  order_by : (order_key * direction) option;
  limit : int option;
}

type set_kind = Union | Intersect | Except

type t =
  | Select of select
  | Set of set_kind * select * select

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val normalize : t -> t
(** Canonical form for cache keying: WHERE and ON conjuncts sorted by
    their rendering (conjunction is commutative, so this preserves
    semantics). Join order, projection order and GROUP BY order are
    meaningful and left untouched. Idempotent. *)

val fingerprint : t -> string
(** 16-hex-digit FNV-1a hash of [to_string (normalize q)] — the
    prepared-plan cache key. Two queries differing only in conjunct
    order share a fingerprint. *)

val relations : t -> string list
(** Every base relation the query reads (FROM and all joins, both
    sides of a set operation), sorted, deduplicated. *)

val operand_string : operand -> string
val atom_string : atom -> string
val temporal_atom_string : temporal_atom -> string
val conj_string : atom list -> string

(** [full_conj_string atoms temporals]: both kinds of conjuncts, atoms
    first, joined with [AND]. *)
val full_conj_string : atom list -> temporal_atom list -> string
val join_kind_string : join_kind -> string
val set_kind_string : set_kind -> string
