(** Cardinality and cost estimation over physical plans.

    One bottom-up pass ({!of_plan}) attaches to every plan node an
    {!estimate}: expected output rows, per-column distinct counts, an
    interval sample propagated through the operators, and a cumulative
    cost in abstract work units (tuples touched, with an [n log n]
    surcharge for sorts). Estimates are advisory — they feed the
    EXPLAIN [est rows]/[est cost] columns, the [--analyze] q-error
    comparison, and the planner's ordering of equi-θ join chains — and
    never affect result correctness.

    Selectivities come from {!Stats}:
    - equality atoms use the classic [1 / max(distinct)] rule on the
      joined columns' distinct counts;
    - the temporal component ([`Overlap] or [`Allen rel]) is estimated
      by direct pair counting over the two sides' interval samples — for
      each sampled (left, right) pair, does θ's temporal predicate admit
      an overlapping window? — which is robust for every Allen relation
      where histogram convolution is only workable for [`Overlap];
    - non-equality atoms fall back to a fixed 1/3.

    Estimates are keyed by node {e physical identity} (plans contain
    closures, so structural comparison is unavailable); hold on to the
    same plan value you passed to {!of_plan}. *)

type estimate = {
  rows : float;  (** expected output cardinality *)
  distinct : int array;  (** per output column, expected distinct values *)
  sample : (int * int) array;  (** propagated interval sample *)
  cost : float;  (** cumulative work units for the whole subtree *)
}

type t
(** Estimates for every node of one plan. *)

val of_plan : stats:(string -> Stats.t option) -> Physical.t -> t
(** Bottom-up estimation. [stats] resolves a base-relation name to its
    statistics (the catalog's memo, {!Catalog.stats}); scans without
    stats fall back to statistics computed from the scanned relation
    itself (exact for materialized scans). *)

val find : t -> Physical.t -> estimate option
(** The estimate of one node of the plan passed to {!of_plan}, by
    physical identity. *)

val rows : t -> Physical.t -> float option
(** [Option.map (fun e -> e.rows) (find t node)] — the shape
    {!Physical.analyze}'s [estimate] parameter wants. *)

val root : t -> estimate
(** The whole-plan estimate. *)

val annotate : t -> Physical.t -> string
(** [" [est rows=R cost=C]"] for a known node, [""] otherwise — an
    [annotate] function for {!Physical.explain}. *)

val temporal_selectivity :
  Tpdb_windows.Theta.t -> (int * int) array -> (int * int) array -> float
(** Fraction of sampled (left, right) interval pairs that both satisfy
    θ's temporal predicate and share a time point (window formation
    needs an overlap even under [`Allen] components — a disjoint
    relation estimates 0). Falls back to 0.5 when either sample is
    empty. Exposed for the cost-model tests. *)
