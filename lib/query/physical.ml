module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Prob = Tpdb_lineage.Prob
module Theta = Tpdb_windows.Theta
module Overlap = Tpdb_windows.Overlap
module Nj = Tpdb_joins.Nj
module Set_ops = Tpdb_setops.Set_ops
module Projection = Tpdb_setops.Projection
module Aggregate = Tpdb_setops.Aggregate
module Metrics = Tpdb_obs.Metrics
module Trace = Tpdb_obs.Trace
module Clock = Tpdb_obs.Clock

type t =
  | Scan of Relation.t
  | Filter of { description : string; predicate : Tuple.t -> bool; child : t }
  | Project of { columns : int list; schema : Schema.t; child : t }
  | Tp_join of {
      kind : Nj.join_kind;
      algorithm : Overlap.algorithm;
      parallelism : int;
      sanitize : bool;
      prob_cache : bool;
      safe_lineage : bool;
      mem_budget : int;  (* bytes; 0 = Nj's default (TPDB_MEM_BUDGET) *)
      est_rows : (int * int) option;  (* catalog cardinalities for spill sizing *)
      theta : Theta.t;
      left : t;
      right : t;
    }
  | Distinct_project of { columns : int list; schema : Schema.t; child : t }
  | Timeslice of { window : Tpdb_interval.Interval.t; child : t }
  | Aggregate of { group_by : int list; spec : Aggregate.spec; child : t }
  | Sort_limit of {
      description : string;
      compare : Tuple.t -> Tuple.t -> int;
      limit : int option;
      child : t;
    }
  | Set_op of { kind : [ `Union | `Intersect | `Except ]; left : t; right : t }

let rec schema = function
  | Scan r -> Relation.schema r
  | Filter { child; _ } | Timeslice { child; _ } | Sort_limit { child; _ } ->
      schema child
  | Project { schema = s; _ } | Distinct_project { schema = s; _ } -> s
  | Aggregate { group_by; spec; child } ->
      Aggregate.output_schema ~group_by spec (schema child)
  | Tp_join { kind = Nj.Anti; left; right; _ } ->
      let l = schema left and r = schema right in
      Schema.rename (Schema.name l ^ "_anti_" ^ Schema.name r) l
  | Tp_join { left; right; _ } -> Schema.join (schema left) (schema right)
  | Set_op { kind; left; right } ->
      let op =
        match kind with
        | `Union -> "union"
        | `Intersect -> "isect"
        | `Except -> "minus"
      in
      let l = schema left and r = schema right in
      Schema.rename (Schema.name l ^ "_" ^ op ^ "_" ^ Schema.name r) l

(* Span label of one operator node, e.g. [op:tp-join:left-outer]. *)
let op_name = function
  | Scan r -> "scan:" ^ Relation.name r
  | Filter _ -> "filter"
  | Project _ -> "project"
  | Distinct_project _ -> "distinct-project"
  | Timeslice _ -> "timeslice"
  | Aggregate _ -> "aggregate"
  | Sort_limit _ -> "sort-limit"
  | Tp_join { kind; _ } -> "tp-join:" ^ Nj.kind_name kind
  | Set_op { kind; _ } -> (
      match kind with
      | `Union -> "set-op:union"
      | `Intersect -> "set-op:intersect"
      | `Except -> "set-op:except")

let rec to_relation ~env plan =
  if Trace.enabled () then
    Trace.with_span ~cat:"operator" (op_name plan) (fun () -> eval ~env plan)
  else eval ~env plan

and eval ~env plan =
  match plan with
  | Scan r -> r
  | Filter { predicate; child; _ } ->
      Relation.filter predicate (to_relation ~env child)
  | Timeslice { window; child } ->
      Relation.timeslice window (to_relation ~env child)
  | Project { columns; schema; child } ->
      let projected tp =
        Tuple.make
          ~fact:(Fact.project columns (Tuple.fact tp))
          ~lineage:(Tuple.lineage tp) ~iv:(Tuple.iv tp) ~p:(Tuple.p tp)
      in
      Relation.of_tuples schema
        (List.map projected (Relation.tuples (to_relation ~env child)))
  | Distinct_project { columns; child; _ } ->
      Projection.project ~env ~columns (to_relation ~env child)
  | Aggregate { group_by; spec; child } ->
      Aggregate.sequenced ~env ~group_by spec (to_relation ~env child)
  | Sort_limit { compare = cmp; limit; child; _ } ->
      let input = to_relation ~env child in
      let sorted = List.stable_sort cmp (Relation.tuples input) in
      let limited =
        match limit with
        | None -> sorted
        | Some n -> List.filteri (fun i _ -> i < n) sorted
      in
      Relation.of_tuples (Relation.schema input) limited
  | Tp_join
      {
        kind;
        algorithm;
        parallelism;
        sanitize;
        prob_cache;
        safe_lineage;
        mem_budget;
        est_rows;
        theta;
        left;
        right;
      } ->
      let options =
        (* [mem_budget = 0] means "not set here": leave the argument out
           so Nj's own TPDB_MEM_BUDGET fallback still applies. *)
        Nj.options ~algorithm ~parallelism ~sanitize ~prob_cache
          ~static_safe:safe_lineage
          ?mem_budget:(if mem_budget > 0 then Some mem_budget else None)
          ?est_rows ()
      in
      Nj.join ~options ~env ~kind ~theta (to_relation ~env left)
        (to_relation ~env right)
  | Set_op { kind; left; right } ->
      let op =
        match kind with
        | `Union -> Set_ops.union
        | `Intersect -> Set_ops.intersection
        | `Except -> Set_ops.difference
      in
      op ~env (to_relation ~env left) (to_relation ~env right)

(* Filters and projections stream over the child's sequence; blocking
   nodes (joins, set operations, distinct) fall back to [to_relation] for
   their inputs and stream their own output. *)
let rec execute ~env plan =
  match plan with
  | Scan r -> Relation.to_seq r
  | Filter { predicate; child; _ } -> Seq.filter predicate (execute ~env child)
  | Timeslice { window; child } ->
      Seq.filter_map
        (fun tp ->
          Tpdb_interval.Interval.clamp ~within:window (Tuple.iv tp)
          |> Option.map (fun iv ->
                 Tuple.make ~fact:(Tuple.fact tp) ~lineage:(Tuple.lineage tp)
                   ~iv ~p:(Tuple.p tp)))
        (execute ~env child)
  | Project { columns; child; _ } ->
      Seq.map
        (fun tp ->
          Tuple.make
            ~fact:(Fact.project columns (Tuple.fact tp))
            ~lineage:(Tuple.lineage tp) ~iv:(Tuple.iv tp) ~p:(Tuple.p tp))
        (execute ~env child)
  | Distinct_project _ | Tp_join _ | Set_op _ | Aggregate _ | Sort_limit _ ->
      fun () -> Relation.to_seq (to_relation ~env plan) ()

let algorithm_string : Overlap.algorithm -> string = function
  | `Flat -> "flat"
  | `Hash -> "hash"
  | `Nested_loop -> "nested loop"
  | `Merge -> "merge"
  | `Index -> "interval-tree index"

let kind_string = function
  | Nj.Inner -> "TP Inner Join"
  | Nj.Anti -> "TP Anti Join"
  | Nj.Left -> "TP Left Outer Join"
  | Nj.Right -> "TP Right Outer Join"
  | Nj.Full -> "TP Full Outer Join"

let jobs_string parallelism =
  if parallelism > 1 then Printf.sprintf "; jobs: %d" parallelism else ""

let sanitize_string sanitize = if sanitize then "; sanitize" else ""

(* The cache is the default: only the unusual configuration is shown, so
   existing EXPLAIN expectations stay byte-identical. *)
let prob_cache_string prob_cache = if prob_cache then "" else "; prob-cache: off"

(* Off by default; shown in MB when it divides evenly, else in bytes. *)
let mem_budget_string budget =
  if budget <= 0 then ""
  else if budget mod (1024 * 1024) = 0 then
    Printf.sprintf "; mem-budget: %d MB" (budget / (1024 * 1024))
  else Printf.sprintf "; mem-budget: %d B" budget

(* Shared by explain and analyze: the one-line description of a node. *)
let describe ~child_schema plan =
  match plan with
  | Scan r -> Printf.sprintf "Scan %s (%d tuples)" (Relation.name r) (Relation.cardinality r)
  | Filter { description; _ } -> Printf.sprintf "Filter (%s)" description
  | Timeslice { window; _ } ->
      Printf.sprintf "Timeslice (%s)" (Tpdb_interval.Interval.to_string window)
  | Project { schema = s; _ } ->
      Printf.sprintf "Project (%s)" (String.concat ", " (Schema.columns s))
  | Distinct_project { schema = s; _ } ->
      Printf.sprintf "Distinct TP Project (%s; lineage disjunction)"
        (String.concat ", " (Schema.columns s))
  | Tp_join
      {
        kind;
        algorithm;
        parallelism;
        sanitize;
        prob_cache;
        mem_budget;
        theta;
        left;
        right;
        _;
      } ->
      Printf.sprintf
        "%s (NJ pipeline: overlap[%s] -> LAWAU -> LAWAN; \xce\xb8: %s%s%s%s%s)"
        (kind_string kind)
        (algorithm_string algorithm)
        (Theta.to_string ~left:(child_schema left) ~right:(child_schema right) theta)
        (jobs_string parallelism)
        (sanitize_string sanitize)
        (prob_cache_string prob_cache)
        (mem_budget_string mem_budget)
  | Aggregate { spec; _ } ->
      Printf.sprintf "Sequenced Aggregate (%s; expectation per witness-constant segment)"
        (match spec with
        | Aggregate.Count -> "COUNT(*)"
        | Aggregate.Sum c -> Printf.sprintf "SUM(#%d)" c
        | Aggregate.Avg c -> Printf.sprintf "AVG(#%d)" c)
  | Sort_limit { description; limit; _ } ->
      Printf.sprintf "Sort%s (%s)"
        (match limit with
        | None -> ""
        | Some n -> Printf.sprintf " + Limit %d" n)
        description
  | Set_op { kind; _ } ->
      Printf.sprintf "TP %s (windows)"
        (match kind with
        | `Union -> "Union"
        | `Intersect -> "Intersect"
        | `Except -> "Except")

(* The canonical shape string behind [fingerprint]: the logical and
   physical structure of the optimized plan — operators, relation names,
   column lists, θ (rendered against the child schemas, so renames
   matter), join kind and algorithm — but none of the runtime execution
   knobs (parallelism, sanitize, prob_cache, safe_lineage): the same
   optimized plan run with different jobs or checks is the same plan,
   which is what the prepared-plan cache and the query log want to key
   on. *)
let rec shape plan =
  match plan with
  | Scan r -> Printf.sprintf "scan(%s)" (Relation.name r)
  | Filter { description; child; _ } ->
      Printf.sprintf "filter(%s;%s)" description (shape child)
  | Project { columns; child; _ } ->
      Printf.sprintf "project(%s;%s)"
        (String.concat "," (List.map string_of_int columns))
        (shape child)
  | Distinct_project { columns; child; _ } ->
      Printf.sprintf "distinct-project(%s;%s)"
        (String.concat "," (List.map string_of_int columns))
        (shape child)
  | Timeslice { window; child } ->
      Printf.sprintf "timeslice(%s;%s)"
        (Tpdb_interval.Interval.to_string window)
        (shape child)
  | Aggregate { group_by; spec; child } ->
      Printf.sprintf "aggregate(%s;%s;%s)"
        (String.concat "," (List.map string_of_int group_by))
        (match spec with
        | Aggregate.Count -> "count"
        | Aggregate.Sum c -> Printf.sprintf "sum:%d" c
        | Aggregate.Avg c -> Printf.sprintf "avg:%d" c)
        (shape child)
  | Sort_limit { description; limit; child; _ } ->
      Printf.sprintf "sort(%s;%s;%s)" description
        (match limit with None -> "-" | Some n -> string_of_int n)
        (shape child)
  | Tp_join { kind; algorithm; theta; left; right; _ } ->
      Printf.sprintf "tp-join(%s;%s;%s;%s;%s)" (Nj.kind_name kind)
        (algorithm_string algorithm)
        (Theta.to_string ~left:(schema left) ~right:(schema right) theta)
        (shape left) (shape right)
  | Set_op { kind; left; right } ->
      Printf.sprintf "set-op(%s;%s;%s)"
        (match kind with
        | `Union -> "union"
        | `Intersect -> "intersect"
        | `Except -> "except")
        (shape left) (shape right)

(* FNV-1a 64-bit over the shape string: stable across runs and processes
   (no functorial hashing, no randomization), cheap, and 16 hex digits
   make a readable grouping key. *)
let fingerprint plan =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    (shape plan);
  Printf.sprintf "%016Lx" !h

let children = function
  | Scan _ -> []
  | Filter { child; _ }
  | Timeslice { child; _ }
  | Project { child; _ }
  | Distinct_project { child; _ }
  | Aggregate { child; _ }
  | Sort_limit { child; _ } ->
      [ child ]
  | Tp_join { left; right; _ } | Set_op { left; right; _ } -> [ left; right ]

(* Re-roots a plan onto pre-materialized child relations, so each node can
   be timed in isolation. *)
let with_children plan inputs =
  match (plan, inputs) with
  | Scan _, [] -> plan
  | Filter f, [ child ] -> Filter { f with child = Scan child }
  | Timeslice t, [ child ] -> Timeslice { t with child = Scan child }
  | Project p, [ child ] -> Project { p with child = Scan child }
  | Distinct_project p, [ child ] -> Distinct_project { p with child = Scan child }
  | Aggregate a, [ child ] -> Aggregate { a with child = Scan child }
  | Sort_limit s, [ child ] -> Sort_limit { s with child = Scan child }
  | Tp_join j, [ left; right ] ->
      Tp_join { j with left = Scan left; right = Scan right }
  | Set_op s, [ left; right ] -> Set_op { s with left = Scan left; right = Scan right }
  | _ -> invalid_arg "Physical.with_children: arity mismatch"

(* Render top-down but execute bottom-up: execute children first, time
   this node over the materialized inputs, then emit this node's line
   before the children's blocks. Window counts come from the metrics
   sink by before/after deltas — children run outside the parent's
   delta, so the numbers are exclusive, like the wall time. When the
   caller has no sink installed a private one is used for the run. *)
(* q-error of an estimate against the observed row count: max of the two
   ratios, with both sides floored at one row so empty results stay
   finite. *)
let q_error ~est ~actual =
  let est = Float.max 1.0 est
  and actual = Float.max 1.0 (float_of_int actual) in
  Float.max (est /. actual) (actual /. est)

let q_error_threshold = 16.0

let analyze ?(estimate = fun _ -> None) ~env plan =
  let metrics, private_sink =
    match Metrics.active () with
    | Some m -> (m, false)
    | None ->
        let m = Metrics.create () in
        Metrics.install m;
        (m, true)
  in
  Fun.protect
    ~finally:(fun () -> if private_sink then Metrics.uninstall ())
  @@ fun () ->
  let window_counts () =
    ( Metrics.get metrics Metrics.Windows_overlapping,
      Metrics.get metrics Metrics.Windows_unmatched,
      Metrics.get metrics Metrics.Windows_negating )
  in
  let cache_counts () =
    ( Metrics.get metrics Metrics.Prob_cache_hits,
      Metrics.get metrics Metrics.Prob_cache_misses )
  in
  let spill_counts () =
    ( Metrics.get metrics Metrics.Spill_bytes,
      Metrics.get metrics Metrics.Spill_partitions,
      Metrics.get metrics Metrics.Pool_hits,
      Metrics.get metrics Metrics.Pool_misses )
  in
  let rec run indent plan =
    let child_results = List.map (run (indent + 1)) (children plan) in
    let child_relations = List.map (fun (r, _, _) -> r) child_results in
    let rerooted = with_children plan child_relations in
    let wo0, wu0, wn0 = window_counts () in
    let ch0, cm0 = cache_counts () in
    let sb0, sp0, ph0, pm0 = spill_counts () in
    let t0 = Unix.gettimeofday () in
    let result = to_relation ~env rerooted in
    let ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
    let wo1, wu1, wn1 = window_counts () in
    let ch1, cm1 = cache_counts () in
    let sb1, sp1, ph1, pm1 = spill_counts () in
    let windows =
      let wo = wo1 - wo0 and wu = wu1 - wu0 and wn = wn1 - wn0 in
      if wo + wu + wn = 0 then ""
      else Printf.sprintf " [windows: WO=%d WU=%d WN=%d]" wo wu wn
    in
    let cache =
      let hits = ch1 - ch0 and misses = cm1 - cm0 in
      if hits + misses = 0 then ""
      else Printf.sprintf " [prob-cache: %d hits, %d misses]" hits misses
    in
    let spill =
      (* only spilled nodes get the column, so in-RAM runs stay byte-identical *)
      let parts = sp1 - sp0 in
      if parts = 0 then ""
      else
        let hits = ph1 - ph0 and misses = pm1 - pm0 in
        Printf.sprintf " [spill: %d partitions, %.1f MB, pool %d/%d hits]"
          parts
          (float_of_int (sb1 - sb0) /. (1024.0 *. 1024.0))
          hits (hits + misses)
    in
    let rows = Relation.cardinality result in
    let est_column, est_warning =
      match estimate plan with
      | None -> ("", [])
      | Some est ->
          let q = q_error ~est ~actual:rows in
          let column = Printf.sprintf " est=%.0f q=%.1f" est q in
          let warning =
            if q > q_error_threshold then
              [
                Printf.sprintf
                  "%s!! cost-q-error: estimated %.0f row(s) but saw %d \
                   (q-error %.1f > %.1f) — stats are stale or missing; \
                   run `tpdb_cli stats`"
                  (String.make ((2 * indent) + 2) ' ')
                  est rows q q_error_threshold;
              ]
            else []
          in
          (column, warning)
    in
    let line =
      Printf.sprintf "%s%s  [rows=%d%s, %s]%s%s%s"
        (String.make (2 * indent) ' ')
        (describe ~child_schema:schema plan)
        rows est_column (Clock.pp_ms ms) windows cache spill
    in
    let block =
      String.concat "\n"
        ((line :: est_warning) @ List.map (fun (_, _, b) -> b) child_results)
    in
    (result, ms, block)
  in
  let result, _, block = run 0 plan in
  (* Quantile footer over the run's distributions: counts are exact,
     p50/p90/p99 come from the log-bucketed histograms (≤ ~6% relative
     error). Only the distributions this run touched are listed. *)
  let footer =
    let line (dist, render) =
      let s = Metrics.dist_snapshot metrics dist in
      if s.Tpdb_obs.Hist.count = 0 then None
      else
        Some
          (Printf.sprintf "  %-22s n=%d p50=%s p90=%s p99=%s max=%s"
             (Metrics.dist_name dist) s.Tpdb_obs.Hist.count
             (render (Tpdb_obs.Hist.quantile s 0.5))
             (render (Tpdb_obs.Hist.quantile s 0.9))
             (render (Tpdb_obs.Hist.quantile s 0.99))
             (render s.Tpdb_obs.Hist.max))
    in
    let plain = string_of_int in
    match
      List.filter_map line
        [
          (Metrics.Partition_size, plain);
          (Metrics.Spill_partition_bytes, plain);
          (Metrics.Pool_hit_rate, plain);
          (Metrics.Domain_busy_ns, Clock.pp_ns);
          (Metrics.Sanitizer_ns, Clock.pp_ns);
          (Metrics.Prob_cache_lookup_ns, Clock.pp_ns);
          (Metrics.Oracle_eval_ns, Clock.pp_ns);
          (Metrics.Analysis_ns, Clock.pp_ns);
        ]
    with
    | [] -> []
    | lines -> "Distributions:" :: lines
  in
  (result, String.concat "\n" (block :: footer))

let explain ?(annotate = fun _ -> "") plan =
  let buffer = Buffer.create 256 in
  let rec render indent plan =
    Buffer.add_string buffer
      (String.make (2 * indent) ' '
      ^ describe ~child_schema:schema plan
      ^ annotate plan ^ "\n");
    List.iter (render (indent + 1)) (children plan)
  in
  render 0 plan;
  (* drop the trailing newline *)
  let s = Buffer.contents buffer in
  if String.length s > 0 && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s
