type token =
  | Kw of string
  | Ident of string
  | Qualified of string * string
  | Str of string
  | Num of string
  | Iv of int * int
  | Op of string
  | Comma
  | Lparen
  | Rparen
  | Star

exception Lex_error of string * int

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "ON"; "AND"; "TPJOIN"; "ANTIJOIN"; "INNER";
    "LEFT"; "RIGHT"; "FULL"; "UNION"; "INTERSECT"; "EXCEPT"; "AS"; "DISTINCT";
    "AT"; "DURING"; "COUNT"; "SUM"; "AVG"; "GROUP"; "BY"; "ORDER"; "LIMIT"; "ASC"; "DESC";
    (* Allen-relation keywords for temporal predicates (x.T BEFORE y.T);
       DURING above doubles as both the timeslice clause and the Allen
       relation — the parser disambiguates by position. *)
    "BEFORE"; "MEETS"; "OVERLAPS"; "STARTS"; "STARTED_BY"; "FINISHES";
    "FINISHED_BY"; "CONTAINS"; "EQUALS"; "AFTER"; "MET_BY"; "OVERLAPPED_BY";
  ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      match input.[pos] with
      | ' ' | '\t' | '\n' | '\r' -> go (pos + 1) acc
      | ',' -> go (pos + 1) (Comma :: acc)
      | '[' -> (
          (* interval literal [ts,te) *)
          let sub = String.sub input pos (min 32 (n - pos)) in
          match Scanf.sscanf_opt sub "[%d,%d)" (fun a b -> (a, b)) with
          | Some (a, b) ->
              let consumed =
                let rec find i = if input.[i] = ')' then i - pos + 1 else find (i + 1) in
                find pos
              in
              go (pos + consumed) (Iv (a, b) :: acc)
          | None -> raise (Lex_error ("malformed interval literal", pos)))
      | '(' -> go (pos + 1) (Lparen :: acc)
      | ')' -> go (pos + 1) (Rparen :: acc)
      | '*' -> go (pos + 1) (Star :: acc)
      | '=' -> go (pos + 1) (Op "=" :: acc)
      | '<' ->
          if pos + 1 < n && input.[pos + 1] = '>' then go (pos + 2) (Op "<>" :: acc)
          else if pos + 1 < n && input.[pos + 1] = '=' then go (pos + 2) (Op "<=" :: acc)
          else go (pos + 1) (Op "<" :: acc)
      | '>' ->
          if pos + 1 < n && input.[pos + 1] = '=' then go (pos + 2) (Op ">=" :: acc)
          else go (pos + 1) (Op ">" :: acc)
      | '\'' ->
          let rec scan_string i =
            if i >= n then raise (Lex_error ("unterminated string", pos))
            else if input.[i] = '\'' then i
            else scan_string (i + 1)
          in
          let close = scan_string (pos + 1) in
          go (close + 1) (Str (String.sub input (pos + 1) (close - pos - 1)) :: acc)
      | c when is_digit c || (c = '-' && pos + 1 < n && is_digit input.[pos + 1]) ->
          let rec scan i =
            if i < n && (is_digit input.[i] || input.[i] = '.') then scan (i + 1)
            else i
          in
          let fin = scan (pos + 1) in
          go fin (Num (String.sub input pos (fin - pos)) :: acc)
      | c when is_ident_start c ->
          let rec scan i = if i < n && is_ident input.[i] then scan (i + 1) else i in
          let fin = scan (pos + 1) in
          let word = String.sub input pos (fin - pos) in
          let upper = String.uppercase_ascii word in
          if List.mem upper keywords then go fin (Kw upper :: acc)
          else if fin < n && input.[fin] = '.' then begin
            let col_start = fin + 1 in
            if col_start >= n || not (is_ident_start input.[col_start]) then
              raise (Lex_error ("expected column after '.'", fin));
            let rec scan2 i =
              if i < n && is_ident input.[i] then scan2 (i + 1) else i
            in
            let col_end = scan2 col_start in
            go col_end
              (Qualified (word, String.sub input col_start (col_end - col_start))
              :: acc)
          end
          else go fin (Ident word :: acc)
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, pos))
  in
  go 0 []

let token_string = function
  | Kw k -> k
  | Ident i -> i
  | Qualified (r, c) -> r ^ "." ^ c
  | Str s -> "'" ^ s ^ "'"
  | Num x -> x
  | Iv (a, b) -> Printf.sprintf "[%d,%d)" a b
  | Op o -> o
  | Comma -> ","
  | Lparen -> "("
  | Rparen -> ")"
  | Star -> "*"
