type comparison = [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ]

type operand =
  | Column of string option * string
  | Const of Tpdb_relation.Value.t

type atom = { op : comparison; lhs : operand; rhs : operand }

type temporal_atom = {
  t_lhs : string;
  t_rel : Tpdb_interval.Interval.allen;
  t_rhs : string;
}

type join_kind = Inner | Left | Right | Full | Anti

type join = {
  kind : join_kind;
  rel : string;
  on : atom list;
  on_temporal : temporal_atom list;
}

type slice =
  | At of int
  | During of int * int

type order_key =
  | By_column of string
  | By_probability
  | By_start

type direction = Asc | Desc

type aggregate =
  | Count
  | Sum of string
  | Avg of string

type select = {
  distinct : bool;
  projection : string list option;
  aggregate : aggregate option;
  group_by : string list;
  from : string;
  joins : join list;
  where : atom list;
  where_temporal : temporal_atom list;
  slice : slice option;
  order_by : (order_key * direction) option;
  limit : int option;
}

type set_kind = Union | Intersect | Except

type t =
  | Select of select
  | Set of set_kind * select * select

let comparison_string = function
  | `Eq -> "="
  | `Ne -> "<>"
  | `Lt -> "<"
  | `Le -> "<="
  | `Gt -> ">"
  | `Ge -> ">="

let operand_string = function
  | Column (None, c) -> c
  | Column (Some r, c) -> r ^ "." ^ c
  | Const v -> (
      match v with
      | Tpdb_relation.Value.S s -> "'" ^ s ^ "'"
      | other -> Tpdb_relation.Value.to_string other)

let atom_string a =
  Printf.sprintf "%s %s %s" (operand_string a.lhs)
    (comparison_string a.op) (operand_string a.rhs)

let temporal_atom_string ta =
  Printf.sprintf "%s.T %s %s.T" ta.t_lhs
    (String.uppercase_ascii (Tpdb_interval.Interval.allen_name ta.t_rel))
    ta.t_rhs

let conj_string atoms = String.concat " AND " (List.map atom_string atoms)

let full_conj_string atoms temporals =
  String.concat " AND "
    (List.map atom_string atoms @ List.map temporal_atom_string temporals)

let join_kind_string = function
  | Inner -> "INNER TPJOIN"
  | Left -> "LEFT TPJOIN"
  | Right -> "RIGHT TPJOIN"
  | Full -> "FULL TPJOIN"
  | Anti -> "ANTIJOIN"

let select_string s =
  let proj =
    match (s.aggregate, s.projection) with
    | Some Count, _ -> "COUNT(*)"
    | Some (Sum c), _ -> Printf.sprintf "SUM(%s)" c
    | Some (Avg c), _ -> Printf.sprintf "AVG(%s)" c
    | None, None -> "*"
    | None, Some cols -> String.concat ", " cols
  in
  let proj = if s.distinct then "DISTINCT " ^ proj else proj in
  let join =
    String.concat ""
      (List.map
         (fun j ->
           Printf.sprintf " %s %s ON %s" (join_kind_string j.kind) j.rel
             (full_conj_string j.on j.on_temporal))
         s.joins)
  in
  let where =
    match (s.where, s.where_temporal) with
    | [], [] -> ""
    | atoms, temporals -> " WHERE " ^ full_conj_string atoms temporals
  in
  let group =
    match s.group_by with
    | [] -> ""
    | cols -> " GROUP BY " ^ String.concat ", " cols
  in
  let slice =
    match s.slice with
    | None -> ""
    | Some (At t) -> Printf.sprintf " AT %d" t
    | Some (During (a, b)) -> Printf.sprintf " DURING [%d,%d)" a b
  in
  let order =
    match s.order_by with
    | None -> ""
    | Some (key, direction) ->
        Printf.sprintf " ORDER BY %s%s"
          (match key with
          | By_column c -> c
          | By_probability -> "p"
          | By_start -> "ts")
          (match direction with Asc -> "" | Desc -> " DESC")
  in
  let limit =
    match s.limit with None -> "" | Some n -> Printf.sprintf " LIMIT %d" n
  in
  Printf.sprintf "SELECT %s FROM %s%s%s%s%s%s%s" proj s.from join where group
    slice order limit

let set_kind_string = function
  | Union -> "UNION"
  | Intersect -> "INTERSECT"
  | Except -> "EXCEPT"

let to_string = function
  | Select s -> select_string s
  | Set (k, a, b) ->
      Printf.sprintf "%s %s %s" (select_string a) (set_kind_string k)
        (select_string b)

let pp ppf q = Format.pp_print_string ppf (to_string q)

(* Normalization for plan-cache keying: conjunction is commutative, so
   the order of WHERE and ON conjuncts is semantically irrelevant —
   sorting them canonically lets [a = 1 AND b = 2] and
   [b = 2 AND a = 1] share one cache entry. Everything whose order is
   meaningful (the join chain, projection columns, GROUP BY) is left
   untouched. *)
let normalize_select s =
  let sort_atoms =
    List.sort (fun a b -> String.compare (atom_string a) (atom_string b))
  in
  let sort_temporals =
    List.sort (fun a b ->
        String.compare (temporal_atom_string a) (temporal_atom_string b))
  in
  {
    s with
    joins =
      List.map
        (fun j ->
          { j with on = sort_atoms j.on; on_temporal = sort_temporals j.on_temporal })
        s.joins;
    where = sort_atoms s.where;
    where_temporal = sort_temporals s.where_temporal;
  }

let normalize = function
  | Select s -> Select (normalize_select s)
  | Set (k, a, b) -> Set (k, normalize_select a, normalize_select b)

(* FNV-1a 64-bit over the normalized rendering, the same construction
   (and constants) as [Physical.fingerprint] over plan shapes. *)
let fingerprint q =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    (to_string (normalize q));
  Printf.sprintf "%016Lx" !h

let select_relations s = s.from :: List.map (fun j -> j.rel) s.joins

let relations = function
  | Select s -> List.sort_uniq String.compare (select_relations s)
  | Set (_, a, b) ->
      List.sort_uniq String.compare (select_relations a @ select_relations b)
