(** Physical query plans.

    The planner lowers a TP-SQL AST into a tree of physical operators,
    mirroring how the paper's implementation appears inside PostgreSQL's
    executor: scans feed a TP join node (the Overlap → LAWAU → LAWAN
    pipeline with a chosen join algorithm), optionally topped by filter
    and projection nodes. [execute] streams tuples: filters and
    projections are fully pipelined; a join node materializes its inputs
    (the build phase, as a hash join does) and then streams its output
    windows through output formation. *)

module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Prob = Tpdb_lineage.Prob
module Theta = Tpdb_windows.Theta
module Overlap = Tpdb_windows.Overlap

type t =
  | Scan of Relation.t
  | Filter of { description : string; predicate : Tuple.t -> bool; child : t }
  | Project of { columns : int list; schema : Schema.t; child : t }
  | Tp_join of {
      kind : Tpdb_joins.Nj.join_kind;
      algorithm : Overlap.algorithm;
      parallelism : int;
          (** partition count of the domain-parallel sweep; 1 = sequential *)
      sanitize : bool;
          (** run the TPSan window-invariant checks during execution *)
      prob_cache : bool;
          (** memoize output probabilities ({!Tpdb_joins.Nj.options}) *)
      safe_lineage : bool;
          (** statically proven read-once: probabilities go through
              {!Tpdb_lineage.Prob.factorize} with no runtime read-once
              check and no BDD fallback. Set by the planner from the
              safe-plan classification ({!Analyze}); [false] is always
              sound. *)
      mem_budget : int;
          (** out-of-core working-set budget in bytes for this join;
              [0] = not set here, so {!Tpdb_joins.Nj.options}'s
              [TPDB_MEM_BUDGET] fallback still applies *)
      est_rows : (int * int) option;
          (** catalog-statistics cardinalities of (left, right), when both
              inputs are base relations with stats — sizes the spill
              decision without counting the materialized inputs *)
      theta : Theta.t;
      left : t;
      right : t;
    }
  | Distinct_project of { columns : int list; schema : Schema.t; child : t }
      (** duplicate-eliminating TP projection: lineages of coinciding
          tuples are disjoined per time point *)
  | Timeslice of { window : Tpdb_interval.Interval.t; child : t }
      (** AT / DURING: clamp result validity to a window *)
  | Aggregate of {
      group_by : int list;
      spec : Tpdb_setops.Aggregate.spec;
      child : t;
    }  (** sequenced expected-value aggregation *)
  | Sort_limit of {
      description : string;
      compare : Tuple.t -> Tuple.t -> int;
      limit : int option;
      child : t;
    }  (** ORDER BY / LIMIT: blocking *)
  | Set_op of { kind : [ `Union | `Intersect | `Except ]; left : t; right : t }

val schema : t -> Schema.t

val children : t -> t list
(** Direct child subplans, left before right; empty for scans. *)

val fingerprint : t -> string
(** A 16-hex-digit normalized-plan fingerprint: FNV-1a 64 over the
    plan's canonical shape — operators, relation names, column lists, θ,
    join kind and algorithm — excluding the runtime execution knobs
    ([parallelism]/[sanitize]/[prob_cache]/[safe_lineage]), so the same
    optimized plan fingerprints identically however it is run. Stable
    across runs and processes: the query log groups by it, and the
    ROADMAP's prepared-plan cache will key on it. *)

val execute : env:Prob.env -> t -> Tuple.t Seq.t
(** Streams the plan's result. Recomputed on each traversal. *)

val to_relation : env:Prob.env -> t -> Relation.t

val explain : ?annotate:(t -> string) -> t -> string
(** Multi-line tree rendering; join nodes name their algorithm
    ([overlap[hash]] / [overlap[nested loop]]) and θ. [annotate] appends
    a per-node suffix to each line — the CLI renders the cost model's
    [[est rows=… cost=…]] columns this way — and defaults to nothing, so
    plain [explain] output is byte-identical to previous releases. *)

val q_error : est:float -> actual:int -> float
(** [max (est/actual) (actual/est)], both sides floored at one row so
    empty results stay finite. 1.0 is a perfect estimate. *)

val q_error_threshold : float
(** 16.0 — above this, {!analyze} flags the node's estimate as stale. *)

val analyze :
  ?estimate:(t -> float option) -> env:Prob.env -> t -> Relation.t * string
(** EXPLAIN ANALYZE: executes the plan bottom-up, materializing at node
    granularity, and returns the result plus the explain tree annotated
    with per-node output cardinality, exclusive wall time, and — for
    nodes that sweep windows — the per-class window counts
    ([WO]/[WU]/[WN]) read as deltas from the {!Tpdb_obs.Metrics} sink
    (a private sink is installed for the run when the caller has none).
    Wall times are human-scaled ([µs]/[ms]/[s], {!Tpdb_obs.Clock.pp_ms}),
    and a [Distributions:] footer reports n/p50/p90/p99/max for every
    distribution the run touched. With a {!Tpdb_obs.Trace} sink
    installed, every operator also records an [operator]-category span.

    [estimate] supplies the cost model's per-node row estimates
    ({!Cost.rows}); nodes with an estimate additionally get an
    [est=… q=…] column ({!q_error}), and a [cost-q-error] warning line
    is emitted under any node whose q-error exceeds
    {!q_error_threshold}. *)
