exception Parse_error of string

type state = { mutable tokens : Lexer.token list }

let fail msg = raise (Parse_error msg)

let peek st = match st.tokens with [] -> None | t :: _ -> Some t

let advance st =
  match st.tokens with
  | [] -> fail "unexpected end of query"
  | t :: rest ->
      st.tokens <- rest;
      t

let expect_kw st kw =
  match advance st with
  | Lexer.Kw k when String.equal k kw -> ()
  | t -> fail (Printf.sprintf "expected %s, got %s" kw (Lexer.token_string t))

let ident st =
  match advance st with
  | Lexer.Ident i -> i
  | t -> fail (Printf.sprintf "expected identifier, got %s" (Lexer.token_string t))

let comparison_of_op = function
  | "=" -> `Eq
  | "<>" -> `Ne
  | "<" -> `Lt
  | "<=" -> `Le
  | ">" -> `Gt
  | ">=" -> `Ge
  | o -> fail (Printf.sprintf "unknown operator %s" o)

let operand st : Ast.operand =
  match advance st with
  | Lexer.Ident i -> Ast.Column (None, i)
  | Lexer.Qualified (r, c) -> Ast.Column (Some r, c)
  | Lexer.Str s -> Ast.Const (Tpdb_relation.Value.S s)
  | Lexer.Num x -> Ast.Const (Tpdb_relation.Value.of_string_guess x)
  | t -> fail (Printf.sprintf "expected operand, got %s" (Lexer.token_string t))

let allen_of_kw kw =
  Tpdb_interval.Interval.allen_of_name (String.lowercase_ascii kw)

(* One conjunct: either a fact atom (operand OP operand) or a temporal
   predicate (x.T ALLEN y.T). The lexer turns [x.T] into [Qualified
   (x, "T")]; an Allen keyword after the first operand selects the
   temporal form. *)
let conj_element st =
  let lhs = operand st in
  match peek st with
  | Some (Lexer.Kw kw) when allen_of_kw kw <> None ->
      ignore (advance st);
      let rel = Option.get (allen_of_kw kw) in
      let side name = function
        | Ast.Column (Some r, "T") -> r
        | other ->
            fail
              (Printf.sprintf "%s side of %s must be a rel.T reference, got %s"
                 name kw (Ast.operand_string other))
      in
      let t_lhs = side "left" lhs in
      let t_rhs = side "right" (operand st) in
      `Temporal { Ast.t_lhs; t_rel = rel; t_rhs }
  | _ ->
      let op =
        match advance st with
        | Lexer.Op o -> comparison_of_op o
        | t ->
            fail
              (Printf.sprintf "expected comparison, got %s"
                 (Lexer.token_string t))
      in
      let rhs = operand st in
      `Atom { Ast.op; lhs; rhs }

let conj st =
  let rec more acc =
    match peek st with
    | Some (Lexer.Kw "AND") ->
        ignore (advance st);
        more (conj_element st :: acc)
    | _ -> List.rev acc
  in
  let elements = more [ conj_element st ] in
  ( List.filter_map (function `Atom a -> Some a | `Temporal _ -> None) elements,
    List.filter_map
      (function `Temporal ta -> Some ta | `Atom _ -> None)
      elements )

let projection st =
  match peek st with
  | Some Lexer.Star ->
      ignore (advance st);
      None
  | _ ->
      let column () =
        match advance st with
        | Lexer.Ident i -> i
        | Lexer.Qualified (r, c) -> r ^ "." ^ c
        | t ->
            fail (Printf.sprintf "expected column, got %s" (Lexer.token_string t))
      in
      let rec more acc =
        match peek st with
        | Some Lexer.Comma ->
            ignore (advance st);
            more (column () :: acc)
        | _ -> List.rev acc
      in
      Some (more [ column () ])

let join_opt st : Ast.join option =
  let joined ~tpjoin_follows kind =
    ignore (advance st);
    if tpjoin_follows then expect_kw st "TPJOIN";
    let rel = ident st in
    expect_kw st "ON";
    let on, on_temporal = conj st in
    Some { Ast.kind; rel; on; on_temporal }
  in
  match peek st with
  | Some (Lexer.Kw "INNER") -> joined ~tpjoin_follows:true Ast.Inner
  | Some (Lexer.Kw "LEFT") -> joined ~tpjoin_follows:true Ast.Left
  | Some (Lexer.Kw "RIGHT") -> joined ~tpjoin_follows:true Ast.Right
  | Some (Lexer.Kw "FULL") -> joined ~tpjoin_follows:true Ast.Full
  | Some (Lexer.Kw "ANTIJOIN") -> joined ~tpjoin_follows:false Ast.Anti
  | Some (Lexer.Kw "TPJOIN") -> joined ~tpjoin_follows:false Ast.Inner
  | _ -> None

let slice_opt st : Ast.slice option =
  match peek st with
  | Some (Lexer.Kw "AT") -> (
      ignore (advance st);
      match advance st with
      | Lexer.Num x -> (
          match int_of_string_opt x with
          | Some t -> Some (Ast.At t)
          | None -> fail (Printf.sprintf "AT expects an integer, got %s" x))
      | t -> fail (Printf.sprintf "AT expects a time point, got %s" (Lexer.token_string t)))
  | Some (Lexer.Kw "DURING") -> (
      ignore (advance st);
      match advance st with
      | Lexer.Iv (a, b) when a < b -> Some (Ast.During (a, b))
      | Lexer.Iv _ -> fail "DURING expects a non-empty interval"
      | t ->
          fail
            (Printf.sprintf "DURING expects an interval literal, got %s"
               (Lexer.token_string t)))
  | _ -> None

(* COUNT(star), SUM(col), AVG(col) *)
let aggregate_opt st : Ast.aggregate option =
  let parenthesized_column kw =
    (match advance st with
    | Lexer.Lparen -> ()
    | t -> fail (Printf.sprintf "%s expects '(', got %s" kw (Lexer.token_string t)));
    let column =
      match advance st with
      | Lexer.Ident c -> c
      | t -> fail (Printf.sprintf "%s expects a column, got %s" kw (Lexer.token_string t))
    in
    (match advance st with
    | Lexer.Rparen -> ()
    | t -> fail (Printf.sprintf "%s expects ')', got %s" kw (Lexer.token_string t)));
    column
  in
  match peek st with
  | Some (Lexer.Kw "COUNT") ->
      ignore (advance st);
      (match (advance st, advance st, advance st) with
      | Lexer.Lparen, Lexer.Star, Lexer.Rparen -> Some Ast.Count
      | _ -> fail "COUNT expects (*)")
  | Some (Lexer.Kw "SUM") ->
      ignore (advance st);
      Some (Ast.Sum (parenthesized_column "SUM"))
  | Some (Lexer.Kw "AVG") ->
      ignore (advance st);
      Some (Ast.Avg (parenthesized_column "AVG"))
  | _ -> None

let group_by_opt st =
  match peek st with
  | Some (Lexer.Kw "GROUP") ->
      ignore (advance st);
      expect_kw st "BY";
      let rec more acc =
        match peek st with
        | Some Lexer.Comma ->
            ignore (advance st);
            more (ident st :: acc)
        | _ -> List.rev acc
      in
      more [ ident st ]
  | _ -> []

let order_by_opt st =
  match peek st with
  | Some (Lexer.Kw "ORDER") ->
      ignore (advance st);
      expect_kw st "BY";
      let key =
        match advance st with
        | Lexer.Ident "p" -> Ast.By_probability
        | Lexer.Ident "ts" -> Ast.By_start
        | Lexer.Ident c -> Ast.By_column c
        | Lexer.Qualified (r, c) -> Ast.By_column (r ^ "." ^ c)
        | t ->
            fail (Printf.sprintf "ORDER BY expects a key, got %s"
                    (Lexer.token_string t))
      in
      let direction =
        match peek st with
        | Some (Lexer.Kw "ASC") ->
            ignore (advance st);
            Ast.Asc
        | Some (Lexer.Kw "DESC") ->
            ignore (advance st);
            Ast.Desc
        | _ -> Ast.Asc
      in
      Some (key, direction)
  | _ -> None

let limit_opt st =
  match peek st with
  | Some (Lexer.Kw "LIMIT") -> (
      ignore (advance st);
      match advance st with
      | Lexer.Num x -> (
          match int_of_string_opt x with
          | Some n when n >= 0 -> Some n
          | _ -> fail (Printf.sprintf "LIMIT expects a non-negative integer, got %s" x))
      | t -> fail (Printf.sprintf "LIMIT expects a number, got %s" (Lexer.token_string t)))
  | _ -> None

let select st : Ast.select =
  expect_kw st "SELECT";
  let distinct =
    match peek st with
    | Some (Lexer.Kw "DISTINCT") ->
        ignore (advance st);
        true
    | _ -> false
  in
  let aggregate = aggregate_opt st in
  let projection =
    match aggregate with
    | Some _ ->
        if distinct then fail "DISTINCT cannot combine with an aggregate";
        None
    | None -> projection st
  in
  expect_kw st "FROM";
  let from = ident st in
  let rec joins acc =
    match join_opt st with Some j -> joins (j :: acc) | None -> List.rev acc
  in
  let joins = joins [] in
  let where, where_temporal =
    match peek st with
    | Some (Lexer.Kw "WHERE") ->
        ignore (advance st);
        conj st
    | _ -> ([], [])
  in
  let group_by = group_by_opt st in
  if group_by <> [] && aggregate = None then
    fail "GROUP BY requires an aggregate (COUNT/SUM/AVG)";
  let slice = slice_opt st in
  let order_by = order_by_opt st in
  let limit = limit_opt st in
  {
    Ast.distinct;
    projection;
    aggregate;
    group_by;
    from;
    joins;
    where;
    where_temporal;
    slice;
    order_by;
    limit;
  }

let parse input =
  let st = { tokens = Lexer.tokenize input } in
  let first = select st in
  let result =
    match peek st with
    | Some (Lexer.Kw "UNION") ->
        ignore (advance st);
        Ast.Set (Ast.Union, first, select st)
    | Some (Lexer.Kw "INTERSECT") ->
        ignore (advance st);
        Ast.Set (Ast.Intersect, first, select st)
    | Some (Lexer.Kw "EXCEPT") ->
        ignore (advance st);
        Ast.Set (Ast.Except, first, select st)
    | _ -> Ast.Select first
  in
  (match peek st with
  | None -> ()
  | Some t -> fail (Printf.sprintf "trailing input at %s" (Lexer.token_string t)));
  result
