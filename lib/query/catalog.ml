module Relation = Tpdb_relation.Relation
module Prob = Tpdb_lineage.Prob

type t = {
  relations : (string, Relation.t) Hashtbl.t;
  stats : (string, Stats.t) Hashtbl.t;  (* memo, invalidated per name *)
  mutable stats_dir : string option;
  versions : (string, int) Hashtbl.t;  (* bumped on every register *)
  mutable generation : int;  (* bumped on any register *)
}

let create () =
  {
    relations = Hashtbl.create 16;
    stats = Hashtbl.create 16;
    stats_dir = None;
    versions = Hashtbl.create 16;
    generation = 0;
  }

let register t r =
  let name = Relation.name r in
  Hashtbl.replace t.relations name r;
  (* the data changed; any memoized statistics are stale *)
  Hashtbl.remove t.stats name;
  t.generation <- t.generation + 1;
  Hashtbl.replace t.versions name
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.versions name))

let version t name = Option.value ~default:0 (Hashtbl.find_opt t.versions name)
let generation t = t.generation

(* Relations are immutable values, so a snapshot only needs to copy the
   tables, not the data: O(names), and the copy shares every relation
   with the original until either side re-registers a name. *)
let copy t =
  {
    relations = Hashtbl.copy t.relations;
    stats = Hashtbl.copy t.stats;
    stats_dir = t.stats_dir;
    versions = Hashtbl.copy t.versions;
    generation = t.generation;
  }

let find t name = Hashtbl.find_opt t.relations name

let find_exn t name =
  match find t name with Some r -> r | None -> raise Not_found

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.relations []
  |> List.sort String.compare

let env t =
  let relations = Hashtbl.fold (fun _ r acc -> r :: acc) t.relations [] in
  Relation.prob_env relations

let set_stats_dir t dir = t.stats_dir <- Some dir

(* Resolution order: memo, then a persisted [<dir>/<name>.stats] matching
   the registered relation's name, then fresh computation from the data.
   A persisted file whose [relation] field disagrees with its file name
   (or that fails to parse) is ignored rather than trusted.

   Persisted files serve cost estimation only. The safety-critical flags
   ([duplicate_free], [lineage_safe]) let the safe-plan tag route
   probability computation around the runtime read-once check, so they
   are always recomputed from the registered relation — a file written
   before the data changed must not vouch for it. A file that disagrees
   with the live data on cardinality or hull is discarded as stale
   outright, and one for an unregistered name keeps its cost fields but
   has both safety flags forced off (nothing to validate against). *)
let stats t name =
  match Hashtbl.find_opt t.stats name with
  | Some s -> Some s
  | None ->
      let live = find t name in
      let loaded =
        match t.stats_dir with
        | None -> None
        | Some dir -> (
            let path = Stats.file ~dir name in
            if Sys.file_exists path then
              match Stats.load path with
              | Ok s when s.Stats.relation = name -> Some s
              | Ok _ | Error _ -> None
            else None)
      in
      let computed =
        match (loaded, live) with
        | Some s, Some r ->
            if Stats.describes s r then Some (Stats.refresh_safety s r)
            else Some (Stats.of_relation r)
        | Some s, None ->
            Some { s with Stats.duplicate_free = false; lineage_safe = false }
        | None, Some r -> Some (Stats.of_relation r)
        | None, None -> None
      in
      Option.iter (Hashtbl.replace t.stats name) computed;
      computed
