(** Named relations available to queries, with the probability environment
    of all their base variables. *)

module Relation = Tpdb_relation.Relation
module Prob = Tpdb_lineage.Prob

type t

val create : unit -> t

val register : t -> Relation.t -> unit
(** Keyed by {!Relation.name}; re-registering a name replaces it. *)

val find : t -> string -> Relation.t option
val find_exn : t -> string -> Relation.t
(** Raises [Not_found]. *)

val names : t -> string list
(** Sorted. *)

val env : t -> Prob.env
(** Marginals of every base variable of every registered relation. *)

val set_stats_dir : t -> string -> unit
(** Directory where persisted statistics ([<name>.stats], written by
    [tpdb_cli stats]) are looked up before computing fresh ones. *)

val stats : t -> string -> Stats.t option
(** Statistics for a registered relation, memoized per catalog:
    resolution order is memo → persisted file in the stats directory
    (ignored if unparseable or describing a different relation) → fresh
    {!Stats.of_relation} on the registered data. [None] only for names
    that are not registered and have no stats file. {!register}
    invalidates the memo for that name.

    Persisted files are advisory (cost estimation) only: the
    safety-critical [duplicate_free]/[lineage_safe] flags are always
    recomputed from the registered relation ({!Stats.refresh_safety});
    a file that disagrees with the live data on cardinality or hull is
    discarded as stale, and a file for an unregistered name has both
    safety flags forced off. *)
