(** Named relations available to queries, with the probability environment
    of all their base variables. *)

module Relation = Tpdb_relation.Relation
module Prob = Tpdb_lineage.Prob

type t

val create : unit -> t

val register : t -> Relation.t -> unit
(** Keyed by {!Relation.name}; re-registering a name replaces it and
    bumps both the name's {!version} and the catalog {!generation}. *)

val version : t -> string -> int
(** How many times this name has been registered (0 = never). A cached
    plan or result keyed on the versions of the relations it read is
    valid exactly while every one of those versions is unchanged. *)

val generation : t -> int
(** Total number of registrations; bumps whenever anything changes. *)

val copy : t -> t
(** A copy-on-write snapshot: O(number of names), sharing the immutable
    relation values. Mutations on either side ({!register},
    {!set_stats_dir}) never show through to the other. *)

val find : t -> string -> Relation.t option
val find_exn : t -> string -> Relation.t
(** Raises [Not_found]. *)

val names : t -> string list
(** Sorted. *)

val env : t -> Prob.env
(** Marginals of every base variable of every registered relation. *)

val set_stats_dir : t -> string -> unit
(** Directory where persisted statistics ([<name>.stats], written by
    [tpdb_cli stats]) are looked up before computing fresh ones. *)

val stats : t -> string -> Stats.t option
(** Statistics for a registered relation, memoized per catalog:
    resolution order is memo → persisted file in the stats directory
    (ignored if unparseable or describing a different relation) → fresh
    {!Stats.of_relation} on the registered data. [None] only for names
    that are not registered and have no stats file. {!register}
    invalidates the memo for that name.

    Persisted files are advisory (cost estimation) only: the
    safety-critical [duplicate_free]/[lineage_safe] flags are always
    recomputed from the registered relation ({!Stats.refresh_safety});
    a file that disagrees with the live data on cardinality or hull is
    discarded as stale, and a file for an unregistered name has both
    safety flags forced off. *)
