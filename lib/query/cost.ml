module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Interval = Tpdb_interval.Interval
module Theta = Tpdb_windows.Theta
module Nj = Tpdb_joins.Nj

type estimate = {
  rows : float;
  distinct : int array;
  sample : (int * int) array;
  cost : float;
}

(* Plans contain closures (filter predicates, sort comparators), so the
   estimate table is an assoc list keyed on node physical identity — a
   plan has tens of nodes, not thousands. *)
type t = { entries : (Physical.t * estimate) list; root : estimate }

let find t node =
  List.find_map (fun (n, e) -> if n == node then Some e else None) t.entries

let rows t node = Option.map (fun e -> e.rows) (find t node)
let root t = t.root

(* Unknown-predicate selectivity, the textbook fallback. *)
let third = 1.0 /. 3.0

(* Cap for sample pair counting: 64×64 pairs bounds the work while a
   systematic 64-element sub-sample of the ≤256-element sample keeps the
   spread. *)
let pair_cap = 64

let sub_sample a =
  let n = Array.length a in
  if n <= pair_cap then a
  else
    let stride = (n + pair_cap - 1) / pair_cap in
    Array.init ((n + stride - 1) / stride) (fun i -> a.(i * stride))

let temporal_selectivity theta left right =
  if Array.length left = 0 || Array.length right = 0 then 0.5
  else begin
    let left = sub_sample left and right = sub_sample right in
    let hits = ref 0 in
    Array.iter
      (fun (lts, lte) ->
        let liv = Interval.make lts lte in
        Array.iter
          (fun (rts, rte) ->
            let riv = Interval.make rts rte in
            if Theta.temporal_matches theta liv riv && Interval.overlaps liv riv
            then incr hits)
          right)
      left;
    float_of_int !hits /. float_of_int (Array.length left * Array.length right)
  end

let distinct_at distinct col =
  if col >= 0 && col < Array.length distinct then max 1 distinct.(col) else 1

(* Selectivity of θ's attribute atoms given the two sides' distinct
   counts: 1/max(distinct) per equality, 1/3 per anything else. *)
let atom_selectivity ~left_distinct ~right_distinct theta =
  List.fold_left
    (fun sel atom ->
      sel
      *.
      match (atom : Theta.atom) with
      | Theta.Cols (`Eq, i, j) ->
          1.0
          /. float_of_int
               (max (distinct_at left_distinct i) (distinct_at right_distinct j))
      | Theta.Left_const (`Eq, i, _) ->
          1.0 /. float_of_int (distinct_at left_distinct i)
      | Theta.Right_const (`Eq, j, _) ->
          1.0 /. float_of_int (distinct_at right_distinct j)
      | Theta.Cols _ | Theta.Left_const _ | Theta.Right_const _ -> third)
    1.0 (Theta.atoms theta)

let scale_distinct factor distinct =
  Array.map
    (fun d -> max 1 (int_of_float (ceil (float_of_int d *. Float.min 1.0 factor))))
    distinct

let take_sample n a =
  if Array.length a <= n then a else Array.sub a 0 n

let of_stats (s : Stats.t) =
  {
    rows = float_of_int s.Stats.cardinality;
    distinct = s.Stats.distinct;
    sample = s.Stats.sample;
    cost = float_of_int s.Stats.cardinality;
  }

let join_sample kind left right =
  (* WO output intervals are pairwise intersections; outer/anti outputs
     additionally keep (pieces of) left/right input intervals. Sampling
     the intersections of positionally paired sample entries is enough
     signal for parents. *)
  let isect =
    let n = min (Array.length left) (Array.length right) in
    Array.to_list
      (Array.init n (fun i ->
           let lts, lte = left.(i) and rts, rte = right.(i) in
           (max lts rts, min lte rte)))
    |> List.filter (fun (ts, te) -> ts < te)
    |> Array.of_list
  in
  let keep_left =
    match (kind : Nj.join_kind) with
    | Inner -> [||]
    | Anti | Left | Full -> left
    | Right -> [||]
  in
  let keep_right =
    match (kind : Nj.join_kind) with Right | Full -> right | _ -> [||]
  in
  take_sample Stats.sample_size (Array.concat [ isect; keep_left; keep_right ])

let of_plan ~stats plan =
  let entries = ref [] in
  let rec go node =
    let e =
      match (node : Physical.t) with
      | Scan r ->
          let s =
            match stats (Relation.name r) with
            | Some s -> s
            (* No stats file: compute from the scanned relation itself.
               Exact (the scan holds the data) and cheap at CLI scale;
               persisted stats exist to skip this for large catalogs. *)
            | None -> Stats.of_relation r
          in
          of_stats s
      | Filter { child; _ } ->
          let c = go child in
          let rows = c.rows *. third in
          {
            rows;
            distinct = scale_distinct third c.distinct;
            sample = c.sample;
            cost = c.cost +. c.rows;
          }
      | Timeslice { window; child } ->
          let c = go child in
          let sel =
            if Array.length c.sample = 0 then 1.0
            else
              let hits =
                Array.fold_left
                  (fun n (ts, te) ->
                    if ts < Interval.te window && Interval.ts window < te then
                      n + 1
                    else n)
                  0 c.sample
              in
              float_of_int hits /. float_of_int (Array.length c.sample)
          in
          let sample =
            Array.to_list c.sample
            |> List.filter_map (fun (ts, te) ->
                   let ts = max ts (Interval.ts window)
                   and te = min te (Interval.te window) in
                   if ts < te then Some (ts, te) else None)
            |> Array.of_list
          in
          {
            rows = c.rows *. sel;
            distinct = scale_distinct sel c.distinct;
            sample;
            cost = c.cost +. c.rows;
          }
      | Project { columns; child; _ } ->
          let c = go child in
          {
            c with
            distinct =
              Array.of_list (List.map (distinct_at c.distinct) columns);
            cost = c.cost +. c.rows;
          }
      | Distinct_project { columns; child; _ } ->
          let c = go child in
          let distinct =
            Array.of_list (List.map (distinct_at c.distinct) columns)
          in
          let groups =
            Array.fold_left
              (fun acc d -> Float.min c.rows (acc *. float_of_int d))
              1.0 distinct
          in
          { rows = groups; distinct; sample = c.sample; cost = c.cost +. c.rows }
      | Aggregate { group_by; child; _ } ->
          let c = go child in
          let group_distinct = List.map (distinct_at c.distinct) group_by in
          let groups =
            List.fold_left
              (fun acc d -> Float.min c.rows (acc *. float_of_int d))
              1.0 group_distinct
          in
          let schema = Physical.schema node in
          (* group-by columns keep their distinct counts; the appended
             aggregate column is unknown — call it [groups]. *)
          let distinct =
            Array.init (Schema.arity schema) (fun i ->
                match List.nth_opt group_distinct i with
                | Some d -> d
                | None -> max 1 (int_of_float groups))
          in
          { rows = groups; distinct; sample = c.sample; cost = c.cost +. c.rows }
      | Sort_limit { limit; child; _ } ->
          let c = go child in
          let rows =
            match limit with
            | None -> c.rows
            | Some n -> Float.min c.rows (float_of_int n)
          in
          let sel = if c.rows > 0.0 then rows /. c.rows else 1.0 in
          {
            rows;
            distinct = scale_distinct sel c.distinct;
            sample = c.sample;
            cost = c.cost +. (c.rows *. log (c.rows +. 2.0));
          }
      | Tp_join { kind; theta; left; right; _ } ->
          let l = go left and r = go right in
          let pairs =
            l.rows *. r.rows
            *. atom_selectivity ~left_distinct:l.distinct
                 ~right_distinct:r.distinct theta
            *. temporal_selectivity theta l.sample r.sample
          in
          let rows =
            match (kind : Nj.join_kind) with
            | Inner -> pairs
            | Left -> pairs +. l.rows
            | Right -> pairs +. r.rows
            | Full -> pairs +. l.rows +. r.rows
            | Anti -> l.rows
          in
          let distinct =
            match (kind : Nj.join_kind) with
            | Anti -> l.distinct
            | Inner | Left | Right | Full -> Array.append l.distinct r.distinct
          in
          {
            rows;
            distinct;
            sample = join_sample kind l.sample r.sample;
            cost = l.cost +. r.cost +. l.rows +. r.rows +. pairs;
          }
      | Set_op { kind; left; right } ->
          let l = go left and r = go right in
          let rows =
            match kind with
            | `Union -> l.rows +. r.rows
            | `Intersect -> Float.min l.rows r.rows
            | `Except -> l.rows
          in
          {
            rows;
            distinct = l.distinct;
            sample =
              take_sample Stats.sample_size (Array.append l.sample r.sample);
            cost = l.cost +. r.cost +. l.rows +. r.rows;
          }
    in
    entries := (node, e) :: !entries;
    e
  in
  let root = go plan in
  { entries = !entries; root }

let annotate t node =
  match find t node with
  | None -> ""
  | Some e -> Printf.sprintf " [est rows=%.0f cost=%.0f]" e.rows e.cost
