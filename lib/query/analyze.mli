(** Static analysis of physical plans — the front half of TPSan.

    [check] walks a planned tree once, bottom-up, inferring a column
    type per output position of every node (sampled from the scanned
    relations and propagated through projections, joins and set
    operations) and checking every θ against the inferred types:

    - {b errors} — conditions that can never behave as written: a column
      reference out of range for its side, a comparison between a text
      column and a numeric column or constant, a comparison against
      NULL (never matches under SQL semantics), and a set of constant
      constraints on one column that no value satisfies;
    - {b warnings} — legal but suspicious shapes: a θ with no atoms at
      all (cartesian product over the overlap relation), a join that
      silently falls back to the sequential sweep despite
      [parallelism > 1] (no equality atom to shard on), a duplicated
      atom, and a plain projection that drops the join key of the join
      below it (coinciding facts then reach downstream operators that
      assume duplicate-free inputs — [SELECT DISTINCT] disjoins their
      lineages instead).

    Diagnostics carry the path from the plan root to the offending node,
    so [tpdb_cli check] and [explain] can point at the node. *)

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  code : string;  (** stable kebab-case identifier, e.g. ["type-mismatch"] *)
  path : string;  (** plan-node path from the root, [" > "]-separated *)
  message : string;
}

val diagnostic :
  severity:severity -> code:string -> ?path:string -> string -> diagnostic
(** Build a diagnostic outside the analyzer — the CLI uses this to
    report planning and loading failures through the same renderer.
    [path] defaults to ["-"]. *)

val check : Physical.t -> diagnostic list
(** All diagnostics of the tree, in bottom-up execution order (a node's
    children report before the node itself). *)

val errors : diagnostic list -> diagnostic list
(** The [Error]-severity subset. *)

val to_string : diagnostic -> string
(** ["severity[code] at path: message"]. *)

val report : diagnostic list -> string
(** One {!to_string} line per diagnostic. *)

val diagnostic_of_exn : exn -> diagnostic option
(** Maps the library's typed failures — {!Tpdb_relation.Csv.Error},
    {!Tpdb_relation.Value.Type_error},
    {!Tpdb_windows.Invariant.Violation},
    {!Tpdb_lineage.Prob.Unbound_variable},
    {!Tpdb_lineage.Prob.Vanishing_evidence} — onto diagnostics, so the
    CLI renders load-time and run-time failures like static ones.
    Returns [None] for other exceptions. *)
