(** Static analysis of physical plans — the front half of TPSan.

    [check] walks a planned tree once, bottom-up, inferring a column
    type per output position of every node (sampled from the scanned
    relations and propagated through projections, joins and set
    operations) and checking every θ against the inferred types:

    - {b errors} — conditions that can never behave as written: a column
      reference out of range for its side, a comparison between a text
      column and a numeric column or constant, a comparison against
      NULL (never matches under SQL semantics), and a set of constant
      constraints on one column that no value satisfies;
    - {b warnings} — legal but suspicious shapes: a θ with no atoms at
      all (cartesian product over the overlap relation), a join that
      silently falls back to the sequential sweep despite
      [parallelism > 1] (no equality atom to shard on), a duplicated
      atom, and a plain projection that drops the join key of the join
      below it (coinciding facts then reach downstream operators that
      assume duplicate-free inputs — [SELECT DISTINCT] disjoins their
      lineages instead).

    Diagnostics carry the path from the plan root to the offending node,
    so [tpdb_cli check] and [explain] can point at the node.

    {2 Deep passes}

    [check_deep] ([tpdb_cli check --deep]) layers statistics-driven
    passes on top: a bottom-up abstract interpretation over a
    temporal-bounds domain and a probability-range [[lo, hi]] domain
    (reported as {b notes}, with provable emptiness and all-zero
    probabilities flagged), a static {e safe-plan} classification
    deciding from plan shape and per-relation statistics whether every
    output lineage is read-once, and dry runs of the planner rewrites
    ({!simplify_thetas}, {!prune_empty}) reporting what they would fold
    or prune. The planner applies the rewrites for real via {!optimize}
    and tags provably safe joins ({!tag_safe}) so probability
    computation skips the runtime read-once check
    ({!Tpdb_lineage.Prob.factorize}). *)

type severity = Error | Warning | Note

type diagnostic = {
  severity : severity;
  code : string;  (** stable kebab-case identifier, e.g. ["type-mismatch"] *)
  path : string;  (** plan-node path from the root, [" > "]-separated *)
  message : string;
}

val diagnostic :
  severity:severity -> code:string -> ?path:string -> string -> diagnostic
(** Build a diagnostic outside the analyzer — the CLI uses this to
    report planning and loading failures through the same renderer.
    [path] defaults to ["-"]. *)

val check : Physical.t -> diagnostic list
(** All diagnostics of the tree, in bottom-up execution order (a node's
    children report before the node itself). *)

val check_deep :
  ?stats:(string -> Stats.t option) -> Physical.t -> diagnostic list
(** {!check} plus the deep passes: θ-fold and empty-subplan notes (dry
    runs of {!simplify_thetas} and {!prune_empty} — on a plan the
    planner already optimized they find nothing new), the safe-plan
    classification report ([safe-plan] notes / [hard-plan] warnings),
    and the root abstract-interpretation bounds ([plan-bounds] note,
    [zero-probability] warning). [stats] resolves relation names to
    statistics (pass {!Catalog.stats}); scans without stats compute
    fresh ones from the data. Records the [analysis_deep_passes]
    counter and the [analysis_ns] distribution. *)

val codes : (string * severity * string) list
(** Every stable diagnostic code with its default severity and a
    one-line description — the contract behind [check --format json].
    Codes are stable identifiers; messages are prose that may change. *)

val to_json : diagnostic list -> string
(** JSON array of [{"severity", "code", "path", "message"}] objects
    ([tpdb_cli check --format json]). *)

val severity_name : severity -> string
(** ["error"], ["warning"], ["note"]. *)

(** {2 Planner rewrites} *)

val simplify_thetas : Physical.t -> Physical.t * diagnostic list
(** Folds redundant θ conjuncts of every join via
    {!Tpdb_windows.Theta.simplify}, returning the rewritten plan and a
    [theta-fold] note per changed join. Records [analysis_folded_atoms]. *)

val prune_empty : Physical.t -> Physical.t * (Physical.t * diagnostic) list
(** Replaces provably-empty subplans (empty preserved side, disjoint
    temporal hulls, a disjoint Allen θ on an inner join, a timeslice
    outside the input's hull) with an empty scan carrying a
    [pruned:]-prefixed schema name. Returns the rewritten plan and, per
    prune, the {e original} subplan (so tests can execute it and verify
    it really yields no rows) with its [pruned-empty] note. Records
    [analysis_pruned_subplans]. *)

val read_once_safe :
  ?stats:(string -> Stats.t option) -> Physical.t -> bool
(** The static safe-plan classification: [true] when every output
    lineage of the subtree is provably read-once — the subtree uses
    only lineage-preserving operators over duplicate-free base scans
    with distinct bare-variable lineages, sides negated several-at-a-time
    are scan-like, and the base relations of the two sides of every
    join are disjoint. [false] is always sound (the runtime check stays
    on). *)

val tag_safe :
  ?stats:(string -> Stats.t option) -> Physical.t -> Physical.t * int
(** Sets [safe_lineage] on every join {!read_once_safe} proves safe,
    returning the count of newly tagged joins. Records
    [analysis_safe_joins]. *)

val optimize :
  ?stats:(string -> Stats.t option) ->
  Physical.t ->
  Physical.t * diagnostic list
(** The planner's rewrite pipeline: {!simplify_thetas}, then
    {!prune_empty}, then {!tag_safe}. The returned notes describe the
    applied θ-folds and prunes (tagging is visible on the plan itself). *)

val errors : diagnostic list -> diagnostic list
(** The [Error]-severity subset. *)

val to_string : diagnostic -> string
(** ["severity[code] at path: message"]. *)

val report : diagnostic list -> string
(** One {!to_string} line per diagnostic. *)

val diagnostic_of_exn : exn -> diagnostic option
(** Maps the library's typed failures — {!Tpdb_relation.Csv.Error},
    {!Tpdb_relation.Value.Type_error},
    {!Tpdb_windows.Invariant.Violation},
    {!Tpdb_lineage.Prob.Unbound_variable},
    {!Tpdb_lineage.Prob.Vanishing_evidence} — onto diagnostics, so the
    CLI renders load-time and run-time failures like static ones.
    Returns [None] for other exceptions. *)
