module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Value = Tpdb_relation.Value
module Interval = Tpdb_interval.Interval
module Theta = Tpdb_windows.Theta
module Nj = Tpdb_joins.Nj

exception Plan_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Plan_error msg)) fmt

type t = {
  plan : Physical.t;  (* optimized: θ-folded, pruned, safe-tagged *)
  raw : Physical.t;
      (* as lowered (post-reorder, pre-rewrite): what [check] analyzes,
         so diagnostics describe the query as written even when a
         rewrite folds the offending construct away; [check] prepends
         [reorder_notes] so a path through a reordered chain is
         explainable *)
  env : Tpdb_lineage.Prob.env;
  reorder_notes : Analyze.diagnostic list;
  rewrite_notes : Analyze.diagnostic list;
  stats : string -> Stats.t option;
  mutable cost : Cost.t option;  (* estimates, computed on first use *)
}

type side = L of int | R of int

(* In a join chain the left side is a composite whose clashing columns are
   qualified ("a.Loc"); a qualified reference therefore matches the left
   side either through the schema name (base relation) or through the
   qualified column name itself, falling back to the bare name. *)
let resolve_side ~left ~right (qualifier, column) =
  let in_schema schema name = Schema.column_index schema name in
  match qualifier with
  | Some q ->
      let left_hit =
        if String.equal q (Schema.name left) then in_schema left column
        else in_schema left (q ^ "." ^ column)
      in
      let right_hit =
        if String.equal q (Schema.name right) then in_schema right column
        else None
      in
      (match (left_hit, right_hit) with
      | Some i, None -> L i
      | None, Some j -> R j
      | Some _, Some _ -> fail "ambiguous column %s.%s" q column
      | None, None -> (
          (* Deep constituent of the composite left side whose column
             stayed unqualified (no name clash). *)
          match in_schema left column with
          | Some i -> L i
          | None -> fail "unknown column %s.%s" q column))
  | None -> (
      match (in_schema left column, in_schema right column) with
      | Some i, None -> L i
      | None, Some j -> R j
      | Some _, Some _ -> fail "ambiguous column %s" column
      | None, None -> fail "unknown column %s" column)

let swap_op : Ast.comparison -> Theta.op = function
  | `Eq -> `Eq
  | `Ne -> `Ne
  | `Lt -> `Gt
  | `Le -> `Ge
  | `Gt -> `Lt
  | `Ge -> `Le

let theta_atom ~left ~right (atom : Ast.atom) =
  let side = function
    | Ast.Column (q, c) -> `Col (resolve_side ~left ~right (q, c))
    | Ast.Const v -> `Const v
  in
  match (side atom.lhs, side atom.rhs) with
  | `Col (L i), `Col (R j) -> Theta.Cols ((atom.op :> Theta.op), i, j)
  | `Col (R j), `Col (L i) -> Theta.Cols (swap_op atom.op, i, j)
  | `Col (L i), `Const v -> Theta.Left_const ((atom.op :> Theta.op), i, v)
  | `Col (R j), `Const v -> Theta.Right_const ((atom.op :> Theta.op), j, v)
  | `Const v, `Col (L i) -> Theta.Left_const (swap_op atom.op, i, v)
  | `Const v, `Col (R j) -> Theta.Right_const (swap_op atom.op, j, v)
  | `Col (L _), `Col (L _) | `Col (R _), `Col (R _) ->
      fail "condition %s does not relate the two relations"
        (Ast.atom_string atom)
  | `Const _, `Const _ ->
      fail "constant-only condition %s" (Ast.atom_string atom)

(* WHERE predicates run over the output schema; qualified references use
   the qualified column names Schema.join produces ("a.Loc"). *)
let where_predicate schema atoms =
  let resolve = function
    | Ast.Column (q, c) ->
        let name = match q with Some q -> q ^ "." ^ c | None -> c in
        let index =
          match Schema.column_index schema name with
          | Some i -> Some i
          | None -> Schema.column_index schema c
        in
        (match index with
        | Some i -> `Col i
        | None -> fail "unknown column %s in WHERE" name)
    | Ast.Const v -> `Const v
  in
  let compiled =
    List.map (fun (a : Ast.atom) -> (a.op, resolve a.lhs, resolve a.rhs)) atoms
  in
  fun tuple ->
    let fact = Tuple.fact tuple in
    let value = function `Col i -> Fact.get fact i | `Const v -> v in
    List.for_all
      (fun (op, lhs, rhs) ->
        let a = value lhs and b = value rhs in
        if Value.is_null a || Value.is_null b then false
        else
          let c = Value.compare a b in
          match op with
          | `Eq -> c = 0
          | `Ne -> c <> 0
          | `Lt -> c < 0
          | `Le -> c <= 0
          | `Gt -> c > 0
          | `Ge -> c >= 0)
      compiled

let projection_indices schema columns =
  List.map
    (fun name ->
      match Schema.column_index schema name with
      | Some i -> i
      | None -> fail "unknown column %s in SELECT" name)
    columns

(* A temporal predicate x.T REL y.T resolves at the join whose right
   side is one of the named relations and whose accumulated left chain
   contains the other; when the right side is the predicate's LEFT
   operand the relation is inverted ([s.T AFTER r.T] seen from [r] is
   BEFORE). *)
let resolve_temporal ~left_names ~right_name (ta : Ast.temporal_atom) =
  if String.equal ta.t_lhs ta.t_rhs then
    fail "temporal predicate %s relates a relation to itself"
      (Ast.temporal_atom_string ta);
  let in_left name = List.exists (String.equal name) left_names in
  if in_left ta.t_lhs && String.equal ta.t_rhs right_name then Some ta.t_rel
  else if String.equal ta.t_lhs right_name && in_left ta.t_rhs then
    Some (Interval.allen_inverse ta.t_rel)
  else None

let join_kind : Ast.join_kind -> Nj.join_kind = function
  | Ast.Inner -> Nj.Inner
  | Ast.Left -> Nj.Left
  | Ast.Right -> Nj.Right
  | Ast.Full -> Nj.Full
  | Ast.Anti -> Nj.Anti

(* Catalog cardinalities of both join inputs, for the out-of-core spill
   decision: only base-relation scans with persisted statistics count —
   a composite left side would need the cost model's output estimate,
   and the executor's live counting covers that case anyway. *)
let join_est_rows catalog left right =
  let rows = function
    | Physical.Scan r -> (
        match Catalog.stats catalog (Relation.name r) with
        | Some s -> Some s.Stats.cardinality
        | None -> None)
    | _ -> None
  in
  match (rows left, rows right) with
  | Some l, Some r -> Some (l, r)
  | _ -> None

let plan_select ~parallelism ~sanitize ~prob_cache ~mem_budget catalog
    (s : Ast.select) : Physical.t =
  let lookup name =
    match Catalog.find catalog name with
    | Some r -> r
    | None -> fail "unknown relation %s" name
  in
  let base, _, leftover_temporals =
    (* Left-deep chain in source order. Every join runs on the flat
       struct-of-arrays sweep core, which hash-partitions on an equality
       atom itself and degrades to the single-bucket probe otherwise —
       the same split the legacy hash/nested-loop pair used to make.
       WHERE-level temporal predicates are folded into the join whose
       sides they name. *)
    List.fold_left
      (fun (acc, left_names, pending) (j : Ast.join) ->
        let right = lookup j.rel in
        let theta =
          Theta.of_atoms
            (List.map
               (theta_atom ~left:(Physical.schema acc)
                  ~right:(Relation.schema right))
               j.on)
        in
        let resolved, pending =
          List.partition_map
            (fun ta ->
              match resolve_temporal ~left_names ~right_name:j.rel ta with
              | Some rel -> Either.Left rel
              | None -> Either.Right ta)
            (j.on_temporal @ pending)
        in
        let allen_compare a b =
          String.compare (Interval.allen_name a) (Interval.allen_name b)
        in
        let theta =
          match List.sort_uniq allen_compare resolved with
          | [] -> theta
          | [ rel ] -> Theta.with_temporal (`Allen rel) theta
          | _ :: _ :: _ ->
              fail "join with %s has more than one temporal predicate" j.rel
        in
        let algorithm : Tpdb_windows.Overlap.algorithm = `Flat in
        let right = Physical.Scan right in
        ( Physical.Tp_join
            {
              kind = join_kind j.kind;
              algorithm;
              parallelism;
              sanitize;
              prob_cache;
              safe_lineage = false;
              mem_budget;
              est_rows = join_est_rows catalog acc right;
              theta;
              left = acc;
              right;
            },
          j.rel :: left_names,
          pending ))
      (Physical.Scan (lookup s.from), [ s.from ], s.where_temporal)
      s.joins
  in
  (match leftover_temporals with
  | [] -> ()
  | ta :: _ ->
      fail "temporal predicate %s does not match any join's sides"
        (Ast.temporal_atom_string ta));
  let with_where =
    match s.where with
    | [] -> base
    | atoms ->
        Physical.Filter
          {
            description = Ast.conj_string atoms;
            predicate = where_predicate (Physical.schema base) atoms;
            child = base;
          }
  in
  let with_slice =
    match s.slice with
    | None -> with_where
    | Some (Ast.At t) ->
        Physical.Timeslice { window = Interval.make t (t + 1); child = with_where }
    | Some (Ast.During (a, b)) ->
        if a >= b then fail "DURING window [%d,%d) is empty" a b;
        Physical.Timeslice { window = Interval.make a b; child = with_where }
  in
  let child_schema = Physical.schema with_slice in
  let projected_schema columns =
    try Schema.make ~name:(Schema.name child_schema) columns
    with Invalid_argument msg -> fail "bad projection: %s" msg
  in
  let column_index name =
    match Schema.column_index child_schema name with
    | Some i -> i
    | None -> fail "unknown column %s" name
  in
  let with_order_limit plan =
    match (s.order_by, s.limit) with
    | None, None -> plan
    | order, _ ->
        let plan_schema = Physical.schema plan in
        let key_compare =
          match order with
          | None -> fun _ _ -> 0
          | Some (key, direction) ->
              let base =
                match key with
                | Ast.By_probability ->
                    fun a b -> Float.compare (Tuple.p a) (Tuple.p b)
                | Ast.By_start ->
                    fun a b ->
                      Interval.compare_start (Tuple.iv a) (Tuple.iv b)
                | Ast.By_column name -> (
                    match Schema.column_index plan_schema name with
                    | Some i ->
                        fun a b ->
                          Value.compare
                            (Fact.get (Tuple.fact a) i)
                            (Fact.get (Tuple.fact b) i)
                    | None -> fail "unknown column %s in ORDER BY" name)
              in
              (match direction with
              | Ast.Asc -> base
              | Ast.Desc -> fun a b -> base b a)
        in
        let description =
          (match order with
          | None -> "input order"
          | Some (key, direction) ->
              Printf.sprintf "%s%s"
                (match key with
                | Ast.By_column c -> c
                | Ast.By_probability -> "p"
                | Ast.By_start -> "ts")
                (match direction with Ast.Asc -> "" | Ast.Desc -> " desc"))
        in
        Physical.Sort_limit
          { description; compare = key_compare; limit = s.limit; child = plan }
  in
  with_order_limit
  @@
  match s.aggregate with
  | Some aggregate ->
      let spec : Tpdb_setops.Aggregate.spec =
        match aggregate with
        | Ast.Count -> Tpdb_setops.Aggregate.Count
        | Ast.Sum c -> Tpdb_setops.Aggregate.Sum (column_index c)
        | Ast.Avg c -> Tpdb_setops.Aggregate.Avg (column_index c)
      in
      Physical.Aggregate
        {
          group_by = List.map column_index s.group_by;
          spec;
          child = with_slice;
        }
  | None -> (
  match (s.projection, s.distinct) with
  | None, false -> with_slice
  | None, true ->
      (* DISTINCT * : duplicate-eliminate on the full fact. *)
      Physical.Distinct_project
        {
          columns = List.init (Schema.arity child_schema) Fun.id;
          schema = child_schema;
          child = with_slice;
        }
  | Some columns, distinct ->
      let indices = projection_indices child_schema columns in
      let schema = projected_schema columns in
      if distinct then
        Physical.Distinct_project { columns = indices; schema; child = with_slice }
      else Physical.Project { columns = indices; schema; child = with_slice })

(* --- cost-based ordering of inner equi-join chains ---------------------

   A chain of INNER joins is order-independent as a result set (window
   intersection is associative, lineage conjunction commutative), so the
   planner is free to pick the cheapest left-deep order. Candidates are
   permutations of the AST join list (the FROM relation stays leftmost);
   a candidate only survives if it plans without error and produces the
   same output columns as the source order — an explicit SELECT list
   resolves each name against the candidate's join schema, and a name
   whose qualification changed simply fails to resolve, discarding the
   candidate. Scope: every join INNER with at least one equality atom,
   an explicit projection, at most 4 joins (24 permutations), and no
   temporal predicate anywhere in the chain — an Allen atom resolves
   against the *accumulated* left window at whichever join first sees
   both its relations (and is inverted when its left operand is the
   right side), so under a permutation the same atom can constrain a
   different intersection window in a different direction, changing the
   result. Only all-Overlap chains are provably order-independent. *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun rest -> x :: rest)
            (permutations (List.filter (fun y -> y != x) l)))
        l

let reorderable (s : Ast.select) =
  List.length s.joins >= 2
  && List.length s.joins <= 4
  && s.projection <> None
  && s.where_temporal = []
  && List.for_all
       (fun (j : Ast.join) ->
         j.kind = Ast.Inner
         && j.on_temporal = []
         && List.exists (fun (a : Ast.atom) -> a.op = `Eq) j.on)
       s.joins

let order_joins ~build ~stats (s : Ast.select) source_plan =
  if not (reorderable s) then (source_plan, [])
  else begin
    let source_cost = (Cost.root (Cost.of_plan ~stats source_plan)).Cost.cost in
    let source_columns =
      Tpdb_relation.Schema.columns (Physical.schema source_plan)
    in
    let best =
      List.fold_left
        (fun best joins ->
          match build { s with Ast.joins } with
          | exception Plan_error _ -> best
          | candidate ->
              if
                List.equal String.equal source_columns
                  (Tpdb_relation.Schema.columns (Physical.schema candidate))
              then
                let cost =
                  (Cost.root (Cost.of_plan ~stats candidate)).Cost.cost
                in
                match best with
                | Some (_, _, best_cost) when best_cost <= cost -> best
                | Some _ | None -> Some (candidate, joins, cost)
              else best)
        None
        (List.tl (permutations s.joins))
    in
    match best with
    | Some (candidate, joins, cost) when cost < source_cost ->
        let order rels = String.concat " \xe2\x8b\x88 " rels in
        ( candidate,
          [
            Analyze.diagnostic ~severity:Analyze.Note ~code:"join-reordered"
              ~path:"plan"
              (Printf.sprintf
                 "inner equi-join chain reordered by estimated cost: %s \
                  (est cost %.0f) instead of %s (est cost %.0f)"
                 (order (s.from :: List.map (fun (j : Ast.join) -> j.rel) joins))
                 cost
                 (order
                    (s.from
                    :: List.map (fun (j : Ast.join) -> j.rel) s.joins))
                 source_cost);
          ] )
    | Some _ | None -> (source_plan, [])
  end

let plan ?(parallelism = 1) ?sanitize ?(prob_cache = true) ?(mem_budget = 0)
    catalog (query : Ast.t) =
  if parallelism < 1 then fail "parallelism must be at least 1";
  if mem_budget < 0 then fail "mem-budget must not be negative";
  let sanitize =
    match sanitize with
    | Some b -> b
    | None -> Tpdb_windows.Invariant.env_enabled ()
  in
  let env = Catalog.env catalog in
  let stats name = Catalog.stats catalog name in
  let finish raw reorder_notes =
    let plan, rewrite_notes = Analyze.optimize ~stats raw in
    { plan; raw; env; reorder_notes; rewrite_notes; stats; cost = None }
  in
  match query with
  | Ast.Select s ->
      let build s =
        plan_select ~parallelism ~sanitize ~prob_cache ~mem_budget catalog s
      in
      let source = build s in
      let chosen, reorder_notes = order_joins ~build ~stats s source in
      finish chosen reorder_notes
  | Ast.Set (kind, a, b) ->
      let kind =
        match kind with
        | Ast.Union -> `Union
        | Ast.Intersect -> `Intersect
        | Ast.Except -> `Except
      in
      finish
        (Physical.Set_op
           {
             kind;
             left =
               plan_select ~parallelism ~sanitize ~prob_cache ~mem_budget
                 catalog a;
             right =
               plan_select ~parallelism ~sanitize ~prob_cache ~mem_budget
                 catalog b;
           })
        []

let estimates t =
  match t.cost with
  | Some c -> c
  | None ->
      let c = Cost.of_plan ~stats:t.stats t.plan in
      t.cost <- Some c;
      c

let annotate t node =
  let est = Cost.annotate (estimates t) node in
  match node with
  | Physical.Tp_join { safe_lineage = true; _ } ->
      est ^ " [lineage: read-once]"
  | _ -> est

let explain t = Physical.explain ~annotate:(annotate t) t.plan
let fingerprint t = Physical.fingerprint t.plan

(* [raw] is the post-reorder lowering, so when the planner picked a
   different join order the [join-reordered] note leads the report —
   otherwise diagnostic paths could name a chain the user never wrote. *)
let check t = t.reorder_notes @ Analyze.check t.raw

(* Deep analysis runs on the raw plan: the dry fold/prune passes inside
   [Analyze.check_deep] then rederive exactly the rewrites [optimize]
   applied, so the report covers them without double-counting stored
   notes, and base diagnostics still describe the query as written. *)
let check_deep t =
  t.reorder_notes @ Analyze.check_deep ~stats:t.stats t.raw

let notes t = t.reorder_notes @ t.rewrite_notes

let run_analyze t =
  Physical.analyze ~estimate:(Cost.rows (estimates t)) ~env:t.env t.plan
let run t = Physical.to_relation ~env:t.env t.plan
let stream t = Physical.execute ~env:t.env t.plan

let run_string catalog input = run (plan catalog (Parser.parse input))
