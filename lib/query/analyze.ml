module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Value = Tpdb_relation.Value
module Csv = Tpdb_relation.Csv
module Theta = Tpdb_windows.Theta
module Invariant = Tpdb_windows.Invariant
module Nj = Tpdb_joins.Nj
module Prob = Tpdb_lineage.Prob
module Var = Tpdb_lineage.Var

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  code : string;
  path : string;
  message : string;
}

let diagnostic ~severity ~code ?(path = "-") message =
  { severity; code; path; message }

let errors diags = List.filter (fun d -> d.severity = Error) diags

let to_string d =
  Printf.sprintf "%s[%s] at %s: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.code d.path d.message

let report diags = String.concat "\n" (List.map to_string diags)

let diagnostic_of_exn = function
  | Csv.Error { path; line; message } ->
      let where =
        match line with
        | Some n -> Printf.sprintf "%s:%d" path n
        | None -> path
      in
      Some (diagnostic ~severity:Error ~code:"csv-load" ~path:where message)
  | Value.Type_error { context; left; right } ->
      Some
        (diagnostic ~severity:Error ~code:"value-type" ~path:context
           (Printf.sprintf "values '%s' and '%s' are not comparable"
              (Value.to_string left) (Value.to_string right)))
  | Invariant.Violation { lemma; group; interval; detail } ->
      Some
        (diagnostic ~severity:Error ~code:"tpsan-violation"
           ~path:(Printf.sprintf "group %s, interval %s" group interval)
           (Printf.sprintf "lemma %S broken: %s" lemma detail))
  | Prob.Unbound_variable v ->
      Some
        (diagnostic ~severity:Error ~code:"unbound-variable"
           ~path:(Var.to_string v)
           (Printf.sprintf
              "lineage variable %s has no marginal probability in the \
               environment — pass an env covering every base variable when \
               joining derived relations"
              (Var.to_string v)))
  | Prob.Vanishing_evidence { p_given; epsilon } ->
      Some
        (diagnostic ~severity:Error ~code:"vanishing-evidence"
           (Printf.sprintf
              "evidence probability %g is below epsilon %g — conditioning \
               would divide by (near) zero"
              p_given epsilon))
  | Parser.Parse_error msg ->
      Some (diagnostic ~severity:Error ~code:"parse" msg)
  | Lexer.Lex_error (msg, pos) ->
      Some
        (diagnostic ~severity:Error ~code:"lex"
           ~path:(Printf.sprintf "offset %d" pos)
           msg)
  | _ -> None

(* --- column types ----------------------------------------------------

   A tiny lattice sampled from the data: Unknown (no non-null value
   seen) < Number | Text < Mixed. Number covers I and F, which
   Value.compare orders numerically against each other; comparing
   Number with Text is the classic silently-always-false (for =) or
   rank-ordered (for <) mistake the analyzer exists to catch. *)

type column_type = Unknown | Number | Text | Mixed

let type_name = function
  | Unknown -> "unknown"
  | Number -> "number"
  | Text -> "text"
  | Mixed -> "mixed"

let lub a b =
  match (a, b) with
  | Unknown, t | t, Unknown -> t
  | Number, Number -> Number
  | Text, Text -> Text
  | (Number | Text | Mixed), _ -> Mixed

let type_of_value = function
  | Value.Null -> Unknown
  | Value.I _ | Value.F _ -> Number
  | Value.S _ -> Text

(* Sampling the first rows suffices: workload relations are
   homogeneously typed per column, and a genuinely mixed column is
   reported as such either way. *)
let sample_limit = 256

let relation_types r =
  let arity = Schema.arity (Relation.schema r) in
  let types = Array.make arity Unknown in
  let rec scan n = function
    | [] -> ()
    | _ when n >= sample_limit -> ()
    | tp :: rest ->
        let fact = Tuple.fact tp in
        for i = 0 to arity - 1 do
          types.(i) <- lub types.(i) (type_of_value (Fact.get fact i))
        done;
        scan (n + 1) rest
  in
  scan 0 (Relation.tuples r);
  types

(* --- θ checks --------------------------------------------------------- *)

let atom_string ~left ~right atom =
  Theta.to_string ~left ~right (Theta.of_atoms [ atom ])

(* Can a comparison between these two types ever be meaningful? Unknown
   and Mixed stay silent — there is nothing definite to contradict. *)
let compatible a b =
  match (a, b) with
  | Unknown, _ | _, Unknown | Mixed, _ | _, Mixed -> true
  | Number, Number | Text, Text -> true
  | Number, Text | Text, Number -> false

let op_string : Theta.op -> string = function
  | `Eq -> "="
  | `Ne -> "<>"
  | `Lt -> "<"
  | `Le -> "<="
  | `Gt -> ">"
  | `Ge -> ">="

(* Satisfiability of the constant constraints accumulated on one column:
   equalities must agree with each other and with every bound, and the
   lower bounds must stay below the upper bounds. *)
let unsat_reason constraints =
  let sat_one v (op, c) =
    let cmp = Value.compare v c in
    match (op : Theta.op) with
    | `Eq -> cmp = 0
    | `Ne -> cmp <> 0
    | `Lt -> cmp < 0
    | `Le -> cmp <= 0
    | `Gt -> cmp > 0
    | `Ge -> cmp >= 0
  in
  let eqs = List.filter_map (function `Eq, v -> Some v | _ -> None) constraints in
  match eqs with
  | v :: _ -> (
      match List.find_opt (fun c -> not (sat_one v c)) constraints with
      | Some (op, c) ->
          Some
            (Printf.sprintf "= %s contradicts %s %s" (Value.to_string v)
               (op_string op) (Value.to_string c))
      | None -> None)
  | [] ->
      (* strongest lower bound vs strongest upper bound *)
      let lower =
        List.filter_map
          (function (`Gt | `Ge) as op, v -> Some (op, v) | _ -> None)
          constraints
      and upper =
        List.filter_map
          (function (`Lt | `Le) as op, v -> Some (op, v) | _ -> None)
          constraints
      in
      let stronger_low (o1, v1) (o2, v2) =
        let c = Value.compare v1 v2 in
        if c <> 0 then c > 0 else o1 = `Gt && o2 = `Ge
      in
      let stronger_high (o1, v1) (o2, v2) =
        let c = Value.compare v1 v2 in
        if c <> 0 then c < 0 else o1 = `Lt && o2 = `Le
      in
      let pick stronger = function
        | [] -> None
        | x :: rest ->
            Some
              (List.fold_left
                 (fun best c -> if stronger c best then c else best)
                 x rest)
      in
      (match (pick stronger_low lower, pick stronger_high upper) with
      | Some (lop, lv), Some (uop, uv) ->
          let c = Value.compare lv uv in
          if c > 0 || (c = 0 && (lop = `Gt || uop = `Lt)) then
            Some
              (Printf.sprintf "%s %s contradicts %s %s" (op_string lop)
                 (Value.to_string lv) (op_string uop) (Value.to_string uv))
          else None
      | _ -> None)

let check_theta ~emit ~left_schema ~right_schema ~left_types ~right_types
    ~parallelism theta =
  let atoms = Theta.atoms theta in
  let atom_str = atom_string ~left:left_schema ~right:right_schema in
  let side_type types arity side i =
    if i < 0 || i >= Array.length types then (
      emit Error "bad-column"
        (Printf.sprintf
           "%s column #%d is out of range (the %s side has %d column(s))" side
           i side arity);
      None)
    else Some types.(i)
  in
  let larity = Schema.arity left_schema
  and rarity = Schema.arity right_schema in
  (* per-atom checks *)
  List.iter
    (fun atom ->
      match atom with
      | Theta.Cols (_, i, j) -> (
          match
            ( side_type left_types larity "left" i,
              side_type right_types rarity "right" j )
          with
          | Some lt, Some rt ->
              if not (compatible lt rt) then
                emit Error "type-mismatch"
                  (Printf.sprintf
                     "%s compares a %s column with a %s column — the \
                      comparison is rank-ordered, never value-ordered"
                     (atom_str atom) (type_name lt) (type_name rt))
          | _ -> ())
      | Theta.Left_const (_, i, v) | Theta.Right_const (_, i, v) -> (
          let side, types, arity =
            match atom with
            | Theta.Left_const _ -> ("left", left_types, larity)
            | _ -> ("right", right_types, rarity)
          in
          if Value.is_null v then
            emit Error "null-comparison"
              (Printf.sprintf
                 "%s compares against NULL, which never matches under SQL \
                  semantics — the atom is unsatisfiable"
                 (atom_str atom))
          else
            match side_type types arity side i with
            | Some t ->
                let vt = type_of_value v in
                if not (compatible t vt) then
                  emit Error "type-mismatch"
                    (Printf.sprintf
                       "%s compares a %s column with the %s constant %s — no \
                        row can satisfy it as intended"
                       (atom_str atom) (type_name t) (type_name vt)
                       (Value.to_string v))
            | None -> ()))
    atoms;
  (* duplicated atoms: a redundant conjunct, usually a typo for another
     column *)
  let rec dups = function
    | [] -> ()
    | a :: rest ->
        if List.mem a rest then
          emit Warning "duplicate-atom"
            (Printf.sprintf "%s appears more than once in \xce\xb8"
               (atom_str a));
        dups (List.filter (fun b -> b <> a) rest)
  in
  dups atoms;
  (* constant-constraint satisfiability per (side, column) *)
  let constraint_sets = Hashtbl.create 8 in
  List.iter
    (fun atom ->
      match atom with
      | Theta.Left_const (op, i, v) when not (Value.is_null v) ->
          Hashtbl.replace constraint_sets (`L, i)
            ((op, v)
            :: (try Hashtbl.find constraint_sets (`L, i) with Not_found -> []))
      | Theta.Right_const (op, i, v) when not (Value.is_null v) ->
          Hashtbl.replace constraint_sets (`R, i)
            ((op, v)
            :: (try Hashtbl.find constraint_sets (`R, i) with Not_found -> []))
      | Theta.Cols _ | Theta.Left_const _ | Theta.Right_const _ -> ())
    atoms;
  Hashtbl.iter
    (fun (side, i) constraints ->
      match unsat_reason constraints with
      | None -> ()
      | Some reason ->
          let schema =
            match side with `L -> left_schema | `R -> right_schema
          in
          let column =
            match List.nth_opt (Schema.columns schema) i with
            | Some c -> c
            | None -> Printf.sprintf "#%d" i
          in
          emit Error "unsatisfiable"
            (Printf.sprintf
               "the constant constraints on %s column %s admit no value (%s) \
                — \xce\xb8 matches nothing"
               (match side with `L -> "left" | `R -> "right")
               column reason))
    constraint_sets;
  (* shape warnings *)
  if atoms = [] then
    emit Warning "cartesian"
      "\xce\xb8 has no atoms: every overlapping pair matches (a temporal \
       cartesian product; quadratic in the overlap)";
  if parallelism > 1 && Theta.equi_keys theta = None then
    emit Warning "sequential-fallback"
      (match Theta.temporal theta with
      | `Allen rel ->
          Printf.sprintf
            "jobs=%d requested, but \xce\xb8 is a residual-only temporal \
             predicate (%s) with no equality atom to shard on — Allen \
             relations constrain intervals, not fact keys, so the join \
             runs sequentially"
            parallelism
            (Tpdb_interval.Interval.allen_name rel)
      | `Overlap ->
          Printf.sprintf
            "jobs=%d requested, but \xce\xb8 has no equality atom between \
             the two sides to shard on — the join runs sequentially"
            parallelism)

(* --- the walk --------------------------------------------------------- *)

let node_label : Physical.t -> string = function
  | Physical.Scan r -> Printf.sprintf "Scan %s" (Relation.name r)
  | Physical.Filter _ -> "Filter"
  | Physical.Project _ -> "Project"
  | Physical.Distinct_project _ -> "Distinct Project"
  | Physical.Timeslice _ -> "Timeslice"
  | Physical.Aggregate _ -> "Aggregate"
  | Physical.Sort_limit _ -> "Sort"
  | Physical.Tp_join { kind; _ } -> (
      match kind with
      | Nj.Inner -> "TP Inner Join"
      | Nj.Anti -> "TP Anti Join"
      | Nj.Left -> "TP Left Outer Join"
      | Nj.Right -> "TP Right Outer Join"
      | Nj.Full -> "TP Full Outer Join")
  | Physical.Set_op { kind; _ } -> (
      match kind with
      | `Union -> "TP Union"
      | `Intersect -> "TP Intersect"
      | `Except -> "TP Except")

(* The equi-join key columns of a join, as indices into its own output
   schema (left columns first, right columns shifted by the left
   arity; an anti join outputs the left side only). *)
let join_key_columns = function
  | Physical.Tp_join { kind; theta; left; _ } -> (
      match Theta.equi_keys theta with
      | None -> []
      | Some (lcols, rcols) ->
          let larity = Schema.arity (Physical.schema left) in
          if kind = Nj.Anti then lcols
          else lcols @ List.map (fun j -> larity + j) rcols)
  | _ -> []

(* A plain projection looks through order-preserving unary nodes for the
   join whose output it projects. *)
let rec underlying_join node =
  match node with
  | Physical.Tp_join _ -> Some node
  | Physical.Filter { child; _ }
  | Physical.Timeslice { child; _ }
  | Physical.Sort_limit { child; _ } ->
      underlying_join child
  | Physical.Scan _ | Physical.Project _ | Physical.Distinct_project _
  | Physical.Aggregate _ | Physical.Set_op _ ->
      None

let check plan =
  let diags = ref [] in
  let rec walk rev_path node =
    let path =
      String.concat " > " (List.rev (node_label node :: rev_path))
    in
    let emit severity code message =
      diags := { severity; code; path; message } :: !diags
    in
    let rev_path = node_label node :: rev_path in
    let types =
      match node with
      | Physical.Scan r -> relation_types r
      | Physical.Filter { child; _ }
      | Physical.Timeslice { child; _ }
      | Physical.Sort_limit { child; _ } ->
          walk rev_path child
      | Physical.Project { columns; child; _ }
      | Physical.Distinct_project { columns; child; _ } ->
          let child_types = walk rev_path child in
          let pick i =
            if i >= 0 && i < Array.length child_types then child_types.(i)
            else Unknown
          in
          let projected = Array.of_list (List.map pick columns) in
          (match node with
          | Physical.Project _ -> (
              match underlying_join child with
              | Some (Physical.Tp_join { theta; _ } as join) ->
                  let keys = join_key_columns join in
                  let dropped =
                    List.filter (fun k -> not (List.mem k columns)) keys
                  in
                  if dropped <> [] && Theta.equi_keys theta <> None then
                    emit Warning "drops-join-key"
                      (Printf.sprintf
                         "projection drops join key column(s) %s of the %s \
                          below — coinciding facts may appear; SELECT \
                          DISTINCT disjoins their lineages"
                         (String.concat ", "
                            (List.map (string_of_int) dropped))
                         (node_label join))
              | _ -> ())
          | _ -> ());
          projected
      | Physical.Aggregate { group_by; child; _ } ->
          let child_types = walk rev_path child in
          let pick i =
            if i >= 0 && i < Array.length child_types then child_types.(i)
            else Unknown
          in
          Array.of_list (List.map pick group_by @ [ Number ])
      | Physical.Tp_join { kind; parallelism; theta; left; right; _ } ->
          let left_types = walk rev_path left in
          let right_types = walk rev_path right in
          check_theta ~emit ~left_schema:(Physical.schema left)
            ~right_schema:(Physical.schema right) ~left_types ~right_types
            ~parallelism theta;
          if kind = Nj.Anti then left_types
          else Array.append left_types right_types
      | Physical.Set_op { left; right; _ } ->
          let left_types = walk rev_path left in
          let right_types = walk rev_path right in
          if Array.length left_types <> Array.length right_types then
            emit Error "arity-mismatch"
              (Printf.sprintf
                 "set operation over %d vs %d column(s) — the two inputs \
                  must align positionally"
                 (Array.length left_types)
                 (Array.length right_types));
          left_types
    in
    types
  in
  ignore (walk [] plan);
  List.rev !diags
