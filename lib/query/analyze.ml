module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Fact = Tpdb_relation.Fact
module Value = Tpdb_relation.Value
module Csv = Tpdb_relation.Csv
module Theta = Tpdb_windows.Theta
module Invariant = Tpdb_windows.Invariant
module Nj = Tpdb_joins.Nj
module Prob = Tpdb_lineage.Prob
module Var = Tpdb_lineage.Var
module Formula = Tpdb_lineage.Formula
module Interval = Tpdb_interval.Interval
module Metrics = Tpdb_obs.Metrics
module Json = Tpdb_obs.Json

type severity = Error | Warning | Note

type diagnostic = {
  severity : severity;
  code : string;
  path : string;
  message : string;
}

let diagnostic ~severity ~code ?(path = "-") message =
  { severity; code; path; message }

let errors diags = List.filter (fun d -> d.severity = Error) diags

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let to_string d =
  Printf.sprintf "%s[%s] at %s: %s" (severity_name d.severity) d.code d.path
    d.message

let report diags = String.concat "\n" (List.map to_string diags)

let diagnostic_of_exn = function
  | Csv.Error { path; line; message } ->
      let where =
        match line with
        | Some n -> Printf.sprintf "%s:%d" path n
        | None -> path
      in
      Some (diagnostic ~severity:Error ~code:"csv-load" ~path:where message)
  | Value.Type_error { context; left; right } ->
      Some
        (diagnostic ~severity:Error ~code:"value-type" ~path:context
           (Printf.sprintf "values '%s' and '%s' are not comparable"
              (Value.to_string left) (Value.to_string right)))
  | Invariant.Violation { lemma; group; interval; detail } ->
      Some
        (diagnostic ~severity:Error ~code:"tpsan-violation"
           ~path:(Printf.sprintf "group %s, interval %s" group interval)
           (Printf.sprintf "lemma %S broken: %s" lemma detail))
  | Prob.Unbound_variable v ->
      Some
        (diagnostic ~severity:Error ~code:"unbound-variable"
           ~path:(Var.to_string v)
           (Printf.sprintf
              "lineage variable %s has no marginal probability in the \
               environment — pass an env covering every base variable when \
               joining derived relations"
              (Var.to_string v)))
  | Prob.Vanishing_evidence { p_given; epsilon } ->
      Some
        (diagnostic ~severity:Error ~code:"vanishing-evidence"
           (Printf.sprintf
              "evidence probability %g is below epsilon %g — conditioning \
               would divide by (near) zero"
              p_given epsilon))
  | Tpdb_storage.Buffer_pool.Pinned_eviction { path; index; capacity; pinned } ->
      Some
        (diagnostic ~severity:Error ~code:"pinned-eviction"
           ~path:(Printf.sprintf "%s page %d" path index)
           (Printf.sprintf
              "buffer pool exhausted: all %d of %d cached page(s) are \
               pinned, none can be evicted — the spill executor pinned \
               more pages than the pool's capacity; raise --mem-budget \
               (the pool is sized from it)"
              pinned capacity))
  | Tpdb_storage.Heap_file.Corrupt msg ->
      Some
        (diagnostic ~severity:Error ~code:"heap-file-corrupt"
           (Printf.sprintf "heap file unreadable: %s" msg))
  | Tpdb_storage.Codec.Corrupt msg ->
      Some
        (diagnostic ~severity:Error ~code:"heap-file-corrupt"
           (Printf.sprintf "stored tuple data undecodable: %s" msg))
  | Parser.Parse_error msg ->
      Some (diagnostic ~severity:Error ~code:"parse" msg)
  | Lexer.Lex_error (msg, pos) ->
      Some
        (diagnostic ~severity:Error ~code:"lex"
           ~path:(Printf.sprintf "offset %d" pos)
           msg)
  | _ -> None

(* --- column types ----------------------------------------------------

   A tiny lattice sampled from the data: Unknown (no non-null value
   seen) < Number | Text < Mixed. Number covers I and F, which
   Value.compare orders numerically against each other; comparing
   Number with Text is the classic silently-always-false (for =) or
   rank-ordered (for <) mistake the analyzer exists to catch. *)

type column_type = Unknown | Number | Text | Mixed

let type_name = function
  | Unknown -> "unknown"
  | Number -> "number"
  | Text -> "text"
  | Mixed -> "mixed"

let lub a b =
  match (a, b) with
  | Unknown, t | t, Unknown -> t
  | Number, Number -> Number
  | Text, Text -> Text
  | (Number | Text | Mixed), _ -> Mixed

let type_of_value = function
  | Value.Null -> Unknown
  | Value.I _ | Value.F _ -> Number
  | Value.S _ -> Text

(* Sampling the first rows suffices: workload relations are
   homogeneously typed per column, and a genuinely mixed column is
   reported as such either way. *)
let sample_limit = 256

let relation_types r =
  let arity = Schema.arity (Relation.schema r) in
  let types = Array.make arity Unknown in
  let rec scan n = function
    | [] -> ()
    | _ when n >= sample_limit -> ()
    | tp :: rest ->
        let fact = Tuple.fact tp in
        for i = 0 to arity - 1 do
          types.(i) <- lub types.(i) (type_of_value (Fact.get fact i))
        done;
        scan (n + 1) rest
  in
  scan 0 (Relation.tuples r);
  types

(* --- θ checks --------------------------------------------------------- *)

let atom_string ~left ~right atom =
  Theta.to_string ~left ~right (Theta.of_atoms [ atom ])

(* Can a comparison between these two types ever be meaningful? Unknown
   and Mixed stay silent — there is nothing definite to contradict. *)
let compatible a b =
  match (a, b) with
  | Unknown, _ | _, Unknown | Mixed, _ | _, Mixed -> true
  | Number, Number | Text, Text -> true
  | Number, Text | Text, Number -> false

let op_string : Theta.op -> string = function
  | `Eq -> "="
  | `Ne -> "<>"
  | `Lt -> "<"
  | `Le -> "<="
  | `Gt -> ">"
  | `Ge -> ">="

(* Satisfiability of the constant constraints accumulated on one column:
   equalities must agree with each other and with every bound, and the
   lower bounds must stay below the upper bounds. *)
let unsat_reason constraints =
  let sat_one v (op, c) =
    let cmp = Value.compare v c in
    match (op : Theta.op) with
    | `Eq -> cmp = 0
    | `Ne -> cmp <> 0
    | `Lt -> cmp < 0
    | `Le -> cmp <= 0
    | `Gt -> cmp > 0
    | `Ge -> cmp >= 0
  in
  let eqs = List.filter_map (function `Eq, v -> Some v | _ -> None) constraints in
  match eqs with
  | v :: _ -> (
      match List.find_opt (fun c -> not (sat_one v c)) constraints with
      | Some (op, c) ->
          Some
            (Printf.sprintf "= %s contradicts %s %s" (Value.to_string v)
               (op_string op) (Value.to_string c))
      | None -> None)
  | [] ->
      (* strongest lower bound vs strongest upper bound *)
      let lower =
        List.filter_map
          (function (`Gt | `Ge) as op, v -> Some (op, v) | _ -> None)
          constraints
      and upper =
        List.filter_map
          (function (`Lt | `Le) as op, v -> Some (op, v) | _ -> None)
          constraints
      in
      let stronger_low (o1, v1) (o2, v2) =
        let c = Value.compare v1 v2 in
        if c <> 0 then c > 0 else o1 = `Gt && o2 = `Ge
      in
      let stronger_high (o1, v1) (o2, v2) =
        let c = Value.compare v1 v2 in
        if c <> 0 then c < 0 else o1 = `Lt && o2 = `Le
      in
      let pick stronger = function
        | [] -> None
        | x :: rest ->
            Some
              (List.fold_left
                 (fun best c -> if stronger c best then c else best)
                 x rest)
      in
      (match (pick stronger_low lower, pick stronger_high upper) with
      | Some (lop, lv), Some (uop, uv) ->
          let c = Value.compare lv uv in
          if c > 0 || (c = 0 && (lop = `Gt || uop = `Lt)) then
            Some
              (Printf.sprintf "%s %s contradicts %s %s" (op_string lop)
                 (Value.to_string lv) (op_string uop) (Value.to_string uv))
          else None
      | _ -> None)

let check_theta ~emit ~left_schema ~right_schema ~left_types ~right_types
    ~parallelism theta =
  let atoms = Theta.atoms theta in
  let atom_str = atom_string ~left:left_schema ~right:right_schema in
  let side_type types arity side i =
    if i < 0 || i >= Array.length types then (
      emit Error "bad-column"
        (Printf.sprintf
           "%s column #%d is out of range (the %s side has %d column(s))" side
           i side arity);
      None)
    else Some types.(i)
  in
  let larity = Schema.arity left_schema
  and rarity = Schema.arity right_schema in
  (* per-atom checks *)
  List.iter
    (fun atom ->
      match atom with
      | Theta.Cols (_, i, j) -> (
          match
            ( side_type left_types larity "left" i,
              side_type right_types rarity "right" j )
          with
          | Some lt, Some rt ->
              if not (compatible lt rt) then
                emit Error "type-mismatch"
                  (Printf.sprintf
                     "%s compares a %s column with a %s column — the \
                      comparison is rank-ordered, never value-ordered"
                     (atom_str atom) (type_name lt) (type_name rt))
          | _ -> ())
      | Theta.Left_const (_, i, v) | Theta.Right_const (_, i, v) -> (
          let side, types, arity =
            match atom with
            | Theta.Left_const _ -> ("left", left_types, larity)
            | _ -> ("right", right_types, rarity)
          in
          if Value.is_null v then
            emit Error "null-comparison"
              (Printf.sprintf
                 "%s compares against NULL, which never matches under SQL \
                  semantics — the atom is unsatisfiable"
                 (atom_str atom))
          else
            match side_type types arity side i with
            | Some t ->
                let vt = type_of_value v in
                if not (compatible t vt) then
                  emit Error "type-mismatch"
                    (Printf.sprintf
                       "%s compares a %s column with the %s constant %s — no \
                        row can satisfy it as intended"
                       (atom_str atom) (type_name t) (type_name vt)
                       (Value.to_string v))
            | None -> ()))
    atoms;
  (* duplicated atoms: a redundant conjunct, usually a typo for another
     column *)
  let rec dups = function
    | [] -> ()
    | a :: rest ->
        if List.exists (Theta.atom_equal a) rest then
          emit Warning "duplicate-atom"
            (Printf.sprintf "%s appears more than once in \xce\xb8"
               (atom_str a));
        dups (List.filter (fun b -> not (Theta.atom_equal a b)) rest)
  in
  dups atoms;
  (* constant-constraint satisfiability per (side, column) *)
  let constraint_sets = Hashtbl.create 8 in
  List.iter
    (fun atom ->
      match atom with
      | Theta.Left_const (op, i, v) when not (Value.is_null v) ->
          Hashtbl.replace constraint_sets (`L, i)
            ((op, v)
            :: (try Hashtbl.find constraint_sets (`L, i) with Not_found -> []))
      | Theta.Right_const (op, i, v) when not (Value.is_null v) ->
          Hashtbl.replace constraint_sets (`R, i)
            ((op, v)
            :: (try Hashtbl.find constraint_sets (`R, i) with Not_found -> []))
      | Theta.Cols _ | Theta.Left_const _ | Theta.Right_const _ -> ())
    atoms;
  Hashtbl.iter
    (fun (side, i) constraints ->
      match unsat_reason constraints with
      | None -> ()
      | Some reason ->
          let schema =
            match side with `L -> left_schema | `R -> right_schema
          in
          let column =
            match List.nth_opt (Schema.columns schema) i with
            | Some c -> c
            | None -> Printf.sprintf "#%d" i
          in
          emit Error "unsatisfiable"
            (Printf.sprintf
               "the constant constraints on %s column %s admit no value (%s) \
                — \xce\xb8 matches nothing"
               (match side with `L -> "left" | `R -> "right")
               column reason))
    constraint_sets;
  (* shape warnings *)
  if atoms = [] then
    emit Warning "cartesian"
      "\xce\xb8 has no atoms: every overlapping pair matches (a temporal \
       cartesian product; quadratic in the overlap)";
  if parallelism > 1 && Theta.equi_keys theta = None then begin
    (* Suggest the concrete rewrite: an equality atom on a column the two
       sides share by name, or — failing that — on any key pair. *)
    let suggestion =
      let shared =
        List.filter
          (fun c -> List.exists (String.equal c) (Schema.columns right_schema))
          (Schema.columns left_schema)
      in
      match shared with
      | c :: _ ->
          Printf.sprintf
            "add an equality atom on a shared key, e.g. ON %s.%s = %s.%s, to \
             enable hash partitioning"
            (Schema.name left_schema) c (Schema.name right_schema) c
      | [] ->
          "no column is shared by name; add an equality atom on a key pair \
           (or drop --jobs) to avoid the sequential sweep"
    in
    emit Warning "sequential-fallback"
      (match Theta.temporal theta with
      | `Allen rel ->
          Printf.sprintf
            "jobs=%d requested, but \xce\xb8 is a residual-only temporal \
             predicate (%s) with no equality atom to shard on — Allen \
             relations constrain intervals, not fact keys, so the join \
             runs sequentially — %s"
            parallelism
            (Tpdb_interval.Interval.allen_name rel)
            suggestion
      | `Overlap ->
          Printf.sprintf
            "jobs=%d requested, but \xce\xb8 has no equality atom between \
             the two sides to shard on — the join runs sequentially — %s"
            parallelism suggestion)
  end

(* --- the walk --------------------------------------------------------- *)

let node_label : Physical.t -> string = function
  | Physical.Scan r -> Printf.sprintf "Scan %s" (Relation.name r)
  | Physical.Filter _ -> "Filter"
  | Physical.Project _ -> "Project"
  | Physical.Distinct_project _ -> "Distinct Project"
  | Physical.Timeslice _ -> "Timeslice"
  | Physical.Aggregate _ -> "Aggregate"
  | Physical.Sort_limit _ -> "Sort"
  | Physical.Tp_join { kind; _ } -> (
      match kind with
      | Nj.Inner -> "TP Inner Join"
      | Nj.Anti -> "TP Anti Join"
      | Nj.Left -> "TP Left Outer Join"
      | Nj.Right -> "TP Right Outer Join"
      | Nj.Full -> "TP Full Outer Join")
  | Physical.Set_op { kind; _ } -> (
      match kind with
      | `Union -> "TP Union"
      | `Intersect -> "TP Intersect"
      | `Except -> "TP Except")

(* The equi-join key columns of a join, as indices into its own output
   schema (left columns first, right columns shifted by the left
   arity; an anti join outputs the left side only). *)
let join_key_columns = function
  | Physical.Tp_join { kind; theta; left; _ } -> (
      match Theta.equi_keys theta with
      | None -> []
      | Some (lcols, rcols) ->
          let larity = Schema.arity (Physical.schema left) in
          if kind = Nj.Anti then lcols
          else lcols @ List.map (fun j -> larity + j) rcols)
  | _ -> []

(* A plain projection looks through order-preserving unary nodes for the
   join whose output it projects. *)
let rec underlying_join node =
  match node with
  | Physical.Tp_join _ -> Some node
  | Physical.Filter { child; _ }
  | Physical.Timeslice { child; _ }
  | Physical.Sort_limit { child; _ } ->
      underlying_join child
  | Physical.Scan _ | Physical.Project _ | Physical.Distinct_project _
  | Physical.Aggregate _ | Physical.Set_op _ ->
      None

let check plan =
  let diags = ref [] in
  let rec walk rev_path node =
    let path =
      String.concat " > " (List.rev (node_label node :: rev_path))
    in
    let emit severity code message =
      diags := { severity; code; path; message } :: !diags
    in
    let rev_path = node_label node :: rev_path in
    let types =
      match node with
      | Physical.Scan r -> relation_types r
      | Physical.Filter { child; _ }
      | Physical.Timeslice { child; _ }
      | Physical.Sort_limit { child; _ } ->
          walk rev_path child
      | Physical.Project { columns; child; _ }
      | Physical.Distinct_project { columns; child; _ } ->
          let child_types = walk rev_path child in
          let pick i =
            if i >= 0 && i < Array.length child_types then child_types.(i)
            else Unknown
          in
          let projected = Array.of_list (List.map pick columns) in
          (match node with
          | Physical.Project _ -> (
              match underlying_join child with
              | Some (Physical.Tp_join { theta; _ } as join) ->
                  let keys = join_key_columns join in
                  let dropped =
                    List.filter (fun k -> not (List.mem k columns)) keys
                  in
                  if dropped <> [] && Theta.equi_keys theta <> None then
                    emit Warning "drops-join-key"
                      (Printf.sprintf
                         "projection drops join key column(s) %s of the %s \
                          below — coinciding facts may appear; SELECT \
                          DISTINCT disjoins their lineages"
                         (String.concat ", "
                            (List.map (string_of_int) dropped))
                         (node_label join))
              | _ -> ())
          | _ -> ());
          projected
      | Physical.Aggregate { group_by; child; _ } ->
          let child_types = walk rev_path child in
          let pick i =
            if i >= 0 && i < Array.length child_types then child_types.(i)
            else Unknown
          in
          Array.of_list (List.map pick group_by @ [ Number ])
      | Physical.Tp_join { kind; parallelism; theta; left; right; _ } ->
          let left_types = walk rev_path left in
          let right_types = walk rev_path right in
          check_theta ~emit ~left_schema:(Physical.schema left)
            ~right_schema:(Physical.schema right) ~left_types ~right_types
            ~parallelism theta;
          if kind = Nj.Anti then left_types
          else Array.append left_types right_types
      | Physical.Set_op { left; right; _ } ->
          let left_types = walk rev_path left in
          let right_types = walk rev_path right in
          if Array.length left_types <> Array.length right_types then
            emit Error "arity-mismatch"
              (Printf.sprintf
                 "set operation over %d vs %d column(s) — the two inputs \
                  must align positionally"
                 (Array.length left_types)
                 (Array.length right_types));
          left_types
    in
    types
  in
  ignore (walk [] plan);
  List.rev !diags

(* --- stable diagnostic codes ------------------------------------------

   Every code the analyzer (or [diagnostic_of_exn]) can emit, with its
   default severity and a one-line description. The registry is the
   contract behind [check --format json]: codes are stable identifiers
   tools may match on, messages are prose that may change. A unit test
   asserts every emitted code is registered. *)

let codes : (string * severity * string) list =
  [
    ("csv-load", Error, "a CSV relation failed to load");
    ("value-type", Error, "two values turned out not to be comparable");
    ("tpsan-violation", Error, "a TPSan window invariant (paper lemma) broke");
    ("unbound-variable", Error, "a lineage variable has no marginal probability");
    ("vanishing-evidence", Error, "conditioning on (near-)zero-probability evidence");
    ("parse", Error, "TP-SQL parse error");
    ("lex", Error, "TP-SQL lexical error");
    ("pinned-eviction", Error, "the buffer pool needed to evict but every cached page was pinned");
    ("heap-file-corrupt", Error, "a stored heap file or its tuple encoding failed to decode");
    ("bad-column", Error, "\xce\xb8 references a column out of range");
    ("type-mismatch", Error, "\xce\xb8 compares columns of incompatible types");
    ("null-comparison", Error, "\xce\xb8 compares against NULL (never matches)");
    ("unsatisfiable", Error, "constant constraints on one column admit no value");
    ("arity-mismatch", Error, "set operation over inputs of different arity");
    ("duplicate-atom", Warning, "a \xce\xb8 conjunct appears more than once");
    ("cartesian", Warning, "\xce\xb8 has no atoms (temporal cartesian product)");
    ("sequential-fallback", Warning, "parallelism requested but \xce\xb8 has no equality atom to shard on");
    ("drops-join-key", Warning, "a plain projection drops join key columns");
    ("hard-plan", Warning, "a base relation appears on both sides of a join: lineages can repeat variables and probability may fall back to BDD model counting");
    ("zero-probability", Warning, "every output probability is provably 0");
    ("cost-q-error", Warning, "a cost estimate is off by more than the q-error threshold");
    ("stats-missing", Warning, "no statistics available for a scanned relation");
    ("theta-fold", Note, "redundant \xce\xb8 conjuncts folded away");
    ("pruned-empty", Note, "a provably-empty subplan was pruned");
    ("safe-plan", Note, "a join's output lineages are statically read-once");
    ("join-reordered", Note, "the planner reordered an equi-\xce\xb8 inner-join chain by estimated cost");
    ("plan-bounds", Note, "abstract temporal/probability bounds of the plan");
  ]

let to_json diags =
  Json.arr
    (List.map
       (fun d ->
         Json.obj
           [
             ("severity", Json.str (severity_name d.severity));
             ("code", Json.str d.code);
             ("path", Json.str d.path);
             ("message", Json.str d.message);
           ])
       diags)

(* --- deep passes: abstract interpretation ------------------------------

   A bottom-up pass over the plan computing, per node, a sound
   over-approximation of its output: the temporal hull (None = provably
   no output tuples) and a [lo, hi] range containing every output
   probability. Scans read the exact hull and probability extrema off
   the data; operators propagate conservatively (a filter keeps its
   child's bounds — output is a subset — a join intersects or unions
   hulls per kind). *)

type bounds = { hull : Interval.t option; p_lo : float; p_hi : float }

let hull_intersect a b =
  match (a, b) with
  | Some a, Some b -> Interval.intersect a b
  | (Some _ | None), _ -> None

let hull_union a b =
  match (a, b) with
  | Some a, Some b -> Some (Interval.hull a b)
  | (Some _ as h), None | None, (Some _ as h) -> h
  | None, None -> None

let empty_bounds = { hull = None; p_lo = 0.0; p_hi = 0.0 }

let bases_disjoint l r =
  not (List.exists (fun b -> List.exists (String.equal b) r) l)

(* Relation tags of every lineage variable reachable under the node:
   output lineages are built by the connectives from the scans' tuple
   lineages, so the union over the subtree's scans over-approximates
   the variables any output formula can mention. *)
let rec lineage_tags node =
  match (node : Physical.t) with
  | Scan r ->
      List.concat_map
        (fun tp -> List.map Var.rel (Formula.vars (Tuple.lineage tp)))
        (Relation.tuples r)
      |> List.sort_uniq String.compare
  | _ ->
      List.concat_map lineage_tags (Physical.children node)
      |> List.sort_uniq String.compare

let rec plan_bounds node =
  match (node : Physical.t) with
  | Scan r ->
      let p_lo, p_hi =
        List.fold_left
          (fun (lo, hi) tp -> (Float.min lo (Tuple.p tp), Float.max hi (Tuple.p tp)))
          (1.0, 0.0) (Relation.tuples r)
      in
      (match Relation.active_domain r with
      | None -> empty_bounds
      | Some hull -> { hull = Some hull; p_lo; p_hi })
  | Filter { child; _ } | Project { child; _ } | Sort_limit { child; _ } ->
      plan_bounds child
  | Timeslice { window; child } ->
      let c = plan_bounds child in
      let hull = hull_intersect c.hull (Some window) in
      if hull = None then empty_bounds else { c with hull }
  | Distinct_project { child; _ } ->
      (* lineages of coinciding tuples are disjoined: probabilities can
         only grow, up to 1 *)
      let c = plan_bounds child in
      if c.hull = None then empty_bounds else { c with p_hi = 1.0 }
  | Aggregate { child; _ } ->
      let c = plan_bounds child in
      if c.hull = None then empty_bounds
      else { c with p_lo = 0.0; p_hi = 1.0 }
  | Tp_join { kind; theta; left; right; _ } -> (
      let l = plan_bounds left and r = plan_bounds right in
      let disjoint_allen =
        match Theta.temporal theta with
        | `Allen rel -> Interval.allen_disjoint rel
        | `Overlap -> false
      in
      match (kind : Nj.join_kind) with
      | Inner ->
          let hull =
            if disjoint_allen then None else hull_intersect l.hull r.hull
          in
          if hull = None then empty_bounds
          else if bases_disjoint (lineage_tags left) (lineage_tags right)
          then
            (* variable-disjoint sides: the conjoined lineages are
               independent and the probabilities multiply *)
            { hull; p_lo = l.p_lo *. r.p_lo; p_hi = l.p_hi *. r.p_hi }
          else
            (* shared variables (e.g. a self-join): p(φl ∧ φr) need not
               be the product — for v ∧ v it is p(v), above the product;
               for v ∧ ¬v it is 0, below it — so only the Fréchet
               bounds are sound *)
            {
              hull;
              p_lo = Float.max 0.0 (l.p_lo +. r.p_lo -. 1.0);
              p_hi = Float.min l.p_hi r.p_hi;
            }
      | Left ->
          if l.hull = None then empty_bounds
          else { hull = l.hull; p_lo = 0.0; p_hi = l.p_hi }
      | Anti ->
          if l.hull = None then empty_bounds
          else { hull = l.hull; p_lo = 0.0; p_hi = l.p_hi }
      | Right ->
          if r.hull = None then empty_bounds
          else { hull = r.hull; p_lo = 0.0; p_hi = r.p_hi }
      | Full ->
          let hull = hull_union l.hull r.hull in
          if hull = None then empty_bounds
          else { hull; p_lo = 0.0; p_hi = Float.max l.p_hi r.p_hi })
  | Set_op { kind; left; right } -> (
      let l = plan_bounds left and r = plan_bounds right in
      match kind with
      | `Union ->
          let hull = hull_union l.hull r.hull in
          if hull = None then empty_bounds
          else { hull; p_lo = Float.min l.p_lo r.p_lo; p_hi = 1.0 }
      | `Intersect ->
          let hull = hull_intersect l.hull r.hull in
          if hull = None then empty_bounds
          else { hull; p_lo = 0.0; p_hi = Float.min l.p_hi r.p_hi }
      | `Except ->
          if l.hull = None then empty_bounds
          else { hull = l.hull; p_lo = 0.0; p_hi = l.p_hi })

(* --- deep passes: planner rewrites -------------------------------------

   Three plan-to-plan rewrites the planner applies after lowering, each
   justified by a static proof and each reported through a Note-severity
   diagnostic: θ-simplification (drop redundant conjuncts), empty-subplan
   pruning (replace a provably-empty subtree by an empty scan), and
   safe-plan tagging (mark joins whose output lineages are read-once). *)

let empty_scan node =
  let s = Physical.schema node in
  Physical.Scan
    (Relation.of_tuples
       (Schema.rename ("pruned:" ^ Schema.name s) s)
       [])

let simplify_thetas plan =
  let notes = ref [] in
  let rec go rev_path node =
    let rev_path' = node_label node :: rev_path in
    match (node : Physical.t) with
    | Scan _ -> node
    | Filter f -> Filter { f with child = go rev_path' f.child }
    | Project p -> Project { p with child = go rev_path' p.child }
    | Distinct_project p ->
        Distinct_project { p with child = go rev_path' p.child }
    | Timeslice t -> Timeslice { t with child = go rev_path' t.child }
    | Aggregate a -> Aggregate { a with child = go rev_path' a.child }
    | Sort_limit s -> Sort_limit { s with child = go rev_path' s.child }
    | Set_op s ->
        Set_op
          { s with left = go rev_path' s.left; right = go rev_path' s.right }
    | Tp_join j ->
        let left = go rev_path' j.left and right = go rev_path' j.right in
        let theta, dropped = Theta.simplify j.theta in
        if dropped <> [] then begin
          Metrics.add Metrics.Analysis_folded_atoms (List.length dropped);
          let atom_str =
            atom_string
              ~left:(Physical.schema j.left)
              ~right:(Physical.schema j.right)
          in
          notes :=
            {
              severity = Note;
              code = "theta-fold";
              path = String.concat " > " (List.rev rev_path');
              message =
                Printf.sprintf
                  "redundant \xce\xb8 conjunct(s) folded away: %s (duplicate \
                   or implied by a stronger bound)"
                  (String.concat ", " (List.map atom_str dropped));
            }
            :: !notes
        end;
        Tp_join { j with theta; left; right }
  in
  let plan = go [] plan in
  (plan, List.rev !notes)

let prune_empty plan =
  let pruned = ref [] in
  let prune rev_path node reason =
    Metrics.incr Metrics.Analysis_pruned_subplans;
    let note =
      {
        severity = Note;
        code = "pruned-empty";
        path = String.concat " > " (List.rev (node_label node :: rev_path));
        message =
          Printf.sprintf
            "subplan is provably empty (%s) — replaced by an empty scan"
            reason;
      }
    in
    pruned := (node, note) :: !pruned;
    empty_scan node
  in
  let is_empty node =
    match (node : Physical.t) with
    | Scan r -> Relation.cardinality r = 0
    | _ -> (plan_bounds node).hull = None
  in
  let hull_str node =
    match (plan_bounds node).hull with
    | Some h -> Interval.to_string h
    | None -> "empty"
  in
  let rec go rev_path node =
    let rev_path' = node_label node :: rev_path in
    match (node : Physical.t) with
    | Scan _ -> node
    | Filter f -> Filter { f with child = go rev_path' f.child }
    | Project p -> Project { p with child = go rev_path' p.child }
    | Distinct_project p ->
        Distinct_project { p with child = go rev_path' p.child }
    | Aggregate a -> Aggregate { a with child = go rev_path' a.child }
    | Sort_limit s -> Sort_limit { s with child = go rev_path' s.child }
    | Timeslice t ->
        let child = go rev_path' t.child in
        let node' = Physical.Timeslice { t with child } in
        if (not (is_empty t.child)) && is_empty node' then
          prune rev_path node
            (Printf.sprintf
               "the window %s does not intersect the input's temporal hull %s"
               (Interval.to_string t.window) (hull_str t.child))
        else node'
    | Set_op s -> (
        let left = go rev_path' s.left and right = go rev_path' s.right in
        let node' = Physical.Set_op { s with left; right } in
        match s.kind with
        | `Intersect when is_empty s.left || is_empty s.right ->
            prune rev_path node "one side of the intersection is empty"
        | `Intersect when is_empty node' ->
            prune rev_path node
              (Printf.sprintf
                 "the sides' temporal hulls %s and %s are disjoint"
                 (hull_str s.left) (hull_str s.right))
        | `Except when is_empty s.left ->
            prune rev_path node "the left side of the difference is empty"
        | `Union when is_empty s.left && is_empty s.right ->
            prune rev_path node "both sides of the union are empty"
        | `Union | `Intersect | `Except -> node')
    | Tp_join j -> (
        let left = go rev_path' j.left and right = go rev_path' j.right in
        let node' = Physical.Tp_join { j with left; right } in
        let disjoint_allen =
          match Theta.temporal j.theta with
          | `Allen rel -> Interval.allen_disjoint rel
          | `Overlap -> false
        in
        match (j.kind : Nj.join_kind) with
        | Inner when disjoint_allen ->
            prune rev_path node
              (Printf.sprintf
                 "\xce\xb8's temporal component (%s) admits no shared time \
                  point, so no overlapping window exists"
                 (match Theta.temporal j.theta with
                 | `Allen rel -> Interval.allen_name rel
                 | `Overlap -> "overlaps"))
        | Inner when is_empty j.left || is_empty j.right ->
            prune rev_path node "one side of the inner join is empty"
        | Inner when is_empty node' ->
            prune rev_path node
              (Printf.sprintf
                 "the sides' temporal hulls %s and %s are disjoint"
                 (hull_str j.left) (hull_str j.right))
        | (Left | Anti) when is_empty j.left ->
            prune rev_path node "the left (preserved) side is empty"
        | Right when is_empty j.right ->
            prune rev_path node "the right (preserved) side is empty"
        | Full when is_empty j.left && is_empty j.right ->
            prune rev_path node "both sides of the full outer join are empty"
        | Inner | Left | Right | Full | Anti -> node')
  in
  let plan = go [] plan in
  (plan, List.rev !pruned)

(* --- deep passes: static safe-plan classification ----------------------

   When is every output lineage of a TP join read-once? The windows
   conjoin ONE tuple of the preserved side with the (negated) lineages
   of SEVERAL tuples of the other side (WU/WN negate every matching
   partner in the gap). So:

   - the side contributing one lineage per output needs every individual
     lineage read-once ("safe": any composition of safe joins);
   - a side whose tuples are conjoined several-at-a-time needs pairwise
     variable-disjoint tuple lineages ("scanlike": a chain of
     lineage-preserving unaries over a duplicate-free base scan whose
     lineages are distinct bare variables);
   - and the two sides must draw on disjoint base relations (a self-join
     repeats variables across the sides).

   Inner joins build WO only (one tuple each side), so both sides may be
   arbitrary safe subtrees; outer and anti joins constrain the side(s)
   they negate. [false]/[Hard] is always sound — the runtime read-once
   check simply stays on. *)

type shape = Hard | Safe of { bases : string list; scanlike : bool }

let scan_safe ~stats r =
  let s =
    match stats (Relation.name r) with
    | Some s -> s
    | None -> Stats.of_relation r
  in
  s.Stats.duplicate_free && s.Stats.lineage_safe

(* The side-disjointness check must see the {e lineage variables'}
   relation tags, not the scan's name: a CSV loaded with an explicit
   lineage column (or a copied database file) can reuse another
   relation's variables under a fresh relation name, and a variable
   shared across the two sides of a join breaks read-once factorization
   regardless of what the scans are called. *)
let scan_base_tags r =
  List.filter_map
    (fun tp ->
      match Formula.view (Tuple.lineage tp) with
      | Formula.Var v -> Some (Var.rel v)
      | Formula.True | Formula.False | Formula.Not _ | Formula.And _
      | Formula.Or _ ->
          None)
    (Relation.tuples r)
  |> List.sort_uniq String.compare

let rec plan_shape ~stats node =
  match (node : Physical.t) with
  | Scan r ->
      if scan_safe ~stats r then Safe { bases = scan_base_tags r; scanlike = true }
      else Hard
  | Filter { child; _ }
  | Timeslice { child; _ }
  | Project { child; _ }
  | Sort_limit { child; _ } ->
      (* lineage-preserving and tuple-preserving: distinct tuples keep
         distinct lineages *)
      plan_shape ~stats child
  | Tp_join { kind; left; right; _ } -> (
      match (plan_shape ~stats left, plan_shape ~stats right) with
      | Safe l, Safe r ->
          let sides_ok =
            match (kind : Nj.join_kind) with
            | Inner -> true
            | Left | Anti -> r.scanlike
            | Right -> l.scanlike
            | Full -> l.scanlike && r.scanlike
          in
          if sides_ok && bases_disjoint l.bases r.bases then
            Safe { bases = l.bases @ r.bases; scanlike = false }
          else Hard
      | (Hard | Safe _), _ -> Hard)
  | Distinct_project _ | Aggregate _ | Set_op _ ->
      (* lineages are disjoined / rebuilt: not bare-variable shaped *)
      Hard

let read_once_safe ?(stats = fun _ -> None) node =
  match plan_shape ~stats node with Safe _ -> true | Hard -> false

let tag_safe ?(stats = fun _ -> None) plan =
  let tagged = ref 0 in
  let rec go node =
    match (node : Physical.t) with
    | Scan _ -> node
    | Filter f -> Filter { f with child = go f.child }
    | Project p -> Project { p with child = go p.child }
    | Distinct_project p -> Distinct_project { p with child = go p.child }
    | Timeslice t -> Timeslice { t with child = go t.child }
    | Aggregate a -> Aggregate { a with child = go a.child }
    | Sort_limit s -> Sort_limit { s with child = go s.child }
    | Set_op s -> Set_op { s with left = go s.left; right = go s.right }
    | Tp_join j ->
        let safe = j.safe_lineage || read_once_safe ~stats node in
        if safe && not j.safe_lineage then begin
          incr tagged;
          Metrics.incr Metrics.Analysis_safe_joins
        end;
        Tp_join
          { j with safe_lineage = safe; left = go j.left; right = go j.right }
  in
  let plan = go plan in
  (plan, !tagged)

let optimize ?(stats = fun _ -> None) plan =
  let plan, fold_notes = simplify_thetas plan in
  let plan, prunes = prune_empty plan in
  let plan, _ = tag_safe ~stats plan in
  (plan, fold_notes @ List.map snd prunes)

(* --- the deep check ---------------------------------------------------- *)

(* Classification report: one diagnostic per TP join — a Note when its
   output lineages are statically read-once, a Warning when the plan is
   provably hard-shaped (a base relation on both sides). *)
let classification_report ~stats plan =
  let diags = ref [] in
  let rec walk rev_path node =
    let rev_path' = node_label node :: rev_path in
    let path = String.concat " > " (List.rev rev_path') in
    (match (node : Physical.t) with
    | Tp_join { kind = _; left; right; safe_lineage; _ } -> (
        match plan_shape ~stats node with
        | Safe _ ->
            diags :=
              {
                severity = Note;
                code = "safe-plan";
                path;
                message =
                  Printf.sprintf
                    "every output lineage is read-once%s: probabilities \
                     factorize over the connectives with no runtime \
                     read-once check and no BDD fallback"
                    (if safe_lineage then " (tagged)" else "");
              }
              :: !diags
        | Hard -> (
            (* provably hard only when both sides are safe-shaped but
               share a base relation *)
            match (plan_shape ~stats left, plan_shape ~stats right) with
            | Safe l, Safe r when not (bases_disjoint l.bases r.bases) ->
                let shared =
                  List.filter
                    (fun b -> List.exists (String.equal b) r.bases)
                    l.bases
                in
                diags :=
                  {
                    severity = Warning;
                    code = "hard-plan";
                    path;
                    message =
                      Printf.sprintf
                        "base relation(s) %s appear on both sides of the \
                         join — output lineages can repeat their variables \
                         and probability computation may fall back to exact \
                         BDD model counting (#P-hard in general)"
                        (String.concat ", " shared);
                  }
                  :: !diags
            | _ -> ()))
    | Scan _ | Filter _ | Project _ | Distinct_project _ | Timeslice _
    | Aggregate _ | Sort_limit _ | Set_op _ ->
        ());
    List.iter (walk rev_path') (Physical.children node)
  in
  walk [] plan;
  List.rev !diags

let bounds_report plan =
  let b = plan_bounds plan in
  let root =
    {
      severity = Note;
      code = "plan-bounds";
      path = node_label plan;
      message =
        (match b.hull with
        | None ->
            "the plan's output is provably empty (temporal hull \xe2\x8a\xa5)"
        | Some h ->
            Printf.sprintf
              "output lies within temporal hull %s; probabilities within \
               [%.3f, %.3f]"
              (Interval.to_string h) b.p_lo b.p_hi);
    }
  in
  let zero =
    if b.hull <> None && b.p_hi = 0.0 then
      [
        {
          severity = Warning;
          code = "zero-probability";
          path = node_label plan;
          message =
            "every output probability is provably 0 — some input assigns \
             probability 0 to all its tuples";
        };
      ]
    else []
  in
  root :: zero

let check_deep ?(stats = fun _ -> None) plan =
  Metrics.incr Metrics.Analysis_deep_passes;
  Metrics.time Metrics.Analysis_ns @@ fun () ->
  let base = check plan in
  let _, fold_notes = simplify_thetas plan in
  let _, prunes = prune_empty plan in
  base @ fold_notes
  @ List.map snd prunes
  @ classification_report ~stats plan
  @ bounds_report plan
