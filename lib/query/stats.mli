(** Per-relation statistics for the deep analyzer and the cost model.

    A {!t} summarizes one TP relation: cardinality, per-column distinct
    counts, the temporal hull with equi-width start/end histograms and a
    deterministic interval sample, probability moments, and the two
    structural flags the static safe-plan classification needs
    ([duplicate_free], [lineage_safe]).

    Statistics are computed by {!of_relation} (one pass plus a sort per
    column), persisted next to the data as [<name>.stats] in a
    line-oriented text format ({!save}/{!load}), and memoized per
    catalog by {!Tpdb_query.Catalog.stats}. The planner treats them as
    advisory: a missing or stale stats file only degrades estimate
    quality, never correctness. *)

val buckets : int
(** Number of equi-width histogram buckets (16). *)

val sample_size : int
(** Maximum interval-sample size (256). The sample is systematic (every
    k-th tuple in fact/start order), so it is deterministic for a given
    relation. *)

type t = {
  relation : string;  (** relation name the stats describe *)
  cardinality : int;
  distinct : int array;  (** per fact column, distinct value count *)
  tmin : int;  (** hull start; [0] when the relation is empty *)
  tmax : int;  (** hull end (exclusive); [0] when empty *)
  mean_span : float;  (** mean interval duration *)
  start_hist : int array;  (** interval starts per bucket over the hull *)
  end_hist : int array;  (** interval ends per bucket over the hull *)
  sample : (int * int) array;  (** (ts, te) interval sample, ≤ {!sample_size} *)
  p_min : float;
  p_max : float;
  p_mean : float;
  duplicate_free : bool;
      (** {!Tpdb_relation.Relation.is_duplicate_free} at stats time *)
  lineage_safe : bool;
      (** every tuple lineage is a bare variable and no variable repeats
          — the base-relation shape the safe-plan rule requires (CSV
          loads with explicit lineage columns can violate it) *)
}

val of_relation : Tpdb_relation.Relation.t -> t
(** Computes fresh statistics. Deterministic: same relation, same
    stats. *)

val refresh_safety : t -> Tpdb_relation.Relation.t -> t
(** Recomputes the safety-critical flags ([duplicate_free],
    [lineage_safe]) from the live relation, keeping every other field.
    The safe-plan classification skips the runtime read-once check on
    the word of these flags, so they must never be trusted from a
    persisted file — the data may have changed since it was written. *)

val describes : t -> Tpdb_relation.Relation.t -> bool
(** Cheap staleness test: do the stats agree with the live relation on
    cardinality and temporal hull? Gates only the advisory cost fields
    of a persisted file — agreement does not prove the file current,
    which is why {!refresh_safety} applies regardless. *)

val save : t -> string -> unit
(** Writes the line-oriented text rendering to a file. *)

val load : string -> (t, string) result
(** Parses a file written by {!save}. [Error] carries a one-line reason
    (missing file, version mismatch, malformed line). *)

val file : dir:string -> string -> string
(** [file ~dir name] is ["<dir>/<name>.stats"] — where {!save} output
    for relation [name] lives by convention. *)

val to_string : t -> string
(** Human-readable multi-line summary, printed by [tpdb_cli stats]. *)
