module Relation = Tpdb_relation.Relation
module Theta = Tpdb_windows.Theta
module Window = Tpdb_windows.Window
module Lawan = Tpdb_windows.Lawan
module Nj = Tpdb_joins.Nj
module Ta = Tpdb_alignment.Ta
module Align = Tpdb_alignment.Align
module Datasets = Tpdb_workload.Datasets
module Metrics = Tpdb_obs.Metrics

type dataset = Webkit | Meteo

let dataset_name = function Webkit -> "webkit" | Meteo -> "meteo"

let theta = function Webkit -> Theta.eq 0 0 | Meteo -> Theta.eq 1 1

type scale = Quick | Default | Paper

(* The paper samples 50–200K-tuple subsets out of a ~257K-tuple dataset,
   i.e. 20–100% of the universe; the sweeps keep those proportions at
   every scale. Meteo universes are smaller throughout: its unselective θ
   makes outputs (and the paper's own runtimes, up to 10^6 ms) grow
   quadratically with input size. *)
let universe_size dataset scale =
  match (dataset, scale) with
  | _, Quick -> 1_000
  | Webkit, Default -> 16_000
  | Meteo, Default -> 8_000
  | Webkit, Paper -> 200_000
  | Meteo, Paper -> 20_000

let sizes dataset scale =
  let quarter = universe_size dataset scale / 4 in
  [ quarter; 2 * quarter; 3 * quarter; 4 * quarter ]

let base_pair_cache : (dataset * int, Relation.t * Relation.t) Hashtbl.t =
  Hashtbl.create 4

let base_pair dataset scale =
  let size = universe_size dataset scale in
  match Hashtbl.find_opt base_pair_cache (dataset, size) with
  | Some pair -> pair
  | None ->
      let pair =
        match dataset with
        | Webkit -> Datasets.Webkit.pair ~seed:42 size
        | Meteo -> Datasets.Meteo.pair ~seed:7 size
      in
      Hashtbl.add base_pair_cache (dataset, size) pair;
      pair

let pair ?(scale = Default) dataset ~size =
  let r, s = base_pair dataset scale in
  if size > Relation.cardinality r then
    invalid_arg
      (Printf.sprintf "Experiments.pair: size %d exceeds %s universe %d" size
         (dataset_name dataset) (Relation.cardinality r));
  ( Datasets.subset ~seed:(size + 1) ~k:size r,
    Datasets.subset ~seed:(size + 2) ~k:size s )

type point = {
  series : string;
  size : int;
  ms : float;
  output : int;
  rss_kb : int;  (* per-point process peak RSS; 0 = not measured *)
}

(* Every sweep point is also an allocation extent: with a metrics sink
   installed (bench --json) the minor words the measuring domain
   allocates while producing the point accumulate in
   [Minor_alloc_words], which the bench regression gate bounds. *)
let timed f =
  Metrics.count_alloc Metrics.Minor_alloc_words (fun () ->
      let t0 = Unix.gettimeofday () in
      let output = f () in
      let ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
      (ms, output))

let point series size f =
  let ms, output = timed f in
  { series; size; ms; output; rss_kb = 0 }

let sweep ?(scale = Default) dataset runners =
  let theta = theta dataset in
  List.concat_map
    (fun size ->
      let r, s = pair ~scale dataset ~size in
      List.map (fun (series, run) -> point series size (fun () -> run ~theta r s)) runners)
    (sizes dataset scale)

let seq_length seq = Seq.fold_left (fun n _ -> n + 1) 0 seq

let fig5 ?scale dataset =
  sweep ?scale dataset
    [
      ("NJ", fun ~theta r s -> seq_length (Nj.windows_wuo ~theta r s));
      ( "TA",
        fun ~theta r s ->
          List.length (Ta.windows_wuo ~algorithm:`Hash ~theta r s) );
    ]

let fig6 ?(scale = Default) dataset =
  let nj_wn ~theta r s =
    (* LAWAN alone: the WUO stream is materialized outside the clock. *)
    let wuo = List.of_seq (Nj.windows_wuo ~theta r s) in
    let ms, output =
      timed (fun () -> seq_length (Lawan.extend (List.to_seq wuo)))
    in
    (ms, output)
  in
  let theta = theta dataset in
  List.concat_map
    (fun size ->
      let r, s = pair ~scale dataset ~size in
      let wn_ms, wn_out = nj_wn ~theta r s in
      [
        { series = "NJ-WN"; size; ms = wn_ms; output = wn_out; rss_kb = 0 };
        point "NJ-WUON" size (fun () -> seq_length (Nj.windows_wuon ~theta r s));
        point "TA" size (fun () ->
            List.length (Ta.windows_wuon ~algorithm:`Hash ~theta r s));
      ])
    (sizes dataset scale)

let fig7 ?scale dataset =
  sweep ?scale dataset
    [
      ("NJ", fun ~theta r s -> Relation.cardinality (Nj.left_outer ~theta r s));
      ( "TA",
        fun ~theta r s ->
          Relation.cardinality (Ta.left_outer ~algorithm:`Nested_loop ~theta r s) );
    ]

let nj_paper_scale dataset =
  let theta = theta dataset in
  List.map
    (fun size ->
      let r, s = pair ~scale:Paper dataset ~size in
      point "NJ" size (fun () -> Relation.cardinality (Nj.left_outer ~theta r s)))
    (sizes dataset Paper)

let ablation_join_algorithm ?scale dataset =
  let series name algorithm =
    ( name,
      fun ~theta r s ->
        seq_length
          (Nj.windows_wuo ~options:(Nj.options ~algorithm ()) ~theta r s) )
  in
  sweep ?scale dataset
    [
      series "flat" `Flat;
      series "hash" `Hash;
      series "merge" `Merge;
      series "index" `Index;
      series "nested-loop" `Nested_loop;
    ]

(* The domain-parallel partitioned sweep vs the sequential one: the same
   WUON pipeline at increasing partition counts, all on the shared
   domain pool. Speedups require actual cores; on a single-core host the
   series only shows the partitioning overhead. *)
let parallel_jobs = [ 1; 2; 4 ]

let parallel_sweep ?scale dataset =
  sweep ?scale dataset
    (List.map
       (fun jobs ->
         ( Printf.sprintf "jobs-%d" jobs,
           fun ~theta r s ->
             seq_length
               (Nj.windows_wuon
                  ~options:(Nj.options ~parallelism:jobs ())
                  ~theta r s) ))
       parallel_jobs)

(* The flat struct-of-arrays sweep core against the legacy Seq-of-records
   chain (hash probe + LAWAU + LAWAN), full WUON pipeline on both sides.
   The bench regression gate asserts a throughput-ratio floor between
   these two series, which keeps the check machine-independent. *)
let ablation_sweep_engine ?scale dataset =
  let run algorithm ~theta r s =
    seq_length (Nj.windows_wuon ~options:(Nj.options ~algorithm ()) ~theta r s)
  in
  sweep ?scale dataset
    [ ("flat", run `Flat); ("legacy", run `Hash) ]

(* The flat core at headline scale: a 10^6-tuples-per-input series on
   the generic uniform generator. Sizes are fixed rather than derived
   from [?scale] so the committed BENCH_6.json baseline always carries
   the million-tuple points. ~1000-entry key groups put the series in
   the regime the flat layout is built for: candidate scans long enough
   that per-candidate cost — a raw endpoint-array read vs a Seq closure
   plus a record — dominates.

   Three series. [flat-kernel] is {!Tpdb_windows.Flat_join.count}, the
   sweep core counting every WUON window straight off the endpoint
   buffers with nothing materialized; it runs at every size. [flat] and
   [legacy] enumerate the same windows through the materializing
   pipeline and run only at {!flat_scale_ratio_size} (the legacy chain
   at 10^6 would dominate CI time); legacy-over-kernel ms at that size
   is the machine-independent sweep-throughput ratio the bench
   regression gate holds ≥5x. *)
let flat_scale_sizes = [ 125_000; 250_000; 500_000; 1_000_000 ]
let flat_scale_ratio_size = List.hd flat_scale_sizes

let flat_scale_sweep () =
  let module Flat_join = Tpdb_windows.Flat_join in
  let theta = Theta.eq 0 0 in
  let run algorithm r s =
    seq_length
      (Nj.windows_wuon ~options:(Nj.options ~algorithm ()) ~theta r s)
  in
  List.concat_map
    (fun size ->
      let make name seed =
        Datasets.Uniform.relation ~name ~seed:(seed + size)
          ~keys:(max 1 (size / 1024)) ~horizon:12_800 ~mean_duration:50 size
      in
      let r = make "r" 500 and s = make "s" 600 in
      let kernel =
        point "flat-kernel" size (fun () ->
            Flat_join.count ~stage:`Wuon ~theta r s)
      in
      if size = flat_scale_ratio_size then
        [
          kernel;
          point "flat" size (fun () -> run `Flat r s);
          point "legacy" size (fun () -> run `Hash r s);
        ]
      else [ kernel ])
    flat_scale_sizes

let ablation_pipelining ?scale dataset =
  let module Overlap = Tpdb_windows.Overlap in
  let module Lawau = Tpdb_windows.Lawau in
  sweep ?scale dataset
    [
      ( "pipelined",
        fun ~theta r s -> seq_length (Nj.windows_wuon ~theta r s) );
      ( "materialized",
        fun ~theta r s ->
          (* Force every stage boundary, as a non-pipelined executor
             (or TA's sub-result union) would. *)
          let overlap = List.of_seq (Overlap.left ~theta r s) in
          let wuo = List.of_seq (Lawau.extend (List.to_seq overlap)) in
          List.length (List.of_seq (Lawan.extend (List.to_seq wuo))) );
    ]

(* Selectivity sweep: fixed input size, varying distinct-key count. Few
   keys = the Meteo regime (huge outputs), many keys = the Webkit regime
   (selective θ). *)
let selectivity_sweep ?(size = 4_000) () =
  let theta = Theta.eq 0 0 in
  List.concat_map
    (fun keys ->
      let make name seed =
        Datasets.Uniform.relation ~name ~seed:(seed + keys) ~keys
          ~horizon:2_000 ~mean_duration:40 size
      in
      let r = make "r" 100 and s = make "s" 200 in
      [
        { (point "NJ" keys (fun () ->
               Relation.cardinality (Nj.left_outer ~theta r s)))
          with size = keys };
        { (point "TA" keys (fun () ->
               Relation.cardinality (Ta.left_outer ~algorithm:`Hash ~theta r s)))
          with size = keys };
      ])
    [ 2; 8; 64; 512; 4096 ]

(* Skew sweep: fixed size and key count, varying Zipf exponent. *)
let skew_sweep ?(size = 4_000) () =
  let theta = Theta.eq 0 0 in
  List.concat_map
    (fun tenths ->
      let skew = float_of_int tenths /. 10.0 in
      let make name seed =
        Datasets.Uniform.relation ~skew ~name ~seed:(seed + tenths) ~keys:256
          ~horizon:2_000 ~mean_duration:40 size
      in
      let r = make "r" 300 and s = make "s" 400 in
      [
        { (point "NJ" tenths (fun () ->
               Relation.cardinality (Nj.left_outer ~theta r s)))
          with size = tenths };
        { (point "TA" tenths (fun () ->
               Relation.cardinality (Ta.left_outer ~algorithm:`Hash ~theta r s)))
          with size = tenths };
      ])
    [ 0; 5; 10; 15; 20 ]

(* Lineage-heavy prob-cache sweep: the outer input is itself a TP join
   result — the paper's composed queries (an outer join feeding an anti
   join, views over one probabilistic database). Derived lineages are
   non-read-once (the same base variable recurs across a window
   conjunction and its negations), so every probability needs a BDD
   compile, and the sweep replays each derived lineage verbatim across
   its gap windows — exactly the whole-formula repetition the per-domain
   cache memoizes. One env closure is shared across the cached and
   uncached series of a size, so the cached anti join additionally hits
   the full outer join's memoized lineages (cross-operator reuse); the
   two kinds are the paper's negation operators. *)
let prob_cache_kinds = [ ("full-outer", Nj.Full); ("anti", Nj.Anti) ]

let prob_cache_sizes = function
  | Quick -> [ 200; 400 ]
  | Default | Paper -> [ 500; 1_000; 2_000 ]

let prob_cache_sweep ?(scale = Default) () =
  let theta = Theta.eq 0 0 in
  List.concat_map
    (fun size ->
      let make name seed =
        Datasets.Uniform.relation ~name ~seed:(seed + size) ~keys:8
          ~horizon:1_000 ~mean_duration:60 size
      in
      let r = make "r" 17 and s = make "s" 23 in
      let env = Relation.prob_env [ r; s ] in
      (* The derived input: untimed setup, identical for both series;
         computed uncached so the cached series starts cold. *)
      let t =
        Nj.join
          ~options:(Nj.options ~prob_cache:false ())
          ~env ~kind:Nj.Full ~theta r s
      in
      List.concat_map
        (fun (cname, prob_cache) ->
          let options = Nj.options ~prob_cache () in
          List.map
            (fun (kname, kind) ->
              point
                (Printf.sprintf "%s/%s" kname cname)
                size
                (fun () ->
                  Relation.cardinality (Nj.join ~options ~env ~kind ~theta t s)))
            prob_cache_kinds)
        [ ("uncached", false); ("cached", true) ])
    (prob_cache_sizes scale)

(* Per-kind speedup of the cached over the uncached series, summed over
   the sweep sizes (total uncached ms / total cached ms). *)
let prob_cache_speedups points =
  List.map
    (fun (kname, _) ->
      let total suffix =
        List.fold_left
          (fun acc p ->
            if p.series = kname ^ "/" ^ suffix then acc +. p.ms else acc)
          0.0 points
      in
      let cached = total "cached" in
      (kname, if cached > 0.0 then total "uncached" /. cached else 0.0))
    prob_cache_kinds

let ablation_replication dataset ~size =
  let theta = theta dataset in
  let r, s = pair dataset ~size in
  let replicas = Align.replica_count ~algorithm:`Hash ~theta r s in
  let windows = seq_length (Nj.windows_wuon ~theta r s) in
  (replicas, windows)

let replication_report dataset ~size =
  let replicas, windows = ablation_replication dataset ~size in
  Printf.sprintf
    "input |r| = %d; TA materializes %d aligned replicas (%.1fx of r) as \
     intermediates before its second join; NJ streams %d windows with no \
     intermediate materialization"
    size replicas
    (float_of_int replicas /. float_of_int size)
    windows

let print_points ~header points =
  Printf.printf "\n== %s ==\n" header;
  (* the peak-RSS column appears only on sweeps that measured it, so the
     existing tables stay byte-identical *)
  let with_rss = List.exists (fun p -> p.rss_kb > 0) points in
  Printf.printf "%-10s %10s %12s %12s%s\n" "series" "size" "runtime[ms]"
    "output"
    (if with_rss then Printf.sprintf " %12s" "peak-rss[MB]" else "");
  List.iter
    (fun p ->
      Printf.printf "%-10s %10d %12.1f %12d%s\n" p.series p.size p.ms p.output
        (if with_rss then
           Printf.sprintf " %12.1f" (float_of_int p.rss_kb /. 1024.0)
         else ""))
    points;
  flush stdout
