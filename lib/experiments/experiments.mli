(** Runners for the paper's evaluation (Figs. 5, 6, 7) plus the ablation
    studies DESIGN.md calls out. Shared by [bench/main.ml] and the CLI.

    Every figure is a parameter sweep over input cardinality on two
    dataset families (Webkit-like, Meteo-like). Following the paper,
    sweeps draw uniform subsets of one generated dataset pair. Default
    sizes are scaled down from the paper's 50–200K so that the TA
    baseline's quadratic plans finish in seconds; [`Paper] scale runs the
    NJ series at the published sizes (see EXPERIMENTS.md for the
    recorded results at both scales). *)

module Relation = Tpdb_relation.Relation
module Theta = Tpdb_windows.Theta

type dataset = Webkit | Meteo

val dataset_name : dataset -> string
val theta : dataset -> Theta.t
(** File = File for Webkit, Metric = Metric for Meteo. *)

type scale = Quick | Default | Paper

val universe_size : dataset -> scale -> int
(** Size of the generated dataset a sweep samples subsets from. *)

val sizes : dataset -> scale -> int list
(** The sweep sizes: 25%, 50%, 75% and 100% of the universe, mirroring
    the paper's 50–200K subsets of the ~257K-tuple Webkit dataset. *)

val pair : ?scale:scale -> dataset -> size:int -> Relation.t * Relation.t
(** Uniform subsets (of [size] tuples each) of the deterministic
    universe pair for [scale] (default [Default]). Memoized per
    universe. *)

type point = {
  series : string;
  size : int;  (** tuples per input side *)
  ms : float;
  output : int;  (** result cardinality (windows or tuples) *)
  rss_kb : int;
      (** peak resident set (VmHWM) of the process that produced the
          point, in kB; [0] when not measured — only the out-of-core
          spill series runs each point in its own process to get a
          per-point peak *)
}

val fig5 : ?scale:scale -> dataset -> point list
(** WUO — overlapping and unmatched windows: series NJ and TA (both with
    the hash join, as in the paper where both share the conventional-join
    plan). *)

val fig6 : ?scale:scale -> dataset -> point list
(** Negating windows: series NJ-WN (LAWAN alone over a pre-materialized
    WUO), NJ-WUON (windows pipeline end to end) and TA. *)

val fig7 : ?scale:scale -> dataset -> point list
(** Full TP left outer join: series NJ (hash) and TA (nested loop — the
    plan PostgreSQL's optimizer picks for TA's θo ∧ θ predicate). *)

val nj_paper_scale : dataset -> point list
(** NJ-only left outer join at the paper's input sizes (50–200K for
    Webkit; capped for Meteo, whose outputs grow quadratically in input
    size — see EXPERIMENTS.md). *)

val ablation_join_algorithm : ?scale:scale -> dataset -> point list
(** NJ's WUO stage across every probe algorithm — the flat core plus the
    legacy hash/merge/index/nested-loop paths (why TA's plan choice
    hurts, paper §IV). *)

val ablation_sweep_engine : ?scale:scale -> dataset -> point list
(** Full WUON pipeline: the flat struct-of-arrays core ([`Flat]) vs the
    legacy Seq-of-records chain ([`Hash] + LAWAU + LAWAN). The series
    ratio is the machine-independent throughput floor the bench
    regression gate asserts. *)

val flat_scale_sizes : int list
(** The input sizes of {!flat_scale_sweep}: 125K to 10^6 tuples per
    side. *)

val flat_scale_ratio_size : int
(** The one size at which {!flat_scale_sweep} also runs the two
    materializing pipelines; legacy-over-kernel ms at this size is the
    ≥5x sweep-throughput floor bench/check_bench.py asserts. *)

val flat_scale_sweep : unit -> point list
(** The flat sweep core at fixed sizes up to 10^6 tuples per input
    (uniform generator, ~1000-entry key groups). Series [flat-kernel]
    ({!Tpdb_windows.Flat_join.count}, nothing materialized) at every
    size; series [flat] and [legacy] (the materializing WUON pipelines)
    at {!flat_scale_ratio_size} only. *)

val ablation_pipelining : ?scale:scale -> dataset -> point list
(** End-to-end lazy window pipeline vs forcing a materialization at every
    stage boundary (validates the paper's pipelined-integration claim). *)

val selectivity_sweep : ?size:int -> unit -> point list
(** NJ vs TA (hash) left outer join at a fixed input size over distinct-
    key counts {2, 8, 64, 512, 4096}: the [size] field of each point is
    the key count. Shows the continuum between the Meteo regime (few
    keys, output-bound) and the Webkit regime (many keys, selective). *)

val skew_sweep : ?size:int -> unit -> point list
(** Same comparison over Zipf exponents {0, 0.5, 1, 1.5, 2} (the [size]
    field is the exponent in tenths) at 256 keys: key skew concentrates
    matches like low key counts do. *)

val parallel_jobs : int list
(** The partition counts of {!parallel_sweep}: [1; 2; 4]. *)

val parallel_sweep : ?scale:scale -> dataset -> point list
(** The WUON pipeline under the domain-parallel partitioned executor:
    series [jobs-1], [jobs-2], [jobs-4] (sequential baseline and 2/4-way
    sharding on the equi-key). Outputs are identical across series by
    construction; the runtime ratio is the parallel speedup (requires
    actual cores — a single-core host only shows the partitioning
    overhead). *)

val prob_cache_sweep : ?scale:scale -> unit -> point list
(** Lineage-heavy series for the probability cache: full outer and anti
    joins over few-key uniform pairs (8 keys, so window lineages are
    large conjunctions over recurring variables), each run uncached
    ([prob_cache:false]) and cached under one shared env. Series names
    are [full-outer/cached], [full-outer/uncached], [anti/cached],
    [anti/uncached]; outputs (and probabilities) are identical within a
    kind by construction. *)

val prob_cache_speedups : point list -> (string * float) list
(** Per join kind, total uncached runtime over total cached runtime of a
    {!prob_cache_sweep} result: the memoization speedup. *)

val ablation_replication : dataset -> size:int -> int * int
(** (TA replicas, NJ windows) at one size: the tuple replication NJ
    avoids. *)

val replication_report : dataset -> size:int -> string
(** Human-readable rendering of {!ablation_replication}, including the
    replication factor relative to the input size. *)

val print_points : header:string -> point list -> unit
(** Renders a figure's sweep as an aligned text table on stdout. *)
