module Interval = Tpdb_interval.Interval
module Formula = Tpdb_lineage.Formula
module Relation = Tpdb_relation.Relation
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Prob = Tpdb_lineage.Prob
module Theta = Tpdb_windows.Theta
module Window = Tpdb_windows.Window
module Overlap = Tpdb_windows.Overlap
module Concat = Tpdb_joins.Concat

let default_algorithm : Overlap.algorithm = `Nested_loop

(* Pass 1: the conventional outer join (overlapping pairs plus spanning
   unmatched windows for never-matched r tuples). *)
let pass1 ~algorithm ~theta r s =
  List.of_seq (Overlap.left ~algorithm ~theta r s)

(* Pass 2: align every r tuple (second execution of the join), then let
   every replica re-scan its match list — TA's redundant interval
   comparisons — to classify itself as unmatched or negating. *)
let pass2 ~algorithm ~theta r s =
  List.concat_map
    (fun (r_tuple, matches, segments) ->
      let fr = Tuple.fact r_tuple
      and lr = Tuple.lineage r_tuple
      and rspan = Tuple.iv r_tuple in
      List.map
        (fun segment ->
          let covering =
            List.filter
              (fun m -> Interval.covers (Tuple.iv m) segment)
              matches
          in
          match covering with
          | [] -> Window.unmatched ~fr ~iv:segment ~lr ~rspan
          | _ ->
              Window.negating ~fr ~iv:segment ~lr
                ~ls:(Formula.disj (List.map Tuple.lineage covering))
                ~rspan)
        segments)
    (Align.replicate ~algorithm ~theta r s)

(* The unmatched-only variant of pass 2, used when no negating windows are
   requested (Fig. 5's WUO experiment): the join is still executed a second
   time, but each tuple only needs its coverage gaps, not the per-replica
   λs aggregation. *)
let pass2_unmatched ~algorithm ~theta r s =
  let probe = Overlap.prober ~algorithm ~theta s in
  List.concat_map
    (fun r_tuple ->
      let within = Tuple.iv r_tuple in
      let covered =
        List.filter_map
          (fun m -> Interval.intersect within (Tuple.iv m))
          (probe r_tuple)
      in
      List.map
        (fun gap ->
          Window.unmatched ~fr:(Tuple.fact r_tuple) ~iv:gap
            ~lr:(Tuple.lineage r_tuple) ~rspan:within)
        (Tpdb_interval.Timeline.gaps ~within covered))
    (Relation.tuples r)

(* The de-duplicating union of sub-results: unmatched windows computed by
   both passes must collapse to one. *)
let union_dedup window_lists =
  let sorted = List.sort Window.compare_group_start (List.concat window_lists) in
  let rec uniq = function
    | a :: (b :: _ as rest) ->
        if Window.compare_group_start a b = 0 then uniq rest else a :: uniq rest
    | short -> short
  in
  uniq sorted

let keep kind ws = List.filter (fun w -> Window.kind w = kind) ws

let windows_wuo ?(algorithm = default_algorithm) ~theta r s =
  let first = pass1 ~algorithm ~theta r s in
  let second = pass2_unmatched ~algorithm ~theta r s in
  union_dedup [ first; second ]

let windows_wuon ?(algorithm = default_algorithm) ~theta r s =
  let first = pass1 ~algorithm ~theta r s in
  let second = pass2 ~algorithm ~theta r s in
  union_dedup [ first; second ]

let env_default env r s =
  match env with Some e -> e | None -> Relation.prob_env [ r; s ]

let anti ?(algorithm = default_algorithm) ?env ~theta r s =
  let env = env_default env r s in
  let tuples =
    windows_wuon ~algorithm ~theta r s
    |> List.filter (fun w -> Window.kind w <> Window.Overlapping)
    |> List.map (Concat.tuple_of_window_no_fs ~prob:(Prob.compute env))
  in
  let schema =
    Schema.rename
      (Relation.name r ^ "_anti_" ^ Relation.name s)
      (Relation.schema r)
  in
  Relation.of_tuples schema tuples

let left_outer ?(algorithm = default_algorithm) ?env ~theta r s =
  let env = env_default env r s in
  let pad = Schema.arity (Relation.schema s) in
  let tuples =
    windows_wuon ~algorithm ~theta r s
    |> List.map (Concat.tuple_of_window ~prob:(Prob.compute env) ~side:Concat.Left ~pad)
  in
  Relation.of_tuples (Schema.join (Relation.schema r) (Relation.schema s)) tuples

(* The s side of right/full outer joins: the same two passes run on the
   swapped inputs — TA re-executes the join rather than reusing pass 1. *)
let right_side ~algorithm ~env ~pad_left ~theta r s =
  pass2 ~algorithm ~theta:(Theta.swap theta) s r
  |> List.map (Concat.tuple_of_window ~prob:(Prob.compute env) ~side:Concat.Right ~pad:pad_left)

let right_outer ?(algorithm = default_algorithm) ?env ~theta r s =
  let env = env_default env r s in
  let pad_r = Schema.arity (Relation.schema r) in
  let pad_s = Schema.arity (Relation.schema s) in
  let pairs =
    pass1 ~algorithm ~theta r s
    |> keep Window.Overlapping
    |> List.map (Concat.tuple_of_window ~prob:(Prob.compute env) ~side:Concat.Left ~pad:pad_s)
  in
  let gaps = right_side ~algorithm ~env ~pad_left:pad_r ~theta r s in
  Relation.of_tuples
    (Schema.join (Relation.schema r) (Relation.schema s))
    (pairs @ gaps)

let full_outer ?(algorithm = default_algorithm) ?env ~theta r s =
  let env = env_default env r s in
  let pad_r = Schema.arity (Relation.schema r) in
  let pad_s = Schema.arity (Relation.schema s) in
  let left =
    windows_wuon ~algorithm ~theta r s
    |> List.map (Concat.tuple_of_window ~prob:(Prob.compute env) ~side:Concat.Left ~pad:pad_s)
  in
  let gaps = right_side ~algorithm ~env ~pad_left:pad_r ~theta r s in
  Relation.of_tuples
    (Schema.join (Relation.schema r) (Relation.schema s))
    (left @ gaps)
