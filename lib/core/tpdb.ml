(** Umbrella module: the full public API of the library.

    {1 Data model}
    - {!Interval}, {!Timeline}: half-open intervals over a discrete
      timeline and event-point computations.
    - {!Var}, {!Formula}: lineage variables and formulas.
    - {!Bdd}, {!Prob}: exact probability computation (weighted model
      counting) and the read-once fast path.
    - {!Value}, {!Fact}, {!Schema}, {!Tuple}, {!Relation}, {!Csv}: TP
      relations and persistence.

    {1 The paper's contribution}
    - {!Theta}: join conditions.
    - {!Window}: generalized lineage-aware temporal windows.
    - {!Overlap}, {!Lawau}, {!Lawan}: the pipelined window algorithms.
    - {!Spec}: the Table I definitions, executable (test oracle).
    - {!Nj}: TP inner/outer/anti joins over windows.
    - {!Reference}: timepoint-at-a-time oracle.
    - {!Oracle}: the differential snapshot-semantics oracle — ground
      truth evaluated point by point and diffed against {!Nj.join}
      across every execution configuration (behind the qcheck
      differential suite and [tpdb_cli fuzz --oracle]).

    {1 Baseline and extensions}
    - {!Align}, {!Ta}: the Temporal Alignment baseline.
    - {!Set_ops}: TP set operations (prior work, same windows).

    {1 Infrastructure}
    - {!Operator}, {!Grouping}, {!Hash_partition}, {!Heap}: the pipelined
      executor pieces.
    - {!Pool}, {!Parallel}: the domain pool and the partitioned parallel
      executor behind [Nj.options ~parallelism] / the CLI's [--jobs].
    - {!Rng}, {!Datasets}: reproducible workload generation.
    - {!Ast}, {!Parser}, {!Catalog}, {!Planner}: the TP-SQL front end.
    - {!Analyze}, {!Invariant}: TPSan — the static plan analyzer behind
      [tpdb_cli check] (with the deep statistics-driven passes behind
      [check --deep]) and the runtime window-invariant sanitizer behind
      [--sanitize] / [TPDB_SANITIZE=1].
    - {!Stats}, {!Cost}: per-relation statistics ([tpdb_cli stats]) and
      the cardinality/cost model feeding EXPLAIN's estimate columns and
      the planner's join ordering.
    - {!Hist}, {!Metrics}, {!Trace}, {!Qlog}, {!Obs_clock}: the
      observability layer — lock-free log-bucketed histograms, atomic
      pipeline counters with quantile distributions ([--stats-json],
      [--stats-openmetrics], [bench --json]), span-based tracing with a
      Chrome trace-event exporter and optional per-span GC accounting
      ([--trace]), the structured JSONL query log ([--qlog],
      [tpdb_cli qlog]), and the shared monotonic clock. Metrics and
      Trace are no-ops until a sink is installed.
    - {!Server}, {!Server_client}, {!Server_protocol}: the long-lived
      concurrent-session database server ([tpdb_server]), its blocking
      client library ([tpdb_cli connect], [bench --server]) and the
      length-prefixed binary wire protocol. *)

module Interval = Tpdb_interval.Interval
module Timeline = Tpdb_interval.Timeline
module Var = Tpdb_lineage.Var
module Formula = Tpdb_lineage.Formula
module Bdd = Tpdb_lineage.Bdd
module Prob = Tpdb_lineage.Prob
module Value = Tpdb_relation.Value
module Fact = Tpdb_relation.Fact
module Schema = Tpdb_relation.Schema
module Tuple = Tpdb_relation.Tuple
module Relation = Tpdb_relation.Relation
module Csv = Tpdb_relation.Csv
module Operator = Tpdb_engine.Operator
module Grouping = Tpdb_engine.Grouping
module Hash_partition = Tpdb_engine.Hash_partition
module Heap = Tpdb_engine.Heap
module Sweep = Tpdb_engine.Sweep
module Pool = Tpdb_engine.Pool
module Parallel = Tpdb_engine.Parallel
module Theta = Tpdb_windows.Theta
module Window = Tpdb_windows.Window
module Overlap = Tpdb_windows.Overlap
module Lawau = Tpdb_windows.Lawau
module Lawan = Tpdb_windows.Lawan
module Spec = Tpdb_windows.Spec
module Render = Tpdb_windows.Render
module Concat = Tpdb_joins.Concat
module Nj = Tpdb_joins.Nj
module Reference = Tpdb_joins.Reference
module Oracle = Tpdb_oracle.Oracle
module Align = Tpdb_alignment.Align
module Ta = Tpdb_alignment.Ta
module Set_ops = Tpdb_setops.Set_ops
module Projection = Tpdb_setops.Projection
module Aggregate = Tpdb_setops.Aggregate
module Codec = Tpdb_storage.Codec
module Heap_file = Tpdb_storage.Heap_file
module Buffer_pool = Tpdb_storage.Buffer_pool
module Spill = Tpdb_storage.Spill
module Db = Tpdb_storage.Db
module Rng = Tpdb_workload.Rng
module Datasets = Tpdb_workload.Datasets
module Ast = Tpdb_query.Ast
module Lexer = Tpdb_query.Lexer
module Parser = Tpdb_query.Parser
module Catalog = Tpdb_query.Catalog
module Physical = Tpdb_query.Physical
module Planner = Tpdb_query.Planner
module Analyze = Tpdb_query.Analyze
module Stats = Tpdb_query.Stats
module Cost = Tpdb_query.Cost
module Invariant = Tpdb_windows.Invariant
module Hist = Tpdb_obs.Hist
module Metrics = Tpdb_obs.Metrics
module Trace = Tpdb_obs.Trace
module Qlog = Tpdb_obs.Qlog
module Obs_clock = Tpdb_obs.Clock
module Server = Tpdb_server_lib.Server
module Server_client = Tpdb_server_lib.Client
module Server_protocol = Tpdb_server_lib.Protocol
module Server_store = Tpdb_server_lib.Store
module Server_admission = Tpdb_server_lib.Admission
module Server_plan_cache = Tpdb_server_lib.Plan_cache
module Server_result_cache = Tpdb_server_lib.Result_cache
