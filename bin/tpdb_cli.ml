(* tpdb_cli - command-line access to the library:

     tpdb_cli generate --dataset webkit --size 10000 --prefix /tmp/wk
     tpdb_cli query /tmp/wk_r.csv /tmp/wk_s.csv \
       "SELECT * FROM wk_r LEFT TPJOIN wk_s ON wk_r.File = wk_s.File"
     tpdb_cli experiment --figure fig5 --dataset webkit --scale quick *)

open Cmdliner
module E = Tpdb_experiments.Experiments

let dataset_conv =
  let parse = function
    | "webkit" -> Ok E.Webkit
    | "meteo" -> Ok E.Meteo
    | other -> Error (`Msg (Printf.sprintf "unknown dataset %S" other))
  in
  Arg.conv (parse, fun ppf d -> Format.pp_print_string ppf (E.dataset_name d))

let scale_conv =
  let parse = function
    | "quick" -> Ok E.Quick
    | "default" -> Ok E.Default
    | "paper" -> Ok E.Paper
    | other -> Error (`Msg (Printf.sprintf "unknown scale %S" other))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with E.Quick -> "quick" | E.Default -> "default" | E.Paper -> "paper")
  in
  Arg.conv (parse, print)

(* --- generate --- *)

let generate dataset size seed prefix db_dir =
  let r, s =
    match dataset with
    | E.Webkit -> Tpdb.Datasets.Webkit.pair ~seed size
    | E.Meteo -> Tpdb.Datasets.Meteo.pair ~seed size
  in
  match db_dir with
  | Some dir ->
      let db = Tpdb.Db.open_ dir in
      Tpdb.Db.save db r;
      Tpdb.Db.save db s;
      Printf.printf "stored r (%d tuples) and s (%d tuples) in %s\n"
        (Tpdb.Relation.cardinality r)
        (Tpdb.Relation.cardinality s)
        dir
  | None ->
      let path side = Printf.sprintf "%s_%s.csv" prefix side in
      Tpdb.Csv.save (path "r") r;
      Tpdb.Csv.save (path "s") s;
      Printf.printf "wrote %s (%d tuples) and %s (%d tuples)\n" (path "r")
        (Tpdb.Relation.cardinality r)
        (path "s")
        (Tpdb.Relation.cardinality s)

let generate_cmd =
  let dataset =
    Arg.(value & opt dataset_conv E.Webkit & info [ "dataset" ] ~docv:"NAME"
           ~doc:"Dataset family: webkit or meteo.")
  and size =
    Arg.(value & opt int 10_000 & info [ "size" ] ~docv:"N"
           ~doc:"Tuples per relation.")
  and seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  and prefix =
    Arg.(value & opt string "tpdb" & info [ "prefix" ] ~docv:"PREFIX"
           ~doc:"Output path prefix; writes PREFIX_r.csv and PREFIX_s.csv.")
  and db_dir =
    Arg.(value & opt (some string) None & info [ "db" ] ~docv:"DIR"
           ~doc:"Store into a binary database directory instead of CSV.")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate a synthetic TP dataset pair (CSV or database directory).")
    Term.(const generate $ dataset $ size $ seed $ prefix $ db_dir)

(* --- query / check --- *)

let base_name path = Filename.remove_extension (Filename.basename path)

(* Typed failures (CSV loading, planning, parsing, sanitizer violations)
   all render through the analyzer's diagnostic format, on stderr. *)
let fail_diagnostic d =
  prerr_endline (Tpdb.Analyze.to_string d);
  exit 1

let fail_exn exn =
  match Tpdb.Analyze.diagnostic_of_exn exn with
  | Some d -> fail_diagnostic d
  | None -> raise exn

let load_catalog tables db_dir =
  let catalog = Tpdb.Catalog.create () in
  (try
     (match db_dir with
     | None -> ()
     | Some dir ->
         let db = Tpdb.Db.open_ dir in
         (* pick up statistics persisted by [tpdb_cli stats --db DIR] *)
         Tpdb.Catalog.set_stats_dir catalog dir;
         List.iter
           (fun name -> Tpdb.Catalog.register catalog (Tpdb.Db.load db name))
           (Tpdb.Db.list db));
     List.iter
       (fun path ->
         Tpdb.Catalog.register catalog
           (Tpdb.Csv.load ~name:(base_name path) path))
       tables
   with exn -> fail_exn exn);
  catalog

let plan_or_fail ?sanitize ?prob_cache ?mem_budget catalog jobs sql =
  match Tpdb.Planner.plan ~parallelism:jobs ?sanitize ?prob_cache ?mem_budget
          catalog
          (Tpdb.Parser.parse sql)
  with
  | plan -> plan
  | exception Tpdb.Planner.Plan_error msg ->
      fail_diagnostic
        (Tpdb.Analyze.diagnostic ~severity:Tpdb.Analyze.Error ~code:"plan" msg)
  | exception ((Tpdb.Parser.Parse_error _ | Tpdb.Lexer.Lex_error _) as exn) ->
      fail_exn exn

let print_diagnostics diags =
  List.iter (fun d -> print_endline (Tpdb.Analyze.to_string d)) diags

(* Installs the trace/metrics sinks requested on the command line, runs
   the thunk, then uninstalls the sinks and writes the output files —
   even when the run raises, so a failing query still leaves its partial
   trace behind. *)
let with_observability ~trace_out ~stats_out f =
  let trace = Option.map (fun _ -> Tpdb.Trace.create ()) trace_out in
  let metrics = Option.map (fun _ -> Tpdb.Metrics.create ()) stats_out in
  Option.iter Tpdb.Trace.install trace;
  Option.iter Tpdb.Metrics.install metrics;
  Fun.protect
    ~finally:(fun () ->
      (match (trace, trace_out) with
      | Some t, Some path ->
          Tpdb.Trace.uninstall ();
          Tpdb.Trace.save t path
      | _ -> ());
      match (metrics, stats_out) with
      | Some m, Some path ->
          Tpdb.Metrics.uninstall ();
          Tpdb.Metrics.save m path
      | _ -> ())
    f

(* The execution settings that are not part of the plan tree, printed
   above every EXPLAIN / EXPLAIN ANALYZE report. The optional sinks
   (openmetrics, qlog) only append a segment when requested, so existing
   expectations stay byte-identical. *)
let explain_header ~sanitize ~prob_cache ~trace_out ~stats_out ~openmetrics_out
    ~qlog_out =
  let sink label = function Some path -> label ^ ": " ^ path | None -> label ^ ": off" in
  let opt label = function None -> "" | Some path -> "; " ^ label ^ ": " ^ path in
  Printf.sprintf "-- sanitize: %s; %s; %s%s%s%s"
    (if sanitize then "on" else "off")
    (sink "trace" trace_out)
    (sink "stats" stats_out)
    (opt "openmetrics" openmetrics_out)
    (opt "qlog" qlog_out)
    (* default-on: only worth a line when disabled, and the cram
       expectations of cache-on runs stay byte-identical *)
    (if prob_cache then "" else "; prob-cache: off")

let iso_utc () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* --slow-ms wins over the environment, mirroring --sanitize. *)
let slow_threshold = function
  | Some ms -> Some ms
  | None -> (
      match Sys.getenv_opt "TPDB_SLOW_MS" with
      | None -> None
      | Some s -> float_of_string_opt s)

let query tables db_dir explain_only analyze result_only jobs sanitize
    no_prob_cache mem_budget_mb trace_out stats_out openmetrics_out qlog_out
    slow_ms sql =
  let catalog = load_catalog tables db_dir in
  let sanitize_flag = if sanitize then Some true else None in
  let prob_cache = not no_prob_cache in
  (* --mem-budget wins over TPDB_MEM_BUDGET (which Nj reads itself when
     the plan carries no budget), mirroring --slow-ms / TPDB_SLOW_MS. *)
  let mem_budget = Option.map (fun mb -> mb * 1024 * 1024) mem_budget_mb in
  let plan =
    plan_or_fail ?sanitize:sanitize_flag ~prob_cache ?mem_budget catalog jobs
      sql
  in
  let sanitize_on = sanitize || Tpdb.Invariant.env_enabled () in
  let slow_ms = slow_threshold slow_ms in
  let header =
    explain_header ~sanitize:sanitize_on ~prob_cache ~trace_out ~stats_out
      ~openmetrics_out ~qlog_out
  in
  (* The query log and the slow-query dump need a trace (stage times,
     the Chrome dump) and a metrics sink (counters) even when no --trace
     or --stats-json file was asked for. *)
  let want_trace = trace_out <> None || qlog_out <> None || slow_ms <> None in
  let want_metrics =
    stats_out <> None || openmetrics_out <> None || qlog_out <> None
    || slow_ms <> None
  in
  let trace =
    if want_trace then Some (Tpdb.Trace.create ~gc:true ()) else None
  in
  let metrics = if want_metrics then Some (Tpdb.Metrics.create ()) else None in
  Option.iter Tpdb.Trace.install trace;
  Option.iter Tpdb.Metrics.install metrics;
  (* Accounts one executed query: wall time, counters, stage times from
     the trace, GC deltas; appends the qlog record and dumps the Chrome
     trace of a slow query. [rows] projects the run's output cardinality
     out of whatever the runner returned. *)
  let run_logged ~rows run =
    (* Allocation words come from [Gc.minor_words]/[Gc.counters], which
       stay current without a collection; [Gc.quick_stat] only supplies
       collection counts and the heap high-water mark. *)
    let _, promoted0, major0 = Gc.counters () in
    let minor0 = Gc.minor_words () in
    let collections0 = (Gc.quick_stat ()).Gc.major_collections in
    let t0 = Unix.gettimeofday () in
    let result = run () in
    let total_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
    (match (metrics, trace) with
    | Some m, Some t when qlog_out <> None || slow_ms <> None ->
        let minor1 = Gc.minor_words () in
        let _, promoted1, major1 = Gc.counters () in
        let gc1 = Gc.quick_stat () in
        let slow =
          match slow_ms with Some thr -> total_ms >= thr | None -> false
        in
        let fp = Tpdb.Planner.fingerprint plan in
        let trace_file =
          match trace_out with
          | Some _ -> trace_out
          | None when slow ->
              let dir =
                match qlog_out with
                | Some p -> Filename.dirname p
                | None -> Filename.current_dir_name
              in
              let path =
                Filename.concat dir (Printf.sprintf "slow-%s.trace.json" fp)
              in
              Tpdb.Trace.save t path;
              Printf.eprintf
                "slow query: %.1f ms >= %.1f ms; trace written to %s\n%!"
                total_ms (Option.get slow_ms) path;
              Some path
          | None -> None
        in
        (match qlog_out with
        | None -> ()
        | Some qpath ->
            let words f1 f0 = int_of_float (f1 -. f0) in
            let get c = Tpdb.Metrics.get m c in
            let ms_of_ns ns = float_of_int ns /. 1e6 in
            Tpdb.Qlog.append qpath
              {
                Tpdb.Qlog.ts = iso_utc ();
                query = sql;
                fingerprint = fp;
                total_ms;
                rows_in = get Tpdb.Metrics.Tuples_in;
                rows_out = rows result;
                wo = get Tpdb.Metrics.Windows_overlapping;
                wu = get Tpdb.Metrics.Windows_unmatched;
                wn = get Tpdb.Metrics.Windows_negating;
                prob_cache_hits = get Tpdb.Metrics.Prob_cache_hits;
                prob_cache_misses = get Tpdb.Metrics.Prob_cache_misses;
                spill_bytes = get Tpdb.Metrics.Spill_bytes;
                spill_partitions = get Tpdb.Metrics.Spill_partitions;
                sanitizer_ms =
                  ms_of_ns
                    (Tpdb.Metrics.dist_stats m Tpdb.Metrics.Sanitizer_ns).sum;
                stages =
                  List.map
                    (fun (_cat, name, ns) -> (name, ms_of_ns ns))
                    (Tpdb.Trace.totals t);
                gc =
                  {
                    Tpdb.Qlog.minor_words = words minor1 minor0;
                    major_words = words major1 major0;
                    promoted_words = words promoted1 promoted0;
                    major_collections =
                      gc1.Gc.major_collections - collections0;
                    top_heap_words = gc1.Gc.top_heap_words;
                  };
                slow;
                trace_file;
              })
        | _ -> ());
    result
  in
  try
    Fun.protect
      ~finally:(fun () ->
        Tpdb.Trace.uninstall ();
        Tpdb.Metrics.uninstall ();
        (match (trace, trace_out) with
        | Some t, Some path -> Tpdb.Trace.save t path
        | _ -> ());
        (match (metrics, stats_out) with
        | Some m, Some path -> Tpdb.Metrics.save m path
        | _ -> ());
        match (metrics, openmetrics_out) with
        | Some m, Some path -> Tpdb.Metrics.save_openmetrics m path
        | _ -> ())
    @@ fun () ->
    if result_only then
      (* Nothing but the rendered relation: the byte-identity reference
         for the server's wire results (bench/CI diff them). *)
      Tpdb.Relation.print
        (run_logged ~rows:Tpdb.Relation.cardinality (fun () ->
             Tpdb.Planner.run plan))
    else if analyze then begin
      let result, report =
        run_logged
          ~rows:(fun (r, _) -> Tpdb.Relation.cardinality r)
          (fun () -> Tpdb.Planner.run_analyze plan)
      in
      print_endline header;
      print_endline report;
      print_endline "";
      Tpdb.Relation.print result
    end
    else begin
      print_endline header;
      print_endline (Tpdb.Planner.explain plan);
      (match Tpdb.Planner.check plan with
      | [] -> ()
      | diags ->
          print_endline "";
          print_diagnostics diags);
      if not explain_only then begin
        print_endline "";
        Tpdb.Relation.print
          (run_logged ~rows:Tpdb.Relation.cardinality (fun () ->
               Tpdb.Planner.run plan))
      end
    end
  with Tpdb.Invariant.Violation _ as exn -> fail_exn exn

let check tables db_dir jobs deep format sql =
  let catalog = load_catalog tables db_dir in
  let plan = plan_or_fail catalog jobs sql in
  let diags =
    if deep then Tpdb.Planner.check_deep plan else Tpdb.Planner.check plan
  in
  let errors = List.length (Tpdb.Analyze.errors diags) in
  (match format with
  | `Json -> print_endline (Tpdb.Analyze.to_json diags)
  | `Text ->
      print_diagnostics diags;
      let count severity =
        List.length
          (List.filter
             (fun d -> d.Tpdb.Analyze.severity = severity)
             diags)
      in
      let warnings = count Tpdb.Analyze.Warning in
      let notes = count Tpdb.Analyze.Note in
      if diags = [] then print_endline "ok: no issues found"
      else
        Printf.printf "%d error(s), %d warning(s)%s\n" errors warnings
          (if notes > 0 then Printf.sprintf ", %d note(s)" notes else ""));
  if errors > 0 then exit 1

let query_cmd =
  let tables =
    Arg.(value & opt_all file [] & info [ "table"; "t" ] ~docv:"CSV"
           ~doc:"TP relation to register (repeatable); its name is the file \
                 basename.")
  and db_dir =
    Arg.(value & opt (some string) None & info [ "db" ] ~docv:"DIR"
           ~doc:"Register every relation of a database directory.")
  and explain_only =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print the plan, do not run.")
  and analyze =
    Arg.(value & flag & info [ "analyze" ]
           ~doc:"Run and annotate the plan with per-node rows and timings.")
  and result_only =
    Arg.(value & flag & info [ "result-only" ]
           ~doc:"Print only the rendered result relation — no header, plan \
                 or diagnostics. Byte-identical to what $(b,tpdb_cli \
                 connect --query) prints for the same query against a \
                 server over the same data.")
  and jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Partition the window sweep of every equi-join across N \
                 domains (default 1 = sequential). Joins without an equality \
                 atom fall back to the sequential sweep.")
  and sanitize =
    Arg.(value & flag & info [ "sanitize" ]
           ~doc:"Run the TPSan window-invariant checks during execution \
                 (also enabled by TPDB_SANITIZE=1): every join asserts the \
                 paper's window lemmas on its live streams and fails fast \
                 on a violation.")
  and no_prob_cache =
    Arg.(value & flag & info [ "no-prob-cache" ]
           ~doc:"Compute every output probability from scratch instead of \
                 through the per-domain memoization cache (identical \
                 results; useful for measuring the cache and bounding \
                 memory).")
  and mem_budget =
    Arg.(value & opt (some int) None & info [ "mem-budget" ] ~docv:"MB"
           ~doc:"Working-set budget in megabytes for the out-of-core join \
                 executor (also read from TPDB_MEM_BUDGET; the flag wins). \
                 An equi-join whose estimated working set exceeds it \
                 hash-partitions both inputs to compressed columnar heap \
                 files and sweeps one partition pair at a time through a \
                 budget-sized buffer pool — identical output, bounded \
                 memory. Joins without an equality atom ignore it.")
  and trace_out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a span per operator, sweep phase and parallel \
                 partition and write a Chrome trace-event JSON file, \
                 loadable in chrome://tracing or Perfetto.")
  and stats_out =
    Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Collect the pipeline's runtime counters (tuples, windows \
                 per class, partition sizes, sanitizer work) and write \
                 them as JSON, distributions with p50/p90/p99 quantiles.")
  and openmetrics_out =
    Arg.(value & opt (some string) None
           & info [ "stats-openmetrics" ] ~docv:"FILE"
           ~doc:"Write the same runtime metrics in the OpenMetrics \
                 (Prometheus) text format: counters as counter families, \
                 distributions as summaries with 0.5/0.9/0.99 quantiles.")
  and qlog_out =
    Arg.(value & opt (some string) None & info [ "qlog" ] ~docv:"FILE"
           ~doc:"Append one JSONL record for the executed query: plan \
                 fingerprint, per-stage wall times, window-class counts, \
                 rows in/out, prob-cache traffic, sanitizer time and GC \
                 deltas. Summarize with $(b,tpdb_cli qlog FILE).")
  and slow_ms =
    Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Slow-query threshold in milliseconds (also read from \
                 TPDB_SLOW_MS; the flag wins). A query at or above it is \
                 marked slow in the qlog and its full Chrome trace is \
                 written next to the log (slow-FINGERPRINT.trace.json) \
                 when no --trace file was given.")
  and sql =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"TP-SQL query text.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Run a TP-SQL query over CSV files and/or a database directory.")
    Term.(const query $ tables $ db_dir $ explain_only $ analyze $ result_only
          $ jobs $ sanitize $ no_prob_cache $ mem_budget $ trace_out
          $ stats_out $ openmetrics_out $ qlog_out $ slow_ms $ sql)

(* --- qlog: summarize a structured query log --- *)

let qlog_run file top by =
  let records = try Tpdb.Qlog.load file with Sys_error msg ->
    prerr_endline msg;
    exit 1
  in
  if records = [] then print_endline "empty query log"
  else print_string (Tpdb.Qlog.summarize ~top ~by records)

let qlog_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"A JSONL query log written by $(b,query --qlog).")
  and top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N"
           ~doc:"Show the N heaviest plan groups (default 10).")
  and by =
    let order = Arg.enum [ ("total", `Total); ("mean", `Mean) ] in
    Arg.(value & opt order `Total & info [ "by" ] ~docv:"ORDER"
           ~doc:"Rank groups by total or mean wall time.")
  in
  Cmd.v
    (Cmd.info "qlog"
       ~doc:"Summarize a structured query log: queries grouped by plan \
             fingerprint with runs, slow count, total/mean wall time and \
             p50/p90/p99/max quantile columns.")
    Term.(const qlog_run $ file $ top $ by)

let check_cmd =
  let tables =
    Arg.(value & opt_all file [] & info [ "table"; "t" ] ~docv:"CSV"
           ~doc:"TP relation to register (repeatable); its name is the file \
                 basename.")
  and db_dir =
    Arg.(value & opt (some string) None & info [ "db" ] ~docv:"DIR"
           ~doc:"Register every relation of a database directory.")
  and jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Intended parallelism; the analyzer warns when a join \
                 cannot use it.")
  and deep =
    Arg.(value & flag & info [ "deep" ]
           ~doc:"Also run the statistics-driven deep passes: abstract \
                 temporal/probability bounds, the static safe-plan \
                 classification, applied planner rewrites (\xce\xb8 folds, \
                 empty-subplan prunes, join reorders) and cost estimates. \
                 Adds note-severity diagnostics; the exit status still \
                 reflects errors only.")
  and format =
    let fmt = Arg.enum [ ("text", `Text); ("json", `Json) ] in
    Arg.(value & opt fmt `Text & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: text (one line per diagnostic plus a \
                 summary) or json (an array of objects with stable \
                 severity/code/path/message fields).")
  and sql =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"TP-SQL query text.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Statically analyze a TP-SQL query without running it: plan it, \
             infer column types, and report \xce\xb8 type errors, \
             unsatisfiable conditions and suspicious plan shapes. Exits \
             non-zero when an error-severity diagnostic is found.")
    Term.(const check $ tables $ db_dir $ jobs $ deep $ format $ sql)

(* --- stats: compute and persist per-relation statistics --- *)

let stats_run tables db_dir out =
  let catalog = load_catalog tables db_dir in
  let names = Tpdb.Catalog.names catalog in
  if names = [] then begin
    prerr_endline "no relations registered; pass --table and/or --db";
    exit 1
  end;
  (* Where to persist: --out wins, else the database directory. CSV-only
     invocations without --out just print. *)
  let out_dir = match out with Some _ -> out | None -> db_dir in
  (match out_dir with
  | Some dir when not (Sys.file_exists dir) -> (
      try Sys.mkdir dir 0o755
      with Sys_error msg ->
        prerr_endline ("cannot create stats directory: " ^ msg);
        exit 1)
  | _ -> ());
  List.iteri
    (fun i name ->
      if i > 0 then print_endline "";
      (* always recompute from the registered data — the whole point of
         the command is refreshing stale persisted statistics *)
      let s = Tpdb.Stats.of_relation (Tpdb.Catalog.find_exn catalog name) in
      print_endline (Tpdb.Stats.to_string s);
      match out_dir with
      | None -> ()
      | Some dir ->
          let path = Tpdb.Stats.file ~dir name in
          Tpdb.Stats.save s path;
          Printf.printf "wrote %s\n" path)
    names

let stats_cmd =
  let tables =
    Arg.(value & opt_all file [] & info [ "table"; "t" ] ~docv:"CSV"
           ~doc:"TP relation to profile (repeatable); its name is the file \
                 basename.")
  and db_dir =
    Arg.(value & opt (some string) None & info [ "db" ] ~docv:"DIR"
           ~doc:"Profile every relation of a database directory; statistics \
                 are persisted there (NAME.stats) unless --out overrides.")
  and out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory to write NAME.stats files into (created if \
                 missing). Without --out or --db, statistics are printed \
                 but not persisted.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Compute per-relation statistics — cardinality, per-column \
             distinct counts, interval histograms and sample, probability \
             moments, duplicate-freeness — and persist them for the \
             planner's cost model (EXPLAIN est rows/cost, join ordering, \
             check --deep).")
    Term.(const stats_run $ tables $ db_dir $ out)

(* --- experiment --- *)

let experiment figure dataset scale =
  let points =
    match figure with
    | "fig5" -> E.fig5 ~scale dataset
    | "fig6" -> E.fig6 ~scale dataset
    | "fig7" -> E.fig7 ~scale dataset
    | "nj-paper" -> E.nj_paper_scale dataset
    | "ablation-join" -> E.ablation_join_algorithm ~scale dataset
    | "ablation-sweep" -> E.ablation_sweep_engine ~scale dataset
    | "ablation-pipeline" -> E.ablation_pipelining ~scale dataset
    | "selectivity" -> E.selectivity_sweep ()
    | "skew" -> E.skew_sweep ()
    | "parallel" -> E.parallel_sweep ~scale dataset
    | other ->
        prerr_endline ("unknown figure: " ^ other);
        exit 1
  in
  E.print_points
    ~header:(Printf.sprintf "%s (%s)" figure (E.dataset_name dataset))
    points

let experiment_cmd =
  let figure =
    Arg.(value & opt string "fig7" & info [ "figure" ] ~docv:"FIG"
           ~doc:"fig5 | fig6 | fig7 | nj-paper | ablation-join | \
                 ablation-sweep | ablation-pipeline | selectivity | skew | \
                 parallel.")
  and dataset =
    Arg.(value & opt dataset_conv E.Webkit & info [ "dataset" ] ~docv:"NAME"
           ~doc:"webkit or meteo.")
  and scale =
    Arg.(value & opt scale_conv E.Default & info [ "scale" ] ~docv:"SCALE"
           ~doc:"quick, default or paper.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Re-run one of the paper's experiments.")
    Term.(const experiment $ figure $ dataset $ scale)

(* --- render: draw the Fig.-2-style join picture --- *)

let render tables db_dir left right on width =
  let catalog = load_catalog tables db_dir in
  let get name =
    match Tpdb.Catalog.find catalog name with
    | Some r -> r
    | None ->
        prerr_endline ("unknown relation " ^ name);
        exit 1
  in
  let r = get left and s = get right in
  let column rel name =
    match Tpdb.Schema.column_index (Tpdb.Relation.schema rel) name with
    | Some i -> i
    | None ->
        prerr_endline
          (Printf.sprintf "unknown column %s in %s" name (Tpdb.Relation.name rel));
        exit 1
  in
  let theta =
    match String.split_on_char '=' on with
    | [ lcol; rcol ] ->
        Tpdb.Theta.eq (column r (String.trim lcol)) (column s (String.trim rcol))
    | _ ->
        prerr_endline "condition must be of the form LEFTCOL=RIGHTCOL";
        exit 1
  in
  print_string (Tpdb.Render.join_picture ~max_width:width ~theta r s)

let render_cmd =
  let tables =
    Arg.(value & opt_all file [] & info [ "table"; "t" ] ~docv:"CSV"
           ~doc:"TP relation to register (repeatable).")
  and db_dir =
    Arg.(value & opt (some string) None & info [ "db" ] ~docv:"DIR"
           ~doc:"Register every relation of a database directory.")
  and left =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LEFT"
           ~doc:"Left relation name.")
  and right =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"RIGHT"
           ~doc:"Right relation name.")
  and on =
    Arg.(required & opt (some string) None & info [ "on" ] ~docv:"L=R"
           ~doc:"Equality condition, e.g. Loc=Loc.")
  and width =
    Arg.(value & opt int 60 & info [ "width" ] ~docv:"N"
           ~doc:"Maximum timeline width in characters.")
  in
  Cmd.v
    (Cmd.info "render"
       ~doc:"Draw the generalized windows of LEFT w.r.t. RIGHT as an ASCII \
             timeline (cf. the paper's Fig. 2).")
    Term.(const render $ tables $ db_dir $ left $ right $ on $ width)

(* --- fuzz: differential oracle fuzzing --- *)

(* Runs random TP scenarios through Oracle.check — the snapshot-semantics
   ground truth diffed against Nj.join under every shipped execution
   configuration — until the time budget runs out. Each case derives its
   own seed from the base seed, so any failure reproduces with
   [--seed CASE_SEED --seconds 0] regardless of how long the original
   run was. Failing cases are written to the artifact directory as
   loadable CSV pairs plus a divergence report. *)
let fuzz oracle seconds seed out trace_out stats_out =
  ignore (oracle : bool) (* the oracle is the only — and default — mode *);
  let budget_ns = int_of_float (seconds *. 1e9) in
  (if not (Sys.file_exists out) then
     try Sys.mkdir out 0o755
     with Sys_error msg ->
       prerr_endline ("cannot create artifact directory: " ^ msg);
       exit 1);
  let failures = ref 0 and cases = ref 0 in
  let run_case case_seed =
    incr cases;
    let rand = Random.State.make [| case_seed |] in
    let theta, r, s = QCheck2.Gen.generate1 ~rand (Tp_gen.scenario_gen ()) in
    match Tpdb.Oracle.check ~theta r s with
    | [] -> ()
    | divergences ->
        incr failures;
        let path name = Filename.concat out name in
        let prefix = Printf.sprintf "seed-%d" case_seed in
        Tpdb.Csv.save (path (prefix ^ "-r.csv")) r;
        Tpdb.Csv.save (path (prefix ^ "-s.csv")) s;
        let report =
          String.concat "\n"
            (Printf.sprintf "case seed: %d" case_seed
            :: List.map (Tpdb.Oracle.report ~theta) divergences)
          ^ "\n\n" ^ Tpdb.Oracle.repro ~theta r s
        in
        let oc = open_out (path (prefix ^ "-report.txt")) in
        output_string oc report;
        close_out oc;
        Printf.eprintf "DIVERGENCE (seed %d): %d configuration(s) disagree; \
                        artifacts in %s/%s-*\n%!"
          case_seed (List.length divergences) out prefix
  in
  with_observability ~trace_out ~stats_out (fun () ->
      (* Always run the base seed itself, even with --seconds 0: that is
         how a failing seed from a previous run is replayed. *)
      run_case seed;
      let start = Tpdb.Obs_clock.now_ns () in
      let elapsed () = Tpdb.Obs_clock.now_ns () - start in
      let i = ref 1 in
      while elapsed () < budget_ns do
        run_case (seed + !i);
        incr i
      done);
  Printf.printf "fuzz: %d case(s), %d divergence(s)%s\n" !cases !failures
    (if !failures = 0 then "" else "; artifacts in " ^ out);
  if !failures > 0 then exit 1

let fuzz_cmd =
  let oracle =
    Arg.(value & flag & info [ "oracle" ]
           ~doc:"Differential-oracle mode: evaluate each random scenario \
                 point by point from the paper's snapshot semantics (exact \
                 BDD probabilities) and diff every join kind against the \
                 optimized pipeline across all execution configurations \
                 (parallelism, probability cache, sanitizer, sweep \
                 engine and join algorithm). This is the default and \
                 currently only mode.")
  and seconds =
    Arg.(value & opt float 5.0 & info [ "seconds" ] ~docv:"N"
           ~doc:"Time budget; generates fresh cases until it is spent. 0 \
                 runs exactly one case (the base seed) — use with --seed \
                 to replay a failure.")
  and seed =
    Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Base seed; case $(i)i$(b,) uses SEED+i, so any failure is \
                 reproducible from the seed printed in its report alone.")
  and out =
    Arg.(value & opt string "fuzz-artifacts" & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory for failing-case artifacts: the two input \
                 relations as loadable CSV files plus a divergence report \
                 per failing seed.")
  and trace_out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file covering the whole \
                 fuzzing run (oracle evaluations show as \"oracle\" spans).")
  and stats_out =
    Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write the run's metrics as JSON, including the \
                 oracle_evals / oracle_comparisons / oracle_mismatches \
                 counters and the oracle_eval_ns distribution.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Fuzz the TP join pipeline against the differential \
             snapshot-semantics oracle; non-zero exit and CSV artifacts on \
             any divergence.")
    Term.(const fuzz $ oracle $ seconds $ seed $ out $ trace_out $ stats_out)

(* --- store: CSV -> database directory --- *)

let store db_dir csvs =
  let db = Tpdb.Db.open_ db_dir in
  List.iter
    (fun path ->
      let relation = Tpdb.Csv.load ~name:(base_name path) path in
      Tpdb.Db.save db relation;
      Printf.printf "stored %s (%d tuples)\n" (base_name path)
        (Tpdb.Relation.cardinality relation))
    csvs

let store_cmd =
  let db_dir =
    Arg.(required & opt (some string) None & info [ "db" ] ~docv:"DIR"
           ~doc:"Database directory (created if missing).")
  and csvs =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"CSV"
           ~doc:"CSV files to import; each becomes a relation named after \
                 its basename.")
  in
  Cmd.v
    (Cmd.info "store" ~doc:"Import CSV relations into a database directory.")
    Term.(const store $ db_dir $ csvs)

(* --- connect: client for a running tpdb_server --- *)

let connect_endpoint socket host port =
  match (socket, port) with
  | Some path, None -> `Unix path
  | None, Some p -> `Tcp (host, p)
  | Some _, Some _ ->
      prerr_endline "connect: --socket and --port are mutually exclusive";
      exit 2
  | None, None ->
      prerr_endline "connect: one of --socket or --port is required";
      exit 2

let connect_exec client verbose sql =
  let r = Tpdb.Server_client.query client sql in
  (* stdout carries exactly the wire result (CLI-identical bytes);
     cache provenance goes to stderr so diffs stay clean. *)
  print_string r.Tpdb.Server_client.text;
  flush stdout;
  if verbose then
    Printf.eprintf "-- rows: %d; plan cache: %s; result cache: %s\n%!"
      r.Tpdb.Server_client.rows
      (if r.Tpdb.Server_client.plan_cached then "hit" else "miss")
      (if r.Tpdb.Server_client.result_cached then "hit" else "miss")

let connect_repl client verbose =
  let interactive = Unix.isatty Unix.stdin in
  let prompt () =
    if interactive then begin
      print_string "tpdb> ";
      flush stdout
    end
  in
  let handle_line line =
    match String.trim line with
    | "" -> ()
    | {|\q|} | {|\quit|} -> raise Exit
    | {|\stats|} -> print_endline (Tpdb.Server_client.stats client)
    | {|\metrics|} -> print_string (Tpdb.Server_client.openmetrics client)
    | {|\ping|} ->
        Tpdb.Server_client.ping client;
        print_endline "pong"
    | line when String.length line > 6 && String.sub line 0 6 = {|\load |} -> (
        match
          String.split_on_char '='
            (String.trim (String.sub line 6 (String.length line - 6)))
        with
        | [ name; path ] ->
            let ic = open_in path in
            let n = in_channel_length ic in
            let csv = really_input_string ic n in
            close_in ic;
            let version, rows =
              Tpdb.Server_client.load client ~name:(String.trim name) ~csv
            in
            Printf.printf "loaded %s: version %d, %d rows\n%!"
              (String.trim name) version rows
        | _ -> prerr_endline {|usage: \load NAME=FILE.csv|})
    | sql -> connect_exec client verbose sql
  in
  (try
     while true do
       prompt ();
       match input_line stdin with
       | exception End_of_file -> raise Exit
       | line -> (
           try handle_line line with
           | Tpdb.Server_client.Server_overloaded m ->
               Printf.eprintf "overloaded: %s\n%!" m
           | Tpdb.Server_client.Server_error (code, m) ->
               Printf.eprintf "error (%s): %s\n%!"
                 (Tpdb.Server_protocol.error_code_name code)
                 m
           | Sys_error m -> Printf.eprintf "error: %s\n%!" m)
     done
   with Exit -> ());
  if interactive then print_newline ()

let connect socket host port sql_opt loads stats openmetrics ping verbose =
  let endpoint = connect_endpoint socket host port in
  let client =
    try Tpdb.Server_client.connect ~client:"tpdb_cli" endpoint
    with Unix.Unix_error (err, _, _) ->
      Printf.eprintf "connect: %s\n%!" (Unix.error_message err);
      exit 1
  in
  Fun.protect ~finally:(fun () -> Tpdb.Server_client.close client)
  @@ fun () ->
  try
    List.iter
      (fun spec ->
        match String.split_on_char '=' spec with
        | [ name; path ] ->
            let ic = open_in path in
            let n = in_channel_length ic in
            let csv = really_input_string ic n in
            close_in ic;
            let version, rows = Tpdb.Server_client.load client ~name ~csv in
            Printf.eprintf "loaded %s: version %d, %d rows\n%!" name version
              rows
        | _ ->
            prerr_endline "connect: --load expects NAME=FILE.csv";
            exit 2)
      loads;
    if ping then begin
      Tpdb.Server_client.ping client;
      print_endline "pong"
    end;
    if stats then print_endline (Tpdb.Server_client.stats client);
    if openmetrics then print_string (Tpdb.Server_client.openmetrics client);
    match sql_opt with
    | Some sql -> connect_exec client verbose sql
    | None ->
        if not (ping || stats || openmetrics || loads <> []) then
          connect_repl client verbose
  with
  | Tpdb.Server_client.Server_overloaded m ->
      Printf.eprintf "overloaded: %s\n%!" m;
      exit 3
  | Tpdb.Server_client.Server_error (code, m) ->
      Printf.eprintf "error (%s): %s\n%!"
        (Tpdb.Server_protocol.error_code_name code)
        m;
      exit 1

let connect_cmd =
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket of the server.")
  and host =
    Arg.(value & opt string "" & info [ "host" ] ~docv:"HOST"
           ~doc:"Server IP address (default loopback); used with --port.")
  and port =
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port of the server.")
  and sql =
    Arg.(value & opt (some string) None & info [ "query"; "q" ] ~docv:"QUERY"
           ~doc:"Run one query and print its result — byte-identical to \
                 $(b,tpdb_cli query --result-only) over the same data.")
  and loads =
    Arg.(value & opt_all string [] & info [ "load" ] ~docv:"NAME=CSV"
           ~doc:"LOAD a CSV file as relation NAME before anything else \
                 (repeatable).")
  and stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print the server's JSON stats snapshot.")
  and openmetrics =
    Arg.(value & flag & info [ "openmetrics" ]
           ~doc:"Print the server's OpenMetrics exposition.")
  and ping =
    Arg.(value & flag & info [ "ping" ] ~doc:"Round-trip a PING.")
  and verbose =
    Arg.(value & flag & info [ "verbose"; "v" ]
           ~doc:"Report rows and cache hits on stderr after each query.")
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:"Connect to a running tpdb_server. With --query (or --stats, \
             --openmetrics, --ping, --load) runs one command and exits; \
             with none, reads queries from stdin (backslash commands: \
             \\\\load NAME=FILE, \\\\stats, \\\\metrics, \\\\ping, \
             \\\\quit).")
    Term.(const connect $ socket $ host $ port $ sql $ loads $ stats
          $ openmetrics $ ping $ verbose)

let () =
  let info =
    Cmd.info "tpdb_cli" ~version:"1.0.0"
      ~doc:"Temporal-probabilistic outer and anti joins (ICDE 2019 reproduction)."
  in
  exit (Cmd.eval (Cmd.group info
       [ generate_cmd; query_cmd; connect_cmd; check_cmd; stats_cmd;
         store_cmd; render_cmd; experiment_cmd; fuzz_cmd; qlog_cmd ]))
