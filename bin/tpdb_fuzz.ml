(* Differential fuzzer: generates TP relation pairs well beyond unit-test
   sizes and cross-checks, per round,

   - NJ window sets against the TA baseline's (same windows, different
     algorithm family);
   - the four overlap-join algorithms against each other;
   - the TP left outer join against snapshot semantics at sampled time
     points (fact + normalized lineage multisets).

   Any discrepancy prints the offending seed and exits non-zero.

     dune exec bin/tpdb_fuzz.exe -- --rounds 50 --size 400 *)

open Cmdliner
open Tpdb

let window_key w =
  ( Window.kind w,
    Fact.to_string (Window.fr w),
    (match Window.fs w with Some f -> Fact.to_string f | None -> "-"),
    Interval.to_string (Window.iv w),
    Formula.to_string_ascii (Formula.normalize (Window.lr w)),
    match Window.ls w with
    | Some l -> Formula.to_string_ascii (Formula.normalize l)
    | None -> "-" )

let windows_of stream = List.sort_uniq compare (List.map window_key stream)

let fail_round ~seed ~round what =
  Printf.eprintf "FUZZ FAILURE (seed %d, round %d): %s\n" seed round what;
  exit 1

(* Snapshot of the left outer join at time point [t], straight from the
   semantics of the paper's §I. *)
let snapshot_rows ~theta r s t =
  let valid rel = List.filter (fun tp -> Tuple.valid_at tp t) (Relation.tuples rel) in
  let s_valid = valid s in
  List.concat_map
    (fun r_tuple ->
      let matches =
        List.filter
          (fun s_tuple ->
            Theta.matches theta (Tuple.fact r_tuple) (Tuple.fact s_tuple))
          s_valid
      in
      let negation =
        match matches with
        | [] -> Tuple.lineage r_tuple
        | _ ->
            Formula.and_not (Tuple.lineage r_tuple)
              (Formula.disj (List.map Tuple.lineage matches))
      in
      ( Fact.to_string (Tuple.fact r_tuple),
        "-",
        Formula.to_string_ascii (Formula.normalize negation) )
      :: List.map
           (fun s_tuple ->
             ( Fact.to_string (Tuple.fact r_tuple),
               Fact.to_string (Tuple.fact s_tuple),
               Formula.to_string_ascii
                 (Formula.normalize
                    (Formula.( &&& ) (Tuple.lineage r_tuple)
                       (Tuple.lineage s_tuple))) ))
           matches)
    (valid r)
  |> List.sort_uniq compare

let output_rows_at output ~r_arity t =
  Relation.tuples output
  |> List.filter (fun tp -> Tuple.valid_at tp t)
  |> List.map (fun tp ->
         let fact = Tuple.fact tp in
         let left =
           Fact.to_string (Fact.project (List.init r_arity Fun.id) fact)
         in
         let right_cols =
           List.init (Fact.arity fact - r_arity) (fun i -> i + r_arity)
         in
         let right = Fact.project right_cols fact in
         let right_str =
           if Array.for_all Value.is_null right then "-"
           else Fact.to_string right
         in
         ( left,
           right_str,
           Formula.to_string_ascii (Formula.normalize (Tuple.lineage tp)) ))
  |> List.sort_uniq compare

let run_round ~seed ~round ~size =
  let round_seed = seed + (round * 7919) in
  let rng = Rng.create round_seed in
  let keys = 1 + Rng.int rng 30 in
  let horizon = 50 + Rng.int rng 400 in
  let mean_duration = 2 + Rng.int rng 25 in
  let r =
    Datasets.Uniform.relation ~name:"r" ~seed:round_seed ~keys ~horizon
      ~mean_duration size
  in
  let s =
    Datasets.Uniform.relation ~name:"s" ~seed:(round_seed + 1) ~keys ~horizon
      ~mean_duration size
  in
  let theta = Theta.eq 0 0 in
  (* 1. NJ vs TA window sets. *)
  let nj = windows_of (List.of_seq (Nj.windows_wuon ~theta r s)) in
  let ta = windows_of (Ta.windows_wuon ~algorithm:`Hash ~theta r s) in
  if nj <> ta then fail_round ~seed ~round "NJ and TA window sets differ";
  (* 2. Join algorithms agree. *)
  let windows_with algorithm =
    windows_of
      (List.of_seq
         (Nj.windows_wuon ~options:(Nj.options ~algorithm ()) ~theta r s))
  in
  List.iter
    (fun (name, algorithm) ->
      if windows_with algorithm <> nj then
        fail_round ~seed ~round (name ^ " join algorithm disagrees with hash"))
    [ ("merge", `Merge); ("index", `Index) ];
  (* 3. Snapshot semantics at sampled time points. *)
  let output = Nj.left_outer ~theta r s in
  let r_arity = Schema.arity (Relation.schema r) in
  for _ = 1 to 25 do
    let t = Rng.int rng horizon in
    let expected = snapshot_rows ~theta r s t in
    let actual = output_rows_at output ~r_arity t in
    if expected <> actual then
      fail_round ~seed ~round
        (Printf.sprintf "snapshot mismatch at t=%d: %d expected vs %d actual rows"
           t (List.length expected) (List.length actual))
  done;
  List.length nj

let fuzz rounds size seed =
  let total = ref 0 in
  for round = 1 to rounds do
    total := !total + run_round ~seed ~round ~size;
    if round mod 10 = 0 then
      Printf.printf "round %d/%d ok (%d windows checked so far)\n%!" round
        rounds !total
  done;
  Printf.printf "fuzz: %d rounds x %d tuples per side, %d windows checked, no discrepancies\n"
    rounds size !total

let () =
  let rounds =
    Arg.(value & opt int 30 & info [ "rounds" ] ~docv:"N" ~doc:"Fuzzing rounds.")
  and size =
    Arg.(value & opt int 300 & info [ "size" ] ~docv:"N"
           ~doc:"Tuples per relation per round.")
  and seed =
    Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "tpdb_fuzz" ~doc:"Differential fuzzer for the TP join operators.")
      Term.(const fuzz $ rounds $ size $ seed)
  in
  exit (Cmd.eval cmd)
