(* tpdb_server — the long-lived concurrent-session TP database daemon.

   Thin cmdliner shell over Tpdb.Server: parse flags into a
   Server.config, start, print the bound endpoint (CI waits for that
   line), then park until SIGINT/SIGTERM and stop cleanly. *)

open Cmdliner

let stop_requested = Atomic.make false

let install_signal_handlers () =
  let request _ = Atomic.set stop_requested true in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle request)
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigterm (Sys.Signal_handle request)
  with Invalid_argument _ | Sys_error _ -> ()

let preload server specs =
  let store = Tpdb.Server.store server in
  List.iter
    (fun spec ->
      match String.split_on_char '=' spec with
      | [ name; path ] ->
          let relation = Tpdb.Csv.load ~name path in
          let loaded = Tpdb.Server_store.register store relation in
          Printf.printf "loaded %s (version %d, %d rows) from %s\n%!" name
            loaded.Tpdb.Server_store.version loaded.Tpdb.Server_store.rows path
      | _ ->
          prerr_endline "tpdb_server: --table expects NAME=FILE.csv";
          exit 2)
    specs

let describe = function
  | Unix.ADDR_UNIX path -> Printf.sprintf "unix:%s" path
  | Unix.ADDR_INET (inet, port) ->
      Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr inet) port

let serve socket host port db_dir stats_dir workers queue_limit jobs
    plan_cache result_cache qlog sanitize mem_budget_mb tables debug_sleep =
  let listen =
    match (socket, port) with
    | Some path, None -> `Unix path
    | None, Some p -> `Tcp (host, p)
    | Some _, Some _ ->
        prerr_endline "tpdb_server: --socket and --port are mutually exclusive";
        exit 2
    | None, None ->
        prerr_endline "tpdb_server: one of --socket or --port is required";
        exit 2
  in
  let config =
    {
      (Tpdb.Server.default_config listen) with
      workers;
      queue_limit;
      plan_cache_capacity = plan_cache;
      result_cache_capacity = result_cache;
      parallelism = jobs;
      sanitize = (if sanitize then Some true else None);
      mem_budget = Option.map (fun mb -> mb * 1024 * 1024) mem_budget_mb;
      db_dir;
      stats_dir;
      qlog;
      debug_sleep;
    }
  in
  install_signal_handlers ();
  let server = Tpdb.Server.start config in
  preload server tables;
  Printf.printf "tpdb_server: listening on %s (%d workers, queue %d)\n%!"
    (describe (Tpdb.Server.address server))
    workers queue_limit;
  while not (Atomic.get stop_requested) do
    Thread.delay 0.2
  done;
  prerr_endline "tpdb_server: shutting down";
  Tpdb.Server.stop server

let serve_cmd =
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix-domain socket at $(docv).")
  and host =
    Arg.(value & opt string "" & info [ "host" ] ~docv:"HOST"
           ~doc:"IP address to bind (default loopback); used with --port.")
  and port =
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT"
           ~doc:"Listen on TCP $(docv); 0 picks an ephemeral port \
                 (printed on the listening line).")
  and db_dir =
    Arg.(value & opt (some string) None & info [ "db" ] ~docv:"DIR"
           ~doc:"Persistent catalog directory: relations found there are \
                 served at start and every LOAD is saved back.")
  and stats_dir =
    Arg.(value & opt (some string) None & info [ "stats-dir" ] ~docv:"DIR"
           ~doc:"Directory of persisted planner statistics.")
  and workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
           ~doc:"Execution worker domains.")
  and queue_limit =
    Arg.(value & opt int 64 & info [ "queue-limit" ] ~docv:"N"
           ~doc:"Admission queue bound; beyond it requests are rejected \
                 with the typed OVERLOADED error.")
  and jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Per-query partitioned-sweep parallelism (the domain \
                 pool is shared across workers).")
  and plan_cache =
    Arg.(value & opt int 128 & info [ "plan-cache" ] ~docv:"N"
           ~doc:"Prepared-plan cache capacity (normalized-AST \
                 fingerprint keyed).")
  and result_cache =
    Arg.(value & opt int 256 & info [ "result-cache" ] ~docv:"N"
           ~doc:"Lineage-aware result cache capacity (plan fingerprint \
                 × input versions/digests keyed).")
  and qlog =
    Arg.(value & opt (some string) None & info [ "qlog" ] ~docv:"FILE"
           ~doc:"Append a JSONL query-log record per executed query.")
  and sanitize =
    Arg.(value & flag & info [ "sanitize" ]
           ~doc:"Run every query under the window-invariant sanitizer.")
  and mem_budget_mb =
    Arg.(value & opt (some int) None & info [ "mem-budget" ] ~docv:"MB"
           ~doc:"Out-of-core memory budget per query, in MiB.")
  and tables =
    Arg.(value & opt_all string [] & info [ "table" ] ~docv:"NAME=CSV"
           ~doc:"Register a CSV file as relation NAME at start \
                 (repeatable).")
  and debug_sleep =
    Arg.(value & flag & info [ "debug-sleep" ]
           ~doc:"Enable the SLEEP debug request (admission-control \
                 tests only).")
  in
  Cmd.v
    (Cmd.info "tpdb_server" ~version:"1.0.0"
       ~doc:"Long-lived TP database server speaking the tpdb binary \
             protocol over Unix or TCP sockets. Connect with \
             $(b,tpdb_cli connect).")
    Term.(const serve $ socket $ host $ port $ db_dir $ stats_dir $ workers
          $ queue_limit $ jobs $ plan_cache $ result_cache $ qlog $ sanitize
          $ mem_budget_mb $ tables $ debug_sleep)

let () = exit (Cmd.eval serve_cmd)
