#!/usr/bin/env python3
"""Strict checker for the OpenMetrics text exposition produced by
`tpdb_cli query --stats-openmetrics` / `bench/main.exe --openmetrics`.

Validates the subset of the OpenMetrics 1.0 text format the exporter
emits, strictly enough that a drifting exporter fails CI rather than a
scrape pipeline:

  - metadata lines are `# TYPE <family> <counter|gauge|summary>` (HELP
    and UNIT are accepted too); a family's TYPE appears exactly once
    and before any of its samples;
  - every sample belongs to a declared family through a suffix that
    type allows: counters expose only `<family>_total` (and
    `<family>_created`), gauges only the bare name, summaries the bare
    name with a `quantile` label in [0, 1] plus `<family>_count` and
    `<family>_sum`;
  - metric and label names match the spec grammar, label values are
    double-quoted with only the \\\\, \\" and \\n escapes;
  - sample values parse as numbers; counter totals, summary counts and
    summary sums are non-negative;
  - all samples of a family are contiguous (a family never reappears
    after another family has started);
  - the exposition ends with exactly one `# EOF` line and nothing after.

Usage: check_openmetrics.py FILE...
Exits non-zero listing every violation.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name, optional {labels}, value (exemplars/timestamps not emitted)
SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")
LABEL_PAIR = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"$')

# suffixes a sample may add to its family name, per family type
SUFFIXES = {
    "counter": ["_total", "_created"],
    "gauge": [""],
    "summary": ["", "_count", "_sum"],
}


def split_labels(body, error):
    """Parse the text between { and } into a dict; report via error()."""
    labels = {}
    if not body:
        return labels
    for pair in body.split(","):
        m = LABEL_PAIR.match(pair)
        if not m:
            error(f"malformed label pair {pair!r}")
            continue
        name, value = m.group(1), m.group(2)
        if name in labels:
            error(f"duplicate label {name!r}")
        labels[name] = value
    return labels


def owning_family(name, families):
    """(family, suffix) whose declared type allows this sample name."""
    for family, kind in families.items():
        for suffix in SUFFIXES[kind]:
            if name == family + suffix:
                return family, suffix
    return None, None


def check_file(path):
    errors = []
    with open(path, encoding="utf-8") as f:
        text = f.read()

    if not text.endswith("# EOF\n"):
        errors.append(f"{path}: missing terminal '# EOF' line")
    if text.count("# EOF") != 1:
        errors.append(f"{path}: '# EOF' must appear exactly once")

    families = {}  # family name -> type
    sampled = set()  # families that have emitted at least one sample
    current = None  # family of the most recent sample
    closed = set()  # families whose contiguous sample block has ended

    lines = text.splitlines()
    for i, line in enumerate(lines, start=1):
        def error(msg):
            errors.append(f"{path}:{i}: {msg}")

        if line == "# EOF":
            if i != len(lines):
                error("content after '# EOF'")
            continue
        if line.startswith("#"):
            parts = line.split(" ")
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in (
                "TYPE",
                "HELP",
                "UNIT",
            ):
                error(f"malformed metadata line {line!r}")
                continue
            if parts[1] != "TYPE":
                continue
            if len(parts) != 4:
                error(f"TYPE line needs '# TYPE <family> <type>': {line!r}")
                continue
            family, kind = parts[2], parts[3]
            if not METRIC_NAME.match(family):
                error(f"invalid family name {family!r}")
            if kind not in SUFFIXES:
                error(f"unsupported family type {kind!r}")
                continue
            if family in families:
                error(f"family {family!r} declared twice")
            families[family] = kind
            continue

        m = SAMPLE.match(line)
        if not m:
            error(f"unparseable sample line {line!r}")
            continue
        name, label_block, value = m.groups()
        family, suffix = owning_family(name, families)
        if family is None:
            error(f"sample {name!r} has no preceding TYPE declaration")
            continue
        if family != current:
            if current is not None:
                closed.add(current)
            if family in closed:
                error(f"family {family!r} samples are not contiguous")
            current = family
        sampled.add(family)

        labels = split_labels(label_block[1:-1] if label_block else "", error)
        try:
            number = float(value)
        except ValueError:
            error(f"sample value {value!r} is not a number")
            continue

        kind = families[family]
        if kind == "summary" and suffix == "":
            if "quantile" not in labels:
                error(f"summary sample {name!r} lacks a quantile label")
            else:
                try:
                    q = float(labels["quantile"])
                except ValueError:
                    q = -1.0
                if not 0.0 <= q <= 1.0:
                    error(
                        f"quantile {labels['quantile']!r} outside [0, 1]"
                    )
        if (kind == "counter" or suffix in ("_count", "_sum")) and number < 0:
            error(f"{name} must be non-negative, got {value}")

    for family in families:
        if family not in sampled:
            errors.append(f"{path}: family {family!r} declared but never sampled")
    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    errors = []
    for path in sys.argv[1:]:
        errors.extend(check_file(path))
    if errors:
        print(f"OpenMetrics check FAILED ({len(errors)} violations):")
        for e in errors:
            print(f"  - {e}")
        sys.exit(1)
    print(f"OpenMetrics check passed: {len(sys.argv) - 1} file(s)")


if __name__ == "__main__":
    main()
