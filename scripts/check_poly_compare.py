#!/usr/bin/env python3
"""Source lint: no polymorphic comparison or hashing on nominal types.

Formula.t values are hash-consed and carry mutable memo fields, and
Value.t mixes int and float payloads that must compare numerically —
polymorphic `compare` / `=` / `Hashtbl.hash` on either is a silent
correctness bug (PR 4 fixed a round of these by hand; this lint makes
the rule permanent). Since a lexical lint cannot see types, it bans the
dangerous spellings outright in lib/ and bin/ and keeps a short,
reasoned whitelist for the few sites that are provably safe:

  - `Hashtbl.hash` (polymorphic hash: follows mutable memo fields)
  - `Stdlib.compare`, `Stdlib.(=)`, `Stdlib.(<>)` (explicit polymorphic
    comparison; a bare `=` on a concrete scalar is fine and not matched)
  - `Poly.` (any explicit polymorphic-comparison module use)
  - a bare `compare` passed to sort/sort_uniq/stable_sort (almost always
    the polymorphic one by accident)

Comments and string literals are stripped before matching. Exits 1 with
file:line per violation; stale whitelist entries are errors too, so the
list cannot rot.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ["lib", "bin"]

# (relative path, pattern name) -> reason the site is safe
WHITELIST = {
    ("lib/relation/value.ml", "Hashtbl.hash"):
        "canonical Value hash: ints are hashed through float_of_int so "
        "I 1 and F 1.0 collide as required by Value.equal",
    ("lib/lineage/var.ml", "Hashtbl.hash"):
        "hashes an immutable (string, int) pair, no formulas involved",
    ("lib/lineage/formula.ml", "bare compare"):
        "the file defines its own structural `compare` that shadows the "
        "polymorphic one; recursive and sort_uniq uses resolve to it",
    ("bin/tpdb_fuzz.ml", "bare compare"):
        "sorts window keys whose every component is pre-rendered to a "
        "string (Formula.to_string_ascii etc.)",
}

PATTERNS = [
    ("Hashtbl.hash", re.compile(r"\bHashtbl\.hash\b")),
    ("Stdlib.compare", re.compile(r"\bStdlib\.compare\b")),
    ("Stdlib.(=)", re.compile(r"\bStdlib\.\(\s*(?:=|<>)\s*\)")),
    ("Poly module", re.compile(r"\bPoly\.")),
    ("bare compare",
     re.compile(r"\b(?:sort_uniq|stable_sort|sort)\s+compare\b")),
]


def strip_comments_and_strings(text):
    """Blank out OCaml comments (nested) and string literals, keeping
    line numbers intact."""
    out = []
    i, n = 0, len(text)
    depth = 0
    in_string = False
    while i < n:
        c = text[i]
        if in_string:
            if c == "\\" and i + 1 < n:
                out.append("  " if text[i + 1] != "\n" else " \n")
                i += 2
                continue
            if c == '"':
                in_string = False
            out.append(c if c == "\n" else " ")
            i += 1
        elif depth > 0:
            if text.startswith("(*", i):
                depth += 1
                i += 2
                out.append("  ")
            elif text.startswith("*)", i):
                depth -= 1
                i += 2
                out.append("  ")
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:
            if text.startswith("(*", i):
                depth = 1
                i += 2
                out.append("  ")
            elif c == '"':
                in_string = True
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
    return "".join(out)


def main():
    violations = []
    used_whitelist = set()
    for scan_dir in SCAN_DIRS:
        for path in sorted((ROOT / scan_dir).rglob("*.ml")):
            rel = path.relative_to(ROOT).as_posix()
            code = strip_comments_and_strings(path.read_text())
            for lineno, line in enumerate(code.splitlines(), 1):
                for name, pattern in PATTERNS:
                    if not pattern.search(line):
                        continue
                    key = (rel, name)
                    if key in WHITELIST:
                        used_whitelist.add(key)
                    else:
                        violations.append(f"{rel}:{lineno}: {name}")
    for key in sorted(WHITELIST):
        if key not in used_whitelist:
            violations.append(
                f"{key[0]}: stale whitelist entry for {key[1]!r} "
                "(pattern no longer present; remove it)")
    if violations:
        print("polymorphic comparison/hash lint failed:", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        print(
            "\nUse Value.compare / Formula.compare / Var.hash (or add a "
            "reasoned whitelist entry in scripts/check_poly_compare.py).",
            file=sys.stderr)
        return 1
    print("poly-compare lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
