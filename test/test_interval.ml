module Interval = Tpdb_interval.Interval
module Timeline = Tpdb_interval.Timeline

let iv = Interval.make

let interval_testable =
  Alcotest.testable Interval.pp Interval.equal

let intervals = Alcotest.list interval_testable

let check_iv = Alcotest.check interval_testable
let check_ivs = Alcotest.check intervals

(* --- Interval --- *)

let test_make_validates () =
  Alcotest.check_raises "empty" (Interval.Empty_interval (3, 3)) (fun () ->
      ignore (iv 3 3));
  Alcotest.check_raises "inverted" (Interval.Empty_interval (5, 2)) (fun () ->
      ignore (iv 5 2));
  Alcotest.(check (option interval_testable))
    "make_opt empty" None
    (Interval.make_opt 4 4);
  Alcotest.(check int) "duration" 3 (Interval.duration (iv 2 5))

let test_contains_covers () =
  let i = iv 2 5 in
  Alcotest.(check bool) "start in" true (Interval.contains i 2);
  Alcotest.(check bool) "end out" false (Interval.contains i 5);
  Alcotest.(check bool) "mid in" true (Interval.contains i 4);
  Alcotest.(check bool) "before out" false (Interval.contains i 1);
  Alcotest.(check bool) "covers self" true (Interval.covers i i);
  Alcotest.(check bool) "covers sub" true (Interval.covers i (iv 3 5));
  Alcotest.(check bool) "not covers super" false (Interval.covers i (iv 1 5))

let test_overlap_intersect () =
  Alcotest.(check bool) "overlap" true (Interval.overlaps (iv 2 5) (iv 4 8));
  Alcotest.(check bool) "meets is not overlap" false
    (Interval.overlaps (iv 2 5) (iv 5 8));
  Alcotest.(check (option interval_testable))
    "intersect" (Some (iv 4 5))
    (Interval.intersect (iv 2 5) (iv 4 8));
  Alcotest.(check (option interval_testable))
    "disjoint intersect" None
    (Interval.intersect (iv 2 4) (iv 5 8));
  check_iv "hull" (iv 2 8) (Interval.hull (iv 2 5) (iv 4 8));
  check_iv "hull disjoint" (iv 2 9) (Interval.hull (iv 2 4) (iv 7 9))

let test_minus () =
  check_ivs "split" [ iv 2 4; iv 6 9 ] (Interval.minus (iv 2 9) (iv 4 6));
  check_ivs "left" [ iv 2 4 ] (Interval.minus (iv 2 6) (iv 4 8));
  check_ivs "right" [ iv 5 8 ] (Interval.minus (iv 3 8) (iv 1 5));
  check_ivs "swallowed" [] (Interval.minus (iv 3 5) (iv 2 6));
  check_ivs "disjoint" [ iv 2 4 ] (Interval.minus (iv 2 4) (iv 6 8))

let test_union_adjacent () =
  Alcotest.(check bool) "adjacent" true (Interval.adjacent (iv 2 4) (iv 4 6));
  Alcotest.(check (option interval_testable))
    "join adjacent" (Some (iv 2 6))
    (Interval.union_if_joinable (iv 2 4) (iv 4 6));
  Alcotest.(check (option interval_testable))
    "no join gap" None
    (Interval.union_if_joinable (iv 2 4) (iv 5 6))

let test_allen () =
  let check name expected a b =
    Alcotest.(check bool) name true (Interval.allen a b = expected)
  in
  check "before" Interval.Before (iv 1 2) (iv 4 6);
  check "meets" Interval.Meets (iv 1 4) (iv 4 6);
  check "overlaps" Interval.Overlaps (iv 1 5) (iv 4 6);
  check "starts" Interval.Starts (iv 4 5) (iv 4 6);
  check "during" Interval.During (iv 4 5) (iv 3 6);
  check "finishes" Interval.Finishes (iv 5 6) (iv 3 6);
  check "equals" Interval.Equals (iv 3 6) (iv 3 6);
  check "finished_by" Interval.Finished_by (iv 3 6) (iv 5 6);
  check "contains" Interval.Contains (iv 3 6) (iv 4 5);
  check "started_by" Interval.Started_by (iv 4 6) (iv 4 5);
  check "overlapped_by" Interval.Overlapped_by (iv 4 6) (iv 1 5);
  check "met_by" Interval.Met_by (iv 4 6) (iv 1 4);
  check "after" Interval.After (iv 4 6) (iv 1 2)

let test_points_string () =
  Alcotest.(check (list int)) "points" [ 2; 3; 4 ]
    (List.of_seq (Interval.points (iv 2 5)));
  Alcotest.(check string) "to_string" "[2,5)" (Interval.to_string (iv 2 5));
  check_iv "of_string" (iv 2 5) (Interval.of_string "[2,5)");
  Alcotest.check_raises "of_string invalid"
    (Invalid_argument "Interval.of_string: \"nope\"") (fun () ->
      ignore (Interval.of_string "nope"))

(* --- Timeline --- *)

let test_endpoints_segments () =
  Alcotest.(check (list int)) "endpoints" [ 1; 3; 4; 6 ]
    (Timeline.endpoints [ iv 1 4; iv 3 6 ]);
  check_ivs "segments"
    [ iv 0 1; iv 1 3; iv 3 4; iv 4 6; iv 6 8 ]
    (Timeline.segments ~within:(iv 0 8) [ iv 3 6; iv 1 4 ]);
  check_ivs "segments no cut" [ iv 2 5 ]
    (Timeline.segments ~within:(iv 2 5) []);
  check_ivs "segments outside cuts ignored" [ iv 4 5 ]
    (Timeline.segments ~within:(iv 4 5) [ iv 0 2; iv 7 9 ])

let test_coalesce () =
  check_ivs "merge overlap" [ iv 1 6 ] (Timeline.coalesce [ iv 3 6; iv 1 4 ]);
  check_ivs "merge adjacent" [ iv 1 6 ] (Timeline.coalesce [ iv 1 3; iv 3 6 ]);
  check_ivs "keep gap" [ iv 1 3; iv 5 6 ]
    (Timeline.coalesce [ iv 5 6; iv 1 3 ]);
  check_ivs "empty" [] (Timeline.coalesce [])

let test_gaps () =
  check_ivs "inner gaps"
    [ iv 0 1; iv 4 6; iv 8 10 ]
    (Timeline.gaps ~within:(iv 0 10) [ iv 1 4; iv 6 8 ]);
  check_ivs "no cover" [ iv 0 5 ] (Timeline.gaps ~within:(iv 0 5) []);
  check_ivs "fully covered" [] (Timeline.gaps ~within:(iv 2 4) [ iv 0 10 ]);
  Alcotest.(check int) "covered_duration" 5
    (Timeline.covered_duration [ iv 1 4; iv 3 6 ])

(* --- properties --- *)

open QCheck2

let intervals_gen = Gen.list_size (Gen.int_range 0 8) Tp_gen.interval

let prop_coalesce_preserves_points =
  Test.make ~name:"coalesce preserves covered time points" ~count:200
    intervals_gen (fun ivs ->
      let covered_by list t =
        List.exists (fun i -> Interval.contains i t) list
      in
      let merged = Timeline.coalesce ivs in
      List.for_all
        (fun t -> covered_by ivs t = covered_by merged t)
        (List.init 40 Fun.id))

let prop_coalesce_minimal =
  Test.make ~name:"coalesce output is disjoint and non-adjacent" ~count:200
    intervals_gen (fun ivs ->
      let rec pairwise = function
        | a :: (b :: _ as rest) ->
            (not (Interval.overlaps a b))
            && (not (Interval.adjacent a b))
            && Interval.before a b && pairwise rest
        | _ -> true
      in
      pairwise (Timeline.coalesce ivs))

let prop_segments_partition =
  Test.make ~name:"segments partition the within interval" ~count:200
    (Gen.pair Tp_gen.interval intervals_gen) (fun (within, ivs) ->
      let segments = Timeline.segments ~within ivs in
      let rec gapless cursor = function
        | [] -> cursor = Interval.te within
        | seg :: rest ->
            Interval.ts seg = cursor && gapless (Interval.te seg) rest
      in
      gapless (Interval.ts within) segments)

let prop_gaps_complement =
  Test.make ~name:"gaps = within minus coverage" ~count:200
    (Gen.pair Tp_gen.interval intervals_gen) (fun (within, ivs) ->
      let gaps = Timeline.gaps ~within ivs in
      List.for_all
        (fun t ->
          let inside = Interval.contains within t in
          let covered = List.exists (fun i -> Interval.contains i t) ivs in
          let in_gap = List.exists (fun g -> Interval.contains g t) gaps in
          in_gap = (inside && not covered))
        (List.init 40 Fun.id))

(* The thirteen Allen relations, each defined independently from the
   endpoint orderings (Allen 1983), so the test does not trust any of the
   library's own interval predicates. Exactly one must hold for any pair,
   and it must be the one [Interval.allen] reports. *)
let prop_allen_exclusive =
  Test.make
    ~name:"allen: exactly one of the 13 relations holds, and it's allen's"
    ~count:500
    (Gen.pair Tp_gen.interval Tp_gen.interval)
    (fun (a, b) ->
      let ats = Interval.ts a and ate = Interval.te a in
      let bts = Interval.ts b and bte = Interval.te b in
      let defs =
        [
          (Interval.Before, ate < bts);
          (Interval.Meets, ate = bts);
          (Interval.Overlaps, ats < bts && bts < ate && ate < bte);
          (Interval.Starts, ats = bts && ate < bte);
          (Interval.During, bts < ats && ate < bte);
          (Interval.Finishes, bts < ats && ate = bte);
          (Interval.Equals, ats = bts && ate = bte);
          (Interval.Finished_by, ats < bts && ate = bte);
          (Interval.Contains, ats < bts && bte < ate);
          (Interval.Started_by, ats = bts && bte < ate);
          (Interval.Overlapped_by, bts < ats && ats < bte && bte < ate);
          (Interval.Met_by, bte = ats);
          (Interval.After, bte < ats);
        ]
      in
      let holding = List.filter (fun (_, holds) -> holds) defs in
      match holding with
      | [ (rel, _) ] -> Interval.allen a b = rel
      | _ -> false)

(* [minus a b] and [intersect a b] partition [a]: together they cover
   exactly the points of [a], without overlap, and no piece is empty. *)
let prop_minus_intersect_partition =
  Test.make ~name:"minus + intersect partition the left interval" ~count:500
    (Gen.pair Tp_gen.interval Tp_gen.interval)
    (fun (a, b) ->
      let diff = Interval.minus a b in
      let inter =
        match Interval.intersect a b with None -> [] | Some i -> [ i ]
      in
      let pieces = diff @ inter in
      List.for_all (fun i -> Interval.duration i > 0) pieces
      && List.for_all
           (fun t ->
             let covering =
               List.length (List.filter (fun i -> Interval.contains i t) pieces)
             in
             covering = if Interval.contains a t then 1 else 0)
           (List.init 40 Fun.id))

(* [union_if_joinable] round-trip: when it joins, the union covers
   exactly the points of both sides and subtracting one side gives back
   (a sub-cover of) the other; when it refuses, the intervals are
   neither overlapping nor adjacent. *)
let prop_union_round_trip =
  Test.make ~name:"union_if_joinable round-trips with minus" ~count:500
    (Gen.pair Tp_gen.interval Tp_gen.interval)
    (fun (a, b) ->
      match Interval.union_if_joinable a b with
      | None ->
          (not (Interval.overlaps a b)) && not (Interval.adjacent a b)
      | Some u ->
          let point_ok t =
            Interval.contains u t
            = (Interval.contains a t || Interval.contains b t)
          in
          let remainder = Interval.minus u a in
          List.for_all (fun i -> Interval.duration i > 0) remainder
          && List.for_all
               (fun i ->
                 List.of_seq (Interval.points i)
                 |> List.for_all (Interval.contains b))
               remainder
          && List.for_all point_ok (List.init 40 Fun.id))

let prop_allen_total =
  Test.make ~name:"allen relations are mutually exclusive and mirror" ~count:200
    (Gen.pair Tp_gen.interval Tp_gen.interval) (fun (a, b) ->
      let mirror = function
        | Interval.Before -> Interval.After
        | Interval.Meets -> Interval.Met_by
        | Interval.Overlaps -> Interval.Overlapped_by
        | Interval.Starts -> Interval.Started_by
        | Interval.During -> Interval.Contains
        | Interval.Finishes -> Interval.Finished_by
        | Interval.Equals -> Interval.Equals
        | Interval.Finished_by -> Interval.Finishes
        | Interval.Contains -> Interval.During
        | Interval.Started_by -> Interval.Starts
        | Interval.Overlapped_by -> Interval.Overlaps
        | Interval.Met_by -> Interval.Meets
        | Interval.After -> Interval.Before
      in
      Interval.allen b a = mirror (Interval.allen a b))

let qcheck = QCheck_alcotest.to_alcotest ~speed_level:`Quick

let suite =
  [
    Alcotest.test_case "make validates" `Quick test_make_validates;
    Alcotest.test_case "contains / covers" `Quick test_contains_covers;
    Alcotest.test_case "overlap / intersect / hull" `Quick test_overlap_intersect;
    Alcotest.test_case "minus" `Quick test_minus;
    Alcotest.test_case "adjacent / union" `Quick test_union_adjacent;
    Alcotest.test_case "allen relations" `Quick test_allen;
    Alcotest.test_case "points / string round-trip" `Quick test_points_string;
    Alcotest.test_case "endpoints / segments" `Quick test_endpoints_segments;
    Alcotest.test_case "coalesce" `Quick test_coalesce;
    Alcotest.test_case "gaps" `Quick test_gaps;
    qcheck prop_coalesce_preserves_points;
    qcheck prop_coalesce_minimal;
    qcheck prop_segments_partition;
    qcheck prop_gaps_complement;
    qcheck prop_allen_total;
    qcheck prop_allen_exclusive;
    qcheck prop_minus_intersect_partition;
    qcheck prop_union_round_trip;
  ]
